(** Hit-count rarity over basic blocks (the FairFuzz signal).

    Recovery code is a sliver of what a target executes (§7.2 counts it at
    0.64% of covered blocks), so the blocks a fitness-guided search most
    wants to grow into are precisely its {e rarely hit} ones. This module
    keeps a global histogram of how often each basic block was covered
    across the session and derives two signals from it: a fitness bonus for
    tests whose coverage reaches rarely-hit blocks, and a rare-block
    predicate the mutator uses to decide when to mask (pin) the axes that
    established the parent's position.

    All state is deterministic in the observation sequence and round-trips
    bit-for-bit through {!dump}/{!load}, so rarity-guided campaigns stay
    checkpointable. *)

type t

val create : blocks:int -> t
(** Fresh histogram over block ids [0 .. blocks-1], all counts zero. *)

val blocks : t -> int
val tests : t -> int
(** Outcomes observed so far. *)

val hit_count : t -> int -> int
(** @raise Invalid_argument if the block id is out of range. *)

val observe : t -> Afex_stats.Bitset.t -> unit
(** Fold one test's coverage into the histogram and bump the test count.
    @raise Invalid_argument if the bitset capacity differs from [blocks]. *)

val rarest_block : t -> Afex_stats.Bitset.t -> int option
(** The covered block with the fewest prior hits (lowest id on ties);
    [None] on empty coverage. *)

val min_hits : t -> Afex_stats.Bitset.t -> int option
(** Hit count of {!rarest_block}. *)

val bonus : t -> Afex_stats.Bitset.t -> float
(** [1 / (1 + min_hits)] in (0, 1] — monotone non-increasing in the hit
    count of the rarest block reached; 0 for empty coverage. Callers scale
    it by the configured rarity weight and add it to fitness. *)

val is_rare : t -> cutoff:float -> int -> bool
(** A block is rare while its hit count is below [cutoff] times the tests
    observed (so the threshold adapts as the session grows; nothing is
    rare before the first observation).
    @raise Invalid_argument if the block id is out of range. *)

val rare_count : t -> cutoff:float -> int
(** Number of blocks currently below the rarity cutoff (never-hit blocks
    included). *)

val dump : t -> int * (int * int) list
(** [(tests, pairs)] with one [(block, hits)] pair per nonzero count,
    ascending by block — the entire mutable state. *)

val load : blocks:int -> int * (int * int) list -> (t, string) result
(** Inverse of {!dump}. [Error] — never an exception — on out-of-range or
    out-of-order blocks, non-positive counts, or counts exceeding the test
    total. *)
