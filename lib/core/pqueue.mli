(** Q_priority: the bounded pool of executed high-fitness tests.

    Parents are sampled with probability proportional to fitness (line 4 of
    Algorithm 1). When the size limit is hit, a victim is sampled with
    probability {e inversely} proportional to fitness, so average fitness
    rises over time. Aging decays fitness each round and retires tests
    below a threshold; retired tests "can never have offspring" (§3). *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val load : capacity:int -> Test_case.t list -> (t, string) result
(** Rebuild a queue from {!elements} output (same order, same sharing):
    snapshot restore hands back the exact test-case records so aging keeps
    mutating the fitness the explorer's history also sees. [Error] when
    the entries overflow [capacity]. *)

val size : t -> int
val is_empty : t -> bool
val capacity : t -> int

type eviction = Inverse_fitness | Drop_min

val insert :
  ?policy:eviction -> Afex_stats.Rng.t -> t -> Test_case.t -> Test_case.t option
(** Adds a test; if the queue was full, returns the evicted victim. The
    default [Inverse_fitness] policy samples the victim with probability
    inversely proportional to fitness (the paper's rule); [Drop_min]
    deterministically evicts the lowest-fitness entry (ablation). *)

val sample : Afex_stats.Rng.t -> t -> Test_case.t option
(** Fitness-proportional parent choice; [None] when empty. Tests with
    non-positive fitness are still sampleable with small probability. *)

val age : t -> decay:float -> retire_below:float -> Test_case.t list
(** Multiplies every fitness by [decay] and removes (returning) tests
    whose fitness dropped below [retire_below]. *)

val mean_fitness : t -> float
val elements : t -> Test_case.t list
(** Unordered. *)
