type axis_state = { mutable samples : float list (* newest first, <= window *) }

type t = { window : int; axes : axis_state array; prior : float }

let create ?(window = 20) ~dims () =
  if dims < 1 then invalid_arg "Sensitivity.create: dims < 1";
  if window < 1 then invalid_arg "Sensitivity.create: window < 1";
  { window; axes = Array.init dims (fun _ -> { samples = [] }); prior = 1.0 }

let record t ~axis ~fitness =
  let state = t.axes.(axis) in
  let trimmed =
    if List.length state.samples >= t.window then
      List.filteri (fun i _ -> i < t.window - 1) state.samples
    else state.samples
  in
  state.samples <- fitness :: trimmed

(* An axis with no samples yet reports an optimistic prior, so the search
   starts out direction-agnostic rather than locked on the first axis that
   happened to pay off. *)
let value t i =
  let state = t.axes.(i) in
  match state.samples with
  | [] -> t.prior
  | samples -> List.fold_left ( +. ) 0.0 samples

let values t = Array.init (Array.length t.axes) (value t)

let probabilities t =
  let raw = values t in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let n = Array.length raw in
  let uniform = 1.0 /. float_of_int n in
  if total <= 0.0 then Array.make n uniform
  else begin
    (* 10% of the mass stays uniform: no axis is ever fully abandoned. *)
    let epsilon = 0.10 in
    Array.map (fun v -> (epsilon *. uniform) +. ((1.0 -. epsilon) *. v /. total)) raw
  end

let dims t = Array.length t.axes

(* An axis is "critical" — worth pinning under mutation masking — when its
   choice probability strictly exceeds the uniform share: its mutations
   have been paying off above baseline, so it is what established the
   parent's position. The probabilities sum to 1, so at least one axis
   always stays at or below uniform and the mask can never pin
   everything (the mutator additionally refuses an all-pinned mask). *)
let mask t =
  let p = probabilities t in
  let uniform = 1.0 /. float_of_int (Array.length p) in
  Array.map (fun v -> v > uniform) p

let dump t = Array.map (fun state -> state.samples) t.axes

let load ?(window = 20) ~dims samples =
  if dims < 1 then Error "Sensitivity.load: dims < 1"
  else if window < 1 then Error "Sensitivity.load: window < 1"
  else if Array.length samples <> dims then
    Error
      (Printf.sprintf "Sensitivity.load: %d axes of samples for %d dimensions"
         (Array.length samples) dims)
  else if Array.exists (fun s -> List.length s > window) samples then
    Error "Sensitivity.load: more samples than the window admits"
  else begin
    let t = create ~window ~dims () in
    Array.iteri (fun i s -> t.axes.(i).samples <- s) samples;
    Ok t
  end
