(** What the explorer needs from the machinery that actually runs tests:
    a way to execute one fault scenario and the size of the coverage
    domain.

    Execution is keyed on {e scenarios} (attribute bindings in the Fig. 5
    wire format), not on any concrete fault type: the explorer stays
    tool-independent (§3, "Alternative Algorithms") and the same search
    code drives single-fault injectors, multi-fault injectors, or anything
    a plugin can decode. *)

type t = {
  run_scenario : Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t;
  total_blocks : int;
  description : string;
}

val of_target :
  ?nondet:Afex_injector.Engine.nondeterminism -> Afex_simtarget.Target.t -> t
(** Single-fault execution: scenarios must carry [testId], [function] and
    [callNumber] (plus optional [errno]/[retval]).
    @raise Invalid_argument at run time on an undecodable scenario. *)

val of_target_multi :
  ?nondet:Afex_injector.Engine.nondeterminism -> Afex_simtarget.Target.t -> t
(** Multi-fault execution: scenarios in the {!Afex_injector.Multifault}
    encoding (one [testId], then repeated [function]/[callNumber]
    groups). *)

val of_fn :
  total_blocks:int ->
  description:string ->
  (Afex_injector.Fault.t -> Afex_injector.Outcome.t) ->
  t
(** Wrap a single-fault runner (used by tests and synthetic spaces). *)

val of_scenario_fn :
  total_blocks:int ->
  description:string ->
  (Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t) ->
  t

val run_fault : t -> Afex_injector.Fault.t -> Afex_injector.Outcome.t
(** Convenience: encode the fault as a scenario and run it. *)

(** {2 Nonblocking execution}

    For latency-bound targets (a real system under test, a remote
    manager) the interesting resource is {e in-flight tests}, not CPU: a
    worker that blocks for the duration of one test wastes its wall-clock
    on waiting. The nonblocking split separates {e starting} a test from
    {e collecting} its outcome so a single-domain event loop (see
    [Afex_cluster.Async_executor]) can keep many injections in flight. *)

type job = {
  poll : unit -> Afex_injector.Outcome.t option;
      (** [None] while the test is still running; [Some o] exactly once it
          completes (and on every later poll). Must never block. *)
  wait_fd : Unix.file_descr option;
      (** When the job is backed by an OS resource (a pipe from a forked
          target, a socket), the fd whose readability means "worth polling
          again"; event loops put it in their [select] set. *)
  ready_at_ms : unit -> float option;
      (** Earliest {!monotonic_ms} instant at which [poll] can succeed,
          for timer-wheel scheduling. [None] = no estimate (the loop falls
          back to fd readiness or periodic polling). *)
}
(** One in-flight scenario execution. *)

type async = {
  start : Afex_faultspace.Scenario.t -> job;
      (** Begin executing; must not wait for completion. *)
  async_total_blocks : int;
  async_description : string;
}
(** A nonblocking executor: the start/poll counterpart of {!t}. *)

val monotonic_ms : unit -> float
(** Milliseconds on a process-local clock starting near zero — the time
    base for {!job.ready_at_ms} and the async executor's timer wheel. *)

val job_done : Afex_injector.Outcome.t -> job
(** A job that is already complete (used by synchronous executors). *)

val async_of_sync : t -> async
(** Wrap a synchronous executor: [start] runs the scenario to completion
    on the calling domain, so concurrency degenerates gracefully to the
    blocking behaviour. History-equivalent to the original executor. *)

val run_job_blocking :
  ?poll_interval_ms:float -> ?now_ms:(unit -> float) -> job -> Afex_injector.Outcome.t
(** Wait for one job: sleeps until [ready_at_ms] (or polls every
    [poll_interval_ms], default 0.2) and returns the outcome. *)

val sync_of_async :
  ?poll_interval_ms:float -> ?now_ms:(unit -> float) -> async -> t
(** The blocking view of a nonblocking executor: each run costs the
    job's full latency on the calling domain. This is the "blocking
    worker" baseline the async bench compares against. *)

val delayed :
  ?now_ms:(unit -> float) ->
  delay_ms:(Afex_faultspace.Scenario.t -> float) ->
  t ->
  async
(** [delayed ~delay_ms t] makes a latency-bound target out of a fast
    deterministic one: the outcome is computed immediately but the job
    only completes [delay_ms scenario] later. With a deterministic
    [delay_ms] (see [Afex_simtarget.Target.latency_ms]) the executor
    stays replayable; the blocking view ({!sync_of_async}) really sleeps,
    the async executor overlaps the waits. *)

type cache_stats = { hits : int; misses : int; entries : int }

val memoized : t -> t * (unit -> cache_stats)
(** [memoized t] wraps [t] with a scenario-keyed outcome cache plus a
    stats accessor. Only valid for deterministic executors (every
    built-in simtarget executor without [?nondet] qualifies): a cached
    outcome is returned verbatim for a repeated scenario. The cache is
    mutex-guarded and safe to share across domains. *)
