(** What the explorer needs from the machinery that actually runs tests:
    a way to execute one fault scenario and the size of the coverage
    domain.

    Execution is keyed on {e scenarios} (attribute bindings in the Fig. 5
    wire format), not on any concrete fault type: the explorer stays
    tool-independent (§3, "Alternative Algorithms") and the same search
    code drives single-fault injectors, multi-fault injectors, or anything
    a plugin can decode. *)

type t = {
  run_scenario : Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t;
  total_blocks : int;
  description : string;
}

val of_target :
  ?nondet:Afex_injector.Engine.nondeterminism -> Afex_simtarget.Target.t -> t
(** Single-fault execution: scenarios must carry [testId], [function] and
    [callNumber] (plus optional [errno]/[retval]).
    @raise Invalid_argument at run time on an undecodable scenario. *)

val of_target_multi :
  ?nondet:Afex_injector.Engine.nondeterminism -> Afex_simtarget.Target.t -> t
(** Multi-fault execution: scenarios in the {!Afex_injector.Multifault}
    encoding (one [testId], then repeated [function]/[callNumber]
    groups). *)

val of_fn :
  total_blocks:int ->
  description:string ->
  (Afex_injector.Fault.t -> Afex_injector.Outcome.t) ->
  t
(** Wrap a single-fault runner (used by tests and synthetic spaces). *)

val of_scenario_fn :
  total_blocks:int ->
  description:string ->
  (Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t) ->
  t

val run_fault : t -> Afex_injector.Fault.t -> Afex_injector.Outcome.t
(** Convenience: encode the fault as a scenario and run it. *)

type cache_stats = { hits : int; misses : int; entries : int }

val memoized : t -> t * (unit -> cache_stats)
(** [memoized t] wraps [t] with a scenario-keyed outcome cache plus a
    stats accessor. Only valid for deterministic executors (every
    built-in simtarget executor without [?nondet] qualifies): a cached
    outcome is returned verbatim for a repeated scenario. The cache is
    mutex-guarded and safe to share across domains. *)
