(** Algorithm 1: fitness-guided generation of the next test.

    Picks a parent from Q_priority with fitness-proportional probability,
    an attribute with sensitivity-proportional probability, and a new value
    for that attribute from a discrete Gaussian centred on the old value
    with σ = |Ai|/5 (§3). The offspring is rejected if already executed or
    pending. *)

type params = {
  sigma_fraction : float;  (** σ as a fraction of axis cardinality; paper: 1/5 *)
  max_attempts : int;
      (** how many parent/axis/value draws to try before giving up and
          falling back to a random point *)
  uniform_axis_choice : bool;
      (** ablation switch: ignore sensitivity and pick the mutated axis
          uniformly *)
  uniform_value_choice : bool;
      (** ablation switch: replace the Gaussian magnitude distribution with
          a uniform draw over the axis *)
  dynamic_sigma : bool;
      (** extension (the paper leaves dynamic sigma to future work): scale
          sigma by how the currently explored vicinity has been paying off
          -- hot axes get finer steps (exploit locally), cold axes wider
          jumps (escape) *)
}

val default_params : params
(** σ = |Ai|/5, 40 attempts, both ablation switches off — the paper's
    Algorithm 1. *)

type proposal = {
  point : Afex_faultspace.Point.t;
  mutated_axis : int option;  (** [None] when the proposal is random *)
}

type stats = {
  mutable proposals : int;  (** calls to {!next} *)
  mutable masked : int;  (** accepted proposals mutated under a pin mask *)
  mutable rejects : int;
      (** unmasked attempts rejected (duplicate, pending, out of space) *)
  mutable masked_rejects : int;
      (** masked attempts rejected — when this dominates, masking is
          burning the attempt budget and the search is degrading to the
          random fallback *)
  mutable random_fallbacks : int;
      (** times the attempt budget ran out and a uniform random point was
          issued instead of a mutation *)
}
(** Why candidate generation went the way it did. The random fallback
    used to be indistinguishable from deliberate random exploration; these
    counters attribute it to its cause, so mutation masking cannot
    silently turn the session into random search. *)

val create_stats : unit -> stats
val copy_stats : stats -> stats

val sigma_for : params -> Afex_faultspace.Axis.t -> float

val mutate :
  ?mask:bool array ->
  params ->
  Afex_stats.Rng.t ->
  Afex_faultspace.Subspace.t ->
  Sensitivity.t ->
  parent:Test_case.t ->
  Afex_faultspace.Point.t * int
(** One mutation step: returns the offspring and the mutated axis (the
    offspring may coincide with an executed test; the caller dedupes).
    With [mask], pinned ([true]) axes are never chosen for mutation — the
    FairFuzz move for parents that reached a rare block: hold the axes
    that got them there, explore the rest.
    @raise Invalid_argument if the mask length differs from the subspace
    dimension or every axis is pinned. *)

val next :
  ?stats:stats ->
  ?mask:(Test_case.t -> bool array option) ->
  params ->
  Afex_stats.Rng.t ->
  Afex_faultspace.Subspace.t ->
  Sensitivity.t ->
  queue:Pqueue.t ->
  history:History.t ->
  is_pending:(Afex_faultspace.Point.t -> bool) ->
  proposal
(** Full candidate generation: repeated mutation attempts, falling back to
    fresh uniform points when the queue is empty or the neighbourhood is
    exhausted. The result is guaranteed novel w.r.t. history and pending
    (if any novel point remains findable within the attempt budget;
    otherwise the last random draw is returned regardless). [mask] is
    consulted per sampled parent and applies {!mutate}'s masking;
    [stats], when supplied, tallies accepts, rejects, and fallbacks by
    cause. Neither changes the draw sequence of an unmasked call. *)
