module Rng = Afex_stats.Rng
module Dist = Afex_stats.Dist

(* The queue is small (tens of entries), so a plain list with O(n)
   operations is simpler than a heap and fast enough: sampling is O(n)
   regardless because it is probabilistic, not max-first. *)
type t = { capacity : int; mutable entries : Test_case.t list }

let create ~capacity =
  if capacity < 1 then invalid_arg "Pqueue.create: capacity < 1";
  { capacity; entries = [] }

let load ~capacity entries =
  if capacity < 1 then Error "Pqueue.load: capacity < 1"
  else if List.length entries > capacity then
    Error "Pqueue.load: more entries than capacity"
  else Ok { capacity; entries }

let size t = List.length t.entries
let is_empty t = t.entries = []
let capacity t = t.capacity

(* Sampling floor: even zero-fitness entries keep a small chance, so the
   search never hard-locks onto one test. *)
let floor_weight = 1e-6

let weights entries f =
  Array.of_list
    (List.map (fun c -> Float.max floor_weight (f c.Test_case.fitness)) entries)

let remove_nth entries n =
  let rec go i acc = function
    | [] -> invalid_arg "Pqueue.remove_nth"
    | x :: rest ->
        if i = n then (x, List.rev_append acc rest) else go (i + 1) (x :: acc) rest
  in
  go 0 [] entries

type eviction = Inverse_fitness | Drop_min

let insert ?(policy = Inverse_fitness) rng t case =
  if List.length t.entries < t.capacity then begin
    t.entries <- case :: t.entries;
    None
  end
  else begin
    let victim_index =
      match policy with
      | Inverse_fitness ->
          let inverse = weights t.entries (fun w -> 1.0 /. Float.max floor_weight w) in
          Dist.sample_weighted rng inverse
      | Drop_min ->
          let _, index, _ =
            List.fold_left
              (fun (i, best_i, best_w) c ->
                if c.Test_case.fitness < best_w then (i + 1, i, c.Test_case.fitness)
                else (i + 1, best_i, best_w))
              (0, 0, infinity) t.entries
          in
          index
    in
    let victim, rest = remove_nth t.entries victim_index in
    t.entries <- case :: rest;
    Some victim
  end

let sample rng t =
  match t.entries with
  | [] -> None
  | entries ->
      let direct = weights entries (fun w -> w) in
      Some (List.nth entries (Dist.sample_weighted rng direct))

let age t ~decay ~retire_below =
  List.iter
    (fun case -> case.Test_case.fitness <- case.Test_case.fitness *. decay)
    t.entries;
  let kept, retired =
    List.partition (fun case -> case.Test_case.fitness >= retire_below) t.entries
  in
  t.entries <- kept;
  retired

let mean_fitness t =
  match t.entries with
  | [] -> 0.0
  | entries ->
      List.fold_left (fun acc c -> acc +. c.Test_case.fitness) 0.0 entries
      /. float_of_int (List.length entries)

let elements t = t.entries
