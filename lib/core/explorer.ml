module Rng = Afex_stats.Rng
module Bitset = Afex_stats.Bitset
module Subspace = Afex_faultspace.Subspace
module Point = Afex_faultspace.Point
module Plugin = Afex_injector.Plugin
module Outcome = Afex_injector.Outcome
module Sensor = Afex_injector.Sensor
module Relevance = Afex_quality.Relevance
module Feedback = Afex_quality.Feedback
module Trace_intern = Afex_quality.Trace_intern
module Index = Afex_quality.Index

(* Progress metrics go to a log so a long exploration can be followed
   live (§6.4, step 7). *)
let log_src = Logs.Src.create "afex.explorer" ~doc:"AFEX exploration progress"

module Log = (val Logs.src_log log_src : Logs.LOG)

type t = {
  config : Config.t;
  sub : Subspace.t;
  executor : Executor.t;
  transform : Point.t -> Point.t;
  rng : Rng.t;
  queue : Pqueue.t;
  history : History.t;
  sensitivity : Sensitivity.t;
  pending : (string, unit) Hashtbl.t;
  intern : Trace_intern.t;  (** shared by feedback and both indexes *)
  feedback : Feedback.t;
  failure_index : Index.t;
      (** injection stacks of triggered failing tests, clustered online *)
  crash_index : Index.t;  (** crash stacks, clustered online *)
  covered : Bitset.t;
  rarity : Rarity.t option;  (** global hit-count histogram, when enabled *)
  rare_block : (int, int) Hashtbl.t;
      (** birth -> rarest block that test covered (at its report time);
          the mutator checks the block's current hit count to decide
          whether to mask mutations of that parent *)
  mutator_stats : Mutator.stats;
  mutable seeds : Point.t list;  (** analysis-provided seeds, consumed first *)
  mutable cursor : Point.t Seq.t;  (** exhaustive strategy only *)
  mutable cursor_consumed : int;  (** points taken off [cursor] so far *)
  mutable issued : int;
  mutable iterations : int;
  mutable records : Test_case.t list;  (** newest first *)
  mutable failed : int;
  mutable crashed : int;
  mutable hung : int;
  mutable triggered : int;
  mutable simulated_ms : float;
}

let create ?(transform = fun p -> p) config sub executor =
  let intern = Trace_intern.create () in
  {
    config;
    sub;
    executor;
    transform;
    rng = Rng.create config.Config.seed;
    queue = Pqueue.create ~capacity:config.Config.queue_capacity;
    history = History.create ();
    sensitivity =
      Sensitivity.create ~window:config.Config.sensitivity_window
        ~dims:(Subspace.dim sub) ();
    pending = Hashtbl.create 64;
    (* One intern table for the whole session: redundancy feedback and
       both cluster indexes tokenize each stack frame exactly once. *)
    intern;
    feedback = Feedback.create ~intern ();
    failure_index = Index.create ~intern ();
    crash_index = Index.create ~intern ();
    covered = Bitset.create executor.Executor.total_blocks;
    rarity =
      Option.map
        (fun (_ : Config.rarity) ->
          Rarity.create ~blocks:executor.Executor.total_blocks)
        config.Config.rarity;
    rare_block = Hashtbl.create 64;
    mutator_stats = Mutator.create_stats ();
    seeds = config.Config.initial_seeds;
    cursor = Subspace.enumerate sub;
    cursor_consumed = 0;
    issued = 0;
    iterations = 0;
    records = [];
    failed = 0;
    crashed = 0;
    hung = 0;
    triggered = 0;
    simulated_ms = 0.0;
  }

let is_pending t p = Hashtbl.mem t.pending (Point.key p)
let add_pending t p = Hashtbl.replace t.pending (Point.key p) ()
let remove_pending t p = Hashtbl.remove t.pending (Point.key p)

(* Pop the next usable analysis seed: in-space, not yet executed. *)
let rec next_seed t =
  match t.seeds with
  | [] -> None
  | p :: rest ->
      t.seeds <- rest;
      if Subspace.mem t.sub p && (not (History.mem t.history p)) && not (is_pending t p)
      then Some p
      else next_seed t

let random_novel t =
  (* Bounded search for an unexecuted point; beyond the budget we accept a
     repeat rather than spin (the space may be nearly exhausted). *)
  let rec draw k =
    let p = Subspace.random_point t.rng t.sub in
    if k > 200 then p
    else if History.mem t.history p || is_pending t p then draw (k + 1)
    else p
  in
  draw 0

(* FairFuzz masking: a parent is rare-reaching while the rarest block it
   covered is still below the cutoff against the *current* histogram (a
   block everyone has since piled into stops justifying pins). The pin set
   comes from the live sensitivity profile: axes paying off above the
   uniform share are what established the position. *)
let mask_for t =
  match (t.rarity, t.config.Config.rarity) with
  | Some hist, Some rc when rc.Config.mask ->
      fun (parent : Test_case.t) -> (
        match Hashtbl.find_opt t.rare_block parent.Test_case.birth with
        | Some b when Rarity.is_rare hist ~cutoff:rc.Config.cutoff b ->
            let m = Sensitivity.mask t.sensitivity in
            (* A mask must pin something and leave something free to be
               worth applying; early sessions (flat sensitivity) mutate
               unmasked. *)
            if Array.exists Fun.id m && Array.exists not m then Some m
            else None
        | _ -> None)
  | _ -> fun _ -> None

let next t =
  let proposal =
    match t.config.Config.strategy with
    | Config.Random_search ->
        (* Uniform sampling with replacement, as in the paper's baseline. *)
        Some { Mutator.point = Subspace.random_point t.rng t.sub; mutated_axis = None }
    | Config.Exhaustive -> (
        match t.cursor () with
        | Seq.Nil -> None
        | Seq.Cons (p, rest) ->
            t.cursor <- rest;
            t.cursor_consumed <- t.cursor_consumed + 1;
            Some { Mutator.point = p; mutated_axis = None })
    | Config.Fitness_guided params -> (
        (* Analysis-provided seeds run before anything else (§4). *)
        match next_seed t with
        | Some point -> Some { Mutator.point; mutated_axis = None }
        | None ->
            if t.issued < t.config.Config.initial_batch || Pqueue.is_empty t.queue
            then Some { Mutator.point = random_novel t; mutated_axis = None }
            else
              Some
                (Mutator.next ~stats:t.mutator_stats ~mask:(mask_for t) params
                   t.rng t.sub t.sensitivity ~queue:t.queue ~history:t.history
                   ~is_pending:(is_pending t)))
  in
  (match proposal with
  | Some p ->
      t.issued <- t.issued + 1;
      (match t.config.Config.strategy with
      | Config.Random_search -> ()
      | Config.Exhaustive | Config.Fitness_guided _ -> add_pending t p.Mutator.point)
  | None -> ());
  proposal

let scenario_for t (proposal : Mutator.proposal) =
  Subspace.values t.sub (t.transform proposal.Mutator.point)

let fault_for t (proposal : Mutator.proposal) =
  Plugin.fault_of_point_exn t.sub (t.transform proposal.Mutator.point)

let report t (proposal : Mutator.proposal) outcome =
  let point = proposal.Mutator.point in
  remove_pending t point;
  History.add t.history point;
  t.iterations <- t.iterations + 1;
  (* Impact: newly covered blocks relative to the whole session. *)
  let new_blocks = Bitset.diff_count outcome.Outcome.coverage t.covered in
  Bitset.union_into ~dst:t.covered outcome.Outcome.coverage;
  let impact = t.config.Config.sensor.Sensor.score { Sensor.outcome; new_blocks } in
  (* Rarity bonus against the histogram *before* this outcome is folded
     in (the same convention as [new_blocks] above): a weighted reward for
     reaching the session's rarely-hit blocks. *)
  let bonus =
    match (t.rarity, t.config.Config.rarity) with
    | Some hist, Some rc ->
        Some (rc.Config.weight *. Rarity.bonus hist outcome.Outcome.coverage)
    | _ -> None
  in
  let fitness =
    let f =
      match t.config.Config.relevance with
      | None -> impact
      | Some model ->
          Relevance.scale_impact model ~func:outcome.Outcome.fault.Afex_injector.Fault.func
            impact
    in
    if t.config.Config.feedback then
      Feedback.weigh_fitness ?bonus t.feedback ~trace:outcome.Outcome.injection_stack f
    else match bonus with None -> f | Some b -> f +. b
  in
  let case =
    {
      Test_case.point;
      fault = outcome.Outcome.fault;
      status = outcome.Outcome.status;
      triggered = outcome.Outcome.triggered;
      impact;
      fitness;
      birth = t.iterations;
      mutated_axis = proposal.Mutator.mutated_axis;
      injection_stack = outcome.Outcome.injection_stack;
      crash_stack = outcome.Outcome.crash_stack;
      new_blocks;
      duration_ms = outcome.Outcome.duration_ms;
    }
  in
  (* Statistics. *)
  if Test_case.failed case then t.failed <- t.failed + 1;
  (match outcome.Outcome.status with
  | Outcome.Crashed -> t.crashed <- t.crashed + 1
  | Outcome.Hung -> t.hung <- t.hung + 1
  | Outcome.Passed | Outcome.Test_failed -> ());
  if outcome.Outcome.triggered then t.triggered <- t.triggered + 1;
  (* Online redundancy analysis: the indexes absorb each trace as it
     arrives, so {!Session.summarize} reads finished clusters instead of
     re-running the quadratic batch pass over the whole history. *)
  (match outcome.Outcome.crash_stack with
  | Some stack -> Index.observe t.crash_index stack
  | None -> ());
  if Test_case.failed case && case.Test_case.triggered then
    Index.observe t.failure_index
      (Option.value case.Test_case.injection_stack ~default:[]);
  (* Rarity bookkeeping: remember which rare frontier this test stood on
     (pre-observation, matching the bonus), then absorb its coverage. *)
  (match t.rarity with
  | Some hist ->
      (match Rarity.rarest_block hist outcome.Outcome.coverage with
      | Some b -> Hashtbl.replace t.rare_block case.Test_case.birth b
      | None -> ());
      Rarity.observe hist outcome.Outcome.coverage
  | None -> ());
  t.simulated_ms <-
    t.simulated_ms +. outcome.Outcome.duration_ms +. t.config.Config.setup_ms;
  t.records <- case :: t.records;
  if t.iterations mod 100 = 0 then
    Log.info (fun m ->
        m "%s: %d tests, %d failed, %d crashes, %d blocks covered, queue %d"
          t.executor.Executor.description t.iterations t.failed t.crashed
          (Bitset.count t.covered) (Pqueue.size t.queue));
  Log.debug (fun m ->
      m "#%d %a -> %s (impact %.1f, fitness %.1f)" t.iterations
        Afex_faultspace.Point.pp point
        (Outcome.status_to_string outcome.Outcome.status)
        impact fitness);
  (* Learning. *)
  (match proposal.Mutator.mutated_axis with
  | Some axis -> Sensitivity.record t.sensitivity ~axis ~fitness
  | None -> ());
  (match t.config.Config.strategy with
  | Config.Fitness_guided _ ->
      ignore (Pqueue.insert ~policy:t.config.Config.eviction t.rng t.queue case);
      ignore
        (Pqueue.age t.queue ~decay:t.config.Config.aging_decay
           ~retire_below:t.config.Config.retire_threshold)
  | Config.Random_search | Config.Exhaustive -> ());
  case

let execute t proposal =
  report t proposal (t.executor.Executor.run_scenario (scenario_for t proposal))

let iterations t = t.iterations
let pending_count t = Hashtbl.length t.pending
let records t = List.rev t.records
let failed_count t = t.failed
let crashed_count t = t.crashed
let hung_count t = t.hung
let triggered_count t = t.triggered
let covered_blocks t = Bitset.count t.covered
let simulated_ms t = t.simulated_ms
let sensitivity_probabilities t = Sensitivity.probabilities t.sensitivity
let rarity_histogram t = t.rarity
let mutator_stats t = t.mutator_stats
let failure_index t = t.failure_index
let crash_index t = t.crash_index
let queue_snapshot t = Pqueue.elements t.queue
let history_size t = History.size t.history
let subspace t = t.sub
let config t = t.config

module Snapshot = struct
  type explorer = t

  type t = {
    rng_state : int64;
    issued : int;
    iterations : int;
    failed : int;
    crashed : int;
    hung : int;
    triggered : int;
    simulated_ms : float;
    cursor_consumed : int;
    covered : int list;  (* ascending block indices *)
    records : Test_case.t list;  (* chronological *)
    queue : int list;  (* birth ids, Pqueue.elements order *)
    seeds : Point.t list;  (* analysis seeds not yet consumed *)
    sensitivity : float list array;
    intern_frames : string array;
    feedback : int array list;
    failure_index : Index.dump;
    crash_index : Index.dump;
    rarity : (int * (int * int) list) option;  (* Rarity.dump, when enabled *)
    rare_blocks : (int * int) list;  (* birth -> rarest block, ascending *)
    mutator : Mutator.stats;  (* private copy *)
  }

  let capture (e : explorer) =
    if Hashtbl.length e.pending <> 0 then
      invalid_arg
        "Explorer.Snapshot.capture: candidates still in flight — snapshots \
         are only taken at batch boundaries";
    {
      rng_state = Rng.state e.rng;
      issued = e.issued;
      iterations = e.iterations;
      failed = e.failed;
      crashed = e.crashed;
      hung = e.hung;
      triggered = e.triggered;
      simulated_ms = e.simulated_ms;
      cursor_consumed = e.cursor_consumed;
      covered = Bitset.to_list e.covered;
      records = List.rev e.records;
      queue = List.map (fun c -> c.Test_case.birth) (Pqueue.elements e.queue);
      seeds = e.seeds;
      sensitivity = Sensitivity.dump e.sensitivity;
      intern_frames = Trace_intern.dump e.intern;
      feedback = Feedback.dump e.feedback;
      failure_index = Index.dump e.failure_index;
      crash_index = Index.dump e.crash_index;
      rarity = Option.map Rarity.dump e.rarity;
      rare_blocks =
        List.sort compare
          (Hashtbl.fold (fun birth b acc -> (birth, b) :: acc) e.rare_block []);
      mutator = Mutator.copy_stats e.mutator_stats;
    }
end

let capture = Snapshot.capture

let restore ?(transform = fun p -> p) config sub executor (s : Snapshot.t) =
  let ( let* ) = Result.bind in
  let err fmt = Printf.ksprintf (fun m -> Error ("Explorer.restore: " ^ m)) fmt in
  let* intern = Trace_intern.of_frames s.Snapshot.intern_frames in
  let* feedback = Feedback.load ~intern s.Snapshot.feedback in
  let* failure_index = Index.load ~intern s.Snapshot.failure_index in
  let* crash_index = Index.load ~intern s.Snapshot.crash_index in
  let* sensitivity =
    Sensitivity.load ~window:config.Config.sensitivity_window
      ~dims:(Subspace.dim sub) s.Snapshot.sensitivity
  in
  let covered = Bitset.create executor.Executor.total_blocks in
  let* () =
    try
      List.iter (Bitset.set covered) s.Snapshot.covered;
      Ok ()
    with Invalid_argument _ ->
      err "covered block outside the target's %d blocks"
        executor.Executor.total_blocks
  in
  (* Records are appended with birth = iteration count, so the k-th
     chronological record must carry birth k+1; anything else means the
     snapshot is inconsistent even though its checksum held. *)
  let* () =
    let rec check i = function
      | [] ->
          if i = s.Snapshot.iterations then Ok ()
          else err "%d records for %d iterations" i s.Snapshot.iterations
      | c :: rest ->
          if c.Test_case.birth <> i + 1 then
            err "record %d carries birth %d" i c.Test_case.birth
          else check (i + 1) rest
    in
    check 0 s.Snapshot.records
  in
  let* () =
    let count f = List.fold_left (fun n c -> if f c then n + 1 else n) 0 s.Snapshot.records in
    let failed = count Test_case.failed
    and crashed = count (fun c -> c.Test_case.status = Outcome.Crashed)
    and hung = count (fun c -> c.Test_case.status = Outcome.Hung)
    and triggered = count (fun c -> c.Test_case.triggered) in
    if
      failed <> s.Snapshot.failed
      || crashed <> s.Snapshot.crashed
      || hung <> s.Snapshot.hung
      || triggered <> s.Snapshot.triggered
    then err "statistics disagree with the records"
    else Ok ()
  in
  let* () = if s.Snapshot.issued < 0 then err "negative issued count" else Ok () in
  let* rarity =
    match (config.Config.rarity, s.Snapshot.rarity) with
    | None, None -> Ok None
    | None, Some _ -> err "rarity histogram present but rarity is disabled"
    | Some _, None -> err "rarity enabled but the snapshot holds no histogram"
    | Some _, Some d -> (
        match Rarity.load ~blocks:executor.Executor.total_blocks d with
        | Ok h -> Ok (Some h)
        | Error m -> Error ("Explorer.restore: " ^ m))
  in
  let* rare_block =
    let h = Hashtbl.create 64 in
    let rec fill last = function
      | [] -> Ok h
      | (birth, b) :: rest ->
          if birth <= last then err "rare-block births out of order at %d" birth
          else if birth < 1 || birth > s.Snapshot.iterations then
            err "rare-block birth %d outside the %d-test history" birth
              s.Snapshot.iterations
          else if b < 0 || b >= executor.Executor.total_blocks then
            err "rare block %d outside the target's %d blocks" b
              executor.Executor.total_blocks
          else begin
            Hashtbl.replace h birth b;
            fill birth rest
          end
    in
    if rarity = None && s.Snapshot.rare_blocks <> [] then
      err "rare-block map present but rarity is disabled"
    else fill 0 s.Snapshot.rare_blocks
  in
  let* () =
    let m = s.Snapshot.mutator in
    if
      m.Mutator.proposals < 0 || m.Mutator.masked < 0 || m.Mutator.rejects < 0
      || m.Mutator.masked_rejects < 0 || m.Mutator.random_fallbacks < 0
    then err "negative mutator statistics"
    else Ok ()
  in
  let history = History.create () in
  List.iter (fun c -> History.add history c.Test_case.point) s.Snapshot.records;
  (* The queue is restored by reference into the record list: aging decays
     the very fitness values the history reports, exactly as live. *)
  let by_birth = Hashtbl.create 64 in
  List.iter
    (fun c -> Hashtbl.replace by_birth c.Test_case.birth c)
    s.Snapshot.records;
  let* queue_entries =
    let seen = Hashtbl.create 16 in
    let rec resolve acc = function
      | [] -> Ok (List.rev acc)
      | b :: rest -> (
          if Hashtbl.mem seen b then err "queue lists test %d twice" b
          else begin
            Hashtbl.replace seen b ();
            match Hashtbl.find_opt by_birth b with
            | Some c -> resolve (c :: acc) rest
            | None -> err "queue refers to unknown test %d" b
          end)
    in
    resolve [] s.Snapshot.queue
  in
  let* queue = Pqueue.load ~capacity:config.Config.queue_capacity queue_entries in
  let* cursor =
    if s.Snapshot.cursor_consumed < 0 then err "negative cursor position"
    else begin
      let c = ref (Subspace.enumerate sub) in
      let short = ref false in
      for _ = 1 to s.Snapshot.cursor_consumed do
        if not !short then
          match !c () with
          | Seq.Nil -> short := true
          | Seq.Cons (_, rest) -> c := rest
      done;
      if !short then err "cursor beyond the end of the subspace" else Ok !c
    end
  in
  Ok
    {
      config;
      sub;
      executor;
      transform;
      rng = Rng.of_state s.Snapshot.rng_state;
      queue;
      history;
      sensitivity;
      pending = Hashtbl.create 64;
      intern;
      feedback;
      failure_index;
      crash_index;
      covered;
      rarity;
      rare_block;
      mutator_stats = Mutator.copy_stats s.Snapshot.mutator;
      seeds = s.Snapshot.seeds;
      cursor;
      cursor_consumed = s.Snapshot.cursor_consumed;
      issued = s.Snapshot.issued;
      iterations = s.Snapshot.iterations;
      records = List.rev s.Snapshot.records;
      failed = s.Snapshot.failed;
      crashed = s.Snapshot.crashed;
      hung = s.Snapshot.hung;
      triggered = s.Snapshot.triggered;
      simulated_ms = s.Snapshot.simulated_ms;
    }
