(** Per-axis sensitivity (§3): the historical benefit of mutating each
    attribute.

    Given a window size n, the sensitivity of axis Xi is the sum of the
    fitness values of the last n executed tests whose creation mutated
    attribute αi. High sensitivity means mutations along that axis kept
    paying off — the dynamic stand-in for relative linear density. *)

type t

val create : ?window:int -> dims:int -> unit -> t
(** [window] defaults to 20 samples per axis. Axes start with a neutral
    optimistic prior so early exploration tries every direction. *)

val record : t -> axis:int -> fitness:float -> unit
val value : t -> int -> float
val values : t -> float array

val probabilities : t -> float array
(** Normalized axis-choice distribution (line 5 of Algorithm 1), with a
    small floor on every axis so no direction is ever abandoned
    completely. *)

val dims : t -> int

val mask : t -> bool array
(** Per-axis pin mask for FairFuzz-style masked mutation: [true] on every
    axis whose choice probability strictly exceeds the uniform share —
    the axes whose mutations established the current position and should
    be held fixed while the rest explore. Because the probabilities sum
    to 1, at least one axis is always left unpinned (up to float
    rounding; {!Mutator.mutate} rejects a fully pinned mask). *)

val dump : t -> float list array
(** Per-axis sample windows, newest first — the entire mutable state. *)

val load : ?window:int -> dims:int -> float list array -> (t, string) result
(** Inverse of {!dump}. [Error] — never an exception — when the axis
    count disagrees with [dims] or any window is over-full. *)
