module Engine = Afex_injector.Engine
module Fault = Afex_injector.Fault
module Multifault = Afex_injector.Multifault
module Target = Afex_simtarget.Target

type t = {
  run_scenario : Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t;
  total_blocks : int;
  description : string;
}

let of_target ?nondet target =
  let run_scenario scenario =
    match Fault.of_scenario scenario with
    | Ok fault -> Engine.run ?nondet target fault
    | Error m -> invalid_arg ("Executor: undecodable scenario: " ^ m)
  in
  {
    run_scenario;
    total_blocks = Target.total_blocks target;
    description = Printf.sprintf "%s %s" (Target.name target) (Target.version target);
  }

let of_target_multi ?nondet target =
  let run_scenario scenario =
    match Multifault.of_scenario scenario with
    | Ok mf -> Multifault.run ?nondet target mf
    | Error m -> invalid_arg ("Executor: undecodable multi-fault scenario: " ^ m)
  in
  {
    run_scenario;
    total_blocks = Target.total_blocks target;
    description =
      Printf.sprintf "%s %s (multi-fault)" (Target.name target) (Target.version target);
  }

let of_fn ~total_blocks ~description run =
  let run_scenario scenario =
    match Fault.of_scenario scenario with
    | Ok fault -> run fault
    | Error m -> invalid_arg ("Executor: undecodable scenario: " ^ m)
  in
  { run_scenario; total_blocks; description }

let of_scenario_fn ~total_blocks ~description run_scenario =
  { run_scenario; total_blocks; description }

let run_fault t fault = t.run_scenario (Fault.to_scenario fault)

(* ------------------------------------------------------------------ *)
(* Nonblocking execution                                               *)
(* ------------------------------------------------------------------ *)

type job = {
  poll : unit -> Afex_injector.Outcome.t option;
  wait_fd : Unix.file_descr option;
  ready_at_ms : unit -> float option;
}

type async = {
  start : Afex_faultspace.Scenario.t -> job;
  async_total_blocks : int;
  async_description : string;
}

let monotonic_ms =
  (* Offset so the clock starts near zero: timer wheels and latency
     deadlines never need absolute epoch values. *)
  let t0 = Unix.gettimeofday () in
  fun () -> 1000.0 *. (Unix.gettimeofday () -. t0)

let job_done outcome =
  {
    poll = (fun () -> Some outcome);
    wait_fd = None;
    ready_at_ms = (fun () -> Some 0.0);
  }

let async_of_sync t =
  {
    start = (fun scenario -> job_done (t.run_scenario scenario));
    async_total_blocks = t.total_blocks;
    async_description = t.description;
  }

let run_job_blocking ?(poll_interval_ms = 0.2) ?(now_ms = monotonic_ms) job =
  let rec wait () =
    match job.poll () with
    | Some outcome -> outcome
    | None ->
        let delay =
          match job.ready_at_ms () with
          | Some at -> Float.max 0.0 (at -. now_ms ())
          | None -> poll_interval_ms
        in
        if delay > 0.0 then Unix.sleepf (delay /. 1000.0);
        wait ()
  in
  wait ()

let sync_of_async ?poll_interval_ms ?now_ms a =
  {
    run_scenario =
      (fun scenario ->
        run_job_blocking ?poll_interval_ms ?now_ms (a.start scenario));
    total_blocks = a.async_total_blocks;
    description = a.async_description;
  }

let delayed ?(now_ms = monotonic_ms) ~delay_ms t =
  let start scenario =
    (* The simulated injector answers instantly; only the completion is
       deferred, which is exactly how a latency-bound target looks to a
       dispatcher: the request is in flight, the answer arrives later. *)
    let outcome = t.run_scenario scenario in
    let ready = now_ms () +. Float.max 0.0 (delay_ms scenario) in
    {
      poll = (fun () -> if now_ms () >= ready then Some outcome else None);
      wait_fd = None;
      ready_at_ms = (fun () -> Some ready);
    }
  in
  {
    start;
    async_total_blocks = t.total_blocks;
    async_description = t.description ^ " (simulated latency)";
  }

type cache_stats = { hits : int; misses : int; entries : int }

let memoized t =
  (* The injector is deterministic, so a scenario's outcome is a pure
     function of its attribute bindings: repeated candidates (common late
     in a beam search, or under random search on small spaces) become
     free. Guarded by a mutex so the wrapper stays safe when shared
     across domains. *)
  let cache : (string, Afex_injector.Outcome.t) Hashtbl.t = Hashtbl.create 256 in
  let lock = Mutex.create () in
  let hits = ref 0 and misses = ref 0 in
  let run_scenario scenario =
    let key = Afex_faultspace.Scenario.to_string scenario in
    let cached =
      Mutex.lock lock;
      let v = Hashtbl.find_opt cache key in
      (match v with Some _ -> incr hits | None -> incr misses);
      Mutex.unlock lock;
      v
    in
    match cached with
    | Some outcome -> outcome
    | None ->
        let outcome = t.run_scenario scenario in
        Mutex.lock lock;
        Hashtbl.replace cache key outcome;
        Mutex.unlock lock;
        outcome
  in
  let stats () =
    Mutex.lock lock;
    let s = { hits = !hits; misses = !misses; entries = Hashtbl.length cache } in
    Mutex.unlock lock;
    s
  in
  ({ t with run_scenario }, stats)
