module Engine = Afex_injector.Engine
module Fault = Afex_injector.Fault
module Multifault = Afex_injector.Multifault
module Target = Afex_simtarget.Target

type t = {
  run_scenario : Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t;
  total_blocks : int;
  description : string;
}

let of_target ?nondet target =
  let run_scenario scenario =
    match Fault.of_scenario scenario with
    | Ok fault -> Engine.run ?nondet target fault
    | Error m -> invalid_arg ("Executor: undecodable scenario: " ^ m)
  in
  {
    run_scenario;
    total_blocks = Target.total_blocks target;
    description = Printf.sprintf "%s %s" (Target.name target) (Target.version target);
  }

let of_target_multi ?nondet target =
  let run_scenario scenario =
    match Multifault.of_scenario scenario with
    | Ok mf -> Multifault.run ?nondet target mf
    | Error m -> invalid_arg ("Executor: undecodable multi-fault scenario: " ^ m)
  in
  {
    run_scenario;
    total_blocks = Target.total_blocks target;
    description =
      Printf.sprintf "%s %s (multi-fault)" (Target.name target) (Target.version target);
  }

let of_fn ~total_blocks ~description run =
  let run_scenario scenario =
    match Fault.of_scenario scenario with
    | Ok fault -> run fault
    | Error m -> invalid_arg ("Executor: undecodable scenario: " ^ m)
  in
  { run_scenario; total_blocks; description }

let of_scenario_fn ~total_blocks ~description run_scenario =
  { run_scenario; total_blocks; description }

let run_fault t fault = t.run_scenario (Fault.to_scenario fault)

type cache_stats = { hits : int; misses : int; entries : int }

let memoized t =
  (* The injector is deterministic, so a scenario's outcome is a pure
     function of its attribute bindings: repeated candidates (common late
     in a beam search, or under random search on small spaces) become
     free. Guarded by a mutex so the wrapper stays safe when shared
     across domains. *)
  let cache : (string, Afex_injector.Outcome.t) Hashtbl.t = Hashtbl.create 256 in
  let lock = Mutex.create () in
  let hits = ref 0 and misses = ref 0 in
  let run_scenario scenario =
    let key = Afex_faultspace.Scenario.to_string scenario in
    let cached =
      Mutex.lock lock;
      let v = Hashtbl.find_opt cache key in
      (match v with Some _ -> incr hits | None -> incr misses);
      Mutex.unlock lock;
      v
    in
    match cached with
    | Some outcome -> outcome
    | None ->
        let outcome = t.run_scenario scenario in
        Mutex.lock lock;
        Hashtbl.replace cache key outcome;
        Mutex.unlock lock;
        outcome
  in
  let stats () =
    Mutex.lock lock;
    let s = { hits = !hits; misses = !misses; entries = Hashtbl.length cache } in
    Mutex.unlock lock;
    s
  in
  ({ t with run_scenario }, stats)
