(** The explorer: the stateful search engine at the centre of AFEX (§6.1).

    It hands out fault-injection candidates ({!next}) and learns from their
    measured outcomes ({!report}). Separating the two lets the cluster
    layer keep many candidates in flight on different node managers, while
    {!Session} drives the same object sequentially. *)

type t

val create :
  ?transform:(Afex_faultspace.Point.t -> Afex_faultspace.Point.t) ->
  Config.t ->
  Afex_faultspace.Subspace.t ->
  Executor.t ->
  t
(** [transform] maps search coordinates to target coordinates before the
    fault is materialized (identity by default; the Table 4 structure-loss
    experiment passes a {!Afex_faultspace.Shuffle} here). *)

val next : t -> Mutator.proposal option
(** Next candidate to execute. [None] only for the exhaustive strategy,
    once the space is exhausted. The candidate is tracked as pending until
    reported. *)

val scenario_for : t -> Mutator.proposal -> Afex_faultspace.Scenario.t
(** The concrete fault scenario for a proposal (transform applied). This
    is exactly what travels to a node manager on the wire. *)

val fault_for : t -> Mutator.proposal -> Afex_injector.Fault.t
(** The proposal decoded as a single fault — only valid on standard
    3-axis (plus optional errno/retval) spaces.
    @raise Invalid_argument on compound spaces. *)

val report : t -> Mutator.proposal -> Afex_injector.Outcome.t -> Test_case.t
(** Feed back the outcome of a candidate: scores impact and fitness
    (relevance- and feedback-weighted), updates coverage, Q_priority,
    History, sensitivity, and ages the queue. *)

val execute : t -> Mutator.proposal -> Test_case.t
(** [report] after running the fault on the session's executor — the
    sequential convenience used by {!Session}. *)

(** Observable state *)

val iterations : t -> int
(** Number of reported (executed) tests. *)

val pending_count : t -> int
(** Candidates handed out by {!next} and not yet {!report}ed — the
    explorer's in-flight window when the cluster layer pipelines it. *)

val records : t -> Test_case.t list
(** Chronological. *)

val failed_count : t -> int
val crashed_count : t -> int
val hung_count : t -> int
val triggered_count : t -> int
val covered_blocks : t -> int
val simulated_ms : t -> float
(** Simulated wall-clock: test durations plus per-test setup. *)

val failure_index : t -> Afex_quality.Index.t
(** Online redundancy clusters over the injection stacks of triggered
    failing tests, maintained incrementally by {!report} — {!Session}
    reads counts and clusters from here instead of re-clustering the
    whole history at summary time. *)

val crash_index : t -> Afex_quality.Index.t
(** Same, over crash stacks. Observation order is chronological, so the
    items align with the crashing records in {!records} order. *)

val sensitivity_probabilities : t -> float array

val rarity_histogram : t -> Rarity.t option
(** The global block hit-count histogram, present iff the configuration
    enables rarity guidance. Fed by {!report} before each outcome's own
    coverage is folded in. *)

val mutator_stats : t -> Mutator.stats
(** Candidate-generation accounting: accepted/rejected mutations (masked
    and unmasked separately) and random fallbacks after attempt-budget
    exhaustion. All zeros for the non-guided strategies. *)

val queue_snapshot : t -> Test_case.t list
val history_size : t -> int
val subspace : t -> Afex_faultspace.Subspace.t
val config : t -> Config.t

(** {2 Checkpointing}

    A snapshot is the complete mutable state of the search relative to its
    configuration: everything [create]-time inputs (config, subspace,
    executor, transform) do {e not} determine. Restoring a snapshot and
    continuing produces bit-identical history to the uninterrupted run —
    the invariant the checkpoint layer's crash-resume guarantee rests
    on. *)

module Snapshot : sig
  type explorer := t

  type t = {
    rng_state : int64;
    issued : int;
    iterations : int;
    failed : int;
    crashed : int;
    hung : int;
    triggered : int;
    simulated_ms : float;
    cursor_consumed : int;  (** exhaustive cursor position *)
    covered : int list;  (** covered block indices, ascending *)
    records : Test_case.t list;  (** chronological *)
    queue : int list;  (** Q_priority as birth ids, {!queue_snapshot} order *)
    seeds : Afex_faultspace.Point.t list;  (** unconsumed analysis seeds *)
    sensitivity : float list array;
    intern_frames : string array;
    feedback : int array list;
    failure_index : Afex_quality.Index.dump;
    crash_index : Afex_quality.Index.dump;
    rarity : (int * (int * int) list) option;
        (** {!Rarity.dump}, present iff rarity is enabled *)
    rare_blocks : (int * int) list;
        (** (birth, rarest covered block) pairs, ascending by birth *)
    mutator : Mutator.stats;  (** a private copy of the tallies *)
  }

  val capture : explorer -> t
  (** @raise Invalid_argument if any candidate is still pending —
      snapshots are only meaningful at batch boundaries, when every
      issued candidate has been reported. *)
end

val capture : t -> Snapshot.t
(** Alias of {!Snapshot.capture}. *)

val restore :
  ?transform:(Afex_faultspace.Point.t -> Afex_faultspace.Point.t) ->
  Config.t ->
  Afex_faultspace.Subspace.t ->
  Executor.t ->
  Snapshot.t ->
  (t, string) result
(** Rebuild an explorer from a snapshot taken under the same config,
    subspace, executor and transform (the caller guarantees the match;
    the checkpoint layer records campaign metadata for exactly this).
    Internal consistency is revalidated — record birth order, statistic
    tallies, queue references, cursor position, coverage bounds — and any
    violation is a clean [Error], never an exception, so a corrupt
    snapshot that slipped past the file checksum still cannot crash the
    resuming process. *)
