type strategy =
  | Fitness_guided of Mutator.params
  | Random_search
  | Exhaustive

type rarity = { weight : float; cutoff : float; mask : bool }

type t = {
  seed : int;
  strategy : strategy;
  queue_capacity : int;
  initial_batch : int;
  aging_decay : float;
  retire_threshold : float;
  sensitivity_window : int;
  sensor : Afex_injector.Sensor.t;
  relevance : Afex_quality.Relevance.t option;
  feedback : bool;
  eviction : Pqueue.eviction;
  initial_seeds : Afex_faultspace.Point.t list;
  setup_ms : float;
  rarity : rarity option;
}

let base ?(seed = 1) strategy =
  {
    seed;
    strategy;
    queue_capacity = 50;
    initial_batch = 25;
    aging_decay = 0.98;
    retire_threshold = 0.5;
    sensitivity_window = 20;
    sensor = Afex_injector.Sensor.standard ();
    relevance = None;
    feedback = false;
    eviction = Pqueue.Inverse_fitness;
    initial_seeds = [];
    setup_ms = 5.0;
    rarity = None;
  }

let default_rarity = { weight = 2.0; cutoff = 0.10; mask = false }

let with_rarity ?(weight = default_rarity.weight)
    ?(cutoff = default_rarity.cutoff) ?(mask = default_rarity.mask) config =
  if weight < 0.0 then invalid_arg "Config.with_rarity: negative weight";
  if cutoff <= 0.0 || cutoff >= 1.0 then
    invalid_arg "Config.with_rarity: cutoff must be in (0, 1)";
  { config with rarity = Some { weight; cutoff; mask } }

let fitness_guided ?seed () = base ?seed (Fitness_guided Mutator.default_params)
let random_search ?seed () = base ?seed Random_search
let exhaustive ?seed () = base ?seed Exhaustive

let strategy_name = function
  | Fitness_guided _ -> "fitness-guided"
  | Random_search -> "random"
  | Exhaustive -> "exhaustive"
