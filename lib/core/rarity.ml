module Bitset = Afex_stats.Bitset

type t = {
  hits : int array;  (* per-block cumulative hit counts *)
  mutable tests : int;  (* outcomes observed so far *)
}

let create ~blocks =
  if blocks < 0 then invalid_arg "Rarity.create: negative block count";
  { hits = Array.make blocks 0; tests = 0 }

let blocks t = Array.length t.hits
let tests t = t.tests

let hit_count t b =
  if b < 0 || b >= Array.length t.hits then
    invalid_arg "Rarity.hit_count: block out of range";
  t.hits.(b)

let observe t coverage =
  if Bitset.capacity coverage <> Array.length t.hits then
    invalid_arg "Rarity.observe: coverage capacity mismatch";
  Bitset.iter (fun b -> t.hits.(b) <- t.hits.(b) + 1) coverage;
  t.tests <- t.tests + 1

(* The rarest block a test reaches is the one with the fewest prior hits;
   ties go to the lowest block id so the choice is deterministic. *)
let rarest_block t coverage =
  if Bitset.capacity coverage <> Array.length t.hits then
    invalid_arg "Rarity.rarest_block: coverage capacity mismatch";
  let best = ref None in
  Bitset.iter
    (fun b ->
      match !best with
      | Some (_, h) when t.hits.(b) >= h -> ()
      | _ -> best := Some (b, t.hits.(b)))
    coverage;
  Option.map fst !best

let min_hits t coverage =
  Option.map (fun b -> t.hits.(b)) (rarest_block t coverage)

(* Bonus in (0, 1]: 1 for coverage reaching a never-hit block, decaying
   hyperbolically with the hit count of the rarest block reached — monotone
   non-increasing in that count. Empty coverage earns nothing. *)
let bonus t coverage =
  match min_hits t coverage with
  | None -> 0.0
  | Some h -> 1.0 /. (1.0 +. float_of_int h)

let is_rare t ~cutoff b =
  if b < 0 || b >= Array.length t.hits then
    invalid_arg "Rarity.is_rare: block out of range";
  float_of_int t.hits.(b) < cutoff *. float_of_int t.tests

let rare_count t ~cutoff =
  let n = ref 0 in
  Array.iter
    (fun h -> if float_of_int h < cutoff *. float_of_int t.tests then incr n)
    t.hits;
  !n

let dump t =
  let pairs = ref [] in
  for b = Array.length t.hits - 1 downto 0 do
    if t.hits.(b) > 0 then pairs := (b, t.hits.(b)) :: !pairs
  done;
  (t.tests, !pairs)

let load ~blocks (tests, pairs) =
  let err fmt = Printf.ksprintf (fun m -> Error ("Rarity.load: " ^ m)) fmt in
  if blocks < 0 then err "negative block count"
  else if tests < 0 then err "negative test count"
  else begin
    let t = create ~blocks in
    t.tests <- tests;
    let rec fill last = function
      | [] -> Ok t
      | (b, h) :: rest ->
          if b <= last then err "blocks out of order at %d" b
          else if b >= blocks then err "block %d outside the target's %d blocks" b blocks
          else if h < 1 then err "block %d carries hit count %d" b h
          else if h > tests then err "block %d hit %d times in %d tests" b h tests
          else begin
            t.hits.(b) <- h;
            fill b rest
          end
    in
    fill (-1) pairs
  end
