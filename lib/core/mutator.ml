module Rng = Afex_stats.Rng
module Dist = Afex_stats.Dist
module Subspace = Afex_faultspace.Subspace
module Axis = Afex_faultspace.Axis
module Point = Afex_faultspace.Point

type params = {
  sigma_fraction : float;
  max_attempts : int;
  uniform_axis_choice : bool;
  uniform_value_choice : bool;
  dynamic_sigma : bool;
}

let default_params =
  {
    sigma_fraction = 0.2;
    max_attempts = 40;
    uniform_axis_choice = false;
    uniform_value_choice = false;
    dynamic_sigma = false;
  }

type proposal = { point : Point.t; mutated_axis : int option }

type stats = {
  mutable proposals : int;
  mutable masked : int;
  mutable rejects : int;
  mutable masked_rejects : int;
  mutable random_fallbacks : int;
}

let create_stats () =
  { proposals = 0; masked = 0; rejects = 0; masked_rejects = 0; random_fallbacks = 0 }

let copy_stats s = { s with proposals = s.proposals }

let sigma_for params axis =
  params.sigma_fraction *. float_of_int (Axis.cardinality axis)

(* Axis-choice weights with pinned axes zeroed out. If sensitivity left no
   mass on any free axis, the choice degrades to uniform over the free
   axes — never over the pinned ones (Dist.of_weights would treat an
   all-zero array as uniform over everything). *)
let masked_weights ~mask weights =
  let n = Array.length weights in
  if Array.length mask <> n then invalid_arg "Mutator.mutate: mask length mismatch";
  if not (Array.exists not mask) then
    invalid_arg "Mutator.mutate: mask pins every axis";
  let w = Array.mapi (fun i v -> if mask.(i) then 0.0 else v) weights in
  if Array.for_all (fun v -> v <= 0.0) w then
    Array.mapi (fun i _ -> if mask.(i) then 0.0 else 1.0) w
  else w

let mutate ?mask params rng sub sens ~parent =
  let axis_index =
    match mask with
    | None ->
        if params.uniform_axis_choice then Rng.int rng (Subspace.dim sub)
        else Dist.sample_weighted rng (Sensitivity.probabilities sens)
    | Some mask ->
        let base =
          if params.uniform_axis_choice then Array.make (Subspace.dim sub) 1.0
          else Sensitivity.probabilities sens
        in
        Dist.sample_weighted rng (masked_weights ~mask base)
  in
  let axis = Subspace.axis sub axis_index in
  let n = Axis.cardinality axis in
  let old_value = Point.get parent.Test_case.point axis_index in
  let new_value =
    if n < 2 then old_value
    else if params.uniform_value_choice then begin
      (* Uniform over the axis, excluding the current value. *)
      let v = Rng.int rng (n - 1) in
      if v >= old_value then v + 1 else v
    end
    else begin
      let sigma =
        let base = sigma_for params axis in
        if params.dynamic_sigma then begin
          (* Hot axes (high recent payoff) get finer steps, cold axes wider
             jumps; the factor stays within [0.5, 1.5] of the static sigma. *)
          let p = (Sensitivity.probabilities sens).(axis_index) in
          base *. (1.5 -. p)
        end
        else base
      in
      Dist.sample_gaussian_index_excluding rng ~center:old_value ~sigma ~n
    end
  in
  (Point.with_component parent.Test_case.point axis_index new_value, axis_index)

let next ?stats ?(mask = fun (_ : Test_case.t) -> None) params rng sub sens
    ~queue ~history ~is_pending =
  let tally f = match stats with Some s -> f s | None -> () in
  tally (fun s -> s.proposals <- s.proposals + 1);
  let novel p = (not (History.mem history p)) && not (is_pending p) in
  let rec attempt k =
    if k >= params.max_attempts then begin
      (* Neighbourhoods exhausted: fall back to uniform exploration. The
         counters above record what burnt the attempt budget, so a
         mask-heavy session degrading to random search is visible instead
         of silent. *)
      tally (fun s -> s.random_fallbacks <- s.random_fallbacks + 1);
      { point = Subspace.random_point rng sub; mutated_axis = None }
    end
    else begin
      match Pqueue.sample rng queue with
      | None ->
          let p = Subspace.random_point rng sub in
          if novel p then { point = p; mutated_axis = None }
          else begin
            tally (fun s -> s.rejects <- s.rejects + 1);
            attempt (k + 1)
          end
      | Some parent ->
          let m = mask parent in
          let point, axis = mutate ?mask:m params rng sub sens ~parent in
          if novel point && Subspace.mem sub point then begin
            (match m with
            | Some _ -> tally (fun s -> s.masked <- s.masked + 1)
            | None -> ());
            { point; mutated_axis = Some axis }
          end
          else begin
            tally (fun s ->
                match m with
                | Some _ -> s.masked_rejects <- s.masked_rejects + 1
                | None -> s.rejects <- s.rejects + 1);
            attempt (k + 1)
          end
    end
  in
  attempt 0
