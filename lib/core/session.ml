module Clustering = Afex_quality.Clustering

type stop = { matches : Test_case.t -> bool; count : int }

type result = {
  strategy : string;
  iterations : int;
  executed : Test_case.t list;
  failed : int;
  crashed : int;
  hung : int;
  triggered : int;
  covered_blocks : int;
  total_blocks : int;
  coverage_percent : float;
  distinct_failure_traces : int;
  distinct_crash_traces : int;
  failure_clusters : int;
  crash_clusters : int;
  crash_cluster_detail : Test_case.t Clustering.cluster list;
  simulated_ms : float;
  sensitivity : float array;
  mutator : Mutator.stats;
  rare_blocks : int option;
  failure_curve : int array;
  stopped_early : bool;
  stop_iteration : int option;
}

let summarize explorer ~total_blocks ~stopped_early ~stop_iteration =
  let executed = Explorer.records explorer in
  (* The explorer's online indexes already hold the redundancy analysis:
     distinct-trace and cluster counts are O(1) reads, and the crash
     clusters are materialized once here and reused by
     {!crash_cluster_representatives} — the seed implementation re-ran the
     full quadratic clustering for the counts and again for the
     representatives. *)
  let failure_index = Explorer.failure_index explorer in
  let crash_index = Explorer.crash_index explorer in
  (* Items of [crash_index] were observed chronologically, so they align
     with the crash-stack-carrying records in [executed] order. *)
  let crash_cases =
    Array.of_list
      (List.filter (fun c -> c.Test_case.crash_stack <> None) executed)
  in
  let crash_cluster_detail =
    List.map
      (fun members ->
        let members = List.map (fun i -> crash_cases.(i)) members in
        { Clustering.representative = List.hd members; members })
      (Afex_quality.Index.clusters crash_index)
  in
  let curve = Array.make (List.length executed) 0 in
  let _ =
    List.fold_left
      (fun (i, acc) case ->
        let acc = if Test_case.failed case then acc + 1 else acc in
        curve.(i) <- acc;
        (i + 1, acc))
      (0, 0) executed
  in
  let covered = Explorer.covered_blocks explorer in
  {
    strategy = Config.strategy_name (Explorer.config explorer).Config.strategy;
    iterations = Explorer.iterations explorer;
    executed;
    failed = Explorer.failed_count explorer;
    crashed = Explorer.crashed_count explorer;
    hung = Explorer.hung_count explorer;
    triggered = Explorer.triggered_count explorer;
    covered_blocks = covered;
    total_blocks;
    coverage_percent =
      (if total_blocks = 0 then 0.0
       else 100.0 *. float_of_int covered /. float_of_int total_blocks);
    distinct_failure_traces = Afex_quality.Index.distinct failure_index;
    distinct_crash_traces = Afex_quality.Index.distinct crash_index;
    failure_clusters = Afex_quality.Index.cluster_count failure_index;
    crash_clusters = Afex_quality.Index.cluster_count crash_index;
    crash_cluster_detail;
    simulated_ms = Explorer.simulated_ms explorer;
    sensitivity = Explorer.sensitivity_probabilities explorer;
    mutator = Mutator.copy_stats (Explorer.mutator_stats explorer);
    rare_blocks =
      (match
         (Explorer.rarity_histogram explorer, (Explorer.config explorer).Config.rarity)
       with
      | Some hist, Some rc -> Some (Rarity.rare_count hist ~cutoff:rc.Config.cutoff)
      | _ -> None);
    failure_curve = curve;
    stopped_early;
    stop_iteration;
  }

let run ?transform ?stop ?time_budget_ms ~iterations config sub executor =
  let explorer = Explorer.create ?transform config sub executor in
  (* Matches are counted over distinct fault-space points, so strategies
     that sample with replacement (random search) cannot satisfy a "find
     all K" target by rediscovering the same fault. *)
  let matched = Hashtbl.create 16 and stop_iteration = ref None in
  let target_met () =
    match stop with Some s -> Hashtbl.length matched >= s.count | None -> false
  in
  let time_exhausted () =
    match time_budget_ms with
    | Some budget -> Explorer.simulated_ms explorer >= budget
    | None -> false
  in
  let rec loop remaining =
    if remaining <= 0 || target_met () || time_exhausted () then ()
    else begin
      match Explorer.next explorer with
      | None -> () (* exhaustive strategy ran out of space *)
      | Some proposal ->
          let case = Explorer.execute explorer proposal in
          (match stop with
          | Some s when s.matches case ->
              Hashtbl.replace matched (Afex_faultspace.Point.key case.Test_case.point) ();
              if Hashtbl.length matched >= s.count && !stop_iteration = None then
                stop_iteration := Some (Explorer.iterations explorer)
          | Some _ | None -> ());
          loop (remaining - 1)
    end
  in
  loop iterations;
  summarize explorer ~total_blocks:executor.Executor.total_blocks
    ~stopped_early:(target_met ()) ~stop_iteration:!stop_iteration

let top_faults result ~n =
  let sorted =
    List.sort
      (fun a b -> compare b.Test_case.impact a.Test_case.impact)
      result.executed
  in
  List.filteri (fun i _ -> i < n) sorted

let crash_cluster_representatives result =
  List.map
    (fun c -> c.Clustering.representative)
    result.crash_cluster_detail

let found_matching result matches =
  List.length (List.filter matches result.executed)

let pp_summary ppf r =
  Format.fprintf ppf
    "%s: %d tests, %d failed (%d crashes, %d hangs), coverage %.2f%%, %d/%d \
     distinct failure/crash traces, %.1fs simulated"
    r.strategy r.iterations r.failed r.crashed r.hung r.coverage_percent
    r.distinct_failure_traces r.distinct_crash_traces (r.simulated_ms /. 1000.0)

type space_result = {
  per_subspace : (string option * result) list;
  total_iterations : int;
  total_failed : int;
  total_crashed : int;
}

let run_space ?stop ~iterations config space executor =
  let subs = Afex_faultspace.Space.subspaces space in
  let cardinalities = List.map Afex_faultspace.Subspace.cardinality subs in
  let total_cardinality = max 1 (List.fold_left ( + ) 0 cardinalities) in
  let share card =
    max 1 (iterations * card / total_cardinality)
  in
  let per_subspace =
    List.mapi
      (fun i sub ->
        let budget = share (Afex_faultspace.Subspace.cardinality sub) in
        let config = { config with Config.seed = config.Config.seed + (31 * i) } in
        (Afex_faultspace.Subspace.label sub, run ?stop ~iterations:budget config sub executor))
      subs
  in
  {
    per_subspace;
    total_iterations =
      List.fold_left (fun acc (_, r) -> acc + r.iterations) 0 per_subspace;
    total_failed = List.fold_left (fun acc (_, r) -> acc + r.failed) 0 per_subspace;
    total_crashed = List.fold_left (fun acc (_, r) -> acc + r.crashed) 0 per_subspace;
  }

let pp_space_summary ppf sr =
  Format.fprintf ppf "union of %d subspaces: %d tests, %d failed, %d crashes@."
    (List.length sr.per_subspace) sr.total_iterations sr.total_failed sr.total_crashed;
  List.iter
    (fun (label, r) ->
      Format.fprintf ppf "  %-16s %a@."
        (Option.value label ~default:"(unlabelled)")
        pp_summary r)
    sr.per_subspace
