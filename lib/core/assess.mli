(** Impact-precision assessment of a result set (§5).

    After a session, AFEX re-runs its most interesting faults n times and
    attaches 1/Var(impact) to each, so developers can start from the
    failure scenarios that reproduce deterministically. *)

val impact_precision :
  Executor.t ->
  sensor:Afex_injector.Sensor.t ->
  trials:int ->
  Afex_faultspace.Scenario.t ->
  Afex_quality.Precision.t
(** Re-run one scenario [trials] times; impact is the sensor score of the
    raw outcome (coverage novelty excluded — it is session state, not a
    property of the fault). *)

val top_faults :
  Executor.t ->
  sensor:Afex_injector.Sensor.t ->
  trials:int ->
  n:int ->
  Session.result ->
  (Test_case.t * Afex_quality.Precision.t) list
(** Precision of the [n] highest-impact faults of a session, highest
    impact first. *)

val top_fault_rarity :
  Executor.t ->
  rarity:Rarity.t ->
  n:int ->
  Session.result ->
  (Test_case.t * float) list
(** Rarity bonus (against the session's final histogram) of the coverage
    each of the [n] highest-impact faults reaches on a single re-run —
    the companion signal to {!impact_precision}: precision says a fault
    reproduces, the bonus says it exercises code the session rarely
    touched. *)
