(** Exploration configuration. *)

type strategy =
  | Fitness_guided of Mutator.params
  | Random_search
  | Exhaustive

type rarity = {
  weight : float;
      (** multiplier on the {!Rarity.bonus} added to fitness, on the
          scale of the standard sensor (a failed test scores 10) *)
  cutoff : float;
      (** a block is rare while hit on fewer than [cutoff] of the tests
          observed so far (the FairFuzz rare-branch threshold) *)
  mask : bool;
      (** FairFuzz-style mutation masking: when a parent reached a block
          below the cutoff, pin the axes sensitivity marks as critical and
          mutate only the rest *)
}

type t = {
  seed : int;
  strategy : strategy;
  queue_capacity : int;  (** |Q_priority| *)
  initial_batch : int;
      (** number of random tests executed before guided mutation starts *)
  aging_decay : float;
      (** per-iteration multiplicative fitness decay in Q_priority *)
  retire_threshold : float;
      (** fitness below which aged tests are retired (can never have
          offspring) *)
  sensitivity_window : int;  (** n in the §3 sensitivity sum *)
  sensor : Afex_injector.Sensor.t;
  relevance : Afex_quality.Relevance.t option;
      (** optional practical-relevance model weighing fitness (§5, §7.5) *)
  feedback : bool;  (** online redundancy feedback loop (§7.4) *)
  eviction : Pqueue.eviction;  (** Q_priority eviction rule *)
  initial_seeds : Afex_faultspace.Point.t list;
      (** candidate tests executed before random initial generation —
          typically from static analysis (§4, see {!Seeding}); invalid or
          duplicate points are skipped *)
  setup_ms : float;
      (** fixed per-test environment setup/cleanup cost, charged to the
          simulated wall clock *)
  rarity : rarity option;
      (** rarity-guided search; [None] (the default) keeps the paper's
          fitness pipeline bit-for-bit reproducible *)
}

val fitness_guided : ?seed:int -> unit -> t
(** Paper-faithful defaults: σ = |Ai|/5, queue of 50, initial batch of 25,
    aging decay 0.98, retirement below 0.5, sensitivity window 20, the
    §6.4 standard sensor, no relevance model, feedback off. *)

val random_search : ?seed:int -> unit -> t
val exhaustive : ?seed:int -> unit -> t

val default_rarity : rarity
(** weight 2 (a never-hit block is worth a fifth of a failed test under
    the standard sensor — a nudge towards rare coverage, not an override
    of the impact signal; heavier weights measurably slow the
    time-to-first-violation races of [bench rarity]), cutoff 0.10,
    masking off. *)

val with_rarity : ?weight:float -> ?cutoff:float -> ?mask:bool -> t -> t
(** Enable rarity guidance on a configuration, defaulting unspecified
    knobs from {!default_rarity}.
    @raise Invalid_argument on a negative weight or a cutoff outside
    (0, 1). *)

val strategy_name : strategy -> string
