module Sensor = Afex_injector.Sensor
module Precision = Afex_quality.Precision

let impact_precision executor ~sensor ~trials scenario =
  Precision.measure ~trials (fun () ->
      let outcome = executor.Executor.run_scenario scenario in
      sensor.Sensor.score { Sensor.outcome; new_blocks = 0 })

let top_faults executor ~sensor ~trials ~n result =
  List.map
    (fun (case : Test_case.t) ->
      let scenario = Afex_injector.Fault.to_scenario case.Test_case.fault in
      (case, impact_precision executor ~sensor ~trials scenario))
    (Session.top_faults result ~n)

(* Executed records do not retain their coverage sets (only the novelty
   count), so rarity is assessed the same way precision is: re-run the
   fault and score the observed coverage against the session's final
   histogram. *)
let top_fault_rarity executor ~rarity ~n result =
  List.map
    (fun (case : Test_case.t) ->
      let scenario = Afex_injector.Fault.to_scenario case.Test_case.fault in
      let outcome = executor.Executor.run_scenario scenario in
      (case, Rarity.bonus rarity outcome.Afex_injector.Outcome.coverage))
    (Session.top_faults result ~n)
