(** A fault exploration session (§6): drive the explorer against an
    executor until an iteration budget or a search target is met, then
    summarize everything the paper's tables report. *)

type stop = {
  matches : Test_case.t -> bool;
  count : int;
      (** stop once this many {e distinct} fault-space points matched
          (rediscovering the same fault does not count twice) *)
}

type result = {
  strategy : string;
  iterations : int;
  executed : Test_case.t list;  (** chronological *)
  failed : int;  (** injections that made the test fail (incl. crash/hang) *)
  crashed : int;
  hung : int;
  triggered : int;
  covered_blocks : int;
  total_blocks : int;
  coverage_percent : float;
  distinct_failure_traces : int;
      (** exactly-distinct injection stacks among failing tests — the
          "unique failures" of Table 5 *)
  distinct_crash_traces : int;
  failure_clusters : int;  (** Levenshtein redundancy clusters (§5) *)
  crash_clusters : int;
  crash_cluster_detail : Test_case.t Afex_quality.Clustering.cluster list;
      (** the crash redundancy clusters themselves (largest first, one
          test case per member), built once from the explorer's online
          index and reused by {!crash_cluster_representatives} *)
  simulated_ms : float;
  sensitivity : float array;  (** final axis probabilities *)
  mutator : Mutator.stats;
      (** candidate-generation accounting (masked accepts/rejects and
          random fallbacks by cause) — how much of the session was genuine
          guided mutation vs. attempt-budget fallback *)
  rare_blocks : int option;
      (** blocks still below the rarity cutoff at session end, when
          rarity guidance was enabled (§7.2's recovery-code sliver) *)
  failure_curve : int array;
      (** cumulative failed-test count after each iteration (Fig. 8) *)
  stopped_early : bool;
  stop_iteration : int option;
      (** iteration at which the [stop] target was satisfied *)
}

val summarize :
  Explorer.t ->
  total_blocks:int ->
  stopped_early:bool ->
  stop_iteration:int option ->
  result
(** Fold an explorer's final state into a {!result}. Exposed so drivers
    other than {!run} — notably the multicore pool in [afex_cluster] —
    can report through the same summary type. *)

val run :
  ?transform:(Afex_faultspace.Point.t -> Afex_faultspace.Point.t) ->
  ?stop:stop ->
  ?time_budget_ms:float ->
  iterations:int ->
  Config.t ->
  Afex_faultspace.Subspace.t ->
  Executor.t ->
  result
(** Explores until the iteration budget, the [stop] target, or the
    simulated wall-clock [time_budget_ms] is exhausted — the three stopping
    rules of §6.4 step 6 ("after some specified amount of time, after a
    number of tests executed, or after a given threshold is met"). *)

val top_faults : result -> n:int -> Test_case.t list
(** Highest measured impact first. *)

val crash_cluster_representatives : result -> Test_case.t list
(** One representative per crash-stack redundancy cluster, the paper's
    "map of faults, clustered by degree of redundancy". *)

val found_matching : result -> (Test_case.t -> bool) -> int
(** Number of executed tests satisfying a predicate. *)

val pp_summary : Format.formatter -> result -> unit

(** {2 Union spaces}

    Fault space descriptions are unions of subspaces (Fig. 4 unions two
    hyperspaces with [";"]); a union is explored by splitting the budget
    across its members proportionally to their cardinality. *)

type space_result = {
  per_subspace : (string option * result) list;
      (** subspace label paired with its session result *)
  total_iterations : int;
  total_failed : int;
  total_crashed : int;
}

val run_space :
  ?stop:stop ->
  iterations:int ->
  Config.t ->
  Afex_faultspace.Space.t ->
  Executor.t ->
  space_result
(** Each subspace gets a fresh explorer seeded from the session seed and
    its index, with at least one iteration per non-empty share. *)

val pp_space_summary : Format.formatter -> space_result -> unit
