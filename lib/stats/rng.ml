type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }
let copy t = { state = t.state }
let state t = t.state
let of_state state = { state }
let set_state t state = t.state <- state

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix t.state

let split t =
  let s = bits64 t in
  { state = mix s }

let split_n t n =
  if n < 0 then invalid_arg "Rng.split_n: negative count";
  Array.init n (fun _ -> split t)

(* Non-negative 62-bit value, safe to use as an OCaml int. *)
let positive_int t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let max_value = (1 lsl 62) - 1 in
  let limit = max_value - (max_value mod bound) in
  let rec draw () =
    let v = positive_int t in
    if v >= limit then draw () else v mod bound
  in
  draw ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  bound *. (v /. 9007199254740992.0 (* 2^53 *))

let bool t = Int64.logand (bits64 t) 1L = 1L
let bernoulli t p = float t 1.0 < p

let gaussian t ~mu ~sigma =
  (* Box-Muller; we only need one deviate per call, simplicity wins. *)
  let rec nonzero () =
    let u = float t 1.0 in
    if u <= 1e-300 then nonzero () else u
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  let r = sqrt (-2.0 *. log u1) in
  mu +. (sigma *. r *. cos (2.0 *. Float.pi *. u2))

let pick t a =
  if Array.length a = 0 then invalid_arg "Rng.pick: empty array";
  a.(int t (Array.length a))

let pick_list t l =
  match l with
  | [] -> invalid_arg "Rng.pick_list: empty list"
  | _ -> List.nth l (int t (List.length l))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let shuffled_list t l =
  let a = Array.of_list l in
  shuffle t a;
  Array.to_list a

let permutation t n =
  let a = Array.init n (fun i -> i) in
  shuffle t a;
  a
