(** Deterministic pseudo-random number generation.

    All stochastic behaviour in AFEX flows through this module so that every
    experiment is reproducible from a seed. The generator is splitmix64,
    which is fast, has a 64-bit state, and supports cheap splitting into
    statistically independent streams. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. Equal seeds yield equal streams. *)

val copy : t -> t
(** [copy t] is an independent generator with the same current state. *)

val state : t -> int64
(** The raw 64-bit stream position. Together with {!of_state} this makes
    a generator checkpointable: a campaign snapshot stores the positions
    of its RNG streams and a resumed run continues them exactly where the
    interrupted one stopped. *)

val of_state : int64 -> t
(** [of_state s] is a generator whose next outputs equal those of any
    generator whose {!state} was [s]. Inverse of {!state}. *)

val set_state : t -> int64 -> unit
(** Rewind/fast-forward an existing generator to a saved position —
    for generators owned by an enclosing structure (e.g. a scheduler)
    whose field cannot be replaced. *)

val split : t -> t
(** [split t] advances [t] and returns a new generator whose stream is
    statistically independent from the remainder of [t]'s stream. *)

val split_n : t -> int -> t array
(** [split_n t n] draws [n] independent streams from [t] (advancing it [n]
    times). Stream [i] depends only on [t]'s state and [i], so a batch of
    parallel consumers seeded this way is replayable regardless of how the
    work is later scheduled. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive.
    @raise Invalid_argument if [hi < lo]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val bernoulli : t -> float -> bool
(** [bernoulli t p] is [true] with probability [p]. *)

val gaussian : t -> mu:float -> sigma:float -> float
(** Box-Muller normal deviate. *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array. @raise Invalid_argument on [||]. *)

val pick_list : t -> 'a list -> 'a
(** Uniform element of a non-empty list. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val shuffled_list : t -> 'a list -> 'a list
(** Functional shuffle of a list. *)

val permutation : t -> int -> int array
(** [permutation t n] is a uniform permutation of [0 .. n-1]. *)
