module Replsim = Afex_simtarget.Replsim
module Axis = Afex_faultspace.Axis
module Subspace = Afex_faultspace.Subspace
module Value = Afex_faultspace.Value

let kind_symbols = List.map Replsim.kind_to_string Replsim.all_kinds

let arm_axes cluster suffix =
  let cfg = Replsim.config cluster in
  [
    Axis.range ("round" ^ suffix) ~lo:0 ~hi:(cfg.Replsim.rounds - 1);
    Axis.range ("replica" ^ suffix) ~lo:0 ~hi:(cfg.Replsim.n - 1);
    Axis.symbols ("kind" ^ suffix) kind_symbols;
    Axis.range ("peer" ^ suffix) ~lo:0 ~hi:(cfg.Replsim.n - 1);
  ]

let space cluster = Subspace.make ~label:"replsim.faults" (arm_axes cluster "")

let multi_space ?(arms = 2) cluster =
  if arms < 1 then invalid_arg "Replfault.multi_space: arms < 1";
  Subspace.make ~label:"replsim.multi"
    (List.concat_map
       (fun i -> arm_axes cluster (if i = 0 then "" else string_of_int (i + 1)))
       (List.init arms (fun i -> i)))

(* --- Fault.t embedding ------------------------------------------------ *)

let errno_of_kind = function
  | Replsim.Kill -> "EKILL"
  | Replsim.Drop_acks -> "EDROPACK"
  | Replsim.Stale_backup -> "ESTALE"
  | Replsim.Delayed_rejoin -> "EDELAY"

let fault_of_rfault (rf : Replsim.fault) =
  Fault.make ~test_id:rf.Replsim.replica
    ~func:("repl_" ^ Replsim.kind_to_string rf.Replsim.kind)
    ~call_number:rf.Replsim.round
    ~errno:(errno_of_kind rf.Replsim.kind)
    ~retval:rf.Replsim.peer ()

let rfault_of_fault (f : Fault.t) =
  let prefix = "repl_" in
  let np = String.length prefix in
  if String.length f.Fault.func <= np || String.sub f.Fault.func 0 np <> prefix then
    Error (Printf.sprintf "not a replsim fault encoding: %s" f.Fault.func)
  else
    match
      Replsim.kind_of_string
        (String.sub f.Fault.func np (String.length f.Fault.func - np))
    with
    | Error _ as e -> e
    | Ok kind ->
        Ok
          {
            Replsim.round = f.Fault.call_number;
            replica = f.Fault.test_id;
            kind;
            peer = f.Fault.retval;
          }

(* --- scenario codec --------------------------------------------------- *)

let scenario_of_faults faults =
  List.concat
    (List.mapi
       (fun i (rf : Replsim.fault) ->
         let suffix = if i = 0 then "" else string_of_int (i + 1) in
         [
           ("round" ^ suffix, Value.Int rf.Replsim.round);
           ("replica" ^ suffix, Value.Int rf.Replsim.replica);
           ("kind" ^ suffix, Value.Sym (Replsim.kind_to_string rf.Replsim.kind));
           ("peer" ^ suffix, Value.Int rf.Replsim.peer);
         ])
       faults)

type partial_arm = {
  p_round : int;
  mutable p_replica : int;
  mutable p_kind : Replsim.kind option;
  mutable p_peer : int;
}

let faults_of_scenario scenario =
  (* Groups of attributes, one per arm; a group starts at each "round"
     binding. Suffixed names (round2, kind2, ... from compound search
     spaces) are accepted, exactly as in {!Multifault.of_scenario}. *)
  let strip_suffix name prefix =
    let np = String.length prefix in
    String.length name >= np
    && String.sub name 0 np = prefix
    && String.for_all
         (fun c -> c >= '0' && c <= '9')
         (String.sub name np (String.length name - np))
  in
  let groups = ref [] and current = ref None in
  let flush () =
    match !current with
    | Some arm -> groups := arm :: !groups
    | None -> ()
  in
  let err =
    List.fold_left
      (fun err (name, v) ->
        match err with
        | Some _ -> err
        | None -> (
            match v with
            | Value.Int r when strip_suffix name "round" ->
                flush ();
                current := Some { p_round = r; p_replica = 0; p_kind = None; p_peer = 0 };
                None
            | Value.Int i when strip_suffix name "replica" -> (
                match !current with
                | Some arm ->
                    arm.p_replica <- i;
                    None
                | None -> Some (Printf.sprintf "%s before any round" name))
            | Value.Sym k when strip_suffix name "kind" -> (
                match !current with
                | Some arm -> (
                    match Replsim.kind_of_string k with
                    | Ok kind ->
                        arm.p_kind <- Some kind;
                        None
                    | Error e -> Some e)
                | None -> Some (Printf.sprintf "%s before any round" name))
            | Value.Int p when strip_suffix name "peer" -> (
                match !current with
                | Some arm ->
                    arm.p_peer <- p;
                    None
                | None -> Some (Printf.sprintf "%s before any round" name))
            | _ -> Some (Printf.sprintf "unexpected attribute %s" name)))
      None scenario
  in
  flush ();
  match err with
  | Some e -> Error e
  | None -> (
      match List.rev !groups with
      | [] -> Error "no fault arms"
      | groups ->
          let rec build acc = function
            | [] -> Ok (List.rev acc)
            | g :: rest -> (
                match g.p_kind with
                | None -> Error "arm missing kind"
                | Some kind ->
                    build
                      ({
                         Replsim.round = g.p_round;
                         replica = g.p_replica;
                         kind;
                         peer = g.p_peer;
                       }
                      :: acc)
                      rest)
          in
          build [] groups)

(* --- execution -------------------------------------------------------- *)

let outcome_fault faults (result : Replsim.run_result) =
  (* The arm the outcome is attributed to: the latest arm activated at or
     before the violation round — in a correlated scenario, the "second
     fault" that landed inside the window — falling back to the first. *)
  let bound =
    match result.Replsim.violation with
    | Some v -> v.Replsim.v_round
    | None -> max_int
  in
  let best =
    List.fold_left
      (fun best (rf : Replsim.fault) ->
        if rf.Replsim.round > bound then best
        else
          match best with
          | None -> Some rf
          | Some b -> if rf.Replsim.round >= b.Replsim.round then Some rf else best)
      None faults
  in
  match best with Some rf -> rf | None -> List.hd faults

let run_scenario cluster scenario =
  match faults_of_scenario scenario with
  | Error m -> invalid_arg ("Replfault.run_scenario: " ^ m)
  | Ok faults ->
      let result = Replsim.run cluster ~faults in
      let rf = outcome_fault faults result in
      let status, crash_stack =
        match result.Replsim.violation with
        | Some v when v.Replsim.invariant = "liveness" -> (Outcome.Hung, None)
        | Some v -> (Outcome.Crashed, Some v.Replsim.site)
        | None ->
            if result.Replsim.commits < (Replsim.baseline cluster).Replsim.commits
            then (Outcome.Test_failed, None)
            else (Outcome.Passed, None)
      in
      let injection_stack =
        if result.Replsim.triggered then
          Some
            [
              "repl:" ^ Replsim.kind_to_string rf.Replsim.kind;
              "replsim:round_loop";
            ]
        else None
      in
      {
        Outcome.fault = fault_of_rfault rf;
        status;
        triggered = result.Replsim.triggered;
        coverage = result.Replsim.coverage;
        injection_stack;
        crash_stack;
        duration_ms = result.Replsim.elapsed_ms;
      }

let description cluster =
  let cfg = Replsim.config cluster in
  Printf.sprintf "replsim n=%d rounds=%d (consensus recovery under churn)"
    cfg.Replsim.n cfg.Replsim.rounds

let commit_loss cluster fault =
  match rfault_of_fault fault with
  | Error _ -> 0.0
  | Ok rf ->
      let base = float_of_int (Replsim.baseline cluster).Replsim.commits in
      if base <= 0.0 then 0.0
      else
        let injected =
          float_of_int (Replsim.run cluster ~faults:[ rf ]).Replsim.commits
        in
        Float.max 0.0 (100.0 *. (base -. injected) /. base)

let commit_loss_sensor cluster =
  {
    Sensor.name = "commit-loss";
    score =
      (fun { Sensor.outcome; new_blocks } ->
        commit_loss cluster outcome.Outcome.fault +. float_of_int new_blocks);
  }

(* --- churn-schedule seeding ------------------------------------------- *)

let kind_index k =
  let rec go i = function
    | [] -> 0
    | k' :: rest -> if k' = k then i else go (i + 1) rest
  in
  go 0 Replsim.all_kinds

let seed_points ?(arms = 2) ?(max_seeds = 400) cluster =
  (* §4 seeding, adapted: for callsite targets the static analyzer flags
     suspect error-handling sites; here the statically observable
     structure is the churn schedule (when each replica's recovery
     window opens) and the fault-free leader trace. Each scheduled
     recovery yields candidate correlated scenarios — corrupt the
     replica's backup ahead of its window and kill the leader inside it,
     or sever the catch-up stream and kill the recovering replica — that
     the guided search evaluates first and then refines by mutation.
     Random search gets no such head start, which is the comparison the
     bench draws. *)
  if arms < 1 then invalid_arg "Replfault.seed_points: arms < 1";
  if max_seeds < 0 then invalid_arg "Replfault.seed_points: max_seeds < 0";
  let cfg = Replsim.config cluster in
  let trace = (Replsim.baseline cluster).Replsim.leader_trace in
  (* Leader in place when round [t] starts (phase order: faults land
     before that round's churn and election). *)
  let leader_entering t =
    if t >= 1 && t < Array.length trace then trace.(t - 1) else -1
  in
  let coords (rf : Replsim.fault) =
    [
      rf.Replsim.round;
      rf.Replsim.replica;
      kind_index rf.Replsim.kind;
      rf.Replsim.peer;
    ]
  in
  let rec take n = function
    | _ when n = 0 -> []
    | [] -> []
    | x :: rest -> x :: take (n - 1) rest
  in
  let pad rfs =
    (* Fit the compound width: drop surplus arms, repeat the last to fill
       (an exact duplicate fault adds nothing). *)
    let rfs = take arms rfs in
    let last = List.nth rfs (List.length rfs - 1) in
    rfs @ List.init (arms - List.length rfs) (fun _ -> last)
  in
  let candidates =
    List.concat_map
      (fun (t_c, r) ->
        let t_stale = t_c - (2 * cfg.Replsim.backup_period) in
        List.concat_map
          (fun dt ->
            let t_k = t_c + dt in
            if
              t_stale < 1 || t_k >= cfg.Replsim.rounds
              || dt > cfg.Replsim.recovery_rounds
              || dt >= cfg.Replsim.drop_window
            then []
            else
              let l = leader_entering t_k in
              if l < 0 || l = r || leader_entering (t_c + 1) <> l then []
              else
                [
                  [
                    {
                      Replsim.round = t_stale;
                      replica = r;
                      kind = Replsim.Stale_backup;
                      peer = 0;
                    };
                    { Replsim.round = t_k; replica = l; kind = Replsim.Kill; peer = 0 };
                  ];
                  [
                    {
                      Replsim.round = t_c + 1;
                      replica = r;
                      kind = Replsim.Drop_acks;
                      peer = l;
                    };
                    { Replsim.round = t_k; replica = r; kind = Replsim.Kill; peer = 0 };
                  ];
                ])
          [ 2; 4 ])
      (Replsim.churn_schedule cluster)
  in
  let candidates =
    if arms = 1 then
      (* A single-arm space can only carry one fault: seed the windows'
         atomic ingredients instead (they cover the partial-condition
         blocks that grade the search). *)
      List.concat_map (fun rfs -> List.map (fun rf -> [ rf ]) rfs) candidates
    else candidates
  in
  let seen = Hashtbl.create 64 in
  let out = ref [] and count = ref 0 in
  List.iter
    (fun rfs ->
      if !count < max_seeds then begin
        let p = Afex_faultspace.Point.of_list (List.concat_map coords (pad rfs)) in
        let key = Afex_faultspace.Point.key p in
        if not (Hashtbl.mem seen key) then begin
          Hashtbl.add seen key ();
          out := p :: !out;
          incr count
        end
      end)
    candidates;
  List.rev !out

let deep_outcome (o : Outcome.t) =
  match o.Outcome.crash_stack with
  | None -> false
  | Some frames ->
      List.exists
        (fun inv -> List.mem ("invariant:" ^ inv) frames)
        Replsim.deep_invariants
