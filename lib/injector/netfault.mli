(** Network-level fault injection: a second injector type, demonstrating
    that the explorer is independent of the injection tool (§3: AFEX is
    "equally suitable to other kinds of fault injection").

    A fault is a dropped TCP packet, identified by ⟨workload, connection,
    packet index⟩; the impact of interest is the drop in served requests
    per second (§2's motivating example). Scenarios use attribute names
    [testId] (workload), [connection] and [packet]. *)

val space : Afex_simtarget.Netsim.server -> Afex_faultspace.Subspace.t
(** Axes: [testId] over the workloads, [connection] and [packet] over the
    server-wide maxima (coordinates beyond a workload's actual shape are
    benign no-ops — holes, as in §2). *)

val drop_of_scenario :
  Afex_faultspace.Scenario.t -> (Afex_simtarget.Netsim.drop, string) result

val drop_of_fault : Fault.t -> Afex_simtarget.Netsim.drop
(** Inverse of the synthesized-fault encoding used in outcomes: [test_id]
    is the workload, [call_number] the packet index, [retval] the
    connection, [func] = ["tcp_drop"].
    @raise Invalid_argument on any other [func] (notably the burst
    encoding, whose fields would otherwise mis-decode as a drop). *)

val run_scenario :
  Afex_simtarget.Netsim.server ->
  Afex_faultspace.Scenario.t ->
  Outcome.t
(** Runs the workload with the packet dropped and adapts the result to the
    sensor interface: the outcome fails iff requests were lost (a fragile
    client aborted); [duration_ms] is the slowed-down wall time, so
    duration-based sensors see retransmission latency too. The coverage
    bitset marks completed requests (globally indexed) so coverage-driven
    search still works, and the synthesized fault follows the
    {!drop_of_fault} encoding.
    @raise Invalid_argument on a scenario without the three attributes. *)

val total_request_blocks : Afex_simtarget.Netsim.server -> int
(** Size of the coverage domain: total requests across all workloads. *)

val throughput_loss_sensor : Afex_simtarget.Netsim.server -> Sensor.t
(** Impact = percentage of the injected workload's baseline throughput
    lost (0 for a harmless drop) plus 1 point per newly covered request.
    The loss is recomputed from the outcome's fault encoding — runs are
    deterministic, so this is exact. *)

val throughput_loss : Afex_simtarget.Netsim.server -> Fault.t -> float
(** Percentage of baseline throughput lost by one drop (0 for a fault
    that is not drop-encoded). *)

(** {2 Burst drops}

    Loss bursts use the description language's [< lo, hi >] sub-interval
    domains: one fault is a whole window of consecutive packets lost on one
    connection, exercising the [Subinterval] axis type end-to-end. *)

val burst_space : Afex_simtarget.Netsim.server -> Afex_faultspace.Subspace.t
(** Axes: [testId], [connection], and [window : < 0, max_packets-1 >]. *)

val burst_of_scenario :
  Afex_faultspace.Scenario.t -> (Afex_simtarget.Netsim.burst, string) result
(** Expects [testId], [connection] and a [window] pair attribute. *)

val burst_of_fault : Fault.t -> (Afex_simtarget.Netsim.burst, string) result
(** Bursts are encoded in outcome faults as [func = "tcp_burst"],
    [errno = "EDROP[lo,hi]"], [call_number = lo], [retval = connection]. *)

val run_burst_scenario :
  Afex_simtarget.Netsim.server -> Afex_faultspace.Scenario.t -> Outcome.t

val burst_throughput_loss : Afex_simtarget.Netsim.server -> Fault.t -> float
val burst_loss_sensor : Afex_simtarget.Netsim.server -> Sensor.t
