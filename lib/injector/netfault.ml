module Netsim = Afex_simtarget.Netsim
module Axis = Afex_faultspace.Axis
module Subspace = Afex_faultspace.Subspace
module Value = Afex_faultspace.Value
module Bitset = Afex_stats.Bitset

let space server =
  Subspace.make ~label:(server.Netsim.name ^ ".drops")
    [
      Axis.range "testId" ~lo:0 ~hi:(Array.length server.Netsim.workloads - 1);
      Axis.range "connection" ~lo:0 ~hi:(Netsim.max_connections server - 1);
      Axis.range "packet" ~lo:0 ~hi:(Netsim.max_packets server - 1);
    ]

let drop_of_scenario scenario =
  let int_field name =
    match List.assoc_opt name scenario with
    | Some (Value.Int v) -> Ok v
    | Some v -> Error (Printf.sprintf "%s: expected integer, got %s" name (Value.to_string v))
    | None -> Error (Printf.sprintf "missing attribute %s" name)
  in
  match int_field "testId", int_field "connection", int_field "packet" with
  | Ok workload, Ok connection, Ok packet ->
      Ok { Netsim.workload; connection; packet }
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e

let fault_of_drop (d : Netsim.drop) =
  Fault.make ~test_id:d.Netsim.workload ~func:"tcp_drop" ~call_number:d.Netsim.packet
    ~errno:"EDROP" ~retval:d.Netsim.connection ()

let drop_of_fault (f : Fault.t) =
  (* Guard the namespace: a burst fault shares the field layout (test_id,
     retval, call_number = window lo), so decoding it here would silently
     fabricate a single-packet drop — surfaced by the codec round-trip
     properties, which demand that only drop-encoded faults decode. *)
  if not (String.equal f.Fault.func "tcp_drop") then
    invalid_arg
      (Printf.sprintf "Netfault.drop_of_fault: not a drop fault encoding: %s"
         f.Fault.func);
  {
    Netsim.workload = f.Fault.test_id;
    connection = f.Fault.retval;
    packet = f.Fault.call_number;
  }

let total_request_blocks server =
  Array.fold_left
    (fun acc w -> acc + Netsim.workload_requests w)
    0 server.Netsim.workloads

(* Global request-block index of workload w's first request. *)
let block_offset server workload =
  let offset = ref 0 in
  for i = 0 to workload - 1 do
    offset := !offset + Netsim.workload_requests server.Netsim.workloads.(i)
  done;
  !offset

let run_scenario server scenario =
  match drop_of_scenario scenario with
  | Error m -> invalid_arg ("Netfault.run_scenario: " ^ m)
  | Ok drop ->
      let workload = drop.Netsim.workload in
      if workload < 0 || workload >= Array.length server.Netsim.workloads then
        invalid_arg (Printf.sprintf "Netfault.run_scenario: workload %d out of range" workload);
      let result = Netsim.run server ~drop ~workload () in
      let coverage = Bitset.create (total_request_blocks server) in
      let offset = block_offset server workload in
      (* Completed requests are covered in order of completion; losing the
         tail of a connection leaves its blocks uncovered. *)
      for i = 0 to result.Netsim.requests_completed - 1 do
        Bitset.set coverage (offset + i)
      done;
      let lost = result.Netsim.requests_attempted - result.Netsim.requests_completed in
      let triggered = lost > 0 || result.Netsim.aborted_connection <> None
                      || result.Netsim.elapsed_ms
                         > (Netsim.baseline server ~workload).Netsim.elapsed_ms +. 1e-9 in
      let injection_stack =
        if triggered then
          Some
            [
              Printf.sprintf "net:connection%02d" drop.Netsim.connection;
              Printf.sprintf "workload:%s" server.Netsim.workloads.(workload).Netsim.name;
            ]
        else None
      in
      {
        Outcome.fault = fault_of_drop drop;
        status = (if lost > 0 then Outcome.Test_failed else Outcome.Passed);
        triggered;
        coverage;
        injection_stack;
        crash_stack = None;
        duration_ms = result.Netsim.elapsed_ms;
      }

let throughput_loss server fault =
  (* Mirror burst_throughput_loss: a foreign fault encoding scores 0
     instead of being re-run as a fabricated drop. *)
  if not (String.equal fault.Fault.func "tcp_drop") then 0.0
  else
  let drop = drop_of_fault fault in
  let workload = drop.Netsim.workload in
  if workload < 0 || workload >= Array.length server.Netsim.workloads then 0.0
  else begin
    let base = (Netsim.baseline server ~workload).Netsim.throughput_rps in
    let injected = (Netsim.run server ~drop ~workload ()).Netsim.throughput_rps in
    if base <= 0.0 then 0.0
    else Float.max 0.0 (100.0 *. (base -. injected) /. base)
  end

let throughput_loss_sensor server =
  {
    Sensor.name = "throughput-loss";
    score =
      (fun { Sensor.outcome; new_blocks } ->
        (* Deterministic re-run keyed by the outcome's fault encoding. *)
        throughput_loss server outcome.Outcome.fault +. float_of_int new_blocks);
  }

let burst_space server =
  Subspace.make ~label:(server.Netsim.name ^ ".bursts")
    [
      Axis.range "testId" ~lo:0 ~hi:(Array.length server.Netsim.workloads - 1);
      Axis.range "connection" ~lo:0 ~hi:(Netsim.max_connections server - 1);
      Axis.subinterval "window" ~lo:0 ~hi:(Netsim.max_packets server - 1);
    ]

let burst_of_scenario scenario =
  let int_field name =
    match List.assoc_opt name scenario with
    | Some (Value.Int v) -> Ok v
    | Some v -> Error (Printf.sprintf "%s: expected integer, got %s" name (Value.to_string v))
    | None -> Error (Printf.sprintf "missing attribute %s" name)
  in
  let window =
    match List.assoc_opt "window" scenario with
    | Some (Value.Pair (lo, hi)) -> Ok (lo, hi)
    | Some v -> Error (Printf.sprintf "window: expected sub-interval, got %s" (Value.to_string v))
    | None -> Error "missing attribute window"
  in
  match int_field "testId", int_field "connection", window with
  | Ok b_workload, Ok b_connection, Ok window ->
      Ok { Netsim.b_workload; b_connection; window }
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e

let fault_of_burst (b : Netsim.burst) =
  let lo, hi = b.Netsim.window in
  Fault.make ~test_id:b.Netsim.b_workload ~func:"tcp_burst" ~call_number:lo
    ~errno:(Printf.sprintf "EDROP[%d,%d]" lo hi)
    ~retval:b.Netsim.b_connection ()

let burst_of_fault (f : Fault.t) =
  match Scanf.sscanf_opt f.Fault.errno "EDROP[%d,%d]" (fun lo hi -> (lo, hi)) with
  | Some window ->
      Ok { Netsim.b_workload = f.Fault.test_id; b_connection = f.Fault.retval; window }
  | None -> Error (Printf.sprintf "not a burst fault encoding: %s" f.Fault.errno)

let run_burst_scenario server scenario =
  match burst_of_scenario scenario with
  | Error m -> invalid_arg ("Netfault.run_burst_scenario: " ^ m)
  | Ok burst ->
      let workload = burst.Netsim.b_workload in
      if workload < 0 || workload >= Array.length server.Netsim.workloads then
        invalid_arg
          (Printf.sprintf "Netfault.run_burst_scenario: workload %d out of range" workload);
      let result = Netsim.run server ~burst ~workload () in
      let coverage = Bitset.create (total_request_blocks server) in
      let offset = block_offset server workload in
      for i = 0 to result.Netsim.requests_completed - 1 do
        Bitset.set coverage (offset + i)
      done;
      let lost = result.Netsim.requests_attempted - result.Netsim.requests_completed in
      let baseline = Netsim.baseline server ~workload in
      let triggered =
        lost > 0
        || result.Netsim.aborted_connection <> None
        || result.Netsim.elapsed_ms > baseline.Netsim.elapsed_ms +. 1e-9
      in
      let injection_stack =
        if triggered then
          Some
            [
              Printf.sprintf "net:connection%02d" burst.Netsim.b_connection;
              Printf.sprintf "workload:%s" server.Netsim.workloads.(workload).Netsim.name;
            ]
        else None
      in
      {
        Outcome.fault = fault_of_burst burst;
        status = (if lost > 0 then Outcome.Test_failed else Outcome.Passed);
        triggered;
        coverage;
        injection_stack;
        crash_stack = None;
        duration_ms = result.Netsim.elapsed_ms;
      }

let burst_throughput_loss server fault =
  match burst_of_fault fault with
  | Error _ -> 0.0
  | Ok burst ->
      let workload = burst.Netsim.b_workload in
      if workload < 0 || workload >= Array.length server.Netsim.workloads then 0.0
      else begin
        let base = (Netsim.baseline server ~workload).Netsim.throughput_rps in
        let injected = (Netsim.run server ~burst ~workload ()).Netsim.throughput_rps in
        if base <= 0.0 then 0.0
        else Float.max 0.0 (100.0 *. (base -. injected) /. base)
      end

let burst_loss_sensor server =
  {
    Sensor.name = "burst-throughput-loss";
    score =
      (fun { Sensor.outcome; new_blocks } ->
        burst_throughput_loss server outcome.Outcome.fault +. float_of_int new_blocks);
  }
