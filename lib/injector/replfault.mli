(** Injector adapter for the replicated-consensus target
    ({!Afex_simtarget.Replsim}): fault spaces over
    ⟨round, replica, kind, peer⟩ coordinates, scenario and {!Fault.t}
    codecs, and an {!Afex.Executor}-shaped entry point.

    A single-arm space explores atomic faults (kill, ack drop, stale
    backup, delayed rejoin); the compound space arms several at once so
    the search can express correlated scenarios like "kill replica i
    during its recovery while the network drops acks from replica j" —
    the §6 multi-fault shape that reaches the planted deep bugs. *)

module Replsim = Afex_simtarget.Replsim

val kind_symbols : string list
(** Axis order of the [kind] symbols; matches {!Replsim.all_kinds}. *)

val space : Replsim.cluster -> Afex_faultspace.Subspace.t
(** [round : \[0, rounds-1\]] x [replica : \[0, n-1\]] x [kind] x
    [peer : \[0, n-1\]]. *)

val multi_space : ?arms:int -> Replsim.cluster -> Afex_faultspace.Subspace.t
(** [arms] (default 2) suffixed ⟨round, replica, kind, peer⟩ groups
    ([round2], [replica2], ... for the second arm), in the same suffix
    idiom as {!Afex_simtarget.Spaces.multi}.
    @raise Invalid_argument on [arms < 1]. *)

val fault_of_rfault : Replsim.fault -> Fault.t
(** Embedding into the generic fault record (for outcomes, exports and
    clustering): [test_id] carries the replica, [call_number] the round,
    [retval] the peer, [func] is ["repl_<kind>"]. *)

val rfault_of_fault : Fault.t -> (Replsim.fault, string) result
(** Inverse of {!fault_of_rfault}. *)

val scenario_of_faults : Replsim.fault list -> Afex_faultspace.Scenario.t
(** One ⟨round, replica, kind, peer⟩ binding group per arm, later arms
    suffixed. *)

val faults_of_scenario :
  Afex_faultspace.Scenario.t -> (Replsim.fault list, string) result
(** Parses one or more arm groups; a group starts at each [round]
    binding (suffixed attribute names from compound spaces are
    accepted). Errors on an empty scenario, an attribute before any
    [round], a group missing its [kind], or an unknown kind symbol. *)

val run_scenario : Replsim.cluster -> Afex_faultspace.Scenario.t -> Outcome.t
(** Decode, simulate, and map the result: a safety-invariant violation
    is a [Crashed] outcome whose crash stack is the violation's stable
    synthetic site; a liveness violation is [Hung]; a fault-free-of-
    violations run that still lost commits against the baseline is
    [Test_failed]; anything else passes. The outcome's fault is the
    latest arm activated at or before the violation round (the "second
    fault" of a correlated scenario). Wrap it with
    [Afex.Executor.of_scenario_fn ~total_blocks:(Replsim.total_blocks c)]
    to drive the explorer (this library sits below [Afex], so the
    executor itself is built at the call site, as for {!Netfault}).
    @raise Invalid_argument on an undecodable scenario. *)

val description : Replsim.cluster -> string
(** One-line executor description ("replsim n=... rounds=..."). *)

val commit_loss : Replsim.cluster -> Fault.t -> float
(** Percentage of baseline commits lost under the single decoded fault
    (0 for a fault that does not decode); deterministic re-run, usable
    as a domain sensor like {!Netfault.throughput_loss}. *)

val commit_loss_sensor : Replsim.cluster -> Sensor.t

val seed_points :
  ?arms:int -> ?max_seeds:int -> Replsim.cluster -> Afex_faultspace.Point.t list
(** Initial search seeds derived from the statically observable cluster
    structure — the churn schedule and the fault-free leader trace —
    the §4 seeding idea transposed from flagged callsites to scheduled
    recovery windows. Each window yields candidate correlated scenarios
    (backup corruption ahead of the window plus a leader kill inside it;
    a severed catch-up stream plus a mid-recovery kill) as points in the
    [arms]-wide compound space (default 2, matching {!multi_space};
    [arms = 1] seeds the atomic ingredients instead). At most
    [max_seeds] (default 400) deduplicated points, chronological. Feed
    them to {!Afex.Config.t}[.initial_seeds].
    @raise Invalid_argument on [arms < 1] or [max_seeds < 0]. *)

val deep_outcome : Outcome.t -> bool
(** The outcome is one of the planted correlated-fault bugs (its crash
    stack is a {!Replsim.deep_invariants} site). *)
