(** Online redundancy feedback (§7.4).

    While the search runs, AFEX compares each new test's injection stack
    trace against everything seen so far and scales its fitness on a linear
    scale: an exact repeat of a known trace zeroes the fitness, a trace
    unlike anything seen keeps it unchanged. This steers exploration away
    from re-manifesting the same underlying bug. *)

type t

val create : ?intern:Trace_intern.t -> unit -> t
(** [intern] shares a frame-interning table with the rest of the session
    (the explorer passes the one its cluster indexes use); a private
    table is created otherwise. *)

val seen : t -> int
(** Number of distinct traces registered. *)

val weight : t -> string list -> float
(** [1 - max similarity to any registered trace], in [0, 1]; 1 when
    nothing has been registered yet. *)

val register : t -> string list -> unit
(** Record a trace (duplicates are collapsed). *)

val weigh_fitness : ?bonus:float -> t -> trace:string list option -> float -> float
(** Apply the linear redundancy scale to a fitness value and register the
    trace. [None] traces (fault did not trigger) pass through unchanged.
    [bonus] (the explorer's weighted rarity bonus) is added {e after} the
    scale, so coverage of a rarely-hit block is rewarded even on a
    redundant trace; omitting it leaves results bit-identical to the
    unscaled signature. *)

val dump : t -> int array list
(** Registered distinct traces as interned token arrays, in registration
    order — enough to rebuild the store bit-for-bit, since every internal
    structure is a deterministic function of that sequence. *)

val load : ?intern:Trace_intern.t -> int array list -> (t, string) result
(** Inverse of {!dump} against the same (restored) intern table. [Error]
    — never an exception — on token ids outside the table or duplicate
    traces. *)
