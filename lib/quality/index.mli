(** Incremental redundancy clustering.

    The batch {!Clustering.cluster} pass is quadratic in distinct traces
    and rebuilt from scratch on every call; this index maintains the same
    single-linkage partition {e online}. Each observed trace is interned
    ({!Trace_intern}), deduplicated by int-array equality, and — only when
    genuinely new — linked against older distinct traces through a bag
    lower-bound filter and the k-bounded kernel
    {!Levenshtein.distance_at_most}, with k capped at the threshold budget
    so far-apart pairs exit early. Cluster count and distinct count are
    O(1) reads; the partition always equals what the batch pass would
    compute over the same traces (property-tested). Observation order is
    the only input, so any driver that merges outcomes in submission order
    (the Domain pool, remote dispatch, the async event loop) reproduces
    the sequential index state bit-for-bit. *)

type t

val create : ?threshold:float -> intern:Trace_intern.t -> unit -> t
(** [threshold] is the normalized distance bound of {!Clustering.cluster}
    (default 0.34). [intern] may be shared with other indexes and the
    {!Feedback} store of the same session. *)

val observe : t -> string list -> unit
(** Add one trace and fold it into the partition. Exact repeats cost one
    hash lookup. *)

val threshold : t -> float

val length : t -> int
(** Traces observed, duplicates included. *)

val distinct : t -> int
(** Exactly-distinct traces (the "unique failures" metric of Table 5). *)

val cluster_count : t -> int

val clusters : t -> int list list
(** Members of each cluster as item indices (observation order,
    [0 .. length - 1]), each list ascending; clusters largest first, ties
    by earliest first member. The head of each list is the
    representative, matching {!Clustering.cluster}. *)

val representatives : t -> int list
(** First-observed member of each cluster, in {!clusters} order. *)

(** {2 Snapshots}

    The whole index state relative to a shared intern table: distinct
    traces in id order, the raw union-find vector, and the observation
    log. Re-observing would re-run the quadratic linkage; loading the
    dump is linear and restores the partition bit-for-bit. *)

type dump = {
  d_entries : int array list;  (** distinct traces, id order *)
  d_parent : int list;  (** union-find parent of each distinct id *)
  d_items : int list;  (** distinct id per observation, oldest first *)
}

val dump : t -> dump

val load :
  ?threshold:float -> intern:Trace_intern.t -> dump -> (t, string) result
(** Inverse of {!dump} against the same (restored) intern table.
    [Error] — never an exception — on token ids outside the table,
    duplicate traces, non-min-rooted parents, mismatched vector lengths
    or out-of-range items, so corrupt snapshots are rejected cleanly. *)
