type t = {
  ids : (string, int) Hashtbl.t;
  mutable frames : string array;  (* id -> frame text *)
  mutable count : int;
}

let create ?(size = 256) () =
  { ids = Hashtbl.create size; frames = Array.make (max 1 size) ""; count = 0 }

let size t = t.count

let grow t =
  let frames = Array.make (2 * Array.length t.frames) "" in
  Array.blit t.frames 0 frames 0 t.count;
  t.frames <- frames

let intern_frame t frame =
  match Hashtbl.find_opt t.ids frame with
  | Some id -> id
  | None ->
      let id = t.count in
      if id = Array.length t.frames then grow t;
      t.frames.(id) <- frame;
      t.count <- id + 1;
      Hashtbl.add t.ids frame id;
      id

let intern t trace =
  let arr = Array.make (List.length trace) 0 in
  List.iteri (fun i frame -> arr.(i) <- intern_frame t frame) trace;
  arr

let frame t id =
  if id < 0 || id >= t.count then invalid_arg "Trace_intern.frame: unknown id";
  t.frames.(id)

let dump t = Array.init t.count (fun i -> t.frames.(i))

let of_frames frames =
  let t = create ~size:(max 1 (Array.length frames)) () in
  let dup = ref None in
  Array.iter
    (fun f ->
      if Hashtbl.mem t.ids f then (if !dup = None then dup := Some f)
      else ignore (intern_frame t f))
    frames;
  match !dup with
  | Some f ->
      Error (Printf.sprintf "Trace_intern.of_frames: duplicate frame %S" f)
  | None -> Ok t

let extern t tokens = List.map (frame t) (Array.to_list tokens)
