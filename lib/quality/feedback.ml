type entry = {
  tokens : int array;  (* interned trace, frame order *)
  sorted : int array;  (* same tokens, sorted, for the bag bound *)
}

type t = {
  intern : Trace_intern.t;
  exact : (int array, unit) Hashtbl.t;
  buckets : (int, entry list ref) Hashtbl.t;  (* trace length -> entries *)
  mutable min_len : int;
  mutable max_len : int;
  mutable order_rev : int array list;  (* registration order, newest first *)
}

let create ?intern () =
  let intern = match intern with Some i -> i | None -> Trace_intern.create () in
  {
    intern;
    exact = Hashtbl.create 64;
    buckets = Hashtbl.create 64;
    min_len = max_int;
    max_len = -1;
    order_rev = [];
  }

let seen t = Hashtbl.length t.exact

let store t entry =
  let len = Array.length entry.tokens in
  let bucket =
    match Hashtbl.find_opt t.buckets len with
    | Some b -> b
    | None ->
        let b = ref [] in
        Hashtbl.add t.buckets len b;
        b
  in
  bucket := entry :: !bucket;
  if len < t.min_len then t.min_len <- len;
  if len > t.max_len then t.max_len <- len;
  Hashtbl.add t.exact entry.tokens ();
  t.order_rev <- entry.tokens :: t.order_rev

(* Largest d with 1 - d/longest still strictly above [best], probed with
   the exact float expression used for similarities so pruning can never
   change the winning value. *)
let beat_budget ~best ~longest =
  let beats d = 1.0 -. (float_of_int d /. float_of_int longest) > best in
  let k = int_of_float ((1.0 -. best) *. float_of_int longest) in
  let k = ref (max 0 (min longest k)) in
  while !k < longest && beats (!k + 1) do
    incr k
  done;
  while !k >= 0 && not (beats !k) do
    decr k
  done;
  !k

(* Best possible similarity of the candidate (length [lc]) against any
   stored trace of length [l] or beyond it on the same side: lengths alone
   force |lc - l| edits, and the bound only falls as the length delta
   grows. *)
let length_bound ~lc l =
  let longest = max lc l in
  1.0 -. (float_of_int (abs (lc - l)) /. float_of_int longest)

(* Max similarity of [candidate] against every stored distinct trace —
   the same fold the seed implementation ran over its whole trace list,
   but visiting length buckets outward from the candidate's own length.
   The scan stops once no remaining length can beat the best similarity
   found; within a bucket the bag filter and the best-so-far distance
   budget reject most pairs before any DP runs. Skipping is gated on
   monotone float bounds evaluated with the similarity formula itself, so
   the result is bit-identical to the exhaustive fold. *)
let best_similarity t candidate =
  let lc = Array.length candidate.tokens in
  let best = ref 0.0 in
  (* An empty candidate has similarity exactly 0 to every non-empty trace
     (and an empty stored trace would have been an exact match), so only a
     non-empty candidate against a non-empty store needs the scan. *)
  if lc > 0 && t.max_len >= 0 then begin
    let scan l =
      match Hashtbl.find_opt t.buckets l with
      | None -> ()
      | Some entries ->
          let longest = max lc l in
          List.iter
            (fun e ->
              let k = beat_budget ~best:!best ~longest in
              if
                k >= 0
                && Levenshtein.bag_lower_bound candidate.sorted e.sorted <= k
              then
                match Levenshtein.distance_at_most ~k candidate.tokens e.tokens with
                | Some d ->
                    best :=
                      Float.max !best
                        (1.0 -. (float_of_int d /. float_of_int longest))
                | None -> ())
            !entries
    in
    let continue_ = ref true in
    let delta = ref 0 in
    while !continue_ do
      let low = lc - !delta and high = lc + !delta in
      if low >= t.min_len && low <= t.max_len && length_bound ~lc low > !best
      then scan low;
      if high <> low && high >= t.min_len && high <= t.max_len
         && length_bound ~lc high > !best
      then scan high;
      (* Each side stays live while it can still reach a stored length
         whose bound beats the current best. *)
      let low_live = low - 1 >= t.min_len && length_bound ~lc (low - 1) > !best in
      let high_live =
        high + 1 <= t.max_len && length_bound ~lc (high + 1) > !best
      in
      continue_ := low_live || high_live;
      incr delta
    done
  end;
  !best

let intern_entry t trace =
  let tokens = Trace_intern.intern t.intern trace in
  let sorted = Array.copy tokens in
  Array.sort compare sorted;
  { tokens; sorted }

let weight t trace =
  let candidate = intern_entry t trace in
  if Hashtbl.mem t.exact candidate.tokens then 0.0
  else 1.0 -. best_similarity t candidate

let register t trace =
  let tokens = Trace_intern.intern t.intern trace in
  if not (Hashtbl.mem t.exact tokens) then begin
    let sorted = Array.copy tokens in
    Array.sort compare sorted;
    store t { tokens; sorted }
  end

let weigh_fitness ?bonus t ~trace fitness =
  (* The bonus lands after the redundancy scale, so a test reaching a rare
     block keeps its reward even when its trace is a known repeat. Absent
     a bonus the result is bit-identical to the plain scale (including the
     -0.0 an exact repeat of a negative fitness produces). *)
  let boost f = match bonus with None -> f | Some b -> f +. b in
  match trace with
  | None -> boost fitness
  | Some trace ->
      (* One interning pass and one exact-table probe per outcome: the
         seed implementation recomputed the concatenated key and the
         token array separately for the weight and the registration. *)
      let candidate = intern_entry t trace in
      if Hashtbl.mem t.exact candidate.tokens then boost (fitness *. 0.0)
      else begin
        let w = 1.0 -. best_similarity t candidate in
        store t candidate;
        boost (fitness *. w)
      end

let dump t = List.rev_map Array.copy t.order_rev

let load ?intern dumped =
  let t = create ?intern () in
  let limit = Trace_intern.size t.intern in
  let err = ref None in
  List.iter
    (fun tokens ->
      if !err = None then begin
        Array.iter
          (fun tok ->
            if !err = None && (tok < 0 || tok >= limit) then
              err :=
                Some
                  (Printf.sprintf
                     "Feedback.load: token %d outside the intern table (%d \
                      frames)"
                     tok limit))
          tokens;
        if !err = None then
          if Hashtbl.mem t.exact tokens then
            err := Some "Feedback.load: duplicate registered trace"
          else begin
            let tokens = Array.copy tokens in
            let sorted = Array.copy tokens in
            Array.sort compare sorted;
            store t { tokens; sorted }
          end
      end)
    dumped;
  match !err with Some m -> Error m | None -> Ok t
