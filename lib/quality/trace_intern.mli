(** Stack-frame interning.

    Every distinct frame string is assigned a small int id, so a stack trace
    becomes an [int array]: trace equality is an int-array compare, hashing
    never re-walks frame text, and the edit-distance kernels compare tokens
    with [=] on ints instead of [String.equal]. One table is shared by the
    redundancy feedback and both cluster indexes of an exploration session,
    so a frame is tokenized exactly once per campaign no matter how many
    traces contain it. *)

type t

val create : ?size:int -> unit -> t
(** [size] is the initial capacity hint (default 256). *)

val size : t -> int
(** Number of distinct frames interned so far. *)

val intern_frame : t -> string -> int
(** Id of a frame, allocating the next id on first sight. *)

val intern : t -> string list -> int array
(** Tokenize a whole trace, in order. *)

val frame : t -> int -> string
(** Inverse of {!intern_frame}. Raises [Invalid_argument] on unknown ids. *)

val extern : t -> int array -> string list
(** Inverse of {!intern}. *)

val dump : t -> string array
(** All interned frames in id order — everything a snapshot needs, since
    ids are assigned densely from 0 in first-sight order. *)

val of_frames : string array -> (t, string) result
(** Rebuild a table assigning [frames.(i)] id [i] (inverse of {!dump}).
    [Error] on duplicate frames — dumps are duplicate-free, so a
    duplicate means the input is corrupt. *)
