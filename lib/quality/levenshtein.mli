(** Levenshtein edit distance (§5 cites Levenshtein 1966), used to compare
    the stack traces captured at injection points. *)

val distance : string array -> string array -> int
(** Token-level distance: insertions, deletions and substitutions of whole
    stack frames. *)

val distance_strings : string -> string -> int
(** Character-level distance. *)

val similarity : string array -> string array -> float
(** [1 - distance / max length], in [0, 1]; 1 for two empty traces. *)

val distance_traces : string list -> string list -> int
val similarity_traces : string list -> string list -> float

(** {2 Interned-token kernels}

    The hot redundancy paths ({!Feedback}, {!Index}) compare traces that
    have been tokenized by {!Trace_intern}, so the kernels below work over
    [int array]s and a pair comparison never touches frame text. *)

val distance_ints : int array -> int array -> int
(** Reference two-row DP over token ids; the bounded kernels are
    property-tested against it. *)

val bag_lower_bound : int array -> int array -> int
(** Lower bound on {!distance_ints} from the token multiset difference.
    Both arrays must be {e sorted}; the bound is one merge pass, costs
    O(len), and subsumes the [abs (len a - len b)] length bound. *)

val distance_at_most : k:int -> int array -> int array -> int option
(** [Some d] with [d = distance_ints a b] when the distance is at most
    [k], [None] otherwise — without paying for the full DP in the [None]
    case. Dispatch: a length gate first; Myers' bit-parallel scan (O(max
    len) word ops) when the shorter side fits a native int (62 tokens); a
    banded Ukkonen DP with early exit (O(k * min len)) beyond that.
    Raises [Invalid_argument] when [k < 0]. *)
