let generic_distance ~len_a ~len_b ~equal =
  if len_a = 0 then len_b
  else if len_b = 0 then len_a
  else begin
    (* Two-row dynamic programming. *)
    let prev = Array.init (len_b + 1) (fun j -> j) in
    let cur = Array.make (len_b + 1) 0 in
    for i = 1 to len_a do
      cur.(0) <- i;
      for j = 1 to len_b do
        let cost = if equal (i - 1) (j - 1) then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (len_b + 1)
    done;
    prev.(len_b)
  end

let distance a b =
  generic_distance ~len_a:(Array.length a) ~len_b:(Array.length b)
    ~equal:(fun i j -> String.equal a.(i) b.(j))

let distance_strings a b =
  generic_distance ~len_a:(String.length a) ~len_b:(String.length b)
    ~equal:(fun i j -> Char.equal a.[i] b.[j])

let similarity a b =
  let longest = max (Array.length a) (Array.length b) in
  if longest = 0 then 1.0
  else 1.0 -. (float_of_int (distance a b) /. float_of_int longest)

let distance_traces a b = distance (Array.of_list a) (Array.of_list b)
let similarity_traces a b = similarity (Array.of_list a) (Array.of_list b)

(* ------------------------------------------------------------------ *)
(* Interned-token kernels                                              *)
(* ------------------------------------------------------------------ *)

let distance_ints a b =
  generic_distance ~len_a:(Array.length a) ~len_b:(Array.length b)
    ~equal:(fun i j -> a.(i) = b.(j))

(* Multiset lower bound: every token of [a] unmatched in [b] costs a
   deletion or a substitution (and symmetrically), and one substitution
   cancels an unmatched token on each side, so
   d >= max(#unmatched in a, #unmatched in b). Both arrays must be sorted;
   the bound then falls out of one merge pass. It subsumes the length
   bound, since pos - neg = len a - len b. *)
let bag_lower_bound a b =
  let la = Array.length a and lb = Array.length b in
  let i = ref 0 and j = ref 0 in
  let only_a = ref 0 and only_b = ref 0 in
  while !i < la && !j < lb do
    let x = a.(!i) and y = b.(!j) in
    if x = y then begin
      incr i;
      incr j
    end
    else if x < y then begin
      incr only_a;
      incr i
    end
    else begin
      incr only_b;
      incr j
    end
  done;
  only_a := !only_a + (la - !i);
  only_b := !only_b + (lb - !j);
  max !only_a !only_b

(* Myers' bit-parallel edit distance (Hyyrö's formulation): the DP column
   is two bitvectors of pattern length, each text token costs O(1) word
   ops. Native ints give 63 usable bits; we cap the pattern at 62 so
   [1 lsl m] never touches the sign bit. *)
let myers_max_len = 62

let myers pattern text =
  let m = Array.length pattern in
  let peq = Hashtbl.create (2 * m) in
  for i = 0 to m - 1 do
    let bits = Option.value (Hashtbl.find_opt peq pattern.(i)) ~default:0 in
    Hashtbl.replace peq pattern.(i) (bits lor (1 lsl i))
  done;
  let mask = (1 lsl m) - 1 in
  let high = 1 lsl (m - 1) in
  let vp = ref mask and vn = ref 0 in
  let score = ref m in
  for j = 0 to Array.length text - 1 do
    let eq = Option.value (Hashtbl.find_opt peq text.(j)) ~default:0 in
    let x = eq lor !vn in
    let d0 = ((((x land !vp) + !vp) lxor !vp) lor x) land mask in
    let hp = !vn lor lnot (d0 lor !vp) in
    let hn = !vp land d0 in
    if hp land high <> 0 then incr score;
    if hn land high <> 0 then decr score;
    let hp = ((hp lsl 1) lor 1) land mask in
    let hn = (hn lsl 1) land mask in
    vp := hn lor (lnot (d0 lor hp) land mask);
    vn := hp land d0
  done;
  !score

(* Banded two-row DP (Ukkonen): only cells with |i - j| <= k can hold a
   value <= k, so each row costs O(k) and the whole check O(k * min len).
   Early exit as soon as a full row exceeds the budget. *)
let banded ~k a b =
  let la = Array.length a and lb = Array.length b in
  let inf = max_int / 2 in
  let prev = Array.make (lb + 1) inf and cur = Array.make (lb + 1) inf in
  for j = 0 to min lb k do
    prev.(j) <- j
  done;
  let exceeded = ref false in
  let i = ref 1 in
  while (not !exceeded) && !i <= la do
    let lo = max 1 (!i - k) and hi = min lb (!i + k) in
    let row_min = ref inf in
    if !i <= k then begin
      cur.(0) <- !i;
      row_min := !i
    end
    else cur.(lo - 1) <- inf;
    for j = lo to hi do
      let cost = if a.(!i - 1) = b.(j - 1) then 0 else 1 in
      let v = min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost) in
      cur.(j) <- v;
      if v < !row_min then row_min := v
    done;
    if hi < lb then cur.(hi + 1) <- inf;
    if !row_min > k then exceeded := true
    else begin
      Array.blit cur 0 prev 0 (lb + 1);
      incr i
    end
  done;
  if !exceeded || prev.(lb) > k then None else Some prev.(lb)

let distance_at_most ~k a b =
  if k < 0 then invalid_arg "Levenshtein.distance_at_most: negative k";
  let la = Array.length a and lb = Array.length b in
  if abs (la - lb) > k then None
  else if la = 0 || lb = 0 then Some (max la lb)  (* <= k via the length gate *)
  else if min la lb <= myers_max_len then begin
    let d = if la <= lb then myers a b else myers b a in
    if d <= k then Some d else None
  end
  else banded ~k a b
