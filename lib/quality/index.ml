(* Growable int array. *)
module Vec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 16 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let data = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 data 0 v.len;
      v.data <- data
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1

  let get v i = v.data.(i)
  let set v i x = v.data.(i) <- x
  let length v = v.len
end

type entry = {
  tokens : int array;  (* interned trace, frame order *)
  sorted : int array;  (* same tokens, sorted, for the bag bound *)
}

type t = {
  intern : Trace_intern.t;
  threshold : float;
  exact : (int array, int) Hashtbl.t;  (* interned trace -> distinct id *)
  mutable entries : entry array;  (* distinct id -> entry *)
  mutable n_distinct : int;
  parent : Vec.t;  (* union-find over distinct ids *)
  items : Vec.t;  (* item index -> distinct id, observation order *)
  mutable n_clusters : int;
}

let create ?(threshold = 0.34) ~intern () =
  {
    intern;
    threshold;
    exact = Hashtbl.create 64;
    entries = Array.make 16 { tokens = [||]; sorted = [||] };
    n_distinct = 0;
    parent = Vec.create ();
    items = Vec.create ();
    n_clusters = 0;
  }

let threshold t = t.threshold
let length t = Vec.length t.items
let distinct t = t.n_distinct
let cluster_count t = t.n_clusters

let rec find t i =
  let p = Vec.get t.parent i in
  if p = i then i
  else begin
    let r = find t p in
    Vec.set t.parent i r;
    r
  end

(* Matches the batch pass: the root is always the smaller id, so a
   cluster's root is its first-observed distinct trace — and therefore its
   first-observed member, the representative. *)
let union t a b =
  let ra = find t a and rb = find t b in
  if ra <> rb then begin
    Vec.set t.parent (max ra rb) (min ra rb);
    t.n_clusters <- t.n_clusters - 1
  end

(* Largest d that still clusters: float d / longest <= threshold, probed
   with the exact float predicate of the batch implementation so the two
   agree on every boundary case. *)
let close_budget t ~longest =
  let close d = float_of_int d /. float_of_int longest <= t.threshold in
  let k = int_of_float (t.threshold *. float_of_int longest) in
  let k = max 0 (min longest k) in
  if close k then begin
    let k = ref k in
    while !k < longest && close (!k + 1) do
      incr k
    done;
    !k
  end
  else begin
    let k = ref k in
    while !k >= 0 && not (close !k) do
      decr k
    done;
    !k
  end

(* Link a brand-new distinct trace against every older one. The bag/length
   bound rejects most pairs in O(len); survivors run the k-bounded kernel
   with k already capped at the threshold budget. *)
let link t id entry =
  let len = Array.length entry.tokens in
  for other = 0 to id - 1 do
    let o = t.entries.(other) in
    let olen = Array.length o.tokens in
    let longest = max len olen in
    if longest = 0 then union t id other
    else begin
      let k = close_budget t ~longest in
      if k >= 0 && abs (len - olen) <= k then
        if
          find t other <> find t id
          (* already chained together: the edge cannot change the partition *)
        then begin
          if Levenshtein.bag_lower_bound entry.sorted o.sorted <= k then
            match Levenshtein.distance_at_most ~k entry.tokens o.tokens with
            | Some _ -> union t id other
            | None -> ()
        end
    end
  done

let ensure_capacity t id =
  if id = Array.length t.entries then begin
    let entries = Array.make (2 * id) { tokens = [||]; sorted = [||] } in
    Array.blit t.entries 0 entries 0 id;
    t.entries <- entries
  end

(* Append a distinct trace without linking: the slot, exact-table and
   dedup bookkeeping shared by [observe] and [load]. *)
let push_distinct t tokens =
  let id = t.n_distinct in
  ensure_capacity t id;
  let sorted = Array.copy tokens in
  Array.sort compare sorted;
  let entry = { tokens; sorted } in
  t.entries.(id) <- entry;
  t.n_distinct <- id + 1;
  Hashtbl.add t.exact tokens id;
  (id, entry)

let observe t trace =
  let tokens = Trace_intern.intern t.intern trace in
  let id =
    match Hashtbl.find_opt t.exact tokens with
    | Some id -> id
    | None ->
        let id, entry = push_distinct t tokens in
        Vec.push t.parent id;
        t.n_clusters <- t.n_clusters + 1;
        link t id entry;
        id
  in
  Vec.push t.items id

let clusters t =
  let n = Vec.length t.items in
  (* root distinct id -> members (item indices), newest first while
     folding, reversed into observation order below *)
  let groups = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find t (Vec.get t.items i) in
    let existing = Option.value (Hashtbl.find_opt groups r) ~default:[] in
    Hashtbl.replace groups r (i :: existing)
  done;
  let all = Hashtbl.fold (fun root members acc -> (root, members) :: acc) groups [] in
  let sorted =
    (* Largest first, as the batch clustering reports; ties broken by
       first observation so the order is deterministic. *)
    List.sort
      (fun (ra, ma) (rb, mb) ->
        let c = compare (List.length mb) (List.length ma) in
        if c <> 0 then c else compare ra rb)
      all
  in
  List.map snd sorted

let representatives t = List.map List.hd (clusters t)

type dump = {
  d_entries : int array list;  (* distinct traces, id order *)
  d_parent : int list;  (* raw union-find vector, one slot per distinct *)
  d_items : int list;  (* observation order *)
}

let dump t =
  {
    d_entries =
      List.init t.n_distinct (fun i -> Array.copy t.entries.(i).tokens);
    d_parent = List.init t.n_distinct (fun i -> Vec.get t.parent i);
    d_items = List.init (Vec.length t.items) (fun i -> Vec.get t.items i);
  }

exception Bad of string

let load ?threshold ~intern d =
  let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt in
  let t = create ?threshold ~intern () in
  let limit = Trace_intern.size intern in
  try
    List.iter
      (fun tokens ->
        Array.iter
          (fun tok ->
            if tok < 0 || tok >= limit then
              bad "token %d outside the intern table (%d frames)" tok limit)
          tokens;
        if Hashtbl.mem t.exact tokens then bad "duplicate distinct trace";
        ignore (push_distinct t (Array.copy tokens)))
      d.d_entries;
    let n = t.n_distinct in
    if List.length d.d_parent <> n then
      bad "parent table has %d slots for %d distinct traces"
        (List.length d.d_parent) n;
    (* The union-find always roots at the smaller id, so every stored
       parent — compressed or not — must point at or before its slot. *)
    List.iteri
      (fun i p ->
        if p < 0 || p > i then
          bad "parent %d of distinct %d is not min-rooted" p i;
        Vec.push t.parent p)
      d.d_parent;
    (* Every union turns exactly one root into a non-root, so the cluster
       count is recoverable as the number of surviving roots. *)
    for i = 0 to n - 1 do
      if Vec.get t.parent i = i then t.n_clusters <- t.n_clusters + 1
    done;
    List.iter
      (fun id ->
        if id < 0 || id >= n then bad "item refers to unknown distinct %d" id;
        Vec.push t.items id)
      d.d_items;
    Ok t
  with Bad m -> Error ("Index.load: " ^ m)
