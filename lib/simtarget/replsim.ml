module Rng = Afex_stats.Rng
module Bitset = Afex_stats.Bitset

type kind = Kill | Drop_acks | Stale_backup | Delayed_rejoin

let kind_to_string = function
  | Kill -> "kill"
  | Drop_acks -> "drop_acks"
  | Stale_backup -> "stale_backup"
  | Delayed_rejoin -> "delayed_rejoin"

let kind_of_string = function
  | "kill" -> Ok Kill
  | "drop_acks" -> Ok Drop_acks
  | "stale_backup" -> Ok Stale_backup
  | "delayed_rejoin" -> Ok Delayed_rejoin
  | s -> Error (Printf.sprintf "unknown fault kind %S" s)

let all_kinds = [ Kill; Drop_acks; Stale_backup; Delayed_rejoin ]

type fault = { round : int; replica : int; kind : kind; peer : int }

type config = {
  n : int;
  rounds : int;
  seed : int;
  churn_period : int;
  recovery_rounds : int;
  backup_period : int;
  drop_window : int;
  liveness_k : int;
  round_ms : float;
}

type violation = {
  invariant : string;
  v_round : int;
  v_replica : int;
  site : string list;
}

type run_result = {
  rounds_run : int;
  commits : int;
  elections : int;
  recoveries : int;
  violation : violation option;
  coverage : Bitset.t;
  triggered : bool;
  leader_trace : int array;
  elapsed_ms : float;
}

(* ------------------------------------------------------------------ *)
(* Coverage block layout: a fixed-width strip per replica.             *)
(* ------------------------------------------------------------------ *)

let b_follower_ack = 0
let b_leader = 1
let b_recovery_start = 2
let b_recovery_done = 3
let b_recovery_overlap = 4 (* an injected fault landed inside this replica's window *)
let b_kill_mid_recovery = 5
let b_stale_backup_used = 6
let b_catchup_blocked = 7
let b_election_during_recovery = 8
let b_acks_dropped = 9
let b_delayed_rejoin = 10
let b_violation = 11
let blocks_per_replica = 12

(* ------------------------------------------------------------------ *)
(* Violation sites: synthetic stacks, stable per site. No round or     *)
(* replica numbers — redundancy clustering must see one site as one    *)
(* stack, exactly like a real crash deduplicated by its backtrace.     *)
(* ------------------------------------------------------------------ *)

let site_stale_revote =
  [
    "recovery@replsim/election.c:88";
    "replsim:request_vote";
    "replsim:recover_rejoin";
    "invariant:leader-uniqueness";
  ]

let site_recovery_crash =
  [
    "recovery@replsim/catchup.c:214";
    "replsim:catchup_abort";
    "replsim:recover_rejoin";
    "invariant:recovery-crash";
  ]

let site_prefix =
  [ "replsim/log.c:132"; "replsim:commit_apply"; "invariant:log-prefix-agreement" ]

let site_durability =
  [ "replsim/election.c:156"; "replsim:install_leader"; "invariant:committed-durability" ]

let site_liveness = [ "replsim/progress.c:40"; "replsim:tick"; "invariant:liveness" ]

let deep_invariants = [ "leader-uniqueness"; "recovery-crash" ]
let is_deep v = List.mem v.invariant deep_invariants

let pp_violation ppf v =
  Format.fprintf ppf "%s at round %d (replica %d)" v.invariant v.v_round v.v_replica

(* ------------------------------------------------------------------ *)
(* The simulation proper                                               *)
(* ------------------------------------------------------------------ *)

type role = Follower | Leader | Recovering | Down

type replica = {
  id : int;
  mutable role : role;
  mutable term : int;
  log : int array; (* term of each entry; length rounds is an upper bound *)
  mutable log_len : int;
  mutable commit : int;
  mutable backup_len : int;
  mutable backup_term : int;
  mutable backup_commit : int;
  mutable backup_frozen : bool;
  mutable frozen_by_fault : bool;
  mutable recover_left : int;
  mutable stale_fault : bool; (* recovering from a fault-stale backup *)
  mutable killed_mid : bool; (* a Kill fault restarted this recovery *)
  mutable pending_delay : int;
}

exception Stop of violation

let simulate config churn ~faults =
  let n = config.n in
  let majority = (n / 2) + 1 in
  let reps =
    Array.init n (fun id ->
        {
          id;
          role = Follower;
          term = 0;
          log = Array.make config.rounds 0;
          log_len = 0;
          commit = 0;
          backup_len = 0;
          backup_term = 0;
          backup_commit = 0;
          backup_frozen = false;
          frozen_by_fault = false;
          recover_left = 0;
          stale_fault = false;
          killed_mid = false;
          pending_delay = 0;
        })
  in
  let faults = List.stable_sort (fun a b -> compare a.round b.round) faults in
  let coverage = Bitset.create (n * blocks_per_replica) in
  let cover r b = Bitset.set coverage ((r * blocks_per_replica) + b) in
  let leader = ref None in
  let leader_killed_by_fault = ref false in
  let ledger = Array.make config.rounds 0 in
  let ledger_len = ref 0 in
  let commits = ref 0 in
  let elections = ref 0 in
  let recoveries = ref 0 in
  let last_commit_round = ref 0 in
  let triggered = ref false in
  let leader_trace = Array.make config.rounds (-1) in
  let rounds_run = ref 0 in
  (* Directional message loss: an active Drop_acks fault severs every
     message from [peer] to [replica] for [drop_window] rounds. *)
  let dropped ~from ~to_ t =
    List.exists
      (fun f ->
        f.kind = Drop_acks && f.peer = from && f.replica = to_ && f.round <= t
        && t < f.round + config.drop_window)
      faults
  in
  (* Partial-credit block: any activated fault that lands while some
     replica is inside its recovery window covers that replica's overlap
     block — the gradient toward "second fault inside the window". *)
  let mark_overlap () =
    Array.iter (fun r -> if r.role = Recovering then cover r.id b_recovery_overlap) reps
  in
  let violate invariant site r t =
    cover r b_violation;
    raise (Stop { invariant; v_round = t; v_replica = r; site })
  in
  let run_round t =
    (* 1. Injected faults scheduled for this round. *)
    List.iter
      (fun f ->
        if f.round = t then
          match f.kind with
          | Kill -> (
              let r = reps.(f.replica) in
              match r.role with
              | Down -> ()
              | Recovering ->
                  triggered := true;
                  mark_overlap ();
                  cover r.id b_kill_mid_recovery;
                  (match !leader with
                  | Some l when dropped ~from:l ~to_:r.id t ->
                      (* Planted deep bug 2: the catch-up stream is severed
                         and the recovering process is killed on top — the
                         recovery state machine aborts instead of
                         restarting. Needs Drop_acks(leader -> r) + Kill(r)
                         correlated inside one recovery window. *)
                      violate "recovery-crash" site_recovery_crash r.id t
                  | _ ->
                      r.role <- Down;
                      r.killed_mid <- true)
              | Leader ->
                  triggered := true;
                  mark_overlap ();
                  r.role <- Down;
                  leader := None;
                  leader_killed_by_fault := true
              | Follower ->
                  triggered := true;
                  mark_overlap ();
                  r.role <- Down)
          | Drop_acks ->
              (* Activation is implicit via [dropped]; effects (and the
                 [triggered] flag) are recorded where a message is lost. *)
              if f.peer <> f.replica then mark_overlap ()
          | Stale_backup ->
              let r = reps.(f.replica) in
              if not r.backup_frozen then begin
                r.backup_frozen <- true;
                r.frozen_by_fault <- true
              end
          | Delayed_rejoin ->
              let r = reps.(f.replica) in
              if r.role = Recovering then begin
                triggered := true;
                mark_overlap ();
                r.recover_left <- r.recover_left + config.recovery_rounds;
                cover r.id b_delayed_rejoin
              end
              else r.pending_delay <- r.pending_delay + config.recovery_rounds)
      faults;
    (* 2. Scheduled churn: a live replica goes down for recovery. *)
    (match churn.(t) with
    | Some c -> (
        let r = reps.(c) in
        match r.role with
        | Leader ->
            r.role <- Down;
            leader := None
        | Follower -> r.role <- Down
        | Recovering | Down -> ())
    | None -> ());
    (* 3. Recovery: reload the backup, sit out the window, catch up. *)
    Array.iter
      (fun r ->
        match r.role with
        | Down ->
            r.role <- Recovering;
            r.recover_left <- config.recovery_rounds + r.pending_delay;
            if r.pending_delay > 0 then begin
              triggered := true;
              cover r.id b_delayed_rejoin
            end;
            r.pending_delay <- 0;
            r.log_len <- r.backup_len;
            r.term <- r.backup_term;
            r.commit <- r.backup_commit;
            incr recoveries;
            cover r.id b_recovery_start;
            let stale = r.backup_commit + config.backup_period < !ledger_len in
            r.stale_fault <- stale && (r.frozen_by_fault || r.killed_mid);
            if stale && (r.frozen_by_fault || r.killed_mid) then begin
              cover r.id b_stale_backup_used;
              if r.frozen_by_fault then triggered := true
            end;
            r.killed_mid <- false
        | Recovering ->
            if r.recover_left > 0 then r.recover_left <- r.recover_left - 1
            else begin
              match !leader with
              | Some l when l <> r.id ->
                  if dropped ~from:l ~to_:r.id t then begin
                    triggered := true;
                    cover r.id b_catchup_blocked
                  end
                  else begin
                    let ldr = reps.(l) in
                    Array.blit ldr.log 0 r.log 0 ldr.log_len;
                    r.log_len <- ldr.log_len;
                    r.term <- ldr.term;
                    r.commit <- ldr.commit;
                    r.role <- Follower;
                    r.stale_fault <- false;
                    cover r.id b_recovery_done
                  end
              | Some _ | None -> ()
            end
        | Leader | Follower -> ())
      reps;
    (* 4. Election, when the cluster has no leader and a quorum of
       settled followers can vote. *)
    if !leader = None then begin
      let voters = ref [] in
      Array.iter (fun r -> if r.role = Follower then voters := r :: !voters) reps;
      let voters = !voters in
      if List.length voters >= majority then begin
        let winner =
          List.fold_left
            (fun best r ->
              if
                r.log_len > best.log_len
                || (r.log_len = best.log_len && r.id < best.id)
              then r
              else best)
            (List.hd voters) voters
        in
        let new_term = 1 + Array.fold_left (fun acc r -> max acc r.term) 0 reps in
        List.iter (fun v -> v.term <- new_term) voters;
        winner.term <- new_term;
        winner.role <- Leader;
        leader := Some winner.id;
        incr elections;
        cover winner.id b_leader;
        (* Committed-entry durability: the new leader's log must contain
           every entry ever acknowledged to a client. *)
        for i = 0 to !ledger_len - 1 do
          if i >= winner.log_len || winner.log.(i) <> ledger.(i) then
            violate "committed-durability" site_durability winner.id t
        done;
        Array.iter
          (fun r ->
            if r.role = Recovering then begin
              cover r.id b_election_during_recovery;
              (* Planted deep bug 1: a replica mid-recovery from a
                 fault-stale backup re-enters the vote protocol when the
                 leader it was restoring against is killed inside its
                 window — it announces leadership with its stale term,
                 and the cluster briefly has two leaders. Needs
                 Stale_backup(r) (or a mid-recovery Kill) + Kill(leader)
                 correlated inside one recovery window. *)
              if r.stale_fault && !leader_killed_by_fault then
                violate "leader-uniqueness" site_stale_revote r.id t
            end)
          reps;
        leader_killed_by_fault := false
      end
    end;
    (* 5. Replication: the leader appends one client command per round
       and commits once a majority acknowledges. *)
    (match !leader with
    | Some l ->
        let ldr = reps.(l) in
        ldr.log.(ldr.log_len) <- ldr.term;
        ldr.log_len <- ldr.log_len + 1;
        let acks = ref 1 in
        let ackers = ref [] in
        Array.iter
          (fun f ->
            if f.id <> l && f.role = Follower then
              if dropped ~from:l ~to_:f.id t then begin
                triggered := true;
                cover f.id b_acks_dropped
              end
              else begin
                (* AppendEntries consistency: overwrite the follower's
                   uncommitted tail with the leader's (the committed
                   prefix is immutable, so syncing from the older commit
                   point is enough and O(tail)). *)
                let from_ = min f.commit ldr.commit in
                if ldr.log_len > from_ then
                  Array.blit ldr.log from_ f.log from_ (ldr.log_len - from_);
                f.log_len <- ldr.log_len;
                f.term <- ldr.term;
                if dropped ~from:f.id ~to_:l t then begin
                  triggered := true;
                  cover f.id b_acks_dropped
                end
                else begin
                  incr acks;
                  ackers := f :: !ackers;
                  cover f.id b_follower_ack
                end
              end)
          reps;
        if !acks >= majority then begin
          for i = ldr.commit to ldr.log_len - 1 do
            if i < !ledger_len then begin
              (* Log-prefix agreement: a committed slot may never be
                 re-committed with a different term. *)
              if ledger.(i) <> ldr.log.(i) then
                violate "log-prefix-agreement" site_prefix ldr.id t
            end
            else begin
              ledger.(i) <- ldr.log.(i);
              incr ledger_len
            end
          done;
          commits := !commits + (ldr.log_len - ldr.commit);
          ldr.commit <- ldr.log_len;
          last_commit_round := t;
          List.iter (fun f -> f.commit <- min f.log_len ldr.commit) !ackers
        end;
        cover l b_leader
    | None -> ());
    (* 6. Backup snapshots: live replicas persist their committed prefix
       at the configured cadence, unless a fault froze the backup. *)
    if t mod config.backup_period = config.backup_period - 1 then
      Array.iter
        (fun r ->
          match r.role with
          | (Follower | Leader) when not r.backup_frozen ->
              r.backup_len <- r.commit;
              r.backup_term <- r.term;
              r.backup_commit <- r.commit
          | Follower | Leader | Recovering | Down -> ())
        reps;
    (* 7. Liveness within k rounds. *)
    if t - !last_commit_round > config.liveness_k then begin
      let culprit = match !leader with Some l -> l | None -> 0 in
      violate "liveness" site_liveness culprit t
    end;
    leader_trace.(t) <- (match !leader with Some l -> l | None -> -1)
  in
  let violation = ref None in
  (try
     for t = 0 to config.rounds - 1 do
       rounds_run := t + 1;
       run_round t
     done
   with Stop v -> violation := Some v);
  {
    rounds_run = !rounds_run;
    commits = !commits;
    elections = !elections;
    recoveries = !recoveries;
    violation = !violation;
    coverage;
    triggered = !triggered;
    leader_trace;
    elapsed_ms = float_of_int !rounds_run *. config.round_ms;
  }

(* ------------------------------------------------------------------ *)
(* Cluster construction                                                *)
(* ------------------------------------------------------------------ *)

type cluster = {
  config : config;
  churn : int option array;
  baseline_result : run_result;
}

let make ?(rounds = 400) ?(seed = 42) ?(churn_period = 7) ?(recovery_rounds = 5)
    ?(backup_period = 8) ?(drop_window = 6) ?(liveness_k = 30) ?(round_ms = 0.05)
    ~n () =
  if n < 3 then invalid_arg "Replsim.make: need at least 3 replicas";
  if rounds < 1 then invalid_arg "Replsim.make: rounds < 1";
  if churn_period < 1 || backup_period < 1 || recovery_rounds < 1 || drop_window < 1
  then invalid_arg "Replsim.make: periods must be positive";
  if liveness_k < 1 then invalid_arg "Replsim.make: liveness_k < 1";
  if recovery_rounds >= 2 * churn_period then
    invalid_arg
      "Replsim.make: recovery_rounds >= 2 * churn_period starves the quorum \
       under baseline churn";
  let config =
    {
      n;
      rounds;
      seed;
      churn_period;
      recovery_rounds;
      backup_period;
      drop_window;
      liveness_k;
      round_ms;
    }
  in
  let churn = Array.make rounds None in
  let rng = Rng.create seed in
  for t = 0 to rounds - 1 do
    if t > 0 && t mod churn_period = 0 then churn.(t) <- Some (Rng.int rng n)
  done;
  let baseline_result = simulate config churn ~faults:[] in
  { config; churn; baseline_result }

let config t = t.config
let baseline t = t.baseline_result

let churn_schedule t =
  let events = ref [] in
  Array.iteri
    (fun round c -> match c with Some r -> events := (round, r) :: !events | None -> ())
    t.churn;
  List.rev !events

let total_blocks t = t.config.n * blocks_per_replica

let run t ~faults =
  List.iter
    (fun f ->
      if f.round < 0 || f.round >= t.config.rounds then
        invalid_arg (Printf.sprintf "Replsim.run: round %d out of range" f.round);
      if f.replica < 0 || f.replica >= t.config.n then
        invalid_arg (Printf.sprintf "Replsim.run: replica %d out of range" f.replica);
      if f.peer < 0 || f.peer >= t.config.n then
        invalid_arg (Printf.sprintf "Replsim.run: peer %d out of range" f.peer))
    faults;
  simulate t.config t.churn ~faults

let pp_summary ppf t =
  let b = t.baseline_result in
  Format.fprintf ppf
    "replsim: %d replicas, %d rounds (churn every %d) — baseline %d commits, %d \
     elections, %d recoveries"
    t.config.n t.config.rounds t.config.churn_period b.commits b.elections
    b.recoveries
