module IntSet = Set.Make (Int)
module StringSet = Set.Make (String)

type t = {
  name : string;
  version : string;
  callsites : Callsite.t array;
  tests : Sim_test.t array;
  total_blocks : int;
}

let validate t =
  Array.iteri
    (fun i (site : Callsite.t) ->
      if site.Callsite.id <> i then
        invalid_arg
          (Printf.sprintf "Target.make: callsite at position %d has id %d" i
             site.Callsite.id);
      let check_block b =
        if b < 0 || b >= t.total_blocks then
          invalid_arg
            (Printf.sprintf "Target.make: block %d out of range at site %d" b i)
      in
      Array.iter check_block site.Callsite.blocks;
      Array.iter check_block site.Callsite.recovery_blocks)
    t.callsites;
  Array.iter
    (fun (test : Sim_test.t) ->
      Array.iter
        (fun site ->
          if site < 0 || site >= Array.length t.callsites then
            invalid_arg
              (Printf.sprintf "Target.make: test %d references unknown callsite %d"
                 test.Sim_test.id site))
        test.Sim_test.trace)
    t.tests

let make ~name ~version ~callsites ~tests ~total_blocks =
  let t = { name; version; callsites; tests; total_blocks } in
  validate t;
  t

let name t = t.name
let version t = t.version
let callsites t = t.callsites
let tests t = t.tests
let total_blocks t = t.total_blocks
let callsite t i = t.callsites.(i)
let test t i = t.tests.(i)
let n_tests t = Array.length t.tests
let site_func t i = t.callsites.(i).Callsite.func

let functions_used t =
  let used = Hashtbl.create 32 in
  Array.iter
    (fun (test : Sim_test.t) ->
      Array.iter
        (fun site -> Hashtbl.replace used (site_func t site) ())
        test.Sim_test.trace)
    t.tests;
  let known = List.filter (fun f -> Hashtbl.mem used f) Libc.ordered_names in
  let unknown =
    Hashtbl.fold
      (fun f () acc -> if List.mem f known then acc else f :: acc)
      used []
  in
  known @ List.sort String.compare unknown

let max_calls t func =
  Array.fold_left
    (fun acc test ->
      max acc (Sim_test.calls_to test ~site_func:(site_func t) func))
    0 t.tests

let baseline_coverage t =
  let covered = ref IntSet.empty in
  Array.iter
    (fun (test : Sim_test.t) ->
      Array.iter
        (fun site ->
          Array.iter
            (fun b -> covered := IntSet.add b !covered)
            t.callsites.(site).Callsite.blocks)
        test.Sim_test.trace)
    t.tests;
  IntSet.cardinal !covered

let recovery_blocks_total t =
  let blocks = ref IntSet.empty in
  Array.iter
    (fun (site : Callsite.t) ->
      Array.iter (fun b -> blocks := IntSet.add b !blocks) site.Callsite.recovery_blocks)
    t.callsites;
  IntSet.cardinal !blocks

let modules t =
  let set =
    Array.fold_left
      (fun acc (site : Callsite.t) -> StringSet.add site.Callsite.module_name acc)
      StringSet.empty t.callsites
  in
  StringSet.elements set

(* ------------------------------------------------------------------ *)
(* Per-test latency model                                              *)
(* ------------------------------------------------------------------ *)

type latency_dist =
  | Fixed of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Bimodal of { fast : float; slow : float; slow_share : float }

type latency_model = { dist : latency_dist; seed : int }

let latency_model ?(seed = 0) dist =
  (match dist with
  | Fixed ms ->
      if ms < 0.0 then invalid_arg "Target.latency_model: negative latency"
  | Uniform { lo; hi } ->
      if lo < 0.0 || hi < lo then
        invalid_arg "Target.latency_model: need 0 <= lo <= hi"
  | Exponential { mean } ->
      if mean <= 0.0 then invalid_arg "Target.latency_model: mean must be positive"
  | Bimodal { fast; slow; slow_share } ->
      if fast < 0.0 || slow < 0.0 || slow_share < 0.0 || slow_share > 1.0 then
        invalid_arg "Target.latency_model: bimodal parameters out of range");
  { dist; seed }

(* FNV-1a over the key, folded with the model seed: the latency of a test
   is a pure function of (model, key), so a campaign against a simulated
   slow target replays exactly — at any concurrency. *)
let latency_key_hash seed key =
  (* The 64-bit FNV offset basis exceeds OCaml's 63-bit int; the truncated
     constant keeps the same avalanche structure, and we only need a
     well-mixed 62-bit seed, not FNV compatibility. *)
  let h = ref 0x3bf29ce484222325 in
  let mix c = h := (!h lxor c) * 0x100000001b3 in
  mix (seed land 0xff);
  mix ((seed lsr 8) land 0xff);
  mix ((seed lsr 16) land 0xff);
  mix ((seed lsr 24) land 0xff);
  String.iter (fun c -> mix (Char.code c)) key;
  !h land max_int

let latency_ms model key =
  let rng = Afex_stats.Rng.create (latency_key_hash model.seed key) in
  match model.dist with
  | Fixed ms -> ms
  | Uniform { lo; hi } -> lo +. Afex_stats.Rng.float rng (hi -. lo)
  | Exponential { mean } ->
      let u = Afex_stats.Rng.float rng 1.0 in
      (* Inverse CDF, clamped away from log 0. *)
      -.mean *. log (Float.max 1e-12 (1.0 -. u))
  | Bimodal { fast; slow; slow_share } ->
      if Afex_stats.Rng.bernoulli rng slow_share then slow else fast

let mean_latency_ms model =
  match model.dist with
  | Fixed ms -> ms
  | Uniform { lo; hi } -> (lo +. hi) /. 2.0
  | Exponential { mean } -> mean
  | Bimodal { fast; slow; slow_share } ->
      (fast *. (1.0 -. slow_share)) +. (slow *. slow_share)

let latency_dist_to_string = function
  | Fixed ms -> Printf.sprintf "fixed:%g" ms
  | Uniform { lo; hi } -> Printf.sprintf "uniform:%g-%g" lo hi
  | Exponential { mean } -> Printf.sprintf "exp:%g" mean
  | Bimodal { fast; slow; slow_share } ->
      Printf.sprintf "bimodal:%g,%g,%g" fast slow slow_share

let latency_dist_of_string s =
  let fail () =
    Error
      (Printf.sprintf
         "unknown latency distribution %S (try fixed:MS, uniform:LO-HI, \
          exp:MEAN, bimodal:FAST,SLOW,SHARE)"
         s)
  in
  let float_of s = float_of_string_opt (String.trim s) in
  match String.index_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let kind = String.sub s 0 i in
      let rest = String.sub s (i + 1) (String.length s - i - 1) in
      let checked dist =
        match latency_model dist with
        | { dist; _ } -> Ok dist
        | exception Invalid_argument m -> Error m
      in
      match kind with
      | "fixed" -> (
          match float_of rest with
          | Some ms -> checked (Fixed ms)
          | None -> fail ())
      | "exp" -> (
          match float_of rest with
          | Some mean -> checked (Exponential { mean })
          | None -> fail ())
      | "uniform" -> (
          match String.index_opt rest '-' with
          | None -> fail ()
          | Some d -> (
              let lo = String.sub rest 0 d in
              let hi = String.sub rest (d + 1) (String.length rest - d - 1) in
              match (float_of lo, float_of hi) with
              | Some lo, Some hi -> checked (Uniform { lo; hi })
              | _ -> fail ()))
      | "bimodal" -> (
          match String.split_on_char ',' rest with
          | [ fast; slow; share ] -> (
              match (float_of fast, float_of slow, float_of share) with
              | Some fast, Some slow, Some slow_share ->
                  checked (Bimodal { fast; slow; slow_share })
              | _ -> fail ())
          | _ -> fail ())
      | _ -> fail ())

let pp_summary ppf t =
  Format.fprintf ppf
    "%s %s: %d tests, %d callsites, %d modules, %d blocks (%d recovery-only)"
    t.name t.version (Array.length t.tests) (Array.length t.callsites)
    (List.length (modules t)) t.total_blocks (recovery_blocks_total t)
