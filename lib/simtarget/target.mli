(** A complete simulated system under test. *)

type t

val make :
  name:string ->
  version:string ->
  callsites:Callsite.t array ->
  tests:Sim_test.t array ->
  total_blocks:int ->
  t
(** [callsites.(i).id] must equal [i]; every trace entry must be a valid
    callsite id; every block id must be in [0, total_blocks).
    @raise Invalid_argument otherwise. *)

val name : t -> string
val version : t -> string
val callsites : t -> Callsite.t array
val tests : t -> Sim_test.t array
val total_blocks : t -> int

val callsite : t -> int -> Callsite.t
val test : t -> int -> Sim_test.t
val n_tests : t -> int

val site_func : t -> int -> string
(** libc function called at the given callsite. *)

val functions_used : t -> string list
(** Distinct libc functions appearing in any trace, in {!Libc.catalog}
    canonical order (unknown functions last, alphabetically). *)

val max_calls : t -> string -> int
(** Largest per-test call count for the named function across the suite. *)

val baseline_coverage : t -> int
(** Number of distinct blocks covered by running the whole suite without
    injection (recovery blocks excluded by construction). *)

val recovery_blocks_total : t -> int
(** Number of distinct blocks only reachable through error recovery. *)

val modules : t -> string list
(** Distinct module names. *)

val pp_summary : Format.formatter -> t -> unit

(** {2 Per-test latency model}

    The simulated injector answers in microseconds; a real system under
    test costs milliseconds to seconds of wall-clock per injection, and
    that wait — not CPU — is what an async executor overlaps. The latency
    model assigns every test a deterministic simulated service time, so
    benches and tests can show async speedup without real slow binaries,
    and so the numbers replay exactly from the seed. *)

type latency_dist =
  | Fixed of float  (** every test takes exactly this many ms *)
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
      (** memoryless service times — the standard M/M-style model *)
  | Bimodal of { fast : float; slow : float; slow_share : float }
      (** a fast common path plus a heavy tail (e.g. timeouts, recovery
          paths): [slow_share] of tests take [slow] ms *)

type latency_model

val latency_model : ?seed:int -> latency_dist -> latency_model
(** @raise Invalid_argument on negative latencies, [hi < lo], a
    non-positive mean, or a [slow_share] outside [0, 1]. *)

val latency_ms : latency_model -> string -> float
(** [latency_ms model key] is the simulated service time for the test
    identified by [key] (conventionally the scenario's wire string). A
    pure function of [(model, key)]: the same test always takes the same
    time, at any concurrency, on any host. *)

val mean_latency_ms : latency_model -> float
(** Analytic mean of the distribution, for throughput predictions. *)

val latency_dist_to_string : latency_dist -> string

val latency_dist_of_string : string -> (latency_dist, string) result
(** Parses the CLI grammar: [fixed:MS], [uniform:LO-HI], [exp:MEAN],
    [bimodal:FAST,SLOW,SHARE]. *)
