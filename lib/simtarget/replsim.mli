(** A deterministic n-replica consensus target: leader election, log
    replication, and replica recovery from backup snapshots, driven
    round-by-round under churn.

    Every other simtarget is a single process whose impact surface is
    per-callsite errno handling. [Replsim] opens the distributed surface
    the paper's §6 multi-fault scenarios aim at: faults land on
    ⟨round, replica, kind, peer⟩ coordinates, recovery windows are the
    rare code the search must reach, and impact comes from {e cluster
    invariants} (log-prefix agreement, committed-entry durability,
    leader uniqueness, liveness-within-k-rounds) instead of a crashing
    callsite.

    The simulation is a pure function of [(config, faults)]: no wall
    clock, no global state, one seeded RNG stream for the churn
    schedule. Identical inputs produce bit-identical results on any
    host at any concurrency, which is what lets the pool, the async
    event loop, and checkpoint/resume all drive it unchanged.

    Two {e planted deep bugs} require a correlated two-fault scenario:

    - {b stale-term revote}: a replica recovering from a fault-stale
      backup re-enters the vote protocol if the leader is killed inside
      its recovery window — two simultaneous leaders, a
      leader-uniqueness violation;
    - {b recovery crash}: killing a replica whose backup catch-up
      stream is currently severed by an ack-drop fault aborts its
      recovery state machine — a recovery-crash violation.

    Single faults (and the baseline churn alone) cannot reach either:
    they only cover the partial-condition blocks that give the guided
    search its gradient. *)

type kind =
  | Kill  (** crash the replica at the given round (mid-recovery kills
              restart recovery from the backup) *)
  | Drop_acks
      (** the network drops every message from [peer] to [replica] for
          a window of [drop_window] rounds *)
  | Stale_backup
      (** freeze the replica's backup snapshot: later recoveries reload
          an ever-staler state *)
  | Delayed_rejoin
      (** extend the replica's next (or current) recovery window by
          [recovery_rounds] extra rounds *)

val kind_to_string : kind -> string
val kind_of_string : string -> (kind, string) result
val all_kinds : kind list

type fault = { round : int; replica : int; kind : kind; peer : int }
(** [peer] is the message source for [Drop_acks]; other kinds ignore it. *)

type config = {
  n : int;  (** replicas (>= 3) *)
  rounds : int;
  seed : int;  (** churn-schedule seed *)
  churn_period : int;  (** a scheduled recovery every this many rounds *)
  recovery_rounds : int;  (** rounds a recovering replica is out *)
  backup_period : int;  (** snapshot-to-backup cadence *)
  drop_window : int;  (** rounds a [Drop_acks] fault stays active *)
  liveness_k : int;  (** max rounds without a commit before a violation *)
  round_ms : float;  (** simulated wall-clock per round *)
}

type violation = {
  invariant : string;
      (** one of [leader-uniqueness], [recovery-crash],
          [log-prefix-agreement], [committed-durability], [liveness] *)
  v_round : int;
  v_replica : int;
  site : string list;
      (** synthetic stack, stable per violation site (never embeds round
          or replica numbers), so redundancy clustering works unchanged *)
}

type run_result = {
  rounds_run : int;  (** rounds simulated before the run ended *)
  commits : int;  (** entries committed (client-acknowledged) *)
  elections : int;
  recoveries : int;
  violation : violation option;  (** first violation; the run stops there *)
  coverage : Afex_stats.Bitset.t;
  triggered : bool;  (** an injected fault perturbed the execution *)
  leader_trace : int array;  (** leader id per round, -1 when none *)
  elapsed_ms : float;
}

type cluster

val make :
  ?rounds:int ->
  ?seed:int ->
  ?churn_period:int ->
  ?recovery_rounds:int ->
  ?backup_period:int ->
  ?drop_window:int ->
  ?liveness_k:int ->
  ?round_ms:float ->
  n:int ->
  unit ->
  cluster
(** Builds the cluster, precomputes the seeded churn schedule, and runs
    the fault-free baseline once (memoized; exposed via {!baseline}).
    Defaults: rounds 400, seed 42, churn every 7 rounds, recovery 5
    rounds, backup every 8, drop window 6, liveness 30, 0.05 ms/round.
    @raise Invalid_argument on [n < 3], [rounds < 1], a non-positive
    period, or [recovery_rounds >= 2 * churn_period] (the baseline must
    keep a quorum up, or churn alone violates liveness). *)

val config : cluster -> config
val baseline : cluster -> run_result
val churn_schedule : cluster -> (int * int) list
(** [(round, replica)] recovery events, chronological. *)

val blocks_per_replica : int
val total_blocks : cluster -> int
(** Coverage blocks are [blocks_per_replica] per replica: normal-path
    blocks (follower ack, leadership), recovery-path blocks (window
    entry/exit, stale-backup reload, blocked catch-up, mid-recovery
    kill, fault-in-window overlap, election-during-recovery), and the
    violation block — the graded signal the fitness search climbs. *)

val run : cluster -> faults:fault list -> run_result
(** Simulates the configured rounds with the given faults armed,
    stopping at the first invariant violation. Pure and deterministic.
    @raise Invalid_argument on an out-of-range round, replica or peer. *)

val deep_invariants : string list
(** Invariants only a correlated multi-fault scenario can violate
    ([leader-uniqueness], [recovery-crash]). *)

val is_deep : violation -> bool
val pp_violation : Format.formatter -> violation -> unit
val pp_summary : Format.formatter -> cluster -> unit
