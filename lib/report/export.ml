module Session = Afex.Session
module Test_case = Afex.Test_case
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome

let csv_escape field =
  let needs_quoting =
    String.exists (fun c -> c = ',' || c = '"' || c = '\n' || c = '\r') field
  in
  if not needs_quoting then field
  else begin
    let buf = Buffer.create (String.length field + 2) in
    Buffer.add_char buf '"';
    String.iter
      (fun c ->
        if c = '"' then Buffer.add_string buf "\"\"" else Buffer.add_char buf c)
      field;
    Buffer.add_char buf '"';
    Buffer.contents buf
  end

let records_to_csv (r : Session.result) =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf
    "iteration,point,testId,function,callNumber,errno,retval,status,triggered,impact,fitness,new_blocks,duration_ms\n";
  List.iteri
    (fun i (c : Test_case.t) ->
      let f = c.Test_case.fault in
      Buffer.add_string buf
        (String.concat ","
           [
             string_of_int (i + 1);
             (* semicolon-joined so the field needs no quoting *)
             String.concat ";"
               (List.map string_of_int
                  (Afex_faultspace.Point.to_list c.Test_case.point));
             string_of_int f.Fault.test_id;
             csv_escape f.Fault.func;
             string_of_int f.Fault.call_number;
             csv_escape f.Fault.errno;
             string_of_int f.Fault.retval;
             Outcome.status_to_string c.Test_case.status;
             string_of_bool c.Test_case.triggered;
             Printf.sprintf "%.3f" c.Test_case.impact;
             Printf.sprintf "%.3f" c.Test_case.fitness;
             string_of_int c.Test_case.new_blocks;
             Printf.sprintf "%.2f" c.Test_case.duration_ms;
           ]);
      Buffer.add_char buf '\n')
    r.Session.executed;
  Buffer.contents buf

let json_escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let summary_to_json ~target (r : Session.result) =
  let field name value = Printf.sprintf "  %S: %s" name value in
  let str s = Printf.sprintf "\"%s\"" (json_escape s) in
  let float_array a =
    "[" ^ String.concat ", " (List.map (Printf.sprintf "%.4f") (Array.to_list a)) ^ "]"
  in
  let int_array a =
    "[" ^ String.concat ", " (List.map string_of_int (Array.to_list a)) ^ "]"
  in
  String.concat "\n"
    [
      "{";
      String.concat ",\n"
        [
          field "target" (str target);
          field "strategy" (str r.Session.strategy);
          field "iterations" (string_of_int r.Session.iterations);
          field "failed" (string_of_int r.Session.failed);
          field "crashed" (string_of_int r.Session.crashed);
          field "hung" (string_of_int r.Session.hung);
          field "triggered" (string_of_int r.Session.triggered);
          field "covered_blocks" (string_of_int r.Session.covered_blocks);
          field "total_blocks" (string_of_int r.Session.total_blocks);
          field "coverage_percent" (Printf.sprintf "%.4f" r.Session.coverage_percent);
          field "distinct_failure_traces" (string_of_int r.Session.distinct_failure_traces);
          field "distinct_crash_traces" (string_of_int r.Session.distinct_crash_traces);
          field "failure_clusters" (string_of_int r.Session.failure_clusters);
          field "crash_clusters" (string_of_int r.Session.crash_clusters);
          field "simulated_ms" (Printf.sprintf "%.2f" r.Session.simulated_ms);
          field "sensitivity" (float_array r.Session.sensitivity);
          field "failure_curve" (int_array r.Session.failure_curve);
          field "stopped_early" (string_of_bool r.Session.stopped_early);
        ];
      "}";
      "";
    ]

let provenance_to_json ~target ~seed ~resumed ~snapshots ~wal_appends
    ~replayed_records () =
  let field name value = Printf.sprintf "  %S: %s" name value in
  String.concat "\n"
    [
      "{";
      String.concat ",\n"
        [
          field "schema" "2";
          field "target" (Printf.sprintf "\"%s\"" (json_escape target));
          field "seed" (string_of_int seed);
          field "resumed" (string_of_bool resumed);
          field "snapshots_written" (string_of_int snapshots);
          field "wal_appends" (string_of_int wal_appends);
          field "replayed_records" (string_of_int replayed_records);
        ];
      "}";
      "";
    ]
