(** Machine-readable result export: CSV for the per-test log and JSON for
    the session summary (AFEX's §6.3 "tables with measurements for each
    test"). No external dependencies; the JSON writer covers exactly the
    shapes needed here. *)

val records_to_csv : Afex.Session.result -> string
(** One row per executed test: iteration, point, fault attributes, status,
    impact, fitness, new blocks, duration. RFC-4180-style quoting. *)

val summary_to_json : target:string -> Afex.Session.result -> string
(** Pretty-printed JSON object with the session counters, sensitivity
    vector and failure curve. *)

val csv_escape : string -> string
(** Quote a CSV field if it contains commas, quotes or newlines. *)

val json_escape : string -> string
(** Escape a string for inclusion in a JSON literal (without the outer
    quotes). *)

val provenance_to_json :
  target:string ->
  seed:int ->
  resumed:bool ->
  snapshots:int ->
  wal_appends:int ->
  replayed_records:int ->
  unit ->
  string
(** Checkpoint provenance record ([provenance.json] in the checkpoint
    directory): how a campaign's durable state was produced. Carries a
    [schema] version so downstream tooling can evolve; the session
    summary's shape ({!summary_to_json}) stays untouched. *)
