(** A node manager on the far side of a {!Transport} connection (§6.1):
    the client-side proxy the dispatcher talks to, and the server loop
    that puts a real {!Node_manager} behind the wire protocol.

    The proxy owns reliability: a versioned handshake on every
    connection, sequence-numbered request/reply matching (stale and
    duplicated replies are skipped), bounded per-request retries with
    exponential backoff, and reconnection on any transport fault. After
    the retry budget is exhausted the request fails with a typed error —
    the caller then re-runs the scenario locally, so a dead or byzantine
    manager can slow a campaign down but never stall or corrupt it.

    Two callers drive this module: under the work-stealing {!Runtime}
    each manager gets a dedicated proxy domain that steals tasks from
    the shared deques and ships them through the blocking client below
    (falling back to running a failed task on the proxy itself), while
    the async event loop rides the {!Pipelined} client — several tagged
    requests outstanding per connection, matched out of order, with the
    backoff schedule surfaced as timer data instead of sleeps. Either
    way completions re-enter the explorer through the runtime's reorder
    buffer, so remote health affects throughput, never the explored
    history. *)

type error =
  | Transport of Transport.error
  | Protocol of string
      (** handshake failure, version mismatch, or an undecodable reply *)
  | Manager of string
      (** the manager executed the scenario and reported a failure;
          deterministic, so never retried *)
  | Exhausted of { attempts : int; last : string }
      (** retry budget spent; [last] is the final attempt's failure *)

val string_of_error : error -> string

(** {2 Dialing} *)

type spec = {
  name : string;
  dial : unit -> (Transport.t, Transport.error) result;
  max_attempts : int;  (** per-request attempts, including the first *)
  backoff_ms : float;  (** base of the exponential reconnect backoff *)
  wire : int;
      (** preferred wire protocol version offered in the handshake; a
          manager that rejects it is redialed offering v1 (counted as a
          downgrade, sticky for later reconnects) *)
  flush_bytes : int;
      (** v2 coalescing threshold: buffered request records are flushed
          once the frame payload reaches this size (the credit/event
          loop flushes sooner — see {!Pipelined.flush}) *)
}

val spec :
  ?max_attempts:int ->
  ?backoff_ms:float ->
  ?wire:int ->
  ?flush_bytes:int ->
  name:string ->
  (unit -> (Transport.t, Transport.error) result) ->
  spec
(** Defaults: 3 attempts, 50 ms base backoff, wire
    {!Message.protocol_version_max}, 8 KiB flush threshold.
    @raise Invalid_argument on a wire version this build cannot speak. *)

val tcp_spec :
  ?recv_timeout_ms:int ->
  ?max_attempts:int ->
  ?backoff_ms:float ->
  ?wire:int ->
  ?flush_bytes:int ->
  host:string ->
  port:int ->
  unit ->
  spec
(** [recv_timeout_ms] is the straggler timeout: a manager that holds a
    scenario longer forfeits it (the request is retried, and ultimately
    requeued locally by the pool). *)

(** {2 The client proxy} *)

type t

val create : spec -> total_blocks:int -> t
(** No I/O happens here: the first {!run_scenario} dials. [total_blocks]
    sizes the coverage bitsets rebuilt from wire reports. *)

type stats = {
  requests : int;
  retries : int;
  dials : int;
  manager_errors : int;
  wire : int;
      (** most recently negotiated protocol version; 0 before the first
          successful handshake *)
  wire_downgrades : int;
      (** times the manager rejected the preferred version and the
          connection fell back to v1 *)
  frames_out : int;  (** frames sent, across all connections so far *)
  frames_in : int;
  bytes_out : int;  (** wire bytes sent, frame headers included *)
  bytes_in : int;
  dict_size : int;
      (** stack frames interned on the current connection's v2
          dictionary; 0 when disconnected or on v1 *)
}

val stats : t -> stats
val name : t -> string

val run_scenario :
  t -> Afex_faultspace.Scenario.t -> (Afex_injector.Outcome.t, error) result
(** Ships the scenario, awaits the matching reply, rebuilds the full
    outcome (coverage, fault, stacks, exact duration) so the explorer's
    accounting is bit-identical to an in-process run. Bounded: every
    failure path ends in reconnect-and-retry at most
    [spec.max_attempts] times, then [Error]. *)

val close : t -> unit
(** Best-effort [Shutdown] to the manager, then closes. Idempotent. *)

(** {2 The pipelined client}

    The blocking proxy above keeps exactly one request on the wire and
    sleeps through reconnect backoff — fine on a dedicated proxy domain,
    fatal inside an event loop that multiplexes many in-flight tests.
    The pipelined client keeps several seq-tagged requests outstanding on
    one connection, matches responses {e out of order}, and never sleeps:
    every failure is reported synchronously and the retry/backoff
    schedule is exposed as data ({!Pipelined.backoff_ms}) for the caller
    — in practice [Async_executor]'s timer wheel — to turn into a
    deadline, so other in-flight tests keep progressing while a manager
    reconnects. *)

module Pipelined : sig
  type conn

  val create : spec -> total_blocks:int -> conn
  (** No I/O; the first {!submit} dials. *)

  val submit : conn -> tag:int -> Afex_faultspace.Scenario.t -> (unit, error) result
  (** Send one request without waiting for its response. [tag] is the
      caller's identifier for the test (the pool uses batch slots); it
      comes back in {!drain}. On any failure the connection is dropped
      ({!take_orphans} yields every request that was riding on it) and
      the error returned — the caller owns the retry/fallback policy. *)

  val drain : conn -> (int * (Afex_injector.Outcome.t, error) result) list
  (** Collect every response currently available, without blocking
      (receive with a zero timeout). Responses are matched to tags by
      sequence number, in whatever order the manager answered; stale
      duplicates (chaos) are skipped. A connection-level failure —
      undecodable frame, closed peer, a [seq = -1] manager error — drops
      the connection; the affected tags appear in {!take_orphans}. *)

  val take_orphans : conn -> int list
  (** Tags stranded by connection failures since the last call, oldest
      first. Call after a failed {!submit}, after {!drain}, and after
      {!fail}. Each orphaned test must be re-run (the pool falls back to
      a local worker). *)

  val fail : conn -> unit
  (** Declare the connection dead (the caller's request timer expired:
      slow-manager straggler control). Drops it, orphans everything in
      flight, and counts a consecutive failure. *)

  val wait_fd : conn -> Unix.file_descr option
  (** The fd event loops [select] on, when connected. *)

  val dispatchable : conn -> bool
  (** The connection can accept a {!submit} (possibly dialing first);
      [false] once abandoned. The caller must additionally respect
      {!backoff_ms} after a failure. *)

  val abandoned : conn -> bool
  (** [max_attempts] consecutive connection failures: written off. *)

  val pending : conn -> int
  (** Requests on the wire awaiting a response. *)

  val credit : conn -> int
  (** Per-connection in-flight budget: how many requests may ride this
      connection concurrently. Starts effectively unbounded ([max_int]);
      the adaptive scheduler retunes it with the window
      ([Async_executor.set_inflight]). *)

  val set_credit : conn -> int -> unit
  (** @raise Invalid_argument if the credit is not positive. *)

  val has_credit : conn -> bool
  (** [pending < credit]: one more {!submit} is within budget. Callers
      enforce the budget (dispatchers skip a creditless connection);
      {!submit} itself never blocks or refuses on credit, so a manual
      override stays possible. *)

  val flush : conn -> (unit, error) result
  (** Send whatever is sitting in the v2 coalescing buffer as one frame.
      {!submit} flushes by itself at [spec.flush_bytes] and when credit
      runs out; the event loop calls this before blocking in [select],
      so a partially filled frame never stalls the pipeline. No-op on
      v1, when the buffer is empty, or when disconnected. On [Error]
      the connection was dropped ({!take_orphans} applies). *)

  val buffered : conn -> int
  (** Bytes currently coalescing (0 on v1 / disconnected). *)

  val awaiting : conn -> int -> bool
  (** [awaiting conn tag]: is [tag] still on this connection's wire? A
      request timer that fires after its test already completed (or was
      orphaned elsewhere) must not punish the connection. *)

  val failures : conn -> int
  (** Consecutive connection-level failures (reset by any success). *)

  val backoff_ms : conn -> float
  (** How long the caller should wait before the next {!submit} after a
      failure — the same exponential schedule the blocking client
      sleeps, surfaced as data for a timer wheel. *)

  val max_attempts : conn -> int
  val name : conn -> string
  val stats : conn -> stats
  (** [retries] counts connection-level failures. *)

  val close : conn -> unit
  (** Best-effort [Shutdown], then abandons the connection. *)
end

(** {2 The server side} *)

val serve_connection :
  ?wire_max:int ->
  ?flush_bytes:int ->
  Node_manager.t ->
  Transport.t ->
  (unit, error) result
(** Handshake — welcoming any offered version up to [wire_max] (default
    {!Message.protocol_version_max}; 1 makes the server bit-for-bit a
    v1 server) and rejecting the rest — then decode requests / run them
    / reply until [Shutdown] or the peer disconnects (both [Ok]).

    Under v1, requests that fail to decode are answered with a
    [Manager_error] on sequence -1 and the connection survives; under
    v2 any decode failure (including dictionary/delta desync after a
    mangled frame) is answered on sequence -1 and then
    {e connection-fatal} — stateful codecs must never risk a silently
    wrong report. Replies to one incoming frame coalesce into one
    outgoing frame, split past [flush_bytes] (default 8 KiB). Receive
    timeouts while idle are tolerated. Always closes the transport. *)

val serve_tcp :
  ?host:string ->
  ?wire_max:int ->
  ?flush_bytes:int ->
  ?chaos_to_client:Transport.chaos ->
  ?chaos_seed:int ->
  port:int ->
  once:bool ->
  Afex.Executor.t ->
  (unit, error) result
(** The [afex serve] entry point: listen (port 0 picks an ephemeral port,
    announced on stdout as ["afex-manager listening on HOST:PORT"]),
    accept connections and serve each with a fresh {!Node_manager} over
    the given executor. [once] returns after the first connection ends.
    [chaos_to_client] mangles reply frames (a per-connection RNG stream
    derived from [chaos_seed]) — the CI chaos matrix's server-side
    fault injection. *)

(** {2 In-process loopback}

    A real server loop behind a real (socketpair) transport, with the
    manager running on its own domain — the same code path as TCP minus
    the network, used by tests, benches and examples. *)

module Loopback : sig
  type server

  val create :
    ?wire_max:int ->
    ?chaos_to_server:Transport.chaos ->
    ?chaos_to_client:Transport.chaos ->
    ?chaos_seed:int ->
    ?recv_timeout_ms:int ->
    ?name:string ->
    executor:Afex.Executor.t ->
    unit ->
    server
  (** [chaos_to_server] mangles request frames, [chaos_to_client] reply
      frames; each connection derives fresh RNG streams from
      [chaos_seed] (default 0), so chaos runs are reproducible.
      [wire_max] caps the server's negotiable protocol version —
      [~wire_max:1] stands in for an old v1-only manager in interop
      tests. *)

  val spec :
    ?max_attempts:int ->
    ?backoff_ms:float ->
    ?wire:int ->
    ?flush_bytes:int ->
    server ->
    spec
  (** Each dial spawns a fresh manager on a new domain. *)

  val connections : server -> int

  val shutdown : server -> unit
  (** Joins every connection domain. Close all clients first. *)
end
