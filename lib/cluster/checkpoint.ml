module Point = Afex_faultspace.Point
module Test_case = Afex.Test_case
module Explorer = Afex.Explorer
module Index = Afex_quality.Index

let src = Logs.Src.create "afex.checkpoint" ~doc:"Campaign snapshots and journal"

module Log = (val Logs.src_log src : Logs.LOG)

exception Bad of string

let bad fmt = Printf.ksprintf (fun m -> raise (Bad m)) fmt

(* {2 Field helpers}

   Every token is either produced by [Message.escape] (no spaces, no
   commas) or is a number, so whole-line [split_on_char ' '] and
   comma-joined sub-lists never collide with payload bytes. *)

let nat what s =
  match int_of_string_opt s with
  | Some v when v >= 0 -> v
  | _ -> bad "%s: bad integer %S" what s

let fl what s =
  match float_of_string_opt s with Some v -> v | None -> bad "%s: bad float %S" what s

let hex64 what s =
  match Int64.of_string_opt ("0x" ^ s) with
  | Some v -> v
  | None -> bad "%s: bad hex word %S" what s

let ints_to = function
  | [] -> "-"
  | l -> String.concat "," (List.map string_of_int l)

let ints_of what = function
  | "-" -> []
  | s -> List.map (nat what) (String.split_on_char ',' s)

let floats_to = function
  | [] -> "-"
  | l -> String.concat "," (List.map (Printf.sprintf "%h") l)

let floats_of what = function
  | "-" -> []
  | s -> List.map (fl what) (String.split_on_char ',' s)

let unescape what s =
  match Message.unescape s with Ok v -> v | Error m -> bad "%s: %s" what m

let point_of_token what s =
  let key = unescape what s in
  if key = "" then bad "%s: empty point" what;
  Point.of_list (List.map (nat what) (String.split_on_char ',' key))

let opt_axis = function
  | None -> "-"
  | Some a -> string_of_int a

let axis_of = function
  | "-" -> None
  | s -> Some (nat "mutated axis" s)

let split2 s =
  match String.index_opt s ' ' with
  | None -> (s, "")
  | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))

module Snapshot = struct
  type t = {
    meta : (string * string) list;
    batches : int;
    master_state : int64;
    scheduler : Scheduler.snapshot option;
    explorer : Explorer.Snapshot.t;
  }

  (* Version 3: the journal became headerless (outcomes keyed by their
     absolute iteration, no per-batch framing) when the barrierless
     runtime replaced batch boundaries with reorder-buffer watermarks.
     Older snapshots describe a batch-scheduled campaign whose replay
     schedule this code no longer reproduces, so they are rejected by
     the header rather than resumed wrongly. *)
  let header = "afex-checkpoint 3"

  let sched_to_tokens (s : Scheduler.snapshot) =
    Printf.sprintf "%s %d %d %s %s %d %d %Lx %s" s.Scheduler.s_mode s.s_window
      s.s_batches
      (match s.s_prev_throughput with
      | None -> "-"
      | Some f -> Printf.sprintf "%h" f)
      s.s_dir
      (if s.s_slow_start then 1 else 0)
      (if s.s_suspect then 1 else 0)
      s.s_rng_state
      (match s.s_tel with
      | None -> "-"
      | Some tel ->
          floats_to
            [
              tel.Scheduler.utilization; tel.queue_wait_ms; tel.merge_stall_ms;
              tel.freshness; tel.throughput;
            ])

  let sched_of_tokens = function
    | [ mode; window; batches; prev; dir; ss; sus; rng; tel ] ->
        {
          Scheduler.s_mode = mode;
          s_window = nat "scheduler window" window;
          s_batches = nat "scheduler batches" batches;
          s_prev_throughput =
            (if prev = "-" then None else Some (fl "scheduler throughput" prev));
          s_dir = dir;
          s_slow_start = nat "slow-start flag" ss = 1;
          s_suspect = nat "suspect flag" sus = 1;
          s_rng_state = hex64 "scheduler rng" rng;
          s_tel =
            (match floats_of "scheduler telemetry" tel with
            | [] -> None
            | [ utilization; queue_wait_ms; merge_stall_ms; freshness; throughput ]
              ->
                Some
                  {
                    Scheduler.utilization; queue_wait_ms; merge_stall_ms;
                    freshness; throughput;
                  }
            | _ -> bad "scheduler telemetry: expected 5 fields");
        }
    | _ -> bad "scheduler line: expected 9 fields"

  let record_to_line (c : Test_case.t) =
    Printf.sprintf "r %s %d %s %s %s %d %h %h %h %s %s %s"
      (Message.escape (Point.key c.Test_case.point))
      c.birth (opt_axis c.mutated_axis)
      (Message.status_token c.status)
      (if c.triggered then "T" else "N")
      c.new_blocks c.impact c.fitness c.duration_ms
      (Message.encode_fault c.fault)
      (Message.encode_stack c.injection_stack)
      (Message.encode_stack c.crash_stack)

  let record_of_tokens = function
    | [
        point; birth; axis; status; triggered; new_blocks; impact; fitness; dur;
        fault; istack; cstack;
      ] ->
        let status =
          match Message.status_of_token status with
          | Ok s -> s
          | Error m -> bad "record status: %s" m
        in
        let fault =
          match Message.decode_fault fault with
          | Ok f -> f
          | Error m -> bad "record fault: %s" m
        in
        let stack what s =
          match Message.decode_stack s with
          | Ok v -> v
          | Error m -> bad "record %s: %s" what m
        in
        let triggered =
          match triggered with
          | "T" -> true
          | "N" -> false
          | s -> bad "record triggered flag: %S" s
        in
        {
          Test_case.point = point_of_token "record point" point;
          fault;
          status;
          triggered;
          impact = fl "record impact" impact;
          fitness = fl "record fitness" fitness;
          birth = nat "record birth" birth;
          mutated_axis = axis_of axis;
          injection_stack = stack "injection stack" istack;
          crash_stack = stack "crash stack" cstack;
          new_blocks = nat "record new blocks" new_blocks;
          duration_ms = fl "record duration" dur;
        }
    | _ -> bad "record line: expected 12 fields"

  let index_to_lines buf prefix (d : Index.dump) =
    let line fmt =
      Printf.ksprintf
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        fmt
    in
    List.iter
      (fun e ->
        line "%se %d %s" prefix (Array.length e) (ints_to (Array.to_list e)))
      d.Index.d_entries;
    line "%sp %s" prefix (ints_to d.Index.d_parent);
    line "%si %s" prefix (ints_to d.Index.d_items)

  let encode t =
    let buf = Buffer.create 4096 in
    let line fmt =
      Printf.ksprintf
        (fun l ->
          Buffer.add_string buf l;
          Buffer.add_char buf '\n')
        fmt
    in
    line "%s" header;
    List.iter
      (fun (k, v) -> line "m %s %s" (Message.escape k) (Message.escape v))
      t.meta;
    line "g %d %Lx" t.batches t.master_state;
    (match t.scheduler with
    | Some s -> line "S %s" (sched_to_tokens s)
    | None -> ());
    let x = t.explorer in
    line "x %Lx %d %d %d %d %d %d %h %d" x.Explorer.Snapshot.rng_state x.issued
      x.iterations x.failed x.crashed x.hung x.triggered x.simulated_ms
      x.cursor_consumed;
    line "c %s" (Message.encode_coverage x.covered);
    List.iter
      (fun c ->
        Buffer.add_string buf (record_to_line c);
        Buffer.add_char buf '\n')
      x.records;
    line "q %s" (ints_to x.queue);
    List.iter (fun p -> line "d %s" (Message.escape (Point.key p))) x.seeds;
    Array.iteri
      (fun axis samples ->
        line "v %d %d %s" axis (List.length samples) (floats_to samples))
      x.sensitivity;
    Array.iter (fun f -> line "f %s" (Message.escape f)) x.intern_frames;
    List.iter
      (fun toks ->
        line "w %d %s" (Array.length toks) (ints_to (Array.to_list toks)))
      x.feedback;
    index_to_lines buf "F" x.failure_index;
    index_to_lines buf "C" x.crash_index;
    (match x.rarity with
    | None -> ()
    | Some (tests, pairs) ->
        line "y %d %s %s" tests
          (ints_to (List.map fst pairs))
          (ints_to (List.map snd pairs));
        line "Y %s %s"
          (ints_to (List.map fst x.rare_blocks))
          (ints_to (List.map snd x.rare_blocks)));
    (let m = x.mutator in
     line "M %d %d %d %d %d" m.Afex.Mutator.proposals m.Afex.Mutator.masked
       m.Afex.Mutator.rejects m.Afex.Mutator.masked_rejects
       m.Afex.Mutator.random_fallbacks);
    let body = Buffer.contents buf in
    body ^ Printf.sprintf "k %08x\n" (Transport.checksum body)

  (* Mutable accumulator for the one-pass body parse. *)
  type partial = {
    mutable p_meta_rev : (string * string) list;
    mutable p_globals : (int * int64) option;
    mutable p_sched : Scheduler.snapshot option;
    mutable p_x : (int64 * int * int * int * int * int * int * float * int) option;
    mutable p_covered : int list option;
    mutable p_records_rev : Test_case.t list;
    mutable p_queue : int list option;
    mutable p_seeds_rev : Point.t list;
    mutable p_sens_rev : float list list;
    mutable p_frames_rev : string list;
    mutable p_fb_rev : int array list;
    mutable p_fe_rev : int array list;
    mutable p_fp : int list option;
    mutable p_fi : int list option;
    mutable p_ce_rev : int array list;
    mutable p_cp : int list option;
    mutable p_ci : int list option;
    mutable p_rarity : (int * (int * int) list) option;
    mutable p_rareb : (int * int) list option;
    mutable p_mut : Afex.Mutator.stats option;
  }

  let tokens_array what n toks =
    let l = ints_of what toks in
    if List.length l <> n then bad "%s: expected %d tokens" what n;
    Array.of_list l

  let parse_line p line =
    match String.split_on_char ' ' line with
    | "m" :: [ k; v ] ->
        p.p_meta_rev <- (unescape "meta key" k, unescape "meta value" v) :: p.p_meta_rev
    | "g" :: [ batches; master ] ->
        if p.p_globals <> None then bad "duplicate globals line";
        p.p_globals <- Some (nat "batches" batches, hex64 "master rng" master)
    | "S" :: rest ->
        if p.p_sched <> None then bad "duplicate scheduler line";
        p.p_sched <- Some (sched_of_tokens rest)
    | "x" :: [ rng; issued; iter; failed; crashed; hung; trig; sim; cursor ] ->
        if p.p_x <> None then bad "duplicate explorer line";
        p.p_x <-
          Some
            ( hex64 "explorer rng" rng,
              nat "issued" issued,
              nat "iterations" iter,
              nat "failed" failed,
              nat "crashed" crashed,
              nat "hung" hung,
              nat "triggered" trig,
              fl "simulated ms" sim,
              nat "cursor" cursor )
    | "c" :: [ cov ] -> (
        if p.p_covered <> None then bad "duplicate coverage line";
        match Message.decode_coverage cov with
        | Ok l -> p.p_covered <- Some l
        | Error m -> bad "coverage: %s" m)
    | "r" :: rest -> p.p_records_rev <- record_of_tokens rest :: p.p_records_rev
    | "q" :: [ ids ] ->
        if p.p_queue <> None then bad "duplicate queue line";
        p.p_queue <- Some (ints_of "queue" ids)
    | "d" :: [ pt ] -> p.p_seeds_rev <- point_of_token "seed" pt :: p.p_seeds_rev
    | "v" :: [ axis; n; samples ] ->
        let axis = nat "sensitivity axis" axis in
        if axis <> List.length p.p_sens_rev then
          bad "sensitivity axis %d out of order" axis;
        let l = floats_of "sensitivity samples" samples in
        if List.length l <> nat "sensitivity count" n then
          bad "sensitivity axis %d: sample count mismatch" axis;
        p.p_sens_rev <- l :: p.p_sens_rev
    | "f" :: [ frame ] ->
        p.p_frames_rev <- unescape "intern frame" frame :: p.p_frames_rev
    | "w" :: [ n; toks ] ->
        p.p_fb_rev <-
          tokens_array "feedback trace" (nat "feedback count" n) toks :: p.p_fb_rev
    | "Fe" :: [ n; toks ] ->
        p.p_fe_rev <-
          tokens_array "failure-index entry" (nat "entry count" n) toks
          :: p.p_fe_rev
    | "Fp" :: [ l ] ->
        if p.p_fp <> None then bad "duplicate failure-index parents";
        p.p_fp <- Some (ints_of "failure-index parents" l)
    | "Fi" :: [ l ] ->
        if p.p_fi <> None then bad "duplicate failure-index items";
        p.p_fi <- Some (ints_of "failure-index items" l)
    | "Ce" :: [ n; toks ] ->
        p.p_ce_rev <-
          tokens_array "crash-index entry" (nat "entry count" n) toks :: p.p_ce_rev
    | "Cp" :: [ l ] ->
        if p.p_cp <> None then bad "duplicate crash-index parents";
        p.p_cp <- Some (ints_of "crash-index parents" l)
    | "Ci" :: [ l ] ->
        if p.p_ci <> None then bad "duplicate crash-index items";
        p.p_ci <- Some (ints_of "crash-index items" l)
    | "y" :: [ tests; blocks; counts ] ->
        if p.p_rarity <> None then bad "duplicate rarity line";
        let b = ints_of "rarity blocks" blocks
        and c = ints_of "rarity counts" counts in
        if List.length b <> List.length c then
          bad "rarity histogram: %d blocks against %d counts" (List.length b)
            (List.length c);
        p.p_rarity <- Some (nat "rarity tests" tests, List.combine b c)
    | "Y" :: [ births; blocks ] ->
        if p.p_rareb <> None then bad "duplicate rare-block line";
        let b = ints_of "rare-block births" births
        and k = ints_of "rare-block ids" blocks in
        if List.length b <> List.length k then
          bad "rare blocks: %d births against %d blocks" (List.length b)
            (List.length k);
        p.p_rareb <- Some (List.combine b k)
    | "M" :: [ pr; ma; re; mr; rf ] ->
        if p.p_mut <> None then bad "duplicate mutator line";
        p.p_mut <-
          Some
            {
              Afex.Mutator.proposals = nat "mutator proposals" pr;
              masked = nat "mutator masked" ma;
              rejects = nat "mutator rejects" re;
              masked_rejects = nat "mutator masked rejects" mr;
              random_fallbacks = nat "mutator fallbacks" rf;
            }
    | tag :: _ -> bad "unknown line tag %S" tag
    | [] -> bad "empty line"

  let parse_body body =
    match String.split_on_char '\n' body with
    | first :: rest when first = header ->
        let p =
          {
            p_meta_rev = []; p_globals = None; p_sched = None; p_x = None;
            p_covered = None; p_records_rev = []; p_queue = None;
            p_seeds_rev = []; p_sens_rev = []; p_frames_rev = []; p_fb_rev = [];
            p_fe_rev = []; p_fp = None; p_fi = None; p_ce_rev = []; p_cp = None;
            p_ci = None; p_rarity = None; p_rareb = None; p_mut = None;
          }
        in
        List.iter (fun line -> if line <> "" then parse_line p line) rest;
        let req what = function Some v -> v | None -> bad "missing %s" what in
        let batches, master_state = req "globals line" p.p_globals in
        let rng_state, issued, iterations, failed, crashed, hung, triggered,
            simulated_ms, cursor_consumed =
          req "explorer line" p.p_x
        in
        {
          meta = List.rev p.p_meta_rev;
          batches;
          master_state;
          scheduler = p.p_sched;
          explorer =
            {
              Explorer.Snapshot.rng_state; issued; iterations; failed; crashed;
              hung; triggered; simulated_ms; cursor_consumed;
              covered = req "coverage line" p.p_covered;
              records = List.rev p.p_records_rev;
              queue = req "queue line" p.p_queue;
              seeds = List.rev p.p_seeds_rev;
              sensitivity = Array.of_list (List.rev p.p_sens_rev);
              intern_frames = Array.of_list (List.rev p.p_frames_rev);
              feedback = List.rev p.p_fb_rev;
              failure_index =
                {
                  Index.d_entries = List.rev p.p_fe_rev;
                  d_parent = req "failure-index parents" p.p_fp;
                  d_items = req "failure-index items" p.p_fi;
                };
              crash_index =
                {
                  Index.d_entries = List.rev p.p_ce_rev;
                  d_parent = req "crash-index parents" p.p_cp;
                  d_items = req "crash-index items" p.p_ci;
                };
              rarity = p.p_rarity;
              rare_blocks = Option.value p.p_rareb ~default:[];
              mutator = req "mutator line" p.p_mut;
            };
        }
    | first :: _ -> bad "bad header %S (expected %S)" first header
    | [] -> bad "empty snapshot"

  let decode contents =
    let err m = Error ("checkpoint snapshot: " ^ m) in
    let len = String.length contents in
    if len = 0 then err "empty file"
    else if contents.[len - 1] <> '\n' then err "truncated (no final newline)"
    else
      match String.rindex_from_opt contents (len - 2) '\n' with
      | None -> err "missing checksum trailer"
      | Some p -> (
          let trailer = String.sub contents (p + 1) (len - p - 2) in
          let body = String.sub contents 0 (p + 1) in
          match String.split_on_char ' ' trailer with
          | [ "k"; hex ] -> (
              match int_of_string_opt ("0x" ^ hex) with
              | Some crc when crc = Transport.checksum body -> (
                  try Ok (parse_body body) with
                  | Bad m -> err m
                  | Invalid_argument m -> err m)
              | Some _ -> err "checksum mismatch — the snapshot is corrupt"
              | None -> err "malformed checksum trailer")
          | _ -> err "missing checksum trailer")
end

(* {2 The write-ahead journal}

   Headerless since checkpoint version 3: one [o <key> <msg>] line per
   released outcome, keyed by the absolute iteration carried inside the
   encoded run report. Outcomes are journaled at reorder-buffer release,
   so a well-formed journal is strictly seq-ascending — no batch framing
   is needed to replay it. *)

let parse_payload payload =
  let tag, rest = split2 payload in
  match tag with
  | "o" -> (
      let pt, msg = split2 rest in
      let key = unescape "journal point" pt in
      match Message.decode_from_manager msg with
      | Ok (Message.Scenario_result r) ->
          if r.Message.seq < 1 then bad "journal outcome: bad sequence number";
          (r.Message.seq, key, r)
      | Ok (Message.Manager_error _) -> bad "journal outcome: manager error"
      | Error m -> bad "journal outcome: %s" m)
  | t -> bad "unknown journal record %S" t

let parse_wal_line line =
  let crc, payload = split2 line in
  if String.length crc <> 8 then bad "journal line: missing checksum";
  (match int_of_string_opt ("0x" ^ crc) with
  | Some c when c = Transport.checksum payload -> ()
  | Some _ -> bad "journal line: checksum mismatch"
  | None -> bad "journal line: malformed checksum");
  parse_payload payload

(* Scan the journal: complete lines parse in order; a torn or corrupt
   FINAL line is the crash signature and is dropped (the truncation point
   is returned), while damage anywhere earlier is refused — the journal
   is append-only, so only its tail can legitimately be half-written. *)
let parse_wal contents =
  let len = String.length contents in
  let rec lines acc start =
    if start >= len then List.rev acc
    else
      match String.index_from_opt contents start '\n' with
      | None -> List.rev acc (* trailing bytes without newline: torn tail *)
      | Some e -> lines ((String.sub contents start (e - start), start) :: acc) (e + 1)
  in
  let all = lines [] 0 in
  let n = List.length all in
  let records = ref [] in
  let valid_end = ref len in
  (try
     List.iteri
       (fun i (line, start) ->
         match parse_wal_line line with
         | r -> records := r :: !records
         | exception Bad m ->
             if i = n - 1 then begin
               Log.warn (fun f -> f "dropping torn journal tail: %s" m);
               valid_end := start;
               raise Exit
             end
             else bad "journal record %d: %s" (i + 1) m)
       all
   with Exit -> ());
  (match all with
  | [] -> valid_end := 0
  | _ when !valid_end = len ->
      (* complete lines all parsed; drop any trailing half-line *)
      let _, last_start = List.nth all (n - 1) in
      let last_end = String.index_from contents last_start '\n' + 1 in
      valid_end := last_end
  | _ -> ());
  (List.rev !records, !valid_end)

(* The replayable tail: outcomes with [seq <= since] are stale — they
   were released before the snapshot and survive only inside the crash
   window between the snapshot rename and the journal truncate — and
   are dropped. What remains must be exactly [since+1, since+2, ...]:
   a gap means a lost append (the journal is broken, refuse), and a
   duplicate or regression means two writers or replayed corruption. *)
let wal_tail ~since records =
  let kept =
    List.filter (fun (seq, _, _) -> seq > since) records
  in
  List.iteri
    (fun i (seq, _, _) ->
      let expect = since + 1 + i in
      if seq = expect then ()
      else if seq < expect then bad "journal repeats iteration %d" seq
      else bad "journal is missing iteration %d" expect)
    kept;
  kept

(* {2 The checkpoint handle} *)

type hooks = { on_append : int -> unit; after_rename : unit -> unit }

let no_hooks = { on_append = (fun _ -> ()); after_rename = (fun () -> ()) }

type t = {
  cp_dir : string;
  every : int;
  cp_meta : (string * string) list;
  hooks : hooks;
  wal_fd : Unix.file_descr;
  mutable appends : int;
  mutable snapshots : int;
  mutable last_snapshot_iterations : int;
  mutable replay : (int * string * Message.run_report) list;
  was_resumed : bool;
  n_replayed_records : int;
  loaded : Snapshot.t option;
}

let snapshot_path dir = Filename.concat dir "snapshot.afex"
let wal_path dir = Filename.concat dir "wal.log"

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let start ?(hooks = no_hooks) ?(every = 500) ~dir meta =
  if every < 1 then Error "checkpoint: snapshot cadence must be at least 1"
  else begin
    try
      if not (Sys.file_exists dir) then Unix.mkdir dir 0o755;
      if Sys.file_exists (snapshot_path dir) then
        Error
          (Printf.sprintf
             "%s already holds a checkpoint; pass --resume %s to continue it"
             dir dir)
      else begin
        let wal_fd =
          Unix.openfile (wal_path dir)
            [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC; Unix.O_APPEND ]
            0o644
        in
        Ok
          {
            cp_dir = dir; every; cp_meta = meta; hooks; wal_fd; appends = 0;
            snapshots = 0; last_snapshot_iterations = 0; replay = [];
            was_resumed = false; n_replayed_records = 0; loaded = None;
          }
      end
    with Unix.Unix_error (e, fn, arg) ->
      Error (Printf.sprintf "checkpoint: %s %s: %s" fn arg (Unix.error_message e))
  end

let verify_meta ~current ~stored =
  let sort = List.sort compare in
  if sort current = sort stored then Ok ()
  else begin
    let show = function Some v -> v | None -> "(absent)" in
    let mismatch =
      List.find_opt
        (fun (k, v) -> List.assoc_opt k stored <> Some v)
        current
    in
    match mismatch with
    | Some (k, v) ->
        Error
          (Printf.sprintf
             "checkpoint was taken with %s=%s but this invocation has %s=%s — \
              flags that shape the search must match to resume"
             k
             (show (List.assoc_opt k stored))
             k v)
    | None ->
        let k, v =
          List.find (fun (k, v) -> List.assoc_opt k current <> Some v) stored
        in
        Error
          (Printf.sprintf
             "checkpoint was taken with %s=%s, which this invocation does not \
              set — flags that shape the search must match to resume"
             k v)
  end

let resume ?(hooks = no_hooks) ?(every = 500) ~dir meta =
  let ( let* ) = Result.bind in
  if every < 1 then Error "checkpoint: snapshot cadence must be at least 1"
  else if not (Sys.file_exists (snapshot_path dir)) then
    Error (Printf.sprintf "%s holds no checkpoint snapshot to resume" dir)
  else begin
    try
      let* snap = Snapshot.decode (read_file (snapshot_path dir)) in
      let* () = verify_meta ~current:meta ~stored:snap.Snapshot.meta in
      let wal = wal_path dir in
      let contents = if Sys.file_exists wal then read_file wal else "" in
      let* replay, valid_end =
        try
          let records, valid_end = parse_wal contents in
          let since = snap.Snapshot.explorer.Explorer.Snapshot.iterations in
          Ok (wal_tail ~since records, valid_end)
        with Bad m -> Error ("checkpoint: " ^ m)
      in
      let wal_fd =
        Unix.openfile wal [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
      in
      Unix.ftruncate wal_fd valid_end;
      Log.info (fun f ->
          f "resuming %s: %d iterations snapshotted, %d journaled outcomes to replay"
            dir snap.Snapshot.explorer.Explorer.Snapshot.iterations
            (List.length replay));
      Ok
        {
          cp_dir = dir; every; cp_meta = meta; hooks; wal_fd; appends = 0;
          snapshots = 0;
          last_snapshot_iterations =
            snap.Snapshot.explorer.Explorer.Snapshot.iterations;
          replay; was_resumed = true;
          n_replayed_records = List.length replay; loaded = Some snap;
        }
    with
    | Unix.Unix_error (e, fn, arg) ->
        Error (Printf.sprintf "checkpoint: %s %s: %s" fn arg (Unix.error_message e))
    | Sys_error m -> Error ("checkpoint: " ^ m)
  end

let resumed t = t.was_resumed
let dir t = t.cp_dir
let meta t = t.cp_meta
let loaded_snapshot t = t.loaded

let next_replay t =
  match t.replay with
  | [] -> None
  | r :: rest ->
      t.replay <- rest;
      Some r

let replay_pending t = t.replay <> []

let due t ~iterations =
  t.replay = [] && iterations - t.last_snapshot_iterations >= t.every

let append t payload =
  let line = Printf.sprintf "%08x %s\n" (Transport.checksum payload) payload in
  let b = Bytes.of_string line in
  let written = Unix.write t.wal_fd b 0 (Bytes.length b) in
  if written <> Bytes.length b then failwith "checkpoint: short journal write";
  t.appends <- t.appends + 1;
  t.hooks.on_append t.appends

let append_outcome t ~point_key ~seq outcome =
  let msg =
    Message.encode_from_manager
      (Message.Scenario_result (Message.report_of_outcome ~seq outcome))
  in
  append t (Printf.sprintf "o %s %s" (Message.escape point_key) msg)

let write_snapshot t ~iterations snap =
  let text = Snapshot.encode snap in
  let tmp = Filename.concat t.cp_dir "snapshot.tmp" in
  let oc = open_out_bin tmp in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc text);
  Unix.rename tmp (snapshot_path t.cp_dir);
  t.hooks.after_rename ();
  Unix.ftruncate t.wal_fd 0;
  t.snapshots <- t.snapshots + 1;
  t.last_snapshot_iterations <- iterations;
  Log.debug (fun f -> f "snapshot at %d iterations" iterations)

type stats = {
  was_resumed : bool;
  snapshots_written : int;
  wal_appends : int;
  replayed_records : int;
}

let stats (t : t) =
  {
    was_resumed = t.was_resumed;
    snapshots_written = t.snapshots;
    wal_appends = t.appends;
    replayed_records = t.n_replayed_records;
  }

let close t = try Unix.close t.wal_fd with Unix.Unix_error _ -> ()
