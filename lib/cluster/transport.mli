(** Byte transport between the explorer and remote node managers (§6.1).

    The wire carries the line-oriented {!Message} protocol inside
    checksummed, length-prefixed frames, so the endpoints can tell a
    truncated or corrupted delivery from a legitimate message — a
    fault-injection tool's own transport is tested under injected faults
    (see the [chaos] mangler and [test/test_transport.ml]).

    A frame is [magic "AF" | u32 payload length | u32 FNV-1a checksum |
    payload]. Any framing violation surfaces as a typed {!error}; the
    dispatcher above decides whether to reconnect, retry, or requeue the
    work locally. *)

type error =
  | Closed  (** orderly end of stream *)
  | Timeout  (** no complete frame within the receive timeout *)
  | Frame_too_large of int
      (** declared or submitted payload length exceeds {!max_frame} *)
  | Corrupt of string
      (** framing violation: bad magic, checksum mismatch, EOF inside a
          frame — the stream can no longer be trusted *)
  | Io of string  (** operating-system level failure *)

val string_of_error : error -> string
val pp_error : Format.formatter -> error -> unit

val max_frame : int
(** Maximum payload bytes per frame (4 MiB). A garbage length prefix is
    overwhelmingly likely to exceed this, turning stream desync into a
    prompt {!Frame_too_large} instead of an unbounded read. *)

val checksum : string -> int
(** The FNV-1a 32-bit checksum the frame layer uses, exposed so on-disk
    formats (checkpoint snapshots, write-ahead journals) can share the
    transport's corruption-detection discipline. *)

(** Frame encoding, exposed for tests and manglers. *)
module Frame : sig
  val encode : string -> string
  (** [encode payload] is the framed byte string.
      @raise Invalid_argument if the payload exceeds {!max_frame}. *)

  type decoder
  (** Incremental decoder over an arbitrary chunking of the byte
      stream. *)

  val create : unit -> decoder
  val feed : decoder -> string -> unit

  val next : decoder -> (string option, error) result
  (** [Ok None] = need more bytes; [Ok (Some payload)] = one complete,
      checksum-verified frame; [Error _] = the stream is corrupt. *)

  val pending : decoder -> int
  (** Bytes buffered but not yet consumed as a frame. *)
end

type counters = {
  mutable frames_out : int;
  mutable frames_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
}
(** Logical wire traffic on one connection: frames and bytes (header
    included) as handed to [send] / yielded by receive, counted before
    any chaos mangling. One sent frame corresponds to one [write] call,
    so [frames_out] doubles as a syscalls-per-test proxy for the wire
    bench. Owned by the transport — treat as read-only. *)

type t = {
  send : string -> (unit, error) result;
  recv : unit -> (string, error) result;
  try_recv : timeout_ms:int -> (string option, error) result;
      (** Like [recv] but bounded by the given timeout, with "nothing
          yet" reported as [Ok None] instead of an error; [timeout_ms =
          0] is a pure poll. This is the receive primitive pipelining
          event loops use — never blocking beyond their own deadline. *)
  wait_fd : unit -> Unix.file_descr option;
      (** The fd to [select] on for read-readiness, [None] once closed.
          Event loops multiplexing several connections block on these
          instead of calling [recv]. *)
  close : unit -> unit;  (** idempotent *)
  peer : string;  (** human-readable endpoint description *)
  counters : counters;
}
(** One endpoint of a connection. Not thread-safe: a transport belongs to
    exactly one worker at a time. *)

val of_fd :
  ?recv_timeout_ms:int ->
  ?mangle:(string -> string list) ->
  peer:string ->
  Unix.file_descr ->
  t
(** Framed transport over a connected stream socket (or socketpair end).
    [recv_timeout_ms] (default 5000) bounds every receive — a silent peer
    becomes {!Timeout}, never a deadlock. [mangle] intercepts each encoded
    frame before it is written and returns the chunks actually sent —
    identity by default; {!chaos_mangler} injects transport faults. *)

val pair :
  ?recv_timeout_ms:int ->
  ?mangle_a:(string -> string list) ->
  ?mangle_b:(string -> string list) ->
  unit ->
  t * t
(** In-process loopback over [Unix.socketpair]. [mangle_a] corrupts
    frames sent by the first endpoint, [mangle_b] by the second. *)

val connect_tcp :
  ?recv_timeout_ms:int -> host:string -> port:int -> unit -> (t, error) result

val listen_tcp :
  ?host:string -> port:int -> unit -> (Unix.file_descr * int, error) result
(** Bound, listening socket plus the actual port (useful with [port = 0]
    for an ephemeral port). *)

val accept :
  ?recv_timeout_ms:int ->
  ?mangle:(string -> string list) ->
  Unix.file_descr ->
  (t, error) result
(** [mangle] corrupts frames the server sends on the accepted connection
    — the TCP-side hook the CI chaos matrix drives. *)

(** {2 Transport fault injection} *)

type chaos = {
  drop : float;  (** probability a frame is silently discarded *)
  duplicate : float;  (** probability a frame is delivered twice *)
  truncate : float;  (** probability a frame is cut short *)
  bitflip : float;  (** probability one bit of the frame is flipped *)
  garbage : float;  (** probability random bytes precede the frame *)
}

val no_chaos : chaos

val chaos_mangler : rng:Afex_stats.Rng.t -> chaos -> string -> string list
(** Seeded frame mangler for [of_fd]'s [mangle]: every decision draws
    from [rng], so a chaos run is reproducible. The mangled stream must
    never be silently accepted — the checksum, magic and length checks
    above turn every surviving corruption into a typed {!error}. *)
