module Outcome = Afex_injector.Outcome
module Pipelined = Remote_manager.Pipelined

let src = Logs.Src.create "afex.async" ~doc:"Single-domain async I/O executor"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                         *)
(* ------------------------------------------------------------------ *)

module Timer_wheel = struct
  type 'a entry = {
    deadline : float;
    order : int;
    payload : 'a;
    mutable cancelled : bool;
  }

  type 'a t = {
    granularity_ms : float;
    slots : 'a entry list array;
    mutable pending : int;
    mutable order : int;
    mutable now : float;
  }

  let create ?(granularity_ms = 1.0) ?(slots = 256) ~now_ms () =
    if granularity_ms <= 0.0 then
      invalid_arg "Timer_wheel.create: granularity must be positive";
    if slots < 1 then invalid_arg "Timer_wheel.create: need at least one slot";
    {
      granularity_ms;
      slots = Array.make slots [];
      pending = 0;
      order = 0;
      now = now_ms;
    }

  let tick t time = int_of_float (Float.max 0.0 time /. t.granularity_ms)

  let schedule t ~at_ms payload =
    (* Deadlines in the past fire on the next advance. *)
    let at_ms = Float.max t.now at_ms in
    let e = { deadline = at_ms; order = t.order; payload; cancelled = false } in
    t.order <- t.order + 1;
    let i = tick t at_ms mod Array.length t.slots in
    t.slots.(i) <- e :: t.slots.(i);
    t.pending <- t.pending + 1;
    e

  let cancel t e =
    if not e.cancelled then begin
      e.cancelled <- true;
      t.pending <- t.pending - 1
    end

  let pending t = t.pending

  let next_deadline t =
    if t.pending = 0 then None
    else
      Array.fold_left
        (List.fold_left (fun acc e ->
             if e.cancelled then acc
             else
               match acc with
               | None -> Some e.deadline
               | Some d -> Some (Float.min d e.deadline)))
        None t.slots

  (* Walk only the slots the clock swept over since the last advance; an
     entry a full rotation (or more) away stays in its bucket because its
     deadline is still in the future. Expired entries come out in
     deadline order, ties broken by scheduling order. *)
  let advance t ~now_ms =
    let n = Array.length t.slots in
    let first = tick t t.now and last = tick t (Float.max t.now now_ms) in
    let count = min n (last - first + 1) in
    let expired = ref [] in
    for k = 0 to count - 1 do
      let i = (first + k) mod n in
      let keep = ref [] in
      List.iter
        (fun e ->
          if e.cancelled then () (* already uncounted: drop it *)
          else if e.deadline <= now_ms then expired := e :: !expired
          else keep := e :: !keep)
        t.slots.(i);
      t.slots.(i) <- !keep
    done;
    t.now <- Float.max t.now now_ms;
    let sorted =
      List.sort
        (fun a b ->
          match compare a.deadline b.deadline with
          | 0 -> compare a.order b.order
          | c -> c)
        !expired
    in
    t.pending <- t.pending - List.length sorted;
    List.map (fun e -> e.payload) sorted
end

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

type task = {
  scenario : Afex_faultspace.Scenario.t option;
  start : unit -> Afex.Executor.job;
}

type stats = {
  local_runs : int;
  remote_runs : int;
  remote_fallbacks : int;
  max_inflight : int;
  wakeups : int;
}

(* Wheel events. [Poll] and [Request_timeout] reference per-batch state
   (slots); their entries are cancelled when the slot completes, so a
   stale event can never leak into a later batch. [Backoff_over] is a
   pure wakeup: it only bounds how long the loop may sleep while a
   manager is gated behind its reconnect backoff. *)
type event = Poll of int | Request_timeout of int * int | Backoff_over of int

type remote = {
  conn : Pipelined.conn;
  mutable not_before : float; (* backoff gate on the monotonic clock *)
  mutable seen_failures : int;
}

type t = {
  mutable inflight : int;
  request_timeout_ms : int;
  now_ms : unit -> float;
  wheel : event Timer_wheel.t;
  remotes : remote array;
  mutable rr : int; (* round-robin dispatch cursor *)
  mutable n_local : int;
  mutable n_remote : int;
  mutable n_fallback : int;
  mutable max_seen : int;
  mutable n_wakeups : int;
}

(* How soon to poll again when a job gives no readiness estimate, or its
   estimate has already passed. *)
let poll_fallback_ms = 1.0

let create ?(remotes = []) ?(request_timeout_ms = 10_000)
    ?(now_ms = Afex.Executor.monotonic_ms) ~inflight ~total_blocks () =
  if inflight < 1 then
    invalid_arg "Async_executor.create: inflight must be positive";
  if request_timeout_ms < 1 then
    invalid_arg "Async_executor.create: request timeout must be positive";
  {
    inflight;
    request_timeout_ms;
    now_ms;
    wheel = Timer_wheel.create ~now_ms:(now_ms ()) ();
    remotes =
      Array.of_list
        (List.map
           (fun spec ->
             let conn = Pipelined.create spec ~total_blocks in
             Pipelined.set_credit conn inflight;
             { conn; not_before = 0.0; seen_failures = 0 })
           remotes);
    rr = 0;
    n_local = 0;
    n_remote = 0;
    n_fallback = 0;
    max_seen = 0;
    n_wakeups = 0;
  }

let inflight t = t.inflight

(* The adaptive scheduler's knob, applied between batches: the dispatch
   loop reads [t.inflight] on every iteration and each connection's
   credit caps how much of the window can ride one wire. *)
let set_inflight t inflight =
  if inflight < 1 then
    invalid_arg "Async_executor.set_inflight: inflight must be positive";
  t.inflight <- inflight;
  Array.iter (fun r -> Pipelined.set_credit r.conn inflight) t.remotes

let stats t =
  {
    local_runs = t.n_local;
    remote_runs = t.n_remote;
    remote_fallbacks = t.n_fallback;
    max_inflight = t.max_seen;
    wakeups = t.n_wakeups;
  }

let remote_stats t =
  Array.to_list
    (Array.map (fun r -> (Pipelined.name r.conn, Pipelined.stats r.conn)) t.remotes)

let close t = Array.iter (fun r -> Pipelined.close r.conn) t.remotes

(* A manager failed: gate its next attempt behind the exponential backoff
   as a timer-wheel deadline — never a sleep, so every other in-flight
   test keeps progressing while it cools off. *)
let refresh_gate t ix =
  let r = t.remotes.(ix) in
  let f = Pipelined.failures r.conn in
  if f > r.seen_failures then begin
    r.seen_failures <- f;
    if not (Pipelined.abandoned r.conn) then begin
      r.not_before <- t.now_ms () +. Pipelined.backoff_ms r.conn;
      ignore (Timer_wheel.schedule t.wheel ~at_ms:r.not_before (Backoff_over ix));
      Log.debug (fun m ->
          m "%s: backoff until t+%.1fms (failure %d/%d)" (Pipelined.name r.conn)
            (Pipelined.backoff_ms r.conn) f
            (Pipelined.max_attempts r.conn))
    end
  end
  else if f < r.seen_failures then r.seen_failures <- f

let exec_batch t tasks =
  let n = Array.length tasks in
  let results : (Outcome.t, exn) result option array = Array.make n None in
  let completed = ref 0 and inflight = ref 0 and next = ref 0 in
  let local_jobs : (int, Afex.Executor.job) Hashtbl.t = Hashtbl.create 16 in
  let poll_timers : (int, event Timer_wheel.entry) Hashtbl.t = Hashtbl.create 16 in
  let req_timers : (int, event Timer_wheel.entry) Hashtbl.t = Hashtbl.create 16 in
  let cancel_timer table slot =
    match Hashtbl.find_opt table slot with
    | Some e ->
        Timer_wheel.cancel t.wheel e;
        Hashtbl.remove table slot
    | None -> ()
  in
  let set_poll_timer slot at =
    cancel_timer poll_timers slot;
    Hashtbl.replace poll_timers slot (Timer_wheel.schedule t.wheel ~at_ms:at (Poll slot))
  in
  let complete slot result =
    match results.(slot) with
    | Some _ -> ()
    | None ->
        results.(slot) <- Some result;
        incr completed;
        decr inflight;
        cancel_timer poll_timers slot;
        cancel_timer req_timers slot
  in
  let start_local slot =
    t.n_local <- t.n_local + 1;
    match tasks.(slot).start () with
    | exception e -> complete slot (Error e)
    | job -> (
        match job.Afex.Executor.poll () with
        | Some outcome -> complete slot (Ok outcome)
        | exception e -> complete slot (Error e)
        | None ->
            Hashtbl.replace local_jobs slot job;
            let at =
              match job.Afex.Executor.ready_at_ms () with
              | Some d -> Float.max d (t.now_ms ())
              | None -> t.now_ms () +. poll_fallback_ms
            in
            set_poll_timer slot at)
  in
  let poll_slot slot =
    match Hashtbl.find_opt local_jobs slot with
    | None -> ()
    | Some job -> (
        match job.Afex.Executor.poll () with
        | Some outcome ->
            Hashtbl.remove local_jobs slot;
            complete slot (Ok outcome)
        | exception e ->
            Hashtbl.remove local_jobs slot;
            complete slot (Error e)
        | None ->
            let now = t.now_ms () in
            let at =
              match job.Afex.Executor.ready_at_ms () with
              | Some d when d > now -> d
              | Some _ | None -> now +. poll_fallback_ms
            in
            set_poll_timer slot at)
  in
  let fallback slot =
    cancel_timer req_timers slot;
    t.n_fallback <- t.n_fallback + 1;
    start_local slot
  in
  let absorb_orphans ix =
    List.iter fallback (Pipelined.take_orphans t.remotes.(ix).conn)
  in
  (* Try to put the test on a manager's wire; [false] = the caller runs
     it locally. Submit failures drop the connection, orphaning whatever
     was in flight on it — those fall back here too, immediately. *)
  let try_remote slot scenario =
    let m = Array.length t.remotes in
    let rec go k =
      if k >= m then false
      else begin
        let ix = (t.rr + k) mod m in
        let r = t.remotes.(ix) in
        if
          Pipelined.dispatchable r.conn
          && Pipelined.has_credit r.conn
          && t.now_ms () >= r.not_before
        then begin
          match Pipelined.submit r.conn ~tag:slot scenario with
          | Ok () ->
              t.rr <- (ix + 1) mod m;
              t.n_remote <- t.n_remote + 1;
              cancel_timer req_timers slot;
              Hashtbl.replace req_timers slot
                (Timer_wheel.schedule t.wheel
                   ~at_ms:(t.now_ms () +. float_of_int t.request_timeout_ms)
                   (Request_timeout (ix, slot)));
              true
          | Error e ->
              Log.debug (fun m ->
                  m "%s: submit failed: %s" (Pipelined.name r.conn)
                    (Remote_manager.string_of_error e));
              refresh_gate t ix;
              absorb_orphans ix;
              go (k + 1)
        end
        else go (k + 1)
      end
    in
    go 0
  in
  let dispatch () =
    while !inflight < t.inflight && !next < n do
      let slot = !next in
      incr next;
      incr inflight;
      if !inflight > t.max_seen then t.max_seen <- !inflight;
      match tasks.(slot).scenario with
      | Some scenario when Array.length t.remotes > 0 ->
          if not (try_remote slot scenario) then begin
            if Array.exists (fun r -> not (Pipelined.abandoned r.conn)) t.remotes
            then t.n_fallback <- t.n_fallback + 1;
            start_local slot
          end
      | Some _ | None -> start_local slot
    done
  in
  let handle_event = function
    | Poll slot ->
        Hashtbl.remove poll_timers slot;
        poll_slot slot
    | Backoff_over _ -> ()
    | Request_timeout (ix, slot) ->
        Hashtbl.remove req_timers slot;
        let r = t.remotes.(ix) in
        if
          (match results.(slot) with None -> true | Some _ -> false)
          && Pipelined.awaiting r.conn slot
        then begin
          (* A straggling manager forfeits everything it holds. *)
          Log.debug (fun m ->
              m "%s: request timeout after %dms" (Pipelined.name r.conn)
                t.request_timeout_ms);
          Pipelined.fail r.conn;
          refresh_gate t ix;
          absorb_orphans ix
        end
  in
  let drain_remotes () =
    Array.iteri
      (fun ix r ->
        List.iter
          (fun (slot, result) ->
            match result with
            | Ok outcome ->
                cancel_timer req_timers slot;
                complete slot (Ok outcome)
            | Error e ->
                Log.debug (fun m ->
                    m "%s: test %d failed remotely (%s); re-running locally"
                      (Pipelined.name r.conn) slot
                      (Remote_manager.string_of_error e));
                fallback slot)
          (Pipelined.drain r.conn);
        refresh_gate t ix;
        absorb_orphans ix)
      t.remotes
  in
  dispatch ();
  while !completed < n do
    t.n_wakeups <- t.n_wakeups + 1;
    let now = t.now_ms () in
    let fd_slots =
      Hashtbl.fold
        (fun slot (job : Afex.Executor.job) acc ->
          match job.Afex.Executor.wait_fd with
          | Some fd -> (fd, slot) :: acc
          | None -> acc)
        local_jobs []
    in
    let remote_fds =
      Array.fold_left
        (fun acc r ->
          match Pipelined.wait_fd r.conn with Some fd -> fd :: acc | None -> acc)
        [] t.remotes
    in
    let fds = List.map fst fd_slots @ remote_fds in
    let timeout_s =
      match Timer_wheel.next_deadline t.wheel with
      | Some d -> Float.max 0.0 (Float.min 0.1 ((d -. now) /. 1000.0))
      | None -> if fds = [] then 0.0 else 0.05
    in
    let readable =
      if fds = [] then begin
        if timeout_s > 0.0 then Unix.sleepf timeout_s;
        []
      end
      else
        match Unix.select fds [] [] timeout_s with
        | r, _, _ -> r
        | exception Unix.Unix_error (EINTR, _, _) -> []
    in
    drain_remotes ();
    List.iter
      (fun (fd, slot) -> if List.memq fd readable then poll_slot slot)
      fd_slots;
    List.iter handle_event (Timer_wheel.advance t.wheel ~now_ms:(t.now_ms ()));
    dispatch ()
  done;
  Hashtbl.iter (fun _ e -> Timer_wheel.cancel t.wheel e) poll_timers;
  Hashtbl.iter (fun _ e -> Timer_wheel.cancel t.wheel e) req_timers;
  Array.map (function Some r -> r | None -> assert false) results
