module Outcome = Afex_injector.Outcome
module Pipelined = Remote_manager.Pipelined

let src = Logs.Src.create "afex.async" ~doc:"Single-domain async I/O executor"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Timer wheel                                                         *)
(* ------------------------------------------------------------------ *)

module Timer_wheel = struct
  type 'a entry = {
    deadline : float;
    order : int;
    payload : 'a;
    mutable cancelled : bool;
  }

  type 'a t = {
    granularity_ms : float;
    slots : 'a entry list array;
    mutable pending : int;
    mutable order : int;
    mutable now : float;
  }

  let create ?(granularity_ms = 1.0) ?(slots = 256) ~now_ms () =
    if granularity_ms <= 0.0 then
      invalid_arg "Timer_wheel.create: granularity must be positive";
    if slots < 1 then invalid_arg "Timer_wheel.create: need at least one slot";
    {
      granularity_ms;
      slots = Array.make slots [];
      pending = 0;
      order = 0;
      now = now_ms;
    }

  let tick t time = int_of_float (Float.max 0.0 time /. t.granularity_ms)

  let schedule t ~at_ms payload =
    (* Deadlines in the past fire on the next advance. *)
    let at_ms = Float.max t.now at_ms in
    let e = { deadline = at_ms; order = t.order; payload; cancelled = false } in
    t.order <- t.order + 1;
    let i = tick t at_ms mod Array.length t.slots in
    t.slots.(i) <- e :: t.slots.(i);
    t.pending <- t.pending + 1;
    e

  let cancel t e =
    if not e.cancelled then begin
      e.cancelled <- true;
      t.pending <- t.pending - 1
    end

  let pending t = t.pending

  let next_deadline t =
    if t.pending = 0 then None
    else
      Array.fold_left
        (List.fold_left (fun acc e ->
             if e.cancelled then acc
             else
               match acc with
               | None -> Some e.deadline
               | Some d -> Some (Float.min d e.deadline)))
        None t.slots

  (* Walk only the slots the clock swept over since the last advance; an
     entry a full rotation (or more) away stays in its bucket because its
     deadline is still in the future. Expired entries come out in
     deadline order, ties broken by scheduling order. *)
  let advance t ~now_ms =
    let n = Array.length t.slots in
    let first = tick t t.now and last = tick t (Float.max t.now now_ms) in
    let count = min n (last - first + 1) in
    let expired = ref [] in
    for k = 0 to count - 1 do
      let i = (first + k) mod n in
      let keep = ref [] in
      List.iter
        (fun e ->
          if e.cancelled then () (* already uncounted: drop it *)
          else if e.deadline <= now_ms then expired := e :: !expired
          else keep := e :: !keep)
        t.slots.(i);
      t.slots.(i) <- !keep
    done;
    t.now <- Float.max t.now now_ms;
    let sorted =
      List.sort
        (fun a b ->
          match compare a.deadline b.deadline with
          | 0 -> compare a.order b.order
          | c -> c)
        !expired
    in
    t.pending <- t.pending - List.length sorted;
    List.map (fun e -> e.payload) sorted
end

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

type task = {
  scenario : Afex_faultspace.Scenario.t option;
  start : unit -> Afex.Executor.job;
}

type stats = {
  local_runs : int;
  remote_runs : int;
  remote_fallbacks : int;
  max_inflight : int;
  wakeups : int;
}

(* Wheel events. [Poll] and [Request_timeout] reference live submissions
   by tag; their entries are cancelled when the tag completes, so a
   stale event can never touch a later submission. [Backoff_over] is a
   pure wakeup: it only bounds how long the loop may sleep while a
   manager is gated behind its reconnect backoff. *)
type event = Poll of int | Request_timeout of int * int | Backoff_over of int

type remote = {
  conn : Pipelined.conn;
  mutable not_before : float; (* backoff gate on the monotonic clock *)
  mutable seen_failures : int;
}

(* Submission state is persistent on [t], not per batch: tags flow
   [injections] -> (started: [local_jobs] or a manager's wire) ->
   [done_q]. [live] holds every incomplete tag's task — the local
   fallback needs the thunk long after submission. *)
type t = {
  mutable inflight : int;
  request_timeout_ms : int;
  now_ms : unit -> float;
  wheel : event Timer_wheel.t;
  remotes : remote array;
  mutable rr : int; (* round-robin dispatch cursor *)
  injections : int Queue.t; (* submitted tags not yet started *)
  live : (int, task) Hashtbl.t; (* tag -> task until completion *)
  local_jobs : (int, Afex.Executor.job) Hashtbl.t;
  poll_timers : (int, event Timer_wheel.entry) Hashtbl.t;
  req_timers : (int, event Timer_wheel.entry) Hashtbl.t;
  done_q : (int * (Outcome.t, exn) result) Queue.t;
  mutable active : int; (* started, not completed *)
  mutable n_local : int;
  mutable n_remote : int;
  mutable n_fallback : int;
  mutable max_seen : int;
  mutable n_wakeups : int;
}

(* How soon to poll again when a job gives no readiness estimate, or its
   estimate has already passed. *)
let poll_fallback_ms = 1.0

let create ?(remotes = []) ?(request_timeout_ms = 10_000)
    ?(now_ms = Afex.Executor.monotonic_ms) ~inflight ~total_blocks () =
  if inflight < 1 then
    invalid_arg "Async_executor.create: inflight must be positive";
  if request_timeout_ms < 1 then
    invalid_arg "Async_executor.create: request timeout must be positive";
  {
    inflight;
    request_timeout_ms;
    now_ms;
    wheel = Timer_wheel.create ~now_ms:(now_ms ()) ();
    remotes =
      Array.of_list
        (List.map
           (fun spec ->
             let conn = Pipelined.create spec ~total_blocks in
             Pipelined.set_credit conn inflight;
             { conn; not_before = 0.0; seen_failures = 0 })
           remotes);
    rr = 0;
    injections = Queue.create ();
    live = Hashtbl.create 64;
    local_jobs = Hashtbl.create 16;
    poll_timers = Hashtbl.create 16;
    req_timers = Hashtbl.create 16;
    done_q = Queue.create ();
    active = 0;
    n_local = 0;
    n_remote = 0;
    n_fallback = 0;
    max_seen = 0;
    n_wakeups = 0;
  }

let inflight t = t.inflight

(* The adaptive scheduler's knob: the dispatch loop reads [t.inflight]
   on every iteration and each connection's credit caps how much of the
   window can ride one wire. Shrinking never preempts a started test —
   the window narrows as they complete. *)
let set_inflight t inflight =
  if inflight < 1 then
    invalid_arg "Async_executor.set_inflight: inflight must be positive";
  t.inflight <- inflight;
  Array.iter (fun r -> Pipelined.set_credit r.conn inflight) t.remotes

let stats t =
  {
    local_runs = t.n_local;
    remote_runs = t.n_remote;
    remote_fallbacks = t.n_fallback;
    max_inflight = t.max_seen;
    wakeups = t.n_wakeups;
  }

let remote_stats t =
  Array.to_list
    (Array.map (fun r -> (Pipelined.name r.conn, Pipelined.stats r.conn)) t.remotes)

let outstanding t = Hashtbl.length t.live

let close t = Array.iter (fun r -> Pipelined.close r.conn) t.remotes

(* A manager failed: gate its next attempt behind the exponential backoff
   as a timer-wheel deadline — never a sleep, so every other in-flight
   test keeps progressing while it cools off. *)
let refresh_gate t ix =
  let r = t.remotes.(ix) in
  let f = Pipelined.failures r.conn in
  if f > r.seen_failures then begin
    r.seen_failures <- f;
    if not (Pipelined.abandoned r.conn) then begin
      r.not_before <- t.now_ms () +. Pipelined.backoff_ms r.conn;
      ignore (Timer_wheel.schedule t.wheel ~at_ms:r.not_before (Backoff_over ix));
      Log.debug (fun m ->
          m "%s: backoff until t+%.1fms (failure %d/%d)" (Pipelined.name r.conn)
            (Pipelined.backoff_ms r.conn) f
            (Pipelined.max_attempts r.conn))
    end
  end
  else if f < r.seen_failures then r.seen_failures <- f

let cancel_timer t table tag =
  match Hashtbl.find_opt table tag with
  | Some e ->
      Timer_wheel.cancel t.wheel e;
      Hashtbl.remove table tag
  | None -> ()

let set_poll_timer t tag at =
  cancel_timer t t.poll_timers tag;
  Hashtbl.replace t.poll_timers tag
    (Timer_wheel.schedule t.wheel ~at_ms:at (Poll tag))

let complete t tag result =
  if Hashtbl.mem t.live tag then begin
    Hashtbl.remove t.live tag;
    Hashtbl.remove t.local_jobs tag;
    t.active <- t.active - 1;
    cancel_timer t t.poll_timers tag;
    cancel_timer t t.req_timers tag;
    Queue.push (tag, result) t.done_q
  end

let start_local t tag =
  match Hashtbl.find_opt t.live tag with
  | None -> ()
  | Some task -> (
      t.n_local <- t.n_local + 1;
      match task.start () with
      | exception e -> complete t tag (Error e)
      | job -> (
          match job.Afex.Executor.poll () with
          | Some outcome -> complete t tag (Ok outcome)
          | exception e -> complete t tag (Error e)
          | None ->
              Hashtbl.replace t.local_jobs tag job;
              let at =
                match job.Afex.Executor.ready_at_ms () with
                | Some d -> Float.max d (t.now_ms ())
                | None -> t.now_ms () +. poll_fallback_ms
              in
              set_poll_timer t tag at))

let poll_slot t tag =
  match Hashtbl.find_opt t.local_jobs tag with
  | None -> ()
  | Some job -> (
      match job.Afex.Executor.poll () with
      | Some outcome -> complete t tag (Ok outcome)
      | exception e -> complete t tag (Error e)
      | None ->
          let now = t.now_ms () in
          let at =
            match job.Afex.Executor.ready_at_ms () with
            | Some d when d > now -> d
            | Some _ | None -> now +. poll_fallback_ms
          in
          set_poll_timer t tag at)

let fallback t tag =
  if Hashtbl.mem t.live tag then begin
    cancel_timer t t.req_timers tag;
    t.n_fallback <- t.n_fallback + 1;
    start_local t tag
  end

let absorb_orphans t ix =
  List.iter (fallback t) (Pipelined.take_orphans t.remotes.(ix).conn)

(* Try to put the test on a manager's wire; [false] = the caller runs
   it locally. Submit failures drop the connection, orphaning whatever
   was in flight on it — those fall back here too, immediately. *)
let try_remote t tag scenario =
  let m = Array.length t.remotes in
  let rec go k =
    if k >= m then false
    else begin
      let ix = (t.rr + k) mod m in
      let r = t.remotes.(ix) in
      if
        Pipelined.dispatchable r.conn
        && Pipelined.has_credit r.conn
        && t.now_ms () >= r.not_before
      then begin
        match Pipelined.submit r.conn ~tag scenario with
        | Ok () ->
            t.rr <- (ix + 1) mod m;
            t.n_remote <- t.n_remote + 1;
            cancel_timer t t.req_timers tag;
            Hashtbl.replace t.req_timers tag
              (Timer_wheel.schedule t.wheel
                 ~at_ms:(t.now_ms () +. float_of_int t.request_timeout_ms)
                 (Request_timeout (ix, tag)));
            true
        | Error e ->
            Log.debug (fun m ->
                m "%s: submit failed: %s" (Pipelined.name r.conn)
                  (Remote_manager.string_of_error e));
            refresh_gate t ix;
            absorb_orphans t ix;
            go (k + 1)
      end
      else go (k + 1)
    end
  in
  go 0

let dispatch t =
  while t.active < t.inflight && not (Queue.is_empty t.injections) do
    let tag = Queue.pop t.injections in
    match Hashtbl.find_opt t.live tag with
    | None -> ()
    | Some task -> (
        t.active <- t.active + 1;
        if t.active > t.max_seen then t.max_seen <- t.active;
        match task.scenario with
        | Some scenario when Array.length t.remotes > 0 ->
            if not (try_remote t tag scenario) then begin
              if
                Array.exists (fun r -> not (Pipelined.abandoned r.conn)) t.remotes
              then t.n_fallback <- t.n_fallback + 1;
              start_local t tag
            end
        | Some _ | None -> start_local t tag)
  done

let handle_event t = function
  | Poll tag ->
      Hashtbl.remove t.poll_timers tag;
      poll_slot t tag
  | Backoff_over _ -> ()
  | Request_timeout (ix, tag) ->
      Hashtbl.remove t.req_timers tag;
      let r = t.remotes.(ix) in
      if Hashtbl.mem t.live tag && Pipelined.awaiting r.conn tag then begin
        (* A straggling manager forfeits everything it holds. *)
        Log.debug (fun m ->
            m "%s: request timeout after %dms" (Pipelined.name r.conn)
              t.request_timeout_ms);
        Pipelined.fail r.conn;
        refresh_gate t ix;
        absorb_orphans t ix
      end

let drain_remotes t =
  Array.iteri
    (fun ix r ->
      List.iter
        (fun (tag, result) ->
          match result with
          | Ok outcome ->
              cancel_timer t t.req_timers tag;
              complete t tag (Ok outcome)
          | Error e ->
              Log.debug (fun m ->
                  m "%s: test %d failed remotely (%s); re-running locally"
                    (Pipelined.name r.conn) tag
                    (Remote_manager.string_of_error e));
              fallback t tag)
        (Pipelined.drain r.conn);
      refresh_gate t ix;
      absorb_orphans t ix)
    t.remotes

(* Nothing may sit in a v2 coalescing buffer while the loop blocks in
   [select] waiting for replies those very requests would produce. *)
let flush_remotes t =
  Array.iteri
    (fun ix r ->
      match Pipelined.flush r.conn with
      | Ok () -> ()
      | Error _ ->
          refresh_gate t ix;
          absorb_orphans t ix)
    t.remotes

(* One event-loop iteration: select over job fds and remote sockets up
   to [max_wait_s] (bounded by the wheel's next deadline), then drain
   everything that became ready and refill the dispatch window. *)
let step t ~max_wait_s =
  t.n_wakeups <- t.n_wakeups + 1;
  flush_remotes t;
  let now = t.now_ms () in
  let fd_slots =
    Hashtbl.fold
      (fun tag (job : Afex.Executor.job) acc ->
        match job.Afex.Executor.wait_fd with
        | Some fd -> (fd, tag) :: acc
        | None -> acc)
      t.local_jobs []
  in
  let remote_fds =
    Array.fold_left
      (fun acc r ->
        match Pipelined.wait_fd r.conn with Some fd -> fd :: acc | None -> acc)
      [] t.remotes
  in
  let fds = List.map fst fd_slots @ remote_fds in
  let timeout_s =
    match Timer_wheel.next_deadline t.wheel with
    | Some d -> Float.max 0.0 (Float.min max_wait_s ((d -. now) /. 1000.0))
    | None -> if fds = [] then 0.0 else Float.min max_wait_s 0.05
  in
  let readable =
    if fds = [] then begin
      if timeout_s > 0.0 then Unix.sleepf timeout_s;
      []
    end
    else
      match Unix.select fds [] [] timeout_s with
      | r, _, _ -> r
      | exception Unix.Unix_error (EINTR, _, _) -> []
  in
  drain_remotes t;
  List.iter
    (fun (fd, tag) -> if List.memq fd readable then poll_slot t tag)
    fd_slots;
  List.iter (handle_event t) (Timer_wheel.advance t.wheel ~now_ms:(t.now_ms ()));
  dispatch t;
  flush_remotes t

let submit t ~tag task =
  if Hashtbl.mem t.live tag then
    invalid_arg (Printf.sprintf "Async_executor.submit: tag %d is already live" tag);
  Hashtbl.replace t.live tag task;
  Queue.push tag t.injections;
  (* Start eagerly — submission overlaps with whatever the caller does
     next (for the pool: generating the next candidate). *)
  dispatch t

let poll t ~block =
  dispatch t;
  flush_remotes t;
  if Queue.is_empty t.done_q && Hashtbl.length t.live > 0 then
    if block then
      while Queue.is_empty t.done_q && Hashtbl.length t.live > 0 do
        step t ~max_wait_s:0.1
      done
    else step t ~max_wait_s:0.0;
  let out = List.of_seq (Queue.to_seq t.done_q) in
  Queue.clear t.done_q;
  out

let exec_batch t tasks =
  if Hashtbl.length t.live > 0 then
    invalid_arg "Async_executor.exec_batch: submissions already outstanding";
  let n = Array.length tasks in
  let results = Array.make n None in
  Array.iteri (fun tag task -> submit t ~tag task) tasks;
  let remaining = ref n in
  while !remaining > 0 do
    List.iter
      (fun (tag, r) ->
        if results.(tag) = None then decr remaining;
        results.(tag) <- Some r)
      (poll t ~block:true)
  done;
  Array.map (function Some r -> r | None -> assert false) results
