module Rng = Afex_stats.Rng

type error =
  | Closed
  | Timeout
  | Frame_too_large of int
  | Corrupt of string
  | Io of string

let string_of_error = function
  | Closed -> "connection closed"
  | Timeout -> "receive timeout"
  | Frame_too_large n -> Printf.sprintf "frame of %d bytes exceeds the limit" n
  | Corrupt m -> Printf.sprintf "corrupt stream: %s" m
  | Io m -> Printf.sprintf "I/O error: %s" m

let pp_error ppf e = Format.pp_print_string ppf (string_of_error e)

let max_frame = 4 * 1024 * 1024
let magic0 = 'A'
let magic1 = 'F'
let header_bytes = 10 (* 2 magic + 4 length + 4 checksum *)

let fnv1a32 s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xFFFFFFFF)
    s;
  !h

let checksum = fnv1a32

module Frame = struct
  let add_u32 b v =
    Buffer.add_char b (Char.chr ((v lsr 24) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 16) land 0xff));
    Buffer.add_char b (Char.chr ((v lsr 8) land 0xff));
    Buffer.add_char b (Char.chr (v land 0xff))

  let u32 s off =
    (Char.code s.[off] lsl 24)
    lor (Char.code s.[off + 1] lsl 16)
    lor (Char.code s.[off + 2] lsl 8)
    lor Char.code s.[off + 3]

  let encode payload =
    let n = String.length payload in
    if n > max_frame then invalid_arg "Transport.Frame.encode: payload too large";
    let b = Buffer.create (header_bytes + n) in
    Buffer.add_char b magic0;
    Buffer.add_char b magic1;
    add_u32 b n;
    add_u32 b (fnv1a32 payload);
    Buffer.add_string b payload;
    Buffer.contents b

  type decoder = { mutable buf : string }

  let create () = { buf = "" }
  let feed d s = if s <> "" then d.buf <- d.buf ^ s
  let pending d = String.length d.buf

  let next d =
    let s = d.buf in
    let len = String.length s in
    if len = 0 then Ok None
    else if s.[0] <> magic0 || (len > 1 && s.[1] <> magic1) then
      Error (Corrupt "bad frame magic")
    else if len < header_bytes then Ok None
    else begin
      let n = u32 s 2 in
      if n > max_frame then Error (Frame_too_large n)
      else if len < header_bytes + n then Ok None
      else begin
        let payload = String.sub s header_bytes n in
        let declared = u32 s 6 in
        d.buf <- String.sub s (header_bytes + n) (len - header_bytes - n);
        if fnv1a32 payload <> declared then Error (Corrupt "checksum mismatch")
        else Ok (Some payload)
      end
    end
end

type counters = {
  mutable frames_out : int;
  mutable frames_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
}

type t = {
  send : string -> (unit, error) result;
  recv : unit -> (string, error) result;
  try_recv : timeout_ms:int -> (string option, error) result;
  wait_fd : unit -> Unix.file_descr option;
  close : unit -> unit;
  peer : string;
  counters : counters;
}

(* Writing to a peer that already closed raises SIGPIPE, which would kill
   the process instead of returning EPIPE. *)
let ignore_sigpipe =
  lazy
    (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
     with Invalid_argument _ -> ())

let write_all fd s =
  let b = Bytes.of_string s in
  let total = Bytes.length b in
  let rec go off =
    if off >= total then Ok ()
    else
      match Unix.write fd b off (total - off) with
      | 0 -> Error Closed
      | n -> go (off + n)
      | exception Unix.Unix_error ((EPIPE | ECONNRESET | EBADF), _, _) ->
          Error Closed
      | exception Unix.Unix_error (EINTR, _, _) -> go off
      | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))
  in
  go 0

let of_fd ?(recv_timeout_ms = 5000) ?(mangle = fun frame -> [ frame ]) ~peer fd =
  Lazy.force ignore_sigpipe;
  let decoder = Frame.create () in
  (* Counters are logical — the frame as handed over / decoded, before
     any chaos mangling — so v1-vs-v2 wire cost comparisons stay
     deterministic. One sent frame ~ one [write] syscall. *)
  let counters = { frames_out = 0; frames_in = 0; bytes_out = 0; bytes_in = 0 } in
  let closed = ref false in
  let close () =
    if not !closed then begin
      closed := true;
      try Unix.close fd with Unix.Unix_error _ -> ()
    end
  in
  let send payload =
    if !closed then Error Closed
    else if String.length payload > max_frame then
      Error (Frame_too_large (String.length payload))
    else begin
      let r =
        List.fold_left
          (fun acc chunk ->
            match acc with Error _ -> acc | Ok () -> write_all fd chunk)
          (Ok ())
          (mangle (Frame.encode payload))
      in
      (match r with
      | Ok () ->
          counters.frames_out <- counters.frames_out + 1;
          counters.bytes_out <-
            counters.bytes_out + header_bytes + String.length payload
      | Error _ -> ());
      r
    end
  in
  let buf = Bytes.create 65536 in
  (* [Ok None] = no complete frame within [timeout_ms]; with 0 this is a
     pure poll, which is what a pipelining event loop needs. *)
  let rec try_recv ~timeout_ms =
    if !closed then Error Closed
    else
      match Frame.next decoder with
      | Error e -> Error e
      | Ok (Some payload) ->
          counters.frames_in <- counters.frames_in + 1;
          counters.bytes_in <-
            counters.bytes_in + header_bytes + String.length payload;
          Ok (Some payload)
      | Ok None -> (
          let readable =
            let deadline = float_of_int timeout_ms /. 1000.0 in
            let rec select () =
              match Unix.select [ fd ] [] [] deadline with
              | [], _, _ -> false
              | _ -> true
              | exception Unix.Unix_error (EINTR, _, _) -> select ()
            in
            select ()
          in
          if not readable then Ok None
          else
            match Unix.read fd buf 0 (Bytes.length buf) with
            | 0 ->
                if Frame.pending decoder > 0 then
                  Error (Corrupt "end of stream inside a frame")
                else Error Closed
            | n ->
                Frame.feed decoder (Bytes.sub_string buf 0 n);
                try_recv ~timeout_ms
            | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) ->
                Error Closed
            | exception Unix.Unix_error (EINTR, _, _) -> try_recv ~timeout_ms
            | exception Unix.Unix_error (e, _, _) ->
                Error (Io (Unix.error_message e)))
  in
  let recv () =
    match try_recv ~timeout_ms:recv_timeout_ms with
    | Ok (Some payload) -> Ok payload
    | Ok None -> Error Timeout
    | Error e -> Error e
  in
  let wait_fd () = if !closed then None else Some fd in
  { send; recv; try_recv; wait_fd; close; peer; counters }

let pair ?recv_timeout_ms ?mangle_a ?mangle_b () =
  let a, b = Unix.socketpair PF_UNIX SOCK_STREAM 0 in
  ( of_fd ?recv_timeout_ms ?mangle:mangle_a ~peer:"loopback" a,
    of_fd ?recv_timeout_ms ?mangle:mangle_b ~peer:"loopback" b )

let resolve host =
  match Unix.inet_addr_of_string host with
  | addr -> Ok addr
  | exception Failure _ -> (
      match Unix.gethostbyname host with
      | { Unix.h_addr_list = [||]; _ } ->
          Error (Printf.sprintf "host %S has no address" host)
      | { Unix.h_addr_list; _ } -> Ok h_addr_list.(0)
      | exception Not_found -> Error (Printf.sprintf "unknown host %S" host))

let connect_tcp ?recv_timeout_ms ~host ~port () =
  match resolve host with
  | Error m -> Error (Io m)
  | Ok addr -> (
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      match Unix.connect fd (ADDR_INET (addr, port)) with
      | () ->
          Ok
            (of_fd ?recv_timeout_ms
               ~peer:(Printf.sprintf "%s:%d" host port)
               fd)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Io (Unix.error_message e)))

let listen_tcp ?(host = "127.0.0.1") ~port () =
  match resolve host with
  | Error m -> Error (Io m)
  | Ok addr -> (
      let fd = Unix.socket PF_INET SOCK_STREAM 0 in
      match
        Unix.setsockopt fd SO_REUSEADDR true;
        Unix.bind fd (ADDR_INET (addr, port));
        Unix.listen fd 16
      with
      | () ->
          let actual =
            match Unix.getsockname fd with
            | ADDR_INET (_, p) -> p
            | ADDR_UNIX _ -> port
          in
          Ok (fd, actual)
      | exception Unix.Unix_error (e, _, _) ->
          (try Unix.close fd with Unix.Unix_error _ -> ());
          Error (Io (Unix.error_message e)))

let accept ?recv_timeout_ms ?mangle listen_fd =
  match Unix.accept listen_fd with
  | fd, addr ->
      let peer =
        match addr with
        | Unix.ADDR_INET (a, p) ->
            Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) p
        | Unix.ADDR_UNIX p -> p
      in
      Ok (of_fd ?recv_timeout_ms ?mangle ~peer fd)
  | exception Unix.Unix_error (EINTR, _, _) -> Error (Io "interrupted")
  | exception Unix.Unix_error (e, _, _) -> Error (Io (Unix.error_message e))

type chaos = {
  drop : float;
  duplicate : float;
  truncate : float;
  bitflip : float;
  garbage : float;
}

let no_chaos =
  { drop = 0.0; duplicate = 0.0; truncate = 0.0; bitflip = 0.0; garbage = 0.0 }

let chaos_mangler ~rng c frame =
  if Rng.bernoulli rng c.drop then []
  else begin
    let frame =
      if Rng.bernoulli rng c.bitflip && String.length frame > 0 then begin
        let b = Bytes.of_string frame in
        let i = Rng.int rng (Bytes.length b) in
        let bit = Rng.int rng 8 in
        Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl bit)));
        Bytes.to_string b
      end
      else frame
    in
    let frame =
      if Rng.bernoulli rng c.truncate && String.length frame > 1 then
        String.sub frame 0 (1 + Rng.int rng (String.length frame - 1))
      else frame
    in
    let chunks =
      if Rng.bernoulli rng c.garbage then
        [ String.init (1 + Rng.int rng 12) (fun _ -> Char.chr (Rng.int rng 256)); frame ]
      else [ frame ]
    in
    if Rng.bernoulli rng c.duplicate then chunks @ chunks else chunks
  end
