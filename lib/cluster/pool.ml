module Rng = Afex_stats.Rng
module Scenario = Afex_faultspace.Scenario
module Point = Afex_faultspace.Point
module Outcome = Afex_injector.Outcome

type executor =
  | Pure of Afex.Executor.t
  | Seeded of {
      total_blocks : int;
      description : string;
      run : Rng.t -> Scenario.t -> Outcome.t;
    }
  | Async of Afex.Executor.async

let total_blocks = function
  | Pure e -> e.Afex.Executor.total_blocks
  | Seeded s -> s.total_blocks
  | Async a -> a.Afex.Executor.async_total_blocks

(* The explorer only uses the executor for sizing its coverage bitset and
   for log lines; all actual execution goes through the pool. *)
let explorer_executor = function
  | Pure e -> e
  | Seeded { total_blocks; description; run = _ } ->
      Afex.Executor.of_scenario_fn ~total_blocks ~description (fun _ ->
          invalid_arg "Pool: a seeded executor only runs on the pool")
  | Async a ->
      Afex.Executor.of_scenario_fn ~total_blocks:a.Afex.Executor.async_total_blocks
        ~description:a.Afex.Executor.async_description (fun _ ->
          invalid_arg "Pool: an async executor only runs on the pool")

(* ------------------------------------------------------------------ *)
(* Bounded work queue (multi-producer, multi-consumer)                 *)
(* ------------------------------------------------------------------ *)

module Bqueue : sig
  type 'a t

  val create : int -> 'a t
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  (** Blocks until an element or the queue is closed ([None]). *)

  val close : 'a t -> unit
end = struct
  type 'a t = {
    slots : 'a option array;  (* ring buffer *)
    mutable head : int;
    mutable length : int;
    mutable closed : bool;
    lock : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
  }

  let create capacity =
    if capacity < 1 then invalid_arg "Pool: queue capacity must be positive";
    {
      slots = Array.make capacity None;
      head = 0;
      length = 0;
      closed = false;
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
    }

  let push t x =
    Mutex.lock t.lock;
    let cap = Array.length t.slots in
    while t.length = cap && not t.closed do
      Condition.wait t.not_full t.lock
    done;
    if t.closed then begin
      Mutex.unlock t.lock;
      invalid_arg "Pool: push on a closed queue"
    end
    else begin
      t.slots.((t.head + t.length) mod cap) <- Some x;
      t.length <- t.length + 1;
      Condition.signal t.not_empty;
      Mutex.unlock t.lock
    end

  let pop t =
    Mutex.lock t.lock;
    while t.length = 0 && not t.closed do
      Condition.wait t.not_empty t.lock
    done;
    if t.length = 0 then begin
      Mutex.unlock t.lock;
      None
    end
    else begin
      let x = t.slots.(t.head) in
      t.slots.(t.head) <- None;
      t.head <- (t.head + 1) mod Array.length t.slots;
      t.length <- t.length - 1;
      Condition.signal t.not_full;
      Mutex.unlock t.lock;
      x
    end

  let close t =
    Mutex.lock t.lock;
    t.closed <- true;
    Condition.broadcast t.not_empty;
    Condition.broadcast t.not_full;
    Mutex.unlock t.lock
end

(* ------------------------------------------------------------------ *)
(* Tasks and batches                                                   *)
(* ------------------------------------------------------------------ *)

(* Each batch owns its result slots; workers write only their own slot,
   under the batch lock (which also publishes the write to the explorer
   domain). *)
type batch = {
  results : (Outcome.t, exn) result option array;
  lock : Mutex.t;
  finished : Condition.t;
  mutable completed : int;
}

(* One candidate's executable payload: [run] is the synchronous form the
   Domain workers (and the inline path) use; [start] is the nonblocking
   form the async event loop multiplexes. Exactly one of them runs. *)
type work = { run : unit -> Outcome.t; start : unit -> Afex.Executor.job }

(* [scenario] is carried alongside the local thunk so a remote worker can
   ship the task over the wire; [None] (seeded executors, whose RNG
   closure cannot cross the wire) forces local execution everywhere. *)
type task = {
  slot : int;
  scenario : Scenario.t option;
  thunk : unit -> Outcome.t;
  batch : batch;
}

let complete { slot; batch; _ } result =
  Mutex.lock batch.lock;
  batch.results.(slot) <- Some result;
  batch.completed <- batch.completed + 1;
  if batch.completed = Array.length batch.results then
    Condition.signal batch.finished;
  Mutex.unlock batch.lock

let run_task task = complete task (try Ok (task.thunk ()) with e -> Error e)

type t = {
  jobs : int;
  executor : executor;
  queue : task Bqueue.t option;  (* [None]: jobs = 1, execute inline *)
  async : Async_executor.t option;
      (* [Some _]: single-domain event-loop mode ([inflight > 1] or an
         [Async] executor); [queue] and [domains] are unused. *)
  domains : unit Domain.t array;
  remotes : Remote_manager.t list;
  remote_runs : int Atomic.t;
  remote_fallbacks : int Atomic.t;
  mutable shut : bool;
}

let rec worker queue =
  match Bqueue.pop queue with
  | None -> ()
  | Some task ->
      run_task task;
      worker queue

(* A remote worker drains the same queue as the local ones, but ships each
   scenario to its manager first. Any remote failure — dead manager,
   exhausted retry budget, byzantine reply — falls back to the task's
   local thunk, so a bad manager costs throughput, never correctness. *)
let rec remote_worker ~runs ~fallbacks rm queue =
  match Bqueue.pop queue with
  | None -> Remote_manager.close rm
  | Some task ->
      (match task.scenario with
      | Some scenario -> (
          match Remote_manager.run_scenario rm scenario with
          | Ok outcome ->
              Atomic.incr runs;
              complete task (Ok outcome)
          | Error _ ->
              Atomic.incr fallbacks;
              run_task task)
      | None -> run_task task);
      remote_worker ~runs ~fallbacks rm queue

let create ?(remotes = []) ?(inflight = 1) ?request_timeout_ms ~jobs executor =
  if jobs < 0 then invalid_arg "Pool.create: jobs must be non-negative";
  if inflight < 1 then invalid_arg "Pool.create: inflight must be positive";
  let remote_runs = Atomic.make 0 and remote_fallbacks = Atomic.make 0 in
  let async_mode =
    inflight > 1 || (match executor with Async _ -> true | Pure _ | Seeded _ -> false)
  in
  if async_mode then begin
    (* Event-loop concurrency is orthogonal to Domain parallelism; mixing
       them would make the batch schedule depend on both, for no
       benefit — an async target waits, it doesn't compute. *)
    if jobs > 1 then
      invalid_arg
        "Pool.create: inflight > 1 (or an Async executor) multiplexes on a \
         single domain; use jobs <= 1";
    let async =
      Async_executor.create ~remotes ?request_timeout_ms ~inflight
        ~total_blocks:(total_blocks executor) ()
    in
    {
      jobs;
      executor;
      queue = None;
      async = Some async;
      domains = [||];
      remotes = [];
      remote_runs;
      remote_fallbacks;
      shut = false;
    }
  end
  else if jobs = 0 && remotes = [] then
    invalid_arg "Pool.create: need at least one worker (jobs or remotes)"
  else if jobs = 1 && remotes = [] then
    {
      jobs;
      executor;
      queue = None;
      async = None;
      domains = [||];
      remotes = [];
      remote_runs;
      remote_fallbacks;
      shut = false;
    }
  else begin
    let rms =
      List.map
        (fun spec ->
          Remote_manager.create spec ~total_blocks:(total_blocks executor))
        remotes
    in
    let workers = jobs + List.length rms in
    let queue = Bqueue.create (2 * workers) in
    let local = Array.init jobs (fun _ -> Domain.spawn (fun () -> worker queue)) in
    let remote =
      Array.of_list
        (List.map
           (fun rm ->
             Domain.spawn (fun () ->
                 remote_worker ~runs:remote_runs ~fallbacks:remote_fallbacks rm
                   queue))
           rms)
    in
    {
      jobs;
      executor;
      queue = Some queue;
      async = None;
      domains = Array.append local remote;
      remotes = rms;
      remote_runs;
      remote_fallbacks;
      shut = false;
    }
  end

let jobs t = t.jobs
let inflight t = match t.async with Some a -> Async_executor.inflight a | None -> 1
let async_stats t = Option.map Async_executor.stats t.async

let remote_stats t =
  match t.async with
  | Some a -> Async_executor.remote_stats a
  | None ->
      List.map (fun rm -> (Remote_manager.name rm, Remote_manager.stats rm)) t.remotes

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Option.iter Bqueue.close t.queue;
    Array.iter Domain.join t.domains;
    Option.iter Async_executor.close t.async
  end

let exec_batch t tasks =
  let n = Array.length tasks in
  match t.async with
  | Some async ->
      Async_executor.exec_batch async
        (Array.map
           (fun (scenario, work) ->
             { Async_executor.scenario; start = work.start })
           tasks)
  | None -> (
      match t.queue with
      | None ->
          Array.map
            (fun (_, work) -> try Ok (work.run ()) with e -> Error e)
            tasks
      | Some queue ->
          let batch =
            {
              results = Array.make n None;
              lock = Mutex.create ();
              finished = Condition.create ();
              completed = 0;
            }
          in
          Array.iteri
            (fun slot (scenario, work) ->
              Bqueue.push queue { slot; scenario; thunk = work.run; batch })
            tasks;
          Mutex.lock batch.lock;
          while batch.completed < n do
            Condition.wait batch.finished batch.lock
          done;
          Mutex.unlock batch.lock;
          Array.map (function Some r -> r | None -> assert false) batch.results)

(* ------------------------------------------------------------------ *)
(* The session loop                                                    *)
(* ------------------------------------------------------------------ *)

type stats = {
  executed : int;
  cache_hits : int;
  batches : int;
  remote_runs : int;
  remote_fallbacks : int;
  wall_ms : float;
}

(* Where one candidate's outcome comes from. *)
type source =
  | From_worker of int  (* slot in this batch's thunk array *)
  | From_cache of Outcome.t
  | Duplicate of int  (* earlier submission index with the same scenario *)
  | From_journal of int * Outcome.t
      (* absolute iteration + outcome replayed from the checkpoint WAL *)

let session ?scheduler ?transform ?stop ?time_budget_ms ?checkpoint
    ?(batch_size = 32) ?(memoize = true) ~iterations t config sub =
  if batch_size < 1 then invalid_arg "Pool.session: batch_size must be positive";
  (match (stop, checkpoint) with
  | Some _, Some _ ->
      invalid_arg
        "Pool.session: a checkpoint cannot capture a stop predicate; bound a \
         checkpointed campaign with iterations or a time budget"
  | (Some _ | None), _ -> ());
  let started = Unix.gettimeofday () in
  let resume_snap = Option.bind checkpoint Checkpoint.loaded_snapshot in
  let explorer =
    match resume_snap with
    | None ->
        Afex.Explorer.create ?transform config sub (explorer_executor t.executor)
    | Some snap -> (
        match
          Afex.Explorer.restore ?transform config sub
            (explorer_executor t.executor)
            snap.Checkpoint.Snapshot.explorer
        with
        | Ok e -> e
        | Error m -> failwith ("Pool.session: cannot resume: " ^ m))
  in
  (* Per-batch RNG streams split off a session master: stream identity
     depends only on (seed, batch index, submission index), never on the
     worker that happens to run the task. *)
  let master =
    match resume_snap with
    | None -> Rng.create config.Afex.Config.seed
    | Some snap -> Rng.of_state snap.Checkpoint.Snapshot.master_state
  in
  (* Absolute batch index across crashes — a resumed run keeps counting
     where the snapshot stopped, so journal entries line up. *)
  let abs_batch =
    ref (match resume_snap with None -> 0 | Some s -> s.Checkpoint.Snapshot.batches)
  in
  let write_snapshot () =
    match checkpoint with
    | None -> ()
    | Some cp ->
        Checkpoint.write_snapshot cp
          ~iterations:(Afex.Explorer.iterations explorer)
          {
            Checkpoint.Snapshot.meta = Checkpoint.meta cp;
            batches = !abs_batch;
            master_state = Rng.state master;
            scheduler = Option.map Scheduler.snapshot scheduler;
            explorer = Afex.Explorer.capture explorer;
          }
  in
  (* A fresh checkpointed campaign writes its base snapshot before any
     batch, so a crash before the first cadence snapshot still resumes
     from iteration zero instead of refusing. *)
  (match checkpoint with
  | Some cp when not (Checkpoint.resumed cp) -> write_snapshot ()
  | Some _ | None -> ());
  let cache : (string, Outcome.t) Hashtbl.t = Hashtbl.create 256 in
  let memoize =
    memoize
    && (match t.executor with Pure _ | Async _ -> true | Seeded _ -> false)
  in
  let executed = ref 0 and cache_hits = ref 0 and batches = ref 0 in
  let remote_counters () =
    match t.async with
    | Some a ->
        let s = Async_executor.stats a in
        (s.Async_executor.remote_runs, s.Async_executor.remote_fallbacks)
    | None -> (Atomic.get t.remote_runs, Atomic.get t.remote_fallbacks)
  in
  let remote_runs0, remote_fallbacks0 = remote_counters () in
  (* Stop-target accounting, as in Session.run: distinct points only. *)
  let matched = Hashtbl.create 16 and stop_iteration = ref None in
  let target_met () =
    match stop with
    | Some s -> Hashtbl.length matched >= s.Afex.Session.count
    | None -> false
  in
  let time_exhausted () =
    match time_budget_ms with
    | Some budget -> Afex.Explorer.simulated_ms explorer >= budget
    | None -> false
  in
  let issued = ref (Afex.Explorer.iterations explorer) and exhausted = ref false in
  let rec loop () =
    (* Journaled batches replay unconditionally: they were already part
       of the campaign, so stop conditions only apply to new work. *)
    let replay =
      match checkpoint with Some cp -> Checkpoint.next_replay cp | None -> None
    in
    if
      replay = None
      && (!issued >= iterations || !exhausted || target_met ()
         || time_exhausted ())
    then ()
    else begin
      (* The scheduler owns the window when present; [batch_size] is the
         frozen default otherwise. *)
      let window =
        match scheduler with Some s -> Scheduler.window s | None -> batch_size
      in
      let batch_started = Unix.gettimeofday () in
      let want =
        match replay with
        | Some rb -> rb.Checkpoint.wb_n
        | None -> min window (iterations - !issued)
      in
      let batch_rng = Rng.split master in
      let rev_proposals = ref [] and count = ref 0 in
      while !count < want && not !exhausted do
        match Afex.Explorer.next explorer with
        | None -> exhausted := true
        | Some p ->
            incr count;
            rev_proposals := p :: !rev_proposals
      done;
      let proposals = Array.of_list (List.rev !rev_proposals) in
      let n = Array.length proposals in
      if n > 0 then begin
        incr batches;
        issued := !issued + n;
        let this_batch = !abs_batch in
        incr abs_batch;
        (* A replayed batch must regenerate exactly what the journal
           recorded — the explorer is deterministic, so a mismatch means
           the checkpoint belongs to a different campaign (and slipped
           past the metadata check) or the journal is corrupt. *)
        let journal =
          match replay with
          | Some rb ->
              if rb.Checkpoint.wb_batch <> this_batch then
                failwith
                  (Printf.sprintf
                     "Pool: journal replays batch %d where %d was expected"
                     rb.Checkpoint.wb_batch this_batch);
              if n <> rb.Checkpoint.wb_n then
                failwith
                  "Pool: the explorer regenerated a different batch than the \
                   journal records";
              Array.of_list rb.Checkpoint.wb_outcomes
          | None ->
              (match checkpoint with
              | Some cp -> Checkpoint.append_batch cp ~batch:this_batch ~n
              | None -> ());
              [||]
        in
        let journaled = Array.length journal in
        let scenarios =
          Array.map (Afex.Explorer.scenario_for explorer) proposals
        in
        let rngs =
          match t.executor with
          | Seeded _ -> Rng.split_n batch_rng n
          | Pure _ | Async _ -> [||]
        in
        (* Decide, in submission order, how each candidate is satisfied:
           fresh worker run, memo-cache hit, or duplicate of an earlier
           in-batch submission. *)
        let inflight : (string, int) Hashtbl.t = Hashtbl.create 16 in
        let rev_tasks = ref [] and n_tasks = ref 0 in
        let fresh scenario work =
          let slot = !n_tasks in
          incr n_tasks;
          rev_tasks := (scenario, work) :: !rev_tasks;
          From_worker slot
        in
        (* A synchronous thunk as nonblocking work: [start] just runs it
           to completion, so the async loop degenerates gracefully. *)
        let sync_work thunk =
          {
            run = thunk;
            start = (fun () -> Afex.Executor.job_done (thunk ()));
          }
        in
        let memoized i work =
          let scenario = Some scenarios.(i) in
          if not memoize then fresh scenario work
          else begin
            let key = Scenario.to_string scenarios.(i) in
            match Hashtbl.find_opt cache key with
            | Some outcome ->
                incr cache_hits;
                From_cache outcome
            | None -> (
                match Hashtbl.find_opt inflight key with
                | Some j ->
                    incr cache_hits;
                    Duplicate j
                | None ->
                    Hashtbl.replace inflight key i;
                    fresh scenario work)
          end
        in
        let journal_source i =
          let seq, key, report = journal.(i) in
          let pkey = Point.key proposals.(i).Afex.Mutator.point in
          if key <> pkey then
            failwith
              (Printf.sprintf
                 "Pool: journaled outcome %d is for point %s, but the explorer \
                  regenerated %s"
                 seq key pkey);
          match
            Message.outcome_of_report ~total_blocks:(total_blocks t.executor)
              report
          with
          | Ok outcome -> From_journal (seq, outcome)
          | Error m -> failwith ("Pool: journaled outcome does not decode: " ^ m)
        in
        let sources =
          Array.init n (fun i ->
              if i < journaled then journal_source i
              else
                match t.executor with
                | Seeded { run; _ } ->
                    let rng = rngs.(i) in
                    (* The RNG closure cannot cross the wire: never remoted. *)
                    fresh None (sync_work (fun () -> run rng scenarios.(i)))
                | Pure exec ->
                    memoized i
                      (sync_work (fun () ->
                           exec.Afex.Executor.run_scenario scenarios.(i)))
                | Async a ->
                    let start () = a.Afex.Executor.start scenarios.(i) in
                    memoized i
                      {
                        run =
                          (fun () -> Afex.Executor.run_job_blocking (start ()));
                        start;
                      })
        in
        (* Phase boundaries for the scheduler's telemetry: everything up
           to here ran sequentially on the explorer thread (generation),
           exec_batch is the parallel window, the merge loop below is
           explorer-thread feedback again. *)
        let gen_done = Unix.gettimeofday () in
        (match (scheduler, t.async) with
        | Some s, Some a -> Async_executor.set_inflight a (Scheduler.window s)
        | (Some _ | None), _ -> ());
        let results = exec_batch t (Array.of_list (List.rev !rev_tasks)) in
        let exec_done = Unix.gettimeofday () in
        executed := !executed + Array.length results;
        (* Merge in submission order; the explorer learns from outcomes in
           the exact order candidates were generated. *)
        let outcomes = Array.make n None in
        for i = 0 to n - 1 do
          let result =
            match sources.(i) with
            | From_cache outcome -> Ok outcome
            | From_worker slot -> results.(slot)
            | From_journal (seq, outcome) ->
                if seq <> Afex.Explorer.iterations explorer + 1 then
                  Error
                    (Failure
                       (Printf.sprintf
                          "Pool: journal replays iteration %d at position %d" seq
                          (Afex.Explorer.iterations explorer + 1)))
                else Ok outcome
            | Duplicate j -> (
                match outcomes.(j) with
                | Some outcome -> Ok outcome
                | None ->
                    Error (Invalid_argument "Pool: duplicate of a failed scenario"))
          in
          match result with
          | Error e -> raise e
          | Ok outcome ->
              outcomes.(i) <- Some outcome;
              (* Journal the outcome before the explorer absorbs it: a
                 crash between the two re-applies it from the journal on
                 resume, which is idempotent — the reverse order would
                 lose it. Already-journaled outcomes are not re-appended. *)
              (match checkpoint with
              | Some cp when i >= journaled ->
                  Checkpoint.append_outcome cp ~batch:this_batch
                    ~point_key:(Point.key proposals.(i).Afex.Mutator.point)
                    ~seq:(Afex.Explorer.iterations explorer + 1)
                    outcome
              | Some _ | None -> ());
              if memoize then
                Hashtbl.replace cache (Scenario.to_string scenarios.(i)) outcome;
              let case = Afex.Explorer.report explorer proposals.(i) outcome in
              (match stop with
              | Some s when s.Afex.Session.matches case ->
                  Hashtbl.replace matched (Point.key case.Afex.Test_case.point) ();
                  if
                    Hashtbl.length matched >= s.Afex.Session.count
                    && !stop_iteration = None
                  then stop_iteration := Some (Afex.Explorer.iterations explorer)
              | Some _ | None -> ())
        done;
        (match scheduler with
        | Some s ->
            let merge_done = Unix.gettimeofday () in
            Scheduler.observe s
              ~gen_ms:(1000.0 *. (gen_done -. batch_started))
              ~exec_ms:(1000.0 *. (exec_done -. gen_done))
              ~merge_ms:(1000.0 *. (merge_done -. exec_done))
              ~executed:(Array.length results) ~merged:n
        | None -> ());
        (match checkpoint with
        | Some cp ->
            (* Snapshot when the cadence is due — and always right after
               the last journaled batch drains, because that snapshot is
               what retires the replayed journal entries. *)
            let drained = replay <> None && not (Checkpoint.replay_pending cp) in
            if
              drained
              || Checkpoint.due cp
                   ~iterations:(Afex.Explorer.iterations explorer)
            then write_snapshot ()
        | None -> ());
        loop ()
      end
    end
  in
  loop ();
  (* Final snapshot: the completed campaign is itself a resumable (and
     re-resumable) state, and the journal is left empty. *)
  (match checkpoint with Some _ -> write_snapshot () | None -> ());
  let result =
    Afex.Session.summarize explorer
      ~total_blocks:(total_blocks t.executor)
      ~stopped_early:(target_met ()) ~stop_iteration:!stop_iteration
  in
  let remote_runs1, remote_fallbacks1 = remote_counters () in
  ( result,
    {
      executed = !executed;
      cache_hits = !cache_hits;
      batches = !batches;
      remote_runs = remote_runs1 - remote_runs0;
      remote_fallbacks = remote_fallbacks1 - remote_fallbacks0;
      wall_ms = 1000.0 *. (Unix.gettimeofday () -. started);
    } )

let run ?scheduler ?transform ?stop ?time_budget_ms ?checkpoint ?batch_size
    ?memoize ?remotes ?inflight ?request_timeout_ms ~jobs ~iterations config sub
    executor =
  let t = create ?remotes ?inflight ?request_timeout_ms ~jobs executor in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      session ?scheduler ?transform ?stop ?time_budget_ms ?checkpoint ?batch_size
        ?memoize ~iterations t config sub)
