module Rng = Afex_stats.Rng
module Scenario = Afex_faultspace.Scenario
module Point = Afex_faultspace.Point
module Outcome = Afex_injector.Outcome

type executor =
  | Pure of Afex.Executor.t
  | Seeded of {
      total_blocks : int;
      description : string;
      run : Rng.t -> Scenario.t -> Outcome.t;
    }
  | Async of Afex.Executor.async

let total_blocks = function
  | Pure e -> e.Afex.Executor.total_blocks
  | Seeded s -> s.total_blocks
  | Async a -> a.Afex.Executor.async_total_blocks

(* The explorer only uses the executor for sizing its coverage bitset and
   for log lines; all actual execution goes through the pool. *)
let explorer_executor = function
  | Pure e -> e
  | Seeded { total_blocks; description; run = _ } ->
      Afex.Executor.of_scenario_fn ~total_blocks ~description (fun _ ->
          invalid_arg "Pool: a seeded executor only runs on the pool")
  | Async a ->
      Afex.Executor.of_scenario_fn ~total_blocks:a.Afex.Executor.async_total_blocks
        ~description:a.Afex.Executor.async_description (fun _ ->
          invalid_arg "Pool: an async executor only runs on the pool")

type t = {
  jobs : int;
  executor : executor;
  runtime : Runtime.t;
  mutable shut : bool;
}

let create ?(remotes = []) ?(inflight = 1) ?request_timeout_ms ~jobs executor =
  if jobs < 0 then invalid_arg "Pool.create: jobs must be non-negative";
  if inflight < 1 then invalid_arg "Pool.create: inflight must be positive";
  let async_mode =
    inflight > 1 || (match executor with Async _ -> true | Pure _ | Seeded _ -> false)
  in
  let runtime =
    if async_mode then begin
      (* Event-loop concurrency is orthogonal to Domain parallelism; mixing
         them would make the schedule depend on both, for no benefit — an
         async target waits, it doesn't compute. *)
      if jobs > 1 then
        invalid_arg
          "Pool.create: inflight > 1 (or an Async executor) multiplexes on a \
           single domain; use jobs <= 1";
      Runtime.event_loop
        (Async_executor.create ~remotes ?request_timeout_ms ~inflight
           ~total_blocks:(total_blocks executor) ())
    end
    else if jobs = 0 && remotes = [] then
      invalid_arg "Pool.create: need at least one worker (jobs or remotes)"
    else if jobs = 1 && remotes = [] then Runtime.inline ()
    else Runtime.domains ~remotes ~total_blocks:(total_blocks executor) ~jobs ()
  in
  { jobs; executor; runtime; shut = false }

let jobs t = t.jobs

let inflight t =
  match Runtime.async t.runtime with
  | Some a -> Async_executor.inflight a
  | None -> 1

let async_stats t = Option.map Async_executor.stats (Runtime.async t.runtime)
let remote_stats t = Runtime.remote_stats t.runtime

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    Runtime.shutdown t.runtime
  end

(* ------------------------------------------------------------------ *)
(* The session loop                                                    *)
(* ------------------------------------------------------------------ *)

type stats = {
  executed : int;
  cache_hits : int;
  batches : int;
  remote_runs : int;
  remote_fallbacks : int;
  wire_downgrades : int;
  wall_ms : float;
}

(* What the reorder buffer holds for one submission: the outcome itself
   when it is known (worker completion, memo-cache hit, journal replay),
   or a deferred duplicate that resolves against the cache at release
   time — its original is an earlier submission, so it has released (and
   populated the cache) by then. *)
type slot =
  | Ready of (Outcome.t, exn) result
  | Dup of string  (* the duplicated scenario's cache key *)

(* Per-submission bookkeeping the release path needs, keyed by sequence
   number and dropped at release. *)
type meta = {
  m_proposal : Afex.Mutator.proposal;
  m_skey : string option;  (* memo-cache key, when memoizing *)
  m_journaled : bool;  (* replayed from the WAL: don't re-journal *)
  m_worker : bool;  (* occupies a runtime worker until it completes *)
}

let session ?scheduler ?transform ?stop ?time_budget_ms ?checkpoint
    ?(batch_size = 32) ?(memoize = true) ?(sync_every = 512) ~iterations t
    config sub =
  if batch_size < 1 then invalid_arg "Pool.session: batch_size must be positive";
  if sync_every < 1 then invalid_arg "Pool.session: sync_every must be positive";
  (match (stop, checkpoint) with
  | Some _, Some _ ->
      invalid_arg
        "Pool.session: a checkpoint cannot capture a stop predicate; bound a \
         checkpointed campaign with iterations or a time budget"
  | (Some _ | None), _ -> ());
  let started = Unix.gettimeofday () in
  let resume_snap = Option.bind checkpoint Checkpoint.loaded_snapshot in
  let explorer =
    match resume_snap with
    | None ->
        Afex.Explorer.create ?transform config sub (explorer_executor t.executor)
    | Some snap -> (
        match
          Afex.Explorer.restore ?transform config sub
            (explorer_executor t.executor)
            snap.Checkpoint.Snapshot.explorer
        with
        | Ok e -> e
        | Error m -> failwith ("Pool.session: cannot resume: " ^ m))
  in
  (* Seeded executors get one RNG stream per candidate, split off the
     session master at submission time: stream identity depends only on
     (seed, submission index), never on the worker that runs the task or
     the order completions arrive. *)
  let master =
    match resume_snap with
    | None -> Rng.create config.Afex.Config.seed
    | Some snap -> Rng.of_state snap.Checkpoint.Snapshot.master_state
  in
  (* Completed scheduler rounds, absolute across crashes. *)
  let rounds =
    ref (match resume_snap with None -> 0 | Some s -> s.Checkpoint.Snapshot.batches)
  in
  let write_snapshot () =
    match checkpoint with
    | None -> ()
    | Some cp ->
        Checkpoint.write_snapshot cp
          ~iterations:(Afex.Explorer.iterations explorer)
          {
            Checkpoint.Snapshot.meta = Checkpoint.meta cp;
            batches = !rounds;
            master_state = Rng.state master;
            scheduler = Option.map Scheduler.snapshot scheduler;
            explorer = Afex.Explorer.capture explorer;
          }
  in
  (* A fresh checkpointed campaign writes its base snapshot before any
     work, so a crash before the first cadence snapshot still resumes
     from iteration zero instead of refusing. *)
  (match checkpoint with
  | Some cp when not (Checkpoint.resumed cp) -> write_snapshot ()
  | Some _ | None -> ());
  let cache : (string, Outcome.t) Hashtbl.t = Hashtbl.create 256 in
  let memoize =
    memoize
    && (match t.executor with Pure _ | Async _ -> true | Seeded _ -> false)
  in
  let executed = ref 0 and cache_hits = ref 0 in
  let remote_runs0 = Runtime.remote_runs t.runtime
  and remote_fallbacks0 = Runtime.remote_fallbacks t.runtime
  and wire_downgrades0 = Runtime.wire_downgrades t.runtime in
  (* Stop-target accounting, as in Session.run: distinct points only. *)
  let matched = Hashtbl.create 16 and stop_iteration = ref None in
  let target_met () =
    match stop with
    | Some s -> Hashtbl.length matched >= s.Afex.Session.count
    | None -> false
  in
  let time_exhausted () =
    match time_budget_ms with
    | Some budget -> Afex.Explorer.simulated_ms explorer >= budget
    | None -> false
  in
  (* The deterministic sliding-window schedule. [submitted] and
     [released] are absolute iteration counts; the driver submits while
     the window has room and otherwise releases the head of line, so the
     interleaving of Explorer.next and Explorer.report — and with it the
     whole explored history — is a pure function of (seed, window
     sequence, iterations), never of completion timing, [jobs] or
     [inflight]. *)
  let base = Afex.Explorer.iterations explorer in
  let submitted = ref base and released = ref base in
  let exhausted = ref false in
  let reorder : slot Runtime.Reorder.t =
    Runtime.Reorder.create ~next:(base + 1) ()
  in
  let metas : (int, meta) Hashtbl.t = Hashtbl.create 64 in
  (* Scenario keys with a fresh execution submitted but not yet
     released: a later identical candidate piggybacks on it as a [Dup]
     instead of occupying a worker. *)
  let inflight_keys : (string, unit) Hashtbl.t = Hashtbl.create 16 in
  (* Sync watermarks: every [sync_every] releases, the schedule refuses
     to submit past the boundary until everything before it has
     released, so the window drains to quiescence. The drain is part of
     the schedule itself — it happens whether or not a checkpoint is
     armed — so snapshots (which need quiescence: Explorer snapshots
     refuse with candidates in flight) never perturb the explored
     history relative to an uncheckpointed run. *)
  let next_sync = ref (((base / sync_every) + 1) * sync_every) in
  (* Scheduler rounds: one controller period per [window] releases. *)
  let window () =
    match scheduler with Some s -> Scheduler.window s | None -> batch_size
  in
  let round_window = ref (window ()) in
  let round_releases = ref 0 and round_executed = ref 0 in
  let gen_acc = ref 0.0 and stall_acc = ref 0.0 and merge_acc = ref 0.0 in
  let observed_rounds = ref 0 in
  (match scheduler with
  | Some s -> Runtime.set_window t.runtime (Scheduler.window s)
  | None -> ());
  let finish_round () =
    incr observed_rounds;
    incr rounds;
    (match scheduler with
    | Some s ->
        (* exec_ms is the head-of-line wait: the only time the explorer
           spent blocked on workers. It doubles as the merge stall — the
           residual barrier cost of in-order release. *)
        Scheduler.observe s ~stall_ms:!stall_acc ~gen_ms:!gen_acc
          ~exec_ms:!stall_acc ~merge_ms:!merge_acc ~executed:!round_executed
          ~merged:!round_releases;
        Runtime.set_window t.runtime (Scheduler.window s)
    | None -> ());
    round_releases := 0;
    round_executed := 0;
    gen_acc := 0.0;
    stall_acc := 0.0;
    merge_acc := 0.0;
    round_window := window ()
  in
  let replay_pending () =
    match checkpoint with Some cp -> Checkpoint.replay_pending cp | None -> false
  in
  let can_submit () =
    replay_pending ()
    || (not !exhausted)
       && !submitted < iterations
       && (not (target_met ()))
       && not (time_exhausted ())
  in
  let seeded_rng () =
    match t.executor with
    | Seeded _ -> Some (Rng.split master)
    | Pure _ | Async _ -> None
  in
  (* One submission: consume a journaled outcome if any is queued for
     replay, otherwise generate a fresh candidate and decide — in
     submission order, on the explorer thread — how it is satisfied. *)
  let submit_one () =
    let t0 = Unix.gettimeofday () in
    (match
       match checkpoint with Some cp -> Checkpoint.next_replay cp | None -> None
     with
    | Some (seq, key, report) -> (
        (* The explorer is deterministic, so it must regenerate exactly
           the candidate the journal recorded; a mismatch means the
           checkpoint belongs to a different campaign (and slipped past
           the metadata check) or the journal is corrupt. *)
        match Afex.Explorer.next explorer with
        | None ->
            failwith "Pool: journal replays beyond the explorer's candidates"
        | Some p ->
            let abs = !submitted + 1 in
            if seq <> abs then
              failwith
                (Printf.sprintf
                   "Pool: journal replays iteration %d where %d was expected"
                   seq abs);
            let pkey = Point.key p.Afex.Mutator.point in
            if key <> pkey then
              failwith
                (Printf.sprintf
                   "Pool: journaled outcome %d is for point %s, but the \
                    explorer regenerated %s"
                   seq key pkey);
            let scenario = Afex.Explorer.scenario_for explorer p in
            ignore (seeded_rng ());
            let outcome =
              match
                Message.outcome_of_report
                  ~total_blocks:(total_blocks t.executor) report
              with
              | Ok o -> o
              | Error m ->
                  failwith ("Pool: journaled outcome does not decode: " ^ m)
            in
            let skey =
              if memoize then Some (Scenario.to_string scenario) else None
            in
            Hashtbl.replace metas abs
              { m_proposal = p; m_skey = skey; m_journaled = true;
                m_worker = false };
            Runtime.Reorder.offer reorder ~seq:abs (Ready (Ok outcome));
            submitted := abs)
    | None -> (
        match Afex.Explorer.next explorer with
        | None -> exhausted := true
        | Some p ->
            let abs = !submitted + 1 in
            let scenario = Afex.Explorer.scenario_for explorer p in
            let rng = seeded_rng () in
            let skey =
              if memoize then Some (Scenario.to_string scenario) else None
            in
            let fresh ~wire run start =
              Hashtbl.replace metas abs
                { m_proposal = p; m_skey = skey; m_journaled = false;
                  m_worker = true };
              Runtime.submit t.runtime
                { Runtime.seq = abs; scenario = wire; run; start }
            in
            (* A synchronous thunk as nonblocking work: [start] just runs
               it to completion, so the event loop degenerates
               gracefully. *)
            let sync run =
              (run, fun () -> Afex.Executor.job_done (run ()))
            in
            let immediate slot =
              Hashtbl.replace metas abs
                { m_proposal = p; m_skey = skey; m_journaled = false;
                  m_worker = false };
              Runtime.Reorder.offer reorder ~seq:abs slot
            in
            let memoized wire run start =
              match skey with
              | None -> fresh ~wire run start
              | Some key -> (
                  match Hashtbl.find_opt cache key with
                  | Some outcome ->
                      incr cache_hits;
                      immediate (Ready (Ok outcome))
                  | None ->
                      if Hashtbl.mem inflight_keys key then begin
                        incr cache_hits;
                        immediate (Dup key)
                      end
                      else begin
                        Hashtbl.replace inflight_keys key ();
                        fresh ~wire run start
                      end)
            in
            (match t.executor with
            | Seeded { run; _ } ->
                (* The RNG closure cannot cross the wire: never remoted,
                   never memoized. *)
                let rng = Option.get rng in
                let thunk () = run rng scenario in
                let run, start = sync thunk in
                fresh ~wire:None run start
            | Pure exec ->
                let thunk () = exec.Afex.Executor.run_scenario scenario in
                let run, start = sync thunk in
                memoized (Some scenario) run start
            | Async a ->
                let start () = a.Afex.Executor.start scenario in
                memoized (Some scenario)
                  (fun () -> Afex.Executor.run_job_blocking (start ()))
                  start);
            submitted := abs));
    gen_acc := !gen_acc +. (1000.0 *. (Unix.gettimeofday () -. t0))
  in
  (* Release exactly the next submission, blocking on the runtime while
     the head of line is outstanding (completions for later submissions
     are absorbed into the reorder buffer as they arrive). *)
  let absorb completions =
    List.iter
      (fun (seq, result) -> Runtime.Reorder.offer reorder ~seq (Ready result))
      completions
  in
  let release_one () =
    let seq = Runtime.Reorder.watermark reorder in
    (match Runtime.Reorder.peek reorder with
    | Some _ -> ()
    | None ->
        absorb (Runtime.poll t.runtime ~block:false);
        if Runtime.Reorder.peek reorder = None then begin
          let t0 = Unix.gettimeofday () in
          while Runtime.Reorder.peek reorder = None do
            if Runtime.outstanding t.runtime = 0 then
              failwith "Pool: a submitted task produced no completion";
            absorb (Runtime.poll t.runtime ~block:true)
          done;
          stall_acc := !stall_acc +. (1000.0 *. (Unix.gettimeofday () -. t0))
        end);
    let slot =
      match Runtime.Reorder.pop reorder with Some s -> s | None -> assert false
    in
    let t0 = Unix.gettimeofday () in
    let m = Hashtbl.find metas seq in
    Hashtbl.remove metas seq;
    let outcome =
      match slot with
      | Ready (Ok o) -> o
      | Ready (Error e) -> raise e
      | Dup key -> (
          match Hashtbl.find_opt cache key with
          | Some o -> o
          | None -> raise (Invalid_argument "Pool: duplicate of a failed scenario"))
    in
    if m.m_worker then begin
      incr executed;
      incr round_executed;
      match m.m_skey with
      | Some key -> Hashtbl.remove inflight_keys key
      | None -> ()
    end;
    (* Journal the outcome before the explorer absorbs it: a crash
       between the two re-applies it from the journal on resume, which
       is idempotent — the reverse order would lose it. Replayed
       outcomes are not re-appended. *)
    (match checkpoint with
    | Some cp when not m.m_journaled ->
        Checkpoint.append_outcome cp
          ~point_key:(Point.key m.m_proposal.Afex.Mutator.point)
          ~seq outcome
    | Some _ | None -> ());
    (match m.m_skey with
    | Some key -> Hashtbl.replace cache key outcome
    | None -> ());
    let case = Afex.Explorer.report explorer m.m_proposal outcome in
    (match stop with
    | Some s when s.Afex.Session.matches case ->
        Hashtbl.replace matched (Point.key case.Afex.Test_case.point) ();
        if Hashtbl.length matched >= s.Afex.Session.count && !stop_iteration = None
        then stop_iteration := Some (Afex.Explorer.iterations explorer)
    | Some _ | None -> ());
    merge_acc := !merge_acc +. (1000.0 *. (Unix.gettimeofday () -. t0));
    released := !released + 1;
    incr round_releases;
    if !round_releases >= !round_window then finish_round ()
  in
  let rec drive () =
    if !released >= !next_sync then begin
      (* Quiescent sync watermark: submissions were capped at the
         boundary, so everything before it has released. Close the
         partial round — a resumed campaign restarts its round
         accumulators here, so round boundaries must coincide with sync
         points for both to see the same window sequence — and write the
         cadence snapshot if one is due. *)
      if !round_releases > 0 then finish_round ();
      (match checkpoint with
      | Some cp
        when Checkpoint.due cp ~iterations:(Afex.Explorer.iterations explorer)
        ->
          write_snapshot ()
      | Some _ | None -> ());
      next_sync := !next_sync + sync_every;
      drive ()
    end
    else if
      can_submit ()
      && !submitted - !released < !round_window
      && !submitted < !next_sync
    then begin
      submit_one ();
      drive ()
    end
    else if !released < !submitted then begin
      release_one ();
      drive ()
    end
    else if can_submit () then begin
      (* Submission was refused with nothing pending: the sync branch
         above fires first when the boundary is the reason, so only a
         zero-width window could land here — kept impossible by the
         schedulers' positive-window invariant. *)
      assert false
    end
  in
  drive ();
  if !round_releases > 0 then finish_round ();
  (* Final snapshot: the completed campaign is itself a resumable (and
     re-resumable) state, and the journal is left empty. *)
  (match checkpoint with Some _ -> write_snapshot () | None -> ());
  let result =
    Afex.Session.summarize explorer
      ~total_blocks:(total_blocks t.executor)
      ~stopped_early:(target_met ()) ~stop_iteration:!stop_iteration
  in
  ( result,
    {
      executed = !executed;
      cache_hits = !cache_hits;
      batches = !observed_rounds;
      remote_runs = Runtime.remote_runs t.runtime - remote_runs0;
      remote_fallbacks = Runtime.remote_fallbacks t.runtime - remote_fallbacks0;
      wire_downgrades = Runtime.wire_downgrades t.runtime - wire_downgrades0;
      wall_ms = 1000.0 *. (Unix.gettimeofday () -. started);
    } )

let run ?scheduler ?transform ?stop ?time_budget_ms ?checkpoint ?batch_size
    ?memoize ?sync_every ?remotes ?inflight ?request_timeout_ms ~jobs
    ~iterations config sub executor =
  let t = create ?remotes ?inflight ?request_timeout_ms ~jobs executor in
  Fun.protect
    ~finally:(fun () -> shutdown t)
    (fun () ->
      session ?scheduler ?transform ?stop ?time_budget_ms ?checkpoint ?batch_size
        ?memoize ?sync_every ~iterations t config sub)
