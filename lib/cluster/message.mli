(** The explorer <-> node-manager protocol (§6, Fig. 2).

    The explorer sends fault scenarios in the Fig. 5 wire format; managers
    break them into atomic faults, drive injectors and sensors, and send
    back the measured result. Both directions are single lines of text
    (the transport frames them); every decoder is total and returns
    [Error] on malformed input — wire bytes are never trusted.

    The protocol is versioned: a connection opens with a [HELLO v]
    handshake carrying the client's preferred version and the manager
    answers [WELCOME v] for any version it speaks (at most
    {!protocol_version_max}) or [REJECT]. Version 1 is the line-oriented
    text protocol below; version 2 ({!V2}) packs several varint-encoded
    binary records into each frame. A v2 client meeting a v1-only
    manager redials offering version 1, so mixed fleets interoperate. *)

val protocol_version : int
(** The baseline (v1) version every peer speaks. *)

val protocol_version_max : int
(** The newest protocol version this build can negotiate (2). *)

val max_line : int
(** Maximum accepted length of one protocol line (1 MiB); longer input is
    rejected by the decoders rather than parsed. *)

(** {2 Field codecs}

    The building blocks of the wire format, exposed so other line-oriented
    formats (the checkpoint snapshot codec, the outcome write-ahead
    journal) encode the same data the same way — and inherit decoders that
    are already total and chaos-tested. *)

val escape : string -> string
(** Percent-escape: the result contains no spaces, commas, [%], control
    or non-ASCII bytes, so it is safe as one token of a line. *)

val unescape : string -> (string, string) result
(** Total inverse of {!escape}. *)

val status_token : Afex_injector.Outcome.status -> string
val status_of_token : string -> (Afex_injector.Outcome.status, string) result

val encode_stack : string list option -> string
(** ["-"] for [None]; ["@<count>:<comma-joined escaped frames>"]
    otherwise. *)

val decode_stack : string -> (string list option, string) result

val encode_coverage : int list -> string
(** Ascending block indices as comma-joined runs (["a"], ["a-b"]); ["-"]
    when empty. *)

val decode_coverage : string -> (int list, string) result

val encode_fault : Afex_injector.Fault.t -> string
(** The fault as one escaped token (its scenario wire form). *)

val decode_fault : string -> (Afex_injector.Fault.t, string) result

(** {2 Handshake} *)

type greeting = Welcome of int | Reject of string

val encode_hello : version:int -> string
val decode_hello : string -> (int, string) result
val encode_welcome : version:int -> string
val encode_reject : reason:string -> string
val decode_greeting : string -> (greeting, string) result

(** {2 Explorer -> manager} *)

type to_manager =
  | Run_scenario of { seq : int; scenario : Afex_faultspace.Scenario.t }
  | Shutdown

val encode_to_manager : to_manager -> string
(** Line-oriented wire encoding (scenario payload in Fig. 5 format). *)

val decode_to_manager : string -> (to_manager, string) result
(** Total: empty lines, malformed or negative sequence numbers, missing
    scenarios and payloads beyond {!max_line} all return [Error]. *)

(** {2 Manager -> explorer} *)

type run_report = {
  seq : int;
  status : Afex_injector.Outcome.status;
  triggered : bool;
  new_blocks : int;
      (** manager-side guess; the explorer recomputes against its own
          covered set, so managers send 0 *)
  fault : Afex_injector.Fault.t;
      (** the atomic fault the manager decoded and injected *)
  coverage : int list;
      (** covered basic-block indices — what the explorer's fitness and
          coverage accounting need to reproduce an in-process run
          bit-for-bit *)
  injection_stack : string list option;
  crash_stack : string list option;
  duration_ms : float;
}

type from_manager =
  | Scenario_result of run_report
  | Manager_error of { seq : int; message : string }
      (** [seq = -1] when the manager could not even decode the request *)

val report_of_outcome : seq:int -> Afex_injector.Outcome.t -> run_report

val outcome_of_report :
  total_blocks:int -> run_report -> (Afex_injector.Outcome.t, string) result
(** Rebuild the full outcome on the explorer side. [Error] if a coverage
    index falls outside [\[0, total_blocks)]. *)

val encode_from_manager : from_manager -> string
(** One line. Stack frames and error messages are percent-escaped, so
    newlines, spaces, commas and non-ASCII bytes round-trip; the duration
    is carried as a hexadecimal float and round-trips exactly. *)

val decode_from_manager : string -> (from_manager, string) result
(** Total inverse of {!encode_from_manager}. *)

val pp_from_manager : Format.formatter -> from_manager -> unit

(** {2 Wire protocol v2}

    The binary codec negotiated as version 2. A v2 frame payload is a
    concatenation of tagged records — requests and reports coalesce,
    many to a frame — with LEB128 varint scalars and length-prefixed raw
    strings instead of percent-escaped text. Each direction carries
    per-connection codec state:

    - the server interns stack frames and fault descriptors into a
      dictionary, announced to the client through incremental [DICT]
      records (explicit base id, new entries only), so steady-state
      reports ship int ids;
    - the client delta-encodes each scenario against the previous one
      sent on the connection (mutations touch few axes).

    All state is per-connection and resets on reconnect — a fresh
    {!client_enc}/{!server_dec}/{!server_enc}/{!client_dec} per dial.
    Desynchronization (a dropped or duplicated frame that still passes
    the frame checksum) is detected, never silently absorbed: requests
    carry a generation counter and a full-scenario checksum, dictionary
    records fail on gaps or conflicting redefinitions, and reports fail
    on unknown ids. Every decoder returns [Error] — connection-fatal by
    protocol: the peer resets and falls back like any transport fault. *)

module V2 : sig
  (** {3 Varints} — exposed for tests and micro-benches. *)

  val varint_encode : Buffer.t -> int -> unit
  (** LEB128. @raise Invalid_argument on negative input. *)

  val svarint_encode : Buffer.t -> int -> unit
  (** Zigzag + LEB128; any [int]. *)

  val varint_decode : string -> pos:int -> (int * int, string) result
  (** [(value, next_pos)]; total — truncation and overflow are [Error]. *)

  val svarint_decode : string -> pos:int -> (int * int, string) result

  (** {3 Client -> server} *)

  type client_enc
  (** Encoder state: the last scenario sent (delta base) and the
      outgoing generation counter. *)

  val client_enc : unit -> client_enc

  val encode_request :
    client_enc -> Buffer.t -> seq:int -> Afex_faultspace.Scenario.t -> unit
  (** Append one request record. Sends a positional delta against the
      previous scenario when the axis names line up and strictly fewer
      bindings changed than the scenario holds, else the full scenario.
      Always carries the generation number and an FNV-1a checksum of
      the complete scenario. @raise Invalid_argument on negative [seq]. *)

  val encode_shutdown : Buffer.t -> unit

  type server_dec
  (** Decoder state: the last reconstructed scenario and the highest
      generation applied. *)

  val server_dec : unit -> server_dec

  val decode_requests :
    server_dec -> string -> (to_manager list, string) result
  (** Decode a frame payload into its requests, in order. Requests with
      a stale generation (a duplicated frame) are skipped without
      touching decoder state; a generation gap, checksum mismatch,
      delta without a base, or malformed record is [Error]. *)

  (** {3 Server -> client} *)

  type server_enc
  (** The interning dictionary: string -> id, grown as reports mention
      new stack frames or fault descriptors. *)

  val server_enc : unit -> server_enc

  val server_dict_size : server_enc -> int

  val encode_reply : server_enc -> Buffer.t -> from_manager -> unit
  (** Append one reply. Newly interned strings (stack frames and the
      fault descriptor) are announced in a [DICT] record immediately
      preceding the report that uses them, inside the same frame. *)

  type client_dec
  (** The mirror dictionary: id -> frame string. *)

  val client_dec : unit -> client_dec

  val client_dict_size : client_dec -> int

  val decode_replies :
    client_dec -> string -> (from_manager list, string) result
  (** Decode a frame payload into its replies, in order, applying
      [DICT] records to the dictionary as they appear. Gaps,
      conflicting redefinitions and unknown ids are [Error]. *)
end
