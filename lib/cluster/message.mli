(** The explorer <-> node-manager protocol (§6, Fig. 2).

    The explorer sends fault scenarios in the Fig. 5 wire format; managers
    break them into atomic faults, drive injectors and sensors, and send
    back the measured result. Both directions are single lines of text
    (the transport frames them); every decoder is total and returns
    [Error] on malformed input — wire bytes are never trusted.

    The protocol is versioned: a connection opens with a [HELLO]
    handshake and the manager answers [WELCOME] (same version) or
    [REJECT]. Bump {!protocol_version} on any wire-format change. *)

val protocol_version : int

val max_line : int
(** Maximum accepted length of one protocol line (1 MiB); longer input is
    rejected by the decoders rather than parsed. *)

(** {2 Field codecs}

    The building blocks of the wire format, exposed so other line-oriented
    formats (the checkpoint snapshot codec, the outcome write-ahead
    journal) encode the same data the same way — and inherit decoders that
    are already total and chaos-tested. *)

val escape : string -> string
(** Percent-escape: the result contains no spaces, commas, [%], control
    or non-ASCII bytes, so it is safe as one token of a line. *)

val unescape : string -> (string, string) result
(** Total inverse of {!escape}. *)

val status_token : Afex_injector.Outcome.status -> string
val status_of_token : string -> (Afex_injector.Outcome.status, string) result

val encode_stack : string list option -> string
(** ["-"] for [None]; ["@<count>:<comma-joined escaped frames>"]
    otherwise. *)

val decode_stack : string -> (string list option, string) result

val encode_coverage : int list -> string
(** Ascending block indices as comma-joined runs (["a"], ["a-b"]); ["-"]
    when empty. *)

val decode_coverage : string -> (int list, string) result

val encode_fault : Afex_injector.Fault.t -> string
(** The fault as one escaped token (its scenario wire form). *)

val decode_fault : string -> (Afex_injector.Fault.t, string) result

(** {2 Handshake} *)

type greeting = Welcome of int | Reject of string

val encode_hello : version:int -> string
val decode_hello : string -> (int, string) result
val encode_welcome : version:int -> string
val encode_reject : reason:string -> string
val decode_greeting : string -> (greeting, string) result

(** {2 Explorer -> manager} *)

type to_manager =
  | Run_scenario of { seq : int; scenario : Afex_faultspace.Scenario.t }
  | Shutdown

val encode_to_manager : to_manager -> string
(** Line-oriented wire encoding (scenario payload in Fig. 5 format). *)

val decode_to_manager : string -> (to_manager, string) result
(** Total: empty lines, malformed or negative sequence numbers, missing
    scenarios and payloads beyond {!max_line} all return [Error]. *)

(** {2 Manager -> explorer} *)

type run_report = {
  seq : int;
  status : Afex_injector.Outcome.status;
  triggered : bool;
  new_blocks : int;
      (** manager-side guess; the explorer recomputes against its own
          covered set, so managers send 0 *)
  fault : Afex_injector.Fault.t;
      (** the atomic fault the manager decoded and injected *)
  coverage : int list;
      (** covered basic-block indices — what the explorer's fitness and
          coverage accounting need to reproduce an in-process run
          bit-for-bit *)
  injection_stack : string list option;
  crash_stack : string list option;
  duration_ms : float;
}

type from_manager =
  | Scenario_result of run_report
  | Manager_error of { seq : int; message : string }
      (** [seq = -1] when the manager could not even decode the request *)

val report_of_outcome : seq:int -> Afex_injector.Outcome.t -> run_report

val outcome_of_report :
  total_blocks:int -> run_report -> (Afex_injector.Outcome.t, string) result
(** Rebuild the full outcome on the explorer side. [Error] if a coverage
    index falls outside [\[0, total_blocks)]. *)

val encode_from_manager : from_manager -> string
(** One line. Stack frames and error messages are percent-escaped, so
    newlines, spaces, commas and non-ASCII bytes round-trip; the duration
    is carried as a hexadecimal float and round-trips exactly. *)

val decode_from_manager : string -> (from_manager, string) result
(** Total inverse of {!encode_from_manager}. *)

val pp_from_manager : Format.formatter -> from_manager -> unit
