(** Adaptive in-flight window control with scheduler telemetry.

    The pool's window (how many candidates the explorer keeps in flight
    at once) trades search {e freshness} — fitness feedback reaching the
    explorer while it still matters — against worker {e utilization} —
    never letting an executor idle waiting for work. The seed repo froze
    that trade-off at a hand-picked 32; this module measures it per
    round and, optionally, tunes it online.

    A {e round} is one controller period: [window] releases from the
    runtime's reorder buffer (under the old batch-barrier pool, exactly
    one batch; under the barrierless runtime, a sliding-window span with
    generation and execution overlapped). The trace format predates the
    rename and keeps its [batch] field.

    Three layers:

    - {b Telemetry}: every round is decomposed into its generation,
      execution-wait and merge phases; from those the scheduler derives
      worker utilization, queue wait, merge stall, a freshness score and
      throughput, each smoothed by an EWMA and recorded raw in the
      {!Trace}.
    - {b Control}: an AIMD hill-climb over the window size — a
      multiplicative slow-start ramp while throughput keeps improving,
      then additive increase / multiplicative decrease around the knee.
      Deltas are read through the direction of the last move (a
      regression right after a shrink turns the probe back upward, so a
      noisy batch costs one step, never a spiral), the window is bounded
      to [\[window_min, window_max\]], with seeded tie-breaking
      inside the measurement dead-band so runs with equal measurements
      make equal choices.
    - {b Replay}: adaptive decisions depend on wall-clock measurements
      and are therefore not reproducible from the seed alone. Every
      decision is recorded in the trace, and a {!mode} of [Replay]
      re-applies the recorded window sequence verbatim, so a replayed
      adaptive campaign explores a bit-identical history. *)

(** The per-batch record of what the scheduler saw and decided. *)
module Trace : sig
  type decision =
    | Hold  (** measurement inside the dead-band; window kept *)
    | Grow  (** additive (or slow-start) increase *)
    | Shrink  (** multiplicative decrease after a regression *)
    | Replayed  (** window forced by a replayed trace *)

  type entry = {
    batch : int;  (** 0-based round index (field name is historical) *)
    window : int;  (** window used for this round *)
    next_window : int;  (** the controller's choice for the next round *)
    decision : decision;
    gen_ms : float;  (** candidate generation (explorer) time *)
    exec_ms : float;
        (** time the explorer spent blocked on workers: the
            dispatch-to-last-completion span on the barrier pool, the
            accumulated head-of-line wait on the barrierless runtime *)
    merge_ms : float;  (** outcome merge (explorer feedback) time *)
    executed : int;  (** scenarios actually run on a worker *)
    merged : int;  (** candidates merged, cache hits included *)
    throughput : float;  (** merged candidates per second of round wall *)
    utilization : float;
        (** fraction of round wall with the explorer waiting on workers —
            workers saturated enough to be the bottleneck *)
    queue_wait_ms : float;  (** mean candidate wait before dispatch *)
    merge_stall_ms : float;
        (** the barrier cost: merge-phase time on the barrier pool,
            head-of-line reorder-buffer wait on the barrierless runtime *)
    freshness : float;
        (** 1/(1 + mean feedback lag in candidates): 1.0 at window 1,
            falling as the window widens and fitness feedback stales (the
            sliding window bounds lag by the window size just as the
            barrier did) *)
  }

  type t = entry list
  (** Chronological. *)

  val decision_to_string : decision -> string
  val decision_of_string : string -> (decision, string) result

  val windows : t -> int array
  (** The per-batch window sequence — all a {!Scheduler.mode} of
      [Replay] needs to reproduce the campaign. *)

  val to_string : t -> string
  (** Versioned line-oriented serialization (one entry per line behind
      an [afex-trace 1] header) — what [afex explore --trace FILE]
      writes and [--replay-trace FILE] reads back. *)

  val of_string : string -> (t, string) result
  (** Inverse of {!to_string}; rejects unknown versions and malformed
      lines with a description. *)

  val save : string -> t -> unit
  val load : string -> (t, string) result

  val to_json : t -> string
  (** The trace as a JSON array of per-batch objects (embedded in
      [BENCH_adapt.json] so the perf trajectory of the controller is
      machine-readable). *)
end

type telemetry = {
  utilization : float;
  queue_wait_ms : float;
  merge_stall_ms : float;
  freshness : float;
  throughput : float;  (** candidates per second *)
}
(** EWMA-smoothed view over the batches observed so far. *)

(** How the window evolves at batch boundaries. *)
type mode =
  | Static  (** keep the initial window; record telemetry only *)
  | Adaptive  (** AIMD hill-climbing on measured throughput *)
  | Replay of int array
      (** force the recorded per-batch window sequence; batches beyond
          the end of the array reuse its last window *)

type t

val create :
  ?window_min:int ->
  ?window_max:int ->
  ?initial:int ->
  ?step:int ->
  ?decrease:float ->
  ?epsilon:float ->
  ?alpha:float ->
  ?seed:int ->
  mode ->
  t
(** Defaults: [window_min 1], [window_max 128], [initial 32] (clamped to
    the bounds), additive [step 8], multiplicative [decrease 0.5],
    dead-band [epsilon 0.1] (relative throughput change below which a
    measurement is a tie — wider than per-batch measurement noise, or
    the controller chases it), EWMA [alpha 0.3], [seed 0] (tie-breaking
    only).
    @raise Invalid_argument on an empty or non-positive window range,
    [step < 1], [decrease] outside (0, 1), [epsilon < 0] or [alpha]
    outside (0, 1]. *)

val window : t -> int
(** The window to use for the next batch. Always within bounds. *)

val observe :
  ?stall_ms:float ->
  t ->
  gen_ms:float ->
  exec_ms:float ->
  merge_ms:float ->
  executed:int ->
  merged:int ->
  unit
(** Feed one finished round's phase timings back: records the trace
    entry, updates the EWMAs, and (in [Adaptive] mode) retunes the
    window for the next round. Call exactly once per round, after its
    releases are merged. [stall_ms] overrides the recorded
    [merge_stall_ms]: the barrier pool's stall was the merge phase
    itself (the default), while the barrierless runtime measures the
    head-of-line wait — time the explorer spent blocked on the reorder
    buffer's oldest outstanding test — and reports that instead. *)

val telemetry : t -> telemetry option
(** [None] until the first {!observe}. *)

val trace : t -> Trace.t
val batches : t -> int
val bounds : t -> int * int

(** {2 Checkpointing} *)

type snapshot = {
  s_mode : string;  (** ["static"], ["adaptive"] or ["replay"] *)
  s_window : int;
  s_batches : int;
  s_prev_throughput : float option;
  s_dir : string;  (** ["up"], ["down"] or ["flat"] *)
  s_slow_start : bool;
  s_suspect : bool;
  s_rng_state : int64;
  s_tel : telemetry option;
}
(** The controller's mutable state minus the trace log: enough for a
    resumed campaign to keep hill-climbing from where it stopped. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> (unit, string) result
(** Overwrite a freshly created scheduler (same mode and bounds) with a
    snapshot's state. The trace log intentionally starts empty: a resumed
    run's trace covers only the batches it executed itself. [Error] on
    mode mismatch, out-of-bounds window or unknown tokens. *)
