module Rng = Afex_stats.Rng

let src = Logs.Src.create "afex.scheduler" ~doc:"Adaptive in-flight window control"

module Log = (val Logs.src_log src : Logs.LOG)

module Trace = struct
  type decision = Hold | Grow | Shrink | Replayed

  type entry = {
    batch : int;
    window : int;
    next_window : int;
    decision : decision;
    gen_ms : float;
    exec_ms : float;
    merge_ms : float;
    executed : int;
    merged : int;
    throughput : float;
    utilization : float;
    queue_wait_ms : float;
    merge_stall_ms : float;
    freshness : float;
  }

  type t = entry list

  let decision_to_string = function
    | Hold -> "hold"
    | Grow -> "grow"
    | Shrink -> "shrink"
    | Replayed -> "replay"

  let decision_of_string = function
    | "hold" -> Ok Hold
    | "grow" -> Ok Grow
    | "shrink" -> Ok Shrink
    | "replay" -> Ok Replayed
    | s -> Error (Printf.sprintf "unknown decision %S" s)

  let windows t = Array.of_list (List.map (fun e -> e.window) t)

  (* The file format is deliberately line-oriented: one header line, one
     entry per line, whitespace-separated. Replay only needs [window],
     but the whole record round-trips so traces double as telemetry
     exports. *)
  let header = "afex-trace 1"

  let entry_to_line e =
    Printf.sprintf "%d %d %d %s %.6f %.6f %.6f %d %d %.6f %.6f %.6f %.6f %.6f"
      e.batch e.window e.next_window
      (decision_to_string e.decision)
      e.gen_ms e.exec_ms e.merge_ms e.executed e.merged e.throughput
      e.utilization e.queue_wait_ms e.merge_stall_ms e.freshness

  let to_string t =
    String.concat "\n" (header :: List.map entry_to_line t) ^ "\n"

  let entry_of_line lineno line =
    let fail msg = Error (Printf.sprintf "trace line %d: %s" lineno msg) in
    match String.split_on_char ' ' (String.trim line) with
    | [
     batch; window; next_window; decision; gen_ms; exec_ms; merge_ms; executed;
     merged; throughput; utilization; queue_wait_ms; merge_stall_ms; freshness;
    ] -> (
        let int s = int_of_string_opt s and fl s = float_of_string_opt s in
        match
          ( int batch,
            int window,
            int next_window,
            decision_of_string decision,
            int executed,
            int merged,
            ( fl gen_ms,
              fl exec_ms,
              fl merge_ms,
              fl throughput,
              fl utilization,
              fl queue_wait_ms,
              fl merge_stall_ms,
              fl freshness ) )
        with
        | ( Some batch,
            Some window,
            Some next_window,
            Ok decision,
            Some executed,
            Some merged,
            ( Some gen_ms,
              Some exec_ms,
              Some merge_ms,
              Some throughput,
              Some utilization,
              Some queue_wait_ms,
              Some merge_stall_ms,
              Some freshness ) ) ->
            if window < 1 || next_window < 1 then fail "window must be positive"
            else
              Ok
                {
                  batch;
                  window;
                  next_window;
                  decision;
                  gen_ms;
                  exec_ms;
                  merge_ms;
                  executed;
                  merged;
                  throughput;
                  utilization;
                  queue_wait_ms;
                  merge_stall_ms;
                  freshness;
                }
        | _ -> fail "malformed entry")
    | _ -> fail "expected 14 whitespace-separated fields"

  let of_string s =
    match String.split_on_char '\n' s with
    | [] -> Error "empty trace"
    | first :: rest ->
        if String.trim first <> header then
          Error
            (Printf.sprintf "bad trace header %S (expected %S)"
               (String.trim first) header)
        else begin
          let rec go lineno acc = function
            | [] -> Ok (List.rev acc)
            | line :: rest when String.trim line = "" -> go (lineno + 1) acc rest
            | line :: rest -> (
                match entry_of_line lineno line with
                | Ok e -> go (lineno + 1) (e :: acc) rest
                | Error _ as e -> e)
          in
          go 2 [] rest
        end

  let save path t =
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc (to_string t))

  let load path =
    match open_in path with
    | exception Sys_error msg -> Error msg
    | ic ->
        let n = in_channel_length ic in
        let contents = really_input_string ic n in
        close_in ic;
        of_string contents

  let to_json t =
    let entry e =
      String.concat ", "
        [
          Printf.sprintf "\"batch\": %d" e.batch;
          Printf.sprintf "\"window\": %d" e.window;
          Printf.sprintf "\"next_window\": %d" e.next_window;
          Printf.sprintf "\"decision\": %S" (decision_to_string e.decision);
          Printf.sprintf "\"gen_ms\": %.4f" e.gen_ms;
          Printf.sprintf "\"exec_ms\": %.4f" e.exec_ms;
          Printf.sprintf "\"merge_ms\": %.4f" e.merge_ms;
          Printf.sprintf "\"executed\": %d" e.executed;
          Printf.sprintf "\"merged\": %d" e.merged;
          Printf.sprintf "\"throughput\": %.2f" e.throughput;
          Printf.sprintf "\"utilization\": %.4f" e.utilization;
          Printf.sprintf "\"queue_wait_ms\": %.4f" e.queue_wait_ms;
          Printf.sprintf "\"merge_stall_ms\": %.4f" e.merge_stall_ms;
          Printf.sprintf "\"freshness\": %.4f" e.freshness;
        ]
    in
    "[" ^ String.concat ", " (List.map (fun e -> "{" ^ entry e ^ "}") t) ^ "]"
end

type telemetry = {
  utilization : float;
  queue_wait_ms : float;
  merge_stall_ms : float;
  freshness : float;
  throughput : float;
}

type mode = Static | Adaptive | Replay of int array

(* Which way the last window change went; the hill-climb needs it to
   read a throughput delta as a gradient. Comparing against the previous
   batch without it spirals: a spurious shrink lowers throughput, which
   reads as "worse", which shrinks again. *)
type dir = Up | Down | Flat

(* The AIMD hill-climb keeps three pieces of controller state beyond the
   window itself: the previous batch's throughput, the direction of the
   last move (together they estimate the local gradient), and whether
   the multiplicative slow-start ramp is still on. *)
type t = {
  mode : mode;
  window_min : int;
  window_max : int;
  step : int;
  decrease : float;
  epsilon : float;
  alpha : float;
  rng : Rng.t;
  mutable window : int;
  mutable batches : int;
  mutable prev_throughput : float option;
  mutable dir : dir;
  mutable slow_start : bool;
  mutable suspect : bool;
      (* one unconfirmed regression seen; shrink only if the next batch
         confirms it against the same (pre-drop) reference *)
  mutable tel : telemetry option;
  mutable trace_rev : Trace.entry list;
}

let create ?(window_min = 1) ?(window_max = 128) ?(initial = 32) ?(step = 8)
    ?(decrease = 0.5) ?(epsilon = 0.1) ?(alpha = 0.3) ?(seed = 0) mode =
  if window_min < 1 || window_max < window_min then
    invalid_arg "Scheduler.create: need 1 <= window_min <= window_max";
  if step < 1 then invalid_arg "Scheduler.create: step must be positive";
  if decrease <= 0.0 || decrease >= 1.0 then
    invalid_arg "Scheduler.create: decrease must be in (0, 1)";
  if epsilon < 0.0 then invalid_arg "Scheduler.create: epsilon must be >= 0";
  if alpha <= 0.0 || alpha > 1.0 then
    invalid_arg "Scheduler.create: alpha must be in (0, 1]";
  let clamp w = max window_min (min window_max w) in
  let window =
    match mode with
    | Replay ws ->
        if Array.length ws = 0 then
          invalid_arg "Scheduler.create: cannot replay an empty trace";
        clamp ws.(0)
    | Static | Adaptive -> clamp initial
  in
  {
    mode;
    window_min;
    window_max;
    step;
    decrease;
    epsilon;
    alpha;
    rng = Rng.create seed;
    window;
    batches = 0;
    prev_throughput = None;
    dir = Flat;
    slow_start = true;
    suspect = false;
    tel = None;
    trace_rev = [];
  }

let window t = t.window
let batches t = t.batches
let bounds t = (t.window_min, t.window_max)
let trace t = List.rev t.trace_rev
let telemetry t = t.tel

let clamp t w = max t.window_min (min t.window_max w)

(* One AIMD hill-climbing step on the measured throughput. The
   throughput delta against the previous batch is read through the
   direction of the last move: improvement keeps moving the same way
   (doubling while the slow-start ramp holds, additively after),
   regression after a grow is a multiplicative decrease (the overshoot
   revert), and regression after a shrink turns back upward — so a
   single noisy measurement costs one probe, never a spiral. Ties —
   relative change within [epsilon] — flip a seeded coin between holding
   and probing upward, so two runs with identical measurements and seeds
   decide identically. *)
let decide t throughput =
  match t.mode with
  | Replay ws ->
      let next = t.batches + 1 in
      let w = ws.(min next (Array.length ws - 1)) in
      (Trace.Replayed, clamp t w)
  | Static -> (Trace.Hold, t.window)
  | Adaptive -> (
      match t.prev_throughput with
      | None ->
          t.prev_throughput <- Some throughput;
          t.dir <- Up;
          (Trace.Grow, clamp t (t.window * 2))
      | Some prev ->
          let better = throughput > prev *. (1.0 +. t.epsilon) in
          let worse = throughput < prev *. (1.0 -. t.epsilon) in
          if better then begin
            t.prev_throughput <- Some throughput;
            t.suspect <- false;
            match t.dir with
            | Down ->
                (* Shrinking helped: keep refining downward, gently. *)
                (Trace.Shrink, clamp t (t.window - t.step))
            | Up | Flat ->
                if t.slow_start then (Trace.Grow, clamp t (t.window * 2))
                else (Trace.Grow, clamp t (t.window + t.step))
          end
          else if worse then begin
            match t.dir with
            | (Up | Flat) when not t.suspect ->
                (* Per-batch measurements are noisy; hold the window and
                   the pre-drop reference, and only shrink if the next
                   batch confirms the regression against it. *)
                t.suspect <- true;
                (Trace.Hold, t.window)
            | Up | Flat ->
                t.prev_throughput <- Some throughput;
                t.suspect <- false;
                t.slow_start <- false;
                t.dir <- Down;
                ( Trace.Shrink,
                  clamp t (int_of_float (float_of_int t.window *. t.decrease)) )
            | Down ->
                (* The shrink was the mistake: turn back multiplicatively
                   and re-arm the ramp. Reverting additively would make
                   the climb back linear while every fall is geometric —
                   one noisy batch would then cost a dozen recovering. *)
                t.prev_throughput <- Some throughput;
                t.suspect <- false;
                t.dir <- Up;
                t.slow_start <- true;
                ( Trace.Grow,
                  clamp t
                    (int_of_float
                       (Float.round (float_of_int t.window /. t.decrease))) )
          end
          else begin
            t.prev_throughput <- Some throughput;
            t.suspect <- false;
            t.slow_start <- false;
            if Rng.bool t.rng then begin
              t.dir <- Up;
              (Trace.Grow, clamp t (t.window + t.step))
            end
            else begin
              t.dir <- Flat;
              (Trace.Hold, t.window)
            end
          end)

let observe ?stall_ms t ~gen_ms ~exec_ms ~merge_ms ~executed ~merged =
  let gen_ms = Float.max 0.0 gen_ms
  and exec_ms = Float.max 0.0 exec_ms
  and merge_ms = Float.max 0.0 merge_ms in
  let wall_ms = gen_ms +. exec_ms +. merge_ms in
  let throughput =
    if wall_ms <= 0.0 then 0.0 else 1000.0 *. float_of_int merged /. wall_ms
  in
  (* Workers only make progress during the execution phase; generation
     and merge happen sequentially on the explorer thread. *)
  let utilization = if wall_ms <= 0.0 then 0.0 else exec_ms /. wall_ms in
  (* A candidate generated midway through the batch waits for the rest
     of the window to be generated before dispatch: half the generation
     phase on average. *)
  let queue_wait_ms = gen_ms /. 2.0 in
  (* On the barrier pool the merge phase IS the stall; the barrierless
     runtime measures the head-of-line wait directly and passes it in. *)
  let merge_stall_ms =
    Float.max 0.0 (Option.value stall_ms ~default:merge_ms)
  in
  (* Mean fitness-feedback lag, in candidates: submission i of an
     n-candidate window has n-1-i later submissions executed before its
     outcome reaches sensitivity, so the batch average is (n-1)/2. *)
  let freshness =
    let n = max 1 merged in
    1.0 /. (1.0 +. (float_of_int (n - 1) /. 2.0))
  in
  let decision, next_window = decide t throughput in
  let entry =
    {
      Trace.batch = t.batches;
      window = t.window;
      next_window;
      decision;
      gen_ms;
      exec_ms;
      merge_ms;
      executed;
      merged;
      throughput;
      utilization;
      queue_wait_ms;
      merge_stall_ms;
      freshness;
    }
  in
  t.trace_rev <- entry :: t.trace_rev;
  let ewma prev x =
    match prev with None -> x | Some p -> (t.alpha *. x) +. ((1.0 -. t.alpha) *. p)
  in
  let prev = t.tel in
  t.tel <-
    Some
      {
        utilization = ewma (Option.map (fun p -> p.utilization) prev) utilization;
        queue_wait_ms =
          ewma (Option.map (fun p -> p.queue_wait_ms) prev) queue_wait_ms;
        merge_stall_ms =
          ewma (Option.map (fun p -> p.merge_stall_ms) prev) merge_stall_ms;
        freshness = ewma (Option.map (fun p -> p.freshness) prev) freshness;
        throughput = ewma (Option.map (fun p -> p.throughput) prev) throughput;
      };
  if next_window <> t.window then
    Log.debug (fun m ->
        m "batch %d: window %d -> %d (%s, %.0f/s)" t.batches t.window next_window
          (Trace.decision_to_string decision)
          throughput);
  t.batches <- t.batches + 1;
  t.window <- next_window

type snapshot = {
  s_mode : string;
  s_window : int;
  s_batches : int;
  s_prev_throughput : float option;
  s_dir : string;
  s_slow_start : bool;
  s_suspect : bool;
  s_rng_state : int64;
  s_tel : telemetry option;
}

let mode_token = function
  | Static -> "static"
  | Adaptive -> "adaptive"
  | Replay _ -> "replay"

let dir_token = function Up -> "up" | Down -> "down" | Flat -> "flat"

let dir_of_token = function
  | "up" -> Ok Up
  | "down" -> Ok Down
  | "flat" -> Ok Flat
  | s -> Error (Printf.sprintf "unknown direction %S" s)

let snapshot t =
  {
    s_mode = mode_token t.mode;
    s_window = t.window;
    s_batches = t.batches;
    s_prev_throughput = t.prev_throughput;
    s_dir = dir_token t.dir;
    s_slow_start = t.slow_start;
    s_suspect = t.suspect;
    s_rng_state = Rng.state t.rng;
    s_tel = t.tel;
  }

let restore t s =
  let err fmt = Printf.ksprintf (fun m -> Error ("Scheduler.restore: " ^ m)) fmt in
  if mode_token t.mode <> s.s_mode then
    err "snapshot was taken in %s mode, this scheduler runs %s" s.s_mode
      (mode_token t.mode)
  else if s.s_window < t.window_min || s.s_window > t.window_max then
    err "window %d outside [%d, %d]" s.s_window t.window_min t.window_max
  else if s.s_batches < 0 then err "negative batch count"
  else
    match dir_of_token s.s_dir with
    | Error m -> err "%s" m
    | Ok dir ->
        t.window <- s.s_window;
        t.batches <- s.s_batches;
        t.prev_throughput <- s.s_prev_throughput;
        t.dir <- dir;
        t.slow_start <- s.s_slow_start;
        t.suspect <- s.s_suspect;
        t.tel <- s.s_tel;
        Rng.set_state t.rng s.s_rng_state;
        (* trace_rev stays empty: a resumed run's trace covers only the
           batches it executed itself (the pre-crash prefix lives in the
           checkpoint's journal, not here). *)
        Ok ()
