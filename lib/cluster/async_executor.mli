(** Single-domain event loop multiplexing many in-flight test executions.

    The Domain-based {!Pool} buys throughput with CPU parallelism — the
    right tool when each test {e computes} for its whole duration. But
    against a latency-bound target (a VM rebooting, a process crashed by
    fork/exec, a manager across a network) a worker domain spends its
    time {e waiting}, and burning a domain per in-flight test caps
    concurrency at the core count. This executor instead keeps up to
    [inflight] tests outstanding from one domain: each test is a
    nonblocking {!Afex.Executor.job}, completions are discovered by
    [Unix.select] over the jobs' fds and the remote connections' sockets,
    and everything time-based — poll deadlines, request timeouts,
    reconnect backoff — lives on a monotonic {!Timer_wheel}, so nothing
    ever sleeps while other work could progress (§7.7's dispatch-overhead
    model is the prediction this design chases; [bench async] measures
    the distance).

    The loop is driven incrementally: {!submit} enqueues a tagged test
    (dispatched eagerly, up to [inflight] concurrent), {!poll} runs the
    loop and returns whatever completed, in completion order. The
    {!Runtime} wraps this pair as its event-loop backend and restores
    submission order in its reorder buffer; {!exec_batch} is the batch
    convenience built on the same surface, returning a slot-indexed
    array so a caller's merge stays independent of completion order and
    of [inflight] itself. *)

(** A monotonic timer wheel: O(1) schedule/cancel, expiry in (deadline,
    scheduling order). Bucketed by coarse ticks; an entry more than a
    full rotation out simply stays in its bucket until the clock reaches
    it. Exposed for tests. *)
module Timer_wheel : sig
  type 'a t
  type 'a entry

  val create :
    ?granularity_ms:float -> ?slots:int -> now_ms:float -> unit -> 'a t
  (** Defaults: 1 ms granularity, 256 slots.
      @raise Invalid_argument on a non-positive granularity or slot
      count. *)

  val schedule : 'a t -> at_ms:float -> 'a -> 'a entry
  (** Deadlines already in the past fire on the next {!advance}. *)

  val cancel : 'a t -> 'a entry -> unit
  (** Idempotent; a cancelled entry never comes out of {!advance}. *)

  val pending : 'a t -> int
  val next_deadline : 'a t -> float option

  val advance : 'a t -> now_ms:float -> 'a list
  (** Every live entry with [deadline <= now_ms], ordered by deadline
      with ties in scheduling order. The clock never goes backwards. *)
end

type t

type task = {
  scenario : Afex_faultspace.Scenario.t option;
      (** What to ship to a remote manager; [None] pins the task local
          (cache probes, non-serialisable work). *)
  start : unit -> Afex.Executor.job;
      (** The local way to run it — also the fallback when every remote
          path fails. *)
}

type stats = {
  local_runs : int;  (** jobs started on this domain (incl. fallbacks) *)
  remote_runs : int;  (** requests put on a manager's wire *)
  remote_fallbacks : int;
      (** tests that tried a remote path and re-ran locally: submit
          failures, orphaned requests, straggler timeouts *)
  max_inflight : int;  (** high-water mark of concurrent tests *)
  wakeups : int;  (** event-loop iterations *)
}

val create :
  ?remotes:Remote_manager.spec list ->
  ?request_timeout_ms:int ->
  ?now_ms:(unit -> float) ->
  inflight:int ->
  total_blocks:int ->
  unit ->
  t
(** [request_timeout_ms] (default 10s) is the straggler bound per
    outstanding request: a manager that holds a test longer forfeits its
    connection and everything on it. [now_ms] (default
    {!Afex.Executor.monotonic_ms}) exists so tests can drive the clock.
    @raise Invalid_argument if [inflight < 1] or the timeout is not
    positive. *)

val inflight : t -> int

val set_inflight : t -> int -> unit
(** Retune the in-flight window — the adaptive {!Scheduler}'s knob. Takes
    effect on the next dispatch round; each remote connection's
    per-connection credit ({!Remote_manager.Pipelined.set_credit}) is
    retuned to match, so no single manager can absorb more than the new
    window. Shrinking never preempts a started test.
    @raise Invalid_argument if the window is not positive. *)

val submit : t -> tag:int -> task -> unit
(** Enqueue one test under the caller's [tag] and dispatch eagerly if
    the in-flight window has room (remotes preferred — round-robin over
    dispatchable connections, backoff gates respected — with local
    fallback on any remote failure). The tag comes back from {!poll}.
    @raise Invalid_argument if [tag] is already outstanding. *)

val poll : t -> block:bool -> (int * (Afex_injector.Outcome.t, exn) result) list
(** Run the event loop and return the completions it produced, oldest
    first, in completion order. With [block = true] the loop runs until
    at least one completion is available (immediately returning anything
    already queued); [[]] means nothing was outstanding. With
    [block = false] the loop gets one zero-timeout iteration. Exceptions
    raised by a job are captured per-tag, not thrown. *)

val outstanding : t -> int
(** Submitted tests whose completions {!poll} has not returned yet. *)

val exec_batch : t -> task array -> (Afex_injector.Outcome.t, exn) result array
(** {!submit} every task under its index, {!poll} until all complete:
    the batch convenience. Returns results indexed by submission
    position. @raise Invalid_argument if submissions are already
    outstanding. *)

val stats : t -> stats
(** Cumulative across batches. *)

val remote_stats : t -> (string * Remote_manager.stats) list
(** Per-manager wire counters ([retries] counts connection-level
    failures). *)

val close : t -> unit
(** Closes every remote connection (best-effort [Shutdown]). The
    executor stays usable for local-only batches. *)
