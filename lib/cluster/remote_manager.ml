module Rng = Afex_stats.Rng
module Scenario = Afex_faultspace.Scenario
module Outcome = Afex_injector.Outcome

let src = Logs.Src.create "afex.remote" ~doc:"Remote node-manager dispatch"

module Log = (val Logs.src_log src : Logs.LOG)

type error =
  | Transport of Transport.error
  | Protocol of string
  | Manager of string
  | Exhausted of { attempts : int; last : string }

let string_of_error = function
  | Transport e -> Transport.string_of_error e
  | Protocol m -> Printf.sprintf "protocol error: %s" m
  | Manager m -> Printf.sprintf "manager error: %s" m
  | Exhausted { attempts; last } ->
      Printf.sprintf "gave up after %d attempts (last: %s)" attempts last

(* ------------------------------------------------------------------ *)
(* Dialing                                                             *)
(* ------------------------------------------------------------------ *)

type spec = {
  name : string;
  dial : unit -> (Transport.t, Transport.error) result;
  max_attempts : int;
  backoff_ms : float;
  wire : int;
  flush_bytes : int;
}

let spec ?(max_attempts = 3) ?(backoff_ms = 50.0)
    ?(wire = Message.protocol_version_max) ?(flush_bytes = 8192) ~name dial =
  if max_attempts < 1 then invalid_arg "Remote_manager.spec: need at least one attempt";
  if wire < 1 || wire > Message.protocol_version_max then
    invalid_arg "Remote_manager.spec: unknown wire protocol version";
  if flush_bytes < 1 then invalid_arg "Remote_manager.spec: flush_bytes must be positive";
  { name; dial; max_attempts; backoff_ms; wire; flush_bytes }

let tcp_spec ?recv_timeout_ms ?max_attempts ?backoff_ms ?wire ?flush_bytes
    ~host ~port () =
  spec ?max_attempts ?backoff_ms ?wire ?flush_bytes
    ~name:(Printf.sprintf "%s:%d" host port)
    (fun () -> Transport.connect_tcp ?recv_timeout_ms ~host ~port ())

(* ------------------------------------------------------------------ *)
(* Negotiation and per-connection codec state                          *)
(* ------------------------------------------------------------------ *)

(* One negotiated connection plus everything whose lifetime is the
   connection's: the v2 scenario-delta encoder, the mirror stack-frame
   dictionary, and the outgoing coalescing buffer. A redial builds a
   fresh [live] — that is the defined dictionary reset on reconnect. *)
type live = {
  tr : Transport.t;
  version : int;
  enc : Message.V2.client_enc;
  dec : Message.V2.client_dec;
  out : Buffer.t;
}

let live tr version =
  {
    tr;
    version;
    enc = Message.V2.client_enc ();
    dec = Message.V2.client_dec ();
    out = Buffer.create 256;
  }

(* Wire accounting that outlives connections: each transport's own
   counters are folded in exactly once, when the connection retires. *)
type wire_acct = {
  mutable negotiated : int; (* most recent; 0 = never connected *)
  mutable downgrades : int;
  mutable frames_out : int;
  mutable frames_in : int;
  mutable bytes_out : int;
  mutable bytes_in : int;
}

let wire_acct () =
  {
    negotiated = 0;
    downgrades = 0;
    frames_out = 0;
    frames_in = 0;
    bytes_out = 0;
    bytes_in = 0;
  }

let retire acct (l : live) =
  let c = l.tr.Transport.counters in
  acct.frames_out <- acct.frames_out + c.Transport.frames_out;
  acct.frames_in <- acct.frames_in + c.Transport.frames_in;
  acct.bytes_out <- acct.bytes_out + c.Transport.bytes_out;
  acct.bytes_in <- acct.bytes_in + c.Transport.bytes_in;
  l.tr.Transport.close ()

let hello (conn : Transport.t) version =
  match conn.send (Message.encode_hello ~version) with
  | Error e -> Error (`Err (Transport e))
  | Ok () -> (
      match conn.recv () with
      | Error e -> Error (`Err (Transport e))
      | Ok line -> (
          match Message.decode_greeting line with
          | Error m -> Error (`Err (Protocol m))
          | Ok (Message.Reject reason) -> Error (`Rejected reason)
          | Ok (Message.Welcome v) ->
              if v >= 1 && v <= version then Ok v
              else
                Error
                  (`Err
                    (Protocol
                       (Printf.sprintf
                          "manager welcomed version %d to an offer of %d" v
                          version)))))

(* Dial offering [pref]; a manager that rejects the offer gets one more
   dial offering v1. That is the whole downgrade story — the caller
   records the negotiated version as its next preference, so a v2
   client behind a v1-only manager pays the double dial once. *)
let dial_negotiate spec ~pref =
  let try_dial version =
    match spec.dial () with
    | Error e -> Error (`Err (Transport e))
    | Ok conn -> (
        match hello conn version with
        | Ok v -> Ok (conn, v)
        | Error e ->
            conn.Transport.close ();
            Error e)
  in
  let rejected reason = Protocol ("manager rejected the handshake: " ^ reason) in
  match try_dial pref with
  | Ok (conn, v) -> Ok (conn, v)
  | Error (`Rejected _) when pref > 1 -> (
      match try_dial 1 with
      | Ok (conn, v) -> Ok (conn, v)
      | Error (`Rejected reason) -> Error (rejected reason)
      | Error (`Err e) -> Error e)
  | Error (`Rejected reason) -> Error (rejected reason)
  | Error (`Err e) -> Error e

(* ------------------------------------------------------------------ *)
(* Client proxy                                                        *)
(* ------------------------------------------------------------------ *)

type stats = {
  requests : int;
  retries : int;
  dials : int;
  manager_errors : int;
  wire : int;
  wire_downgrades : int;
  frames_out : int;
  frames_in : int;
  bytes_out : int;
  bytes_in : int;
  dict_size : int;
}

let build_stats ~requests ~retries ~dials ~manager_errors (acct : wire_acct)
    live_opt =
  let frames_out, frames_in, bytes_out, bytes_in, dict_size =
    match live_opt with
    | None ->
        (acct.frames_out, acct.frames_in, acct.bytes_out, acct.bytes_in, 0)
    | Some l ->
        let c = l.tr.Transport.counters in
        ( acct.frames_out + c.Transport.frames_out,
          acct.frames_in + c.Transport.frames_in,
          acct.bytes_out + c.Transport.bytes_out,
          acct.bytes_in + c.Transport.bytes_in,
          Message.V2.client_dict_size l.dec )
  in
  {
    requests;
    retries;
    dials;
    manager_errors;
    wire = acct.negotiated;
    wire_downgrades = acct.downgrades;
    frames_out;
    frames_in;
    bytes_out;
    bytes_in;
    dict_size;
  }

type t = {
  spec : spec;
  total_blocks : int;
  mutable conn : live option;
  mutable pref : int;
  acct : wire_acct;
  mutable seq : int;
  mutable n_requests : int;
  mutable n_retries : int;
  mutable n_dials : int;
  mutable n_manager_errors : int;
}

let create spec ~total_blocks =
  {
    spec;
    total_blocks;
    conn = None;
    pref = spec.wire;
    acct = wire_acct ();
    seq = 0;
    n_requests = 0;
    n_retries = 0;
    n_dials = 0;
    n_manager_errors = 0;
  }

let stats t =
  build_stats ~requests:t.n_requests ~retries:t.n_retries ~dials:t.n_dials
    ~manager_errors:t.n_manager_errors t.acct t.conn

let name t = t.spec.name

let drop_conn t =
  match t.conn with
  | Some l ->
      retire t.acct l;
      t.conn <- None
  | None -> ()

let record_negotiated acct ~pref v =
  if v < pref then begin
    acct.downgrades <- acct.downgrades + 1;
    Log.info (fun m -> m "downgraded to wire protocol v%d (offered v%d)" v pref)
  end;
  acct.negotiated <- v

let connect t =
  t.n_dials <- t.n_dials + 1;
  match dial_negotiate t.spec ~pref:t.pref with
  | Ok (conn, v) ->
      record_negotiated t.acct ~pref:t.pref v;
      t.pref <- v;
      let l = live conn v in
      t.conn <- Some l;
      Ok l
  | Error e -> Error e

(* Exponential backoff schedule shared by the blocking client (which
   sleeps it on its dedicated proxy domain) and the pipelined client
   (which never sleeps: the async executor turns the same delay into a
   timer-wheel deadline, so other in-flight tests keep progressing). *)
let backoff_delay_ms spec attempt =
  if spec.backoff_ms <= 0.0 then 0.0
  else spec.backoff_ms *. (2.0 ** float_of_int (attempt - 1))

let backoff t attempt =
  let delay = backoff_delay_ms t.spec attempt in
  if delay > 0.0 then Unix.sleepf (delay /. 1000.0)

let send_request (l : live) ~seq scenario =
  if l.version >= 2 then begin
    Buffer.clear l.out;
    Message.V2.encode_request l.enc l.out ~seq scenario;
    l.tr.Transport.send (Buffer.contents l.out)
  end
  else
    l.tr.Transport.send
      (Message.encode_to_manager (Message.Run_scenario { seq; scenario }))

let recv_replies (l : live) =
  match l.tr.Transport.recv () with
  | Error e -> Error (Transport.string_of_error e)
  | Ok payload ->
      if l.version >= 2 then
        match Message.V2.decode_replies l.dec payload with
        | Error m -> Error ("undecodable reply: " ^ m)
        | Ok msgs -> Ok msgs
      else (
        match Message.decode_from_manager payload with
        | Error m -> Error ("undecodable reply: " ^ m)
        | Ok msg -> Ok [ msg ])

(* Read replies until the one matching [seq]: chaos can duplicate frames,
   so stale sequence numbers are skipped rather than fatal. *)
let await (l : live) seq =
  let rec scan = function
    | [] -> next ()
    | Message.Scenario_result r :: rest ->
        if r.Message.seq = seq then Ok (Message.Scenario_result r)
        else if r.Message.seq < seq then scan rest
        else Error (Printf.sprintf "reply for future sequence %d" r.Message.seq)
    | Message.Manager_error { seq = rseq; message } :: rest ->
        if rseq = seq then Ok (Message.Manager_error { seq = rseq; message })
        else if rseq = -1 then
          Error ("manager could not decode the request: " ^ message)
        else scan rest
  and next () =
    match recv_replies l with Error m -> Error m | Ok msgs -> scan msgs
  in
  next ()

let run_scenario t scenario =
  t.n_requests <- t.n_requests + 1;
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let rec attempt n last =
    if n > t.spec.max_attempts then
      Error (Exhausted { attempts = t.spec.max_attempts; last })
    else begin
      if n > 1 then begin
        t.n_retries <- t.n_retries + 1;
        Log.debug (fun m ->
            m "%s: retry %d/%d after %s" t.spec.name n t.spec.max_attempts last);
        backoff t (n - 1)
      end;
      let conn =
        match t.conn with Some l -> Ok l | None -> connect t
      in
      match conn with
      | Error e ->
          drop_conn t;
          attempt (n + 1) (string_of_error e)
      | Ok l -> (
          match send_request l ~seq scenario with
          | Error e ->
              drop_conn t;
              attempt (n + 1) (Transport.string_of_error e)
          | Ok () -> (
              match await l seq with
              | Error m ->
                  drop_conn t;
                  attempt (n + 1) m
              | Ok (Message.Manager_error { message; _ }) ->
                  t.n_manager_errors <- t.n_manager_errors + 1;
                  Error (Manager message)
              | Ok (Message.Scenario_result r) -> (
                  match Message.outcome_of_report ~total_blocks:t.total_blocks r with
                  | Ok outcome -> Ok outcome
                  | Error m ->
                      drop_conn t;
                      attempt (n + 1) ("unusable report: " ^ m))))
    end
  in
  attempt 1 "never attempted"

let send_shutdown (l : live) =
  if l.version >= 2 then begin
    Message.V2.encode_shutdown l.out;
    let payload = Buffer.contents l.out in
    Buffer.clear l.out;
    ignore (l.tr.Transport.send payload)
  end
  else ignore (l.tr.Transport.send (Message.encode_to_manager Message.Shutdown))

let close t =
  (match t.conn with
  | Some l ->
      send_shutdown l;
      retire t.acct l
  | None -> ());
  t.conn <- None

(* ------------------------------------------------------------------ *)
(* Pipelined client                                                    *)
(* ------------------------------------------------------------------ *)

module Pipelined = struct
  type conn_state = Idle | Connected of live | Abandoned

  type conn = {
    spec : spec;
    total_blocks : int;
    mutable state : conn_state;
    outstanding : (int, int) Hashtbl.t; (* wire seq -> caller tag *)
    mutable orphans : int list;
    mutable pref : int;
    acct : wire_acct;
    mutable seq : int;
    mutable credit : int; (* in-flight cap; the scheduler's knob *)
    mutable failures : int; (* consecutive connection-level failures *)
    mutable n_requests : int;
    mutable n_retries : int;
    mutable n_dials : int;
    mutable n_manager_errors : int;
  }

  let create spec ~total_blocks =
    {
      spec;
      total_blocks;
      state = Idle;
      outstanding = Hashtbl.create 16;
      orphans = [];
      pref = spec.wire;
      acct = wire_acct ();
      seq = 0;
      credit = max_int;
      failures = 0;
      n_requests = 0;
      n_retries = 0;
      n_dials = 0;
      n_manager_errors = 0;
    }

  let name t = t.spec.name
  let pending t = Hashtbl.length t.outstanding
  let credit t = t.credit

  let set_credit t credit =
    if credit < 1 then invalid_arg "Pipelined.set_credit: credit must be positive";
    t.credit <- credit

  let has_credit t = Hashtbl.length t.outstanding < t.credit

  let awaiting t tag =
    Hashtbl.fold (fun _ tg acc -> acc || tg = tag) t.outstanding false
  let failures t = t.failures
  let max_attempts t = t.spec.max_attempts
  let backoff_ms t = backoff_delay_ms t.spec (max 1 t.failures)
  let abandoned t = match t.state with Abandoned -> true | _ -> false

  let dispatchable t =
    match t.state with Abandoned -> false | Idle | Connected _ -> true

  let wait_fd t =
    match t.state with
    | Connected l -> l.tr.Transport.wait_fd ()
    | Idle | Abandoned -> None

  let stats t =
    let live_opt =
      match t.state with Connected l -> Some l | Idle | Abandoned -> None
    in
    build_stats ~requests:t.n_requests ~retries:t.n_retries ~dials:t.n_dials
      ~manager_errors:t.n_manager_errors t.acct live_opt

  let take_orphans t =
    let tags = List.rev t.orphans in
    t.orphans <- [];
    tags

  (* Drop the connection: every request still in flight on it is orphaned
     (the caller re-runs those locally), and after [max_attempts]
     consecutive failures the manager is written off for good. Never
     sleeps — backoff is the {e caller's} timer (see {!backoff_ms}). *)
  let fail t =
    (match t.state with
    | Connected l -> retire t.acct l
    | Idle | Abandoned -> ());
    Hashtbl.iter (fun _ tag -> t.orphans <- tag :: t.orphans) t.outstanding;
    Hashtbl.reset t.outstanding;
    t.failures <- t.failures + 1;
    t.n_retries <- t.n_retries + 1;
    t.state <- (if t.failures >= t.spec.max_attempts then Abandoned else Idle);
    Log.debug (fun m ->
        m "%s: pipelined connection failure %d/%d" t.spec.name t.failures
          t.spec.max_attempts)

  let connection t =
    match t.state with
    | Connected l -> Ok l
    | Abandoned ->
        Error
          (Exhausted { attempts = t.spec.max_attempts; last = "manager abandoned" })
    | Idle -> (
        t.n_dials <- t.n_dials + 1;
        match dial_negotiate t.spec ~pref:t.pref with
        | Ok (c, v) ->
            record_negotiated t.acct ~pref:t.pref v;
            t.pref <- v;
            let l = live c v in
            t.state <- Connected l;
            Ok l
        | Error e ->
            fail t;
            Error e)

  let flush_live t (l : live) =
    if Buffer.length l.out = 0 then Ok ()
    else begin
      let payload = Buffer.contents l.out in
      Buffer.clear l.out;
      match l.tr.Transport.send payload with
      | Ok () -> Ok ()
      | Error e ->
          fail t;
          Error (Transport e)
    end

  let flush t =
    match t.state with
    | Connected l -> flush_live t l
    | Idle | Abandoned -> Ok ()

  let buffered t =
    match t.state with
    | Connected l -> Buffer.length l.out
    | Idle | Abandoned -> 0

  let submit t ~tag scenario =
    match connection t with
    | Error e -> Error e
    | Ok l ->
        t.seq <- t.seq + 1;
        let seq = t.seq in
        if l.version >= 2 then begin
          (* Coalesce: the record lands in the connection buffer and the
             frame goes out when the buffer reaches [flush_bytes], when
             the in-flight credit is exhausted (nothing more is coming
             until replies arrive), or when the event loop is about to
             wait ({!flush}). *)
          Message.V2.encode_request l.enc l.out ~seq scenario;
          t.n_requests <- t.n_requests + 1;
          Hashtbl.replace t.outstanding seq tag;
          if Buffer.length l.out >= t.spec.flush_bytes || not (has_credit t)
          then (
            match flush_live t l with
            | Ok () -> Ok ()
            | Error e ->
                (* [fail] orphaned everything on the wire including this
                   request, but its failure is reported synchronously:
                   the caller owns this retry, not {!take_orphans}. *)
                t.orphans <- List.filter (fun tg -> tg <> tag) t.orphans;
                Error e)
          else Ok ()
        end
        else (
          let line =
            Message.encode_to_manager (Message.Run_scenario { seq; scenario })
          in
          match l.tr.Transport.send line with
          | Ok () ->
              t.n_requests <- t.n_requests + 1;
              Hashtbl.replace t.outstanding seq tag;
              Ok ()
          | Error e ->
              fail t;
              Error (Transport e))

  (* Everything already on the wire, matched out of order: responses
     carry the request's seq, so a manager answering seq 5 before seq 3
     (or a duplicated frame from the chaos mangler) is handled without
     any head-of-line blocking. *)
  let drain t =
    match t.state with
    | Idle | Abandoned -> []
    | Connected l -> (
        (* Push anything still coalescing before waiting on replies. *)
        match flush_live t l with
        | Error _ -> []
        | Ok () ->
            let decode payload =
              if l.version >= 2 then Message.V2.decode_replies l.dec payload
              else
                Result.map
                  (fun msg -> [ msg ])
                  (Message.decode_from_manager payload)
            in
            let rec consume msgs acc =
              match msgs with
              | [] -> loop acc
              | Message.Manager_error { seq = -1; _ } :: _ ->
                  (* The manager could not decode some request; we cannot
                     tell which, so every in-flight one is suspect. *)
                  fail t;
                  List.rev acc
              | Message.Manager_error { seq; message } :: rest -> (
                  match Hashtbl.find_opt t.outstanding seq with
                  | None -> consume rest acc (* stale duplicate *)
                  | Some tag ->
                      Hashtbl.remove t.outstanding seq;
                      t.n_manager_errors <- t.n_manager_errors + 1;
                      consume rest ((tag, Error (Manager message)) :: acc))
              | Message.Scenario_result r :: rest -> (
                  match Hashtbl.find_opt t.outstanding r.Message.seq with
                  | None -> consume rest acc (* stale duplicate *)
                  | Some tag ->
                      Hashtbl.remove t.outstanding r.Message.seq;
                      t.failures <- 0;
                      let result =
                        match
                          Message.outcome_of_report ~total_blocks:t.total_blocks r
                        with
                        | Ok outcome -> Ok outcome
                        | Error m -> Error (Protocol ("unusable report: " ^ m))
                      in
                      consume rest ((tag, result) :: acc))
            and loop acc =
              match l.tr.Transport.try_recv ~timeout_ms:0 with
              | Ok None -> List.rev acc
              | Error _ ->
                  fail t;
                  List.rev acc
              | Ok (Some payload) -> (
                  match decode payload with
                  | Error _ ->
                      (* The frame passed its checksum but carries junk
                         (or lands on desynchronized dictionary state):
                         the stream can no longer be trusted. *)
                      fail t;
                      List.rev acc
                  | Ok msgs -> consume msgs acc)
            in
            loop [])

  let close t =
    (match t.state with
    | Connected l ->
        send_shutdown l;
        retire t.acct l
    | Idle | Abandoned -> ());
    Hashtbl.iter (fun _ tag -> t.orphans <- tag :: t.orphans) t.outstanding;
    Hashtbl.reset t.outstanding;
    t.state <- Abandoned
end

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)
(* ------------------------------------------------------------------ *)

let serve_v1 manager (conn : Transport.t) =
  let rec loop () =
    match conn.recv () with
    | Error Transport.Closed -> Ok ()
    | Error Transport.Timeout -> loop () (* idle client *)
    | Error e -> Error (Transport e)
    | Ok line -> (
        match Message.decode_to_manager line with
        | Error m -> (
            match
              conn.send
                (Message.encode_from_manager
                   (Message.Manager_error { seq = -1; message = m }))
            with
            | Ok () -> loop ()
            | Error e -> Error (Transport e))
        | Ok msg -> (
            match Node_manager.handle manager msg with
            | None -> Ok () (* shutdown *)
            | Some (reply, _elapsed) -> (
                match conn.send (Message.encode_from_manager reply) with
                | Ok () -> loop ()
                | Error e -> Error (Transport e))))
  in
  loop ()

(* The v2 loop: frames carry several requests; every reply to one
   incoming frame coalesces into one outgoing frame (split only past
   [flush_bytes]), so syscalls scale with frames, not tests. Any decode
   error is connection-fatal by design — the per-connection dictionary
   and delta state can no longer be trusted, so the client must redial
   with fresh state rather than risk a silently wrong report. *)
let serve_v2 manager (conn : Transport.t) ~flush_bytes =
  let sdec = Message.V2.server_dec () in
  let senc = Message.V2.server_enc () in
  let b = Buffer.create 1024 in
  let send_buf () =
    if Buffer.length b = 0 then Ok ()
    else begin
      let payload = Buffer.contents b in
      Buffer.clear b;
      conn.Transport.send payload
    end
  in
  let rec loop () =
    match conn.recv () with
    | Error Transport.Closed -> Ok ()
    | Error Transport.Timeout -> loop () (* idle client *)
    | Error e -> Error (Transport e)
    | Ok payload -> (
        match Message.V2.decode_requests sdec payload with
        | Error m ->
            Buffer.clear b;
            Message.V2.encode_reply senc b
              (Message.Manager_error { seq = -1; message = m });
            ignore (send_buf ());
            Error (Protocol m)
        | Ok msgs ->
            let rec run = function
              | [] -> (
                  match send_buf () with
                  | Ok () -> loop ()
                  | Error e -> Error (Transport e))
              | msg :: rest -> (
                  match Node_manager.handle manager msg with
                  | None ->
                      ignore (send_buf ());
                      Ok () (* shutdown *)
                  | Some (reply, _elapsed) ->
                      Message.V2.encode_reply senc b reply;
                      if Buffer.length b >= flush_bytes then (
                        match send_buf () with
                        | Ok () -> run rest
                        | Error e -> Error (Transport e))
                      else run rest)
            in
            run msgs)
  in
  loop ()

let serve_connection ?(wire_max = Message.protocol_version_max)
    ?(flush_bytes = 8192) manager (conn : Transport.t) =
  let result =
    match conn.recv () with
    | Error e -> Error (Transport e)
    | Ok hello -> (
        match Message.decode_hello hello with
        | Error m ->
            ignore (conn.send (Message.encode_reject ~reason:m));
            Error (Protocol m)
        | Ok v when v < 1 || v > wire_max ->
            let reason =
              Printf.sprintf "unsupported protocol version %d (manager speaks %d)"
                v wire_max
            in
            ignore (conn.send (Message.encode_reject ~reason));
            Error (Protocol reason)
        | Ok v -> (
            (* Welcome exactly the offered version: a v1 client never
               sees anything a v1 server would not have sent. *)
            match conn.send (Message.encode_welcome ~version:v) with
            | Error e -> Error (Transport e)
            | Ok () ->
                if v >= 2 then serve_v2 manager conn ~flush_bytes
                else serve_v1 manager conn))
  in
  conn.Transport.close ();
  result

let serve_tcp ?(host = "127.0.0.1") ?wire_max ?flush_bytes ?chaos_to_client
    ?(chaos_seed = 0) ~port ~once executor =
  match Transport.listen_tcp ~host ~port () with
  | Error e -> Error (Transport e)
  | Ok (listen_fd, actual_port) ->
      Printf.printf "afex-manager listening on %s:%d (protocol v%d)\n%!" host
        actual_port
        (Option.value wire_max ~default:Message.protocol_version_max);
      let rec accept_loop id =
        let mangle =
          Option.map
            (fun c -> Transport.chaos_mangler ~rng:(Rng.create (chaos_seed + id)) c)
            chaos_to_client
        in
        match Transport.accept ?mangle listen_fd with
        | Error e ->
            (try Unix.close listen_fd with Unix.Unix_error _ -> ());
            Error (Transport e)
        | Ok conn -> (
            Log.info (fun m -> m "connection %d from %s" id conn.Transport.peer);
            let manager = Node_manager.create ~id ~executor () in
            let result = serve_connection ?wire_max ?flush_bytes manager conn in
            (match result with
            | Ok () ->
                Log.info (fun m ->
                    m "connection %d done: %d tests run" id
                      (Node_manager.tests_run manager))
            | Error e ->
                Log.warn (fun m -> m "connection %d failed: %s" id (string_of_error e)));
            if once then begin
              (try Unix.close listen_fd with Unix.Unix_error _ -> ());
              Ok ()
            end
            else accept_loop (id + 1))
      in
      accept_loop 0

(* ------------------------------------------------------------------ *)
(* In-process loopback                                                 *)
(* ------------------------------------------------------------------ *)

module Loopback = struct
  type server = {
    executor : Afex.Executor.t;
    name : string;
    wire_max : int;
    chaos_to_server : Transport.chaos option;
    chaos_to_client : Transport.chaos option;
    chaos_seed : int;
    recv_timeout_ms : int option;
    lock : Mutex.t;
    mutable domains : unit Domain.t list;
    mutable next_id : int;
  }

  let create ?(wire_max = Message.protocol_version_max) ?chaos_to_server
      ?chaos_to_client ?(chaos_seed = 0) ?recv_timeout_ms ?(name = "loopback")
      ~executor () =
    {
      executor;
      name;
      wire_max;
      chaos_to_server;
      chaos_to_client;
      chaos_seed;
      recv_timeout_ms;
      lock = Mutex.create ();
      domains = [];
      next_id = 0;
    }

  (* Each connection gets its own RNG streams, so manglers are never
     shared across domains and chaos runs replay from the seed. *)
  let mangler chaos seed =
    Option.map
      (fun c -> Transport.chaos_mangler ~rng:(Rng.create seed) c)
      chaos

  let dial server () =
    Mutex.lock server.lock;
    let id = server.next_id in
    server.next_id <- id + 1;
    Mutex.unlock server.lock;
    let mangle_a = mangler server.chaos_to_server (server.chaos_seed + (2 * id)) in
    let mangle_b = mangler server.chaos_to_client (server.chaos_seed + (2 * id) + 1) in
    let client_end, server_end =
      Transport.pair ?recv_timeout_ms:server.recv_timeout_ms ?mangle_a ?mangle_b ()
    in
    let manager = Node_manager.create ~id ~executor:server.executor () in
    let wire_max = server.wire_max in
    let d =
      Domain.spawn (fun () ->
          ignore (serve_connection ~wire_max manager server_end))
    in
    Mutex.lock server.lock;
    server.domains <- d :: server.domains;
    Mutex.unlock server.lock;
    Ok client_end

  let spec ?max_attempts ?backoff_ms ?wire ?flush_bytes server =
    spec ?max_attempts ?backoff_ms ?wire ?flush_bytes ~name:server.name
      (dial server)

  let connections server =
    Mutex.lock server.lock;
    let n = server.next_id in
    Mutex.unlock server.lock;
    n

  let shutdown server =
    Mutex.lock server.lock;
    let domains = server.domains in
    server.domains <- [];
    Mutex.unlock server.lock;
    List.iter Domain.join domains
end
