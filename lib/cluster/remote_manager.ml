module Rng = Afex_stats.Rng
module Scenario = Afex_faultspace.Scenario
module Outcome = Afex_injector.Outcome

let src = Logs.Src.create "afex.remote" ~doc:"Remote node-manager dispatch"

module Log = (val Logs.src_log src : Logs.LOG)

type error =
  | Transport of Transport.error
  | Protocol of string
  | Manager of string
  | Exhausted of { attempts : int; last : string }

let string_of_error = function
  | Transport e -> Transport.string_of_error e
  | Protocol m -> Printf.sprintf "protocol error: %s" m
  | Manager m -> Printf.sprintf "manager error: %s" m
  | Exhausted { attempts; last } ->
      Printf.sprintf "gave up after %d attempts (last: %s)" attempts last

(* ------------------------------------------------------------------ *)
(* Dialing                                                             *)
(* ------------------------------------------------------------------ *)

type spec = {
  name : string;
  dial : unit -> (Transport.t, Transport.error) result;
  max_attempts : int;
  backoff_ms : float;
}

let spec ?(max_attempts = 3) ?(backoff_ms = 50.0) ~name dial =
  if max_attempts < 1 then invalid_arg "Remote_manager.spec: need at least one attempt";
  { name; dial; max_attempts; backoff_ms }

let tcp_spec ?recv_timeout_ms ?max_attempts ?backoff_ms ~host ~port () =
  spec ?max_attempts ?backoff_ms
    ~name:(Printf.sprintf "%s:%d" host port)
    (fun () -> Transport.connect_tcp ?recv_timeout_ms ~host ~port ())

(* ------------------------------------------------------------------ *)
(* Client proxy                                                        *)
(* ------------------------------------------------------------------ *)

type stats = {
  requests : int;
  retries : int;
  dials : int;
  manager_errors : int;
}

type t = {
  spec : spec;
  total_blocks : int;
  mutable conn : Transport.t option;
  mutable seq : int;
  mutable n_requests : int;
  mutable n_retries : int;
  mutable n_dials : int;
  mutable n_manager_errors : int;
}

let create spec ~total_blocks =
  {
    spec;
    total_blocks;
    conn = None;
    seq = 0;
    n_requests = 0;
    n_retries = 0;
    n_dials = 0;
    n_manager_errors = 0;
  }

let stats t =
  {
    requests = t.n_requests;
    retries = t.n_retries;
    dials = t.n_dials;
    manager_errors = t.n_manager_errors;
  }

let name t = t.spec.name

let drop_conn t =
  match t.conn with
  | Some c ->
      c.Transport.close ();
      t.conn <- None
  | None -> ()

let handshake (conn : Transport.t) =
  match conn.send (Message.encode_hello ~version:Message.protocol_version) with
  | Error e -> Error (Transport e)
  | Ok () -> (
      match conn.recv () with
      | Error e -> Error (Transport e)
      | Ok line -> (
          match Message.decode_greeting line with
          | Error m -> Error (Protocol m)
          | Ok (Message.Reject reason) ->
              Error (Protocol ("manager rejected the handshake: " ^ reason))
          | Ok (Message.Welcome v) ->
              if v = Message.protocol_version then Ok ()
              else
                Error
                  (Protocol
                     (Printf.sprintf
                        "protocol version mismatch: manager speaks %d, client %d"
                        v Message.protocol_version))))

let dial_and_handshake spec =
  match spec.dial () with
  | Error e -> Error (Transport e)
  | Ok conn -> (
      match handshake conn with
      | Ok () -> Ok conn
      | Error e ->
          conn.Transport.close ();
          Error e)

let connect t =
  t.n_dials <- t.n_dials + 1;
  match dial_and_handshake t.spec with
  | Ok conn ->
      t.conn <- Some conn;
      Ok conn
  | Error e -> Error e

(* Exponential backoff schedule shared by the blocking client (which
   sleeps it on its dedicated proxy domain) and the pipelined client
   (which never sleeps: the async executor turns the same delay into a
   timer-wheel deadline, so other in-flight tests keep progressing). *)
let backoff_delay_ms spec attempt =
  if spec.backoff_ms <= 0.0 then 0.0
  else spec.backoff_ms *. (2.0 ** float_of_int (attempt - 1))

let backoff t attempt =
  let delay = backoff_delay_ms t.spec attempt in
  if delay > 0.0 then Unix.sleepf (delay /. 1000.0)

(* Read replies until the one matching [seq]: chaos can duplicate frames,
   so stale sequence numbers are skipped rather than fatal. *)
let rec await (conn : Transport.t) seq =
  match conn.recv () with
  | Error e -> Error (Transport.string_of_error e)
  | Ok line -> (
      match Message.decode_from_manager line with
      | Error m -> Error ("undecodable reply: " ^ m)
      | Ok (Message.Scenario_result r) ->
          if r.Message.seq = seq then Ok (Message.Scenario_result r)
          else if r.Message.seq < seq then await conn seq
          else Error (Printf.sprintf "reply for future sequence %d" r.Message.seq)
      | Ok (Message.Manager_error { seq = rseq; message }) ->
          if rseq = seq then Ok (Message.Manager_error { seq = rseq; message })
          else if rseq = -1 then
            Error ("manager could not decode the request: " ^ message)
          else await conn seq)

let run_scenario t scenario =
  t.n_requests <- t.n_requests + 1;
  t.seq <- t.seq + 1;
  let seq = t.seq in
  let line = Message.encode_to_manager (Message.Run_scenario { seq; scenario }) in
  let rec attempt n last =
    if n > t.spec.max_attempts then
      Error (Exhausted { attempts = t.spec.max_attempts; last })
    else begin
      if n > 1 then begin
        t.n_retries <- t.n_retries + 1;
        Log.debug (fun m ->
            m "%s: retry %d/%d after %s" t.spec.name n t.spec.max_attempts last);
        backoff t (n - 1)
      end;
      let conn =
        match t.conn with Some c -> Ok c | None -> connect t
      in
      match conn with
      | Error e ->
          drop_conn t;
          attempt (n + 1) (string_of_error e)
      | Ok conn -> (
          match conn.Transport.send line with
          | Error e ->
              drop_conn t;
              attempt (n + 1) (Transport.string_of_error e)
          | Ok () -> (
              match await conn seq with
              | Error m ->
                  drop_conn t;
                  attempt (n + 1) m
              | Ok (Message.Manager_error { message; _ }) ->
                  t.n_manager_errors <- t.n_manager_errors + 1;
                  Error (Manager message)
              | Ok (Message.Scenario_result r) -> (
                  match Message.outcome_of_report ~total_blocks:t.total_blocks r with
                  | Ok outcome -> Ok outcome
                  | Error m ->
                      drop_conn t;
                      attempt (n + 1) ("unusable report: " ^ m))))
    end
  in
  attempt 1 "never attempted"

let close t =
  (match t.conn with
  | Some c ->
      ignore (c.Transport.send (Message.encode_to_manager Message.Shutdown));
      c.Transport.close ()
  | None -> ());
  t.conn <- None

(* ------------------------------------------------------------------ *)
(* Pipelined client                                                    *)
(* ------------------------------------------------------------------ *)

module Pipelined = struct
  type conn_state = Idle | Connected of Transport.t | Abandoned

  type conn = {
    spec : spec;
    total_blocks : int;
    mutable state : conn_state;
    outstanding : (int, int) Hashtbl.t; (* wire seq -> caller tag *)
    mutable orphans : int list;
    mutable seq : int;
    mutable credit : int; (* in-flight cap; the scheduler's knob *)
    mutable failures : int; (* consecutive connection-level failures *)
    mutable n_requests : int;
    mutable n_retries : int;
    mutable n_dials : int;
    mutable n_manager_errors : int;
  }

  let create spec ~total_blocks =
    {
      spec;
      total_blocks;
      state = Idle;
      outstanding = Hashtbl.create 16;
      orphans = [];
      seq = 0;
      credit = max_int;
      failures = 0;
      n_requests = 0;
      n_retries = 0;
      n_dials = 0;
      n_manager_errors = 0;
    }

  let name t = t.spec.name
  let pending t = Hashtbl.length t.outstanding
  let credit t = t.credit

  let set_credit t credit =
    if credit < 1 then invalid_arg "Pipelined.set_credit: credit must be positive";
    t.credit <- credit

  let has_credit t = Hashtbl.length t.outstanding < t.credit

  let awaiting t tag =
    Hashtbl.fold (fun _ tg acc -> acc || tg = tag) t.outstanding false
  let failures t = t.failures
  let max_attempts t = t.spec.max_attempts
  let backoff_ms t = backoff_delay_ms t.spec (max 1 t.failures)
  let abandoned t = match t.state with Abandoned -> true | _ -> false

  let dispatchable t =
    match t.state with Abandoned -> false | Idle | Connected _ -> true

  let wait_fd t =
    match t.state with
    | Connected c -> c.Transport.wait_fd ()
    | Idle | Abandoned -> None

  let stats t =
    {
      requests = t.n_requests;
      retries = t.n_retries;
      dials = t.n_dials;
      manager_errors = t.n_manager_errors;
    }

  let take_orphans t =
    let tags = List.rev t.orphans in
    t.orphans <- [];
    tags

  (* Drop the connection: every request still in flight on it is orphaned
     (the caller re-runs those locally), and after [max_attempts]
     consecutive failures the manager is written off for good. Never
     sleeps — backoff is the {e caller's} timer (see {!backoff_ms}). *)
  let fail t =
    (match t.state with
    | Connected c -> c.Transport.close ()
    | Idle | Abandoned -> ());
    Hashtbl.iter (fun _ tag -> t.orphans <- tag :: t.orphans) t.outstanding;
    Hashtbl.reset t.outstanding;
    t.failures <- t.failures + 1;
    t.n_retries <- t.n_retries + 1;
    t.state <- (if t.failures >= t.spec.max_attempts then Abandoned else Idle);
    Log.debug (fun m ->
        m "%s: pipelined connection failure %d/%d" t.spec.name t.failures
          t.spec.max_attempts)

  let connection t =
    match t.state with
    | Connected c -> Ok c
    | Abandoned ->
        Error
          (Exhausted { attempts = t.spec.max_attempts; last = "manager abandoned" })
    | Idle -> (
        t.n_dials <- t.n_dials + 1;
        match dial_and_handshake t.spec with
        | Ok c ->
            t.state <- Connected c;
            Ok c
        | Error e ->
            fail t;
            Error e)

  let submit t ~tag scenario =
    match connection t with
    | Error e -> Error e
    | Ok conn -> (
        t.seq <- t.seq + 1;
        let seq = t.seq in
        let line =
          Message.encode_to_manager (Message.Run_scenario { seq; scenario })
        in
        match conn.Transport.send line with
        | Ok () ->
            t.n_requests <- t.n_requests + 1;
            Hashtbl.replace t.outstanding seq tag;
            Ok ()
        | Error e ->
            fail t;
            Error (Transport e))

  (* Everything already on the wire, matched out of order: responses
     carry the request's seq, so a manager answering seq 5 before seq 3
     (or a duplicated frame from the chaos mangler) is handled without
     any head-of-line blocking. *)
  let drain t =
    match t.state with
    | Idle | Abandoned -> []
    | Connected conn ->
        let rec loop acc =
          match conn.Transport.try_recv ~timeout_ms:0 with
          | Ok None -> List.rev acc
          | Error _ ->
              fail t;
              List.rev acc
          | Ok (Some line) -> (
              match Message.decode_from_manager line with
              | Error _ ->
                  (* The frame passed its checksum but carries junk: the
                     stream can no longer be trusted. *)
                  fail t;
                  List.rev acc
              | Ok (Message.Manager_error { seq = -1; _ }) ->
                  (* The manager could not decode some request; we cannot
                     tell which, so every in-flight one is suspect. *)
                  fail t;
                  List.rev acc
              | Ok (Message.Manager_error { seq; message }) -> (
                  match Hashtbl.find_opt t.outstanding seq with
                  | None -> loop acc (* stale duplicate *)
                  | Some tag ->
                      Hashtbl.remove t.outstanding seq;
                      t.n_manager_errors <- t.n_manager_errors + 1;
                      loop ((tag, Error (Manager message)) :: acc))
              | Ok (Message.Scenario_result r) -> (
                  match Hashtbl.find_opt t.outstanding r.Message.seq with
                  | None -> loop acc (* stale duplicate *)
                  | Some tag ->
                      Hashtbl.remove t.outstanding r.Message.seq;
                      t.failures <- 0;
                      let result =
                        match
                          Message.outcome_of_report ~total_blocks:t.total_blocks r
                        with
                        | Ok outcome -> Ok outcome
                        | Error m -> Error (Protocol ("unusable report: " ^ m))
                      in
                      loop ((tag, result) :: acc)))
        in
        loop []

  let close t =
    (match t.state with
    | Connected c ->
        ignore (c.Transport.send (Message.encode_to_manager Message.Shutdown));
        c.Transport.close ()
    | Idle | Abandoned -> ());
    Hashtbl.iter (fun _ tag -> t.orphans <- tag :: t.orphans) t.outstanding;
    Hashtbl.reset t.outstanding;
    t.state <- Abandoned
end

(* ------------------------------------------------------------------ *)
(* Server loop                                                         *)
(* ------------------------------------------------------------------ *)

let serve_connection manager (conn : Transport.t) =
  let result =
    match conn.recv () with
    | Error e -> Error (Transport e)
    | Ok hello -> (
        match Message.decode_hello hello with
        | Error m ->
            ignore (conn.send (Message.encode_reject ~reason:m));
            Error (Protocol m)
        | Ok v when v <> Message.protocol_version ->
            let reason =
              Printf.sprintf "unsupported protocol version %d (manager speaks %d)"
                v Message.protocol_version
            in
            ignore (conn.send (Message.encode_reject ~reason));
            Error (Protocol reason)
        | Ok _ -> (
            match conn.send (Message.encode_welcome ~version:Message.protocol_version) with
            | Error e -> Error (Transport e)
            | Ok () ->
                let rec loop () =
                  match conn.recv () with
                  | Error Transport.Closed -> Ok ()
                  | Error Transport.Timeout -> loop () (* idle client *)
                  | Error e -> Error (Transport e)
                  | Ok line -> (
                      match Message.decode_to_manager line with
                      | Error m -> (
                          match
                            conn.send
                              (Message.encode_from_manager
                                 (Message.Manager_error { seq = -1; message = m }))
                          with
                          | Ok () -> loop ()
                          | Error e -> Error (Transport e))
                      | Ok msg -> (
                          match Node_manager.handle manager msg with
                          | None -> Ok () (* shutdown *)
                          | Some (reply, _elapsed) -> (
                              match conn.send (Message.encode_from_manager reply) with
                              | Ok () -> loop ()
                              | Error e -> Error (Transport e))))
                in
                loop ()))
  in
  conn.Transport.close ();
  result

let serve_tcp ?(host = "127.0.0.1") ~port ~once executor =
  match Transport.listen_tcp ~host ~port () with
  | Error e -> Error (Transport e)
  | Ok (listen_fd, actual_port) ->
      Printf.printf "afex-manager listening on %s:%d (protocol v%d)\n%!" host
        actual_port Message.protocol_version;
      let rec accept_loop id =
        match Transport.accept listen_fd with
        | Error e ->
            (try Unix.close listen_fd with Unix.Unix_error _ -> ());
            Error (Transport e)
        | Ok conn -> (
            Log.info (fun m -> m "connection %d from %s" id conn.Transport.peer);
            let manager = Node_manager.create ~id ~executor () in
            let result = serve_connection manager conn in
            (match result with
            | Ok () ->
                Log.info (fun m ->
                    m "connection %d done: %d tests run" id
                      (Node_manager.tests_run manager))
            | Error e ->
                Log.warn (fun m -> m "connection %d failed: %s" id (string_of_error e)));
            if once then begin
              (try Unix.close listen_fd with Unix.Unix_error _ -> ());
              Ok ()
            end
            else accept_loop (id + 1))
      in
      accept_loop 0

(* ------------------------------------------------------------------ *)
(* In-process loopback                                                 *)
(* ------------------------------------------------------------------ *)

module Loopback = struct
  type server = {
    executor : Afex.Executor.t;
    name : string;
    chaos_to_server : Transport.chaos option;
    chaos_to_client : Transport.chaos option;
    chaos_seed : int;
    recv_timeout_ms : int option;
    lock : Mutex.t;
    mutable domains : unit Domain.t list;
    mutable next_id : int;
  }

  let create ?chaos_to_server ?chaos_to_client ?(chaos_seed = 0)
      ?recv_timeout_ms ?(name = "loopback") ~executor () =
    {
      executor;
      name;
      chaos_to_server;
      chaos_to_client;
      chaos_seed;
      recv_timeout_ms;
      lock = Mutex.create ();
      domains = [];
      next_id = 0;
    }

  (* Each connection gets its own RNG streams, so manglers are never
     shared across domains and chaos runs replay from the seed. *)
  let mangler chaos seed =
    Option.map
      (fun c -> Transport.chaos_mangler ~rng:(Rng.create seed) c)
      chaos

  let dial server () =
    Mutex.lock server.lock;
    let id = server.next_id in
    server.next_id <- id + 1;
    Mutex.unlock server.lock;
    let mangle_a = mangler server.chaos_to_server (server.chaos_seed + (2 * id)) in
    let mangle_b = mangler server.chaos_to_client (server.chaos_seed + (2 * id) + 1) in
    let client_end, server_end =
      Transport.pair ?recv_timeout_ms:server.recv_timeout_ms ?mangle_a ?mangle_b ()
    in
    let manager = Node_manager.create ~id ~executor:server.executor () in
    let d = Domain.spawn (fun () -> ignore (serve_connection manager server_end)) in
    Mutex.lock server.lock;
    server.domains <- d :: server.domains;
    Mutex.unlock server.lock;
    Ok client_end

  let spec ?max_attempts ?backoff_ms server =
    spec ?max_attempts ?backoff_ms ~name:server.name (dial server)

  let connections server =
    Mutex.lock server.lock;
    let n = server.next_id in
    Mutex.unlock server.lock;
    n

  let shutdown server =
    Mutex.lock server.lock;
    let domains = server.domains in
    server.domains <- [];
    Mutex.unlock server.lock;
    List.iter Domain.join domains
end
