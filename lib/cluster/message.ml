module Scenario = Afex_faultspace.Scenario
module Value = Afex_faultspace.Value
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Bitset = Afex_stats.Bitset

let protocol_version = 1
let protocol_version_max = 2
let max_line = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Percent-escaping: stack frames and error messages may contain       *)
(* anything (spaces, commas, newlines, non-ASCII); the wire format     *)
(* tokenizes on spaces and joins list elements with commas, so both    *)
(* must be escaped along with control and non-ASCII bytes.             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      let c = Char.code ch in
      if c > 0x20 && c < 0x7f && ch <> '%' && ch <> ',' then Buffer.add_char b ch
      else Buffer.add_string b (Printf.sprintf "%%%02X" c))
    s;
  Buffer.contents b

let hex_digit = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents b)
    else if s.[i] = '%' then
      if i + 2 >= n then Error (Printf.sprintf "truncated escape in %S" s)
      else
        match hex_digit s.[i + 1], hex_digit s.[i + 2] with
        | Some hi, Some lo ->
            Buffer.add_char b (Char.chr ((hi * 16) + lo));
            go (i + 3)
        | _ -> Error (Printf.sprintf "malformed escape in %S" s)
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

type greeting = Welcome of int | Reject of string

let encode_hello ~version = Printf.sprintf "HELLO afex %d" version

let decode_hello line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "HELLO"; "afex"; v ] -> (
      match int_of_string_opt v with
      | Some v when v >= 0 -> Ok v
      | Some _ | None -> Error (Printf.sprintf "malformed hello version %S" v))
  | _ -> Error (Printf.sprintf "malformed hello %S" line)

let encode_welcome ~version = Printf.sprintf "WELCOME afex %d" version
let encode_reject ~reason = "REJECT " ^ escape reason

let decode_greeting line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "WELCOME"; "afex"; v ] -> (
      match int_of_string_opt v with
      | Some v when v >= 0 -> Ok (Welcome v)
      | Some _ | None -> Error (Printf.sprintf "malformed welcome version %S" v))
  | [ "REJECT"; reason ] -> Result.map (fun r -> Reject r) (unescape reason)
  | [ "REJECT" ] -> Ok (Reject "")
  | _ -> Error (Printf.sprintf "malformed greeting %S" line)

(* ------------------------------------------------------------------ *)
(* Explorer -> manager                                                 *)
(* ------------------------------------------------------------------ *)

type to_manager =
  | Run_scenario of { seq : int; scenario : Scenario.t }
  | Shutdown

let encode_to_manager = function
  | Shutdown -> "SHUTDOWN"
  | Run_scenario { seq; scenario } ->
      Printf.sprintf "RUN %d %s" seq (Scenario.to_string scenario)

let decode_to_manager line =
  if String.length line > max_line then
    Error
      (Printf.sprintf "oversized message: %d bytes exceeds the %d-byte limit"
         (String.length line) max_line)
  else begin
    let line = String.trim line in
    if String.equal line "" then Error "empty message"
    else if String.equal line "SHUTDOWN" then Ok Shutdown
    else begin
      match String.split_on_char ' ' line with
      | "RUN" :: seq :: (_ :: _ as rest) -> (
          match int_of_string_opt seq with
          | None -> Error (Printf.sprintf "malformed sequence number %S" seq)
          | Some seq when seq < 0 ->
              Error (Printf.sprintf "negative sequence number %d" seq)
          | Some seq -> (
              match Scenario.of_string (String.concat " " rest) with
              | Ok [] -> Error "empty scenario"
              | Ok scenario -> Ok (Run_scenario { seq; scenario })
              | Error e -> Error e))
      | [ "RUN" ] | [ "RUN"; _ ] ->
          Error "RUN needs a sequence number and a scenario"
      | _ -> Error (Printf.sprintf "unknown message %S" line)
    end
  end

(* ------------------------------------------------------------------ *)
(* Manager -> explorer                                                 *)
(* ------------------------------------------------------------------ *)

type run_report = {
  seq : int;
  status : Outcome.status;
  triggered : bool;
  new_blocks : int;
  fault : Fault.t;
  coverage : int list;
  injection_stack : string list option;
  crash_stack : string list option;
  duration_ms : float;
}

type from_manager =
  | Scenario_result of run_report
  | Manager_error of { seq : int; message : string }

let status_token = function
  | Outcome.Passed -> "P"
  | Outcome.Test_failed -> "F"
  | Outcome.Crashed -> "C"
  | Outcome.Hung -> "H"

let status_of_token = function
  | "P" -> Ok Outcome.Passed
  | "F" -> Ok Outcome.Test_failed
  | "C" -> Ok Outcome.Crashed
  | "H" -> Ok Outcome.Hung
  | t -> Error (Printf.sprintf "unknown status token %S" t)

(* Stacks: "-" = None; "@<count>:<comma-joined escaped frames>" = Some.
   The explicit count disambiguates [Some []] from [Some [""]]. *)

let encode_stack = function
  | None -> "-"
  | Some frames ->
      Printf.sprintf "@%d:%s" (List.length frames)
        (String.concat "," (List.map escape frames))

let decode_stack s =
  if String.equal s "-" then Ok None
  else if String.length s >= 1 && s.[0] = '@' then begin
    match String.index_opt s ':' with
    | None -> Error (Printf.sprintf "stack %S has no frame count" s)
    | Some colon -> (
        let joined = String.sub s (colon + 1) (String.length s - colon - 1) in
        match int_of_string_opt (String.sub s 1 (colon - 1)) with
        | None -> Error (Printf.sprintf "malformed frame count in %S" s)
        | Some n when n < 0 ->
            Error (Printf.sprintf "negative frame count in %S" s)
        | Some 0 ->
            if String.equal joined "" then Ok (Some [])
            else Error (Printf.sprintf "frames after a zero count in %S" s)
        | Some n ->
            let parts = String.split_on_char ',' joined in
            if List.length parts <> n then
              Error
                (Printf.sprintf "stack %S declares %d frames, carries %d" s n
                   (List.length parts))
            else begin
              let rec unescape_all acc = function
                | [] -> Ok (Some (List.rev acc))
                | p :: rest -> (
                    match unescape p with
                    | Ok f -> unescape_all (f :: acc) rest
                    | Error e -> Error e)
              in
              unescape_all [] parts
            end)
  end
  else Error (Printf.sprintf "malformed stack %S" s)

(* Coverage: "-" = empty; otherwise comma-joined runs "a" / "a-b" over
   the ascending block indices. *)

let encode_coverage = function
  | [] -> "-"
  | first :: rest ->
      let b = Buffer.create 64 in
      let emit lo hi =
        if Buffer.length b > 0 then Buffer.add_char b ',';
        if lo = hi then Buffer.add_string b (string_of_int lo)
        else Buffer.add_string b (Printf.sprintf "%d-%d" lo hi)
      in
      let lo, hi =
        List.fold_left
          (fun (lo, hi) i ->
            if i = hi + 1 then (lo, i)
            else begin
              emit lo hi;
              (i, i)
            end)
          (first, first) rest
      in
      emit lo hi;
      Buffer.contents b

let decode_coverage s =
  if String.equal s "-" then Ok []
  else begin
    let piece p =
      match String.index_opt p '-' with
      | None -> (
          match int_of_string_opt p with
          | Some v when v >= 0 -> Ok [ v ]
          | Some _ | None -> Error (Printf.sprintf "malformed block index %S" p))
      | Some dash -> (
          let a = String.sub p 0 dash in
          let b = String.sub p (dash + 1) (String.length p - dash - 1) in
          match int_of_string_opt a, int_of_string_opt b with
          | Some lo, Some hi when lo >= 0 && hi >= lo ->
              Ok (List.init (hi - lo + 1) (fun i -> lo + i))
          | _ -> Error (Printf.sprintf "malformed block range %S" p))
    in
    let rec go acc = function
      | [] -> Ok (List.concat (List.rev acc))
      | p :: rest -> (
          match piece p with Ok l -> go (l :: acc) rest | Error e -> Error e)
    in
    go [] (String.split_on_char ',' s)
  end

let encode_fault f = escape (Scenario.to_string (Fault.to_scenario f))

let report_of_outcome ~seq (o : Outcome.t) =
  {
    seq;
    status = o.Outcome.status;
    triggered = o.Outcome.triggered;
    new_blocks = 0 (* the explorer recomputes against its own coverage *);
    fault = o.Outcome.fault;
    coverage = Bitset.to_list o.Outcome.coverage;
    injection_stack = o.Outcome.injection_stack;
    crash_stack = o.Outcome.crash_stack;
    duration_ms = o.Outcome.duration_ms;
  }

let outcome_of_report ~total_blocks r =
  let coverage = Bitset.create total_blocks in
  match
    List.iter
      (fun i ->
        if i < 0 || i >= total_blocks then
          invalid_arg (Printf.sprintf "block index %d outside [0,%d)" i total_blocks)
        else Bitset.set coverage i)
      r.coverage
  with
  | () ->
      Ok
        {
          Outcome.fault = r.fault;
          status = r.status;
          triggered = r.triggered;
          coverage;
          injection_stack = r.injection_stack;
          crash_stack = r.crash_stack;
          duration_ms = r.duration_ms;
        }
  | exception Invalid_argument m -> Error m

let encode_from_manager = function
  | Manager_error { seq; message } ->
      Printf.sprintf "ERROR %d %s" seq (escape message)
  | Scenario_result r ->
      (* %h (hexadecimal float) round-trips the duration exactly. *)
      Printf.sprintf "RESULT %d %s %s %d %h %s %s %s %s" r.seq
        (status_token r.status)
        (if r.triggered then "T" else "N")
        r.new_blocks r.duration_ms (encode_fault r.fault)
        (encode_coverage r.coverage)
        (encode_stack r.injection_stack)
        (encode_stack r.crash_stack)

let decode_fault s =
  match unescape s with
  | Error e -> Error e
  | Ok line -> (
      match Scenario.of_string line with
      | Error e -> Error e
      | Ok scenario -> Fault.of_scenario scenario)

let decode_from_manager line =
  if String.length line > max_line then
    Error
      (Printf.sprintf "oversized message: %d bytes exceeds the %d-byte limit"
         (String.length line) max_line)
  else begin
    match String.split_on_char ' ' (String.trim line) with
    | [ "ERROR"; seq ] -> (
        (* an empty message escapes to the empty string, which trimming ate *)
        match int_of_string_opt seq with
        | Some seq -> Ok (Manager_error { seq; message = "" })
        | None -> Error (Printf.sprintf "malformed sequence number %S" seq))
    | [ "ERROR"; seq; message ] -> (
        let ( let* ) = Result.bind in
        let* seq =
          match int_of_string_opt seq with
          | Some s -> Ok s
          | None -> Error (Printf.sprintf "malformed sequence number %S" seq)
        in
        let* message = unescape message in
        Ok (Manager_error { seq; message }))
    | [ "RESULT"; seq; status; triggered; new_blocks; duration; fault; coverage;
        istack; cstack ] -> (
        let ( let* ) = Result.bind in
        let int_field name v =
          match int_of_string_opt v with
          | Some i -> Ok i
          | None -> Error (Printf.sprintf "malformed %s %S" name v)
        in
        let* seq = int_field "sequence number" seq in
        let* status = status_of_token status in
        let* triggered =
          match triggered with
          | "T" -> Ok true
          | "N" -> Ok false
          | t -> Error (Printf.sprintf "malformed triggered flag %S" t)
        in
        let* new_blocks = int_field "new-blocks count" new_blocks in
        let* duration_ms =
          match float_of_string_opt duration with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "malformed duration %S" duration)
        in
        let* fault = decode_fault fault in
        let* coverage = decode_coverage coverage in
        let* injection_stack = decode_stack istack in
        let* crash_stack = decode_stack cstack in
        Ok
          (Scenario_result
             {
               seq;
               status;
               triggered;
               new_blocks;
               fault;
               coverage;
               injection_stack;
               crash_stack;
               duration_ms;
             }))
    | "RESULT" :: _ -> Error "RESULT carries the wrong number of fields"
    | _ -> Error (Printf.sprintf "unknown message %S" (String.trim line))
  end

let pp_from_manager ppf = function
  | Scenario_result r ->
      Format.fprintf ppf "result #%d: %s (%.1fms)" r.seq
        (Outcome.status_to_string r.status)
        r.duration_ms
  | Manager_error { seq; message } -> Format.fprintf ppf "error #%d: %s" seq message

(* ------------------------------------------------------------------ *)
(* Wire protocol v2: binary records, coalesced several to a frame      *)
(* ------------------------------------------------------------------ *)

(* A v2 frame payload is a concatenation of tagged binary records
   instead of one percent-escaped text line. Scalars are LEB128
   varints (zigzag for signed), strings are length-prefixed raw bytes
   — no escaping. Two pieces of per-connection state make steady-state
   records small: the server interns stack frames into a dictionary it
   grows with incremental DICT records (reports then carry int ids),
   and the client delta-encodes each scenario against the previous one
   it sent on that connection (mutations touch few axes). Both sides
   reset this state on reconnect.

   The frame checksum already catches corruption; the remaining threat
   is a *valid* frame applied to desynchronized state (a dropped or
   duplicated frame under chaos). Three guards turn that into a typed
   decode error instead of a silently wrong report: requests carry a
   per-connection generation counter (a gap means a lost frame, a
   stale one is an idempotent duplicate to skip), every request carries
   an FNV-1a checksum of the full reconstructed scenario, and DICT
   records carry their explicit base id (a gap or conflicting re-definition
   is desync). *)

module V2 = struct
  let ( let* ) = Result.bind

  let tag_request = 0x01
  let tag_shutdown = 0x02
  let tag_dict = 0x03
  let tag_result = 0x04
  let tag_error = 0x05

  (* -- primitives ------------------------------------------------- *)

  let add_uv b n =
    if n < 0 then invalid_arg "Message.V2: negative varint";
    let rec go n =
      if n < 0x80 then Buffer.add_char b (Char.chr n)
      else begin
        Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
  let unzigzag n = (n lsr 1) lxor (- (n land 1))

  (* The zigzag of an extreme int ([min_int], [max_int]) occupies all 63
     bits and is negative as an OCaml int, so signed varints LEB128 the
     raw bit pattern with logical shifts instead of going through
     [add_uv]'s non-negative domain. *)
  let add_bits b n =
    let rec go n =
      if n >= 0 && n < 0x80 then Buffer.add_char b (Char.chr n)
      else begin
        Buffer.add_char b (Char.chr (0x80 lor (n land 0x7f)));
        go (n lsr 7)
      end
    in
    go n

  let add_sv b n = add_bits b (zigzag n)

  let add_str b s =
    add_uv b (String.length s);
    Buffer.add_string b s

  let add_f64 b f =
    let bits = Int64.bits_of_float f in
    for i = 7 downto 0 do
      Buffer.add_char b
        (Char.chr
           (Int64.to_int
              (Int64.logand (Int64.shift_right_logical bits (8 * i)) 0xFFL)))
    done

  type cursor = { data : string; mutable pos : int }

  let remaining c = String.length c.data - c.pos

  let read_byte c =
    if c.pos >= String.length c.data then Error "truncated record"
    else begin
      let v = Char.code c.data.[c.pos] in
      c.pos <- c.pos + 1;
      Ok v
    end

  let read_uv c =
    let rec go acc shift =
      if shift > Sys.int_size - 1 then Error "varint overflow"
      else
        match read_byte c with
        | Error _ -> Error "truncated varint"
        | Ok byte ->
            let acc = acc lor ((byte land 0x7f) lsl shift) in
            if byte land 0x80 = 0 then
              if acc < 0 then Error "varint overflow" else Ok acc
            else go acc (shift + 7)
    in
    go 0 0

  (* [read_uv]'s mirror for the full 63-bit pattern: the accumulator may
     legitimately go negative on the 9th byte (bit 62 is the sign bit). *)
  let read_bits c =
    let rec go acc shift =
      if shift >= Sys.int_size then Error "varint overflow"
      else
        match read_byte c with
        | Error _ -> Error "truncated varint"
        | Ok byte ->
            let acc = acc lor ((byte land 0x7f) lsl shift) in
            if byte land 0x80 = 0 then Ok acc else go acc (shift + 7)
    in
    go 0 0

  let read_sv c = Result.map unzigzag (read_bits c)

  let read_str c =
    let* n = read_uv c in
    if n > max_line then Error "oversized string"
    else if n > remaining c then Error "truncated string"
    else begin
      let s = String.sub c.data c.pos n in
      c.pos <- c.pos + n;
      Ok s
    end

  let read_f64 c =
    if remaining c < 8 then Error "truncated float"
    else begin
      let bits = ref 0L in
      for _ = 1 to 8 do
        bits :=
          Int64.logor (Int64.shift_left !bits 8)
            (Int64.of_int (Char.code c.data.[c.pos]));
        c.pos <- c.pos + 1
      done;
      Ok (Int64.float_of_bits !bits)
    end

  (* Position-based wrappers for tests and micro-benches. *)

  let varint_encode = add_uv
  let svarint_encode = add_sv

  let varint_decode s ~pos =
    let c = { data = s; pos } in
    Result.map (fun v -> (v, c.pos)) (read_uv c)

  let svarint_decode s ~pos =
    let c = { data = s; pos } in
    Result.map (fun v -> (v, c.pos)) (read_sv c)

  (* -- values and scenarios --------------------------------------- *)

  let add_value b = function
    | Value.Sym s ->
        Buffer.add_char b '\x00';
        add_str b s
    | Value.Int n ->
        Buffer.add_char b '\x01';
        add_sv b n
    | Value.Pair (lo, hi) ->
        Buffer.add_char b '\x02';
        add_sv b lo;
        add_sv b hi

  let read_value c =
    let* tag = read_byte c in
    match tag with
    | 0 ->
        let* s = read_str c in
        Ok (Value.Sym s)
    | 1 ->
        let* n = read_sv c in
        Ok (Value.Int n)
    | 2 ->
        let* lo = read_sv c in
        let* hi = read_sv c in
        Ok (Value.Pair (lo, hi))
    | t -> Error (Printf.sprintf "unknown value tag %d" t)

  let scenario_checksum s = Transport.checksum (Scenario.to_string s)

  (* -- client -> server ------------------------------------------- *)

  type client_enc = {
    mutable last_sent : Scenario.t option;
    mutable out_gen : int;
  }

  let client_enc () = { last_sent = None; out_gen = 0 }

  (* Delta-encode against the previous scenario sent on this connection
     when the axes line up (same names, same order) and strictly fewer
     bindings changed than the scenario has; otherwise send it full. *)
  let encode_request enc b ~seq scenario =
    if seq < 0 then invalid_arg "Message.V2.encode_request: negative seq";
    enc.out_gen <- enc.out_gen + 1;
    Buffer.add_char b (Char.chr tag_request);
    add_uv b seq;
    add_uv b enc.out_gen;
    let changes =
      match enc.last_sent with
      | Some prev
        when List.length prev = List.length scenario
             && List.for_all2
                  (fun (n, _) (n', _) -> String.equal n n')
                  prev scenario ->
          let rec diff i acc prev scen =
            match (prev, scen) with
            | [], [] -> Some (List.rev acc)
            | (_, pv) :: prest, (_, sv) :: srest ->
                let acc = if Value.equal pv sv then acc else (i, sv) :: acc in
                diff (i + 1) acc prest srest
            | _ -> None
          in
          diff 0 [] prev scenario
      | _ -> None
    in
    (match changes with
    | Some changed when List.length changed < List.length scenario ->
        Buffer.add_char b '\x01';
        add_uv b (List.length changed);
        List.iter
          (fun (i, v) ->
            add_uv b i;
            add_value b v)
          changed
    | Some _ | None ->
        Buffer.add_char b '\x00';
        add_uv b (List.length scenario);
        List.iter
          (fun (n, v) ->
            add_str b n;
            add_value b v)
          scenario);
    add_uv b (scenario_checksum scenario);
    enc.last_sent <- Some scenario

  let encode_shutdown b = Buffer.add_char b (Char.chr tag_shutdown)

  type server_dec = {
    mutable last_seen : Scenario.t option;
    mutable in_gen : int;
  }

  let server_dec () = { last_seen = None; in_gen = 0 }

  let decode_requests dec payload =
    let c = { data = payload; pos = 0 } in
    let rec loop acc =
      if remaining c = 0 then Ok (List.rev acc)
      else
        let* tag = read_byte c in
        if tag = tag_shutdown then loop (Shutdown :: acc)
        else if tag = tag_request then begin
          let* seq = read_uv c in
          let* gen = read_uv c in
          let* mode = read_byte c in
          let* body =
            if mode = 0 then begin
              let* n = read_uv c in
              if n > remaining c then Error "truncated scenario"
              else begin
                let rec bindings acc k =
                  if k = 0 then Ok (List.rev acc)
                  else
                    let* name = read_str c in
                    let* v = read_value c in
                    bindings ((name, v) :: acc) (k - 1)
                in
                Result.map (fun s -> `Full s) (bindings [] n)
              end
            end
            else if mode = 1 then begin
              let* n = read_uv c in
              if n > remaining c then Error "truncated scenario delta"
              else begin
                let rec changes acc k =
                  if k = 0 then Ok (List.rev acc)
                  else
                    let* i = read_uv c in
                    let* v = read_value c in
                    changes ((i, v) :: acc) (k - 1)
                in
                Result.map (fun cs -> `Delta cs) (changes [] n)
              end
            end
            else Error (Printf.sprintf "unknown scenario mode %d" mode)
          in
          let* sum = read_uv c in
          if gen <= dec.in_gen then
            (* A duplicated frame (chaos): these requests were already
               reconstructed, executed and answered — skip, don't touch
               the delta base. *)
            loop acc
          else if gen > dec.in_gen + 1 then
            Error
              (Printf.sprintf
                 "request generation gap (%d after %d): a frame went missing"
                 gen dec.in_gen)
          else
            let* scenario =
              match body with
              | `Full s -> Ok s
              | `Delta changed -> (
                  match dec.last_seen with
                  | None -> Error "delta request without a base scenario"
                  | Some prev ->
                      let arr = Array.of_list prev in
                      let rec apply = function
                        | [] -> Ok (Array.to_list arr)
                        | (i, v) :: rest ->
                            if i < 0 || i >= Array.length arr then
                              Error
                                (Printf.sprintf
                                   "delta index %d outside the base scenario" i)
                            else begin
                              arr.(i) <- (fst arr.(i), v);
                              apply rest
                            end
                      in
                      apply changed)
            in
            if scenario_checksum scenario <> sum then
              Error "scenario checksum mismatch: connection state desynchronized"
            else begin
              dec.last_seen <- Some scenario;
              dec.in_gen <- gen;
              loop (Run_scenario { seq; scenario } :: acc)
            end
        end
        else Error (Printf.sprintf "unknown request record tag %d" tag)
    in
    loop []

  (* -- server -> client ------------------------------------------- *)

  let status_code = function
    | Outcome.Passed -> 0
    | Outcome.Test_failed -> 1
    | Outcome.Crashed -> 2
    | Outcome.Hung -> 3

  let status_of_code = function
    | 0 -> Ok Outcome.Passed
    | 1 -> Ok Outcome.Test_failed
    | 2 -> Ok Outcome.Crashed
    | 3 -> Ok Outcome.Hung
    | n -> Error (Printf.sprintf "unknown status code %d" n)

  type server_enc = {
    interned : (string, int) Hashtbl.t;
    mutable next_id : int;
  }

  let server_enc () = { interned = Hashtbl.create 64; next_id = 0 }
  let server_dict_size enc = enc.next_id

  let intern enc pending frame =
    match Hashtbl.find_opt enc.interned frame with
    | Some id -> id
    | None ->
        let id = enc.next_id in
        Hashtbl.add enc.interned frame id;
        enc.next_id <- id + 1;
        pending := frame :: !pending;
        id

  (* Coverage as run-length varints — run count, then per run the gap
     from the previous run's end (the first run ships its absolute
     start) and the run length minus one. Coverage is overwhelmingly
     contiguous stretches of block indices, so a run costs ~2 bytes
     regardless of its length: the binary-density counterpart of v1's
     "a-b" text ranges, which per-block gap encoding loses badly to. *)
  let add_coverage b cov =
    let rec runs acc start last = function
      | [] -> List.rev ((start, last) :: acc)
      | i :: rest ->
          if i <= last then
            invalid_arg "Message.V2: coverage must be strictly ascending"
          else if i = last + 1 then runs acc start i rest
          else runs ((start, last) :: acc) i i rest
    in
    match cov with
    | [] -> add_uv b 0
    | first :: rest ->
        let rs = runs [] first first rest in
        add_uv b (List.length rs);
        ignore
          (List.fold_left
             (fun prev_end (s, e) ->
               (match prev_end with
               | None -> add_uv b s
               | Some p -> add_uv b (s - p - 1));
               add_uv b (e - s);
               Some e)
             None rs)

  let read_coverage c =
    let* nruns = read_uv c in
    if nruns > remaining c then Error "truncated coverage"
    else
      let rec go acc prev_end k =
        if k = 0 then Ok (List.rev acc)
        else
          let* gap = read_uv c in
          let start =
            match prev_end with None -> gap | Some p -> p + 1 + gap
          in
          let* len1 = read_uv c in
          (* A few bytes must not conjure a giant list: bound each run
             like every other length field. *)
          if len1 > max_line then Error "oversized coverage run"
          else
            let last = start + len1 in
            if last < start then Error "coverage overflow"
            else
              let rec fill acc i =
                if i > last then acc else fill (i :: acc) (i + 1)
              in
              go (fill acc start) (Some last) (k - 1)
      in
      go [] None nruns

  let add_stack_ids b = function
    | None -> Buffer.add_char b '\x00'
    | Some ids ->
        Buffer.add_char b '\x01';
        add_uv b (List.length ids);
        List.iter (add_uv b) ids

  (* Interning may discover strings the peer has never seen: those are
     shipped in a DICT record immediately before the report that uses
     them, in the same coalesced frame. The record carries its explicit
     base id so a duplicated frame re-defines entries identically (a
     no-op) and a dropped one leaves a detectable gap. The dictionary
     holds stack frames and fault descriptors alike — a campaign cycles
     through few distinct faults, so the ~50-byte fault text collapses
     to an id after its first appearance. *)
  let encode_reply enc b = function
    | Manager_error { seq; message } ->
        Buffer.add_char b (Char.chr tag_error);
        add_sv b seq;
        add_str b message
    | Scenario_result r ->
        let pending = ref [] in
        let base = enc.next_id in
        let fault_id =
          intern enc pending (Scenario.to_string (Fault.to_scenario r.fault))
        in
        let ids = Option.map (List.map (intern enc pending)) in
        let istack = ids r.injection_stack in
        let cstack = ids r.crash_stack in
        let news = List.rev !pending in
        if news <> [] then begin
          Buffer.add_char b (Char.chr tag_dict);
          add_uv b base;
          add_uv b (List.length news);
          List.iter (add_str b) news
        end;
        Buffer.add_char b (Char.chr tag_result);
        add_uv b r.seq;
        Buffer.add_char b
          (Char.chr (status_code r.status lor (if r.triggered then 4 else 0)));
        add_uv b r.new_blocks;
        add_f64 b r.duration_ms;
        add_uv b fault_id;
        add_coverage b r.coverage;
        add_stack_ids b istack;
        add_stack_ids b cstack

  type client_dec = {
    mutable frames : string array;
    mutable n_frames : int;
  }

  let client_dec () = { frames = Array.make 64 ""; n_frames = 0 }
  let client_dict_size d = d.n_frames

  let dict_append d s =
    if d.n_frames = Array.length d.frames then begin
      let grown = Array.make (2 * Array.length d.frames) "" in
      Array.blit d.frames 0 grown 0 d.n_frames;
      d.frames <- grown
    end;
    d.frames.(d.n_frames) <- s;
    d.n_frames <- d.n_frames + 1

  let read_stack dec c =
    let* present = read_byte c in
    match present with
    | 0 -> Ok None
    | 1 ->
        let* n = read_uv c in
        if n > remaining c + 1 then Error "truncated stack"
        else begin
          let rec go acc k =
            if k = 0 then Ok (Some (List.rev acc))
            else
              let* id = read_uv c in
              if id >= dec.n_frames then
                Error
                  (Printf.sprintf
                     "unknown stack-frame id %d (dictionary has %d): \
                      connection state desynchronized"
                     id dec.n_frames)
              else go (dec.frames.(id) :: acc) (k - 1)
          in
          go [] n
        end
    | t -> Error (Printf.sprintf "unknown stack presence tag %d" t)

  let decode_replies dec payload =
    let c = { data = payload; pos = 0 } in
    let rec loop acc =
      if remaining c = 0 then Ok (List.rev acc)
      else
        let* tag = read_byte c in
        if tag = tag_dict then begin
          let* base = read_uv c in
          let* n = read_uv c in
          if n > remaining c then Error "truncated dictionary record"
          else begin
            let rec entries k =
              if k = n then Ok ()
              else
                let* s = read_str c in
                let id = base + k in
                if id < dec.n_frames then
                  if String.equal dec.frames.(id) s then entries (k + 1)
                  else
                    Error
                      (Printf.sprintf
                         "dictionary entry %d redefined: connection state \
                          desynchronized"
                         id)
                else if id = dec.n_frames then begin
                  dict_append dec s;
                  entries (k + 1)
                end
                else
                  Error
                    (Printf.sprintf
                       "dictionary gap (entry %d after %d): a frame went \
                        missing"
                       id dec.n_frames)
            in
            let* () = entries 0 in
            loop acc
          end
        end
        else if tag = tag_result then begin
          let* seq = read_uv c in
          let* flags = read_byte c in
          if flags land lnot 7 <> 0 then
            Error (Printf.sprintf "unknown result flags %#x" flags)
          else
            let* status = status_of_code (flags land 3) in
            let triggered = flags land 4 <> 0 in
            let* new_blocks = read_uv c in
            let* duration_ms = read_f64 c in
            let* fault_id = read_uv c in
            let* fault_s =
              if fault_id >= dec.n_frames then
                Error
                  (Printf.sprintf
                     "unknown fault id %d (dictionary has %d): connection \
                      state desynchronized"
                     fault_id dec.n_frames)
              else Ok dec.frames.(fault_id)
            in
            let* fault =
              match Scenario.of_string fault_s with
              | Error e -> Error e
              | Ok scenario -> Fault.of_scenario scenario
            in
            let* coverage = read_coverage c in
            let* injection_stack = read_stack dec c in
            let* crash_stack = read_stack dec c in
            loop
              (Scenario_result
                 {
                   seq;
                   status;
                   triggered;
                   new_blocks;
                   fault;
                   coverage;
                   injection_stack;
                   crash_stack;
                   duration_ms;
                 }
              :: acc)
        end
        else if tag = tag_error then begin
          let* seq = read_sv c in
          let* message = read_str c in
          loop (Manager_error { seq; message } :: acc)
        end
        else Error (Printf.sprintf "unknown reply record tag %d" tag)
    in
    loop []
end
