module Scenario = Afex_faultspace.Scenario
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Bitset = Afex_stats.Bitset

let protocol_version = 1
let max_line = 1 lsl 20

(* ------------------------------------------------------------------ *)
(* Percent-escaping: stack frames and error messages may contain       *)
(* anything (spaces, commas, newlines, non-ASCII); the wire format     *)
(* tokenizes on spaces and joins list elements with commas, so both    *)
(* must be escaped along with control and non-ASCII bytes.             *)
(* ------------------------------------------------------------------ *)

let escape s =
  let b = Buffer.create (String.length s + 8) in
  String.iter
    (fun ch ->
      let c = Char.code ch in
      if c > 0x20 && c < 0x7f && ch <> '%' && ch <> ',' then Buffer.add_char b ch
      else Buffer.add_string b (Printf.sprintf "%%%02X" c))
    s;
  Buffer.contents b

let hex_digit = function
  | '0' .. '9' as c -> Some (Char.code c - Char.code '0')
  | 'a' .. 'f' as c -> Some (Char.code c - Char.code 'a' + 10)
  | 'A' .. 'F' as c -> Some (Char.code c - Char.code 'A' + 10)
  | _ -> None

let unescape s =
  let n = String.length s in
  let b = Buffer.create n in
  let rec go i =
    if i >= n then Ok (Buffer.contents b)
    else if s.[i] = '%' then
      if i + 2 >= n then Error (Printf.sprintf "truncated escape in %S" s)
      else
        match hex_digit s.[i + 1], hex_digit s.[i + 2] with
        | Some hi, Some lo ->
            Buffer.add_char b (Char.chr ((hi * 16) + lo));
            go (i + 3)
        | _ -> Error (Printf.sprintf "malformed escape in %S" s)
    else begin
      Buffer.add_char b s.[i];
      go (i + 1)
    end
  in
  go 0

(* ------------------------------------------------------------------ *)
(* Handshake                                                           *)
(* ------------------------------------------------------------------ *)

type greeting = Welcome of int | Reject of string

let encode_hello ~version = Printf.sprintf "HELLO afex %d" version

let decode_hello line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "HELLO"; "afex"; v ] -> (
      match int_of_string_opt v with
      | Some v when v >= 0 -> Ok v
      | Some _ | None -> Error (Printf.sprintf "malformed hello version %S" v))
  | _ -> Error (Printf.sprintf "malformed hello %S" line)

let encode_welcome ~version = Printf.sprintf "WELCOME afex %d" version
let encode_reject ~reason = "REJECT " ^ escape reason

let decode_greeting line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "WELCOME"; "afex"; v ] -> (
      match int_of_string_opt v with
      | Some v when v >= 0 -> Ok (Welcome v)
      | Some _ | None -> Error (Printf.sprintf "malformed welcome version %S" v))
  | [ "REJECT"; reason ] -> Result.map (fun r -> Reject r) (unescape reason)
  | [ "REJECT" ] -> Ok (Reject "")
  | _ -> Error (Printf.sprintf "malformed greeting %S" line)

(* ------------------------------------------------------------------ *)
(* Explorer -> manager                                                 *)
(* ------------------------------------------------------------------ *)

type to_manager =
  | Run_scenario of { seq : int; scenario : Scenario.t }
  | Shutdown

let encode_to_manager = function
  | Shutdown -> "SHUTDOWN"
  | Run_scenario { seq; scenario } ->
      Printf.sprintf "RUN %d %s" seq (Scenario.to_string scenario)

let decode_to_manager line =
  if String.length line > max_line then
    Error
      (Printf.sprintf "oversized message: %d bytes exceeds the %d-byte limit"
         (String.length line) max_line)
  else begin
    let line = String.trim line in
    if String.equal line "" then Error "empty message"
    else if String.equal line "SHUTDOWN" then Ok Shutdown
    else begin
      match String.split_on_char ' ' line with
      | "RUN" :: seq :: (_ :: _ as rest) -> (
          match int_of_string_opt seq with
          | None -> Error (Printf.sprintf "malformed sequence number %S" seq)
          | Some seq when seq < 0 ->
              Error (Printf.sprintf "negative sequence number %d" seq)
          | Some seq -> (
              match Scenario.of_string (String.concat " " rest) with
              | Ok [] -> Error "empty scenario"
              | Ok scenario -> Ok (Run_scenario { seq; scenario })
              | Error e -> Error e))
      | [ "RUN" ] | [ "RUN"; _ ] ->
          Error "RUN needs a sequence number and a scenario"
      | _ -> Error (Printf.sprintf "unknown message %S" line)
    end
  end

(* ------------------------------------------------------------------ *)
(* Manager -> explorer                                                 *)
(* ------------------------------------------------------------------ *)

type run_report = {
  seq : int;
  status : Outcome.status;
  triggered : bool;
  new_blocks : int;
  fault : Fault.t;
  coverage : int list;
  injection_stack : string list option;
  crash_stack : string list option;
  duration_ms : float;
}

type from_manager =
  | Scenario_result of run_report
  | Manager_error of { seq : int; message : string }

let status_token = function
  | Outcome.Passed -> "P"
  | Outcome.Test_failed -> "F"
  | Outcome.Crashed -> "C"
  | Outcome.Hung -> "H"

let status_of_token = function
  | "P" -> Ok Outcome.Passed
  | "F" -> Ok Outcome.Test_failed
  | "C" -> Ok Outcome.Crashed
  | "H" -> Ok Outcome.Hung
  | t -> Error (Printf.sprintf "unknown status token %S" t)

(* Stacks: "-" = None; "@<count>:<comma-joined escaped frames>" = Some.
   The explicit count disambiguates [Some []] from [Some [""]]. *)

let encode_stack = function
  | None -> "-"
  | Some frames ->
      Printf.sprintf "@%d:%s" (List.length frames)
        (String.concat "," (List.map escape frames))

let decode_stack s =
  if String.equal s "-" then Ok None
  else if String.length s >= 1 && s.[0] = '@' then begin
    match String.index_opt s ':' with
    | None -> Error (Printf.sprintf "stack %S has no frame count" s)
    | Some colon -> (
        let joined = String.sub s (colon + 1) (String.length s - colon - 1) in
        match int_of_string_opt (String.sub s 1 (colon - 1)) with
        | None -> Error (Printf.sprintf "malformed frame count in %S" s)
        | Some n when n < 0 ->
            Error (Printf.sprintf "negative frame count in %S" s)
        | Some 0 ->
            if String.equal joined "" then Ok (Some [])
            else Error (Printf.sprintf "frames after a zero count in %S" s)
        | Some n ->
            let parts = String.split_on_char ',' joined in
            if List.length parts <> n then
              Error
                (Printf.sprintf "stack %S declares %d frames, carries %d" s n
                   (List.length parts))
            else begin
              let rec unescape_all acc = function
                | [] -> Ok (Some (List.rev acc))
                | p :: rest -> (
                    match unescape p with
                    | Ok f -> unescape_all (f :: acc) rest
                    | Error e -> Error e)
              in
              unescape_all [] parts
            end)
  end
  else Error (Printf.sprintf "malformed stack %S" s)

(* Coverage: "-" = empty; otherwise comma-joined runs "a" / "a-b" over
   the ascending block indices. *)

let encode_coverage = function
  | [] -> "-"
  | first :: rest ->
      let b = Buffer.create 64 in
      let emit lo hi =
        if Buffer.length b > 0 then Buffer.add_char b ',';
        if lo = hi then Buffer.add_string b (string_of_int lo)
        else Buffer.add_string b (Printf.sprintf "%d-%d" lo hi)
      in
      let lo, hi =
        List.fold_left
          (fun (lo, hi) i ->
            if i = hi + 1 then (lo, i)
            else begin
              emit lo hi;
              (i, i)
            end)
          (first, first) rest
      in
      emit lo hi;
      Buffer.contents b

let decode_coverage s =
  if String.equal s "-" then Ok []
  else begin
    let piece p =
      match String.index_opt p '-' with
      | None -> (
          match int_of_string_opt p with
          | Some v when v >= 0 -> Ok [ v ]
          | Some _ | None -> Error (Printf.sprintf "malformed block index %S" p))
      | Some dash -> (
          let a = String.sub p 0 dash in
          let b = String.sub p (dash + 1) (String.length p - dash - 1) in
          match int_of_string_opt a, int_of_string_opt b with
          | Some lo, Some hi when lo >= 0 && hi >= lo ->
              Ok (List.init (hi - lo + 1) (fun i -> lo + i))
          | _ -> Error (Printf.sprintf "malformed block range %S" p))
    in
    let rec go acc = function
      | [] -> Ok (List.concat (List.rev acc))
      | p :: rest -> (
          match piece p with Ok l -> go (l :: acc) rest | Error e -> Error e)
    in
    go [] (String.split_on_char ',' s)
  end

let encode_fault f = escape (Scenario.to_string (Fault.to_scenario f))

let report_of_outcome ~seq (o : Outcome.t) =
  {
    seq;
    status = o.Outcome.status;
    triggered = o.Outcome.triggered;
    new_blocks = 0 (* the explorer recomputes against its own coverage *);
    fault = o.Outcome.fault;
    coverage = Bitset.to_list o.Outcome.coverage;
    injection_stack = o.Outcome.injection_stack;
    crash_stack = o.Outcome.crash_stack;
    duration_ms = o.Outcome.duration_ms;
  }

let outcome_of_report ~total_blocks r =
  let coverage = Bitset.create total_blocks in
  match
    List.iter
      (fun i ->
        if i < 0 || i >= total_blocks then
          invalid_arg (Printf.sprintf "block index %d outside [0,%d)" i total_blocks)
        else Bitset.set coverage i)
      r.coverage
  with
  | () ->
      Ok
        {
          Outcome.fault = r.fault;
          status = r.status;
          triggered = r.triggered;
          coverage;
          injection_stack = r.injection_stack;
          crash_stack = r.crash_stack;
          duration_ms = r.duration_ms;
        }
  | exception Invalid_argument m -> Error m

let encode_from_manager = function
  | Manager_error { seq; message } ->
      Printf.sprintf "ERROR %d %s" seq (escape message)
  | Scenario_result r ->
      (* %h (hexadecimal float) round-trips the duration exactly. *)
      Printf.sprintf "RESULT %d %s %s %d %h %s %s %s %s" r.seq
        (status_token r.status)
        (if r.triggered then "T" else "N")
        r.new_blocks r.duration_ms (encode_fault r.fault)
        (encode_coverage r.coverage)
        (encode_stack r.injection_stack)
        (encode_stack r.crash_stack)

let decode_fault s =
  match unescape s with
  | Error e -> Error e
  | Ok line -> (
      match Scenario.of_string line with
      | Error e -> Error e
      | Ok scenario -> Fault.of_scenario scenario)

let decode_from_manager line =
  if String.length line > max_line then
    Error
      (Printf.sprintf "oversized message: %d bytes exceeds the %d-byte limit"
         (String.length line) max_line)
  else begin
    match String.split_on_char ' ' (String.trim line) with
    | [ "ERROR"; seq ] -> (
        (* an empty message escapes to the empty string, which trimming ate *)
        match int_of_string_opt seq with
        | Some seq -> Ok (Manager_error { seq; message = "" })
        | None -> Error (Printf.sprintf "malformed sequence number %S" seq))
    | [ "ERROR"; seq; message ] -> (
        let ( let* ) = Result.bind in
        let* seq =
          match int_of_string_opt seq with
          | Some s -> Ok s
          | None -> Error (Printf.sprintf "malformed sequence number %S" seq)
        in
        let* message = unescape message in
        Ok (Manager_error { seq; message }))
    | [ "RESULT"; seq; status; triggered; new_blocks; duration; fault; coverage;
        istack; cstack ] -> (
        let ( let* ) = Result.bind in
        let int_field name v =
          match int_of_string_opt v with
          | Some i -> Ok i
          | None -> Error (Printf.sprintf "malformed %s %S" name v)
        in
        let* seq = int_field "sequence number" seq in
        let* status = status_of_token status in
        let* triggered =
          match triggered with
          | "T" -> Ok true
          | "N" -> Ok false
          | t -> Error (Printf.sprintf "malformed triggered flag %S" t)
        in
        let* new_blocks = int_field "new-blocks count" new_blocks in
        let* duration_ms =
          match float_of_string_opt duration with
          | Some f -> Ok f
          | None -> Error (Printf.sprintf "malformed duration %S" duration)
        in
        let* fault = decode_fault fault in
        let* coverage = decode_coverage coverage in
        let* injection_stack = decode_stack istack in
        let* crash_stack = decode_stack cstack in
        Ok
          (Scenario_result
             {
               seq;
               status;
               triggered;
               new_blocks;
               fault;
               coverage;
               injection_stack;
               crash_stack;
               duration_ms;
             }))
    | "RESULT" :: _ -> Error "RESULT carries the wrong number of fields"
    | _ -> Error (Printf.sprintf "unknown message %S" (String.trim line))
  end

let pp_from_manager ppf = function
  | Scenario_result r ->
      Format.fprintf ppf "result #%d: %s (%.1fms)" r.seq
        (Outcome.status_to_string r.status)
        r.duration_ms
  | Manager_error { seq; message } -> Format.fprintf ppf "error #%d: %s" seq message
