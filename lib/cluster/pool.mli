(** Multicore execution backend: the explorer-facing session loop over
    the work-stealing {!Runtime} (§6.1, §7.7 — the architecture
    {!Simulation} only models).

    The explorer thread keeps a sliding window of up to [batch_size]
    candidates in flight: it submits to the runtime while the window has
    room and otherwise merges the oldest outstanding outcome, released
    by the runtime's reorder buffer strictly in submission order. There
    is no batch barrier — generation overlaps execution, and one slow
    test delays only its own release, not a whole batch. Because
    generation and merging both happen sequentially on the explorer
    thread under a schedule that is a pure function of the seed, the
    window sequence and the iteration count, the explored-point history
    {e never} depends on [jobs], [inflight], completion order or how the
    OS schedules domains. A campaign is therefore replayable at any
    parallelism.

    Deterministic executors additionally get a scenario-keyed outcome
    cache: a repeated candidate (common late in a beam search, and under
    random search on small spaces) is served from the cache without
    occupying a worker. Cache lookups happen on the explorer thread in
    submission order, so hit counts are deterministic too. *)

type executor =
  | Pure of Afex.Executor.t
      (** Deterministic executor: outcome is a function of the scenario
          alone. Eligible for memoization. *)
  | Seeded of {
      total_blocks : int;
      description : string;
      run : Afex_stats.Rng.t -> Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t;
    }
      (** Stochastic executor (e.g. {!Afex_injector.Engine.nondeterminism}
          models): each task receives its own RNG stream, split off the
          session master at submission time in submission order, so runs
          replay exactly for a fixed seed regardless of [jobs]. Never
          memoized. *)
  | Async of Afex.Executor.async
      (** Latency-bound executor with a nonblocking start/poll split
          (e.g. a simulated slow target, or a wrapped fork/exec'd
          process): the pool multiplexes up to [inflight] of these from a
          single-domain event loop ({!Async_executor}) instead of
          burning a worker domain per in-flight test. Deterministic by
          contract — the outcome must be a function of the scenario
          alone — and therefore memoized like [Pure]. *)

type t
(** A running pool: a {!Runtime} handle — [jobs] local worker domains
    plus one proxy domain per remote manager, each owning a
    work-stealing deque. With [jobs = 1] and no remotes, no domain is
    spawned and tasks run inline on the caller. *)

val create :
  ?remotes:Remote_manager.spec list ->
  ?inflight:int ->
  ?request_timeout_ms:int ->
  jobs:int ->
  executor ->
  t
(** Spawns the worker domains. The explorer feeds their per-worker
    deques round-robin; a worker whose deque runs dry steals from a
    random victim, so one slow scenario never idles the rest of the
    fleet. Each remote spec gets a dedicated proxy domain that ships
    stolen scenarios to its manager over the wire and falls back to
    running them locally if the manager fails (dead, exhausted retries,
    byzantine replies) — so remotes affect throughput, never the
    explored-point history. Remote connections are dialed lazily on
    first use. [Seeded] tasks are never sent remotely (their RNG stream
    cannot cross the wire).

    [inflight] (default 1) switches the pool to single-domain event-loop
    mode when [> 1] (an [Async] executor switches unconditionally): up to
    [inflight] tests are kept concurrently in flight by {!Async_executor}
    — remotes become pipelined connections on the same loop rather than
    proxy domains, and [request_timeout_ms] bounds how long a straggling
    manager may hold any one of them. The explored-point history is
    identical at every [inflight] value (and to the Domain path at equal
    [batch_size]): results merge in submission order regardless of
    completion order.
    @raise Invalid_argument if [jobs < 0], [jobs = 0] with no remotes,
    [inflight < 1], or event-loop mode is combined with [jobs > 1]. *)

val jobs : t -> int

val inflight : t -> int
(** 1 unless the pool is in event-loop mode. *)

val async_stats : t -> Async_executor.stats option
(** Event-loop counters, when in event-loop mode. *)

val remote_stats : t -> (string * Remote_manager.stats) list
(** One [(name, stats)] per remote manager, in [create] order. *)

val shutdown : t -> unit
(** Closes the queue and joins all worker domains. Idempotent. *)

type stats = {
  executed : int;  (** scenarios actually run on a worker *)
  cache_hits : int;  (** outcomes served from the memo cache *)
  batches : int;  (** scheduler rounds observed this session *)
  remote_runs : int;  (** scenarios whose outcome came over the wire *)
  remote_fallbacks : int;
      (** remote attempts that failed and were re-run locally *)
  wire_downgrades : int;
      (** remote connections that fell back to wire protocol v1 because
          the manager rejected the preferred version *)
  wall_ms : float;  (** real elapsed time of the session loop *)
}

val session :
  ?scheduler:Scheduler.t ->
  ?transform:(Afex_faultspace.Point.t -> Afex_faultspace.Point.t) ->
  ?stop:Afex.Session.stop ->
  ?time_budget_ms:float ->
  ?checkpoint:Checkpoint.t ->
  ?batch_size:int ->
  ?memoize:bool ->
  ?sync_every:int ->
  iterations:int ->
  t ->
  Afex.Config.t ->
  Afex_faultspace.Subspace.t ->
  Afex.Session.result * stats
(** Parallel counterpart of {!Afex.Session.run} on an existing pool.

    [batch_size] (default 32) is the in-flight window: the explorer
    submits a candidate whenever fewer than that many are outstanding,
    and otherwise merges the oldest outstanding outcome — generation
    overlaps execution, with no barrier between them. [stop] targets and
    [time_budget_ms] are checked at submission time against the merged
    prefix (plus per-case during the merge for [stop_iteration]), so
    they too are [jobs]-independent. With [batch_size = 1] the schedule
    degenerates to exactly {!Afex.Session.run}'s candidate stream.

    [memoize] (default [true]) enables the outcome cache for [Pure]
    executors; it is ignored for [Seeded] ones.

    [sync_every] (default 512) spaces the schedule's quiescent sync
    watermarks: submissions never cross a multiple of [sync_every] until
    everything before it has merged, draining the window there. The
    drain is part of the schedule whether or not a checkpoint is armed —
    it is where cadence snapshots are written — so the explored history
    is a function of (seed, window sequence, [sync_every], iterations)
    and nothing else.

    [scheduler] hands window control (and its telemetry) to a
    {!Scheduler}: each round of [Scheduler.window] merges uses the
    window the controller chose, phase timings are fed back through
    [Scheduler.observe] (with the reorder buffer's head-of-line wait as
    the stall measurement), and in event-loop mode the executor's
    [inflight] (plus each remote connection's credit) is retuned to the
    window at every round boundary. Since outcomes still merge in
    submission order, the explored history depends only on the seed and
    the window {e sequence} — which the scheduler's trace records, so an
    adaptive run replays bit-identically via [Scheduler.Replay].

    [checkpoint] arms crash-safe campaign persistence: a fresh
    {!Checkpoint.start} handle writes a base snapshot before any work,
    journals every merged outcome at release, and snapshots at the
    handle's cadence on the next sync watermark (where nothing is in
    flight); a {!Checkpoint.resume} handle first restores the snapshot,
    then replays the journaled outcomes — applied without re-execution,
    flowing through the same sliding-window schedule — before generating
    new work. Because the explorer and the per-candidate RNG streams are
    deterministic, the resulting history (and every export derived from
    it) is byte-for-byte the history the uninterrupted run would have
    produced.
    @raise Invalid_argument when combined with [stop] (a predicate
    cannot be captured in a snapshot); @raise Failure when the snapshot
    or journal contradicts the regenerated campaign. *)

val run :
  ?scheduler:Scheduler.t ->
  ?transform:(Afex_faultspace.Point.t -> Afex_faultspace.Point.t) ->
  ?stop:Afex.Session.stop ->
  ?time_budget_ms:float ->
  ?checkpoint:Checkpoint.t ->
  ?batch_size:int ->
  ?memoize:bool ->
  ?sync_every:int ->
  ?remotes:Remote_manager.spec list ->
  ?inflight:int ->
  ?request_timeout_ms:int ->
  jobs:int ->
  iterations:int ->
  Afex.Config.t ->
  Afex_faultspace.Subspace.t ->
  executor ->
  Afex.Session.result * stats
(** [create], {!session}, [shutdown] — the one-shot convenience. *)
