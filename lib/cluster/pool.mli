(** Multicore execution backend: a real [Domain]-based worker pool
    (§6.1, §7.7 — the architecture {!Simulation} only models).

    One explorer thread generates candidate batches; [jobs] worker
    domains execute them over a bounded shared queue; outcomes are merged
    back into the explorer in submission order. Because candidate
    generation and merging both happen sequentially on the explorer
    thread, the explored-point history depends only on the seed and the
    batch size — {e never} on [jobs] or on how the OS schedules the
    domains. A campaign is therefore replayable at any parallelism.

    Deterministic executors additionally get a scenario-keyed outcome
    cache: a repeated candidate (common late in a beam search, and under
    random search on small spaces) is served from the cache without
    occupying a worker. Cache lookups happen on the explorer thread in
    submission order, so hit counts are deterministic too. *)

type executor =
  | Pure of Afex.Executor.t
      (** Deterministic executor: outcome is a function of the scenario
          alone. Eligible for memoization. *)
  | Seeded of {
      total_blocks : int;
      description : string;
      run : Afex_stats.Rng.t -> Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t;
    }
      (** Stochastic executor (e.g. {!Afex_injector.Engine.nondeterminism}
          models): each task receives its own RNG stream, split per batch
          and per task in submission order from the session seed, so runs
          replay exactly for a fixed seed regardless of [jobs]. Never
          memoized. *)
  | Async of Afex.Executor.async
      (** Latency-bound executor with a nonblocking start/poll split
          (e.g. a simulated slow target, or a wrapped fork/exec'd
          process): the pool multiplexes up to [inflight] of these from a
          single-domain event loop ({!Async_executor}) instead of
          burning a worker domain per in-flight test. Deterministic by
          contract — the outcome must be a function of the scenario
          alone — and therefore memoized like [Pure]. *)

type t
(** A running pool: [jobs] local worker domains plus one proxy domain per
    remote manager, all blocked on the same work queue. With [jobs = 1]
    and no remotes, no domain is spawned and tasks run inline on the
    caller. *)

val create :
  ?remotes:Remote_manager.spec list ->
  ?inflight:int ->
  ?request_timeout_ms:int ->
  jobs:int ->
  executor ->
  t
(** Spawns the worker domains. Each remote spec gets a dedicated proxy
    domain that ships scenarios to its manager over the wire and falls
    back to running them locally if the manager fails (dead, exhausted
    retries, byzantine replies) — so remotes affect throughput, never the
    explored-point history. Remote connections are dialed lazily on first
    use. [Seeded] tasks are never sent remotely (their RNG stream cannot
    cross the wire).

    [inflight] (default 1) switches the pool to single-domain event-loop
    mode when [> 1] (an [Async] executor switches unconditionally): up to
    [inflight] tests are kept concurrently in flight by {!Async_executor}
    — remotes become pipelined connections on the same loop rather than
    proxy domains, and [request_timeout_ms] bounds how long a straggling
    manager may hold any one of them. The explored-point history is
    identical at every [inflight] value (and to the Domain path at equal
    [batch_size]): results merge in submission order regardless of
    completion order.
    @raise Invalid_argument if [jobs < 0], [jobs = 0] with no remotes,
    [inflight < 1], or event-loop mode is combined with [jobs > 1]. *)

val jobs : t -> int

val inflight : t -> int
(** 1 unless the pool is in event-loop mode. *)

val async_stats : t -> Async_executor.stats option
(** Event-loop counters, when in event-loop mode. *)

val remote_stats : t -> (string * Remote_manager.stats) list
(** One [(name, stats)] per remote manager, in [create] order. *)

val shutdown : t -> unit
(** Closes the queue and joins all worker domains. Idempotent. *)

type stats = {
  executed : int;  (** scenarios actually run on a worker *)
  cache_hits : int;  (** outcomes served from the memo cache *)
  batches : int;
  remote_runs : int;  (** scenarios whose outcome came over the wire *)
  remote_fallbacks : int;
      (** remote attempts that failed and were re-run locally *)
  wall_ms : float;  (** real elapsed time of the session loop *)
}

val session :
  ?scheduler:Scheduler.t ->
  ?transform:(Afex_faultspace.Point.t -> Afex_faultspace.Point.t) ->
  ?stop:Afex.Session.stop ->
  ?time_budget_ms:float ->
  ?checkpoint:Checkpoint.t ->
  ?batch_size:int ->
  ?memoize:bool ->
  iterations:int ->
  t ->
  Afex.Config.t ->
  Afex_faultspace.Subspace.t ->
  Afex.Session.result * stats
(** Parallel counterpart of {!Afex.Session.run} on an existing pool.

    [batch_size] (default 32) is the in-flight window: the explorer
    issues up to that many candidates, the pool executes them in
    parallel, and outcomes are reported back in submission order before
    the next batch is generated. [stop] targets and [time_budget_ms] are
    checked at batch boundaries (plus per-case during the merge for
    [stop_iteration]), so they too are [jobs]-independent. With
    [batch_size = 1] the schedule degenerates to exactly
    {!Afex.Session.run}'s candidate stream.

    [memoize] (default [true]) enables the outcome cache for [Pure]
    executors; it is ignored for [Seeded] ones.

    [scheduler] hands window control (and its telemetry) to a
    {!Scheduler}: each batch uses [Scheduler.window] instead of
    [batch_size], phase timings are fed back through
    [Scheduler.observe], and in event-loop mode the executor's
    [inflight] (plus each remote connection's credit) is retuned to the
    window at every batch boundary. Since outcomes still merge in
    submission order, the explored history depends only on the seed and
    the window {e sequence} — which the scheduler's trace records, so an
    adaptive run replays bit-identically via [Scheduler.Replay].

    [checkpoint] arms crash-safe campaign persistence: a fresh
    {!Checkpoint.start} handle writes a base snapshot before the first
    batch, journals every batch header and reported outcome, and
    snapshots at the handle's cadence (always at batch boundaries, where
    no candidate is in flight); a {!Checkpoint.resume} handle first
    restores the snapshot, then replays the journaled batches —
    journaled outcomes are applied without re-execution, a half-journaled
    batch's tail is re-executed — before generating new work. Because
    the explorer and the per-batch RNG streams are deterministic, the
    resulting history (and every export derived from it) is byte-for-byte
    the history the uninterrupted run would have produced.
    @raise Invalid_argument when combined with [stop] (a predicate
    cannot be captured in a snapshot); @raise Failure when the snapshot
    or journal contradicts the regenerated campaign. *)

val run :
  ?scheduler:Scheduler.t ->
  ?transform:(Afex_faultspace.Point.t -> Afex_faultspace.Point.t) ->
  ?stop:Afex.Session.stop ->
  ?time_budget_ms:float ->
  ?checkpoint:Checkpoint.t ->
  ?batch_size:int ->
  ?memoize:bool ->
  ?remotes:Remote_manager.spec list ->
  ?inflight:int ->
  ?request_timeout_ms:int ->
  jobs:int ->
  iterations:int ->
  Afex.Config.t ->
  Afex_faultspace.Subspace.t ->
  executor ->
  Afex.Session.result * stats
(** [create], {!session}, [shutdown] — the one-shot convenience. *)
