module Outcome = Afex_injector.Outcome

type t = {
  id : int;
  executor : Afex.Executor.t;
  startup_ms : float;
  cleanup_ms : float;
  mutable tests_run : int;
  mutable busy_ms : float;
}

let create ~id ~executor ?(startup_ms = 3.0) ?(cleanup_ms = 3.0) () =
  { id; executor; startup_ms; cleanup_ms; tests_run = 0; busy_ms = 0.0 }

let id t = t.id
let tests_run t = t.tests_run
let busy_ms t = t.busy_ms

let run_scenario t scenario =
  let outcome = t.executor.Afex.Executor.run_scenario scenario in
  let elapsed = t.startup_ms +. outcome.Outcome.duration_ms +. t.cleanup_ms in
  t.tests_run <- t.tests_run + 1;
  t.busy_ms <- t.busy_ms +. elapsed;
  (outcome, elapsed)

let handle t = function
  | Message.Shutdown -> None
  | Message.Run_scenario { seq; scenario } -> (
      match run_scenario t scenario with
      | exception Invalid_argument message ->
          Some (Message.Manager_error { seq; message }, 0.1)
      | outcome, elapsed ->
          Some (Message.Scenario_result (Message.report_of_outcome ~seq outcome), elapsed))
