(** The unified execution runtime: one [submit]/[poll]/[drain] surface
    over every way AFEX can run a test, plus the two data structures the
    barrierless pool is built from.

    The batch-barrier pool alternated generation and execution: the
    explorer generated a whole window, blocked until every slot came
    back, then merged. The scheduler telemetry from the adaptive-window
    work showed that barrier is a first-order cost — [merge_stall_ms]
    comparable to [exec_ms] at large windows. This module removes it:

    - {!Deque}: a Chase–Lev-style work-stealing deque per worker. The
      explorer (the single producer) pushes tasks round-robin; a worker
      whose own deque runs dry steals from a random victim, so load
      imbalance — one slow scenario, one stolen worker — never idles the
      rest of the fleet.
    - {!Reorder}: a submission-indexed reorder buffer. Completions
      arrive in whatever order workers finish; the buffer releases them
      to the explorer strictly in submission order, so the explored
      history, feedback weights and exports are bit-identical to the
      sequential run at any parallelism.
    - {!t}: the capability-based runtime handle. Three backends —
      inline (execute on the caller), work-stealing Domains (local
      workers plus remote-manager proxies), and the single-domain async
      event loop — behind one interface, so {!Pool}, {!Scheduler},
      {!Checkpoint} and the future multi-tenant coordinator schedule
      heterogeneous workers without knowing which backend runs them. *)

(** A submission-indexed reorder buffer: out-of-order [offer]s, strictly
    in-order release. Single-consumer; pure bookkeeping (no locks), so
    it property-tests in isolation. *)
module Reorder : sig
  type 'a t

  val create : ?next:int -> unit -> 'a t
  (** [next] (default 0) is the first sequence number to release. *)

  val offer : 'a t -> seq:int -> 'a -> unit
  (** Buffer the value for [seq]. Sequences may arrive in any order and
      with gaps; each is accepted exactly once.
      @raise Invalid_argument on a duplicate or already-released [seq]. *)

  val pop : 'a t -> 'a option
  (** The value at the release watermark, advancing it — or [None] while
      that sequence has not been offered (a head-of-line gap), no matter
      how many later sequences are buffered. *)

  val peek : 'a t -> 'a option
  (** {!pop} without advancing. *)

  val watermark : 'a t -> int
  (** The next sequence to release. Monotone: grows by exactly 1 per
      successful {!pop}. *)

  val buffered : 'a t -> int
  (** Offered-but-unreleased values (the out-of-order backlog). *)
end

(** A Chase–Lev-style work-stealing deque, adapted to AFEX's shape: the
    {e explorer} is the single owner ([push]/[pop] at the bottom), and
    every worker — including the deque's nominal owner-worker — takes
    from the top with a CAS {!steal}. Tasks never spawn subtasks, so the
    only contended operation is steal/steal, resolved by the CAS on
    [top]; push and pop stay fence-free single-owner operations. *)
module Deque : sig
  type 'a t

  val create : ?capacity:int -> unit -> 'a t
  (** Initial ring capacity (default 64); the owner grows it on demand,
      never blocking thieves.
      @raise Invalid_argument if [capacity < 1]. *)

  val push : 'a t -> 'a -> unit
  (** Owner only: append at the bottom. *)

  val pop : 'a t -> 'a option
  (** Owner only: take back the most recently pushed element (LIFO end),
      racing thieves for the last one. *)

  val steal : 'a t -> 'a option
  (** Any domain: take the oldest element (FIFO end). Lock-free; [None]
      when empty or when a race was lost and the deque drained. *)

  val length : 'a t -> int
  (** A snapshot; exact only when quiescent. *)
end

(** {2 The runtime} *)

type task = {
  seq : int;  (** submission index; comes back with the completion *)
  scenario : Afex_faultspace.Scenario.t option;
      (** what a remote proxy ships over the wire; [None] pins the task
          local (seeded executors, whose RNG closure cannot travel) *)
  run : unit -> Afex_injector.Outcome.t;
      (** the synchronous form: Domain workers and the inline backend *)
  start : unit -> Afex.Executor.job;
      (** the nonblocking form the event loop multiplexes *)
}

type capabilities = {
  kind : string;  (** ["inline"], ["domains"] or ["event-loop"] *)
  workers : int;
      (** executions the backend holds concurrently: 1 inline, local
          domains + remote proxies for the stealing backend, [inflight]
          for the event loop *)
  stealing : bool;  (** idle workers steal from a random victim *)
  pipelined : bool;  (** completions multiplex on one domain *)
  remote : bool;  (** some tasks may execute across the wire *)
}

type t

val inline : unit -> t
(** Tasks execute synchronously at {!submit} on the calling domain — the
    [jobs = 1] degenerate case, and the determinism baseline every other
    backend must reproduce. *)

val domains :
  ?steal_seed:int ->
  ?remotes:Remote_manager.spec list ->
  total_blocks:int ->
  jobs:int ->
  unit ->
  t
(** The work-stealing backend: [jobs] local worker domains plus one
    proxy domain per remote spec, each owning a deque the explorer feeds
    round-robin. A dry worker steals from a random victim ([steal_seed]
    seeds the per-worker victim streams — placement only, never the
    history). A proxy ships each stolen task's scenario to its manager
    and falls back to running it locally on any remote failure, so a bad
    manager costs throughput, never correctness.
    @raise Invalid_argument if [jobs < 0] or there are no workers at
    all. *)

val event_loop : Async_executor.t -> t
(** Wrap the single-domain async event loop: {!submit} enqueues on the
    loop, {!poll} runs it. The runtime owns the executor and closes it
    on {!shutdown}. *)

val capabilities : t -> capabilities

val submit : t -> task -> unit
(** Hand one task to the backend. Never blocks on execution (the inline
    backend runs the task, by definition). Sequence numbers are the
    caller's; they come back verbatim in completions. *)

val poll : t -> block:bool -> (int * (Afex_injector.Outcome.t, exn) result) list
(** Completions since the last poll, in completion order (not submission
    order — that is {!Reorder}'s job). [block = true] waits until at
    least one completion is available; returns [[]] only when nothing is
    outstanding. [block = false] returns immediately after giving the
    backend a chance to make progress. *)

val outstanding : t -> int
(** Submitted tasks whose completions have not been polled yet. *)

val drain : t -> (int * (Afex_injector.Outcome.t, exn) result) list
(** Block until every outstanding task completes; the tail of
    completions in completion order. The quiescent point the checkpoint
    layer snapshots at. *)

val set_window : t -> int -> unit
(** Retune the backend's concurrency to the scheduler's window: the
    event loop adjusts [inflight] (and per-connection credit); the other
    backends take their concurrency from the submission window itself
    and ignore it. @raise Invalid_argument if the window is not
    positive. *)

val async : t -> Async_executor.t option
(** The wrapped event loop, when the backend is one. *)

val remote_runs : t -> int
(** Tasks whose outcome came over the wire (both backends). *)

val remote_fallbacks : t -> int
(** Remote attempts that failed and re-ran locally. *)

val remote_stats : t -> (string * Remote_manager.stats) list

val wire_downgrades : t -> int
(** Connections that fell back to wire protocol v1 because the manager
    rejected the preferred version, summed over all remotes. *)

val shutdown : t -> unit
(** Join worker domains / close remote connections. Outstanding tasks
    are still executed (domains drain their deques before exiting), but
    their completions are dropped. Idempotent. *)
