(** Crash-safe campaign checkpoints: periodic snapshots plus a
    write-ahead journal of reported outcomes.

    A checkpoint directory holds two files:

    - [snapshot.afex] — the full explorer/scheduler/pool state at a
      quiescent reorder-buffer watermark (released = submitted), written
      atomically (temp file + [rename]) in a versioned, checksummed,
      line-oriented codec built from the {!Message} field codecs and the
      {!Transport} CRC discipline.
    - [wal.log] — one checksummed line per released outcome since the
      last snapshot, appended {e before} progress is considered durable.
      Outcomes release in submission order, so the journal is strictly
      ascending in the absolute iteration each line carries; no batch
      framing is needed.

    Kill the process anywhere — mid-append, mid-snapshot, between the
    snapshot [rename] and the journal truncation — and [--resume]
    reconstructs the exact state: the snapshot restores the last
    watermark, the journal tail replays the outcomes released after it,
    and the deterministic explorer regenerates everything else. The
    final export is byte-identical to the uninterrupted run's (proven in
    CI by a kill -9 harness).

    Durability is against process death, not media loss: files are
    flushed to the OS on every append but not fsynced. *)

module Snapshot : sig
  type t = {
    meta : (string * string) list;
        (** campaign identity: every flag that shapes the search, checked
            on resume so a snapshot cannot silently continue under a
            different configuration *)
    batches : int;  (** completed scheduler rounds *)
    master_state : int64;  (** the pool's master RNG position *)
    scheduler : Scheduler.snapshot option;
    explorer : Afex.Explorer.Snapshot.t;
  }

  val encode : t -> string
  (** Versioned ([afex-checkpoint 3]), checksummed, line-oriented; the
      exact bytes written to [snapshot.afex]. Encoding is a pure function
      of the snapshot, so equal states produce equal files. *)

  val decode : string -> (t, string) result
  (** Total inverse of {!encode}: truncation, bit flips, unknown
      versions and structural damage all return [Error], never raise. *)
end

type hooks = {
  on_append : int -> unit;
      (** called after every journal append with the running append
          count — the kill-9 test harness raises from here to simulate a
          crash at a precise write *)
  after_rename : unit -> unit;
      (** called between the snapshot [rename] and the journal
          truncation — the crash window that makes stale journal entries
          possible *)
}

val no_hooks : hooks

type t

val start :
  ?hooks:hooks -> ?every:int -> dir:string -> (string * string) list ->
  (t, string) result
(** Open [dir] (created if missing) for a fresh campaign: an empty
    journal, no snapshot yet. [every] is the snapshot cadence in
    reported outcomes (default 500). [Error] if the directory already
    holds a snapshot — resuming must be explicit. *)

val resume :
  ?hooks:hooks -> ?every:int -> dir:string -> (string * string) list ->
  (t, string) result
(** Load [dir]'s snapshot, verify the campaign metadata matches, parse
    the journal tail (dropping at most one torn final line, rejecting
    any other corruption), and queue the journaled outcomes for replay.
    Journal entries for iterations the snapshot already covers —
    possible when the crash hit between the snapshot rename and the
    journal truncation — are discarded; what remains must continue
    contiguously from the snapshot's iteration count. *)

val resumed : t -> bool
val dir : t -> string
val meta : t -> (string * string) list

val loaded_snapshot : t -> Snapshot.t option
(** The snapshot a {!resume} loaded; [None] after {!start}. *)

val next_replay : t -> (int * string * Message.run_report) option
(** Pop the next journaled outcome to replay, oldest first: the
    absolute iteration number, the candidate's point key, and the
    measured report. *)

val replay_pending : t -> bool

val due : t -> iterations:int -> bool
(** Whether the cadence calls for a snapshot — never while journaled
    outcomes are still waiting to replay (a snapshot truncates the
    journal, which would drop them). *)

val append_outcome :
  t -> point_key:string -> seq:int -> Afex_injector.Outcome.t -> unit
(** Journal one released outcome ([seq] is the absolute iteration
    number). One checksummed line, one [write]. *)

val write_snapshot : t -> iterations:int -> Snapshot.t -> unit
(** Atomically replace [snapshot.afex] and truncate the journal. *)

type stats = {
  was_resumed : bool;
  snapshots_written : int;
  wal_appends : int;
  replayed_records : int;  (** journaled outcomes applied without re-execution *)
}

val stats : t -> stats

val close : t -> unit
(** Close the journal. The checkpoint stays resumable. *)
