module Rng = Afex_stats.Rng
module Outcome = Afex_injector.Outcome

let src = Logs.Src.create "afex.runtime" ~doc:"Unified work-stealing runtime"

module Log = (val Logs.src_log src : Logs.LOG)

(* ------------------------------------------------------------------ *)
(* Reorder buffer                                                      *)
(* ------------------------------------------------------------------ *)

module Reorder = struct
  type 'a t = { mutable next : int; buf : (int, 'a) Hashtbl.t }

  let create ?(next = 0) () = { next; buf = Hashtbl.create 64 }

  let offer t ~seq v =
    if seq < t.next then
      invalid_arg
        (Printf.sprintf
           "Runtime.Reorder.offer: sequence %d was already released (watermark \
            %d)"
           seq t.next);
    if Hashtbl.mem t.buf seq then
      invalid_arg
        (Printf.sprintf "Runtime.Reorder.offer: duplicate sequence %d" seq);
    Hashtbl.replace t.buf seq v

  let peek t = Hashtbl.find_opt t.buf t.next

  let pop t =
    match Hashtbl.find_opt t.buf t.next with
    | None -> None
    | Some v ->
        Hashtbl.remove t.buf t.next;
        t.next <- t.next + 1;
        Some v

  let watermark t = t.next
  let buffered t = Hashtbl.length t.buf
end

(* ------------------------------------------------------------------ *)
(* Work-stealing deque                                                 *)
(* ------------------------------------------------------------------ *)

(* Chase–Lev with OCaml's sequentially consistent atomics. [top] only
   grows (thief CAS, or owner CAS for the last element); [bottom] is
   owner-written. Cells hold ['a option Atomic.t] so a thief racing a
   grow still reads a published value: the owner copies live logical
   indices into the new ring and never overwrites a live index in the
   old one (push grows instead of wrapping onto an unstolen slot). *)
module Deque = struct
  type 'a t = {
    top : int Atomic.t;
    bottom : int Atomic.t;
    ring : 'a option Atomic.t array Atomic.t;
  }

  let make_ring n = Array.init n (fun _ -> Atomic.make None)

  let create ?(capacity = 64) () =
    if capacity < 1 then invalid_arg "Runtime.Deque.create: capacity must be positive";
    { top = Atomic.make 0; bottom = Atomic.make 0; ring = Atomic.make (make_ring capacity) }

  let length q = max 0 (Atomic.get q.bottom - Atomic.get q.top)

  (* Owner only. Copy live indices [t, b) into a ring twice the size;
     thieves still holding the old ring read values that remain valid
     for any index they can successfully CAS. *)
  let grow q ring t b =
    let n = Array.length ring in
    let bigger = make_ring (2 * n) in
    for i = t to b - 1 do
      Atomic.set bigger.(i mod (2 * n)) (Atomic.get ring.(i mod n))
    done;
    Atomic.set q.ring bigger;
    bigger

  let push q x =
    let b = Atomic.get q.bottom and t = Atomic.get q.top in
    let ring = Atomic.get q.ring in
    let ring = if b - t >= Array.length ring then grow q ring t b else ring in
    Atomic.set ring.(b mod Array.length ring) (Some x);
    Atomic.set q.bottom (b + 1)

  let steal q =
    let rec go () =
      let t = Atomic.get q.top in
      (* [top] before [bottom]: a stale bottom can only under-estimate,
         so a thief never claims an index the owner is popping. *)
      let b = Atomic.get q.bottom in
      if t >= b then None
      else begin
        let ring = Atomic.get q.ring in
        let x = Atomic.get ring.(t mod Array.length ring) in
        if Atomic.compare_and_set q.top t (t + 1) then x else go ()
      end
    in
    go ()

  let pop q =
    let b = Atomic.get q.bottom - 1 in
    Atomic.set q.bottom b;
    let t = Atomic.get q.top in
    if b < t then begin
      (* Empty: restore the canonical empty state. *)
      Atomic.set q.bottom t;
      None
    end
    else begin
      let ring = Atomic.get q.ring in
      let x = Atomic.get ring.(b mod Array.length ring) in
      if b > t then x
      else begin
        (* Last element: race thieves for it via the CAS on [top]. *)
        let won = Atomic.compare_and_set q.top t (t + 1) in
        Atomic.set q.bottom (t + 1);
        if won then x else None
      end
    end
end

(* ------------------------------------------------------------------ *)
(* The runtime                                                         *)
(* ------------------------------------------------------------------ *)

type task = {
  seq : int;
  scenario : Afex_faultspace.Scenario.t option;
  run : unit -> Outcome.t;
  start : unit -> Afex.Executor.job;
}

type capabilities = {
  kind : string;
  workers : int;
  stealing : bool;
  pipelined : bool;
  remote : bool;
}

type completion = int * (Outcome.t, exn) result

(* Shared state of the stealing backend. Tasks travel explorer -> deque
   -> worker; completions travel worker -> explorer over a mutex'd MPSC
   queue. [version] existence-proofs new work for sleeping workers: it
   is bumped under [work_lock] after every push, and a worker only waits
   when a full scan found nothing AND the version is unchanged since
   before that scan — so a push can never slip between scan and sleep. *)
type stealing = {
  deques : task Deque.t array;
  mutable rr : int;  (* explorer-side round-robin submission cursor *)
  work_lock : Mutex.t;
  work_cond : Condition.t;
  mutable version : int;
  mutable closed : bool;
  done_lock : Mutex.t;
  done_cond : Condition.t;
  done_q : completion Queue.t;
  s_remote_runs : int Atomic.t;
  s_remote_fallbacks : int Atomic.t;
}

type backend =
  | Inline of completion Queue.t
  | Domains of stealing * unit Domain.t array * Remote_manager.t list
  | Event_loop of Async_executor.t

type t = {
  backend : backend;
  caps : capabilities;
  mutable live : int;  (* submitted, completion not yet polled *)
  mutable shut : bool;
}

(* ---- worker side -------------------------------------------------- *)

let push_completion s c =
  Mutex.lock s.done_lock;
  Queue.push c s.done_q;
  Condition.signal s.done_cond;
  Mutex.unlock s.done_lock

(* Own deque first (cheap CAS on an uncontended top most of the time),
   then every other deque starting from a seeded random victim. The
   victim order shifts work placement, never the merged history. *)
let find_task s self rng =
  match Deque.steal s.deques.(self) with
  | Some _ as found -> found
  | None ->
      let n = Array.length s.deques in
      if n = 1 then None
      else begin
        let offset = Rng.int rng (n - 1) in
        let rec probe k =
          if k >= n - 1 then None
          else
            let victim = (self + 1 + ((offset + k) mod (n - 1))) mod n in
            match Deque.steal s.deques.(victim) with
            | Some _ as found -> found
            | None -> probe (k + 1)
        in
        probe 0
      end

let run_local task = try Ok (task.run ()) with e -> Error e

(* A remote proxy ships the stolen task's scenario to its manager; any
   remote failure falls back to the local thunk, so a dead or byzantine
   manager costs throughput, never correctness. *)
let run_remote s rm task =
  match task.scenario with
  | None -> run_local task
  | Some scenario -> (
      match Remote_manager.run_scenario rm scenario with
      | Ok outcome ->
          Atomic.incr s.s_remote_runs;
          Ok outcome
      | Error _ ->
          Atomic.incr s.s_remote_fallbacks;
          run_local task)

let worker s self rng exec =
  let rec loop () =
    match find_task s self rng with
    | Some task ->
        push_completion s (task.seq, exec task);
        loop ()
    | None ->
        Mutex.lock s.work_lock;
        let v = s.version in
        Mutex.unlock s.work_lock;
        (* Re-scan after reading the version: anything pushed before the
           read is visible to this scan; anything pushed after bumps the
           version and fails the sleep condition below. *)
        (match find_task s self rng with
        | Some task ->
            push_completion s (task.seq, exec task);
            loop ()
        | None ->
            Mutex.lock s.work_lock;
            while s.version = v && not s.closed do
              Condition.wait s.work_cond s.work_lock
            done;
            let stop = s.closed && s.version = v in
            Mutex.unlock s.work_lock;
            if not stop then loop ())
  in
  loop ()

(* ---- construction ------------------------------------------------- *)

let inline () =
  {
    backend = Inline (Queue.create ());
    caps =
      { kind = "inline"; workers = 1; stealing = false; pipelined = false; remote = false };
    live = 0;
    shut = false;
  }

let domains ?(steal_seed = 0) ?(remotes = []) ~total_blocks ~jobs () =
  if jobs < 0 then invalid_arg "Runtime.domains: jobs must be non-negative";
  let rms = List.map (fun spec -> Remote_manager.create spec ~total_blocks) remotes in
  let workers = jobs + List.length rms in
  if workers = 0 then
    invalid_arg "Runtime.domains: need at least one worker (jobs or remotes)";
  let s =
    {
      deques = Array.init workers (fun _ -> Deque.create ());
      rr = 0;
      work_lock = Mutex.create ();
      work_cond = Condition.create ();
      version = 0;
      closed = false;
      done_lock = Mutex.create ();
      done_cond = Condition.create ();
      done_q = Queue.create ();
      s_remote_runs = Atomic.make 0;
      s_remote_fallbacks = Atomic.make 0;
    }
  in
  let spawn i exec =
    Domain.spawn (fun () -> worker s i (Rng.create (steal_seed + i)) exec)
  in
  let local = Array.init jobs (fun i -> spawn i run_local) in
  let remote =
    Array.of_list
      (List.mapi (fun k rm -> spawn (jobs + k) (run_remote s rm)) rms)
  in
  {
    backend = Domains (s, Array.append local remote, rms);
    caps =
      {
        kind = "domains";
        workers;
        stealing = workers > 1;
        pipelined = false;
        remote = rms <> [];
      };
    live = 0;
    shut = false;
  }

let event_loop async =
  {
    backend = Event_loop async;
    caps =
      {
        kind = "event-loop";
        workers = Async_executor.inflight async;
        stealing = false;
        pipelined = true;
        remote = Async_executor.remote_stats async <> [];
      };
    live = 0;
    shut = false;
  }

let capabilities t = t.caps
let outstanding t = t.live
let async t = match t.backend with Event_loop a -> Some a | Inline _ | Domains _ -> None

(* ---- the submit/poll surface -------------------------------------- *)

let submit t task =
  if t.shut then invalid_arg "Runtime.submit: the runtime was shut down";
  t.live <- t.live + 1;
  match t.backend with
  | Inline q -> Queue.push (task.seq, run_local task) q
  | Event_loop a ->
      Async_executor.submit a ~tag:task.seq
        { Async_executor.scenario = task.scenario; start = task.start }
  | Domains (s, _, _) ->
      Deque.push s.deques.(s.rr) task;
      s.rr <- (s.rr + 1) mod Array.length s.deques;
      Mutex.lock s.work_lock;
      s.version <- s.version + 1;
      Condition.broadcast s.work_cond;
      Mutex.unlock s.work_lock

let poll t ~block =
  let completions =
    match t.backend with
    | Inline q ->
        let out = List.of_seq (Queue.to_seq q) in
        Queue.clear q;
        out
    | Event_loop a -> Async_executor.poll a ~block
    | Domains (s, _, _) ->
        Mutex.lock s.done_lock;
        if block && t.live > 0 then
          while Queue.is_empty s.done_q do
            Condition.wait s.done_cond s.done_lock
          done;
        let out = List.of_seq (Queue.to_seq s.done_q) in
        Queue.clear s.done_q;
        Mutex.unlock s.done_lock;
        out
  in
  t.live <- t.live - List.length completions;
  completions

let drain t =
  let rec go acc =
    if t.live = 0 then List.rev acc
    else go (List.rev_append (poll t ~block:true) acc)
  in
  go []

let set_window t w =
  if w < 1 then invalid_arg "Runtime.set_window: window must be positive";
  match t.backend with
  | Event_loop a -> Async_executor.set_inflight a w
  | Inline _ | Domains _ -> ()

(* ---- stats -------------------------------------------------------- *)

let remote_runs t =
  match t.backend with
  | Inline _ -> 0
  | Domains (s, _, _) -> Atomic.get s.s_remote_runs
  | Event_loop a -> (Async_executor.stats a).Async_executor.remote_runs

let remote_fallbacks t =
  match t.backend with
  | Inline _ -> 0
  | Domains (s, _, _) -> Atomic.get s.s_remote_fallbacks
  | Event_loop a -> (Async_executor.stats a).Async_executor.remote_fallbacks

let remote_stats t =
  match t.backend with
  | Inline _ -> []
  | Domains (_, _, rms) ->
      List.map (fun rm -> (Remote_manager.name rm, Remote_manager.stats rm)) rms
  | Event_loop a -> Async_executor.remote_stats a

let wire_downgrades t =
  List.fold_left
    (fun acc (_, s) -> acc + s.Remote_manager.wire_downgrades)
    0 (remote_stats t)

let shutdown t =
  if not t.shut then begin
    t.shut <- true;
    match t.backend with
    | Inline _ -> ()
    | Event_loop a -> Async_executor.close a
    | Domains (s, workers, rms) ->
        Mutex.lock s.work_lock;
        s.closed <- true;
        Condition.broadcast s.work_cond;
        Mutex.unlock s.work_lock;
        Array.iter Domain.join workers;
        List.iter Remote_manager.close rms;
        if t.live > 0 then
          Log.debug (fun m -> m "shutdown with %d completions unpolled" t.live)
  end
