(* afex: command-line front end.

   - afex targets                      list the built-in simulated targets
   - afex describe --target T          print the target's fault space
   - afex explore --target T ...       run a fault exploration session
   - afex inject --target T ...        replay a single fault injection
   - afex serve --target T --port P    run a node manager over TCP
   - afex parse FILE                   validate a fault space description

   The `inject` command is what the generated replay scripts call, so a
   result set exported from `explore` runs unmodified as a regression
   suite. *)

module Target = Afex_simtarget.Target
module Fault = Afex_injector.Fault
module Engine = Afex_injector.Engine
module Outcome = Afex_injector.Outcome
open Cmdliner

let targets_registry :
    (string * (unit -> Target.t) * (unit -> Afex_faultspace.Subspace.t)) list =
  [
    ("mysql", Afex_simtarget.Mysql.target, Afex_simtarget.Mysql.space);
    ("apache", Afex_simtarget.Apache.target, Afex_simtarget.Apache.space);
    ("coreutils", Afex_simtarget.Coreutils.target, Afex_simtarget.Coreutils.space);
    ( "ls",
      Afex_simtarget.Coreutils.ls_target,
      fun () ->
        Afex_simtarget.Spaces.standard ~min_call:1 ~max_call:2
          ~funcs:Afex_simtarget.Coreutils.ls_fig1_functions
          (Afex_simtarget.Coreutils.ls_target ()) );
    ("mongodb-0.8", Afex_simtarget.Mongodb.target_v08, Afex_simtarget.Mongodb.space_v08);
    ("mongodb-2.0", Afex_simtarget.Mongodb.target_v20, Afex_simtarget.Mongodb.space_v20);
  ]

let lookup_target name =
  match
    List.find_opt (fun (n, _, _) -> String.equal n name) targets_registry
  with
  | Some (_, target, space) -> Ok (target (), space ())
  | None ->
      Error
        (Printf.sprintf "unknown target %S (try: %s, replsim[:n=N,...])" name
           (String.concat ", " (List.map (fun (n, _, _) -> n) targets_registry)))

(* The replicated-consensus target is scenario-driven (its fault axes are
   ⟨round, replica, kind, peer⟩, not callsites), so it lives outside the
   Target.t registry: "replsim" or "replsim:n=9,rounds=500,seed=3,churn=7"
   resolves to a cluster whose executor wraps Replfault.run_scenario. *)
module Replsim = Afex_simtarget.Replsim
module Replfault = Afex_injector.Replfault

let parse_replsim name =
  let build params =
    let n = ref 9
    and rounds = ref None
    and seed = ref None
    and churn = ref None in
    let parse_one kv =
      match String.index_opt kv '=' with
      | None -> Error (Printf.sprintf "replsim: expected KEY=INT, got %S" kv)
      | Some i -> (
          let key = String.sub kv 0 i in
          let v = String.sub kv (i + 1) (String.length kv - i - 1) in
          match int_of_string_opt v with
          | None -> Error (Printf.sprintf "replsim: %s: not an integer: %S" key v)
          | Some v -> (
              match key with
              | "n" ->
                  n := v;
                  Ok ()
              | "rounds" ->
                  rounds := Some v;
                  Ok ()
              | "seed" ->
                  seed := Some v;
                  Ok ()
              | "churn" ->
                  churn := Some v;
                  Ok ()
              | _ ->
                  Error
                    (Printf.sprintf
                       "replsim: unknown parameter %S (try n, rounds, seed, churn)"
                       key)))
    in
    let rec go = function
      | [] -> (
          try
            Ok
              (Replsim.make ?rounds:!rounds ?seed:!seed ?churn_period:!churn
                 ~n:!n ())
          with Invalid_argument m -> Error m)
      | kv :: rest -> ( match parse_one kv with Ok () -> go rest | Error _ as e -> e)
    in
    go params
  in
  if String.equal name "replsim" then Some (build [])
  else if String.length name > 8 && String.sub name 0 8 = "replsim:" then
    Some
      (build
         (String.split_on_char ','
            (String.sub name 8 (String.length name - 8))))
  else None

let replsim_executor cluster =
  Afex.Executor.of_scenario_fn
    ~total_blocks:(Replsim.total_blocks cluster)
    ~description:(Replfault.description cluster)
    (Replfault.run_scenario cluster)

(* Exit-on-error variant for commands where a replsim spec is valid. *)
let parse_replsim_exn name =
  match parse_replsim name with
  | None -> None
  | Some (Ok cluster) -> Some cluster
  | Some (Error e) ->
      prerr_endline ("afex: " ^ e);
      exit 2

(* A --manager argument is HOST:PORT; the straggler timeout keeps a dead
   manager from stalling the campaign (its scenarios are requeued on a
   local worker after the retry budget runs out). *)
let parse_manager ~wire ~flush_bytes s =
  let fail () =
    Error (Printf.sprintf "afex: --manager %S: expected HOST:PORT" s)
  in
  match String.rindex_opt s ':' with
  | None -> fail ()
  | Some i -> (
      let host = String.sub s 0 i in
      let port = String.sub s (i + 1) (String.length s - i - 1) in
      match int_of_string_opt port with
      | Some p when p > 0 && p < 65536 && host <> "" ->
          Ok
            (Afex_cluster.Remote_manager.tcp_spec ~recv_timeout_ms:10_000 ~wire
               ~flush_bytes ~host ~port:p ())
      | Some _ | None -> fail ())

(* --- common arguments --- *)

let target_arg =
  let doc = "Simulated system under test." in
  Arg.(required & opt (some string) None & info [ "target"; "t" ] ~docv:"NAME" ~doc)

let seed_arg =
  let doc = "PRNG seed; equal seeds reproduce sessions exactly." in
  Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N" ~doc)

let verbose_arg =
  let doc = "Log exploration progress to stderr (-v for info, -vv for per-test detail)." in
  Arg.(value & flag_all & info [ "v"; "verbose" ] ~doc)

let setup_logging verbosity =
  Logs.set_reporter (Logs_fmt.reporter ());
  Logs.set_level
    (match List.length verbosity with
    | 0 -> Some Logs.Warning
    | 1 -> Some Logs.Info
    | _ -> Some Logs.Debug)

(* --- afex targets --- *)

let targets_cmd =
  let run () =
    List.iter
      (fun (name, target, space) ->
        let t = target () in
        Format.printf "%-12s %a@.             fault space: %d faults@." name
          Target.pp_summary t
          (Afex_faultspace.Subspace.cardinality (space ()));
        let total = Target.total_blocks t
        and recovery = Target.recovery_blocks_total t in
        if total > 0 then
          Format.printf
            "             rarity: %.1f%% recovery-only blocks — the rare \
             frontier `explore --rarity` rewards@."
            (100.0 *. float_of_int recovery /. float_of_int total))
      targets_registry;
    let c = Replsim.make ~n:9 () in
    Format.printf "%-12s %a@.             fault space: %d faults@." "replsim"
      Replsim.pp_summary c
      (Afex_faultspace.Subspace.cardinality (Replfault.space c))
  in
  Cmd.v (Cmd.info "targets" ~doc:"List the built-in simulated targets")
    Term.(const run $ const ())

(* --- afex describe --- *)

let describe_cmd =
  let profile_arg =
    let doc =
      "Emit the per-function error profile (one subspace per (function, \
       errno) pair, as LFI's callsite analyzer would) instead of the \
       standard 3-axis search space."
    in
    Arg.(value & flag & info [ "profile" ] ~doc)
  in
  let run target profile =
    (* On stderr, like the rarity hint: stdout stays pipeable. *)
    let wire_hint () =
      Format.eprintf
        "wire: negotiates protocol v1-v%d (v2 = coalesced binary frames with \
         per-connection stack interning; pin with `explore --wire` / `serve \
         --wire`)@."
        Afex_cluster.Message.protocol_version_max
    in
    match parse_replsim_exn target with
    | Some cluster ->
        if profile then begin
          prerr_endline
            "afex: --profile needs a callsite-instrumented target; replsim's \
             axes are round/replica/kind/peer";
          exit 2
        end;
        Format.printf "%a@." Replsim.pp_summary cluster;
        Format.printf "single-arm fault space:@.  %a@." Afex_faultspace.Subspace.pp
          (Replfault.space cluster);
        Format.printf "2-arm compound space (--multi):@.  %a@."
          Afex_faultspace.Subspace.pp
          (Replfault.multi_space ~arms:2 cluster);
        Format.printf
          "rarity: %d coverage blocks (%d per replica); recovery/election \
           blocks are hit only under correlated faults, so `explore --rarity \
           --mask` with the default cutoff 0.05 targets them@."
          (Replsim.total_blocks cluster)
          Replsim.blocks_per_replica;
        wire_hint ()
    | None -> (
    match lookup_target target with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok (t, sub) ->
        (* On stderr: describe's stdout is a valid FSDL document and stays
           pipeable into `afex parse`. *)
        let rarity_hint () =
          let total = Target.total_blocks t
          and recovery = Target.recovery_blocks_total t in
          if total > 0 then
            Format.eprintf
              "rarity: %d blocks, %d recovery-only (%.1f%%). A block is \
               rare while hit on fewer than --rarity-cutoff of tests; the \
               default 0.05 keeps anything reached less than once per 20 \
               tests on the rewarded frontier (tuning recipe: ADAPTING.md).@."
              total recovery
              (100.0 *. float_of_int recovery /. float_of_int total)
        in
        if profile then begin
          print_string (Afex_simtarget.Tracer.describe_string t);
          rarity_hint ();
          wire_hint ()
        end
        else begin
          let funcs =
            match Afex_faultspace.Axis.kind (Afex_faultspace.Subspace.axis sub 1) with
            | Afex_faultspace.Axis.Symbols a -> Array.to_list a
            | Afex_faultspace.Axis.Range _ | Afex_faultspace.Axis.Subinterval _ -> []
          in
          let max_call =
            Afex_faultspace.Axis.cardinality (Afex_faultspace.Subspace.axis sub 2)
          in
          print_string (Afex_simtarget.Tracer.standard_description t ~funcs ~max_call);
          rarity_hint ();
          wire_hint ()
        end)
  in
  Cmd.v
    (Cmd.info "describe" ~doc:"Print a target's fault space description")
    Term.(const run $ target_arg $ profile_arg)

(* --- afex explore --- *)

let explore_cmd =
  let strategy_arg =
    let doc = "Search strategy: fitness, random, or exhaustive." in
    Arg.(
      value
      & opt
          (enum [ ("fitness", `Fitness); ("random", `Random); ("exhaustive", `Exhaustive) ])
          `Fitness
      & info [ "strategy"; "s" ] ~docv:"STRATEGY" ~doc)
  in
  let iterations_arg =
    let doc = "Number of fault injection tests to execute." in
    Arg.(value & opt int 1000 & info [ "iterations"; "n" ] ~docv:"N" ~doc)
  in
  let feedback_arg =
    let doc = "Enable the online redundancy-feedback loop (section 7.4)." in
    Arg.(value & flag & info [ "feedback" ] ~doc)
  in
  let rarity_arg =
    let doc =
      "Reward tests that cover rarely-hit basic blocks: a global hit-count \
       histogram feeds a fitness bonus of $(b,--rarity-weight) / (1 + hits \
       of the rarest block reached). Off by default, which keeps the \
       paper's fitness pipeline exactly."
    in
    Arg.(value & flag & info [ "rarity" ] ~doc)
  in
  let rarity_weight_arg =
    let doc = "Scale of the rarity bonus (implies nothing without $(b,--rarity))." in
    Arg.(
      value
      & opt float Afex.Config.default_rarity.Afex.Config.weight
      & info [ "rarity-weight" ] ~docv:"W" ~doc)
  in
  let rarity_cutoff_arg =
    let doc =
      "A block counts as rare while hit on fewer than $(docv) of the tests \
       observed so far (used by $(b,--mask) and the serve-side histogram)."
    in
    Arg.(
      value
      & opt float Afex.Config.default_rarity.Afex.Config.cutoff
      & info [ "rarity-cutoff" ] ~docv:"FRAC" ~doc)
  in
  let mask_arg =
    let doc =
      "FairFuzz-style mutation masking (requires $(b,--rarity)): when a \
       parent test reached a block still below the rarity cutoff, pin the \
       axes the sensitivity profile marks as critical and mutate only the \
       rest."
    in
    Arg.(value & flag & info [ "mask" ] ~doc)
  in
  let top_arg =
    let doc = "How many top faults to list in the report." in
    Arg.(value & opt int 10 & info [ "top" ] ~docv:"K" ~doc)
  in
  let replay_arg =
    let doc =
      "Write a replay regression suite for the crash cluster representatives to $(docv)."
    in
    Arg.(value & opt (some string) None & info [ "replay-out" ] ~docv:"FILE" ~doc)
  in
  let multi_arg =
    let doc = "Explore 2-fault compound scenarios instead of single faults." in
    Arg.(value & flag & info [ "multi" ] ~doc)
  in
  let seed_analysis_arg =
    let doc = "Seed the initial generation with static-analysis findings (section 4)." in
    Arg.(value & flag & info [ "seed-analysis" ] ~doc)
  in
  let csv_arg =
    let doc = "Write the per-test log as CSV to $(docv)." in
    Arg.(value & opt (some string) None & info [ "export-csv" ] ~docv:"FILE" ~doc)
  in
  let json_arg =
    let doc = "Write the session summary as JSON to $(docv)." in
    Arg.(value & opt (some string) None & info [ "export-json" ] ~docv:"FILE" ~doc)
  in
  let assess_arg =
    let doc =
      "Measure impact precision (1/variance over 10 trials, section 5) for the        $(docv) highest-impact faults."
    in
    Arg.(value & opt (some int) None & info [ "assess" ] ~docv:"K" ~doc)
  in
  let jobs_arg =
    let doc =
      "Execute tests on $(docv) worker domains in parallel. The explored \
       history depends only on the seed and batch size, never on $(docv)."
    in
    Arg.(value & opt int 1 & info [ "jobs"; "j" ] ~docv:"N" ~doc)
  in
  let batch_arg =
    let doc =
      "Candidates kept in flight per dispatch round. $(b,0) removes the \
       bound entirely: the work-stealing runtime keeps submitting until \
       the next sync watermark, so only worker capacity limits overlap."
    in
    Arg.(value & opt int 32 & info [ "batch" ] ~docv:"N" ~doc)
  in
  let wire_arg =
    let doc =
      "Wire protocol version to offer remote managers: 2 (default) packs \
       several varint-encoded requests into each frame with per-connection \
       stack interning and scenario delta-encoding; 1 is the line-oriented \
       text protocol. A manager that rejects the offer is redialed at v1 \
       (counted as a wire downgrade)."
    in
    Arg.(value & opt int 2 & info [ "wire" ] ~docv:"V" ~doc)
  in
  let flush_bytes_arg =
    let doc =
      "Wire v2 coalescing threshold: buffered request records flush as one \
       frame once the payload reaches $(docv) bytes (sooner when in-flight \
       credit runs out or the event loop is about to wait). Tune upward on \
       slow links (see ADAPTING.md)."
    in
    Arg.(value & opt int 8192 & info [ "flush-bytes" ] ~docv:"BYTES" ~doc)
  in
  let manager_arg =
    let doc =
      "Also dispatch tests to the remote node manager at $(docv) (repeatable; \
       start one with $(b,afex serve)). A failing manager's tests are re-run \
       locally, so the explored history never depends on remote health. With \
       $(b,--jobs) 0, every test goes over the wire."
    in
    Arg.(value & opt_all string [] & info [ "manager" ] ~docv:"HOST:PORT" ~doc)
  in
  let inflight_arg =
    let doc =
      "Keep up to $(docv) tests in flight on a single-domain event loop — \
       the right knob for latency-bound targets ($(b,--latency), slow \
       remote managers), where workers wait instead of compute. Requires \
       $(b,--jobs) 1. The explored history is identical at every $(docv)."
    in
    Arg.(value & opt int 1 & info [ "inflight" ] ~docv:"N" ~doc)
  in
  let latency_arg =
    let doc =
      "Simulate a slow target: each test completes only after a seeded, \
       per-scenario latency drawn from $(docv) — one of fixed:MS, \
       uniform:LO-HI, exp:MEAN, bimodal:FAST,SLOW,SHARE (milliseconds). \
       Deterministic given the session seed, so campaigns replay exactly."
    in
    Arg.(value & opt (some string) None & info [ "latency" ] ~docv:"DIST" ~doc)
  in
  let adaptive_arg =
    let doc =
      "Let the scheduler retune the in-flight window online (AIMD \
       hill-climbing on measured throughput, bounded by \
       $(b,--window-min)/$(b,--window-max)). $(b,--batch) becomes the \
       starting window. Record the decisions with $(b,--trace) to make the \
       run replayable."
    in
    Arg.(value & flag & info [ "adaptive" ] ~doc)
  in
  let window_min_arg =
    let doc = "Lower bound for the adaptive window." in
    Arg.(value & opt int 1 & info [ "window-min" ] ~docv:"N" ~doc)
  in
  let window_max_arg =
    let doc = "Upper bound for the adaptive window." in
    Arg.(value & opt int 128 & info [ "window-max" ] ~docv:"N" ~doc)
  in
  let trace_arg =
    let doc =
      "Write the scheduler's per-batch telemetry and decisions to $(docv) \
       (usable without $(b,--adaptive) to record a static run's telemetry). \
       Feed it back with $(b,--replay-trace) to reproduce an adaptive run \
       bit-for-bit."
    in
    Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)
  in
  let replay_trace_arg =
    let doc =
      "Re-apply the window sequence recorded in $(docv) instead of deciding \
       online; the explored history is bit-identical to the recorded run's."
    in
    Arg.(value & opt (some string) None & info [ "replay-trace" ] ~docv:"FILE" ~doc)
  in
  let checkpoint_arg =
    let doc =
      "Make the campaign crash-safe: snapshot the full explorer state into \
       $(docv) at a cadence of $(b,--checkpoint-every) reported outcomes and \
       journal every outcome in between, so a killed process continues with \
       $(b,--resume) and produces byte-identical exports."
    in
    Arg.(value & opt (some string) None & info [ "checkpoint" ] ~docv:"DIR" ~doc)
  in
  let checkpoint_every_arg =
    let doc =
      "Snapshot cadence for $(b,--checkpoint), in reported outcomes. Smaller \
       values bound the journal replay a resume pays for; larger values \
       amortize the snapshot write over more tests."
    in
    Arg.(value & opt int 500 & info [ "checkpoint-every" ] ~docv:"N" ~doc)
  in
  let resume_arg =
    let doc =
      "Continue the campaign checkpointed in $(docv): restore the last \
       snapshot, replay the journal tail, and keep exploring (and \
       checkpointing) from there. Every flag that shapes the search must \
       match the original invocation."
    in
    Arg.(value & opt (some string) None & info [ "resume" ] ~docv:"DIR" ~doc)
  in
  let run target strategy iterations seed feedback rarity rarity_weight
      rarity_cutoff mask top replay_out multi seed_analysis
      csv_out json_out assess jobs batch wire flush_bytes managers inflight
      latency adaptive window_min window_max trace_out replay_trace
      checkpoint_dir checkpoint_every resume_dir verbosity =
    setup_logging verbosity;
    if mask && not rarity then begin
      prerr_endline "afex: --mask needs --rarity (it pins against the rarity cutoff)";
      exit 2
    end;
    if rarity && strategy <> `Fitness then begin
      prerr_endline "afex: --rarity shapes fitness; use --strategy fitness with it";
      exit 2
    end;
    if rarity_weight < 0.0 then begin
      prerr_endline "afex: --rarity-weight must be non-negative";
      exit 2
    end;
    if rarity_cutoff <= 0.0 || rarity_cutoff >= 1.0 then begin
      prerr_endline "afex: --rarity-cutoff must be strictly between 0 and 1";
      exit 2
    end;
    if wire < 1 || wire > Afex_cluster.Message.protocol_version_max then begin
      Printf.eprintf "afex: --wire must be between 1 and %d\n%!"
        Afex_cluster.Message.protocol_version_max;
      exit 2
    end;
    if flush_bytes < 1 then begin
      prerr_endline "afex: --flush-bytes must be at least 1";
      exit 2
    end;
    let specs =
      List.map
        (fun m ->
          match parse_manager ~wire ~flush_bytes m with
          | Ok spec -> spec
          | Error e ->
              prerr_endline e;
              exit 2)
        managers
    in
    if jobs < 0 || (jobs = 0 && specs = []) then begin
      prerr_endline "afex: --jobs must be at least 1 (0 needs --manager)";
      exit 2
    end;
    if batch < 0 then begin
      prerr_endline "afex: --batch must be at least 1 (or 0 for unbounded)";
      exit 2
    end;
    if batch = 0 && (adaptive || trace_out <> None || replay_trace <> None)
    then begin
      prerr_endline
        "afex: --batch 0 (unbounded window) leaves no window for the \
         scheduler to control; drop --adaptive/--trace/--replay-trace";
      exit 2
    end;
    if inflight < 1 then begin
      prerr_endline "afex: --inflight must be at least 1";
      exit 2
    end;
    if inflight > 1 && jobs > 1 then begin
      prerr_endline
        "afex: --inflight multiplexes on a single domain; use --jobs 1 with it";
      exit 2
    end;
    if window_min < 1 || window_max < window_min then begin
      prerr_endline "afex: need 1 <= --window-min <= --window-max";
      exit 2
    end;
    if adaptive && replay_trace <> None then begin
      prerr_endline
        "afex: --adaptive and --replay-trace are exclusive (a replay \
         re-applies recorded decisions)";
      exit 2
    end;
    if checkpoint_dir <> None && resume_dir <> None then begin
      prerr_endline
        "afex: --checkpoint and --resume are exclusive (a resume keeps \
         checkpointing into its own directory)";
      exit 2
    end;
    if checkpoint_every < 1 then begin
      prerr_endline "afex: --checkpoint-every must be at least 1";
      exit 2
    end;
    let scheduler =
      match replay_trace with
      | Some path -> (
          match Afex_cluster.Scheduler.Trace.load path with
          | Error e ->
              prerr_endline ("afex: --replay-trace: " ^ e);
              exit 2
          | Ok [] ->
              prerr_endline ("afex: --replay-trace: " ^ path ^ " has no entries");
              exit 2
          | Ok trace ->
              Some
                (Afex_cluster.Scheduler.create ~window_min ~window_max
                   (Afex_cluster.Scheduler.Replay
                      (Afex_cluster.Scheduler.Trace.windows trace))))
      | None ->
          if adaptive then
            Some
              (Afex_cluster.Scheduler.create ~window_min ~window_max
                 ~initial:batch ~seed Afex_cluster.Scheduler.Adaptive)
          else if trace_out <> None then
            (* Telemetry-only: record what the frozen window costs. *)
            Some
              (Afex_cluster.Scheduler.create ~window_min:1
                 ~window_max:(max batch window_max) ~initial:batch
                 Afex_cluster.Scheduler.Static)
          else None
    in
    let latency_model =
      match latency with
      | None -> None
      | Some s -> (
          match Afex_simtarget.Target.latency_dist_of_string s with
          | Ok dist -> Some (Afex_simtarget.Target.latency_model ~seed dist)
          | Error e ->
              prerr_endline ("afex: --latency: " ^ e);
              exit 2)
    in
    (* Campaign identity: every flag that shapes the explored history.
       Checked on --resume so a snapshot cannot silently continue under a
       different configuration. jobs and --checkpoint-every are absent on
       purpose — neither affects the history. *)
    let checkpoint_meta =
      let strategy_name =
        match strategy with
        | `Fitness -> "fitness"
        | `Random -> "random"
        | `Exhaustive -> "exhaustive"
      in
      [
        ("format", "1");
        ("target", target);
        ("strategy", strategy_name);
        ("seed", string_of_int seed);
        ("iterations", string_of_int iterations);
        ("batch", string_of_int batch);
        ("feedback", string_of_bool feedback);
        ("rarity", string_of_bool rarity);
        ( "rarity-weight",
          if rarity then Printf.sprintf "%h" rarity_weight else "-" );
        ( "rarity-cutoff",
          if rarity then Printf.sprintf "%h" rarity_cutoff else "-" );
        ("mask", string_of_bool mask);
        ("multi", string_of_bool multi);
        ("seed-analysis", string_of_bool seed_analysis);
        ("latency", Option.value latency ~default:"-");
        ("inflight", string_of_int inflight);
        ("adaptive", string_of_bool adaptive);
        ("window-min", string_of_int window_min);
        ("window-max", string_of_int window_max);
        ("replay-trace", if replay_trace = None then "-" else "set");
      ]
    in
    let checkpoint =
      match (checkpoint_dir, resume_dir) with
      | None, None -> None
      | Some dir, None -> (
          match
            Afex_cluster.Checkpoint.start ~every:checkpoint_every ~dir
              checkpoint_meta
          with
          | Ok cp -> Some cp
          | Error e ->
              prerr_endline ("afex: --checkpoint: " ^ e);
              exit 2)
      | None, Some dir -> (
          match
            Afex_cluster.Checkpoint.resume ~every:checkpoint_every ~dir
              checkpoint_meta
          with
          | Ok cp -> Some cp
          | Error e ->
              prerr_endline ("afex: --resume: " ^ e);
              exit 2)
      | Some _, Some _ -> assert false
    in
    (match (checkpoint, scheduler) with
    | Some cp, Some s -> (
        match
          Option.bind
            (Afex_cluster.Checkpoint.loaded_snapshot cp)
            (fun snap -> snap.Afex_cluster.Checkpoint.Snapshot.scheduler)
        with
        | None -> ()
        | Some snap -> (
            match Afex_cluster.Scheduler.restore s snap with
            | Ok () -> ()
            | Error e ->
                prerr_endline ("afex: --resume: scheduler: " ^ e);
                exit 2))
    | _ -> ());
    let executor, sub, analysis_seeds =
      match parse_replsim_exn target with
      | Some cluster ->
          if assess <> None then begin
            prerr_endline
              "afex: --assess replays faults through the generic callsite \
               codec, which replsim scenarios do not use";
            exit 2
          end;
          let arms = if multi then 2 else 1 in
          let sub =
            if multi then Replfault.multi_space ~arms cluster
            else Replfault.space cluster
          in
          let seeds =
            (* For replsim the "static analysis" is the cluster's observable
               structure: scheduled recovery windows and the fault-free
               leader trace. *)
            if seed_analysis then begin
              let seeds = Replfault.seed_points ~arms cluster in
              Format.printf "seeded with %d churn-schedule-derived scenarios@."
                (List.length seeds);
              seeds
            end
            else []
          in
          (replsim_executor cluster, sub, seeds)
      | None -> (
          match lookup_target target with
          | Error e ->
              prerr_endline e;
              exit 2
          | Ok (t, sub) ->
              let sub =
                if multi then
                  Afex_simtarget.Spaces.multi ~arms:2 ~min_call:1 ~max_call:6
                    ~funcs:Afex_simtarget.Libc.standard19 t
                else sub
              in
              let seeds =
                if seed_analysis then begin
                  let findings = Afex_simtarget.Analyzer.analyze t in
                  let seeds = Afex.Seeding.points_for sub t findings ~max_seeds:50 in
                  Format.printf "seeded with %d analysis-derived injections@."
                    (List.length seeds);
                  seeds
                end
                else []
              in
              let executor =
                if multi then Afex.Executor.of_target_multi t
                else Afex.Executor.of_target t
              in
              (executor, sub, seeds))
    in
    begin
        let config =
          match strategy with
          | `Fitness -> Afex.Config.fitness_guided ~seed ()
          | `Random -> Afex.Config.random_search ~seed ()
          | `Exhaustive -> Afex.Config.exhaustive ~seed ()
        in
        let config = { config with Afex.Config.feedback } in
        let config =
          if rarity then
            Afex.Config.with_rarity ~weight:rarity_weight ~cutoff:rarity_cutoff
              ~mask config
          else config
        in
        let config =
          if analysis_seeds = [] then config
          else { config with Afex.Config.initial_seeds = analysis_seeds }
        in
        let pool_executor =
          match latency_model with
          | None -> Afex_cluster.Pool.Pure executor
          | Some model ->
              Afex_cluster.Pool.Async
                (Afex.Executor.delayed
                   ~delay_ms:(fun scenario ->
                     Afex_simtarget.Target.latency_ms model
                       (Afex_faultspace.Scenario.to_string scenario))
                   executor)
        in
        let result, pool_stats =
          if
            jobs = 1 && batch = 1 && specs = [] && inflight = 1
            && latency_model = None && scheduler = None
            && Option.is_none checkpoint
          then (Afex.Session.run ~iterations config sub executor, None)
          else begin
            let pool =
              Afex_cluster.Pool.create ~remotes:specs ~inflight ~jobs pool_executor
            in
            let result, stats =
              Fun.protect
                ~finally:(fun () -> Afex_cluster.Pool.shutdown pool)
                (fun () ->
                  Afex_cluster.Pool.session ?scheduler ?checkpoint
                    ~batch_size:(if batch = 0 then max_int else batch)
                    ~iterations pool config sub)
            in
            (result, Some (stats, Afex_cluster.Pool.remote_stats pool))
          end
        in
        print_string (Afex_report.Session_report.render ~top ~target result);
        if rarity then begin
          (match result.Afex.Session.rare_blocks with
          | Some n ->
              Format.printf
                "rarity: %d/%d blocks still below the %.3f cutoff (weight %g%s)@."
                n result.Afex.Session.total_blocks rarity_cutoff rarity_weight
                (if mask then ", masking on" else "")
          | None -> ());
          let m = result.Afex.Session.mutator in
          Format.printf
            "mutator: %d proposals, %d masked accepts, %d/%d \
             masked/unmasked rejects, %d random fallbacks@."
            m.Afex.Mutator.proposals m.Afex.Mutator.masked
            m.Afex.Mutator.masked_rejects m.Afex.Mutator.rejects
            m.Afex.Mutator.random_fallbacks
        end;
        (match scheduler with
        | None -> ()
        | Some s ->
            let lo, hi = Afex_cluster.Scheduler.bounds s in
            Format.printf "scheduler: window %d after %d batches (bounds %d-%d)@."
              (Afex_cluster.Scheduler.window s)
              (Afex_cluster.Scheduler.batches s)
              lo hi;
            (match Afex_cluster.Scheduler.telemetry s with
            | None -> ()
            | Some tel ->
                Format.printf
                  "  telemetry (EWMA): %.0f tests/s, %.0f%% utilization, %.2f ms \
                   queue wait, %.2f ms merge stall, %.2f freshness@."
                  tel.Afex_cluster.Scheduler.throughput
                  (100.0 *. tel.Afex_cluster.Scheduler.utilization)
                  tel.Afex_cluster.Scheduler.queue_wait_ms
                  tel.Afex_cluster.Scheduler.merge_stall_ms
                  tel.Afex_cluster.Scheduler.freshness);
            match trace_out with
            | None -> ()
            | Some path ->
                Afex_cluster.Scheduler.Trace.save path
                  (Afex_cluster.Scheduler.trace s);
                Format.printf "scheduler trace (%d batches) written to %s@."
                  (Afex_cluster.Scheduler.batches s)
                  path);
        (match pool_stats with
        | None -> ()
        | Some (s, remote_stats) ->
            if inflight > 1 then Format.printf "async: %d in flight@." inflight;
            Format.printf
              "pool: %d jobs, %d batches, %d executed, %d cache hits, %.0f ms wall \
               (%.0f tests/s)@."
              jobs s.Afex_cluster.Pool.batches s.Afex_cluster.Pool.executed
              s.Afex_cluster.Pool.cache_hits s.Afex_cluster.Pool.wall_ms
              (if s.Afex_cluster.Pool.wall_ms <= 0.0 then 0.0
               else 1000.0 *. float_of_int result.Afex.Session.iterations
                    /. s.Afex_cluster.Pool.wall_ms);
            if remote_stats <> [] then begin
              Format.printf
                "remote: %d runs over the wire, %d local fallbacks%s@."
                s.Afex_cluster.Pool.remote_runs s.Afex_cluster.Pool.remote_fallbacks
                (if s.Afex_cluster.Pool.wire_downgrades > 0 then
                   Printf.sprintf ", %d wire downgrades"
                     s.Afex_cluster.Pool.wire_downgrades
                 else "");
              List.iter
                (fun (name, (r : Afex_cluster.Remote_manager.stats)) ->
                  Format.printf
                    "  %s: %d requests, %d retries, %d dials, %d manager errors@."
                    name r.Afex_cluster.Remote_manager.requests
                    r.Afex_cluster.Remote_manager.retries
                    r.Afex_cluster.Remote_manager.dials
                    r.Afex_cluster.Remote_manager.manager_errors;
                  Format.printf
                    "    wire v%d (%d downgrades), %d frames out / %d in, %d \
                     bytes out / %d in, dict %d@."
                    r.Afex_cluster.Remote_manager.wire
                    r.Afex_cluster.Remote_manager.wire_downgrades
                    r.Afex_cluster.Remote_manager.frames_out
                    r.Afex_cluster.Remote_manager.frames_in
                    r.Afex_cluster.Remote_manager.bytes_out
                    r.Afex_cluster.Remote_manager.bytes_in
                    r.Afex_cluster.Remote_manager.dict_size)
                remote_stats
            end);
        (match assess with
        | None -> ()
        | Some k ->
            Format.printf "@.--- impact precision of the top %d faults ---@." k;
            List.iter
              (fun ((case : Afex.Test_case.t), p) ->
                Format.printf "  %a@.    %a@." Afex_injector.Fault.pp
                  case.Afex.Test_case.fault Afex_quality.Precision.pp p)
              (Afex.Assess.top_faults executor
                 ~sensor:(Afex_injector.Sensor.standard ())
                 ~trials:10 ~n:k result));
        let write path contents =
          let oc = open_out path in
          output_string oc contents;
          close_out oc
        in
        (match csv_out with
        | None -> ()
        | Some path ->
            write path (Afex_report.Export.records_to_csv result);
            Format.printf "@.per-test CSV written to %s@." path);
        (match json_out with
        | None -> ()
        | Some path ->
            write path (Afex_report.Export.summary_to_json ~target result);
            Format.printf "session JSON written to %s@." path);
        (match replay_out with
        | None -> ()
        | Some path ->
            let reps = Afex.Session.crash_cluster_representatives result in
            write path (Afex_report.Replay.suite ~target reps);
            Format.printf "@.replay suite for %d clusters written to %s@."
              (List.length reps) path);
        (match checkpoint with
        | None -> ()
        | Some cp ->
            let st = Afex_cluster.Checkpoint.stats cp in
            let path =
              Filename.concat (Afex_cluster.Checkpoint.dir cp) "provenance.json"
            in
            write path
              (Afex_report.Export.provenance_to_json ~target ~seed
                 ~resumed:st.Afex_cluster.Checkpoint.was_resumed
                 ~snapshots:st.Afex_cluster.Checkpoint.snapshots_written
                 ~wal_appends:st.Afex_cluster.Checkpoint.wal_appends
                 ~replayed_records:st.Afex_cluster.Checkpoint.replayed_records ());
            Format.printf
              "checkpoint: %d snapshots, %d journal appends%s; provenance in %s@."
              st.Afex_cluster.Checkpoint.snapshots_written
              st.Afex_cluster.Checkpoint.wal_appends
              (if st.Afex_cluster.Checkpoint.was_resumed then
                 Printf.sprintf " (replayed %d journaled outcomes)"
                   st.Afex_cluster.Checkpoint.replayed_records
               else "")
              path;
            Afex_cluster.Checkpoint.close cp)
    end
  in
  Cmd.v
    (Cmd.info "explore" ~doc:"Run a fault exploration session against a target")
    Term.(
      const run $ target_arg $ strategy_arg $ iterations_arg $ seed_arg $ feedback_arg
      $ rarity_arg $ rarity_weight_arg $ rarity_cutoff_arg $ mask_arg
      $ top_arg $ replay_arg $ multi_arg $ seed_analysis_arg $ csv_arg $ json_arg
      $ assess_arg $ jobs_arg $ batch_arg $ wire_arg $ flush_bytes_arg
      $ manager_arg $ inflight_arg $ latency_arg
      $ adaptive_arg $ window_min_arg $ window_max_arg $ trace_arg $ replay_trace_arg
      $ checkpoint_arg $ checkpoint_every_arg $ resume_arg $ verbose_arg)

(* --- afex serve --- *)

let serve_cmd =
  let port_arg =
    let doc =
      "TCP port to listen on. Port 0 picks an ephemeral port; the actual \
       address is announced on stdout."
    in
    Arg.(value & opt int 7654 & info [ "port"; "p" ] ~docv:"PORT" ~doc)
  in
  let host_arg =
    let doc = "Address to bind." in
    Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"HOST" ~doc)
  in
  let once_arg =
    let doc = "Exit after the first connection ends (useful in scripts and CI)." in
    Arg.(value & flag & info [ "once" ] ~doc)
  in
  let multi_arg =
    let doc =
      "Execute 2-fault compound scenarios (pair with $(b,explore --multi))."
    in
    Arg.(value & flag & info [ "multi" ] ~doc)
  in
  let latency_arg =
    let doc =
      "Serve a slow target: delay each test by a seeded per-scenario latency \
       drawn from $(docv) (same syntax as $(b,explore --latency)). Pair with \
       $(b,explore --inflight) to exercise request pipelining."
    in
    Arg.(value & opt (some string) None & info [ "latency" ] ~docv:"DIST" ~doc)
  in
  let rarity_cutoff_arg =
    let doc =
      "Accumulate a hit-count histogram over every block the served \
       scenarios cover and report, when the server exits, how many blocks \
       stayed below the $(docv) rarity cutoff — the manager-side view of \
       what an $(b,explore --rarity) client is being steered towards."
    in
    Arg.(value & opt (some float) None & info [ "rarity-cutoff" ] ~docv:"FRAC" ~doc)
  in
  let wire_arg =
    let doc =
      "Newest wire protocol version to negotiate (1 makes this server \
       behave exactly like a pre-v2 manager: v2 clients downgrade to the \
       text protocol)."
    in
    Arg.(value & opt int 2 & info [ "wire" ] ~docv:"V" ~doc)
  in
  let chaos_arg =
    let doc =
      "Mangle reply frames with probability $(docv) per corruption kind \
       (drop, duplicate, bit-flip; half that for truncation and leading \
       garbage) — transport fault injection for exercising the client's \
       corruption detection and local fallback."
    in
    Arg.(value & opt (some float) None & info [ "chaos" ] ~docv:"FRAC" ~doc)
  in
  let chaos_seed_arg =
    let doc = "Seed for the per-connection chaos RNG streams." in
    Arg.(value & opt int 0 & info [ "chaos-seed" ] ~docv:"N" ~doc)
  in
  let run target host port once multi latency rarity_cutoff wire chaos
      chaos_seed verbosity =
    setup_logging verbosity;
    let executor =
      match parse_replsim_exn target with
      | Some cluster ->
          (* replsim decodes any number of arms from one scenario, so the
             same executor serves --multi and single-fault clients. *)
          replsim_executor cluster
      | None -> (
          match lookup_target target with
          | Error e ->
              prerr_endline e;
              exit 2
          | Ok (t, _) ->
              if multi then Afex.Executor.of_target_multi t
              else Afex.Executor.of_target t)
    in
    (
        let executor =
          match latency with
          | None -> executor
          | Some s -> (
              match Afex_simtarget.Target.latency_dist_of_string s with
              | Error e ->
                  prerr_endline ("afex: --latency: " ^ e);
                  exit 2
              | Ok dist ->
                  let model = Afex_simtarget.Target.latency_model dist in
                  Afex.Executor.sync_of_async
                    (Afex.Executor.delayed
                       ~delay_ms:(fun scenario ->
                         Afex_simtarget.Target.latency_ms model
                           (Afex_faultspace.Scenario.to_string scenario))
                       executor))
        in
        (* The rarity histogram wraps the outermost executor, so it counts
           exactly what goes over the wire (latency wrapping included). *)
        let hist =
          match rarity_cutoff with
          | None -> None
          | Some cutoff ->
              if cutoff <= 0.0 || cutoff >= 1.0 then begin
                prerr_endline
                  "afex: --rarity-cutoff must be strictly between 0 and 1";
                exit 2
              end;
              Some
                (Afex.Rarity.create ~blocks:executor.Afex.Executor.total_blocks,
                 cutoff)
        in
        let executor =
          match hist with
          | None -> executor
          | Some (h, _) ->
              {
                executor with
                Afex.Executor.run_scenario =
                  (fun scenario ->
                    let outcome = executor.Afex.Executor.run_scenario scenario in
                    Afex.Rarity.observe h outcome.Outcome.coverage;
                    outcome);
              }
        in
        let report_rarity () =
          match hist with
          | None -> ()
          | Some (h, cutoff) ->
              Format.printf
                "rarity: served %d tests; %d/%d blocks below the %.3f cutoff@."
                (Afex.Rarity.tests h)
                (Afex.Rarity.rare_count h ~cutoff)
                (Afex.Rarity.blocks h) cutoff
        in
        if wire < 1 || wire > Afex_cluster.Message.protocol_version_max
        then begin
          Printf.eprintf "afex: --wire must be between 1 and %d\n%!"
            Afex_cluster.Message.protocol_version_max;
          exit 2
        end;
        let chaos_to_client =
          match chaos with
          | None -> None
          | Some p ->
              if p < 0.0 || p > 1.0 then begin
                prerr_endline "afex: --chaos must be between 0 and 1";
                exit 2
              end;
              Some
                {
                  Afex_cluster.Transport.drop = p;
                  duplicate = p;
                  truncate = p /. 2.0;
                  bitflip = p;
                  garbage = p /. 2.0;
                }
        in
        match
          Afex_cluster.Remote_manager.serve_tcp ~host ~wire_max:wire
            ?chaos_to_client ~chaos_seed ~port ~once executor
        with
        | Ok () -> report_rarity ()
        | Error e ->
            report_rarity ();
            prerr_endline
              ("afex: serve: " ^ Afex_cluster.Remote_manager.string_of_error e);
            exit 1)
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run a node manager serving fault scenarios over TCP (the AFEX wire \
          protocol); point $(b,explore --manager) at it")
    Term.(
      const run $ target_arg $ host_arg $ port_arg $ once_arg $ multi_arg
      $ latency_arg $ rarity_cutoff_arg $ wire_arg $ chaos_arg $ chaos_seed_arg
      $ verbose_arg)

(* --- afex inject --- *)

let inject_cmd =
  let test_arg =
    Arg.(
      required & opt (some int) None & info [ "test" ] ~docv:"ID" ~doc:"Test id to run.")
  in
  let func_arg =
    Arg.(
      required
      & opt (some string) None
      & info [ "function" ] ~docv:"FN" ~doc:"libc function whose call fails.")
  in
  let call_arg =
    Arg.(
      required
      & opt (some int) None
      & info [ "call" ] ~docv:"N" ~doc:"Which call to fail (1-based; 0 = no injection).")
  in
  let errno_arg =
    Arg.(
      value & opt (some string) None & info [ "errno" ] ~docv:"E" ~doc:"errno to simulate.")
  in
  let retval_arg =
    Arg.(
      value & opt (some int) None & info [ "retval" ] ~docv:"R" ~doc:"Return value to inject.")
  in
  let print_status_arg =
    Arg.(value & flag & info [ "print-status" ] ~doc:"Print only the outcome status.")
  in
  let expect_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "expect" ] ~docv:"STATUS"
          ~doc:"Exit non-zero unless the outcome status equals $(docv).")
  in
  let run target test_id func call errno retval print_status expect =
    let fault = Fault.make ~test_id ~func ~call_number:call ?errno ?retval () in
    let outcome =
      match parse_replsim_exn target with
      | Some cluster -> (
          (* The generic flags carry the replsim coordinates through the
             Fault.t embedding: --function repl_<kind>, --test replica,
             --call round, --retval peer. *)
          match Replfault.rfault_of_fault fault with
          | Error m ->
              prerr_endline ("afex: " ^ m);
              exit 2
          | Ok rf ->
              Replfault.run_scenario cluster (Replfault.scenario_of_faults [ rf ]))
      | None -> (
          match lookup_target target with
          | Error e ->
              prerr_endline e;
              exit 2
          | Ok (t, _) -> (
              try Engine.run t fault
              with Invalid_argument m ->
                prerr_endline m;
                exit 2))
    in
    begin
        let status = Outcome.status_to_string outcome.Outcome.status in
        if print_status then print_endline status
        else begin
          Format.printf "%a@." Outcome.pp outcome;
          (match outcome.Outcome.injection_stack with
          | Some stack ->
              Format.printf "injection stack:@.";
              List.iter (fun f -> Format.printf "  %s@." f) stack
          | None -> Format.printf "fault did not trigger@.");
          match outcome.Outcome.crash_stack with
          | Some stack ->
              Format.printf "crash stack:@.";
              List.iter (fun f -> Format.printf "  %s@." f) stack
          | None -> ()
        end;
        match expect with
        | Some expected when not (String.equal expected status) ->
            Format.eprintf "expected %s, observed %s@." expected status;
            exit 1
        | Some _ | None -> ()
    end
  in
  Cmd.v
    (Cmd.info "inject" ~doc:"Replay a single fault injection")
    Term.(
      const run $ target_arg $ test_arg $ func_arg $ call_arg $ errno_arg $ retval_arg
      $ print_status_arg $ expect_arg)

(* --- afex analyze --- *)

let analyze_cmd =
  let recall_arg =
    Arg.(value & opt float 0.7 & info [ "recall" ] ~docv:"P" ~doc:"Analyzer recall in [0,1].")
  in
  let precision_arg =
    Arg.(
      value & opt float 0.6 & info [ "precision" ] ~docv:"P" ~doc:"Analyzer precision in [0,1].")
  in
  let run target recall precision seed =
    if parse_replsim_exn target <> None then begin
      prerr_endline
        "afex: analyze needs a callsite-instrumented target; replsim's fault \
         axes are round/replica/kind/peer";
      exit 2
    end;
    match lookup_target target with
    | Error e ->
        prerr_endline e;
        exit 2
    | Ok (t, _) ->
        let findings = Afex_simtarget.Analyzer.analyze ~recall ~precision ~seed t in
        Format.printf "%d suspicious callsites:@." (List.length findings);
        List.iter
          (fun (f : Afex_simtarget.Analyzer.finding) ->
            Format.printf "  %-28s %-12s %s@." f.Afex_simtarget.Analyzer.location
              f.Afex_simtarget.Analyzer.func f.Afex_simtarget.Analyzer.reason)
          findings
  in
  Cmd.v
    (Cmd.info "analyze"
       ~doc:"Run the (deliberately imperfect) static callsite analyzer on a target")
    Term.(const run $ target_arg $ recall_arg $ precision_arg $ seed_arg)

(* --- afex parse --- *)

let parse_cmd =
  let file_arg =
    Arg.(
      required
      & pos 0 (some file) None
      & info [] ~docv:"FILE" ~doc:"Fault space description file to validate.")
  in
  let run file =
    let ic = open_in file in
    let n = in_channel_length ic in
    let contents = really_input_string ic n in
    close_in ic;
    match Afex_faultspace.Fsdl.space_of_string contents with
    | Ok space ->
        Format.printf "valid description: %d subspaces, %d faults total@."
          (List.length (Afex_faultspace.Space.subspaces space))
          (Afex_faultspace.Space.cardinality space)
    | Error e ->
        prerr_endline e;
        exit 1
  in
  Cmd.v
    (Cmd.info "parse" ~doc:"Validate a fault space description file")
    Term.(const run $ file_arg)

let () =
  let info =
    Cmd.info "afex" ~version:"1.0.0"
      ~doc:"Fast black-box testing of system recovery code (EuroSys 2012 reproduction)"
  in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            targets_cmd;
            describe_cmd;
            explore_cmd;
            serve_cmd;
            inject_cmd;
            analyze_cmd;
            parse_cmd;
          ]))
