#!/usr/bin/env bash
# Crash-resume proof: kill -9 a checkpointed campaign at randomized
# points, resume it, and byte-diff the exports against an uninterrupted
# run of the same flags. The kill schedule is seeded and every chosen
# delay is logged, so a failing run replays exactly:
#
#   CRASH_SEED=<seed> .github/scripts/crash_resume.sh
#
# The precise crash windows (the k-th journal append, the gap between a
# snapshot rename and the journal truncation) are swept deterministically
# in-process by test/test_checkpoint.ml; this script is the end-to-end
# complement on the real binary with a real SIGKILL.
set -euo pipefail

AFEX=${AFEX:-_build/default/bin/afex_cli.exe}
SEED=${CRASH_SEED:-$$}
RANDOM=$SEED
echo "crash_resume: kill schedule seed = $SEED (replay with CRASH_SEED=$SEED)"

# Static window only: byte-identical resume is guaranteed for schedules
# that do not depend on wall time. The adaptive controller's decisions do
# (record them with --trace and resume under --replay-trace instead).
FLAGS=(--target mysql -n 1200 --seed 7 --batch 16 --latency fixed:2 --inflight 8)
EVERY=40

work=$(mktemp -d)
trap '[ -n "${pid:-}" ] && kill -9 "$pid" 2> /dev/null; rm -rf "$work"' EXIT

run() { "$AFEX" explore "${FLAGS[@]}" "$@"; }

# Background launcher for the runs that get killed: exec in a subshell so
# $! is the afex process itself. Backgrounding the [run] function would
# put a bash wrapper between them — kill -9 $! would kill the wrapper and
# leave afex running, still appending to the journal while the resume
# reads it.
run_bg() { ( exec "$AFEX" explore "${FLAGS[@]}" "$@" ) > /dev/null 2>&1 & }

echo "crash_resume: uninterrupted baseline"
run --export-json "$work/base.json" --export-csv "$work/base.csv" > /dev/null

# A full checkpointed run, both to confirm checkpointing itself does not
# perturb the exports and to measure the wall time between the first
# snapshot and completion — process startup varies wildly across runners,
# so kill delays are anchored to the first snapshot, not to launch.
start_ms=$(date +%s%3N)
run_bg --checkpoint "$work/ck0" --checkpoint-every "$EVERY" \
  --export-json "$work/ck0.json" --export-csv "$work/ck0.csv"
ck0_pid=$!
while [ ! -e "$work/ck0/snapshot.afex" ] && kill -0 "$ck0_pid" 2> /dev/null; do
  sleep 0.01
done
snap_ms=$(( $(date +%s%3N) - start_ms ))
wait "$ck0_pid"
total_ms=$(( $(date +%s%3N) - start_ms ))
window_ms=$(( total_ms - snap_ms ))
[ "$window_ms" -ge 1 ] || window_ms=1
cmp "$work/base.json" "$work/ck0.json"
cmp "$work/base.csv" "$work/ck0.csv"
echo "crash_resume: checkpointing is export-neutral (full run: ${total_ms} ms, first snapshot at ${snap_ms} ms)"

interrupted=0
attempt=0
while [ "$interrupted" -lt 3 ]; do
  attempt=$((attempt + 1))
  if [ "$attempt" -gt 40 ]; then
    echo "crash_resume: could not land 3 kills inside the campaign window" >&2
    exit 1
  fi
  # Randomized kill point: wait for the first snapshot to exist, then
  # 0%..95% of the measured post-snapshot window. Anchoring to the
  # snapshot keeps the schedule meaningful however slow startup is.
  delay_ms=$(( window_ms * (RANDOM % 96) / 100 ))
  dir="$work/kill$attempt"
  run_bg --checkpoint "$dir" --checkpoint-every "$EVERY"
  pid=$!
  while [ ! -e "$dir/snapshot.afex" ] && kill -0 "$pid" 2> /dev/null; do
    sleep 0.01
  done
  sleep "$(awk "BEGIN { printf \"%.3f\", $delay_ms / 1000 }")"
  kill -9 "$pid" 2> /dev/null || true
  status=0
  wait "$pid" || status=$?
  if [ "$status" -ne 137 ]; then
    echo "crash_resume: attempt $attempt: ${delay_ms} ms was past completion, retrying"
    continue
  fi
  if [ ! -f "$dir/snapshot.afex" ]; then
    echo "crash_resume: attempt $attempt: ${delay_ms} ms was before the first snapshot, retrying"
    continue
  fi
  interrupted=$((interrupted + 1))
  wal_lines=$(wc -l < "$dir/wal.log")
  echo "crash_resume: kill #$interrupted at ${delay_ms} ms (attempt $attempt): $wal_lines journal lines past the last snapshot"
  run --resume "$dir" --export-json "$dir/res.json" --export-csv "$dir/res.csv" | grep '^checkpoint:'
  cmp "$work/base.json" "$dir/res.json"
  cmp "$work/base.csv" "$dir/res.csv"
  echo "crash_resume: kill #$interrupted resumed to byte-identical exports"
done

# Boundary case: the completed ck0 campaign sits exactly in the window
# between a snapshot and any subsequent journal append (the final
# snapshot truncated the journal). Resuming it must replay nothing and
# still reproduce the exports byte-for-byte.
echo "crash_resume: boundary resume (snapshot written, no journal appends after it)"
run --resume "$work/ck0" --export-json "$work/bres.json" --export-csv "$work/bres.csv" | grep '^checkpoint:'
cmp "$work/base.json" "$work/bres.json"
cmp "$work/base.csv" "$work/bres.csv"

echo "crash_resume: OK — 3 randomized kills + boundary resume, all exports byte-identical"
