(* Parallel execution: the same campaign on 1 worker and on N worker
   domains, with bit-identical explored history.

   Run with: dune exec examples/parallel_pool.exe *)

module Pool = Afex_cluster.Pool
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case

let () =
  let target = Afex_simtarget.Apache.target () in
  let sub = Afex_simtarget.Apache.space () in
  let executor = Pool.Pure (Afex.Executor.of_target target) in
  let config = Config.fitness_guided ~seed:42 () in
  let iterations = 1000 in

  (* One campaign per jobs setting; everything about the search — which
     candidates are generated, in which order outcomes feed back — depends
     only on the seed and the batch size, never on the parallelism. *)
  let jobs_n = max 2 (Domain.recommended_domain_count ()) in
  let sequential, seq_stats = Pool.run ~jobs:1 ~iterations config sub executor in
  let parallel, par_stats = Pool.run ~jobs:jobs_n ~iterations config sub executor in

  let history (r : Session.result) =
    List.map (fun (c : Test_case.t) -> Afex_faultspace.Point.key c.Test_case.point)
      r.Session.executed
  in
  Format.printf "jobs 1 : %a@." Session.pp_summary sequential;
  Format.printf "jobs %d : %a@." jobs_n Session.pp_summary parallel;
  Format.printf "explored histories identical: %b@."
    (history sequential = history parallel);
  Format.printf "jobs 1 : %d executed, %d cache hits, %.0f ms wall@."
    seq_stats.Pool.executed seq_stats.Pool.cache_hits seq_stats.Pool.wall_ms;
  Format.printf "jobs %d : %d executed, %d cache hits, %.0f ms wall@." jobs_n
    par_stats.Pool.executed par_stats.Pool.cache_hits par_stats.Pool.wall_ms;
  if history sequential <> history parallel then exit 1
