(* Distributed dispatch: the same campaign on in-process workers and on a
   mixed fleet of local domains plus remote node managers reached over
   the wire protocol — with bit-identical explored history.

   The "remote" managers here are loopback servers (real server loop,
   real socketpair framing, own domain), so the example runs on one
   machine; `afex serve` exposes the identical server loop over TCP.

   Run with: dune exec examples/remote_pool.exe *)

module Pool = Afex_cluster.Pool
module RM = Afex_cluster.Remote_manager
module Transport = Afex_cluster.Transport
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case

let history (r : Session.result) =
  List.map
    (fun (c : Test_case.t) -> Afex_faultspace.Point.key c.Test_case.point)
    r.Session.executed

let () =
  let target = Afex_simtarget.Apache.target () in
  let sub = Afex_simtarget.Apache.space () in
  let executor = Afex.Executor.of_target target in
  let config = Config.fitness_guided ~seed:42 () in
  let iterations = 800 in

  let local, _ =
    Pool.run ~jobs:1 ~iterations config sub (Pool.Pure executor)
  in

  (* Two managers behind the wire, one local domain alongside them. *)
  let lb1 = RM.Loopback.create ~name:"manager-1" ~executor () in
  let lb2 = RM.Loopback.create ~name:"manager-2" ~executor () in
  let mixed, stats =
    Pool.run
      ~remotes:[ RM.Loopback.spec lb1; RM.Loopback.spec lb2 ]
      ~jobs:1 ~iterations config sub (Pool.Pure executor)
  in
  RM.Loopback.shutdown lb1;
  RM.Loopback.shutdown lb2;

  (* A hostile wire: frames dropped, duplicated and bit-flipped. The
     dispatcher retries, reconnects, and requeues locally — outcomes and
     history must be untouched. *)
  let chaos =
    { Transport.drop = 0.2; duplicate = 0.1; truncate = 0.05; bitflip = 0.1; garbage = 0.1 }
  in
  let lb3 =
    RM.Loopback.create ~name:"chaotic" ~chaos_to_server:chaos
      ~chaos_to_client:chaos ~chaos_seed:7 ~recv_timeout_ms:40 ~executor ()
  in
  let chaotic, chaos_stats =
    Pool.run
      ~remotes:[ RM.Loopback.spec ~max_attempts:8 ~backoff_ms:0.2 lb3 ]
      ~jobs:1 ~iterations config sub (Pool.Pure executor)
  in
  RM.Loopback.shutdown lb3;

  Format.printf "in-process : %a@." Session.pp_summary local;
  Format.printf "mixed fleet: %a@." Session.pp_summary mixed;
  Format.printf "  %d of %d runs went over the wire, %d fallbacks@."
    stats.Pool.remote_runs stats.Pool.executed stats.Pool.remote_fallbacks;
  Format.printf "chaotic    : %a@." Session.pp_summary chaotic;
  Format.printf "  %d wire runs, %d local fallbacks under transport faults@."
    chaos_stats.Pool.remote_runs chaos_stats.Pool.remote_fallbacks;
  let ok_mixed = history mixed = history local in
  let ok_chaos = history chaotic = history local in
  Format.printf "mixed history identical:   %b@." ok_mixed;
  Format.printf "chaotic history identical: %b@." ok_chaos;
  if not (ok_mixed && ok_chaos) then exit 1
