(* Hunting correlated recovery bugs in a replicated consensus cluster:
   the distributed version of the recovery-code search. Faults land on
   ⟨round, replica, kind, peer⟩ coordinates, impact comes from cluster
   invariants (leader uniqueness, committed-entry durability, log-prefix
   agreement, liveness), and the planted deep bugs only fire when two
   faults correlate inside one replica's recovery window — "kill replica
   i during its recovery while the network drops acks from replica j".

   Run with: dune exec examples/consensus_churn.exe *)

module Replsim = Afex_simtarget.Replsim
module Replfault = Afex_injector.Replfault
module Session = Afex.Session
module Test_case = Afex.Test_case

let deep (c : Test_case.t) =
  match c.Test_case.crash_stack with
  | None -> false
  | Some frames ->
      List.exists
        (fun inv -> List.mem ("invariant:" ^ inv) frames)
        Replsim.deep_invariants

let () =
  (* A 15-replica cluster, 400 rounds, a scheduled recovery every 7
     rounds: the baseline (fault-free) run must be violation-free. *)
  let cluster = Replsim.make ~n:15 ~rounds:400 ~seed:11 () in
  Format.printf "%a@." Replsim.pp_summary cluster;

  (* The 2-arm compound space: two correlated ⟨round, replica, kind,
     peer⟩ faults per test. *)
  let sub = Replfault.multi_space ~arms:2 cluster in
  Format.printf "2-arm fault space: %d scenarios@."
    (Afex_faultspace.Subspace.cardinality sub);

  (* Seeds from the statically observable structure — the churn schedule
     says when each replica's recovery window opens, the baseline leader
     trace says whom to kill inside it. *)
  let seeds = Replfault.seed_points ~arms:2 cluster in
  Format.printf "%d candidate scenarios seeded from the churn schedule@.@."
    (List.length seeds);

  let executor =
    Afex.Executor.of_scenario_fn
      ~total_blocks:(Replsim.total_blocks cluster)
      ~description:(Replfault.description cluster)
      (Replfault.run_scenario cluster)
  in
  let config =
    {
      (Afex.Config.fitness_guided ~seed:7 ()) with
      Afex.Config.initial_seeds = seeds;
    }
  in
  (* Stop at the first deep violation — one only a correlated two-fault
     scenario can reach. *)
  let stop = { Session.matches = deep; count = 1 } in
  let r = Session.run ~stop ~iterations:5_000 config sub executor in

  (match r.Session.stop_iteration with
  | Some i -> Format.printf "first deep violation after %d tests:@." i
  | None -> Format.printf "no deep violation within the budget:@.");
  List.iter
    (fun (c : Test_case.t) ->
      if deep c then begin
        Format.printf "  fault    : %a@." Afex_injector.Fault.pp c.Test_case.fault;
        (match c.Test_case.crash_stack with
        | Some frames ->
            Format.printf "  site     :@.";
            List.iter (fun f -> Format.printf "    %s@." f) frames
        | None -> ());
        (* Replay: decode the recorded fault back into cluster
           coordinates and re-run it deterministically. *)
        match Replfault.rfault_of_fault c.Test_case.fault with
        | Ok rf ->
            let rr = Replsim.run cluster ~faults:[ rf ] in
            Format.printf
              "  replayed alone: %s (the bug needs its correlated partner)@."
              (match rr.Replsim.violation with
              | Some v -> v.Replsim.invariant
              | None -> "no violation")
        | Error e -> Format.printf "  (decode error: %s)@." e
      end)
    r.Session.executed;
  Format.printf "@.%d tests, %d crashes, %.1f%% coverage@." r.Session.iterations
    r.Session.crashed r.Session.coverage_percent
