(* Async execution: a latency-bound target (every test "takes" a few
   milliseconds, like a fork/exec'd real binary) explored blocking vs
   with many tests in flight on a single-domain event loop — same
   explored history, a fraction of the wall-clock.

   Run with: dune exec examples/async_explore.exe *)

module Pool = Afex_cluster.Pool
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case
module Target = Afex_simtarget.Target

let () =
  let target = Afex_simtarget.Apache.target () in
  let sub = Afex_simtarget.Apache.space () in
  let base = Afex.Executor.of_target target in

  (* A seeded latency model stands in for the slow target: most tests are
     quick, a 20% tail takes 8 ms (a recovery path hitting a timeout).
     The same model drives `afex explore --latency bimodal:1,8,0.2`. *)
  let model =
    Target.latency_model ~seed:7
      (Target.Bimodal { fast = 1.0; slow = 8.0; slow_share = 0.2 })
  in
  let delay_ms scenario =
    Target.latency_ms model (Afex_faultspace.Scenario.to_string scenario)
  in
  let slow_target () = Afex.Executor.delayed ~delay_ms base in

  let config () = Config.fitness_guided ~seed:42 () in
  let iterations = 300 in

  (* Blocking baseline: each test costs its full latency on the caller. *)
  let blocking, b_stats =
    Pool.run ~jobs:1 ~iterations (config ()) sub
      (Pool.Pure (Afex.Executor.sync_of_async (slow_target ())))
  in
  (* Event loop: up to 16 tests in flight, still one domain. *)
  let overlapped, o_stats =
    Pool.run ~jobs:1 ~inflight:16 ~iterations (config ()) sub
      (Pool.Async (slow_target ()))
  in

  let history (r : Session.result) =
    List.map (fun (c : Test_case.t) -> Afex_faultspace.Point.key c.Test_case.point)
      r.Session.executed
  in
  Format.printf "blocking    : %a@." Session.pp_summary blocking;
  Format.printf "inflight 16 : %a@." Session.pp_summary overlapped;
  Format.printf "blocking    : %.0f ms wall@." b_stats.Pool.wall_ms;
  Format.printf "inflight 16 : %.0f ms wall (%.1fx)@." o_stats.Pool.wall_ms
    (b_stats.Pool.wall_ms /. o_stats.Pool.wall_ms);
  Format.printf "explored histories identical: %b@."
    (history blocking = history overlapped);
  if history blocking <> history overlapped then exit 1
