(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (run with no argument for the full set), or individual
   experiments by name. [--smoke] shrinks the corpus-driven experiments
   to CI-sized inputs. *)

let experiments ~smoke =
  [
    ("fig1", fun () -> Experiments.fig1 ());
    ("table1", fun () -> Experiments.table1 ());
    ("table2", fun () -> Experiments.table2 ());
    ("table3", fun () -> Experiments.table3 ());
    ("fig8", fun () -> Experiments.fig8 ());
    ("table4", fun () -> Experiments.table4 ());
    ("table5", fun () -> Experiments.table5 ());
    ("table6", fun () -> Experiments.table6 ());
    ("fig9", fun () -> Experiments.fig9 ());
    ("scaling", fun () -> Experiments.scaling ());
    ("pool", fun () -> Experiments.pool ());
    ("remote", fun () -> Experiments.remote ());
    ("async", fun () -> Experiments.async ());
    ("adapt", fun () -> Experiments.adapt ());
    ("steal", fun () -> Experiments.steal ~smoke ());
    ("quality", fun () -> Experiments.quality ~smoke ());
    ("replsim", fun () -> Experiments.replsim ~smoke ());
    ("ablation", fun () -> Experiments.ablation ());
    ("multifault", fun () -> Experiments.multifault ());
    ("seeding", fun () -> Experiments.seeding ());
    ("rarity", fun () -> Experiments.rarity ~smoke ());
    ("perf", fun () -> Experiments.perf ());
    ("wire", fun () -> Experiments.wire ~smoke ());
    ("micro", fun () -> Micro.run ());
  ]

let usage () =
  print_endline "usage: main.exe [--smoke] [experiment...]";
  print_endline "experiments:";
  List.iter (fun (name, _) -> Printf.printf "  %s\n" name) (experiments ~smoke:false);
  print_endline "(no argument runs everything; --smoke shrinks corpus sizes)"

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let smoke = List.mem "--smoke" args in
  let names = List.filter (fun a -> a <> "--smoke") args in
  let experiments = experiments ~smoke in
  match names with
  | [] -> List.iter (fun (_, f) -> f ()) experiments
  | names ->
      if List.mem "--help" names || List.mem "-h" names then usage ()
      else
        List.iter
          (fun name ->
            match List.assoc_opt name experiments with
            | Some f -> f ()
            | None ->
                Printf.eprintf "unknown experiment %S\n" name;
                usage ();
                exit 1)
          names
