(* Microbenchmarks (Bechamel): the §7.7 explorer-throughput claim and the
   latency of the hot paths (injection engine, Levenshtein, DSL parsing). *)

open Bechamel
open Toolkit

module Apache = Afex_simtarget.Apache
module Engine = Afex_injector.Engine
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Bitset = Afex_stats.Bitset
module Rng = Afex_stats.Rng

let explorer_generation_test () =
  (* Candidate generation + bookkeeping with a zero-cost executor: measures
     how many tests/second the explorer itself can produce (paper: ~8,500/s
     on a 2 GHz Xeon). *)
  let sub = Apache.space () in
  let empty = Bitset.create 1 in
  let executor =
    Afex.Executor.of_fn ~total_blocks:1 ~description:"null" (fun fault ->
        {
          Outcome.fault;
          status = Outcome.Passed;
          triggered = false;
          coverage = empty;
          injection_stack = None;
          crash_stack = None;
          duration_ms = 0.0;
        })
  in
  let explorer = Afex.Explorer.create (Afex.Config.fitness_guided ~seed:1 ()) sub executor in
  Test.make ~name:"explorer generate+report"
    (Staged.stage (fun () ->
         match Afex.Explorer.next explorer with
         | None -> ()
         | Some proposal -> ignore (Afex.Explorer.execute explorer proposal)))

let engine_run_test () =
  let target = Apache.target () in
  let rng = Rng.create 7 in
  Test.make ~name:"injection engine run"
    (Staged.stage (fun () ->
         let fault =
           Fault.make
             ~test_id:(Rng.int rng (Afex_simtarget.Target.n_tests target))
             ~func:"read" ~call_number:(1 + Rng.int rng 10) ()
         in
         ignore (Engine.run target fault)))

let levenshtein_test () =
  let a = [ "libc.so:read"; "read_texts (derror.cc:104)"; "init (x.c:3)"; "main" ] in
  let b = [ "libc.so:close"; "mi_create (mi_create.c:831)"; "init (x.c:3)"; "main" ] in
  Test.make ~name:"levenshtein stack distance"
    (Staged.stage (fun () -> ignore (Afex_quality.Levenshtein.distance_traces a b)))

(* Two 40-frame traces differing in 6 frames, as interned tokens: the
   workload of one candidate-vs-representative comparison in the
   redundancy index. *)
let redundancy_pair () =
  let frame i = Printf.sprintf "lib%d.so:fn_%d (file_%d.c:%d)" (i mod 7) i (i mod 13) (i * 31) in
  let a = List.init 40 frame in
  let b = List.mapi (fun i f -> if i mod 7 = 0 then frame (1000 + i) else f) a in
  let intern = Afex_quality.Trace_intern.create () in
  let ta = Afex_quality.Trace_intern.intern intern a in
  let tb = Afex_quality.Trace_intern.intern intern b in
  let sort t = let s = Array.copy t in Array.sort compare s; s in
  (ta, tb, sort ta, sort tb)

let bounded_distance_test () =
  let ta, tb, _, _ = redundancy_pair () in
  Test.make ~name:"distance_at_most k=13 (40 frames)"
    (Staged.stage (fun () ->
         ignore (Afex_quality.Levenshtein.distance_at_most ~k:13 ta tb)))

let bag_filter_test () =
  let _, _, sa, sb = redundancy_pair () in
  Test.make ~name:"bag/length filter (40 frames)"
    (Staged.stage (fun () -> ignore (Afex_quality.Levenshtein.bag_lower_bound sa sb)))

(* A populated index absorbing a repeat of a known trace — the by-far
   dominant case in a long campaign (one hash probe on interned ids). *)
let index_observe_test () =
  let frame s i = Printf.sprintf "site%d:fn_%d" s i in
  let traces =
    List.init 200 (fun s -> List.init (4 + (s mod 28)) (frame s))
  in
  let intern = Afex_quality.Trace_intern.create () in
  let index = Afex_quality.Index.create ~intern () in
  List.iter (Afex_quality.Index.observe index) traces;
  let repeat = List.nth traces 100 in
  Test.make ~name:"index observe (repeat, 200 distinct)"
    (Staged.stage (fun () -> Afex_quality.Index.observe index repeat))

let feedback_weight_test () =
  let frame s i = Printf.sprintf "site%d:fn_%d" s i in
  let traces =
    List.init 200 (fun s -> List.init (4 + (s mod 28)) (frame s))
  in
  let intern = Afex_quality.Trace_intern.create () in
  let fb = Afex_quality.Feedback.create ~intern () in
  List.iter (Afex_quality.Feedback.register fb) traces;
  let probe = List.mapi (fun i f -> if i = 0 then "other:fn" else f) (List.nth traces 100) in
  Test.make ~name:"feedback weight query (200 distinct)"
    (Staged.stage (fun () -> ignore (Afex_quality.Feedback.weight fb probe)))

(* --- wire codec hot paths: one steady-state run_report, v1 vs v2 --- *)

module Message = Afex_cluster.Message

(* A representative report: mid-campaign coverage (contiguous runs plus
   strays), two stacks and a fault the connection has already seen. *)
let wire_report () =
  let rng = Rng.create 42 in
  {
    Message.seq = 1234;
    status = Outcome.Crashed;
    triggered = true;
    new_blocks = 0;
    fault =
      Fault.make ~test_id:17 ~func:"read" ~call_number:3 ~errno:"EIO"
        ~retval:(-1) ();
    coverage =
      List.sort_uniq compare
        (List.init 60 (fun i -> i) @ List.init 40 (fun _ -> Rng.int rng 400));
    injection_stack =
      Some [ "libc.so:read"; "read_texts (derror.cc:104)"; "init (x.c:3)"; "main" ];
    crash_stack = Some [ "libc.so:abort"; "handle_fatal (derror.cc:10)"; "main" ];
    duration_ms = 12.5;
  }

let wire_encode_v1_test () =
  let r = Message.Scenario_result (wire_report ()) in
  Test.make ~name:"run_report encode v1 (text)"
    (Staged.stage (fun () -> ignore (Message.encode_from_manager r)))

let wire_decode_v1_test () =
  let line = Message.encode_from_manager (Message.Scenario_result (wire_report ())) in
  Test.make ~name:"run_report decode v1 (text)"
    (Staged.stage (fun () -> ignore (Message.decode_from_manager line)))

let wire_encode_v2_test () =
  (* Steady state: the dictionary is warm, the buffer is reused — the
     per-report cost on a long-lived connection. *)
  let r = Message.Scenario_result (wire_report ()) in
  let enc = Message.V2.server_enc () in
  let b = Buffer.create 512 in
  Message.V2.encode_reply enc b r;
  Test.make ~name:"run_report encode v2 (binary)"
    (Staged.stage (fun () ->
         Buffer.clear b;
         Message.V2.encode_reply enc b r))

let wire_decode_v2_test () =
  let r = Message.Scenario_result (wire_report ()) in
  let enc = Message.V2.server_enc () in
  let dec = Message.V2.client_dec () in
  let warm = Buffer.create 512 in
  Message.V2.encode_reply enc warm r;
  (match Message.V2.decode_replies dec (Buffer.contents warm) with
  | Ok _ -> ()
  | Error e -> failwith e);
  let steady = Buffer.create 512 in
  Message.V2.encode_reply enc steady r;
  let payload = Buffer.contents steady in
  Test.make ~name:"run_report decode v2 (binary)"
    (Staged.stage (fun () -> ignore (Message.V2.decode_replies dec payload)))

let varint_roundtrip_test () =
  let values = [| 0; 1; 127; 128; 16_383; 16_384; 2_097_151; max_int |] in
  let b = Buffer.create 80 in
  Test.make ~name:"varint round-trip (8 values)"
    (Staged.stage (fun () ->
         Buffer.clear b;
         Array.iter (Message.V2.varint_encode b) values;
         let s = Buffer.contents b in
         let pos = ref 0 in
         for _ = 1 to Array.length values do
           match Message.V2.varint_decode s ~pos:!pos with
           | Ok (_, next) -> pos := next
           | Error e -> failwith e
         done))

let parse_test () =
  let description =
    "function : { malloc, calloc, realloc } errno : { ENOMEM } retval : { 0 } \
     callNumber : [ 1, 100 ] ; function : { read } errno : { EINTR } retVal : { -1 } \
     callNumber : [ 1, 50 ] ;"
  in
  Test.make ~name:"fsdl parse"
    (Staged.stage (fun () ->
         ignore (Afex_faultspace.Fsdl_parser.parse_exn description)))

let tests () =
  Test.make_grouped ~name:"afex" ~fmt:"%s %s"
    [
      explorer_generation_test ();
      engine_run_test ();
      levenshtein_test ();
      bounded_distance_test ();
      bag_filter_test ();
      index_observe_test ();
      feedback_weight_test ();
      parse_test ();
      wire_encode_v1_test ();
      wire_decode_v1_test ();
      wire_encode_v2_test ();
      wire_decode_v2_test ();
      varint_roundtrip_test ();
    ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

let run () =
  Printf.printf
    "\n================================================================\n\
     Microbenchmarks (\u{00A7}7.7: explorer throughput, hot paths)\n\
     ================================================================\n\n%!";
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ minor_allocated; major_allocated; monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 80; h = 1 }
  in
  let results = benchmark () in
  Notty_unix.output_image (Notty_unix.eol (img (window, results)));
  Printf.printf
    "\n(\"explorer generate+report\" inverted gives candidates/second;\n\
     the paper reports ~8,500/s for its Java prototype.)\n"
