(* Regeneration of every table and figure in the paper's evaluation (§7).

   Each experiment prints the paper's numbers next to the measured ones.
   Absolute values are not expected to match (the targets are simulated
   models, not the authors' testbed); the comparisons of interest are who
   wins and by roughly what factor. *)

module Subspace = Afex_faultspace.Subspace
module Axis = Afex_faultspace.Axis
module Shuffle = Afex_faultspace.Shuffle
module Rng = Afex_stats.Rng
module Bitset = Afex_stats.Bitset
module Target = Afex_simtarget.Target
module Libc = Afex_simtarget.Libc
module Coreutils = Afex_simtarget.Coreutils
module Mysql = Afex_simtarget.Mysql
module Apache = Afex_simtarget.Apache
module Mongodb = Afex_simtarget.Mongodb
module Fault = Afex_injector.Fault
module Engine = Afex_injector.Engine
module Outcome = Afex_injector.Outcome
module Relevance = Afex_quality.Relevance
module Config = Afex.Config
module Session = Afex.Session
module Test_case = Afex.Test_case
module Table = Afex_report.Table
module Figure = Afex_report.Figure
module Simulation = Afex_cluster.Simulation
module Pool = Afex_cluster.Pool
module Async_executor = Afex_cluster.Async_executor
module Remote_manager = Afex_cluster.Remote_manager
module Scheduler = Afex_cluster.Scheduler

(* Provenance header shared by every BENCH_*.json artifact: schema
   version, the exact command line, and the commit the numbers were
   measured at, so a stray artifact always traces back to its run. *)
let bench_header () =
  let commit =
    try
      let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
      let line = try String.trim (input_line ic) with End_of_file -> "" in
      match Unix.close_process_in ic with
      | Unix.WEXITED 0 when line <> "" -> line
      | _ -> "unknown"
    with _ -> "unknown"
  in
  let quote s = "\"" ^ Afex_report.Export.json_escape s ^ "\"" in
  Printf.sprintf "\"schema\": 1, \"cmd\": %s, \"commit\": %s"
    (quote (String.concat " " (Array.to_list Sys.argv)))
    (quote commit)

let section title =
  Printf.printf "\n================================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "================================================================\n\n"

let note fmt = Printf.ksprintf (fun s -> Printf.printf "%s\n" s) fmt

let pct count total =
  if total = 0 then "0%" else Printf.sprintf "%d%%" (100 * count / total)

(* ------------------------------------------------------------------ *)
(* Fig. 1: structure of the ls fault space                             *)
(* ------------------------------------------------------------------ *)

let fig1 () =
  section "Figure 1: fault space structure of the `ls` utility";
  let target = Coreutils.ls_target () in
  let funcs = Coreutils.ls_fig1_functions in
  let tests = List.init (Target.n_tests target) (fun i -> i) in
  let funcs_a = Array.of_list funcs in
  let cell ~row ~col =
    let fault =
      Fault.make ~test_id:(List.nth tests row) ~func:funcs_a.(col) ~call_number:1 ()
    in
    let outcome = Engine.run target fault in
    if not outcome.Outcome.triggered then None else Some (Outcome.failed outcome)
  in
  print_string
    (Figure.impact_matrix ~col_labels:funcs
       ~row_labels:(List.map (fun i -> Printf.sprintf "test %2d" (i + 1)) tests)
       ~cell);
  note "Paper: black/gray bands cluster by function and by test group;";
  note "the same vertical/horizontal correlation should be visible above."

(* ------------------------------------------------------------------ *)
(* Table 1: MySQL                                                      *)
(* ------------------------------------------------------------------ *)

let table1 ?(iterations = 6000) () =
  section
    (Printf.sprintf
       "Table 1: MySQL — suite vs fitness-guided vs random (%d iterations\n\
        as the 24-hour budget stand-in)" iterations);
  let target = Mysql.target () in
  let sub = Mysql.space () in
  note "Fault space |Phi_MySQL| = %d (paper: 2,179,300)" (Subspace.cardinality sub);
  let executor = Afex.Executor.of_target target in
  let suite_cov = Bitset.count (Engine.suite_coverage target) in
  let total = Target.total_blocks target in
  let fg = Session.run ~iterations (Config.fitness_guided ~seed:101 ()) sub executor in
  let rnd = Session.run ~iterations (Config.random_search ~seed:101 ()) sub executor in
  let row name cov failed crashes =
    [ name; cov; string_of_int failed; string_of_int crashes ]
  in
  print_string
    (Table.render
       ~headers:[ "MySQL"; "Coverage"; "# failed tests"; "# crashes" ]
       ~rows:
         [
           row "test suite (no injection)"
             (Printf.sprintf "%.2f%%" (100.0 *. float_of_int suite_cov /. float_of_int total))
             0 0;
           row "fitness-guided"
             (Printf.sprintf "%.2f%%" fg.Session.coverage_percent)
             fg.Session.failed fg.Session.crashed;
           row "random"
             (Printf.sprintf "%.2f%%" rnd.Session.coverage_percent)
             rnd.Session.failed rnd.Session.crashed;
         ]
       ());
  note "";
  note "Paper: suite 54.10%% / 0 / 0; fitness 52.15%% / 1,681 / 464; random 53.14%% / 575 / 51";
  note "Measured ratios: failed %s, crashes %s (paper: ~2.9x and ~9.1x)"
    (Table.fmt_ratio (float_of_int fg.Session.failed) (float_of_int rnd.Session.failed))
    (Table.fmt_ratio (float_of_int fg.Session.crashed) (float_of_int rnd.Session.crashed));
  (* Did the search rediscover the two planted real-world bugs? *)
  let reps = Session.crash_cluster_representatives fg in
  let found stack_name stack =
    let hit =
      List.exists
        (fun (c : Test_case.t) -> c.Test_case.crash_stack = Some stack)
        reps
      || List.exists
           (fun (c : Test_case.t) -> c.Test_case.crash_stack = Some stack)
           fg.Session.executed
    in
    note "bug %-28s: %s" stack_name (if hit then "FOUND" else "not found")
  in
  List.iter (fun (name, stack) -> found name stack) (Mysql.known_bug_stacks ());
  note "final axis sensitivities (testId, function, callNumber): %s"
    (String.concat ", "
       (List.map (Printf.sprintf "%.2f") (Array.to_list fg.Session.sensitivity)));
  note "(paper \u{00A7}7.3: MySQL converged to ~0.4 / ~0.1 / ~0.4)"

(* ------------------------------------------------------------------ *)
(* Table 2: Apache httpd                                               *)
(* ------------------------------------------------------------------ *)

let table2 ?(iterations = 1000) () =
  section "Table 2: Apache httpd — fitness-guided vs random, 1,000 iterations";
  let target = Apache.target () in
  let sub = Apache.space () in
  note "Fault space |Phi_Apache| = %d (paper: 11,020)" (Subspace.cardinality sub);
  let executor = Afex.Executor.of_target target in
  let fg = Session.run ~iterations (Config.fitness_guided ~seed:202 ()) sub executor in
  let rnd = Session.run ~iterations (Config.random_search ~seed:202 ()) sub executor in
  print_string
    (Table.render
       ~headers:[ "Apache httpd"; "Fitness-guided"; "Random" ]
       ~rows:
         [
           [ "# failed tests"; string_of_int fg.Session.failed; string_of_int rnd.Session.failed ];
           [ "# crashes"; string_of_int fg.Session.crashed; string_of_int rnd.Session.crashed ];
         ]
       ());
  note "";
  note "Paper: failed 736 vs 238 (3.1x), crashes 246 vs 21 (11.7x)";
  note "Measured ratios: failed %s, crashes %s"
    (Table.fmt_ratio (float_of_int fg.Session.failed) (float_of_int rnd.Session.failed))
    (Table.fmt_ratio (float_of_int fg.Session.crashed) (float_of_int rnd.Session.crashed));
  (* Fig. 7 bug manifestations. *)
  let bug_stacks = Apache.known_bug_stacks () in
  List.iter
    (fun (name, stack) ->
      let count result =
        List.length
          (List.filter
             (fun (c : Test_case.t) -> c.Test_case.crash_stack = Some stack)
             result.Session.executed)
      in
      note "manifestations of %s: fitness %d, random %d (paper: 27 vs 0)" name (count fg)
        (count rnd))
    bug_stacks

(* ------------------------------------------------------------------ *)
(* Table 3 and the recovery-coverage analysis of §7.2                  *)
(* ------------------------------------------------------------------ *)

let table3 ?(iterations = 250) () =
  section "Table 3: coreutils — fitness vs random (250 samples) vs exhaustive";
  let target = Coreutils.target () in
  let sub = Coreutils.space () in
  let cardinality = Subspace.cardinality sub in
  note "Fault space |Phi_coreutils| = %d (paper: 1,653)" cardinality;
  let executor = Afex.Executor.of_target target in
  let fg = Session.run ~iterations (Config.fitness_guided ~seed:303 ()) sub executor in
  let rnd = Session.run ~iterations (Config.random_search ~seed:303 ()) sub executor in
  let exh = Session.run ~iterations:cardinality (Config.exhaustive ~seed:303 ()) sub executor in
  print_string
    (Table.render
       ~headers:[ "coreutils"; "Fitness-guided"; "Random"; "Exhaustive" ]
       ~rows:
         [
           [
             "Code coverage";
             Printf.sprintf "%.2f%%" fg.Session.coverage_percent;
             Printf.sprintf "%.2f%%" rnd.Session.coverage_percent;
             Printf.sprintf "%.2f%%" exh.Session.coverage_percent;
           ];
           [
             "# tests executed";
             string_of_int fg.Session.iterations;
             string_of_int rnd.Session.iterations;
             string_of_int exh.Session.iterations;
           ];
           [
             "# failed tests";
             string_of_int fg.Session.failed;
             string_of_int rnd.Session.failed;
             string_of_int exh.Session.failed;
           ];
         ]
       ());
  note "";
  note "Paper: coverage 36.14%% / 35.84%% / 36.17%%; failed 74 / 32 / 205";
  note "Measured fitness/random failed ratio: %s (paper: 2.3x)"
    (Table.fmt_ratio (float_of_int fg.Session.failed) (float_of_int rnd.Session.failed));
  (* Recovery-code coverage arithmetic (§7.2). *)
  let total = Target.total_blocks target in
  let suite_cov = Bitset.count (Engine.suite_coverage target) in
  let recovery_total = Target.recovery_blocks_total target in
  let exh_extra = exh.Session.covered_blocks - suite_cov in
  let fg_extra = fg.Session.covered_blocks - suite_cov in
  note "";
  note "Recovery-code analysis (cf. \u{00A7}7.2):";
  note "  suite coverage without injection : %.2f%% (%d blocks)"
    (100.0 *. float_of_int suite_cov /. float_of_int total)
    suite_cov;
  note "  recovery-only blocks in target   : %d (%.2f%% of code)" recovery_total
    (100.0 *. float_of_int recovery_total /. float_of_int total);
  note "  extra blocks, exhaustive         : %d (all reachable recovery code)" exh_extra;
  note "  extra blocks, fitness @ %d      : %d (%s of reachable recovery code, \
        sampling %.0f%%%% of the space)"
    iterations fg_extra
    (if exh_extra = 0 then "-" else Printf.sprintf "%d%%" (100 * fg_extra / exh_extra))
    (100.0 *. float_of_int iterations /. float_of_int cardinality);
  note "  (paper: 95%% of recovery code covered while sampling 15%% of the space)"

(* ------------------------------------------------------------------ *)
(* Fig. 8: failures vs iteration                                       *)
(* ------------------------------------------------------------------ *)

let fig8 ?(iterations = 500) () =
  section "Figure 8: cumulative test failures, fitness-guided vs random";
  let target = Coreutils.target () in
  let sub = Coreutils.space () in
  let executor = Afex.Executor.of_target target in
  let fg = Session.run ~iterations (Config.fitness_guided ~seed:808 ()) sub executor in
  let rnd = Session.run ~iterations (Config.random_search ~seed:808 ()) sub executor in
  let to_floats a = Array.map float_of_int a in
  print_string
    (Figure.line_chart
       ~series:
         [
           ("fitness-guided", to_floats fg.Session.failure_curve);
           ("random", to_floats rnd.Session.failure_curve);
         ]
       ~x_label:"iteration (#faults sampled)" ~y_label:"cumulative test failures" ());
  note "Paper: the gap between the curves widens with iteration count as the";
  note "fitness-guided search infers the space structure."

(* ------------------------------------------------------------------ *)
(* Table 4: benefit of fault space structure                           *)
(* ------------------------------------------------------------------ *)

let table4 ?(iterations = 1000)
    ?(seeds = [ 404; 405; 406; 407; 408; 409; 410; 411; 412; 413 ]) () =
  section
    (Printf.sprintf
       "Table 4: efficiency under structure loss (Apache httpd, mean of %d seeds)"
       (List.length seeds));
  let target = Apache.target () in
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target target in
  (* Each variant runs under several (search seed, shuffle seed) pairs and
     reports mean counts: a single shuffle can accidentally preserve some
     structure, so the effect only shows in expectation. *)
  let mean_of run_variant =
    let totals =
      List.map
        (fun seed ->
          let r = run_variant seed in
          (r.Session.failed, r.Session.crashed))
        seeds
    in
    let n = List.length seeds in
    let f = List.fold_left (fun acc (x, _) -> acc + x) 0 totals / n in
    let c = List.fold_left (fun acc (_, x) -> acc + x) 0 totals / n in
    (f, c)
  in
  let fitness_with transform seed =
    Session.run ?transform ~iterations (Config.fitness_guided ~seed ()) sub executor
  in
  let original = mean_of (fun seed -> fitness_with None seed) in
  let shuffled axis =
    mean_of (fun seed ->
        let sh = Shuffle.shuffle_axis (Rng.create (9000 + (17 * seed) + axis)) sub ~axis in
        fitness_with (Some (Shuffle.to_target sh)) seed)
  in
  let r_test = shuffled 0 in
  let r_func = shuffled 1 in
  let r_call = shuffled 2 in
  let random =
    mean_of (fun seed ->
        Session.run ~iterations (Config.random_search ~seed ()) sub executor)
  in
  let results =
    [
      ("Original structure", original);
      ("Rand. Xtest", r_test);
      ("Rand. Xfunc", r_func);
      ("Rand. Xcall", r_call);
      ("Random search", random);
    ]
  in
  print_string
    (Table.render
       ~headers:("Apache httpd" :: List.map fst results)
       ~rows:
         [
           "% failed tests"
           :: List.map (fun (_, (f, _)) -> pct f iterations) results;
           "% crashes" :: List.map (fun (_, (_, c)) -> pct c iterations) results;
         ]
       ());
  note "";
  note "Paper: failed 73%% / 59%% / 43%% / 48%% / 23%%; crashes 25%% / 22%% / 13%% / 17%% / 2%%";
  note "Expected shape: every shuffled axis degrades the guided search, and";
  note "uninformed random search is worst."

(* ------------------------------------------------------------------ *)
(* Table 5: result-quality feedback                                    *)
(* ------------------------------------------------------------------ *)

let table5 ?(iterations = 1000) () =
  section "Table 5: redundancy feedback (Apache httpd, 1,000 iterations)";
  let target = Apache.target () in
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target target in
  let fg = Session.run ~iterations (Config.fitness_guided ~seed:505 ()) sub executor in
  let fgf =
    Session.run ~iterations
      { (Config.fitness_guided ~seed:505 ()) with Config.feedback = true }
      sub executor
  in
  let rnd = Session.run ~iterations (Config.random_search ~seed:505 ()) sub executor in
  let row name f = [ name; f fg; f fgf; f rnd ] in
  print_string
    (Table.render
       ~headers:[ "Apache httpd"; "Fitness"; "Fitness+feedback"; "Random" ]
       ~rows:
         [
           row "# failed tests" (fun r -> string_of_int r.Session.failed);
           row "# unique failures" (fun r -> string_of_int r.Session.distinct_failure_traces);
           row "# unique crashes" (fun r -> string_of_int r.Session.distinct_crash_traces);
         ]
       ());
  note "";
  note "Paper: failed 736 / 512 / 238; unique failures 249 / 348 / 190; unique crashes 4 / 7 / 2";
  note "Expected shape: feedback trades raw failure count for more unique";
  note "failures and crashes."

(* ------------------------------------------------------------------ *)
(* Table 6: system-specific knowledge                                  *)
(* ------------------------------------------------------------------ *)

let count_malloc_target_faults target test_ids =
  (* Exhaustively enumerate the malloc faults at call numbers 1-2 in the
     given tests and count those that fail — the ground truth for the
     "find all K" search target. *)
  let failing = ref [] in
  List.iter
    (fun test_id ->
      List.iter
        (fun call_number ->
          let fault = Fault.make ~test_id ~func:"malloc" ~call_number () in
          let outcome = Engine.run target fault in
          if Outcome.failed outcome then failing := fault :: !failing)
        [ 1; 2 ])
    test_ids;
  List.rev !failing

let table6 ?(cap = 30000) () =
  section "Table 6: leveraging system-specific knowledge (ln + mv, coreutils)";
  let target = Coreutils.target () in
  let executor = Afex.Executor.of_target target in
  let ln_mv = Coreutils.ln_mv_test_ids in
  let goal = List.length (count_malloc_target_faults target ln_mv) in
  note "Ground truth: %d malloc faults fail ln/mv (paper: 28)" goal;
  let matches (c : Test_case.t) =
    Test_case.failed c
    && String.equal c.Test_case.fault.Fault.func "malloc"
    && List.mem c.Test_case.fault.Fault.test_id ln_mv
    && c.Test_case.fault.Fault.call_number >= 1
    && c.Test_case.fault.Fault.call_number <= 2
  in
  let stop = { Session.matches; count = goal } in
  let full_space = Coreutils.space () in
  let trimmed_space =
    Afex_simtarget.Spaces.standard ~min_call:0 ~max_call:2
      ~funcs:Coreutils.trimmed_functions target
  in
  let env_relevance = Relevance.of_weights ~default:0.02 Coreutils.env_model in
  let run config sub =
    let r = Session.run ~stop ~iterations:cap config sub executor in
    match r.Session.stop_iteration with
    | Some i -> string_of_int i
    | None -> Printf.sprintf ">%d" r.Session.iterations
  in
  let fitness sub relevance seed =
    run { (Config.fitness_guided ~seed ()) with Config.relevance } sub
  in
  let exhaustive sub seed = run (Config.exhaustive ~seed ()) sub in
  let random sub seed = run (Config.random_search ~seed ()) sub in
  let rows =
    [
      [
        "Black-box AFEX";
        fitness full_space None 601;
        exhaustive full_space 601;
        random full_space 601;
      ];
      [
        "Trimmed fault space";
        fitness trimmed_space None 602;
        exhaustive trimmed_space 602;
        random trimmed_space 602;
      ];
      [
        "Trim + env. model";
        fitness trimmed_space (Some env_relevance) 603;
        exhaustive trimmed_space 603;
        random trimmed_space 603;
      ];
    ]
  in
  print_string
    (Table.render
       ~headers:
         [ "Knowledge level"; "Fitness-guided"; "Exhaustive"; "Random" ]
       ~rows ());
  note "";
  note "(samples needed to find all %d malloc faults; lower is better)" goal;
  note "Paper: black-box 417 / 1,653 / 836; trimmed 213 / 783 / 391;";
  note "       trim+env 103 / 783 / 391";
  note "Expected shape: trimming roughly halves the fitness-guided cost and";
  note "the environment model halves it again; both beat exhaustive/random."

(* ------------------------------------------------------------------ *)
(* Fig. 9: MongoDB development stages                                  *)
(* ------------------------------------------------------------------ *)

let fig9 ?(iterations = 250) () =
  section "Figure 9: AFEX efficiency across MongoDB development stages";
  let run target sub seed config_of =
    let executor = Afex.Executor.of_target target in
    Session.run ~iterations (config_of ?seed:(Some seed) ()) sub executor
  in
  let fg08 = run (Mongodb.target_v08 ()) (Mongodb.space_v08 ()) 904 Config.fitness_guided in
  let rnd08 = run (Mongodb.target_v08 ()) (Mongodb.space_v08 ()) 904 Config.random_search in
  let fg20 = run (Mongodb.target_v20 ()) (Mongodb.space_v20 ()) 904 Config.fitness_guided in
  let rnd20 = run (Mongodb.target_v20 ()) (Mongodb.space_v20 ()) 904 Config.random_search in
  print_string
    (Figure.bar_chart
       ~items:
         [
           ("v0.8 fitness", float_of_int fg08.Session.failed);
           ("v0.8 random", float_of_int rnd08.Session.failed);
           ("v2.0 fitness", float_of_int fg20.Session.failed);
           ("v2.0 random", float_of_int rnd20.Session.failed);
         ]
       ());
  note "";
  note "Measured advantage: v0.8 %s, v2.0 %s (paper: 2.37x and 1.43x)"
    (Table.fmt_ratio (float_of_int fg08.Session.failed) (float_of_int rnd08.Session.failed))
    (Table.fmt_ratio (float_of_int fg20.Session.failed) (float_of_int rnd20.Session.failed));
  note
    "Crashes found by fitness-guided search: v2.0 %d, v0.8 %d (the paper found a v2.0-only crash)"
    fg20.Session.crashed fg08.Session.crashed

(* ------------------------------------------------------------------ *)
(* §7.7: scalability                                                   *)
(* ------------------------------------------------------------------ *)

let scaling ?(iterations = 1000) () =
  section "\u{00A7}7.7: cluster scalability (discrete-event simulation)";
  let target = Apache.target () in
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target target in
  let results =
    Simulation.scaling ~node_counts:[ 1; 2; 4; 8; 14 ] ~iterations
      (Config.fitness_guided ~seed:707 ())
      sub executor
  in
  let baseline = List.hd results in
  print_string
    (Table.render
       ~headers:[ "nodes"; "tests"; "wall (s)"; "tests/s"; "speedup"; "utilization" ]
       ~rows:
         (List.map
            (fun (r : Simulation.result) ->
              [
                string_of_int r.Simulation.nodes;
                string_of_int r.Simulation.tests_executed;
                Printf.sprintf "%.1f" (r.Simulation.wall_ms /. 1000.0);
                Printf.sprintf "%.1f" r.Simulation.throughput_per_s;
                Printf.sprintf "%.2fx" (Simulation.speedup ~baseline r);
                Printf.sprintf "%.0f%%" (100.0 *. r.Simulation.utilization);
              ])
            results)
       ());
  note "";
  note "Paper: throughput scales linearly up to 14 EC2 nodes with no overhead;";
  note "the explorer alone generates ~8,500 tests/second (see the `micro` bench)."

(* ------------------------------------------------------------------ *)
(* Parallel pool: real multicore execution vs the §7.7 prediction      *)
(* ------------------------------------------------------------------ *)

let pool ?(iterations = 2000) ?(jobs_list = [ 1; 2; 4 ]) () =
  section "Parallel pool: real Domain-based speedup vs the \u{00A7}7.7 prediction";
  let cores = Domain.recommended_domain_count () in
  note "host: %d hardware threads available (speedup saturates there)" cores;
  let target = Mysql.target () in
  let sub = Mysql.space () in
  let base = Afex.Executor.of_target target in
  (* The simulated injector answers in microseconds where a real target
     costs milliseconds of wall-clock per test, so dispatch overhead would
     swamp any measurement. Charge a calibrated CPU spin per test to model
     realistic per-test work. *)
  let spin () =
    let acc = ref 0.0 in
    for i = 1 to 60_000 do
      acc := !acc +. sqrt (float_of_int i)
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let executor =
    Afex.Executor.of_scenario_fn ~total_blocks:base.Afex.Executor.total_blocks
      ~description:"mysql 5.1.44 (+calibrated spin)" (fun s ->
        spin ();
        base.Afex.Executor.run_scenario s)
  in
  let config = Config.fitness_guided ~seed:4242 () in
  let history (r : Session.result) =
    List.map
      (fun (c : Test_case.t) -> Afex_faultspace.Point.key c.Test_case.point)
      r.Session.executed
  in
  let runs =
    List.map
      (fun jobs ->
        let result, stats =
          Pool.run ~jobs ~iterations config sub (Pool.Pure executor)
        in
        (jobs, result, stats))
      jobs_list
  in
  let _, r1, s1 = List.hd runs in
  let baseline_wall = s1.Pool.wall_ms in
  print_string
    (Table.render
       ~headers:
         [ "jobs"; "wall (s)"; "tests/s"; "speedup"; "cache hits"; "history = jobs 1" ]
       ~rows:
         (List.map
            (fun (jobs, (r : Session.result), (s : Pool.stats)) ->
              [
                string_of_int jobs;
                Printf.sprintf "%.2f" (s.Pool.wall_ms /. 1000.0);
                Printf.sprintf "%.0f"
                  (1000.0 *. float_of_int r.Session.iterations /. s.Pool.wall_ms);
                Printf.sprintf "%.2fx" (baseline_wall /. s.Pool.wall_ms);
                string_of_int s.Pool.cache_hits;
                (if history r = history r1 then "yes" else "NO");
              ])
            runs)
       ());
  note "";
  (* The same node counts through the discrete-event model, for the
     predicted ceiling. *)
  let sims =
    Simulation.scaling ~node_counts:jobs_list ~iterations:1000
      (Config.fitness_guided ~seed:4242 ())
      sub base
  in
  let sim_base = List.hd sims in
  note "discrete-event prediction (\u{00A7}7.7 model) for the same node counts:";
  List.iter
    (fun (s : Simulation.result) ->
      note "  %2d nodes -> %.2fx predicted speedup" s.Simulation.nodes
        (Simulation.speedup ~baseline:sim_base s))
    sims;
  note "";
  note "Paper: tests/second scales linearly in the number of nodes (\u{00A7}7.7).";
  note "Measured speedup tracks the prediction up to the host's %d hardware" cores;
  note "threads; on a single-core host the pool degrades gracefully to ~1x.";
  note "The explored-point history must read `yes` on every row: the search";
  note "is replayable at any parallelism (same seed => same campaign)."

(* ------------------------------------------------------------------ *)
(* Remote dispatch over the wire protocol (§6.1)                       *)
(* ------------------------------------------------------------------ *)

let remote ?(iterations = 1500) () =
  section "Remote dispatch: the Fig. 2 wire protocol vs in-process workers";
  let target = Mysql.target () in
  let sub = Mysql.space () in
  let base = Afex.Executor.of_target target in
  (* Same calibrated spin as the `pool` experiment: the simulated injector
     answers in microseconds, so without it the framing/syscall cost of
     the wire would swamp the comparison. *)
  let spin () =
    let acc = ref 0.0 in
    for i = 1 to 60_000 do
      acc := !acc +. sqrt (float_of_int i)
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let executor =
    Afex.Executor.of_scenario_fn ~total_blocks:base.Afex.Executor.total_blocks
      ~description:"mysql 5.1.44 (+calibrated spin)" (fun s ->
        spin ();
        base.Afex.Executor.run_scenario s)
  in
  let config () = Config.fitness_guided ~seed:4242 () in
  let history (r : Session.result) =
    List.map
      (fun (c : Test_case.t) -> Afex_faultspace.Point.key c.Test_case.point)
      r.Session.executed
  in
  (* Each remote worker is a real server loop on its own domain behind a
     real socketpair — the same code path as TCP minus the network. *)
  let with_loopbacks n f =
    let lbs =
      List.init n (fun i ->
          Remote_manager.Loopback.create
            ~name:(Printf.sprintf "loopback-%d" i)
            ~executor ())
    in
    let specs = List.map Remote_manager.Loopback.spec lbs in
    let result = f specs in
    List.iter Remote_manager.Loopback.shutdown lbs;
    result
  in
  let measure name ~jobs ~managers =
    let (result : Session.result), (stats : Pool.stats) =
      with_loopbacks managers (fun specs ->
          Pool.run ~remotes:specs ~jobs ~iterations (config ()) sub
            (Pool.Pure executor))
    in
    (name, jobs, managers, result, stats)
  in
  let runs =
    [
      measure "local only" ~jobs:2 ~managers:0;
      measure "remote only" ~jobs:0 ~managers:2;
      measure "mixed" ~jobs:1 ~managers:1;
    ]
  in
  let _, _, _, r_local, s_local = List.hd runs in
  print_string
    (Table.render
       ~headers:
         [
           "workers";
           "jobs";
           "managers";
           "wall (s)";
           "tests/s";
           "wire runs";
           "fallbacks";
           "history = local";
         ]
       ~rows:
         (List.map
            (fun (name, jobs, managers, (r : Session.result), (s : Pool.stats)) ->
              [
                name;
                string_of_int jobs;
                string_of_int managers;
                Printf.sprintf "%.2f" (s.Pool.wall_ms /. 1000.0);
                Printf.sprintf "%.0f"
                  (1000.0 *. float_of_int r.Session.iterations /. s.Pool.wall_ms);
                string_of_int s.Pool.remote_runs;
                string_of_int s.Pool.remote_fallbacks;
                (if history r = history r_local then "yes" else "NO");
              ])
            runs)
       ());
  note "";
  (* Per-test cost of the wire: remote-only vs local-only at equal worker
     count isolates the encode/frame/syscall/decode round-trip. *)
  (match runs with
  | [ _; (_, _, _, r_remote, s_remote); _ ] ->
      let per_test wall (r : Session.result) =
        1000.0 *. wall /. float_of_int r.Session.iterations
      in
      let overhead =
        per_test s_remote.Pool.wall_ms r_remote -. per_test s_local.Pool.wall_ms r_local
      in
      note "wire dispatch overhead: %+.0f us/test (remote-only vs local-only, 2 workers each)"
        overhead
  | _ -> ());
  let sims =
    Simulation.scaling ~node_counts:[ 1; 2 ] ~iterations:1000 (config ()) sub base
  in
  (match sims with
  | [ one; two ] ->
      note "discrete-event prediction (\u{00A7}7.7 model): 2 nodes -> %.2fx over 1"
        (Simulation.speedup ~baseline:one two)
  | _ -> ());
  note "";
  note "Paper: the explorer ships scenarios to node managers over a text";
  note "protocol (Fig. 2) and merges results centrally; AFEX's search is";
  note "agnostic to where a test physically ran. Every row must read `yes`:";
  note "local domains, remote managers and mixed fleets explore the exact";
  note "same history for a fixed seed."

(* ------------------------------------------------------------------ *)
(* Async executor: overlapping latency-bound tests on one domain       *)
(* ------------------------------------------------------------------ *)

let async ?(iterations = 400) ?(inflight_list = [ 1; 4; 8; 32 ]) () =
  section "Async executor: latency-bound target, one domain, --inflight N";
  let target = Apache.target () in
  let sub = Apache.space () in
  let base = Afex.Executor.of_target target in
  (* Every test gets a deterministic simulated service time with a 2 ms
     mean — the same order as the §7.7 dispatch overhead, and the regime
     where a real fork/exec'd target spends its wall-clock waiting rather
     than computing. The blocking baseline pays each latency in sequence;
     the event loop overlaps up to [inflight] of them. *)
  let dist = Target.Uniform { lo = 1.0; hi = 3.0 } in
  let model = Target.latency_model ~seed:31 dist in
  let mean = Target.mean_latency_ms model in
  note "latency model: %s (mean %.2f ms/test, seeded => replayable)"
    (Target.latency_dist_to_string dist)
    mean;
  let delay_ms scenario =
    Target.latency_ms model (Afex_faultspace.Scenario.to_string scenario)
  in
  let async_exec () = Afex.Executor.delayed ~delay_ms base in
  let config () = Config.fitness_guided ~seed:2718 () in
  let history (r : Session.result) =
    List.map
      (fun (c : Test_case.t) -> Afex_faultspace.Point.key c.Test_case.point)
      r.Session.executed
  in
  let measure name ~inflight pool_exec =
    let pool = Pool.create ~inflight ~jobs:1 pool_exec in
    let result, stats = Pool.session ~iterations pool (config ()) sub in
    let astats = Pool.async_stats pool in
    Pool.shutdown pool;
    (name, inflight, result, stats, astats)
  in
  let blocking =
    measure "blocking worker" ~inflight:1
      (Pool.Pure (Afex.Executor.sync_of_async (async_exec ())))
  in
  let runs =
    blocking
    :: List.map
         (fun inflight ->
           measure
             (Printf.sprintf "inflight %d" inflight)
             ~inflight
             (Pool.Async (async_exec ())))
         inflight_list
  in
  let _, _, r_blocking, s_blocking, _ = blocking in
  print_string
    (Table.render
       ~headers:
         [
           "mode"; "wall (s)"; "tests/s"; "speedup"; "max in flight";
           "history = blocking";
         ]
       ~rows:
         (List.map
            (fun (name, _, (r : Session.result), (s : Pool.stats), astats) ->
              [
                name;
                Printf.sprintf "%.2f" (s.Pool.wall_ms /. 1000.0);
                Printf.sprintf "%.0f"
                  (1000.0 *. float_of_int r.Session.iterations /. s.Pool.wall_ms);
                Printf.sprintf "%.2fx" (s_blocking.Pool.wall_ms /. s.Pool.wall_ms);
                (match astats with
                | Some a -> string_of_int a.Async_executor.max_inflight
                | None -> "-");
                (if history r = history r_blocking then "yes" else "NO");
              ])
            runs)
       ());
  note "";
  (* Per-test event-loop overhead: what the wall clock costs beyond the
     perfectly-overlapped latency floor, vs the 2 ms/test messaging
     overhead the §7.7 discrete-event model charges for dispatch. *)
  List.iter
    (fun (name, inflight, _, (s : Pool.stats), astats) ->
      match astats with
      | None -> ()
      | Some a ->
          let executed = float_of_int s.Pool.executed in
          let floor_ms = executed *. mean /. float_of_int inflight in
          let overhead = (s.Pool.wall_ms -. floor_ms) /. executed in
          note
            "  %-11s: %+.3f ms/test over the latency floor (%d wakeups; \
             \u{00A7}7.7 model charges %.1f ms/test for dispatch)"
            name overhead a.Async_executor.wakeups
            Simulation.default_config.Simulation.dispatch_ms)
    runs;
  note "";
  note "Every history cell must read `yes`: completions merge in submission";
  note "order, so the campaign replays bit-identically at any concurrency.";
  note "Expected shape: speedup approaches the window size while latency";
  note "dominates, then saturates once the overlapped latency floor drops";
  note "under the loop's own bookkeeping; >=3x at inflight 8.";
  note "(Paper \u{00A7}7.7: one explorer saturates ~8,500 tests/s; keeping many";
  note "slow tests in flight per node is how a small cluster reaches it.)"

let ablation ?(iterations = 1000) () =
  section "Ablation: AFEX design choices (Apache httpd, 1,000 iterations)";
  let target = Apache.target () in
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target target in
  let base_params = Afex.Mutator.default_params in
  let run name config =
    let r = Session.run ~iterations config sub executor in
    [ name; string_of_int r.Session.failed; string_of_int r.Session.crashed;
      string_of_int r.Session.distinct_failure_traces ]
  in
  let fg params = { (Config.fitness_guided ~seed:606 ()) with
                    Config.strategy = Config.Fitness_guided params } in
  let rows =
    [
      run "full AFEX (Algorithm 1)" (fg base_params);
      run "uniform axis choice (no sensitivity)"
        (fg { base_params with Afex.Mutator.uniform_axis_choice = true });
      run "uniform value choice (no Gaussian)"
        (fg { base_params with Afex.Mutator.uniform_value_choice = true });
      run "no aging"
        { (fg base_params) with Config.aging_decay = 1.0; retire_threshold = 0.0 };
      run "drop-min eviction"
        { (fg base_params) with Config.eviction = Afex.Pqueue.Drop_min };
      run "dynamic sigma (extension)"
        (fg { base_params with Afex.Mutator.dynamic_sigma = true });
      run "random search" (Config.random_search ~seed:606 ());
    ]
  in
  print_string
    (Table.render
       ~headers:[ "variant"; "# failed"; "# crashes"; "# unique failures" ]
       ~rows ());
  note "";
  note "Each row disables one mechanism of Algorithm 1. The full algorithm";
  note "should clearly beat the mutation ablations (uniform axis/value choice)";
  note "and random search; eviction policy and aging are second-order effects";
  note "whose benefit shows on pathological spaces (outlier peaks, see tests)."

(* ------------------------------------------------------------------ *)
(* Extension: multi-fault scenarios (§6 mentions them; the evaluation  *)
(* is restricted to single faults, so this is the paper's natural      *)
(* follow-on experiment)                                               *)
(* ------------------------------------------------------------------ *)

let multifault ?(iterations = 2500) () =
  section "Extension: multi-fault exploration (Apache httpd)";
  let target = Apache.target () in
  let latent_stack = Apache.latent_bug_stack () in
  (* 1. No single-fault probe can expose the latent log-rotation bug:
     exhaustively fail every write call of every test that reaches it. *)
  let single_hits = ref 0 in
  List.iter
    (fun test_id ->
      List.iter
        (fun call_number ->
          let fault = Fault.make ~test_id ~func:"write" ~call_number () in
          let o = Engine.run target fault in
          if o.Outcome.crash_stack = Some latent_stack then incr single_hits)
        (List.init 12 (fun k -> k + 1)))
    (List.init 58 (fun i -> i));
  note "single-fault exhaustive sweep over write faults: %d latent-bug crashes" !single_hits;
  (* 2. Multi-fault search over the compound space. *)
  let sub = Apache.multi_space () in
  note "compound space |Phi| = %d (testId x (function x callNumber)^2)"
    (Subspace.cardinality sub);
  let executor = Afex.Executor.of_target_multi target in
  let run config = Session.run ~iterations config sub executor in
  (* Redundancy feedback is essential here: without it the guided search
     farms the dense ordinary-crash clusters forever and never pays the
     exploration cost of a compound, rare bug (cf. §7.4). *)
  let fg =
    run { (Config.fitness_guided ~seed:271 ()) with Config.feedback = true }
  in
  let rnd = run (Config.random_search ~seed:271 ()) in
  let latent_hits r =
    List.length
      (List.filter
         (fun (c : Test_case.t) -> c.Test_case.crash_stack = Some latent_stack)
         r.Session.executed)
  in
  let first_latent r =
    let rec scan i = function
      | [] -> "-"
      | (c : Test_case.t) :: rest ->
          if c.Test_case.crash_stack = Some latent_stack then string_of_int i
          else scan (i + 1) rest
    in
    scan 1 r.Session.executed
  in
  print_string
    (Table.render
       ~headers:[ "2-fault scenarios"; "Fitness+feedback"; "Random" ]
       ~rows:
         [
           [ "# failed tests"; string_of_int fg.Session.failed; string_of_int rnd.Session.failed ];
           [ "# crashes"; string_of_int fg.Session.crashed; string_of_int rnd.Session.crashed ];
           [
             "# latent-bug crashes";
             string_of_int (latent_hits fg);
             string_of_int (latent_hits rnd);
           ];
           [ "first latent hit at"; first_latent fg; first_latent rnd ];
         ]
       ());
  note "";
  note "The latent recovery bug (write failure during recovery from an earlier";
  note "fault) is invisible to every single-fault probe (0 hits above) but";
  note "reachable in the compound space. Feedback-guided search both finds";
  note "more of its manifestations and dominates on overall failures and";
  note "crashes; without the feedback loop, plain fitness-guided search farms";
  note "the dense single-fault crash clusters and misses the compound bug";
  note "entirely."


(* ------------------------------------------------------------------ *)
(* Extension: static-analysis seeding (the §4 suggestion)              *)
(* ------------------------------------------------------------------ *)

let seeding ?(iterations = 400) () =
  section "Extension: seeding the search with static-analysis findings (\u{00A7}4)";
  let target = Apache.target () in
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target target in
  let findings = Afex_simtarget.Analyzer.analyze ~recall:0.7 ~precision:0.6 target in
  note "analyzer flagged %d callsites (imperfect on purpose: recall 0.7, precision 0.6)"
    (List.length findings);
  let seeds = Afex.Seeding.points_for sub target findings ~max_seeds:40 in
  note "%d injection seeds derived from the findings" (List.length seeds);
  let first_crash r =
    let rec scan i = function
      | [] -> "-"
      | (c : Test_case.t) :: rest ->
          if Test_case.crashed c then string_of_int i else scan (i + 1) rest
    in
    scan 1 r.Session.executed
  in
  let totals config =
    List.fold_left
      (fun (f, c, firsts) seed ->
        let r = Session.run ~iterations (config seed) sub executor in
        (f + r.Session.failed, c + r.Session.crashed, firsts ^ " " ^ first_crash r))
      (0, 0, "") [ 71; 72; 73 ]
  in
  let plain_f, plain_c, plain_first =
    totals (fun seed -> Config.fitness_guided ~seed ())
  in
  let seeded_f, seeded_c, seeded_first =
    totals (fun seed ->
        { (Config.fitness_guided ~seed ()) with Config.initial_seeds = seeds })
  in
  print_string
    (Table.render
       ~headers:[ Printf.sprintf "totals over 3 seeds x %d iters" iterations;
                  "Black-box"; "Analysis-seeded" ]
       ~rows:
         [
           [ "# failed tests"; string_of_int plain_f; string_of_int seeded_f ];
           [ "# crashes"; string_of_int plain_c; string_of_int seeded_c ];
           [ "first crash at iteration"; plain_first; seeded_first ];
         ]
       ());
  note "";
  note "Seeding should find the first crash sooner and lift the early totals;";
  note "the search then outgrows the (imperfect) analysis rather than being";
  note "limited by it."

(* ------------------------------------------------------------------ *)
(* Extension: performance-impact search over a network fault injector  *)
(* (§2's requests-per-second metric; §6's "top-50 worst faults         *)
(* performance-wise" search target; §3's tool-independence claim)      *)
(* ------------------------------------------------------------------ *)

let perf ?(iterations = 600) () =
  section "Extension: worst faults performance-wise (network packet drops)";
  let server = Afex_simtarget.Netsim.httpd_like () in
  let sub = Afex_injector.Netfault.space server in
  note "drop space |Phi| = %d (workload x connection x packet)" (Subspace.cardinality sub);
  let executor =
    Afex.Executor.of_scenario_fn
      ~total_blocks:(Afex_injector.Netfault.total_request_blocks server)
      ~description:"httpd-net packet drops"
      (Afex_injector.Netfault.run_scenario server)
  in
  let sensor = Afex_injector.Netfault.throughput_loss_sensor server in
  let config sensor_config seed = { (sensor_config ?seed:(Some seed) ()) with Config.sensor } in
  let fg = Session.run ~iterations (config Config.fitness_guided 909) sub executor in
  let rnd = Session.run ~iterations (config Config.random_search 909) sub executor in
  let loss_of (c : Test_case.t) =
    Afex_injector.Netfault.throughput_loss server c.Test_case.fault
  in
  let total_loss r =
    List.fold_left (fun acc c -> acc +. loss_of c) 0.0 r.Session.executed
  in
  let heavy r =
    List.length (List.filter (fun c -> loss_of c > 10.0) r.Session.executed)
  in
  print_string
    (Table.render
       ~headers:[ "packet drops"; "Fitness-guided"; "Random" ]
       ~rows:
         [
           [
             "cumulative throughput loss found";
             Printf.sprintf "%.0f%%-pts" (total_loss fg);
             Printf.sprintf "%.0f%%-pts" (total_loss rnd);
           ];
           [
             "drops costing >10% throughput";
             string_of_int (heavy fg);
             string_of_int (heavy rnd);
           ];
           [
             "requests lost (failed runs)";
             string_of_int fg.Session.failed;
             string_of_int rnd.Session.failed;
           ];
         ]
       ());
  note "";
  note "top 10 worst faults performance-wise (fitness-guided result set):";
  let by_loss =
    List.sort (fun a b -> compare (loss_of b) (loss_of a)) fg.Session.executed
  in
  List.iteri
    (fun i (c : Test_case.t) ->
      if i < 10 then begin
        let d = Afex_injector.Netfault.drop_of_fault c.Test_case.fault in
        note "  %2d. workload %d, connection %2d, packet %3d -> %.1f%% throughput lost"
          (i + 1) d.Afex_simtarget.Netsim.workload d.Afex_simtarget.Netsim.connection
          d.Afex_simtarget.Netsim.packet (loss_of c)
      end)
    by_loss;
  note "";
  (* Burst drops: the same hunt over < lo, hi > sub-interval windows. *)
  let bsub = Afex_injector.Netfault.burst_space server in
  let bexec =
    Afex.Executor.of_scenario_fn
      ~total_blocks:(Afex_injector.Netfault.total_request_blocks server)
      ~description:"httpd-net loss bursts"
      (Afex_injector.Netfault.run_burst_scenario server)
  in
  let bsensor = Afex_injector.Netfault.burst_loss_sensor server in
  let brun strategy =
    Session.run ~iterations
      { (strategy ()) with Config.sensor = bsensor }
      bsub bexec
  in
  let bfg = brun (fun () -> Config.fitness_guided ~seed:911 ()) in
  let brnd = brun (fun () -> Config.random_search ~seed:911 ()) in
  let bloss r =
    List.fold_left
      (fun acc (c : Test_case.t) ->
        acc +. Afex_injector.Netfault.burst_throughput_loss server c.Test_case.fault)
      0.0 r.Session.executed
  in
  note "loss bursts (< lo, hi > sub-interval windows), |Phi| = %d:"
    (Subspace.cardinality bsub);
  print_string
    (Table.render
       ~headers:[ "loss bursts"; "Fitness-guided"; "Random" ]
       ~rows:
         [
           [
             "cumulative throughput loss found";
             Printf.sprintf "%.0f%%-pts" (bloss bfg);
             Printf.sprintf "%.0f%%-pts" (bloss brnd);
           ];
           [
             "runs losing requests";
             string_of_int bfg.Session.failed;
             string_of_int brnd.Session.failed;
           ];
         ]
       ());
  note "";
  note "Same explorer, different injector and impact metric: the guided";
  note "search needs no change to hunt performance bugs instead of crashes,";
  note "and sub-interval axes (loss windows) mutate like any other attribute."

(* ------------------------------------------------------------------ *)
(* Adaptive window: the AIMD controller vs every static window         *)
(* ------------------------------------------------------------------ *)

let adapt ?(iterations = 5000) ?(windows = [ 1; 4; 8; 32; 128 ]) () =
  section "Adaptive window: AIMD controller vs static windows (BENCH_adapt.json)";
  let target = Apache.target () in
  let sub = Apache.space () in
  let base = Afex.Executor.of_target target in
  (* Three service-time regimes: latency negligible against the
     explorer's own generation cost, latency dominant, and a straggler
     mix. A static window can only be right for one of them. *)
  let models =
    [
      ("fast", Target.Fixed 0.1);
      ("slow", Target.Fixed 2.0);
      ("bimodal", Target.Bimodal { fast = 0.3; slow = 8.0; slow_share = 0.15 });
    ]
  in
  let history (r : Session.result) =
    List.map
      (fun (c : Test_case.t) -> Afex_faultspace.Point.key c.Test_case.point)
      r.Session.executed
  in
  let pool_exec dist =
    let model = Target.latency_model ~seed:31 dist in
    Pool.Async
      (Afex.Executor.delayed
         ~delay_ms:(fun scenario ->
           Target.latency_ms model (Afex_faultspace.Scenario.to_string scenario))
         base)
  in
  let config () = Config.fitness_guided ~seed:2718 () in
  let run_static dist w =
    let pool = Pool.create ~inflight:w ~jobs:1 (pool_exec dist) in
    let result, stats =
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.session ~batch_size:w ~iterations pool (config ()) sub)
    in
    (result, stats)
  in
  let run_scheduled dist scheduler =
    let pool = Pool.create ~inflight:(Scheduler.window scheduler) ~jobs:1 (pool_exec dist) in
    let result, stats =
      Fun.protect
        ~finally:(fun () -> Pool.shutdown pool)
        (fun () -> Pool.session ~scheduler ~iterations pool (config ()) sub)
    in
    (result, stats)
  in
  let throughput (s : Pool.stats) n =
    if s.Pool.wall_ms <= 0.0 then 0.0
    else 1000.0 *. float_of_int n /. s.Pool.wall_ms
  in
  let model_jsons =
    List.map
      (fun (name, dist) ->
        note "--- %s: %s ---" name (Target.latency_dist_to_string dist);
        let statics =
          List.map
            (fun w ->
              let r, s = run_static dist w in
              (w, throughput s r.Session.iterations, s))
            windows
        in
        let scheduler =
          Scheduler.create ~window_min:1 ~window_max:128 ~initial:32 ~seed:99
            Scheduler.Adaptive
        in
        let ar, astats = run_scheduled dist scheduler in
        let a_tp = throughput astats ar.Session.iterations in
        let trace = Scheduler.trace scheduler in
        (* The determinism contract: re-applying the recorded window
           sequence reproduces the explored history bit-for-bit. *)
        let replay =
          Scheduler.create ~window_min:1 ~window_max:128
            (Scheduler.Replay (Scheduler.Trace.windows trace))
        in
        let rr, _ = run_scheduled dist replay in
        let replay_ok = history ar = history rr in
        let best = List.fold_left (fun acc (_, tp, _) -> Float.max acc tp) 0.0 statics in
        let worst =
          List.fold_left (fun acc (_, tp, _) -> Float.min acc tp) infinity statics
        in
        print_string
          (Table.render
             ~headers:[ "window"; "wall (s)"; "tests/s"; "vs best static" ]
             ~rows:
               (List.map
                  (fun (w, tp, (s : Pool.stats)) ->
                    [
                      string_of_int w;
                      Printf.sprintf "%.2f" (s.Pool.wall_ms /. 1000.0);
                      Printf.sprintf "%.0f" tp;
                      Printf.sprintf "%.2fx" (tp /. best);
                    ])
                  statics
                @ [
                    [
                      Printf.sprintf "adaptive (%d batches)" (Scheduler.batches scheduler);
                      Printf.sprintf "%.2f" (astats.Pool.wall_ms /. 1000.0);
                      Printf.sprintf "%.0f" a_tp;
                      Printf.sprintf "%.2fx" (a_tp /. best);
                    ];
                  ])
             ());
        note "  adaptive: %.2fx best static, %.2fx worst static, replay identical: %s"
          (a_tp /. best) (a_tp /. worst)
          (if replay_ok then "yes" else "NO");
        note "";
        let static_json =
          String.concat ", "
            (List.map
               (fun (w, tp, (s : Pool.stats)) ->
                 Printf.sprintf
                   "{\"window\": %d, \"wall_ms\": %.1f, \"throughput\": %.1f}" w
                   s.Pool.wall_ms tp)
               statics)
        in
        Printf.sprintf
          "{\"model\": %S, \"dist\": %S, \"static\": [%s], \"adaptive\": \
           {\"wall_ms\": %.1f, \"throughput\": %.1f, \"final_window\": %d, \
           \"batches\": %d, \"vs_best_static\": %.3f, \"vs_worst_static\": %.3f, \
           \"replay_identical\": %b, \"trace\": %s}}"
          name
          (Target.latency_dist_to_string dist)
          static_json astats.Pool.wall_ms a_tp (Scheduler.window scheduler)
          (Scheduler.batches scheduler) (a_tp /. best) (a_tp /. worst) replay_ok
          (Scheduler.Trace.to_json trace))
      models
  in
  let json =
    Printf.sprintf "{%s, \"iterations\": %d, \"models\": [%s]}\n"
      (bench_header ()) iterations
      (String.concat ", " model_jsons)
  in
  let oc = open_out "BENCH_adapt.json" in
  output_string oc json;
  close_out oc;
  note "machine-readable results written to BENCH_adapt.json";
  note "";
  note "Expected shape: the controller lands within 10%% of the best static";
  note "window on every latency model without being told which one it faces,";
  note "and beats the worst static window by >=2x where latency dominates";
  note "(a static window must be chosen per target; the controller needs no";
  note "such choice, which is the point)."

(* ------------------------------------------------------------------ *)
(* Work-stealing runtime: the unbounded window vs every static choice  *)
(* ------------------------------------------------------------------ *)

let steal ?(smoke = false) ?iterations ?(windows = [ 1; 4; 8; 32; 128 ]) () =
  section
    "Work-stealing runtime: window=inf vs static and adaptive windows \
     (BENCH_steal.json)";
  let iterations =
    match iterations with Some n -> n | None -> if smoke then 1200 else 5000
  in
  let target = Apache.target () in
  let sub = Apache.space () in
  let base = Afex.Executor.of_target target in
  (* The barrier pool had to pick a window: too small starves workers,
     too large stalls the merge. The barrierless runtime has no merge
     barrier, so the window only bounds feedback lag — an unbounded
     window (capped by the sync watermarks alone) should saturate every
     latency regime without tuning. Smoke keeps the gate cheap: the fast
     model only. *)
  let models =
    let all =
      [
        ("fast", Target.Fixed 0.1);
        ("slow", Target.Fixed 2.0);
        ("bimodal", Target.Bimodal { fast = 0.3; slow = 8.0; slow_share = 0.15 });
      ]
    in
    if smoke then [ List.hd all ] else all
  in
  let pool_exec dist =
    let model = Target.latency_model ~seed:31 dist in
    Pool.Async
      (Afex.Executor.delayed
         ~delay_ms:(fun scenario ->
           Target.latency_ms model (Afex_faultspace.Scenario.to_string scenario))
         base)
  in
  let config () = Config.fitness_guided ~seed:2718 () in
  let run ?scheduler ?sync_every ~inflight ~batch_size dist =
    let pool = Pool.create ~inflight ~jobs:1 (pool_exec dist) in
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        Pool.session ?scheduler ?sync_every ~batch_size ~iterations pool
          (config ()) sub)
  in
  let throughput (s : Pool.stats) n =
    if s.Pool.wall_ms <= 0.0 then 0.0
    else 1000.0 *. float_of_int n /. s.Pool.wall_ms
  in
  let regression = ref false in
  let model_jsons =
    List.map
      (fun (name, dist) ->
        note "--- %s: %s ---" name (Target.latency_dist_to_string dist);
        let statics =
          List.map
            (fun w ->
              let r, s = run ~inflight:w ~batch_size:w dist in
              (w, throughput s r.Session.iterations, s))
            windows
        in
        let scheduler =
          Scheduler.create ~window_min:1 ~window_max:128 ~initial:32 ~seed:99
            Scheduler.Adaptive
        in
        let ar, astats =
          run ~scheduler ~inflight:(Scheduler.window scheduler) ~batch_size:32 dist
        in
        let a_tp = throughput astats ar.Session.iterations in
        (* window=inf: no submission bound at all (the CLI spelling is
           --batch 0). No checkpoint is armed, so the sync watermarks buy
           nothing here and are pushed past the campaign — otherwise the
           unbounded window degenerates into a 512-wide barrier every
           sync_every releases. The event loop still needs a concrete
           capacity; give it the widest static window. *)
        let ir, istats =
          run ~sync_every:max_int ~inflight:512 ~batch_size:max_int dist
        in
        let i_tp = throughput istats ir.Session.iterations in
        let best_static =
          List.fold_left (fun acc (_, tp, _) -> Float.max acc tp) 0.0 statics
        in
        let best = Float.max best_static a_tp in
        (* "Matches or beats": within measurement noise of the best tuned
           run, with zero tuning. 5% is well above run-to-run jitter on
           the latency floor and well below any real window mistake. *)
        let ok = i_tp >= 0.95 *. best in
        if not ok then regression := true;
        print_string
          (Table.render
             ~headers:[ "window"; "wall (s)"; "tests/s"; "vs best" ]
             ~rows:
               (List.map
                  (fun (w, tp, (s : Pool.stats)) ->
                    [
                      string_of_int w;
                      Printf.sprintf "%.2f" (s.Pool.wall_ms /. 1000.0);
                      Printf.sprintf "%.0f" tp;
                      Printf.sprintf "%.2fx" (tp /. best);
                    ])
                  statics
                @ [
                    [
                      "adaptive";
                      Printf.sprintf "%.2f" (astats.Pool.wall_ms /. 1000.0);
                      Printf.sprintf "%.0f" a_tp;
                      Printf.sprintf "%.2fx" (a_tp /. best);
                    ];
                    [
                      "inf";
                      Printf.sprintf "%.2f" (istats.Pool.wall_ms /. 1000.0);
                      Printf.sprintf "%.0f" i_tp;
                      Printf.sprintf "%.2fx" (i_tp /. best);
                    ];
                  ])
             ());
        note "  window=inf: %.2fx best static, %.2fx best adaptive -> %s"
          (i_tp /. best_static)
          (if a_tp > 0.0 then i_tp /. a_tp else 0.0)
          (if ok then "ok" else "REGRESSION");
        note "";
        let static_json =
          String.concat ", "
            (List.map
               (fun (w, tp, (s : Pool.stats)) ->
                 Printf.sprintf
                   "{\"window\": %d, \"wall_ms\": %.1f, \"throughput\": %.1f}" w
                   s.Pool.wall_ms tp)
               statics)
        in
        Printf.sprintf
          "{\"model\": %S, \"dist\": %S, \"static\": [%s], \"adaptive\": \
           {\"wall_ms\": %.1f, \"throughput\": %.1f}, \"unbounded\": \
           {\"wall_ms\": %.1f, \"throughput\": %.1f, \"vs_best_static\": %.3f, \
           \"vs_adaptive\": %.3f, \"ok\": %b}}"
          name
          (Target.latency_dist_to_string dist)
          static_json astats.Pool.wall_ms a_tp istats.Pool.wall_ms i_tp
          (i_tp /. best_static)
          (if a_tp > 0.0 then i_tp /. a_tp else 0.0)
          ok)
      models
  in
  let json =
    Printf.sprintf "{%s, \"iterations\": %d, \"smoke\": %b, \"models\": [%s]}\n"
      (bench_header ()) iterations smoke
      (String.concat ", " model_jsons)
  in
  let oc = open_out "BENCH_steal.json" in
  output_string oc json;
  close_out oc;
  note "machine-readable results written to BENCH_steal.json";
  note "";
  note "Expected shape: with the merge barrier gone the window only bounds";
  note "feedback lag, so the untuned unbounded window saturates the latency";
  note "floor on every model and matches (>= 0.95x) the best tuned run.";
  if !regression then begin
    prerr_endline
      "steal: REGRESSION - the unbounded window fell below the best tuned \
       window; the barrierless runtime is leaving throughput on the table";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Redundancy engine: incremental interned index vs batch reference    *)
(* ------------------------------------------------------------------ *)

(* The seed redundancy feedback, kept verbatim as the reference: a
   string-keyed exact table plus a linear fold of full-DP similarities
   over every distinct trace. *)
module Seed_feedback = struct
  type t = {
    exact : (string, unit) Hashtbl.t;
    mutable traces : string array list;
  }

  let create () = { exact = Hashtbl.create 64; traces = [] }
  let key trace = String.concat "\x00" trace

  let weight t trace =
    if Hashtbl.mem t.exact (key trace) then 0.0
    else begin
      let candidate = Array.of_list trace in
      let best =
        List.fold_left
          (fun acc known ->
            Float.max acc (Afex_quality.Levenshtein.similarity candidate known))
          0.0 t.traces
      in
      1.0 -. best
    end

  let register t trace =
    let k = key trace in
    if not (Hashtbl.mem t.exact k) then begin
      Hashtbl.add t.exact k ();
      t.traces <- Array.of_list trace :: t.traces
    end

  let weigh_fitness t ~trace fitness =
    let w = weight t trace in
    register t trace;
    fitness *. w
end

(* A synthetic crash-trace corpus shaped like a long campaign: a few
   hundred underlying bug sites, each manifesting through a handful of
   near-identical stack variants, sampled with heavy repetition. Distinct
   traces stay bounded while the outcome stream grows, exactly the regime
   where the seed implementation's per-outcome linear scan and end-of-run
   quadratic clustering dominate. *)
let quality_corpus ~seed n =
  let rng = Rng.create seed in
  let fresh_frame () =
    Printf.sprintf "lib%d.so:fn_%d (file_%d.c:%d)" (Rng.int rng 7)
      (Rng.int rng 5000) (Rng.int rng 120) (Rng.int rng 997)
  in
  let n_sites = max 8 (n / 100) in
  let sites =
    Array.init n_sites (fun _ ->
        Array.init (4 + Rng.int rng 28) (fun _ -> fresh_frame ()))
  in
  let variants =
    Array.map
      (fun base ->
        let n_variants = 1 + Rng.int rng 8 in
        Array.init n_variants (fun v ->
            if v = 0 then Array.to_list base
            else begin
              let t = Array.copy base in
              (* 1-2 frame substitutions: same bug, slightly different path *)
              for _ = 1 to 1 + Rng.int rng 2 do
                t.(Rng.int rng (Array.length t)) <- fresh_frame ()
              done;
              Array.to_list t
            end))
      sites
  in
  List.init n (fun _ ->
      let site = variants.(Rng.int rng n_sites) in
      let trace = site.(Rng.int rng (Array.length site)) in
      (trace, 1.0 +. Rng.float rng 9.0))

(* Canonical partition view: each item mapped to the first item of its
   cluster, plus the representative list. Comparing these compares
   assignments and representatives without depending on hash order. *)
let batch_assignment traces =
  let items = List.mapi (fun i tr -> (i, tr)) traces in
  let clusters = Afex_quality.Clustering.cluster ~trace:snd items in
  let assign = Array.make (List.length traces) (-1) in
  List.iter
    (fun c ->
      let rep = fst c.Afex_quality.Clustering.representative in
      List.iter
        (fun (i, _) -> assign.(i) <- rep)
        c.Afex_quality.Clustering.members)
    clusters;
  (assign, List.map (fun c -> fst c.Afex_quality.Clustering.representative) clusters)

let index_assignment index n =
  let clusters = Afex_quality.Index.clusters index in
  let assign = Array.make n (-1) in
  List.iter
    (fun members ->
      let rep = List.hd members in
      List.iter (fun i -> assign.(i) <- rep) members)
    clusters;
  (assign, List.map List.hd clusters)

let quality ?(smoke = false) () =
  section
    "Redundancy engine: interned incremental index vs batch reference \
     (BENCH_quality.json)";
  let sizes = if smoke then [ 300; 1_000 ] else [ 1_000; 10_000; 50_000 ] in
  let time f =
    let t0 = Unix.gettimeofday () in
    let v = f () in
    (v, 1000.0 *. (Unix.gettimeofday () -. t0))
  in
  let corpus_jsons =
    List.map
      (fun n ->
        let corpus = quality_corpus ~seed:(4242 + n) n in
        let traces = List.map fst corpus in
        (* Reference: seed feedback per outcome, batch clustering at the
           end — what Session.summarize used to re-run from scratch. *)
        let (ref_weights, (ref_assign, ref_reps)), ref_ms =
          time (fun () ->
              let fb = Seed_feedback.create () in
              let weights =
                List.map
                  (fun (trace, fitness) ->
                    Seed_feedback.weigh_fitness fb ~trace fitness)
                  corpus
              in
              (weights, batch_assignment traces))
        in
        (* Fast path: shared intern table, filtered bounded-distance
           feedback, incremental cluster index. *)
        let (fast_weights, (fast_assign, fast_reps), distinct, clusters), fast_ms =
          time (fun () ->
              let intern = Afex_quality.Trace_intern.create () in
              let fb = Afex_quality.Feedback.create ~intern () in
              let index = Afex_quality.Index.create ~intern () in
              let weights =
                List.map
                  (fun (trace, fitness) ->
                    let w =
                      Afex_quality.Feedback.weigh_fitness fb ~trace:(Some trace)
                        fitness
                    in
                    Afex_quality.Index.observe index trace;
                    w)
                  corpus
              in
              ( weights,
                index_assignment index n,
                Afex_quality.Index.distinct index,
                Afex_quality.Index.cluster_count index ))
        in
        let weights_identical =
          List.for_all2
            (fun a b -> Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b))
            ref_weights fast_weights
        in
        let clusters_identical =
          (* Same partition, same representative per cluster. The batch
             pass lists equal-sized clusters in hash order, so the rep
             {e sets} are compared rather than their ordering. *)
          ref_assign = fast_assign
          && List.sort compare ref_reps = List.sort compare fast_reps
        in
        if not (weights_identical && clusters_identical) then begin
          note
            "!! divergence on the %d-trace corpus (weights %b, assignment %b, \
             reps %b)"
            n weights_identical
            (ref_assign = fast_assign)
            (List.sort compare ref_reps = List.sort compare fast_reps);
          exit 1
        end;
        let speedup = if fast_ms > 0.0 then ref_ms /. fast_ms else infinity in
        note
          "%6d traces (%4d distinct, %3d clusters): reference %8.1f ms, \
           incremental %7.1f ms -> %5.1fx, results identical"
          n distinct clusters ref_ms fast_ms speedup;
        Printf.sprintf
          "{\"traces\": %d, \"distinct\": %d, \"clusters\": %d, \
           \"reference_ms\": %.1f, \"incremental_ms\": %.1f, \"speedup\": %.1f, \
           \"weights_identical\": %b, \"clusters_identical\": %b}"
          n distinct clusters ref_ms fast_ms speedup weights_identical
          clusters_identical)
      sizes
  in
  let json =
    Printf.sprintf "{%s, \"smoke\": %b, \"corpora\": [%s]}\n"
      (bench_header ()) smoke
      (String.concat ", " corpus_jsons)
  in
  let oc = open_out "BENCH_quality.json" in
  output_string oc json;
  close_out oc;
  note "";
  note "machine-readable results written to BENCH_quality.json";
  note "";
  note "Expected shape: the incremental engine wins by >=10x on the 10k";
  note "corpus (interning makes exact repeats one hash probe; the bag and";
  note "length filters reject cross-bug pairs before any DP; the k-bounded";
  note "kernel exits early on the rest) while weights, assignments and";
  note "representatives stay bit-identical to the seed implementation."

(* ------------------------------------------------------------------ *)
(* Workload: replicated consensus recovery under churn                 *)
(* ------------------------------------------------------------------ *)

module Replsim = Afex_simtarget.Replsim
module Replfault = Afex_injector.Replfault

let replsim_exec cluster =
  Afex.Executor.of_scenario_fn
    ~total_blocks:(Replsim.total_blocks cluster)
    ~description:(Replfault.description cluster)
    (Replfault.run_scenario cluster)

let replsim_deep (c : Test_case.t) =
  match c.Test_case.crash_stack with
  | None -> false
  | Some frames ->
      List.exists
        (fun inv -> List.mem ("invariant:" ^ inv) frames)
        Replsim.deep_invariants

let replsim ?(smoke = false) () =
  section
    "New workload: replicated consensus recovery under churn \
     (BENCH_replsim.json)";
  let n = if smoke then 12 else 120 in
  let rounds = if smoke then 300 else 1200 in
  let cap = if smoke then 12_000 else 25_000 in
  let jobs = max 1 (min 8 (Domain.recommended_domain_count () - 1)) in
  let cluster = Replsim.make ~n ~rounds ~seed:11 () in
  note "%s" (Format.asprintf "%a" Replsim.pp_summary cluster);
  let sub = Replfault.multi_space ~arms:2 cluster in
  let analysis_seeds = Replfault.seed_points ~arms:2 cluster in
  note
    "2-arm compound space over (round, replica, kind, peer): %d scenarios; \
     search cap %d tests, %d worker domains (history is jobs-independent)"
    (Subspace.cardinality sub) cap jobs;
  note
    "guided search is seeded with %d candidate scenarios derived from the \
     churn schedule and baseline leader trace (the §4 seeding idea); random \
     search samples the compound space uniformly"
    (List.length analysis_seeds);
  note "";
  let executor = replsim_exec cluster in
  (* Time to the first planted deep bug: a violation only a correlated
     two-fault scenario can reach (kill the leader while a replica
     recovers from a fault-stale backup, or kill a replica whose catch-up
     stream an ack-drop fault has severed). *)
  let stop = { Session.matches = replsim_deep; count = 1 } in
  let campaign config =
    let result, stats =
      Pool.run ~jobs ~stop ~iterations:cap config sub (Pool.Pure executor)
    in
    let found = List.find_opt replsim_deep result.Session.executed in
    let invariant =
      match found with
      | Some { Test_case.crash_stack = Some frames; _ } ->
          List.fold_left
            (fun acc f ->
              match String.index_opt f ':' with
              | Some i when String.sub f 0 i = "invariant" ->
                  String.sub f (i + 1) (String.length f - i - 1)
              | _ -> acc)
            "-" frames
      | _ -> "-"
    in
    (result, stats, found, invariant)
  in
  let cell (result : Session.result) =
    match result.Session.stop_iteration with
    | Some i -> string_of_int i
    | None -> Printf.sprintf ">%d" result.Session.iterations
  in
  let seeds = if smoke then [ 901 ] else [ 901; 902; 903 ] in
  let guided_found = ref 0 in
  let run_jsons = ref [] in
  let rows =
    List.map
      (fun seed ->
        let g, gs, gf, ginv =
          campaign
            {
              (Config.fitness_guided ~seed ()) with
              Config.initial_seeds = analysis_seeds;
            }
        in
        let r, rs, _, rinv = campaign (Config.random_search ~seed ()) in
        if gf <> None then incr guided_found;
        let scenario =
          match gf with
          | Some c -> Format.asprintf "%a" Afex_injector.Fault.pp c.Test_case.fault
          | None -> "-"
        in
        List.iter
          (fun (strategy, (res : Session.result), (st : Pool.stats), inv) ->
            run_jsons :=
              Printf.sprintf
                "{\"strategy\": \"%s\", \"seed\": %d, \"found\": %b, \
                 \"stop_iteration\": %s, \"invariant\": \"%s\", \"tests\": %d, \
                 \"wall_ms\": %.0f}"
                strategy seed
                (res.Session.stop_iteration <> None)
                (match res.Session.stop_iteration with
                | Some i -> string_of_int i
                | None -> "null")
                inv res.Session.iterations st.Pool.wall_ms
              :: !run_jsons)
          [ ("fitness", g, gs, ginv); ("random", r, rs, rinv) ];
        [
          string_of_int seed;
          cell g;
          Printf.sprintf "%.1f" (gs.Pool.wall_ms /. 1000.0);
          ginv;
          cell r;
          Printf.sprintf "%.1f" (rs.Pool.wall_ms /. 1000.0);
          (if scenario = "-" then "-" else scenario);
        ])
      seeds
  in
  print_string
    (Table.render
       ~headers:
         [
           "seed";
           "guided TTFV";
           "wall (s)";
           "invariant";
           "random TTFV";
           "wall (s)";
           "guided scenario";
         ]
       ~rows ());
  note "";
  note
    "(TTFV = tests executed until the first deep violation; >cap means the \
     strategy never reached one)";
  note "";
  (* Replica-count scaling: how the guided time-to-first deep violation
     grows with the cluster size, everything else fixed. *)
  let sweep_ns = if smoke then [ 6; 12 ] else [ 30; 60; 120 ] in
  let sweep_cap = if smoke then 12_000 else 25_000 in
  let sweep_jsons =
    List.map
      (fun sn ->
        let c = Replsim.make ~n:sn ~rounds ~seed:11 () in
        let sub = Replfault.multi_space ~arms:2 c in
        let result, stats =
          Pool.run ~jobs ~stop ~iterations:sweep_cap
            {
              (Config.fitness_guided ~seed:905 ()) with
              Config.initial_seeds = Replfault.seed_points ~arms:2 c;
            }
            sub
            (Pool.Pure (replsim_exec c))
        in
        note "  n = %3d -> guided TTFV %s (%.1f s wall, %.1f%% coverage)" sn
          (cell result)
          (stats.Pool.wall_ms /. 1000.0)
          result.Session.coverage_percent;
        Printf.sprintf
          "{\"n\": %d, \"found\": %b, \"stop_iteration\": %s, \"wall_ms\": \
           %.0f, \"coverage_percent\": %.2f}"
          sn
          (result.Session.stop_iteration <> None)
          (match result.Session.stop_iteration with
          | Some i -> string_of_int i
          | None -> "null")
          stats.Pool.wall_ms result.Session.coverage_percent)
      sweep_ns
  in
  let json =
    Printf.sprintf
      "{%s, \"smoke\": %b, \"n\": %d, \"rounds\": %d, \"cap\": %d, \"arms\": \
       2, \"jobs\": %d, \"analysis_seeds\": %d, \"runs\": [%s], \"sweep\": \
       [%s]}\n"
      (bench_header ()) smoke n rounds cap jobs
      (List.length analysis_seeds)
      (String.concat ", " (List.rev !run_jsons))
      (String.concat ", " sweep_jsons)
  in
  let oc = open_out "BENCH_replsim.json" in
  output_string oc json;
  close_out oc;
  note "";
  note "machine-readable results written to BENCH_replsim.json";
  note "";
  note "Expected shape: seeded with churn-window candidates, the guided";
  note "search reaches a planted correlated-fault bug within its first few";
  note "tests and the recovery-path blocks (overlap -> stale-backup /";
  note "blocked-catchup -> deep violation) grade the rest of the campaign;";
  note "uniform random sampling of the compound space never reaches one";
  note "within the cap.";
  if !guided_found = 0 then begin
    note "!! guided search found no deep violation on any seed";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* Rarity-guided search: TTFV of planted deep bugs (BENCH_rarity.json) *)
(* ------------------------------------------------------------------ *)

(* Time-to-first-violation race: the same fitness-guided search run
   three ways — the paper's fitness pipeline, fitness plus the rarity
   bonus, and rarity plus FairFuzz mutation masking — against one
   planted deep bug per target.  TTFV is the number of tests executed
   until the bug's stop predicate first matches; a run that never
   matches is censored at the cap (so medians never flatter a variant
   that simply gave up).  Medians are taken across seeds. *)

let rarity_variants =
  [
    ("paper", fun c -> c);
    ("rarity", fun c -> Config.with_rarity c);
    ("rarity+mask", fun c -> Config.with_rarity ~mask:true c);
  ]

let rarity_median xs =
  let a = Array.of_list (List.sort compare xs) in
  a.(Array.length a / 2)

let rarity ?(smoke = false) () =
  section
    "Rarity-guided search: time to first planted deep bug \
     (BENCH_rarity.json)";
  (* First-hit times are heavy-tailed (one lucky early draw settles the
     race), so single-seed comparisons are noise: the verdict is the
     median over a fixed 10-seed panel, identical in smoke and full mode
     — smoke only shrinks the censoring caps. *)
  let seeds = [ 701; 702; 703; 704; 705; 801; 802; 803; 804; 805 ] in
  (* replsim: a deep invariant violation only a correlated two-fault
     scenario reaches.  The churn-schedule seeding of the replsim
     experiment is deliberately absent here: seeds land on the bug in a
     handful of tests and every variant ties, so the race would measure
     nothing.  Unseeded, the search must walk there through the rare
     recovery blocks — exactly what the rarity bonus rewards.  The
     cluster is sized so that sliver stays reachable within the cap; on
     much larger clusters the base search's first-hit variance swamps
     any guidance signal. *)
  let replsim_target =
    let cluster = Replsim.make ~n:12 ~rounds:300 ~seed:11 () in
    ( "replsim",
      Replfault.multi_space ~arms:2 cluster,
      replsim_exec cluster,
      replsim_deep,
      (if smoke then 3_000 else 8_000),
      fun seed -> Config.fitness_guided ~seed () )
  in
  (* netsim: the planted bug is the first lost request — a drop that
     aborts a fragile (no-retry-budget) connection.  Most drops only
     cost latency; the failing ones live on the few fragile
     connections, i.e. rarely covered request blocks. *)
  let netsim_target =
    let server = Afex_simtarget.Netsim.httpd_like () in
    let sensor = Afex_injector.Netfault.throughput_loss_sensor server in
    ( "netsim",
      Afex_injector.Netfault.space server,
      Afex.Executor.of_scenario_fn
        ~total_blocks:(Afex_injector.Netfault.total_request_blocks server)
        ~description:"httpd-net packet drops"
        (Afex_injector.Netfault.run_scenario server),
      (fun (c : Test_case.t) -> c.Test_case.status = Outcome.Test_failed),
      (if smoke then 400 else 1_500),
      fun seed -> { (Config.fitness_guided ~seed ()) with Config.sensor } )
  in
  (* mysql: the two planted real-world bugs (#53268 double unlock,
     #25097 errmsg.sys read) crash with known stacks; the race is to
     the first crash matching either. *)
  let mysql_target =
    let stacks =
      List.filter_map
        (fun (_, s) -> if s = [] then None else Some s)
        (Mysql.known_bug_stacks ())
    in
    ( "mysql",
      Mysql.space (),
      Afex.Executor.of_target (Mysql.target ()),
      (fun (c : Test_case.t) ->
        match c.Test_case.crash_stack with
        | Some s -> List.mem s stacks
        | None -> false),
      (if smoke then 1_500 else 6_000),
      fun seed -> Config.fitness_guided ~seed () )
  in
  let target_jsons = ref [] in
  let wins = ref 0 and gate = ref None in
  List.iter
    (fun (name, sub, executor, matches, cap, base) ->
      let stop = { Session.matches; count = 1 } in
      let ttfv (r : Session.result) =
        match r.Session.stop_iteration with Some i -> i | None -> cap
      in
      let run_jsons = ref [] in
      let medians =
        List.map
          (fun (variant, wrap) ->
            let ts =
              List.map
                (fun seed ->
                  let r =
                    Session.run ~stop ~iterations:cap (wrap (base seed)) sub
                      executor
                  in
                  let t = ttfv r in
                  run_jsons :=
                    Printf.sprintf
                      "{\"variant\": \"%s\", \"seed\": %d, \"found\": %b, \
                       \"ttfv\": %d, \"masked_accepts\": %d, \
                       \"masked_rejects\": %d}"
                      variant seed
                      (r.Session.stop_iteration <> None)
                      t r.Session.mutator.Afex.Mutator.masked
                      r.Session.mutator.Afex.Mutator.masked_rejects
                    :: !run_jsons;
                  t)
                seeds
            in
            (variant, rarity_median ts))
          rarity_variants
      in
      let m v = List.assoc v medians in
      let paper = m "paper" and mask = m "rarity+mask" in
      if mask <= paper then incr wins;
      if name = "replsim" then gate := Some (mask <= paper);
      let cell t = if t >= cap then Printf.sprintf ">%d" cap else string_of_int t in
      print_string
        (Table.render
           ~headers:[ name; "median TTFV"; "vs paper" ]
           ~rows:
             (List.map
                (fun (variant, t) ->
                  [
                    variant;
                    cell t;
                    (if variant = "paper" then "-"
                     else Printf.sprintf "%+d" (t - paper));
                  ])
                medians)
           ());
      note "";
      target_jsons :=
        Printf.sprintf
          "{\"target\": \"%s\", \"cap\": %d, \"median\": {%s}, \"runs\": [%s]}"
          name cap
          (String.concat ", "
             (List.map
                (fun (v, t) -> Printf.sprintf "\"%s\": %d" v t)
                medians))
          (String.concat ", " (List.rev !run_jsons))
        :: !target_jsons)
    [ replsim_target; netsim_target; mysql_target ];
  let json =
    Printf.sprintf
      "{%s, \"smoke\": %b, \"seeds\": %d, \"weight\": %g, \"cutoff\": %g, \
       \"targets\": [%s]}\n"
      (bench_header ()) smoke (List.length seeds)
      Config.default_rarity.Config.weight Config.default_rarity.Config.cutoff
      (String.concat ", " (List.rev !target_jsons))
  in
  let oc = open_out "BENCH_rarity.json" in
  output_string oc json;
  close_out oc;
  note "machine-readable results written to BENCH_rarity.json";
  note "";
  note
    "(TTFV censored at the cap; rarity+mask at or below paper on %d/3 targets)"
    !wins;
  if smoke then
    match !gate with
    | Some true -> ()
    | _ ->
        note "!! smoke gate: rarity+mask TTFV exceeded paper fitness on replsim";
        exit 1

(* ------------------------------------------------------------------ *)
(* Wire protocol v2 vs v1: bytes, frames and throughput per test      *)
(* ------------------------------------------------------------------ *)

let wire ?(smoke = false) () =
  section
    "Wire protocol v2 vs v1: coalesced binary frames vs text lines\n\
     (BENCH_wire.json)";
  let iterations = if smoke then 400 else 3000 in
  let inflight_list = [ 1; 8; 32 ] in
  let target = Apache.target () in
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target target in
  let config () = Config.fitness_guided ~seed:5151 () in
  let history (r : Session.result) =
    List.map
      (fun (c : Test_case.t) -> Afex_faultspace.Point.key c.Test_case.point)
      r.Session.executed
  in
  (* One window size everywhere: the explored history is a function of
     (seed, window, iterations), so every wire/inflight combination must
     reproduce this local baseline byte-for-byte. *)
  let batch_size = 64 in
  let local_result, _ =
    Pool.run ~jobs:1 ~batch_size ~iterations (config ()) sub (Pool.Pure executor)
  in
  let local_history = history local_result in
  (* inflight 1 exercises the blocking client on a proxy domain (one
     request per frame on both versions: the codec is the only delta);
     inflight > 1 exercises the pipelined event-loop client, where v2
     additionally coalesces requests and replies into shared frames. *)
  let measure ~wire ~inflight =
    let lb =
      Remote_manager.Loopback.create
        ~name:(Printf.sprintf "v%d-if%d" wire inflight)
        ~executor ()
    in
    let pool =
      Pool.create
        ~remotes:[ Remote_manager.Loopback.spec ~wire lb ]
        ~inflight ~jobs:0 (Pool.Pure executor)
    in
    let result, stats = Pool.session ~batch_size ~iterations pool (config ()) sub in
    let rstats = Pool.remote_stats pool in
    Pool.shutdown pool;
    Remote_manager.Loopback.shutdown lb;
    let rs =
      match rstats with
      | [ (_, s) ] -> s
      | _ -> failwith "wire bench: expected exactly one manager"
    in
    (wire, inflight, result, stats, rs)
  in
  let runs =
    List.concat_map
      (fun inflight -> [ measure ~wire:1 ~inflight; measure ~wire:2 ~inflight ])
      inflight_list
  in
  let per_test n (stats : Pool.stats) =
    if stats.Pool.remote_runs = 0 then 0.0
    else float_of_int n /. float_of_int stats.Pool.remote_runs
  in
  let bytes_per_test (rs : Remote_manager.stats) stats =
    per_test (rs.Remote_manager.bytes_out + rs.Remote_manager.bytes_in) stats
  in
  let frames_per_test (rs : Remote_manager.stats) stats =
    per_test (rs.Remote_manager.frames_out + rs.Remote_manager.frames_in) stats
  in
  print_string
    (Table.render
       ~headers:
         [
           "wire"; "inflight"; "wall (s)"; "tests/s"; "wire runs";
           "bytes/test"; "frames/test"; "history = local";
         ]
       ~rows:
         (List.map
            (fun (wire, inflight, (r : Session.result), (s : Pool.stats), rs) ->
              [
                Printf.sprintf "v%d" wire;
                string_of_int inflight;
                Printf.sprintf "%.2f" (s.Pool.wall_ms /. 1000.0);
                Printf.sprintf "%.0f"
                  (1000.0 *. float_of_int r.Session.iterations /. s.Pool.wall_ms);
                string_of_int s.Pool.remote_runs;
                Printf.sprintf "%.0f" (bytes_per_test rs s);
                Printf.sprintf "%.2f" (frames_per_test rs s);
                (if history r = local_history then "yes" else "NO");
              ])
            runs)
       ());
  note "";
  note "(one sent frame ~ one write(2): frames/test is the syscall proxy;";
  note "v1 sends one frame per request and reply, v2 coalesces both.)";
  note "";
  let find w i =
    List.find (fun (w', i', _, _, _) -> w' = w && i' = i) runs
  in
  let reductions =
    List.map
      (fun i ->
        let _, _, _, s1, rs1 = find 1 i in
        let _, _, _, s2, rs2 = find 2 i in
        let b1 = bytes_per_test rs1 s1 and b2 = bytes_per_test rs2 s2 in
        let r = if b2 > 0.0 then b1 /. b2 else 0.0 in
        note "inflight %2d: v2 moves %.1fx fewer bytes/test (%.0f -> %.0f)" i r
          b1 b2;
        (i, r))
      inflight_list
  in
  let speedup32 =
    let _, _, _, s1, _ = find 1 32 and _, _, _, s2, _ = find 2 32 in
    s1.Pool.wall_ms /. s2.Pool.wall_ms
  in
  note "inflight 32: v2 throughput %.2fx v1" speedup32;
  let histories_ok =
    List.for_all (fun (_, _, r, _, _) -> history r = local_history) runs
  in
  let json =
    Printf.sprintf
      "{%s, \"smoke\": %b, \"iterations\": %d, \"runs\": [%s], \
       \"bytes_reduction\": {%s}, \"speedup_inflight32\": %.3f, \
       \"histories_match_local\": %b}\n"
      (bench_header ()) smoke iterations
      (String.concat ", "
         (List.map
            (fun (wire, inflight, (r : Session.result), (s : Pool.stats), rs) ->
              Printf.sprintf
                "{\"wire\": %d, \"inflight\": %d, \"wall_ms\": %.1f, \
                 \"tests_per_s\": %.0f, \"remote_runs\": %d, \
                 \"bytes_per_test\": %.1f, \"frames_per_test\": %.2f, \
                 \"negotiated\": %d, \"downgrades\": %d, \
                 \"history_matches\": %b}"
                wire inflight s.Pool.wall_ms
                (1000.0 *. float_of_int r.Session.iterations /. s.Pool.wall_ms)
                s.Pool.remote_runs (bytes_per_test rs s) (frames_per_test rs s)
                rs.Remote_manager.wire rs.Remote_manager.wire_downgrades
                (history r = local_history))
            runs))
      (String.concat ", "
         (List.map (fun (i, r) -> Printf.sprintf "\"%d\": %.3f" i r) reductions))
      speedup32 histories_ok
  in
  let oc = open_out "BENCH_wire.json" in
  output_string oc json;
  close_out oc;
  note "machine-readable results written to BENCH_wire.json";
  if not histories_ok then begin
    note "!! gate: a wire run diverged from the local history";
    exit 1
  end;
  List.iter
    (fun (i, r) ->
      if r < 2.0 then begin
        note "!! gate: bytes/test reduction %.2fx at inflight %d is below 2x" r i;
        exit 1
      end)
    reductions;
  if (not smoke) && speedup32 < 1.3 then begin
    note "!! gate: v2 throughput %.2fx at inflight 32 is below 1.3x" speedup32;
    exit 1
  end
