type t = {
  sorted : float array;
  mean : float;
  m2 : float; (* sum of squared deviations from the mean *)
}

let of_array a =
  let sorted = Array.copy a in
  Array.sort compare sorted;
  let n = Array.length a in
  if n = 0 then { sorted; mean = 0.0; m2 = 0.0 }
  else begin
    let mean = Array.fold_left ( +. ) 0.0 a /. float_of_int n in
    let m2 =
      Array.fold_left (fun acc x -> acc +. ((x -. mean) *. (x -. mean))) 0.0 a
    in
    { sorted; mean; m2 }
  end

let of_list l = of_array (Array.of_list l)

let count t = Array.length t.sorted
let mean t = t.mean

let variance t =
  let n = count t in
  if n < 2 then 0.0 else t.m2 /. float_of_int (n - 1)

let population_variance t =
  let n = count t in
  if n = 0 then 0.0 else t.m2 /. float_of_int n

let stddev t = sqrt (variance t)
let min_value t = if count t = 0 then 0.0 else t.sorted.(0)
let max_value t = if count t = 0 then 0.0 else t.sorted.(count t - 1)
let total t = t.mean *. float_of_int (count t)

let quantile t q =
  let n = count t in
  if n = 0 then 0.0
  else if n = 1 then t.sorted.(0)
  else begin
    let q = Float.max 0.0 (Float.min 1.0 q) in
    let pos = q *. float_of_int (n - 1) in
    let lo = int_of_float (Float.floor pos) in
    let hi = int_of_float (Float.ceil pos) in
    if lo = hi then t.sorted.(lo)
    else begin
      let frac = pos -. float_of_int lo in
      (t.sorted.(lo) *. (1.0 -. frac)) +. (t.sorted.(hi) *. frac)
    end
  end

let median t = quantile t 0.5

let pp ppf t =
  Format.fprintf ppf "n=%d mean=%.4f sd=%.4f min=%.4f max=%.4f" (count t)
    (mean t) (stddev t) (min_value t) (max_value t)

module Online = struct
  type acc = { mutable n : int; mutable mean : float; mutable m2 : float; mutable values : float list }

  let create () = { n = 0; mean = 0.0; m2 = 0.0; values = [] }

  let add acc x =
    acc.n <- acc.n + 1;
    let delta = x -. acc.mean in
    acc.mean <- acc.mean +. (delta /. float_of_int acc.n);
    acc.m2 <- acc.m2 +. (delta *. (x -. acc.mean));
    acc.values <- x :: acc.values

  let count acc = acc.n
  let mean acc = if acc.n = 0 then 0.0 else acc.mean
  let variance acc = if acc.n < 2 then 0.0 else acc.m2 /. float_of_int (acc.n - 1)
  let stddev acc = sqrt (variance acc)
  let to_summary acc = of_list (List.rev acc.values)
end
