(** Descriptive statistics.

    Used for impact-precision (variance over repeated trials, §5 of the
    paper), experiment reporting, and the cluster simulation. *)

type t
(** Immutable summary of a sample. *)

val of_list : float list -> t
val of_array : float array -> t

val count : t -> int
val mean : t -> float
(** Mean; 0 for an empty sample. *)

val variance : t -> float
(** Unbiased sample variance (n-1 denominator); 0 for n < 2. *)

val population_variance : t -> float
(** Variance with n denominator; 0 for empty. *)

val stddev : t -> float
val min_value : t -> float
val max_value : t -> float
val total : t -> float

val median : t -> float
val quantile : t -> float -> float
(** [quantile t q] with [q] in [0,1], linear interpolation. *)

val pp : Format.formatter -> t -> unit

(** Online accumulation (Welford). *)
module Online : sig
  type acc

  val create : unit -> acc
  val add : acc -> float -> unit
  val count : acc -> int
  val mean : acc -> float
  val variance : acc -> float
  val stddev : acc -> float
  val to_summary : acc -> t
end
