(** Discrete probability distributions used by the AFEX search.

    The paper's Algorithm 1 needs two sampling primitives: fitness- or
    sensitivity-proportional choice over a finite set (lines 1-6), and a
    discrete approximation of a Gaussian centred on the current attribute
    value (lines 8-9). Both are provided here over index domains
    [0 .. n-1]. *)

type weighted
(** A normalized discrete distribution over indices [0 .. n-1]. *)

val of_weights : float array -> weighted
(** [of_weights w] builds a distribution proportional to [w]. Negative
    weights raise [Invalid_argument]. If every weight is zero the
    distribution is uniform. *)

val weights : weighted -> float array
(** Normalized probabilities (sums to 1 up to rounding). *)

val support : weighted -> int
(** Number of indices. *)

val sample : Rng.t -> weighted -> int
(** Draw an index with its assigned probability. *)

val sample_weighted : Rng.t -> float array -> int
(** One-shot [sample rng (of_weights w)]. *)

val uniform : int -> weighted
(** Uniform distribution over [0 .. n-1]. *)

val discrete_gaussian : center:int -> sigma:float -> n:int -> weighted
(** [discrete_gaussian ~center ~sigma ~n] is the Gaussian density evaluated
    at integers [0 .. n-1], centred at [center], truncated to the domain and
    renormalized. With [sigma <= 0] all mass is on [center]. This is the
    mutation-magnitude distribution of Algorithm 1, line 9. *)

val sample_gaussian_index :
  Rng.t -> center:int -> sigma:float -> n:int -> int
(** Draw from {!discrete_gaussian}. *)

val sample_gaussian_index_excluding :
  Rng.t -> center:int -> sigma:float -> n:int -> int
(** Like {!sample_gaussian_index} but never returns [center] (a mutation
    must change the attribute). Requires [n >= 2]. *)

val inverse : float array -> float array
(** [inverse w] maps each weight to a weight inversely proportional to it
    (used for dropping low-fitness tests from the priority queue: the paper
    drops with probability inversely proportional to fitness). Zero weights
    receive the largest inverse weight in the result. *)
