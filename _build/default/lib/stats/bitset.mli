(** Fixed-capacity bitsets, used for basic-block coverage accounting. *)

type t

val create : int -> t
(** All bits clear. Capacity is fixed. *)

val capacity : t -> int
val copy : t -> t

val set : t -> int -> unit
(** @raise Invalid_argument if out of range. *)

val mem : t -> int -> bool
val count : t -> int

val union_into : dst:t -> t -> unit
(** [union_into ~dst src] ors [src] into [dst]. Capacities must match. *)

val diff_count : t -> t -> int
(** [diff_count a b] is the number of bits set in [a] but not in [b]. *)

val iter : (int -> unit) -> t -> unit
val to_list : t -> int list
val equal : t -> t -> bool
