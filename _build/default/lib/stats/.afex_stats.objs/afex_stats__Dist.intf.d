lib/stats/dist.mli: Rng
