lib/stats/bitset.ml: Array Bytes Char Printf
