lib/stats/bitset.mli:
