lib/stats/rng.mli:
