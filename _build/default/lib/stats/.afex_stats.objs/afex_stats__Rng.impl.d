lib/stats/rng.ml: Array Float Int64 List
