type t = { capacity : int; words : Bytes.t }

let create capacity =
  if capacity < 0 then invalid_arg "Bitset.create: negative capacity";
  { capacity; words = Bytes.make ((capacity + 7) / 8) '\000' }

let capacity t = t.capacity

let copy t = { capacity = t.capacity; words = Bytes.copy t.words }

let check t i =
  if i < 0 || i >= t.capacity then
    invalid_arg (Printf.sprintf "Bitset: index %d out of range [0,%d)" i t.capacity)

let set t i =
  check t i;
  let byte = i lsr 3 and bit = i land 7 in
  Bytes.unsafe_set t.words byte
    (Char.chr (Char.code (Bytes.unsafe_get t.words byte) lor (1 lsl bit)))

let mem t i =
  check t i;
  let byte = i lsr 3 and bit = i land 7 in
  Char.code (Bytes.unsafe_get t.words byte) land (1 lsl bit) <> 0

let popcount_byte =
  let table = Array.make 256 0 in
  for i = 1 to 255 do
    table.(i) <- table.(i lsr 1) + (i land 1)
  done;
  fun c -> table.(Char.code c)

let count t =
  let total = ref 0 in
  Bytes.iter (fun c -> total := !total + popcount_byte c) t.words;
  !total

let union_into ~dst src =
  if dst.capacity <> src.capacity then invalid_arg "Bitset.union_into: capacity mismatch";
  for i = 0 to Bytes.length dst.words - 1 do
    Bytes.unsafe_set dst.words i
      (Char.chr
         (Char.code (Bytes.unsafe_get dst.words i)
         lor Char.code (Bytes.unsafe_get src.words i)))
  done

let diff_count a b =
  if a.capacity <> b.capacity then invalid_arg "Bitset.diff_count: capacity mismatch";
  let total = ref 0 in
  for i = 0 to Bytes.length a.words - 1 do
    let x = Char.code (Bytes.unsafe_get a.words i)
    and y = Char.code (Bytes.unsafe_get b.words i) in
    total := !total + popcount_byte (Char.chr (x land lnot y land 0xff))
  done;
  !total

let iter f t =
  for i = 0 to t.capacity - 1 do
    if mem t i then f i
  done

let to_list t =
  let acc = ref [] in
  for i = t.capacity - 1 downto 0 do
    if mem t i then acc := i :: !acc
  done;
  !acc

let equal a b = a.capacity = b.capacity && Bytes.equal a.words b.words
