type weighted = { cumulative : float array; probs : float array }

let of_weights w =
  let n = Array.length w in
  if n = 0 then invalid_arg "Dist.of_weights: empty";
  Array.iter (fun x -> if x < 0.0 || Float.is_nan x then invalid_arg "Dist.of_weights: negative or NaN weight") w;
  let total = Array.fold_left ( +. ) 0.0 w in
  let probs =
    if total <= 0.0 then Array.make n (1.0 /. float_of_int n)
    else Array.map (fun x -> x /. total) w
  in
  let cumulative = Array.make n 0.0 in
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    acc := !acc +. probs.(i);
    cumulative.(i) <- !acc
  done;
  cumulative.(n - 1) <- 1.0;
  { cumulative; probs }

let weights d = Array.copy d.probs
let support d = Array.length d.probs

let sample rng d =
  let u = Rng.float rng 1.0 in
  (* Binary search for the first cumulative value >= u. *)
  let n = Array.length d.cumulative in
  let lo = ref 0 and hi = ref (n - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if d.cumulative.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let sample_weighted rng w = sample rng (of_weights w)
let uniform n = of_weights (Array.make n 1.0)

let discrete_gaussian ~center ~sigma ~n =
  if n <= 0 then invalid_arg "Dist.discrete_gaussian: empty domain";
  if sigma <= 0.0 then
    of_weights (Array.init n (fun i -> if i = center then 1.0 else 0.0))
  else begin
    let w =
      Array.init n (fun i ->
          let d = float_of_int (i - center) /. sigma in
          exp (-0.5 *. d *. d))
    in
    of_weights w
  end

let sample_gaussian_index rng ~center ~sigma ~n =
  sample rng (discrete_gaussian ~center ~sigma ~n)

let sample_gaussian_index_excluding rng ~center ~sigma ~n =
  if n < 2 then invalid_arg "Dist.sample_gaussian_index_excluding: domain too small";
  let d = discrete_gaussian ~center ~sigma ~n in
  let rec draw attempts =
    let i = sample rng d in
    if i <> center then i
    else if attempts > 64 then
      (* Pathologically narrow sigma: fall back to a uniform neighbour. *)
      let j = Rng.int rng (n - 1) in
      if j >= center then j + 1 else j
    else draw (attempts + 1)
  in
  draw 0

let inverse w =
  let positive = Array.to_list w |> List.filter (fun x -> x > 0.0) in
  let max_inverse =
    match positive with
    | [] -> 1.0
    | _ -> List.fold_left (fun acc x -> Float.max acc (1.0 /. x)) 0.0 positive
  in
  Array.map (fun x -> if x > 0.0 then 1.0 /. x else max_inverse *. 2.0) w
