(** Generated test cases (§6.3): for every fault in the result set AFEX
    emits a script that re-runs the test with the same injection, so
    developers can drop it straight into a regression suite. *)

val script :
  target:string ->
  Afex.Test_case.t ->
  string
(** A self-contained shell script invoking the [afex] CLI to replay the
    injection and checking the observed status. *)

val suite :
  target:string ->
  Afex.Test_case.t list ->
  string
(** A runner script replaying several faults (e.g. one redundancy-cluster
    representative each). *)
