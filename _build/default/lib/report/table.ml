type align = Left | Right

let pad align width s =
  let n = String.length s in
  if n >= width then s
  else begin
    let fill = String.make (width - n) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  end

let render ?aligns ~headers ~rows () =
  let n_cols =
    List.fold_left (fun acc row -> max acc (List.length row)) (List.length headers) rows
  in
  let cell row i = match List.nth_opt row i with Some c -> c | None -> "" in
  let width i =
    List.fold_left
      (fun acc row -> max acc (String.length (cell row i)))
      (String.length (cell headers i))
      rows
  in
  let widths = List.init n_cols width in
  let aligns =
    match aligns with
    | Some a -> List.init n_cols (fun i -> match List.nth_opt a i with Some x -> x | None -> Right)
    | None -> List.init n_cols (fun i -> if i = 0 then Left else Right)
  in
  let render_row row =
    let cells = List.mapi (fun i w -> pad (List.nth aligns i) w (cell row i)) widths in
    (* Trim trailing spaces only. *)
    let line = String.concat "  " cells in
    let rec rstrip i = if i > 0 && line.[i - 1] = ' ' then rstrip (i - 1) else i in
    String.sub line 0 (rstrip (String.length line))
  in
  let rule =
    String.concat "--"
      (List.map (fun w -> String.make w '-') widths)
  in
  String.concat "\n" (render_row headers :: rule :: List.map render_row rows) ^ "\n"

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_percent ?(decimals = 1) v = Printf.sprintf "%.*f%%" decimals (100.0 *. v)

let fmt_ratio num den =
  if den <= 0.0 then "-" else Printf.sprintf "%.2fx" (num /. den)
