let impact_matrix ~col_labels ~row_labels ~cell =
  let cols = List.length col_labels in
  let row_label_width =
    List.fold_left (fun acc l -> max acc (String.length l)) 0 row_labels
  in
  let buf = Buffer.create 1024 in
  (* Vertical column labels. *)
  let label_height =
    List.fold_left (fun acc l -> max acc (String.length l)) 0 col_labels
  in
  let labels = Array.of_list col_labels in
  for line = 0 to label_height - 1 do
    Buffer.add_string buf (String.make (row_label_width + 2) ' ');
    for c = 0 to cols - 1 do
      let l = labels.(c) in
      (* Bottom-aligned vertical text. *)
      let offset = label_height - String.length l in
      let ch = if line >= offset then l.[line - offset] else ' ' in
      Buffer.add_char buf ch;
      Buffer.add_char buf ' '
    done;
    Buffer.add_char buf '\n'
  done;
  List.iteri
    (fun r label ->
      Buffer.add_string buf label;
      Buffer.add_string buf (String.make (row_label_width - String.length label + 2) ' ');
      for c = 0 to cols - 1 do
        let ch =
          match cell ~row:r ~col:c with
          | Some true -> '#'
          | Some false -> '.'
          | None -> ' '
        in
        Buffer.add_char buf ch;
        Buffer.add_char buf ' '
      done;
      Buffer.add_char buf '\n')
    row_labels;
  Buffer.add_string buf "\n  # = injection causes test failure   . = no failure   (blank = fault not applicable)\n";
  Buffer.contents buf

let glyphs = [| '*'; 'o'; '+'; 'x'; '@'; '%' |]

let line_chart ?(width = 60) ?(height = 16) ?(x_label = "iteration") ?(y_label = "")
    ~series () =
  let max_len =
    List.fold_left (fun acc (_, data) -> max acc (Array.length data)) 0 series
  in
  let max_y =
    List.fold_left
      (fun acc (_, data) -> Array.fold_left Float.max acc data)
      1e-9 series
  in
  if max_len = 0 then "(no data)\n"
  else begin
    let grid = Array.make_matrix height width ' ' in
    List.iteri
      (fun si (_, data) ->
        let glyph = glyphs.(si mod Array.length glyphs) in
        let n = Array.length data in
        for px = 0 to width - 1 do
          let idx =
            if n = 1 then 0
            else
              min (n - 1)
                (int_of_float
                   (float_of_int px /. float_of_int (width - 1) *. float_of_int (n - 1)))
          in
          let v = data.(idx) in
          let py =
            height - 1
            - int_of_float (v /. max_y *. float_of_int (height - 1) +. 0.5)
          in
          let py = max 0 (min (height - 1) py) in
          grid.(py).(px) <- glyph
        done)
      series;
    let buf = Buffer.create 1024 in
    if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
    for y = 0 to height - 1 do
      let axis_value =
        max_y *. float_of_int (height - 1 - y) /. float_of_int (height - 1)
      in
      Buffer.add_string buf (Printf.sprintf "%8.1f |" axis_value);
      Buffer.add_string buf (String.init width (fun x -> grid.(y).(x)));
      Buffer.add_char buf '\n'
    done;
    Buffer.add_string buf (String.make 10 ' ');
    Buffer.add_string buf (String.make width '-');
    Buffer.add_char buf '\n';
    Buffer.add_string buf (Printf.sprintf "%s0%s%d (%s)\n" (String.make 10 ' ')
         (String.make (max 1 (width - 2 - String.length (string_of_int max_len))) ' ')
         max_len x_label);
    List.iteri
      (fun si (name, _) ->
        Buffer.add_string buf
          (Printf.sprintf "  %c = %s\n" glyphs.(si mod Array.length glyphs) name))
      series;
    Buffer.contents buf
  end

let bar_chart ?(width = 50) ~items () =
  let max_v = List.fold_left (fun acc (_, v) -> Float.max acc v) 1e-9 items in
  let label_width =
    List.fold_left (fun acc (l, _) -> max acc (String.length l)) 0 items
  in
  let buf = Buffer.create 256 in
  List.iter
    (fun (label, v) ->
      let bar_len = int_of_float (v /. max_v *. float_of_int width +. 0.5) in
      Buffer.add_string buf
        (Printf.sprintf "%-*s | %s %.0f\n" label_width label (String.make bar_len '#') v))
    items;
  Buffer.contents buf
