(** ASCII renderings of the paper's figures. *)

val impact_matrix :
  col_labels:string list ->
  row_labels:string list ->
  cell:(row:int -> col:int -> bool option) ->
  string
(** Fig. 1-style fault-space structure plot. Rows are tests, columns are
    functions; [Some true] renders ['#'] (failure), [Some false] ['.']
    (no failure), [None] [' '] (fault not applicable — e.g. the function
    is never called). Column labels are printed vertically. *)

val line_chart :
  ?width:int ->
  ?height:int ->
  ?x_label:string ->
  ?y_label:string ->
  series:(string * float array) list ->
  unit ->
  string
(** Fig. 8-style cumulative curves. Series share the x range (index) and
    y scale; each series draws with its own glyph and appears in the
    legend. *)

val bar_chart :
  ?width:int -> items:(string * float) list -> unit -> string
(** Fig. 9-style horizontal bars, scaled to the maximum value. *)
