module Session = Afex.Session
module Test_case = Afex.Test_case
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome

let operational_summary (r : Session.result) =
  String.concat "\n"
    [
      Printf.sprintf "strategy          : %s" r.Session.strategy;
      Printf.sprintf "tests executed    : %d" r.Session.iterations;
      Printf.sprintf "faults triggered  : %d" r.Session.triggered;
      Printf.sprintf "simulated time    : %.1f s" (r.Session.simulated_ms /. 1000.0);
      Printf.sprintf "code coverage     : %.2f%% (%d/%d blocks)" r.Session.coverage_percent
        r.Session.covered_blocks r.Session.total_blocks;
    ]

let render ?(top = 10) ~target (r : Session.result) =
  let buf = Buffer.create 2048 in
  let line fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  line "=== AFEX session report: %s ===" target;
  Buffer.add_string buf (operational_summary r);
  line "";
  line "failed tests      : %d" r.Session.failed;
  line "crashes           : %d" r.Session.crashed;
  line "hangs             : %d" r.Session.hung;
  line "unique failures   : %d distinct injection stacks, %d redundancy clusters"
    r.Session.distinct_failure_traces r.Session.failure_clusters;
  line "unique crashes    : %d distinct crash stacks, %d redundancy clusters"
    r.Session.distinct_crash_traces r.Session.crash_clusters;
  line "";
  line "--- top %d faults by impact ---" top;
  List.iteri
    (fun i case ->
      line "%2d. impact %7.2f  [%s]  %s" (i + 1) case.Test_case.impact
        (Outcome.status_to_string case.Test_case.status)
        (Fault.to_string case.Test_case.fault))
    (Session.top_faults r ~n:top);
  line "";
  line "--- crash redundancy clusters ---";
  let reps = Session.crash_cluster_representatives r in
  if reps = [] then line "(no crashes)"
  else
    List.iteri
      (fun i case ->
        line "cluster %d: %s" (i + 1) (Fault.to_string case.Test_case.fault);
        (match case.Test_case.crash_stack with
        | Some stack -> List.iter (fun frame -> line "    %s" frame) stack
        | None -> ()))
      reps;
  Buffer.contents buf
