(** Plain-text table rendering for experiment reports. *)

type align = Left | Right

val render :
  ?aligns:align list ->
  headers:string list ->
  rows:string list list ->
  unit ->
  string
(** Column-aligned table with a header rule. Missing cells render empty;
    [aligns] defaults to left for the first column and right for the
    rest. *)

val fmt_float : ?decimals:int -> float -> string
val fmt_percent : ?decimals:int -> float -> string
(** [fmt_percent 0.54] is ["54.0%"] — pass fractions, not percentages. *)

val fmt_ratio : float -> float -> string
(** ["2.3x"] style ratio of two counts; ["-"] when the denominator is 0. *)
