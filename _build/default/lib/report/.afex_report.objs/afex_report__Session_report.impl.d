lib/report/session_report.ml: Afex Afex_injector Buffer List Printf String
