lib/report/replay.ml: Afex Afex_injector List Printf String
