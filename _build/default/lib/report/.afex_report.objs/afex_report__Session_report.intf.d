lib/report/session_report.mli: Afex
