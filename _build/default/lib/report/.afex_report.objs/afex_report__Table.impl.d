lib/report/table.ml: List Printf String
