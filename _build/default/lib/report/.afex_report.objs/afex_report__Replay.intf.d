lib/report/replay.mli: Afex
