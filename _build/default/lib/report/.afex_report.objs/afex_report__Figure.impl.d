lib/report/figure.ml: Array Buffer Float List Printf String
