lib/report/table.mli:
