lib/report/figure.mli:
