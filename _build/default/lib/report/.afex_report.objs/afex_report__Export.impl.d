lib/report/export.ml: Afex Afex_faultspace Afex_injector Array Buffer Char List Printf String
