lib/report/export.mli: Afex
