(** Human-readable session reports (§6.3): result-set summary, top faults,
    redundancy clusters, and operational statistics. *)

val render :
  ?top:int ->
  target:string ->
  Afex.Session.result ->
  string
(** Full text report. [top] (default 10) limits the highest-impact fault
    listing. *)

val operational_summary : Afex.Session.result -> string
(** The "operational aspects" block: strategy, iterations, exploration
    time, space coverage. *)
