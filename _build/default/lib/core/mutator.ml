module Rng = Afex_stats.Rng
module Dist = Afex_stats.Dist
module Subspace = Afex_faultspace.Subspace
module Axis = Afex_faultspace.Axis
module Point = Afex_faultspace.Point

type params = {
  sigma_fraction : float;
  max_attempts : int;
  uniform_axis_choice : bool;
  uniform_value_choice : bool;
  dynamic_sigma : bool;
}

let default_params =
  {
    sigma_fraction = 0.2;
    max_attempts = 40;
    uniform_axis_choice = false;
    uniform_value_choice = false;
    dynamic_sigma = false;
  }

type proposal = { point : Point.t; mutated_axis : int option }

let sigma_for params axis =
  params.sigma_fraction *. float_of_int (Axis.cardinality axis)

let mutate params rng sub sens ~parent =
  let axis_index =
    if params.uniform_axis_choice then Rng.int rng (Subspace.dim sub)
    else Dist.sample_weighted rng (Sensitivity.probabilities sens)
  in
  let axis = Subspace.axis sub axis_index in
  let n = Axis.cardinality axis in
  let old_value = Point.get parent.Test_case.point axis_index in
  let new_value =
    if n < 2 then old_value
    else if params.uniform_value_choice then begin
      (* Uniform over the axis, excluding the current value. *)
      let v = Rng.int rng (n - 1) in
      if v >= old_value then v + 1 else v
    end
    else begin
      let sigma =
        let base = sigma_for params axis in
        if params.dynamic_sigma then begin
          (* Hot axes (high recent payoff) get finer steps, cold axes wider
             jumps; the factor stays within [0.5, 1.5] of the static sigma. *)
          let p = (Sensitivity.probabilities sens).(axis_index) in
          base *. (1.5 -. p)
        end
        else base
      in
      Dist.sample_gaussian_index_excluding rng ~center:old_value ~sigma ~n
    end
  in
  (Point.with_component parent.Test_case.point axis_index new_value, axis_index)

let next params rng sub sens ~queue ~history ~is_pending =
  let novel p = (not (History.mem history p)) && not (is_pending p) in
  let rec attempt k =
    if k >= params.max_attempts then
      (* Neighbourhoods exhausted: fall back to uniform exploration. *)
      { point = Subspace.random_point rng sub; mutated_axis = None }
    else begin
      match Pqueue.sample rng queue with
      | None ->
          let p = Subspace.random_point rng sub in
          if novel p then { point = p; mutated_axis = None } else attempt (k + 1)
      | Some parent ->
          let point, axis = mutate params rng sub sens ~parent in
          if novel point && Subspace.mem sub point then
            { point; mutated_axis = Some axis }
          else attempt (k + 1)
    end
  in
  attempt 0
