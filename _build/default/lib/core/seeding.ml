module Analyzer = Afex_simtarget.Analyzer
module Fault = Afex_injector.Fault
module Plugin = Afex_injector.Plugin

let points_for sub target findings ~max_seeds =
  (* Per finding, the list of (test, call) coordinates reaching it. *)
  let pools =
    List.map (fun f -> (f, Analyzer.reaching_injections target f)) findings
  in
  let seen = Hashtbl.create 64 in
  let seeds = ref [] and n = ref 0 in
  let try_add finding (test_id, call_number) =
    if !n < max_seeds then begin
      let fault =
        Fault.make ~test_id ~func:finding.Analyzer.func ~call_number ()
      in
      match Plugin.point_of_fault sub fault with
      | Some point ->
          let key = Afex_faultspace.Point.key point in
          if not (Hashtbl.mem seen key) then begin
            Hashtbl.add seen key ();
            seeds := point :: !seeds;
            incr n
          end
      | None -> ()
    end
  in
  (* Round-robin: first reaching injection of every finding, then the
     second of every finding, and so on. *)
  let rec rounds pools =
    if !n >= max_seeds || pools = [] then ()
    else begin
      let rest =
        List.filter_map
          (fun (finding, coords) ->
            match coords with
            | [] -> None
            | c :: tail ->
                try_add finding c;
                if tail = [] then None else Some (finding, tail))
          pools
      in
      rounds rest
    end
  in
  rounds pools;
  List.rev !seeds
