(** Turning static-analysis findings into initial search seeds (§4).

    Each flagged callsite is located in the test suite (which tests reach
    it, at which call number) and mapped to fault-space points; the
    explorer executes those before falling back to random generation,
    "starting off with highly relevant tests from the beginning". *)

val points_for :
  Afex_faultspace.Subspace.t ->
  Afex_simtarget.Target.t ->
  Afex_simtarget.Analyzer.finding list ->
  max_seeds:int ->
  Afex_faultspace.Point.t list
(** Round-robins over findings (one reaching injection per finding per
    round) so the seed budget spreads across flagged sites; findings whose
    coordinates fall outside the subspace are skipped. *)
