(** The History set: every point ever executed (or queued), so the search
    never pays for the same test twice (§3). *)

type t

val create : unit -> t
val mem : t -> Afex_faultspace.Point.t -> bool
val add : t -> Afex_faultspace.Point.t -> unit
val size : t -> int
