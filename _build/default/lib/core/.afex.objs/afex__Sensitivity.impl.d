lib/core/sensitivity.ml: Array List
