lib/core/mutator.mli: Afex_faultspace Afex_stats History Pqueue Sensitivity Test_case
