lib/core/explorer.ml: Afex_faultspace Afex_injector Afex_quality Afex_stats Config Executor Hashtbl History List Logs Mutator Pqueue Sensitivity Seq Test_case
