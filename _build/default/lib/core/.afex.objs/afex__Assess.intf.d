lib/core/assess.mli: Afex_faultspace Afex_injector Afex_quality Executor Session Test_case
