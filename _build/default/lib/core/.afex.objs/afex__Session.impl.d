lib/core/session.ml: Afex_faultspace Afex_quality Array Config Executor Explorer Format Hashtbl List Option Test_case
