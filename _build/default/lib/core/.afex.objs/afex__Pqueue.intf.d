lib/core/pqueue.mli: Afex_stats Test_case
