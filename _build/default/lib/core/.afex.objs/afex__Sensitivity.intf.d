lib/core/sensitivity.mli:
