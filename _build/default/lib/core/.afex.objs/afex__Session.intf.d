lib/core/session.mli: Afex_faultspace Config Executor Format Test_case
