lib/core/pqueue.ml: Afex_stats Array Float List Test_case
