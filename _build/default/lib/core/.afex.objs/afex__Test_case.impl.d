lib/core/test_case.ml: Afex_faultspace Afex_injector Format
