lib/core/test_case.mli: Afex_faultspace Afex_injector Format
