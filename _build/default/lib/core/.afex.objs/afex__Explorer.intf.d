lib/core/explorer.mli: Afex_faultspace Afex_injector Config Executor Mutator Test_case
