lib/core/assess.ml: Afex_injector Afex_quality Executor List Session Test_case
