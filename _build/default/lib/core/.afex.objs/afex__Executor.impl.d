lib/core/executor.ml: Afex_faultspace Afex_injector Afex_simtarget Printf
