lib/core/history.ml: Afex_faultspace Hashtbl
