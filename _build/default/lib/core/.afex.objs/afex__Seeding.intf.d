lib/core/seeding.mli: Afex_faultspace Afex_simtarget
