lib/core/config.mli: Afex_faultspace Afex_injector Afex_quality Mutator Pqueue
