lib/core/config.ml: Afex_faultspace Afex_injector Afex_quality Mutator Pqueue
