lib/core/executor.mli: Afex_faultspace Afex_injector Afex_simtarget
