lib/core/seeding.ml: Afex_faultspace Afex_injector Afex_simtarget Hashtbl List
