lib/core/mutator.ml: Afex_faultspace Afex_stats Array History Pqueue Sensitivity Test_case
