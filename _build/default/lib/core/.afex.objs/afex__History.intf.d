lib/core/history.mli: Afex_faultspace
