module Engine = Afex_injector.Engine
module Fault = Afex_injector.Fault
module Multifault = Afex_injector.Multifault
module Target = Afex_simtarget.Target

type t = {
  run_scenario : Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t;
  total_blocks : int;
  description : string;
}

let of_target ?nondet target =
  let run_scenario scenario =
    match Fault.of_scenario scenario with
    | Ok fault -> Engine.run ?nondet target fault
    | Error m -> invalid_arg ("Executor: undecodable scenario: " ^ m)
  in
  {
    run_scenario;
    total_blocks = Target.total_blocks target;
    description = Printf.sprintf "%s %s" (Target.name target) (Target.version target);
  }

let of_target_multi ?nondet target =
  let run_scenario scenario =
    match Multifault.of_scenario scenario with
    | Ok mf -> Multifault.run ?nondet target mf
    | Error m -> invalid_arg ("Executor: undecodable multi-fault scenario: " ^ m)
  in
  {
    run_scenario;
    total_blocks = Target.total_blocks target;
    description =
      Printf.sprintf "%s %s (multi-fault)" (Target.name target) (Target.version target);
  }

let of_fn ~total_blocks ~description run =
  let run_scenario scenario =
    match Fault.of_scenario scenario with
    | Ok fault -> run fault
    | Error m -> invalid_arg ("Executor: undecodable scenario: " ^ m)
  in
  { run_scenario; total_blocks; description }

let of_scenario_fn ~total_blocks ~description run_scenario =
  { run_scenario; total_blocks; description }

let run_fault t fault = t.run_scenario (Fault.to_scenario fault)
