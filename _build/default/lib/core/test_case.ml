module Outcome = Afex_injector.Outcome

type t = {
  point : Afex_faultspace.Point.t;
  fault : Afex_injector.Fault.t;
  status : Outcome.status;
  triggered : bool;
  impact : float;
  mutable fitness : float;
  birth : int;
  mutated_axis : int option;
  injection_stack : string list option;
  crash_stack : string list option;
  new_blocks : int;
  duration_ms : float;
}

let failed t =
  match t.status with
  | Outcome.Test_failed | Outcome.Crashed | Outcome.Hung -> true
  | Outcome.Passed -> false

let crashed t = t.status = Outcome.Crashed

let pp ppf t =
  Format.fprintf ppf "%a -> %s impact=%.2f fitness=%.2f"
    Afex_faultspace.Point.pp t.point
    (Outcome.status_to_string t.status)
    t.impact t.fitness
