(** Algorithm 1: fitness-guided generation of the next test.

    Picks a parent from Q_priority with fitness-proportional probability,
    an attribute with sensitivity-proportional probability, and a new value
    for that attribute from a discrete Gaussian centred on the old value
    with σ = |Ai|/5 (§3). The offspring is rejected if already executed or
    pending. *)

type params = {
  sigma_fraction : float;  (** σ as a fraction of axis cardinality; paper: 1/5 *)
  max_attempts : int;
      (** how many parent/axis/value draws to try before giving up and
          falling back to a random point *)
  uniform_axis_choice : bool;
      (** ablation switch: ignore sensitivity and pick the mutated axis
          uniformly *)
  uniform_value_choice : bool;
      (** ablation switch: replace the Gaussian magnitude distribution with
          a uniform draw over the axis *)
  dynamic_sigma : bool;
      (** extension (the paper leaves dynamic sigma to future work): scale
          sigma by how the currently explored vicinity has been paying off
          -- hot axes get finer steps (exploit locally), cold axes wider
          jumps (escape) *)
}

val default_params : params
(** σ = |Ai|/5, 40 attempts, both ablation switches off — the paper's
    Algorithm 1. *)

type proposal = {
  point : Afex_faultspace.Point.t;
  mutated_axis : int option;  (** [None] when the proposal is random *)
}

val sigma_for : params -> Afex_faultspace.Axis.t -> float

val mutate :
  params ->
  Afex_stats.Rng.t ->
  Afex_faultspace.Subspace.t ->
  Sensitivity.t ->
  parent:Test_case.t ->
  Afex_faultspace.Point.t * int
(** One mutation step: returns the offspring and the mutated axis (the
    offspring may coincide with an executed test; the caller dedupes). *)

val next :
  params ->
  Afex_stats.Rng.t ->
  Afex_faultspace.Subspace.t ->
  Sensitivity.t ->
  queue:Pqueue.t ->
  history:History.t ->
  is_pending:(Afex_faultspace.Point.t -> bool) ->
  proposal
(** Full candidate generation: repeated mutation attempts, falling back to
    fresh uniform points when the queue is empty or the neighbourhood is
    exhausted. The result is guaranteed novel w.r.t. history and pending
    (if any novel point remains findable within the attempt budget;
    otherwise the last random draw is returned regardless). *)
