type t = (string, unit) Hashtbl.t

let create () = Hashtbl.create 1024
let mem t p = Hashtbl.mem t (Afex_faultspace.Point.key p)
let add t p = Hashtbl.replace t (Afex_faultspace.Point.key p) ()
let size t = Hashtbl.length t
