module Sensor = Afex_injector.Sensor
module Precision = Afex_quality.Precision

let impact_precision executor ~sensor ~trials scenario =
  Precision.measure ~trials (fun () ->
      let outcome = executor.Executor.run_scenario scenario in
      sensor.Sensor.score { Sensor.outcome; new_blocks = 0 })

let top_faults executor ~sensor ~trials ~n result =
  List.map
    (fun (case : Test_case.t) ->
      let scenario = Afex_injector.Fault.to_scenario case.Test_case.fault in
      (case, impact_precision executor ~sensor ~trials scenario))
    (Session.top_faults result ~n)
