(** An executed fault-injection test, as tracked by the explorer. *)

type t = {
  point : Afex_faultspace.Point.t;  (** coordinates in the search subspace *)
  fault : Afex_injector.Fault.t;
  status : Afex_injector.Outcome.status;
  triggered : bool;
  impact : float;  (** measured impact I_S(φ) *)
  mutable fitness : float;
      (** starts equal to the (feedback/relevance-weighted) impact, then
          decays with age (§3, "aging") *)
  birth : int;  (** iteration at which the test was executed *)
  mutated_axis : int option;
      (** which attribute was mutated to produce this test; [None] for the
          random initial batch *)
  injection_stack : string list option;
  crash_stack : string list option;
  new_blocks : int;
  duration_ms : float;
}

val failed : t -> bool
val crashed : t -> bool

val pp : Format.formatter -> t -> unit
