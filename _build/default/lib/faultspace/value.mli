(** Concrete values of fault attributes.

    A fault attribute value is either a symbolic name (a libc function name,
    an errno constant), an integer (a call number, a return value), or an
    integer sub-interval (the [< lo, hi >] syntax of the fault description
    language, which samples whole sub-intervals rather than single
    numbers). *)

type t =
  | Sym of string
  | Int of int
  | Pair of int * int  (** inclusive sub-interval [lo, hi] *)

val equal : t -> t -> bool
val compare : t -> t -> int
val to_string : t -> string
val pp : Format.formatter -> t -> unit

val as_int : t -> int
(** @raise Invalid_argument if the value is not [Int]. *)

val as_sym : t -> string
(** @raise Invalid_argument if the value is not [Sym]. *)
