(** Bridge between the fault description language and the space model. *)

val space_of_ast : Fsdl_ast.t -> Space.t
(** Each declaration becomes one subspace; its subtype labels are joined
    into the subspace label; [Set]/[Interval]/[Subinterval_domain] become
    [Symbols]/[Range]/[Subinterval] axes.
    @raise Invalid_argument if the AST does not validate. *)

val space_of_string : string -> (Space.t, string) result
(** Parse then convert. *)

val ast_of_space : Space.t -> Fsdl_ast.t
(** Inverse of {!space_of_ast} (hole predicates are not representable in
    the language and are dropped). *)

val space_to_string : Space.t -> string
