(** Abstract syntax of the AFEX fault space description language (Fig. 3).

    A description is a sequence of subspace declarations, each terminated by
    [";"]. A declaration is a mix of bare subtype labels and parameters.
    Parameter domains are symbol sets [{a, b}], scalar intervals
    [\[lo, hi\]], or sub-interval domains [<lo, hi>]. *)

type domain =
  | Set of string list
  | Interval of int * int
  | Subinterval_domain of int * int

type element = Subtype of string | Parameter of string * domain

type subspace_decl = element list
type t = subspace_decl list

val equal : t -> t -> bool

val validate : t -> (unit, string) result
(** Structural checks: non-empty declarations, at least one parameter per
    declaration, non-empty sets, non-inverted intervals, no duplicate
    parameter names within one declaration. *)
