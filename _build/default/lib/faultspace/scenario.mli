(** A concrete fault scenario: the attribute assignment sent from the
    explorer to a node manager (Fig. 5 format). *)

type t = (string * Value.t) list
(** Ordered attribute bindings. *)

val of_point : Subspace.t -> Point.t -> t
val to_point : Subspace.t -> t -> Point.t option

val to_string : t -> string
(** One-line Fig. 5 format: [name value name value ...]. *)

val of_string : string -> (t, string) result
(** Parses the Fig. 5 format. Integer-looking tokens become [Int];
    everything else becomes [Sym]. Sub-intervals use [<lo,hi>]. *)

val pp : Format.formatter -> t -> unit
