let subspace_of_decl decl =
  let labels =
    List.filter_map (function Fsdl_ast.Subtype s -> Some s | Fsdl_ast.Parameter _ -> None) decl
  in
  let label = match labels with [] -> None | _ -> Some (String.concat "." labels) in
  let axes =
    List.filter_map
      (function
        | Fsdl_ast.Subtype _ -> None
        | Fsdl_ast.Parameter (name, dom) ->
            let kind =
              match dom with
              | Fsdl_ast.Set elements -> Axis.Symbols (Array.of_list elements)
              | Fsdl_ast.Interval (lo, hi) -> Axis.Range { lo; hi }
              | Fsdl_ast.Subinterval_domain (lo, hi) -> Axis.Subinterval { lo; hi }
            in
            Some (Axis.make ~name kind))
      decl
  in
  Subspace.make ?label axes

let space_of_ast ast =
  match Fsdl_ast.validate ast with
  | Error m -> invalid_arg ("Fsdl.space_of_ast: " ^ m)
  | Ok () -> Space.of_subspaces (List.map subspace_of_decl ast)

let space_of_string input =
  Result.map space_of_ast (Fsdl_parser.parse input)

let decl_of_subspace sub =
  let labels =
    match Subspace.label sub with
    | None -> []
    | Some l -> List.map (fun s -> Fsdl_ast.Subtype s) (String.split_on_char '.' l)
  in
  let params =
    Array.to_list
      (Array.map
         (fun axis ->
           let dom =
             match Axis.kind axis with
             | Axis.Symbols a -> Fsdl_ast.Set (Array.to_list a)
             | Axis.Range { lo; hi } -> Fsdl_ast.Interval (lo, hi)
             | Axis.Subinterval { lo; hi } -> Fsdl_ast.Subinterval_domain (lo, hi)
           in
           Fsdl_ast.Parameter (Axis.name axis, dom))
         (Subspace.axes sub))
  in
  labels @ params

let ast_of_space space = List.map decl_of_subspace (Space.subspaces space)
let space_to_string space = Fsdl_printer.to_string (ast_of_space space)
