(** Recursive-descent parser for the fault space description language.

    Beyond the Fig. 3 grammar, set elements may also be integers (the
    paper's own example in Fig. 4 writes [retval : { 0 }] and
    [retVal : { -1 }]); they are kept as their literal string form. *)

val parse : string -> (Fsdl_ast.t, string) result
(** Tokenize, parse, and validate a description. *)

val parse_exn : string -> Fsdl_ast.t
(** @raise Failure with the parse error. *)
