module Rng = Afex_stats.Rng
module Dist = Afex_stats.Dist

type t = { subs : Subspace.t array }
type located = { subspace : int; point : Point.t }

let of_subspaces = function
  | [] -> invalid_arg "Space.of_subspaces: empty union"
  | subs -> { subs = Array.of_list subs }

let subspaces t = Array.to_list t.subs

let single t =
  if Array.length t.subs <> 1 then invalid_arg "Space.single: union has several subspaces";
  t.subs.(0)

let cardinality t =
  Array.fold_left (fun acc s -> acc + Subspace.cardinality s) 0 t.subs

let mem t { subspace; point } =
  subspace >= 0 && subspace < Array.length t.subs && Subspace.mem t.subs.(subspace) point

let enumerate t =
  let rec over i () =
    if i >= Array.length t.subs then Seq.Nil
    else begin
      let here =
        Seq.map (fun point -> { subspace = i; point }) (Subspace.enumerate t.subs.(i))
      in
      Seq.append here (over (i + 1)) ()
    end
  in
  over 0

let random rng t =
  let weights = Array.map (fun s -> float_of_int (Subspace.cardinality s)) t.subs in
  let i = Dist.sample_weighted rng weights in
  { subspace = i; point = Subspace.random_point rng t.subs.(i) }

let values t { subspace; point } = Subspace.values t.subs.(subspace) point

let pp ppf t =
  Array.iter (fun s -> Format.fprintf ppf "%a@." Subspace.pp s) t.subs
