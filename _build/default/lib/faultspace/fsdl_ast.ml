type domain =
  | Set of string list
  | Interval of int * int
  | Subinterval_domain of int * int

type element = Subtype of string | Parameter of string * domain

type subspace_decl = element list
type t = subspace_decl list

let equal (a : t) (b : t) = a = b

let validate_decl decl =
  if decl = [] then Error "empty subspace declaration"
  else begin
    let params =
      List.filter_map
        (function Parameter (n, d) -> Some (n, d) | Subtype _ -> None)
        decl
    in
    if params = [] then Error "subspace declaration has no parameters"
    else begin
      let rec check seen = function
        | [] -> Ok ()
        | (name, domain) :: rest ->
            if List.mem name seen then
              Error (Printf.sprintf "duplicate parameter %S" name)
            else begin
              match domain with
              | Set [] -> Error (Printf.sprintf "parameter %S: empty set" name)
              | Set _ -> check (name :: seen) rest
              | Interval (lo, hi) | Subinterval_domain (lo, hi) ->
                  if hi < lo then
                    Error (Printf.sprintf "parameter %S: inverted interval" name)
                  else check (name :: seen) rest
            end
      in
      check [] params
    end
  end

let validate t =
  if t = [] then Error "empty fault space description"
  else begin
    let rec over = function
      | [] -> Ok ()
      | decl :: rest -> (
          match validate_decl decl with Ok () -> over rest | Error _ as e -> e)
    in
    over t
  end
