type impact = Point.t -> float

let average f seq =
  let total = ref 0.0 and n = ref 0 in
  Seq.iter
    (fun p ->
      total := !total +. f p;
      incr n)
    seq;
  if !n = 0 then 0.0 else !total /. float_of_int !n

let line t point ~axis =
  let card = Axis.cardinality (Subspace.axis t axis) in
  Seq.filter (Subspace.mem t)
    (Seq.map (fun v -> Point.with_component point axis v)
       (Seq.init card (fun v -> v)))

let line_average t f point ~axis = average f (line t point ~axis)
let space_average t f = average f (Subspace.enumerate t)
let vicinity_average t f point ~d = average f (Subspace.vicinity t point ~d)

let ratio num den = if den <= 0.0 then 0.0 else num /. den

let relative_linear_density t f point ~axis =
  ratio (line_average t f point ~axis) (space_average t f)

let relative_linear_density_in_vicinity t f point ~axis ~d =
  let on_line p =
    (* Same attributes as [point] except possibly along [axis]. *)
    let rec same i =
      i >= Point.dim p
      || ((i = axis || Point.get p i = Point.get point i) && same (i + 1))
    in
    same 0
  in
  let vicinity = Subspace.vicinity t point ~d in
  let line_avg = average f (Seq.filter on_line vicinity) in
  ratio line_avg (vicinity_average t f point ~d)

let structured_axes t f ~samples =
  let n = Subspace.dim t in
  let densities =
    List.init n (fun axis ->
        let values = List.map (fun p -> relative_linear_density t f p ~axis) samples in
        let mean =
          match values with
          | [] -> 0.0
          | _ -> List.fold_left ( +. ) 0.0 values /. float_of_int (List.length values)
        in
        (axis, mean))
  in
  List.sort (fun (_, a) (_, b) -> compare b a) densities
