(** A hyperrectangular fault subspace: the Cartesian product of its axes,
    minus holes (invalid attribute combinations, §2). *)

type t

val make : ?label:string -> ?hole:(Point.t -> bool) -> Axis.t list -> t
(** [make axes] builds the product space. [hole p] returning [true] marks
    [p] as an invalid fault that must never be generated or counted.
    @raise Invalid_argument on an empty axis list. *)

val label : t -> string option
val axes : t -> Axis.t array
val dim : t -> int
val axis : t -> int -> Axis.t

val axis_index : t -> string -> int option
(** Position of the axis with the given name. *)

val cardinality : t -> int
(** Product of axis cardinalities, {e including} holes (holes are defined
    by predicate, so they are excluded during enumeration/sampling, not
    counted here). *)

val in_bounds : t -> Point.t -> bool
val mem : t -> Point.t -> bool
(** In bounds and not a hole. *)

val values : t -> Point.t -> (string * Value.t) list
(** Attribute names paired with the point's concrete values. *)

val value : t -> Point.t -> int -> Value.t
val point_of_values : t -> (string * Value.t) list -> Point.t option
(** Inverse of {!values}; [None] if any name or value is unknown. *)

val enumerate : t -> Point.t Seq.t
(** All valid points in lexicographic order of indices, holes skipped. *)

val random_point : Afex_stats.Rng.t -> t -> Point.t
(** Uniform valid point (rejection sampling over holes; gives up and raises
    [Failure] if the space appears to be all holes). *)

val vicinity : t -> Point.t -> d:int -> Point.t Seq.t
(** All valid points at Manhattan distance <= [d] from the given point,
    the point itself included. *)

val pp : Format.formatter -> t -> unit
