(** Pretty-printer for fault space descriptions; round-trips with
    {!Fsdl_parser.parse}. *)

val domain_to_string : Fsdl_ast.domain -> string
val to_string : Fsdl_ast.t -> string
val pp : Format.formatter -> Fsdl_ast.t -> unit
