(** Relative linear density ρ (§2).

    Given an impact function over a subspace, the relative linear density at
    fault φ along axis Xk is the average impact of the faults sharing all of
    φ's attributes except the one on Xk, scaled by the average impact over a
    reference set. ρ > 1 means walking along Xk from φ encounters more
    high-impact faults than a random direction — the structure the
    fitness-guided search exploits. *)

type impact = Point.t -> float

val line_average : Subspace.t -> impact -> Point.t -> axis:int -> float
(** Average impact over the full line through the point along [axis]
    (holes excluded). *)

val space_average : Subspace.t -> impact -> float
(** Average impact over the whole subspace. Enumerates everything — only
    use on small spaces. *)

val vicinity_average : Subspace.t -> impact -> Point.t -> d:int -> float
(** Average impact over the D-vicinity of the point (Manhattan ball). *)

val relative_linear_density :
  Subspace.t -> impact -> Point.t -> axis:int -> float
(** ρ over the whole space: line average / space average. Returns 0 when
    the space average is 0. *)

val relative_linear_density_in_vicinity :
  Subspace.t -> impact -> Point.t -> axis:int -> d:int -> float
(** ρ computed over the D-vicinity of φ, as recommended in §2: the line is
    restricted to points of the vicinity that differ from φ only on [axis],
    and the reference average is the vicinity average. *)

val structured_axes :
  Subspace.t -> impact -> samples:Point.t list -> (int * float) list
(** For each axis, the mean ρ over the sample points, sorted by descending
    density — a diagnostic of where the structure lies. *)
