(** A fault as a vector of attribute indices (§2).

    A point identifies one fault in a subspace: component [i] is the index
    of the fault's value on axis [Xi]. Distance between faults is the
    Manhattan (city-block) distance, i.e. the smallest number of single-step
    attribute increments/decrements turning one fault into the other. *)

type t = private int array

val of_array : int array -> t
(** Takes ownership of a copy. Components must be non-negative. *)

val of_list : int list -> t
val to_array : t -> int array
val to_list : t -> int list

val dim : t -> int
val get : t -> int -> int

val with_component : t -> int -> int -> t
(** [with_component p i v] is a copy of [p] whose [i]-th component is [v]
    (the clone-and-mutate step of Algorithm 1, lines 10-11). *)

val equal : t -> t -> bool
val compare : t -> t -> int
val hash : t -> int

val manhattan : t -> t -> int
(** City-block distance. @raise Invalid_argument on dimension mismatch. *)

val chebyshev : t -> t -> int
(** Max per-axis distance; useful for box vicinities. *)

val key : t -> string
(** Injective compact encoding, usable as a hashtable key across
    collections that outlive the point. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string
