(** Axis randomization for the structure-loss experiment (Table 4).

    Shuffling the values along one axis destroys whatever impact structure
    that axis carried while leaving the space's shape, cardinality and the
    uniform-sampling distribution unchanged. The search then runs over the
    shuffled view; every candidate is translated back to original
    coordinates before injection. *)

type t

val identity : Subspace.t -> t
val shuffle_axis : Afex_stats.Rng.t -> Subspace.t -> axis:int -> t
val shuffle_axes : Afex_stats.Rng.t -> Subspace.t -> axes:int list -> t
val shuffle_all : Afex_stats.Rng.t -> Subspace.t -> t

val subspace : t -> Subspace.t
(** The (shape-identical) subspace the search should navigate. *)

val to_target : t -> Point.t -> Point.t
(** Translate search coordinates to original target coordinates. *)

val of_target : t -> Point.t -> Point.t
(** Inverse translation. *)

val shuffled_axes : t -> int list
