open Fsdl_lexer

exception Parse_error of string

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let describe = function
  | [] -> "end of input"
  | tok :: _ -> Printf.sprintf "%S" (token_to_string tok)

(* set_elements ::= (ident | number) ("," (ident | number))* *)
let rec set_elements acc = function
  | Ident s :: rest -> set_tail (s :: acc) rest
  | Number v :: rest -> set_tail (string_of_int v :: acc) rest
  | toks -> fail "expected set element, found %s" (describe toks)

and set_tail acc = function
  | Comma :: rest -> set_elements acc rest
  | Rbrace :: rest -> (List.rev acc, rest)
  | toks -> fail "expected ',' or '}', found %s" (describe toks)

let number = function
  | Number v :: rest -> (v, rest)
  | toks -> fail "expected number, found %s" (describe toks)

let expect tok toks =
  match toks with
  | t :: rest when t = tok -> rest
  | _ -> fail "expected %S, found %s" (token_to_string tok) (describe toks)

(* domain ::= "{" set_elements "}" | "[" n "," n "]" | "<" n "," n ">" *)
let domain = function
  | Lbrace :: rest ->
      let elements, rest = set_elements [] rest in
      (Fsdl_ast.Set elements, rest)
  | Lbracket :: rest ->
      let lo, rest = number rest in
      let rest = expect Comma rest in
      let hi, rest = number rest in
      let rest = expect Rbracket rest in
      (Fsdl_ast.Interval (lo, hi), rest)
  | Langle :: rest ->
      let lo, rest = number rest in
      let rest = expect Comma rest in
      let hi, rest = number rest in
      let rest = expect Rangle rest in
      (Fsdl_ast.Subinterval_domain (lo, hi), rest)
  | toks -> fail "expected '{', '[' or '<', found %s" (describe toks)

(* space ::= (subtype | parameter)+ ";" *)
let rec elements acc = function
  | Ident name :: Colon :: rest ->
      let dom, rest = domain rest in
      elements (Fsdl_ast.Parameter (name, dom) :: acc) rest
  | Ident name :: rest -> elements (Fsdl_ast.Subtype name :: acc) rest
  | Semicolon :: rest -> (List.rev acc, rest)
  | toks -> fail "expected identifier or ';', found %s" (describe toks)

let rec spaces acc = function
  | [] -> List.rev acc
  | toks ->
      let decl, rest = elements [] toks in
      spaces (decl :: acc) rest

let parse input =
  match tokenize input with
  | Error { position; message } ->
      Error (Printf.sprintf "lexical error at offset %d: %s" position message)
  | Ok tokens -> (
      match spaces [] tokens with
      | exception Parse_error m -> Error (Printf.sprintf "parse error: %s" m)
      | ast -> (
          match Fsdl_ast.validate ast with
          | Ok () -> Ok ast
          | Error m -> Error (Printf.sprintf "invalid description: %s" m)))

let parse_exn input =
  match parse input with Ok ast -> ast | Error m -> failwith m
