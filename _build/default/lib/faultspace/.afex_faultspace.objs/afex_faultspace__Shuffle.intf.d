lib/faultspace/shuffle.mli: Afex_stats Point Subspace
