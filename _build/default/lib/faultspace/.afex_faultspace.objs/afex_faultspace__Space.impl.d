lib/faultspace/space.ml: Afex_stats Array Format Point Seq Subspace
