lib/faultspace/point.ml: Array Format Hashtbl List Stdlib String
