lib/faultspace/shuffle.ml: Afex_stats Array Axis List Point Subspace
