lib/faultspace/point.mli: Format
