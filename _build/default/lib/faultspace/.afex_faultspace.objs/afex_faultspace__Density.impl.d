lib/faultspace/density.ml: Axis List Point Seq Subspace
