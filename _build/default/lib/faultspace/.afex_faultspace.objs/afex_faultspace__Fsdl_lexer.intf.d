lib/faultspace/fsdl_lexer.mli:
