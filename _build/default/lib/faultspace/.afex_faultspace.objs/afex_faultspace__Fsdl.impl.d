lib/faultspace/fsdl.ml: Array Axis Fsdl_ast Fsdl_parser Fsdl_printer List Result Space String Subspace
