lib/faultspace/fsdl_parser.ml: Fsdl_ast Fsdl_lexer List Printf
