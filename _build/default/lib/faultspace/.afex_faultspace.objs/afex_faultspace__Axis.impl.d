lib/faultspace/axis.ml: Array Format Printf String Value
