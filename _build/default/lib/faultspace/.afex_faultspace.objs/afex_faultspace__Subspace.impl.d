lib/faultspace/subspace.ml: Afex_stats Array Axis Format List Point Seq String
