lib/faultspace/space.mli: Afex_stats Format Point Seq Subspace Value
