lib/faultspace/density.mli: Point Subspace
