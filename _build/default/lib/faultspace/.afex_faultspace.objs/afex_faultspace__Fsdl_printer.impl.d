lib/faultspace/fsdl_printer.ml: Format Fsdl_ast List Printf String
