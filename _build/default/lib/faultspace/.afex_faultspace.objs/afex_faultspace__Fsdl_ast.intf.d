lib/faultspace/fsdl_ast.mli:
