lib/faultspace/value.mli: Format
