lib/faultspace/fsdl_lexer.ml: List Printf String
