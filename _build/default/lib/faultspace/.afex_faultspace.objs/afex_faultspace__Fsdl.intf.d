lib/faultspace/fsdl.mli: Fsdl_ast Space
