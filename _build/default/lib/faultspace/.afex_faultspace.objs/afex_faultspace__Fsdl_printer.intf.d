lib/faultspace/fsdl_printer.mli: Format Fsdl_ast
