lib/faultspace/fsdl_ast.ml: List Printf
