lib/faultspace/value.ml: Format Int Printf String
