lib/faultspace/axis.mli: Format Value
