lib/faultspace/scenario.mli: Format Point Subspace Value
