lib/faultspace/scenario.ml: Format List Printf String Subspace Value
