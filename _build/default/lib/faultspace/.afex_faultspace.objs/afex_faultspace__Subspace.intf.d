lib/faultspace/subspace.mli: Afex_stats Axis Format Point Seq Value
