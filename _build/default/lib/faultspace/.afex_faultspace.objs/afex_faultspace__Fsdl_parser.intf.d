lib/faultspace/fsdl_parser.mli: Fsdl_ast
