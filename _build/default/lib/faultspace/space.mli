(** A fault space: a union of subspaces, as produced by the fault
    description language ([;]-separated subspace declarations, §6.2). *)

type t

val of_subspaces : Subspace.t list -> t
(** @raise Invalid_argument on the empty list. *)

val subspaces : t -> Subspace.t list
val single : t -> Subspace.t
(** The unique subspace. @raise Invalid_argument if the union has more
    than one member. *)

val cardinality : t -> int
(** Sum over subspaces. *)

(** A located point: which subspace it belongs to, plus its coordinates. *)
type located = { subspace : int; point : Point.t }

val mem : t -> located -> bool

val enumerate : t -> located Seq.t

val random : Afex_stats.Rng.t -> t -> located
(** Subspace chosen with probability proportional to its cardinality, then
    a uniform valid point within it. *)

val values : t -> located -> (string * Value.t) list

val pp : Format.formatter -> t -> unit
