type t = (string * Value.t) list

let of_point sub p = Subspace.values sub p
let to_point sub t = Subspace.point_of_values sub t

let to_string t =
  String.concat " "
    (List.concat_map (fun (name, v) -> [ name; Value.to_string v ]) t)

let parse_value token =
  match int_of_string_opt token with
  | Some v -> Ok (Value.Int v)
  | None ->
      if String.length token >= 2 && token.[0] = '<' && token.[String.length token - 1] = '>'
      then begin
        let inner = String.sub token 1 (String.length token - 2) in
        match String.split_on_char ',' inner with
        | [ a; b ] -> (
            match int_of_string_opt (String.trim a), int_of_string_opt (String.trim b) with
            | Some lo, Some hi -> Ok (Value.Pair (lo, hi))
            | _ -> Error (Printf.sprintf "malformed sub-interval %S" token))
        | _ -> Error (Printf.sprintf "malformed sub-interval %S" token)
      end
      else Ok (Value.Sym token)

let of_string line =
  let tokens =
    List.filter (fun s -> s <> "") (String.split_on_char ' ' (String.trim line))
  in
  let rec pair acc = function
    | [] -> Ok (List.rev acc)
    | [ name ] -> Error (Printf.sprintf "attribute %S has no value" name)
    | name :: value :: rest -> (
        match parse_value value with
        | Ok v -> pair ((name, v) :: acc) rest
        | Error _ as e -> e)
  in
  pair [] tokens

let pp ppf t = Format.pp_print_string ppf (to_string t)
