type token =
  | Ident of string
  | Number of int
  | Colon
  | Comma
  | Semicolon
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Langle
  | Rangle

type error = { position : int; message : string }

let is_letter c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z')
let is_digit c = c >= '0' && c <= '9'
let is_ident_char c = is_letter c || is_digit c || c = '_'

let tokenize input =
  let n = String.length input in
  let rec scan i acc =
    if i >= n then Ok (List.rev acc)
    else begin
      match input.[i] with
      | ' ' | '\t' | '\n' | '\r' -> scan (i + 1) acc
      | '#' ->
          let rec eol j = if j >= n || input.[j] = '\n' then j else eol (j + 1) in
          scan (eol i) acc
      | ':' -> scan (i + 1) (Colon :: acc)
      | ',' -> scan (i + 1) (Comma :: acc)
      | ';' -> scan (i + 1) (Semicolon :: acc)
      | '{' -> scan (i + 1) (Lbrace :: acc)
      | '}' -> scan (i + 1) (Rbrace :: acc)
      | '[' -> scan (i + 1) (Lbracket :: acc)
      | ']' -> scan (i + 1) (Rbracket :: acc)
      | '<' -> scan (i + 1) (Langle :: acc)
      | '>' -> scan (i + 1) (Rangle :: acc)
      | '-' ->
          if i + 1 < n && is_digit input.[i + 1] then number i (i + 1) acc
          else Error { position = i; message = "dangling '-'" }
      | c when is_digit c -> number i i acc
      | c when is_letter c || c = '_' ->
          let rec scan_end j = if j < n && is_ident_char input.[j] then scan_end (j + 1) else j in
          let j = scan_end i in
          scan j (Ident (String.sub input i (j - i)) :: acc)
      | c -> Error { position = i; message = Printf.sprintf "unexpected character %C" c }
    end
  and number start first_digit acc =
    let rec scan_end j = if j < n && is_digit input.[j] then scan_end (j + 1) else j in
    let j = scan_end first_digit in
    match int_of_string_opt (String.sub input start (j - start)) with
    | Some v -> scan j (Number v :: acc)
    | None -> Error { position = start; message = "number out of range" }
  in
  scan 0 []

let token_to_string = function
  | Ident s -> s
  | Number v -> string_of_int v
  | Colon -> ":"
  | Comma -> ","
  | Semicolon -> ";"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lbracket -> "["
  | Rbracket -> "]"
  | Langle -> "<"
  | Rangle -> ">"
