type t = Sym of string | Int of int | Pair of int * int

let equal a b =
  match a, b with
  | Sym x, Sym y -> String.equal x y
  | Int x, Int y -> x = y
  | Pair (x1, x2), Pair (y1, y2) -> x1 = y1 && x2 = y2
  | (Sym _ | Int _ | Pair _), _ -> false

let compare a b =
  match a, b with
  | Sym x, Sym y -> String.compare x y
  | Int x, Int y -> Int.compare x y
  | Pair (x1, x2), Pair (y1, y2) ->
      let c = Int.compare x1 y1 in
      if c <> 0 then c else Int.compare x2 y2
  | Sym _, (Int _ | Pair _) -> -1
  | Int _, Sym _ -> 1
  | Int _, Pair _ -> -1
  | Pair _, (Sym _ | Int _) -> 1

let to_string = function
  | Sym s -> s
  | Int i -> string_of_int i
  | Pair (lo, hi) -> Printf.sprintf "<%d,%d>" lo hi

let pp ppf v = Format.pp_print_string ppf (to_string v)

let as_int = function
  | Int i -> i
  | v -> invalid_arg ("Value.as_int: " ^ to_string v)

let as_sym = function
  | Sym s -> s
  | v -> invalid_arg ("Value.as_sym: " ^ to_string v)
