module Rng = Afex_stats.Rng

type t = {
  subspace : Subspace.t;
  (* Per axis: [None] = identity, [Some perm] maps search index -> target index. *)
  forward : int array option array;
  backward : int array option array;
}

let invert perm =
  let inv = Array.make (Array.length perm) 0 in
  Array.iteri (fun i v -> inv.(v) <- i) perm;
  inv

let identity subspace =
  let n = Subspace.dim subspace in
  { subspace; forward = Array.make n None; backward = Array.make n None }

let shuffle_axes rng subspace ~axes =
  let n = Subspace.dim subspace in
  let forward = Array.make n None and backward = Array.make n None in
  List.iter
    (fun axis ->
      if axis < 0 || axis >= n then invalid_arg "Shuffle.shuffle_axes: axis out of range";
      let card = Axis.cardinality (Subspace.axis subspace axis) in
      let perm = Rng.permutation rng card in
      forward.(axis) <- Some perm;
      backward.(axis) <- Some (invert perm))
    axes;
  { subspace; forward; backward }

let shuffle_axis rng subspace ~axis = shuffle_axes rng subspace ~axes:[ axis ]

let shuffle_all rng subspace =
  shuffle_axes rng subspace ~axes:(List.init (Subspace.dim subspace) (fun i -> i))

let subspace t = t.subspace

let translate perms p =
  let a = Point.to_array p in
  Array.iteri
    (fun axis perm ->
      match perm with
      | None -> ()
      | Some perm -> a.(axis) <- perm.(a.(axis)))
    perms;
  Point.of_array a

let to_target t p = translate t.forward p
let of_target t p = translate t.backward p

let shuffled_axes t =
  List.filteri (fun i _ -> t.forward.(i) <> None)
    (List.init (Array.length t.forward) (fun i -> i))
