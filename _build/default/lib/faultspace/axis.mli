(** A totally-ordered fault-space axis (§2 of the paper).

    An axis [Xi] lays the values of an attribute domain [Ai] along a total
    order, so that a fault can be represented by the vector of its
    attribute-value *indices* and distances between faults are meaningful.

    Three domain shapes exist, mirroring the fault description language:
    explicit symbol sets ([{ malloc, calloc }]), integer intervals
    ([\[1, 100\]]) and sub-interval domains ([<1, 50>], whose elements are
    all inclusive sub-intervals ordered lexicographically). *)

type kind =
  | Symbols of string array
  | Range of { lo : int; hi : int }
  | Subinterval of { lo : int; hi : int }

type t

val make : name:string -> kind -> t
(** @raise Invalid_argument on an empty symbol set or an inverted range. *)

val symbols : string -> string list -> t
val range : string -> lo:int -> hi:int -> t
val subinterval : string -> lo:int -> hi:int -> t

val name : t -> string
val kind : t -> kind

val cardinality : t -> int
(** Number of attribute values on the axis. For [Subinterval] this is
    m(m+1)/2 where m = hi-lo+1. *)

val value : t -> int -> Value.t
(** [value t i] is the attribute value at index [i] under the axis order.
    @raise Invalid_argument if [i] is out of bounds. *)

val index_of_value : t -> Value.t -> int option
(** Inverse of {!value}. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
