module Rng = Afex_stats.Rng

type t = {
  label : string option;
  axes : Axis.t array;
  hole : Point.t -> bool;
}

let make ?label ?(hole = fun _ -> false) axes =
  if axes = [] then invalid_arg "Subspace.make: no axes";
  { label; axes = Array.of_list axes; hole }

let label t = t.label
let axes t = Array.copy t.axes
let dim t = Array.length t.axes
let axis t i = t.axes.(i)

let axis_index t name =
  let rec find i =
    if i >= Array.length t.axes then None
    else if String.equal (Axis.name t.axes.(i)) name then Some i
    else find (i + 1)
  in
  find 0

let cardinality t =
  Array.fold_left (fun acc a -> acc * Axis.cardinality a) 1 t.axes

let in_bounds t p =
  if Point.dim p <> dim t then false
  else begin
    let ok = ref true in
    for i = 0 to dim t - 1 do
      let v = Point.get p i in
      if v < 0 || v >= Axis.cardinality t.axes.(i) then ok := false
    done;
    !ok
  end

let mem t p = in_bounds t p && not (t.hole p)

let value t p i = Axis.value t.axes.(i) (Point.get p i)

let values t p =
  List.init (dim t) (fun i -> (Axis.name t.axes.(i), value t p i))

let point_of_values t bindings =
  let components = Array.make (dim t) (-1) in
  let ok =
    List.for_all
      (fun (name, v) ->
        match axis_index t name with
        | None -> false
        | Some i -> (
            match Axis.index_of_value t.axes.(i) v with
            | None -> false
            | Some idx ->
                components.(i) <- idx;
                true))
      bindings
  in
  if ok && Array.for_all (fun c -> c >= 0) components then
    Some (Point.of_array components)
  else None

let enumerate t =
  let n = dim t in
  let cards = Array.map Axis.cardinality t.axes in
  (* Successor in lexicographic order; None past the last point. *)
  let next current =
    let c = Array.copy current in
    let rec carry i =
      if i < 0 then None
      else if c.(i) + 1 < cards.(i) then begin
        c.(i) <- c.(i) + 1;
        Some c
      end
      else begin
        c.(i) <- 0;
        carry (i - 1)
      end
    in
    carry (n - 1)
  in
  let rec seq_from current () =
    match current with
    | None -> Seq.Nil
    | Some c ->
        let p = Point.of_array c in
        let rest = seq_from (next c) in
        if t.hole p then rest () else Seq.Cons (p, rest)
  in
  seq_from (Some (Array.make n 0))

let random_point rng t =
  let rec draw attempts =
    if attempts > 100_000 then failwith "Subspace.random_point: space appears to be all holes";
    let p =
      Point.of_array (Array.map (fun a -> Rng.int rng (Axis.cardinality a)) t.axes)
    in
    if t.hole p then draw (attempts + 1) else p
  in
  draw 0

let vicinity t center ~d =
  let n = dim t in
  let cards = Array.map Axis.cardinality t.axes in
  (* Distribute the distance budget across axes recursively. *)
  let rec gen i budget acc =
    if i = n then Seq.return (Point.of_array (Array.of_list (List.rev acc)))
    else begin
      let c = Point.get center i in
      let lo = max 0 (c - budget) and hi = min (cards.(i) - 1) (c + budget) in
      let rec over v () =
        if v > hi then Seq.Nil
        else begin
          let used = abs (v - c) in
          Seq.append (gen (i + 1) (budget - used) (v :: acc)) (over (v + 1)) ()
        end
      in
      over lo
    end
  in
  Seq.filter (fun p -> not (t.hole p)) (gen 0 d [])

let pp ppf t =
  (match t.label with
  | Some l -> Format.fprintf ppf "%s@ " l
  | None -> ());
  Array.iter (fun a -> Format.fprintf ppf "%a@ " Axis.pp a) t.axes;
  Format.fprintf ppf ";"
