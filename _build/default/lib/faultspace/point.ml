type t = int array

let of_array a =
  Array.iter (fun x -> if x < 0 then invalid_arg "Point.of_array: negative component") a;
  Array.copy a

let of_list l = of_array (Array.of_list l)
let to_array t = Array.copy t
let to_list t = Array.to_list t
let dim t = Array.length t
let get t i = t.(i)

let with_component t i v =
  if v < 0 then invalid_arg "Point.with_component: negative component";
  let c = Array.copy t in
  c.(i) <- v;
  c

let equal a b = a = b
let compare a b = Stdlib.compare a b
let hash t = Hashtbl.hash (Array.to_list t)

let check_dims a b =
  if Array.length a <> Array.length b then
    invalid_arg "Point: dimension mismatch"

let manhattan a b =
  check_dims a b;
  let d = ref 0 in
  for i = 0 to Array.length a - 1 do
    d := !d + abs (a.(i) - b.(i))
  done;
  !d

let chebyshev a b =
  check_dims a b;
  let d = ref 0 in
  for i = 0 to Array.length a - 1 do
    d := max !d (abs (a.(i) - b.(i)))
  done;
  !d

let key t = String.concat "," (List.map string_of_int (Array.to_list t))

let to_string t =
  "<" ^ String.concat ", " (List.map string_of_int (Array.to_list t)) ^ ">"

let pp ppf t = Format.pp_print_string ppf (to_string t)
