(** Tokenizer for the fault space description language. *)

type token =
  | Ident of string
  | Number of int
  | Colon
  | Comma
  | Semicolon
  | Lbrace
  | Rbrace
  | Lbracket
  | Rbracket
  | Langle
  | Rangle

type error = { position : int; message : string }

val tokenize : string -> (token list, error) result
(** Identifiers follow the grammar (letter, then letters/digits/[_]).
    Numbers are optionally-negative decimal integers. [#] starts a comment
    running to end of line. Whitespace separates tokens. *)

val token_to_string : token -> string
