type kind =
  | Symbols of string array
  | Range of { lo : int; hi : int }
  | Subinterval of { lo : int; hi : int }

type t = { name : string; kind : kind; cardinality : int }

let cardinality_of_kind = function
  | Symbols a -> Array.length a
  | Range { lo; hi } -> hi - lo + 1
  | Subinterval { lo; hi } ->
      let m = hi - lo + 1 in
      m * (m + 1) / 2

let make ~name kind =
  (match kind with
  | Symbols [||] -> invalid_arg "Axis.make: empty symbol set"
  | Symbols _ -> ()
  | Range { lo; hi } | Subinterval { lo; hi } ->
      if hi < lo then invalid_arg "Axis.make: inverted range");
  { name; kind; cardinality = cardinality_of_kind kind }

let symbols name syms = make ~name (Symbols (Array.of_list syms))
let range name ~lo ~hi = make ~name (Range { lo; hi })
let subinterval name ~lo ~hi = make ~name (Subinterval { lo; hi })

let name t = t.name
let kind t = t.kind
let cardinality t = t.cardinality

(* Sub-interval order: all intervals starting at lo first (by increasing
   upper bound), then those starting at lo+1, etc. — lexicographic. *)
let subinterval_of_index ~lo ~hi i =
  let m = hi - lo + 1 in
  let rec find_start start remaining =
    let row = m - (start - lo) in
    if remaining < row then (start, start + remaining)
    else find_start (start + 1) (remaining - row)
  in
  ignore hi;
  find_start lo i

let index_of_subinterval ~lo ~hi (a, b) =
  let m = hi - lo + 1 in
  if a < lo || b > hi || b < a then None
  else begin
    (* Number of intervals with start < a: sum of row lengths m, m-1, ... *)
    let k = a - lo in
    let before = (k * ((2 * m) - k + 1)) / 2 in
    Some (before + (b - a))
  end

let value t i =
  if i < 0 || i >= t.cardinality then
    invalid_arg
      (Printf.sprintf "Axis.value: index %d out of bounds for %s (cardinality %d)" i
         t.name t.cardinality);
  match t.kind with
  | Symbols a -> Value.Sym a.(i)
  | Range { lo; _ } -> Value.Int (lo + i)
  | Subinterval { lo; hi } ->
      let a, b = subinterval_of_index ~lo ~hi i in
      Value.Pair (a, b)

let index_of_value t v =
  match t.kind, v with
  | Symbols a, Value.Sym s ->
      let rec find i =
        if i >= Array.length a then None
        else if String.equal a.(i) s then Some i
        else find (i + 1)
      in
      find 0
  | Range { lo; hi }, Value.Int x -> if x >= lo && x <= hi then Some (x - lo) else None
  | Subinterval { lo; hi }, Value.Pair (a, b) -> index_of_subinterval ~lo ~hi (a, b)
  | (Symbols _ | Range _ | Subinterval _), _ -> None

let equal a b =
  String.equal a.name b.name
  &&
  match a.kind, b.kind with
  | Symbols x, Symbols y -> x = y
  | Range { lo = l1; hi = h1 }, Range { lo = l2; hi = h2 }
  | Subinterval { lo = l1; hi = h1 }, Subinterval { lo = l2; hi = h2 } ->
      l1 = l2 && h1 = h2
  | (Symbols _ | Range _ | Subinterval _), _ -> false

let pp ppf t =
  match t.kind with
  | Symbols a ->
      Format.fprintf ppf "%s : { %s }" t.name (String.concat ", " (Array.to_list a))
  | Range { lo; hi } -> Format.fprintf ppf "%s : [ %d, %d ]" t.name lo hi
  | Subinterval { lo; hi } -> Format.fprintf ppf "%s : < %d, %d >" t.name lo hi
