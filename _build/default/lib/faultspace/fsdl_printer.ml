let domain_to_string = function
  | Fsdl_ast.Set elements -> Printf.sprintf "{ %s }" (String.concat ", " elements)
  | Fsdl_ast.Interval (lo, hi) -> Printf.sprintf "[ %d, %d ]" lo hi
  | Fsdl_ast.Subinterval_domain (lo, hi) -> Printf.sprintf "< %d, %d >" lo hi

let element_to_string = function
  | Fsdl_ast.Subtype name -> name
  | Fsdl_ast.Parameter (name, dom) ->
      Printf.sprintf "%s : %s" name (domain_to_string dom)

let decl_to_string decl =
  String.concat "\n" (List.map element_to_string decl) ^ " ;"

let to_string t = String.concat "\n\n" (List.map decl_to_string t) ^ "\n"

let pp ppf t = Format.pp_print_string ppf (to_string t)
