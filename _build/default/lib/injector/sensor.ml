type observation = { outcome : Outcome.t; new_blocks : int }

type t = { name : string; score : observation -> float }

let standard ?(block_weight = 1.0) ?(fail_weight = 10.0) ?(crash_weight = 20.0)
    ?(hang_weight = 30.0) () =
  let score { outcome; new_blocks } =
    let coverage = block_weight *. float_of_int new_blocks in
    let impact =
      match outcome.Outcome.status with
      | Outcome.Passed -> 0.0
      | Outcome.Test_failed -> fail_weight
      | Outcome.Crashed -> fail_weight +. crash_weight
      | Outcome.Hung -> fail_weight +. hang_weight
    in
    coverage +. impact
  in
  { name = "standard"; score }

let coverage_only =
  { name = "coverage"; score = (fun { new_blocks; _ } -> float_of_int new_blocks) }

let failure_only =
  {
    name = "failure";
    score = (fun { outcome; _ } -> if Outcome.failed outcome then 1.0 else 0.0);
  }

let weighted ~name parts =
  {
    name;
    score =
      (fun obs ->
        List.fold_left (fun acc (sensor, w) -> acc +. (w *. sensor.score obs)) 0.0 parts);
  }

let relevance_weighted sensor ~func_weight =
  {
    name = sensor.name ^ "+relevance";
    score =
      (fun obs ->
        let f = obs.outcome.Outcome.fault.Fault.func in
        sensor.score obs *. func_weight f);
  }
