(** The injection engine: runs one test of a simulated target with one
    fault armed, and reports the outcome.

    Execution semantics: the engine walks the test's call trace counting
    calls to the faulty function. When the [call_number]-th call is
    reached, the callsite's error-handling behaviour for the injected errno
    decides what happens:

    - [Handled]: recovery code runs (covering its recovery blocks) and the
      test continues to completion — it still passes;
    - [Test_fails]: the operation aborts cleanly, the test reports failure;
      recovery blocks are covered, the rest of the trace is not;
    - [Crash]: the process dies at the injection point (after entering
      recovery if the bug is in recovery code);
    - [Hang]: no further progress; the run is charged a timeout.

    If the fault never triggers (call number 0, too few calls, or function
    never called), the test runs to completion and passes. *)

type nondeterminism = {
  rng : Afex_stats.Rng.t;
  dodge_probability : float;
      (** chance that a triggered fault's effect is weakened by scheduling
          (crash observed as clean failure, clean failure as pass);
          models the run-to-run variance that impact precision (§5)
          quantifies. 0 = fully deterministic. *)
}

val hang_timeout_factor : float
(** Multiple of the test's nominal duration charged for a hung run. *)

val run :
  ?nondet:nondeterminism -> Afex_simtarget.Target.t -> Fault.t -> Outcome.t
(** @raise Invalid_argument if the fault's [test_id] is out of range. *)

val baseline : Afex_simtarget.Target.t -> int -> Outcome.t
(** [baseline target test_id] runs a test without injection. *)

val suite_coverage : Afex_simtarget.Target.t -> Afex_stats.Bitset.t
(** Coverage of the full suite without injection. *)
