(** Multi-fault scenarios (§6): several atomic faults armed in one test
    run, e.g. "inject an EINTR error in the third read call, and an ENOMEM
    error in the seventh malloc call".

    Multi-fault runs are what exposes latent
    {!Afex_simtarget.Behavior.Crash_if_recovering} bugs: a first fault
    pushes the target into recovery, and a second fault striking while
    recovery is in flight hits the untested path. *)

type arm = { func : string; call_number : int; errno : string; retval : int }

type t = {
  test_id : int;
  arms : arm list;  (** atomic faults, all armed for the same run *)
}

val make : test_id:int -> arms:(string * int) list -> t
(** Arms from (function, call number) pairs; errno/retval default to each
    function's primary error case. *)

val to_faults : t -> Fault.t list
val of_faults : Fault.t list -> (t, string) result
(** All faults must target the same test. *)

val to_scenario : t -> Afex_faultspace.Scenario.t
(** Wire format: one [testId] binding, then one
    [function/errno/retval/callNumber] group per arm. *)

val of_scenario : Afex_faultspace.Scenario.t -> (t, string) result

val run :
  ?nondet:Engine.nondeterminism -> Afex_simtarget.Target.t -> t -> Outcome.t
(** Walks the test's trace once with every arm live. Semantics:

    - each arm triggers at the [call_number]-th call to its function;
    - [Handled] reactions run their recovery and put the target in
      "recovering" mode for the rest of the run;
    - [Crash_if_recovering] sites handle the error normally unless the
      target is already recovering, in which case they crash inside their
      recovery path;
    - the first terminal reaction ([Test_fails] / [Crash] / [Hang]) ends
      the run, exactly as in single-fault execution.

    The outcome's [fault] is the arm that produced the terminal reaction
    (or the last triggered arm, or the first arm if nothing triggered).
    @raise Invalid_argument on an out-of-range test id or an empty arm
    list. *)

val pp : Format.formatter -> t -> unit
