(** A single concrete library-level fault, in the shape LFI injects:
    ⟨testID, functionName, callNumber⟩ plus the simulated error (§4,
    "Injection Point Precision"). *)

type t = {
  test_id : int;  (** which test of the suite to run *)
  func : string;  (** libc function whose call fails *)
  call_number : int;  (** 1-based call cardinality; 0 = no injection *)
  errno : string;
  retval : int;
}

val make :
  test_id:int -> func:string -> call_number:int -> ?errno:string -> ?retval:int -> unit -> t
(** [errno]/[retval] default to the function's primary error case from the
    {!Afex_simtarget.Libc} profile (EIO/-1 for unknown functions). *)

val equal : t -> t -> bool
val compare : t -> t -> int

val to_scenario : t -> Afex_faultspace.Scenario.t
(** Fig. 5 wire format used between explorer and node managers. *)

val of_scenario : Afex_faultspace.Scenario.t -> (t, string) result

val pp : Format.formatter -> t -> unit
val to_string : t -> string
