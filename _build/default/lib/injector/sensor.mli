(** Sensors turn run observations into a scalar impact value I_S(φ) (§2).

    The paper's recommended recipe (§6.4, step 3) allocates points per
    event of interest: newly covered basic blocks, failed tests, crashes,
    hangs. Sensors are composable so that targets can weigh events
    differently (e.g. MySQL "factors in crashes, which we consider worth
    emphasizing", §7). *)

type observation = {
  outcome : Outcome.t;
  new_blocks : int;
      (** blocks this run covered that no earlier run of the session had *)
}

type t = { name : string; score : observation -> float }

val standard :
  ?block_weight:float ->
  ?fail_weight:float ->
  ?crash_weight:float ->
  ?hang_weight:float ->
  unit ->
  t
(** Defaults follow §6.4: 1 point per newly covered block, 10 per failed
    test, 20 per crash, 30 per hang. Crash/hang scores add to the failure
    score (a crash is also a failed test). *)

val coverage_only : t
val failure_only : t

val weighted : name:string -> (t * float) list -> t
(** Linear combination of sensors. *)

val relevance_weighted : t -> func_weight:(string -> float) -> t
(** Scale a sensor's score by the practical-relevance weight of the faulty
    function (§5, "Practical Relevance"; used by the §7.5 environment-model
    experiment). Unknown functions get weight 1. *)
