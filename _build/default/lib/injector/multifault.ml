module Target = Afex_simtarget.Target
module Sim_test = Afex_simtarget.Sim_test
module Callsite = Afex_simtarget.Callsite
module Behavior = Afex_simtarget.Behavior
module Libc = Afex_simtarget.Libc
module Bitset = Afex_stats.Bitset
module Value = Afex_faultspace.Value

type arm = { func : string; call_number : int; errno : string; retval : int }
type t = { test_id : int; arms : arm list }

let default_error func =
  match Libc.find func with
  | Some info -> Libc.primary_error info
  | None -> { Libc.retval = -1; errno = "EIO" }

let arm_of (func, call_number) =
  let e = default_error func in
  { func; call_number; errno = e.Libc.errno; retval = e.Libc.retval }

let make ~test_id ~arms = { test_id; arms = List.map arm_of arms }

let fault_of_arm test_id a =
  Fault.make ~test_id ~func:a.func ~call_number:a.call_number ~errno:a.errno
    ~retval:a.retval ()

let arm_of_fault (f : Fault.t) =
  {
    func = f.Fault.func;
    call_number = f.Fault.call_number;
    errno = f.Fault.errno;
    retval = f.Fault.retval;
  }

let to_faults t = List.map (fault_of_arm t.test_id) t.arms

let of_faults = function
  | [] -> Error "empty fault list"
  | first :: _ as faults ->
      let test_id = first.Fault.test_id in
      if List.for_all (fun f -> f.Fault.test_id = test_id) faults then
        Ok { test_id; arms = List.map arm_of_fault faults }
      else Error "multi-fault scenario spans several tests"

let to_scenario t =
  ("testId", Value.Int t.test_id)
  :: List.concat_map
       (fun a ->
         [
           ("function", Value.Sym a.func);
           ("errno", Value.Sym a.errno);
           ("retval", Value.Int a.retval);
           ("callNumber", Value.Int a.call_number);
         ])
       t.arms

let of_scenario scenario =
  (* One testId binding, then groups of attributes; a group starts at each
     "function" binding. Suffixed attribute names (function2, callNumber2,
     ... from compound search spaces) are accepted as well. *)
  let strip_suffix name prefix =
    let np = String.length prefix in
    String.length name >= np
    && String.sub name 0 np = prefix
    && String.for_all (fun c -> c >= '0' && c <= '9')
         (String.sub name np (String.length name - np))
  in
  let test_id = ref None and groups = ref [] and current = ref None in
  let flush () =
    match !current with
    | Some arm -> groups := arm :: !groups
    | None -> ()
  in
  let result =
    List.fold_left
      (fun err (name, v) ->
        match err with
        | Some _ -> err
        | None -> (
            match v with
            | Value.Int id when String.equal name "testId" ->
                test_id := Some id;
                None
            | Value.Sym f when strip_suffix name "function" ->
                flush ();
                current := Some (arm_of (f, 1));
                None
            | Value.Int k when strip_suffix name "callNumber" -> (
                match !current with
                | Some arm ->
                    current := Some { arm with call_number = k };
                    None
                | None -> Some (Printf.sprintf "%s before any function" name))
            | Value.Sym e when strip_suffix name "errno" -> (
                match !current with
                | Some arm ->
                    current := Some { arm with errno = e };
                    None
                | None -> Some "errno before any function")
            | Value.Int r when strip_suffix name "retval" -> (
                match !current with
                | Some arm ->
                    current := Some { arm with retval = r };
                    None
                | None -> Some "retval before any function")
            | _ -> Some (Printf.sprintf "unexpected attribute %s" name)))
      None scenario
  in
  flush ();
  match result, !test_id, List.rev !groups with
  | Some e, _, _ -> Error e
  | None, None, _ -> Error "missing testId"
  | None, Some _, [] -> Error "no fault arms"
  | None, Some test_id, arms -> Ok { test_id; arms }

let cover_site coverage (site : Callsite.t) =
  Array.iter (fun b -> Bitset.set coverage b) site.Callsite.blocks

let cover_recovery coverage (site : Callsite.t) =
  Array.iter (fun b -> Bitset.set coverage b) site.Callsite.recovery_blocks

let run ?nondet target t =
  if t.arms = [] then invalid_arg "Multifault.run: no arms";
  if t.test_id < 0 || t.test_id >= Target.n_tests target then
    invalid_arg (Printf.sprintf "Multifault.run: test id %d out of range" t.test_id);
  let test = Target.test target t.test_id in
  let trace = test.Sim_test.trace in
  let coverage = Bitset.create (Target.total_blocks target) in
  let counts = Hashtbl.create 8 in
  let pending = ref t.arms in
  let recovering = ref false in
  let last_triggered = ref None in
  let outcome_of status ~fault ~site ~progress ~crash_stack =
    let nominal = test.Sim_test.duration_ms in
    let duration =
      match status with
      | Outcome.Hung -> nominal *. Engine.hang_timeout_factor
      | Outcome.Passed -> nominal
      | Outcome.Test_failed | Outcome.Crashed -> nominal *. progress
    in
    {
      Outcome.fault;
      status;
      triggered = (match site with Some _ -> true | None -> !last_triggered <> None);
      coverage;
      injection_stack =
        (match site, !last_triggered with
        | Some s, _ -> Some (Callsite.injection_stack s)
        | None, Some (_, s) -> Some (Callsite.injection_stack s)
        | None, None -> None);
      crash_stack;
      duration_ms = duration;
    }
  in
  let n = Array.length trace in
  let result = ref None in
  let i = ref 0 in
  while !result = None && !i < n do
    let site = Target.callsite target trace.(!i) in
    cover_site coverage site;
    let func = site.Callsite.func in
    let count = 1 + Option.value (Hashtbl.find_opt counts func) ~default:0 in
    Hashtbl.replace counts func count;
    (* Does an armed fault trigger on this call? *)
    (match
       List.find_opt (fun a -> String.equal a.func func && a.call_number = count) !pending
     with
    | None -> ()
    | Some arm ->
        pending := List.filter (fun a -> a != arm) !pending;
        last_triggered := Some (arm, site);
        let reaction = Behavior.reaction_for site.Callsite.behavior ~errno:arm.errno in
        let reaction =
          match nondet with
          | Some { Engine.rng; dodge_probability } when dodge_probability > 0.0 ->
              if Afex_stats.Rng.bernoulli rng dodge_probability then
                (match reaction with
                | Behavior.Crash _ -> Behavior.Test_fails
                | Behavior.Test_fails -> Behavior.Handled
                | Behavior.Hang -> Behavior.Test_fails
                | (Behavior.Handled | Behavior.Crash_if_recovering) as r -> r)
              else reaction
          | Some _ | None -> reaction
        in
        let progress = float_of_int (!i + 1) /. float_of_int (max 1 n) in
        let fault = fault_of_arm t.test_id arm in
        (match reaction with
        | Behavior.Handled ->
            cover_recovery coverage site;
            recovering := true
        | Behavior.Crash_if_recovering ->
            if !recovering then begin
              cover_recovery coverage site;
              let crash_stack =
                Some (("recovery@" ^ site.Callsite.location) :: Callsite.injection_stack site)
              in
              result :=
                Some (outcome_of Outcome.Crashed ~fault ~site:(Some site) ~progress ~crash_stack)
            end
            else begin
              cover_recovery coverage site;
              recovering := true
            end
        | Behavior.Test_fails ->
            cover_recovery coverage site;
            result :=
              Some
                (outcome_of Outcome.Test_failed ~fault ~site:(Some site) ~progress
                   ~crash_stack:None)
        | Behavior.Crash { in_recovery } ->
            if in_recovery then cover_recovery coverage site;
            let crash_stack =
              let base = Callsite.injection_stack site in
              if in_recovery then Some (("recovery@" ^ site.Callsite.location) :: base)
              else Some base
            in
            result :=
              Some (outcome_of Outcome.Crashed ~fault ~site:(Some site) ~progress ~crash_stack)
        | Behavior.Hang ->
            result :=
              Some (outcome_of Outcome.Hung ~fault ~site:(Some site) ~progress ~crash_stack:None)));
    incr i
  done;
  match !result with
  | Some outcome -> outcome
  | None ->
      (* Ran to completion: either nothing triggered, or everything that
         did was handled. *)
      let fault =
        match !last_triggered with
        | Some (arm, _) -> fault_of_arm t.test_id arm
        | None -> fault_of_arm t.test_id (List.hd t.arms)
      in
      outcome_of Outcome.Passed ~fault ~site:None ~progress:1.0 ~crash_stack:None

let pp ppf t =
  Format.fprintf ppf "test %d:" t.test_id;
  List.iter
    (fun a -> Format.fprintf ppf " [%s #%d %s]" a.func a.call_number a.errno)
    t.arms
