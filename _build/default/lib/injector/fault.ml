module Libc = Afex_simtarget.Libc
module Value = Afex_faultspace.Value

type t = {
  test_id : int;
  func : string;
  call_number : int;
  errno : string;
  retval : int;
}

let default_error func =
  match Libc.find func with
  | Some info -> Libc.primary_error info
  | None -> { Libc.retval = -1; errno = "EIO" }

let make ~test_id ~func ~call_number ?errno ?retval () =
  let default = default_error func in
  {
    test_id;
    func;
    call_number;
    errno = Option.value errno ~default:default.Libc.errno;
    retval = Option.value retval ~default:default.Libc.retval;
  }

let equal a b = a = b
let compare = Stdlib.compare

let to_scenario t =
  [
    ("testId", Value.Int t.test_id);
    ("function", Value.Sym t.func);
    ("errno", Value.Sym t.errno);
    ("retval", Value.Int t.retval);
    ("callNumber", Value.Int t.call_number);
  ]

let of_scenario scenario =
  let find name = List.assoc_opt name scenario in
  let int_field name =
    match find name with
    | Some (Value.Int v) -> Ok v
    | Some v -> Error (Printf.sprintf "%s: expected integer, got %s" name (Value.to_string v))
    | None -> Error (Printf.sprintf "missing attribute %s" name)
  in
  let sym_field name =
    match find name with
    | Some (Value.Sym s) -> Ok s
    | Some (Value.Int v) -> Ok (string_of_int v)
    | Some v -> Error (Printf.sprintf "%s: expected symbol, got %s" name (Value.to_string v))
    | None -> Error (Printf.sprintf "missing attribute %s" name)
  in
  match int_field "testId", sym_field "function", int_field "callNumber" with
  | Ok test_id, Ok func, Ok call_number ->
      let default = default_error func in
      let errno =
        match sym_field "errno" with Ok e -> e | Error _ -> default.Libc.errno
      in
      let retval =
        match int_field "retval" with Ok r -> r | Error _ -> default.Libc.retval
      in
      Ok { test_id; func; call_number; errno; retval }
  | Error e, _, _ | _, Error e, _ | _, _, Error e -> Error e

let to_string t =
  Printf.sprintf "test %d: %s call #%d fails with %s (ret %d)" t.test_id t.func
    t.call_number t.errno t.retval

let pp ppf t = Format.pp_print_string ppf (to_string t)
