lib/injector/multifault.ml: Afex_faultspace Afex_simtarget Afex_stats Array Engine Fault Format Hashtbl List Option Outcome Printf String
