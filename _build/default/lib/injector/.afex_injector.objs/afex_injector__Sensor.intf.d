lib/injector/sensor.mli: Outcome
