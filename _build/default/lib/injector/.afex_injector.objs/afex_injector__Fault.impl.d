lib/injector/fault.ml: Afex_faultspace Afex_simtarget Format List Option Printf Stdlib
