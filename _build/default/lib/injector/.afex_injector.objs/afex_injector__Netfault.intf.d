lib/injector/netfault.mli: Afex_faultspace Afex_simtarget Fault Outcome Sensor
