lib/injector/multifault.mli: Afex_faultspace Afex_simtarget Engine Fault Format Outcome
