lib/injector/engine.mli: Afex_simtarget Afex_stats Fault Outcome
