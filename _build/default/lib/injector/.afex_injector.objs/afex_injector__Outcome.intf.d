lib/injector/outcome.mli: Afex_stats Fault Format
