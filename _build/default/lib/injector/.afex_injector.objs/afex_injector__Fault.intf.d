lib/injector/fault.mli: Afex_faultspace Format
