lib/injector/sensor.ml: Fault List Outcome
