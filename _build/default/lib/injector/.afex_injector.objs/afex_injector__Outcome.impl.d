lib/injector/outcome.ml: Afex_stats Fault Format
