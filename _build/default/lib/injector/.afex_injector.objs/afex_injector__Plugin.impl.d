lib/injector/plugin.ml: Afex_faultspace Fault List Multifault
