lib/injector/engine.ml: Afex_simtarget Afex_stats Array Fault Outcome Printf
