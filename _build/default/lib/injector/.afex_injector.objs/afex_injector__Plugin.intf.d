lib/injector/plugin.mli: Afex_faultspace Fault Multifault
