lib/injector/netfault.ml: Afex_faultspace Afex_simtarget Afex_stats Array Fault Float List Outcome Printf Scanf Sensor
