(** Everything the sensors observe about one fault-injection run. *)

type status = Passed | Test_failed | Crashed | Hung

type t = {
  fault : Fault.t;
  status : status;
  triggered : bool;
      (** whether the fault was actually injected (the test may make fewer
          than [call_number] calls to the function) *)
  coverage : Afex_stats.Bitset.t;  (** basic blocks covered by this run *)
  injection_stack : string list option;
      (** stack trace captured at the injection point, for redundancy
          clustering (§5) *)
  crash_stack : string list option;  (** core-dump stack when [Crashed] *)
  duration_ms : float;
}

val failed : t -> bool
(** The run counts as a failed test: [Test_failed], [Crashed] or [Hung]. *)

val crashed : t -> bool
val hung : t -> bool

val status_to_string : status -> string
val pp : Format.formatter -> t -> unit
