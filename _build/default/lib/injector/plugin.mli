(** The node-manager plugin layer (§6.1): adapts points of a fault
    subspace to concrete injector parameters.

    A standard experiment subspace has axes named [testId], [function] and
    [callNumber], and optionally [errno] and [retval]; missing error
    attributes default to the function's primary error profile. *)

val fault_of_point :
  Afex_faultspace.Subspace.t -> Afex_faultspace.Point.t -> (Fault.t, string) result

val fault_of_point_exn :
  Afex_faultspace.Subspace.t -> Afex_faultspace.Point.t -> Fault.t
(** @raise Invalid_argument on a malformed subspace/point. *)

val point_of_fault :
  Afex_faultspace.Subspace.t -> Fault.t -> Afex_faultspace.Point.t option
(** Inverse mapping, when the fault's attributes lie on the subspace's
    axes. *)

val multifault_of_point :
  Afex_faultspace.Subspace.t ->
  Afex_faultspace.Point.t ->
  (Multifault.t, string) result
(** Decode a compound-space point (axes [testId], then [function] /
    [callNumber] groups, subsequent groups suffixed [function2],
    [callNumber2], ...) into a multi-fault scenario. *)
