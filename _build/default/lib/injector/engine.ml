module Target = Afex_simtarget.Target
module Sim_test = Afex_simtarget.Sim_test
module Callsite = Afex_simtarget.Callsite
module Behavior = Afex_simtarget.Behavior
module Bitset = Afex_stats.Bitset

type nondeterminism = { rng : Afex_stats.Rng.t; dodge_probability : float }

let hang_timeout_factor = 5.0

let cover_site coverage (site : Callsite.t) =
  Array.iter (fun b -> Bitset.set coverage b) site.Callsite.blocks

let cover_recovery coverage (site : Callsite.t) =
  Array.iter (fun b -> Bitset.set coverage b) site.Callsite.recovery_blocks

let full_run target (test : Sim_test.t) coverage =
  Array.iter (fun s -> cover_site coverage (Target.callsite target s)) test.Sim_test.trace

(* Weaken a triggered reaction, modelling scheduling-dependent escape. *)
let dodge = function
  | Behavior.Crash _ -> Behavior.Test_fails
  | Behavior.Test_fails -> Behavior.Handled
  | Behavior.Hang -> Behavior.Test_fails
  | Behavior.Handled -> Behavior.Handled
  | Behavior.Crash_if_recovering -> Behavior.Crash_if_recovering

let run ?nondet target (fault : Fault.t) =
  if fault.Fault.test_id < 0 || fault.Fault.test_id >= Target.n_tests target then
    invalid_arg
      (Printf.sprintf "Engine.run: test id %d out of range" fault.Fault.test_id);
  let test = Target.test target fault.Fault.test_id in
  let coverage = Bitset.create (Target.total_blocks target) in
  let injection =
    if fault.Fault.call_number <= 0 then None
    else
      Sim_test.nth_call test
        ~site_func:(Target.site_func target)
        fault.Fault.func ~n:fault.Fault.call_number
  in
  match injection with
  | None ->
      full_run target test coverage;
      {
        Outcome.fault;
        status = Outcome.Passed;
        triggered = false;
        coverage;
        injection_stack = None;
        crash_stack = None;
        duration_ms = test.Sim_test.duration_ms;
      }
  | Some (pos, site_id) ->
      let site = Target.callsite target site_id in
      (* Blocks reached up to and including the failing call. *)
      for i = 0 to pos do
        cover_site coverage (Target.callsite target test.Sim_test.trace.(i))
      done;
      let reaction = Behavior.reaction_for site.Callsite.behavior ~errno:fault.Fault.errno in
      let reaction =
        match nondet with
        | Some { rng; dodge_probability } when dodge_probability > 0.0 ->
            if Afex_stats.Rng.bernoulli rng dodge_probability then dodge reaction
            else reaction
        | Some _ | None -> reaction
      in
      let trace_len = Array.length test.Sim_test.trace in
      let progress =
        if trace_len = 0 then 1.0 else float_of_int (pos + 1) /. float_of_int trace_len
      in
      let injection_stack = Some (Callsite.injection_stack site) in
      let finish status ~rest_runs ~recovery ~crash_stack ~duration =
        if recovery then cover_recovery coverage site;
        if rest_runs then full_run target test coverage;
        {
          Outcome.fault;
          status;
          triggered = true;
          coverage;
          injection_stack;
          crash_stack;
          duration_ms = duration;
        }
      in
      let nominal = test.Sim_test.duration_ms in
      (match reaction with
      | Behavior.Crash_if_recovering
      (* With a single fault there is no prior recovery in flight, so the
         latent bug stays dormant and the site handles the error. *)
      | Behavior.Handled ->
          finish Outcome.Passed ~rest_runs:true ~recovery:true ~crash_stack:None
            ~duration:nominal
      | Behavior.Test_fails ->
          finish Outcome.Test_failed ~rest_runs:false ~recovery:true ~crash_stack:None
            ~duration:(nominal *. progress)
      | Behavior.Crash { in_recovery } ->
          let crash_stack =
            let base = Callsite.injection_stack site in
            if in_recovery then
              Some (("recovery@" ^ site.Callsite.location) :: base)
            else Some base
          in
          finish Outcome.Crashed ~rest_runs:false ~recovery:in_recovery ~crash_stack
            ~duration:(nominal *. progress)
      | Behavior.Hang ->
          finish Outcome.Hung ~rest_runs:false ~recovery:false ~crash_stack:None
            ~duration:(nominal *. hang_timeout_factor))

let baseline target test_id =
  run target (Fault.make ~test_id ~func:"malloc" ~call_number:0 ())

let suite_coverage target =
  let coverage = Bitset.create (Target.total_blocks target) in
  Array.iter
    (fun (test : Sim_test.t) ->
      Array.iter (fun s -> cover_site coverage (Target.callsite target s)) test.Sim_test.trace)
    (Target.tests target);
  coverage
