type status = Passed | Test_failed | Crashed | Hung

type t = {
  fault : Fault.t;
  status : status;
  triggered : bool;
  coverage : Afex_stats.Bitset.t;
  injection_stack : string list option;
  crash_stack : string list option;
  duration_ms : float;
}

let failed t =
  match t.status with
  | Test_failed | Crashed | Hung -> true
  | Passed -> false

let crashed t = t.status = Crashed
let hung t = t.status = Hung

let status_to_string = function
  | Passed -> "passed"
  | Test_failed -> "failed"
  | Crashed -> "crashed"
  | Hung -> "hung"

let pp ppf t =
  Format.fprintf ppf "[%s%s] %a (%.1fms, %d blocks)"
    (status_to_string t.status)
    (if t.triggered then "" else ", not triggered")
    Fault.pp t.fault t.duration_ms
    (Afex_stats.Bitset.count t.coverage)
