module Subspace = Afex_faultspace.Subspace
module Value = Afex_faultspace.Value

let fault_of_point sub point =
  let scenario = Subspace.values sub point in
  Fault.of_scenario scenario

let fault_of_point_exn sub point =
  match fault_of_point sub point with
  | Ok f -> f
  | Error m -> invalid_arg ("Plugin.fault_of_point: " ^ m)

let multifault_of_point sub point =
  Multifault.of_scenario (Subspace.values sub point)

let point_of_fault sub (fault : Fault.t) =
  let bindings =
    List.filter_map
      (fun (name, v) ->
        match Subspace.axis_index sub name with Some _ -> Some (name, v) | None -> None)
      (Fault.to_scenario fault)
  in
  (* All axes must be covered by the fault's attributes. *)
  if List.length bindings = Subspace.dim sub then Subspace.point_of_values sub bindings
  else None
