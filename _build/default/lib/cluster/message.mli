(** The explorer <-> node-manager protocol (§6, Fig. 2).

    The explorer sends fault scenarios in the Fig. 5 wire format; managers
    break them into atomic faults, drive injectors and sensors, and send
    back a single aggregated impact measurement. *)

type to_manager =
  | Run_scenario of { seq : int; scenario : Afex_faultspace.Scenario.t }
  | Shutdown

type run_report = {
  seq : int;
  status : Afex_injector.Outcome.status;
  triggered : bool;
  new_blocks : int;  (** measured by the manager's coverage sensor *)
  injection_stack : string list option;
  crash_stack : string list option;
  duration_ms : float;
}

type from_manager =
  | Scenario_result of run_report
  | Manager_error of { seq : int; message : string }

val encode_to_manager : to_manager -> string
(** Line-oriented wire encoding (scenario payload in Fig. 5 format). *)

val decode_to_manager : string -> (to_manager, string) result

val pp_from_manager : Format.formatter -> from_manager -> unit
