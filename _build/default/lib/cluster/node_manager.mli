(** A node manager (§6.1): coordinates the tests assigned to one machine.

    It receives scenarios from the explorer, converts them through the
    plugin layer into concrete injector parameters, runs the startup /
    test / cleanup script sequence, and reports the measured result. In
    this reproduction the machine is simulated, so "running" means invoking
    the injection engine and charging the simulated clock. *)

type t

val create :
  id:int ->
  executor:Afex.Executor.t ->
  ?startup_ms:float ->
  ?cleanup_ms:float ->
  unit ->
  t
(** [startup_ms]/[cleanup_ms] model the user-provided environment scripts
    (defaults 3 ms each). *)

val id : t -> int
val tests_run : t -> int
val busy_ms : t -> float
(** Total simulated time this manager spent executing tests. *)

val handle : t -> Message.to_manager -> (Message.from_manager * float) option
(** Processes one message; returns the reply and the simulated time the
    work took, or [None] for [Shutdown]. *)

val run_scenario :
  t -> Afex_faultspace.Scenario.t -> Afex_injector.Outcome.t * float
(** Direct in-process execution used by the cluster simulation: runs the
    scenario and returns the full outcome (which the co-located explorer
    needs for coverage accounting) plus the simulated elapsed time
    including the startup/cleanup scripts.
    @raise Invalid_argument on an undecodable scenario. *)
