type config = {
  nodes : int;
  iterations : int;
  dispatch_ms : float;
  explorer_generation_ms : float;
}

let default_config =
  { nodes = 4; iterations = 1000; dispatch_ms = 2.0; explorer_generation_ms = 0.12 }

type result = {
  nodes : int;
  tests_executed : int;
  wall_ms : float;
  throughput_per_s : float;
  busy_ms : float array;
  failed : int;
  crashed : int;
  utilization : float;
}

(* Pending completion events, ordered by time. The cluster is small (tens
   of nodes), so a sorted list is ample. *)
module Events = struct
  type 'a t = { mutable events : (float * 'a) list }

  let create () = { events = [] }

  let push t time payload =
    let rec insert = function
      | [] -> [ (time, payload) ]
      | (t0, _) :: _ as rest when time < t0 -> (time, payload) :: rest
      | e :: rest -> e :: insert rest
    in
    t.events <- insert t.events

  let pop t =
    match t.events with
    | [] -> None
    | e :: rest ->
        t.events <- rest;
        Some e
end

let run (cfg : config) search_config sub executor =
  if cfg.nodes < 1 then invalid_arg "Simulation.run: need at least one node";
  let explorer = Afex.Explorer.create search_config sub executor in
  let managers =
    Array.init cfg.nodes (fun id -> Node_manager.create ~id ~executor ())
  in
  let events = Events.create () in
  let remaining = ref cfg.iterations in
  let now = ref 0.0 in
  let dispatched = ref 0 in
  (* Assign the next candidate to a free manager. The explorer generates
     candidates sequentially, so each dispatch also charges generation
     time (this is the §6.1 "no problematic bottleneck" cost model). *)
  let assign manager_id time =
    if !dispatched < cfg.iterations then begin
      match Afex.Explorer.next explorer with
      | None -> ()
      | Some proposal ->
          incr dispatched;
          let scenario = Afex.Explorer.scenario_for explorer proposal in
          (* Exercise the wire protocol for fidelity. *)
          let encoded =
            Message.encode_to_manager
              (Message.Run_scenario { seq = !dispatched; scenario })
          in
          (match Message.decode_to_manager encoded with
          | Ok (Message.Run_scenario _) -> ()
          | Ok Message.Shutdown | Error _ ->
              failwith "Simulation: protocol round-trip failure");
          let outcome, elapsed =
            Node_manager.run_scenario managers.(manager_id) scenario
          in
          let completion =
            time +. cfg.explorer_generation_ms +. cfg.dispatch_ms +. elapsed
          in
          Events.push events completion (manager_id, proposal, outcome)
    end
  in
  for m = 0 to cfg.nodes - 1 do
    assign m 0.0
  done;
  let rec drain () =
    match Events.pop events with
    | None -> ()
    | Some (time, (manager_id, proposal, outcome)) ->
        now := time;
        ignore (Afex.Explorer.report explorer proposal outcome);
        decr remaining;
        if !remaining > 0 then assign manager_id time;
        drain ()
  in
  drain ();
  let executed = Afex.Explorer.iterations explorer in
  let wall_ms = !now in
  let busy = Array.map Node_manager.busy_ms managers in
  {
    nodes = cfg.nodes;
    tests_executed = executed;
    wall_ms;
    throughput_per_s =
      (if wall_ms <= 0.0 then 0.0 else 1000.0 *. float_of_int executed /. wall_ms);
    busy_ms = busy;
    failed = Afex.Explorer.failed_count explorer;
    crashed = Afex.Explorer.crashed_count explorer;
    utilization =
      (if wall_ms <= 0.0 then 0.0
       else
         Array.fold_left ( +. ) 0.0 busy
         /. (wall_ms *. float_of_int cfg.nodes));
  }

let scaling ~node_counts ~iterations search_config sub executor =
  List.map
    (fun nodes ->
      run { default_config with nodes; iterations } search_config sub executor)
    node_counts

let speedup ~baseline result =
  if baseline.throughput_per_s <= 0.0 then 0.0
  else result.throughput_per_s /. baseline.throughput_per_s
