module Scenario = Afex_faultspace.Scenario
module Outcome = Afex_injector.Outcome

type to_manager =
  | Run_scenario of { seq : int; scenario : Scenario.t }
  | Shutdown

type run_report = {
  seq : int;
  status : Outcome.status;
  triggered : bool;
  new_blocks : int;
  injection_stack : string list option;
  crash_stack : string list option;
  duration_ms : float;
}

type from_manager =
  | Scenario_result of run_report
  | Manager_error of { seq : int; message : string }

let encode_to_manager = function
  | Shutdown -> "SHUTDOWN"
  | Run_scenario { seq; scenario } ->
      Printf.sprintf "RUN %d %s" seq (Scenario.to_string scenario)

let decode_to_manager line =
  let line = String.trim line in
  if String.equal line "SHUTDOWN" then Ok Shutdown
  else begin
    match String.split_on_char ' ' line with
    | "RUN" :: seq :: rest -> (
        match int_of_string_opt seq with
        | None -> Error (Printf.sprintf "malformed sequence number %S" seq)
        | Some seq -> (
            match Scenario.of_string (String.concat " " rest) with
            | Ok scenario -> Ok (Run_scenario { seq; scenario })
            | Error e -> Error e))
    | _ -> Error (Printf.sprintf "unknown message %S" line)
  end

let pp_from_manager ppf = function
  | Scenario_result r ->
      Format.fprintf ppf "result #%d: %s (%.1fms)" r.seq
        (Outcome.status_to_string r.status)
        r.duration_ms
  | Manager_error { seq; message } -> Format.fprintf ppf "error #%d: %s" seq message
