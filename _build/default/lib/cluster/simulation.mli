(** Discrete-event simulation of a parallel AFEX deployment (§6.1, §7.7).

    One explorer feeds N node managers; each manager runs one test at a
    time. Tests are independent, so the system is embarrassingly parallel:
    the simulation verifies that tests-per-unit-time scales linearly in N
    (the §7.7 claim) and measures how the explorer's candidate-generation
    cost bounds the useful cluster size. *)

type config = {
  nodes : int;
  iterations : int;  (** total tests to execute across the cluster *)
  dispatch_ms : float;  (** explorer->manager->explorer messaging overhead *)
  explorer_generation_ms : float;
      (** simulated cost of generating one candidate; §7.7 measures ~8500
          candidates/s, i.e. ~0.12 ms *)
}

val default_config : config
(** 4 nodes, 1000 iterations, 2 ms dispatch, 0.12 ms generation. *)

type result = {
  nodes : int;
  tests_executed : int;
  wall_ms : float;  (** simulated makespan *)
  throughput_per_s : float;  (** tests per simulated second *)
  busy_ms : float array;  (** per-manager busy time *)
  failed : int;
  crashed : int;
  utilization : float;  (** mean busy fraction across managers *)
}

val run :
  config ->
  Afex.Config.t ->
  Afex_faultspace.Subspace.t ->
  Afex.Executor.t ->
  result

val scaling :
  node_counts:int list ->
  iterations:int ->
  Afex.Config.t ->
  Afex_faultspace.Subspace.t ->
  Afex.Executor.t ->
  result list
(** One simulation per node count (fresh explorer each time), for the
    §7.7 linear-scaling experiment. *)

val speedup : baseline:result -> result -> float
(** Throughput ratio relative to a baseline (normally the 1-node run). *)
