lib/cluster/message.mli: Afex_faultspace Afex_injector Format
