lib/cluster/node_manager.mli: Afex Afex_faultspace Afex_injector Message
