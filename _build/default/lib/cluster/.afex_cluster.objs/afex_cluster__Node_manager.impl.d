lib/cluster/node_manager.ml: Afex Afex_injector Message
