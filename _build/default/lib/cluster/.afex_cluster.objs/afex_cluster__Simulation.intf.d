lib/cluster/simulation.mli: Afex Afex_faultspace
