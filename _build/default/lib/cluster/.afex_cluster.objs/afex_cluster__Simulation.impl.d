lib/cluster/simulation.ml: Afex Array List Message Node_manager
