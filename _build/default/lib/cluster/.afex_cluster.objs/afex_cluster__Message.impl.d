lib/cluster/message.ml: Afex_faultspace Afex_injector Format Printf String
