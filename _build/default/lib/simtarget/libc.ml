type category = Memory | File_io | Directory | Process | Network | Locale | Time | String_conv

type error_case = { retval : int; errno : string }

type t = { name : string; category : category; errors : error_case list }

let category_to_string = function
  | Memory -> "memory"
  | File_io -> "file"
  | Directory -> "directory"
  | Process -> "process"
  | Network -> "network"
  | Locale -> "locale"
  | Time -> "time"
  | String_conv -> "string"

let fn name category errors = { name; category; errors }
let e retval errno = { retval; errno }

(* Canonical order: grouped by category, so that neighbouring functions on
   the Xfunc axis are semantically related (§2: "group POSIX functions by
   functionality"). *)
let catalog =
  [
    (* memory *)
    fn "malloc" Memory [ e 0 "ENOMEM" ];
    fn "calloc" Memory [ e 0 "ENOMEM" ];
    fn "realloc" Memory [ e 0 "ENOMEM" ];
    fn "strdup" Memory [ e 0 "ENOMEM" ];
    fn "mmap" Memory [ e (-1) "ENOMEM"; e (-1) "EACCES" ];
    (* file I/O *)
    fn "open" File_io [ e (-1) "ENOENT"; e (-1) "EACCES"; e (-1) "EMFILE" ];
    fn "fopen" File_io [ e 0 "ENOENT"; e 0 "EACCES"; e 0 "EMFILE" ];
    fn "fopen64" File_io [ e 0 "ENOENT"; e 0 "EACCES"; e 0 "EMFILE" ];
    fn "fclose" File_io [ e (-1) "EIO"; e (-1) "EBADF" ];
    fn "close" File_io [ e (-1) "EIO"; e (-1) "EBADF"; e (-1) "EINTR" ];
    fn "read" File_io [ e (-1) "EINTR"; e (-1) "EIO"; e (-1) "EAGAIN" ];
    fn "write" File_io [ e (-1) "ENOSPC"; e (-1) "EINTR"; e (-1) "EIO" ];
    fn "fgets" File_io [ e 0 "EINTR"; e 0 "EIO" ];
    fn "putc" File_io [ e (-1) "EIO" ];
    fn "__IO_putc" File_io [ e (-1) "EIO" ];
    fn "fflush" File_io [ e (-1) "EIO"; e (-1) "ENOSPC" ];
    fn "ferror" File_io [ e 1 "EIO" ];
    fn "fcntl" File_io [ e (-1) "EACCES"; e (-1) "EINTR" ];
    fn "stat" File_io [ e (-1) "ENOENT"; e (-1) "EACCES" ];
    fn "__xstat64" File_io [ e (-1) "ENOENT"; e (-1) "EACCES" ];
    fn "fsync" File_io [ e (-1) "EIO" ];
    fn "lseek" File_io [ e (-1) "EINVAL"; e (-1) "EBADF" ];
    fn "unlink" File_io [ e (-1) "ENOENT"; e (-1) "EACCES" ];
    fn "rename" File_io [ e (-1) "EXDEV"; e (-1) "EACCES" ];
    (* directories *)
    fn "opendir" Directory [ e 0 "ENOENT"; e 0 "EACCES"; e 0 "EMFILE" ];
    fn "closedir" Directory [ e (-1) "EBADF" ];
    fn "readdir" Directory [ e 0 "EBADF" ];
    fn "chdir" Directory [ e (-1) "ENOENT"; e (-1) "EACCES" ];
    fn "getcwd" Directory [ e 0 "ERANGE"; e 0 "EACCES" ];
    fn "mkdir" Directory [ e (-1) "EEXIST"; e (-1) "EACCES" ];
    (* process *)
    fn "wait" Process [ e (-1) "ECHILD"; e (-1) "EINTR" ];
    fn "fork" Process [ e (-1) "EAGAIN"; e (-1) "ENOMEM" ];
    fn "pipe" Process [ e (-1) "EMFILE"; e (-1) "ENFILE" ];
    fn "getrlimit64" Process [ e (-1) "EINVAL" ];
    fn "setrlimit64" Process [ e (-1) "EPERM"; e (-1) "EINVAL" ];
    fn "kill" Process [ e (-1) "ESRCH"; e (-1) "EPERM" ];
    (* network *)
    fn "socket" Network [ e (-1) "EMFILE"; e (-1) "EACCES" ];
    fn "bind" Network [ e (-1) "EADDRINUSE"; e (-1) "EACCES" ];
    fn "listen" Network [ e (-1) "EADDRINUSE" ];
    fn "accept" Network [ e (-1) "EINTR"; e (-1) "EMFILE"; e (-1) "ECONNABORTED" ];
    fn "recv" Network [ e (-1) "EINTR"; e (-1) "ECONNRESET"; e (-1) "EAGAIN" ];
    fn "send" Network [ e (-1) "EPIPE"; e (-1) "EINTR"; e (-1) "ECONNRESET" ];
    fn "connect" Network [ e (-1) "ECONNREFUSED"; e (-1) "ETIMEDOUT" ];
    (* locale / i18n *)
    fn "setlocale" Locale [ e 0 "ENOENT" ];
    fn "bindtextdomain" Locale [ e 0 "ENOMEM" ];
    fn "textdomain" Locale [ e 0 "ENOMEM" ];
    (* time *)
    fn "clock_gettime" Time [ e (-1) "EINVAL" ];
    fn "gettimeofday" Time [ e (-1) "EFAULT" ];
    (* string/number conversion *)
    fn "strtol" String_conv [ e 0 "ERANGE"; e 0 "EINVAL" ];
  ]

let table = Hashtbl.create 64

let () = List.iter (fun f -> Hashtbl.replace table f.name f) catalog

let find name = Hashtbl.find_opt table name

let find_exn name =
  match find name with Some f -> f | None -> raise Not_found

let primary_error t =
  match t.errors with
  | first :: _ -> first
  | [] -> { retval = -1; errno = "EIO" }

let fig1_functions =
  [
    "wait"; "malloc"; "calloc"; "realloc"; "fopen64"; "fopen"; "fclose"; "stat";
    "__xstat64"; "ferror"; "fcntl"; "fgets"; "putc"; "__IO_putc"; "read";
    "opendir"; "closedir"; "chdir"; "pipe"; "fflush"; "close"; "getrlimit64";
    "setrlimit64"; "setlocale"; "clock_gettime"; "getcwd"; "bindtextdomain";
    "textdomain"; "strtol";
  ]

let standard19 =
  [
    "malloc"; "calloc"; "realloc"; "strdup"; "fopen"; "fclose"; "close"; "read";
    "write"; "fgets"; "fflush"; "stat"; "fcntl"; "opendir"; "closedir"; "chdir";
    "getcwd"; "setlocale"; "strtol";
  ]

let ordered_names = List.map (fun f -> f.name) catalog

let errnos_of name =
  match find name with
  | None -> []
  | Some f -> List.map (fun c -> c.errno) f.errors
