(** ltrace stand-in: derive a fault space description from observed
    behaviour of a target's test suite (§6.4 step 2: "analyze the target
    system with a tracer like ltrace").

    Running the suite (without injection) reveals which libc functions the
    target calls and how many times; combining that with the per-function
    error profiles of {!Libc} yields a Fig. 4-style description. *)

val call_counts : Target.t -> (string * int) list
(** Functions used by the suite with the maximum per-test call count, in
    canonical order. *)

val describe : Target.t -> Afex_faultspace.Fsdl_ast.t
(** One subspace declaration per (function, errno) error case:
    [function : { f } errno : { e } retval : { r } callNumber : [1, max]],
    exactly the shape of the paper's Fig. 4 example. *)

val describe_string : Target.t -> string
(** {!describe} rendered in the fault description language. *)

val standard_description : Target.t -> funcs:string list -> max_call:int -> string
(** The 3-axis search space (testId x function x callNumber) rendered in
    the description language. *)
