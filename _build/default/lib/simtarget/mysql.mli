(** Model of MySQL 5.1.44 (§7.1, Table 1).

    1147 tests, the 19-function [Xfunc] axis, call numbers 1-100:
    |Φ_MySQL| = 1147 x 19 x 100 = 2 179 300 faults, matching the paper.
    Two real MySQL bugs are planted:

    - {b double unlock} (MySQL bug #53268, Fig. 6): the [mi_create]
      recovery path releases [THR_LOCK_myisam] twice when [my_close]
      fails — a crash {e inside} recovery code. Reached by a handful of
      MyISAM table-creation tests.
    - {b errmsg.sys read} (MySQL bug #25097): a failed [read] of
      [errmsg.sys] is detected and logged, but the server then uses the
      uninitialized message structure and crashes. Reached early in many
      tests (server startup). *)

val target : unit -> Target.t
val space : unit -> Afex_faultspace.Subspace.t

val double_unlock_site : unit -> int
(** Callsite id of the planted Fig. 6 bug. *)

val errmsg_site : unit -> int
(** Callsite id of the planted bug #25097. *)

val known_bug_stacks : unit -> (string * string list) list
(** [(bug name, crash stack)] for both planted bugs, used by the benches to
    recognise when a search has rediscovered them. *)
