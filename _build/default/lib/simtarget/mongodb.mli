(** Models of MongoDB v0.8 (pre-production) and v2.0 (industrial strength)
    for the development-stage experiment (§7.6, Fig. 9).

    v0.8 is small with its fragility concentrated in two immature modules —
    a strongly structured fault space where guided search shines (paper:
    2.37x over random). v2.0 is larger, interacts far more with its
    environment (longer traces, more failure opportunities — the paper
    observes {e more} absolute failures) but its residual fragility is
    scattered thinly across many modules, so the structure is weaker and
    the guided-search advantage drops (paper: 1.43x). v2.0 also contains
    one rare crash site; v0.8 none. *)

val target_v08 : unit -> Target.t
val target_v20 : unit -> Target.t

val space_v08 : unit -> Afex_faultspace.Subspace.t
val space_v20 : unit -> Afex_faultspace.Subspace.t
