module Ast = Afex_faultspace.Fsdl_ast
module Printer = Afex_faultspace.Fsdl_printer

let call_counts target =
  List.filter_map
    (fun f ->
      let n = Target.max_calls target f in
      if n > 0 then Some (f, n) else None)
    (Target.functions_used target)

let describe target =
  List.concat_map
    (fun (func, max_call) ->
      match Libc.find func with
      | None -> []
      | Some info ->
          List.map
            (fun { Libc.retval; errno } ->
              [
                Ast.Parameter ("function", Ast.Set [ func ]);
                Ast.Parameter ("errno", Ast.Set [ errno ]);
                Ast.Parameter ("retval", Ast.Set [ string_of_int retval ]);
                Ast.Parameter ("callNumber", Ast.Interval (1, max_call));
              ])
            info.Libc.errors)
    (call_counts target)

let describe_string target = Printer.to_string (describe target)

let standard_description target ~funcs ~max_call =
  Printer.to_string
    [
      [
        Ast.Subtype (Target.name target);
        Ast.Parameter ("testId", Ast.Interval (0, Target.n_tests target - 1));
        Ast.Parameter ("function", Ast.Set funcs);
        Ast.Parameter ("callNumber", Ast.Interval (1, max_call));
      ];
    ]
