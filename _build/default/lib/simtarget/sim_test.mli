(** One test of the target's test suite.

    A test pins down one execution path (modulo nondeterminism, §4): a
    deterministic sequence of callsite visits. The [Xtest] axis of every
    fault space in the paper's evaluation indexes these. *)

type t = {
  id : int;  (** position on the [Xtest] axis (0-based) *)
  name : string;
  group : string;
      (** functional grouping; consecutive tests of a group exercise
          similar paths, which is what makes the [Xtest] axis structured *)
  trace : int array;  (** callsite ids, in execution order *)
  duration_ms : float;  (** nominal wall-clock cost of executing the test *)
}

val make :
  id:int -> name:string -> group:string -> trace:int array -> duration_ms:float -> t

val calls_to : t -> site_func:(int -> string) -> string -> int
(** Number of calls the test makes to the named libc function, given a
    mapping from callsite id to function name. *)

val nth_call : t -> site_func:(int -> string) -> string -> n:int -> (int * int) option
(** [nth_call t ~site_func f ~n] finds the [n]-th (1-based) call to [f]:
    returns [(trace_position, callsite_id)], or [None] if the test makes
    fewer than [n] calls to [f]. *)

val pp : Format.formatter -> t -> unit
