module IntSet = Set.Make (Int)
module StringSet = Set.Make (String)

type t = {
  name : string;
  version : string;
  callsites : Callsite.t array;
  tests : Sim_test.t array;
  total_blocks : int;
}

let validate t =
  Array.iteri
    (fun i (site : Callsite.t) ->
      if site.Callsite.id <> i then
        invalid_arg
          (Printf.sprintf "Target.make: callsite at position %d has id %d" i
             site.Callsite.id);
      let check_block b =
        if b < 0 || b >= t.total_blocks then
          invalid_arg
            (Printf.sprintf "Target.make: block %d out of range at site %d" b i)
      in
      Array.iter check_block site.Callsite.blocks;
      Array.iter check_block site.Callsite.recovery_blocks)
    t.callsites;
  Array.iter
    (fun (test : Sim_test.t) ->
      Array.iter
        (fun site ->
          if site < 0 || site >= Array.length t.callsites then
            invalid_arg
              (Printf.sprintf "Target.make: test %d references unknown callsite %d"
                 test.Sim_test.id site))
        test.Sim_test.trace)
    t.tests

let make ~name ~version ~callsites ~tests ~total_blocks =
  let t = { name; version; callsites; tests; total_blocks } in
  validate t;
  t

let name t = t.name
let version t = t.version
let callsites t = t.callsites
let tests t = t.tests
let total_blocks t = t.total_blocks
let callsite t i = t.callsites.(i)
let test t i = t.tests.(i)
let n_tests t = Array.length t.tests
let site_func t i = t.callsites.(i).Callsite.func

let functions_used t =
  let used = Hashtbl.create 32 in
  Array.iter
    (fun (test : Sim_test.t) ->
      Array.iter
        (fun site -> Hashtbl.replace used (site_func t site) ())
        test.Sim_test.trace)
    t.tests;
  let known = List.filter (fun f -> Hashtbl.mem used f) Libc.ordered_names in
  let unknown =
    Hashtbl.fold
      (fun f () acc -> if List.mem f known then acc else f :: acc)
      used []
  in
  known @ List.sort String.compare unknown

let max_calls t func =
  Array.fold_left
    (fun acc test ->
      max acc (Sim_test.calls_to test ~site_func:(site_func t) func))
    0 t.tests

let baseline_coverage t =
  let covered = ref IntSet.empty in
  Array.iter
    (fun (test : Sim_test.t) ->
      Array.iter
        (fun site ->
          Array.iter
            (fun b -> covered := IntSet.add b !covered)
            t.callsites.(site).Callsite.blocks)
        test.Sim_test.trace)
    t.tests;
  IntSet.cardinal !covered

let recovery_blocks_total t =
  let blocks = ref IntSet.empty in
  Array.iter
    (fun (site : Callsite.t) ->
      Array.iter (fun b -> blocks := IntSet.add b !blocks) site.Callsite.recovery_blocks)
    t.callsites;
  IntSet.cardinal !blocks

let modules t =
  let set =
    Array.fold_left
      (fun acc (site : Callsite.t) -> StringSet.add site.Callsite.module_name acc)
      StringSet.empty t.callsites
  in
  StringSet.elements set

let pp_summary ppf t =
  Format.fprintf ppf
    "%s %s: %d tests, %d callsites, %d modules, %d blocks (%d recovery-only)"
    t.name t.version (Array.length t.tests) (Array.length t.callsites)
    (List.length (modules t)) t.total_blocks (recovery_blocks_total t)
