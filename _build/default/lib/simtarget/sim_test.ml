type t = {
  id : int;
  name : string;
  group : string;
  trace : int array;
  duration_ms : float;
}

let make ~id ~name ~group ~trace ~duration_ms =
  { id; name; group; trace; duration_ms }

let calls_to t ~site_func func =
  Array.fold_left
    (fun acc site -> if String.equal (site_func site) func then acc + 1 else acc)
    0 t.trace

let nth_call t ~site_func func ~n =
  if n <= 0 then None
  else begin
    let remaining = ref n and result = ref None and i = ref 0 in
    let len = Array.length t.trace in
    while !result = None && !i < len do
      let site = t.trace.(!i) in
      if String.equal (site_func site) func then begin
        decr remaining;
        if !remaining = 0 then result := Some (!i, site)
      end;
      incr i
    done;
    !result
  end

let pp ppf t =
  Format.fprintf ppf "test#%d %s (%s, %d calls, %.1fms)" t.id t.name t.group
    (Array.length t.trace) t.duration_ms
