type reaction =
  | Handled
  | Test_fails
  | Crash of { in_recovery : bool }
  | Hang
  | Crash_if_recovering

type t = { default : reaction; by_errno : (string * reaction) list }

let always reaction = { default = reaction; by_errno = [] }
let with_errno default by_errno = { default; by_errno }

let reaction_for t ~errno =
  match List.assoc_opt errno t.by_errno with
  | Some r -> r
  | None -> t.default

let is_benign = function
  | Handled -> true
  | Test_fails | Crash _ | Hang | Crash_if_recovering -> false

let reaction_to_string = function
  | Handled -> "handled"
  | Test_fails -> "test-fails"
  | Crash { in_recovery = true } -> "crash-in-recovery"
  | Crash { in_recovery = false } -> "crash"
  | Hang -> "hang"
  | Crash_if_recovering -> "crash-if-recovering"

let pp_reaction ppf r = Format.pp_print_string ppf (reaction_to_string r)
