module Axis = Afex_faultspace.Axis
module Subspace = Afex_faultspace.Subspace

let axis_test = 0
let axis_func = 1
let axis_call = 2

let derive_max_call ?max_call ~funcs target =
  match max_call with
  | Some m -> m
  | None ->
      List.fold_left (fun acc f -> max acc (Target.max_calls target f)) 1 funcs

let multi ?(arms = 2) ?(min_call = 1) ?max_call ~funcs target =
  if arms < 1 then invalid_arg "Spaces.multi: arms < 1";
  let max_call = derive_max_call ?max_call ~funcs target in
  let arm_axes i =
    let suffix = if i = 0 then "" else string_of_int (i + 1) in
    [
      Axis.symbols ("function" ^ suffix) funcs;
      Axis.range ("callNumber" ^ suffix) ~lo:min_call ~hi:max_call;
    ]
  in
  Subspace.make
    ~label:(Target.name target ^ ".multi")
    (Axis.range "testId" ~lo:0 ~hi:(Target.n_tests target - 1)
    :: List.concat_map arm_axes (List.init arms (fun i -> i)))

let standard ?(min_call = 1) ?max_call ~funcs target =
  let max_call = derive_max_call ?max_call ~funcs target in
  Subspace.make
    ~label:(Target.name target)
    [
      Axis.range "testId" ~lo:0 ~hi:(Target.n_tests target - 1);
      Axis.symbols "function" funcs;
      Axis.range "callNumber" ~lo:min_call ~hi:max_call;
    ]
