module Rng = Afex_stats.Rng

type finding = { site : int; func : string; location : string; reason : string }

let reason_for (site : Callsite.t) =
  match site.Callsite.behavior.Behavior.default with
  | Behavior.Crash { in_recovery = true } -> "cleanup path reuses released state"
  | Behavior.Crash { in_recovery = false } -> "return value dereferenced without check"
  | Behavior.Hang -> "retry loop without backoff or timeout"
  | Behavior.Test_fails -> "error propagated without compensation"
  | Behavior.Crash_if_recovering -> "reentrant use of recovery buffer"
  | Behavior.Handled -> "error handling block looks incomplete"

let analyze ?(recall = 0.7) ?(precision = 0.6) ?(seed = 0) target =
  let rng = Rng.create (seed + 7879) in
  let sites = Target.callsites target in
  let fragile, benign =
    List.partition
      (fun (s : Callsite.t) ->
        not (Behavior.is_benign s.Callsite.behavior.Behavior.default))
      (Array.to_list sites)
  in
  let found = List.filter (fun _ -> Rng.bernoulli rng recall) fragile in
  (* Add false positives so that |found| / (|found| + |fp|) ~= precision. *)
  let fp_wanted =
    if precision <= 0.0 || precision >= 1.0 then 0
    else
      int_of_float
        (Float.round (float_of_int (List.length found) *. (1.0 -. precision) /. precision))
  in
  let benign = Array.of_list benign in
  Rng.shuffle rng benign;
  let false_positives =
    Array.to_list (Array.sub benign 0 (min fp_wanted (Array.length benign)))
  in
  let to_finding (s : Callsite.t) =
    {
      site = s.Callsite.id;
      func = s.Callsite.func;
      location = s.Callsite.location;
      reason = reason_for s;
    }
  in
  List.sort
    (fun a b -> compare a.site b.site)
    (List.map to_finding (found @ false_positives))

let reaching_injections target finding =
  let results = ref [] in
  Array.iter
    (fun (test : Sim_test.t) ->
      (* Count calls to the finding's function along the trace; record the
         call numbers at which the flagged site is the callee. *)
      let count = ref 0 in
      Array.iter
        (fun site_id ->
          if String.equal (Target.site_func target site_id) finding.func then begin
            incr count;
            if site_id = finding.site then
              results := (test.Sim_test.id, !count) :: !results
          end)
        test.Sim_test.trace)
    (Target.tests target);
  List.rev !results
