(** A request/response network server model, for performance-impact fault
    injection (§2's motivating metric is "the change in number of requests
    per second served by Apache when random TCP packets are dropped", and
    §6 proposes "the top-50 worst faults performance-wise" as a search
    target).

    A workload is a set of client connections, each carrying a sequence of
    requests made of packets. Dropping a packet forces a retransmission
    (latency penalty); clients with no retry budget abort their connection
    instead, losing every remaining request. Everything is deterministic,
    so a fault's throughput impact is exactly reproducible. *)

type connection = {
  conn_id : int;
  packets_per_request : int array;  (** one entry per request *)
  retry_limit : int;  (** 0 = fragile client: any drop aborts *)
}

type workload = {
  id : int;
  name : string;
  connections : connection array;
  handler_ms : float;  (** server-side processing per request *)
}

type server = {
  name : string;
  workloads : workload array;
  per_packet_ms : float;
  retransmit_ms : float;  (** penalty per retransmitted packet *)
}

type drop = { workload : int; connection : int; packet : int }
(** [packet] is a 0-based index into the connection's packet stream
    (requests concatenated in order). *)

type burst = { b_workload : int; b_connection : int; window : int * int }
(** A loss burst: every packet of the inclusive window is dropped — the
    natural use of the description language's [< lo, hi >] sub-interval
    domains. *)

type run_result = {
  requests_attempted : int;
  requests_completed : int;
  elapsed_ms : float;
  throughput_rps : float;  (** completed requests per second *)
  aborted_connection : int option;
}

val total_packets : connection -> int
val workload_requests : workload -> int

val run :
  server -> ?drop:drop -> ?burst:burst -> workload:int -> unit -> run_result
(** @raise Invalid_argument on an out-of-range workload id. Out-of-range
    drop/burst coordinates simply never trigger (holes in the fault
    space). A burst hitting a request repeatedly retransmits each lost
    packet; clients exhaust their retry budget faster than under a single
    drop. *)

val baseline : server -> workload:int -> run_result

val httpd_like : unit -> server
(** A web-server-shaped instance: several workloads (static files, dynamic
    pages, keep-alive bursts, mixed) with a deterministic population of
    connections, a fraction of which are fragile (no retry budget). *)

val max_connections : server -> int
val max_packets : server -> int
