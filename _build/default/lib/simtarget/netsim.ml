module Rng = Afex_stats.Rng

type connection = {
  conn_id : int;
  packets_per_request : int array;
  retry_limit : int;
}

type workload = {
  id : int;
  name : string;
  connections : connection array;
  handler_ms : float;
}

type server = {
  name : string;
  workloads : workload array;
  per_packet_ms : float;
  retransmit_ms : float;
}

type drop = { workload : int; connection : int; packet : int }
type burst = { b_workload : int; b_connection : int; window : int * int }

type run_result = {
  requests_attempted : int;
  requests_completed : int;
  elapsed_ms : float;
  throughput_rps : float;
  aborted_connection : int option;
}

let total_packets conn = Array.fold_left ( + ) 0 conn.packets_per_request
let workload_requests w =
  Array.fold_left (fun acc c -> acc + Array.length c.packets_per_request) 0 w.connections

let run server ?drop ?burst ~workload () =
  if workload < 0 || workload >= Array.length server.workloads then
    invalid_arg (Printf.sprintf "Netsim.run: workload %d out of range" workload);
  let w = server.workloads.(workload) in
  let attempted = workload_requests w in
  let completed = ref 0 in
  let elapsed = ref 0.0 in
  let aborted = ref None in
  Array.iter
    (fun conn ->
      (* The window of this connection's packet stream that is lost. *)
      let lost_window =
        match drop, burst with
        | Some d, _ when d.workload = workload && d.connection = conn.conn_id ->
            Some (d.packet, d.packet)
        | _, Some b when b.b_workload = workload && b.b_connection = conn.conn_id ->
            Some b.window
        | _, _ -> None
      in
      let stream_pos = ref 0 in
      let alive = ref true in
      Array.iter
        (fun packets ->
          if !alive then begin
            let first = !stream_pos in
            let last = first + packets - 1 in
            stream_pos := last + 1;
            elapsed := !elapsed +. (float_of_int packets *. server.per_packet_ms);
            let lost_here =
              match lost_window with
              | Some (lo, hi) -> max 0 (min hi last - max lo first + 1)
              | None -> 0
            in
            if lost_here > 0 then begin
              if conn.retry_limit >= lost_here then begin
                (* Retransmit every lost packet; the request completes. *)
                elapsed :=
                  !elapsed +. (float_of_int lost_here *. server.retransmit_ms);
                elapsed := !elapsed +. w.handler_ms;
                incr completed
              end
              else begin
                (* Retry budget exhausted: the connection resets and every
                   remaining request of this connection is lost. *)
                alive := false;
                aborted := Some conn.conn_id
              end
            end
            else begin
              elapsed := !elapsed +. w.handler_ms;
              incr completed
            end
          end)
        conn.packets_per_request)
    w.connections;
  let elapsed_ms = Float.max 1e-6 !elapsed in
  {
    requests_attempted = attempted;
    requests_completed = !completed;
    elapsed_ms;
    throughput_rps = 1000.0 *. float_of_int !completed /. elapsed_ms;
    aborted_connection = !aborted;
  }

let baseline server ~workload = run server ~workload ()

let httpd_like () =
  let rng = Rng.create 8080 in
  let connection conn_id ~requests ~packet_range ~fragile =
    {
      conn_id;
      packets_per_request =
        Array.init requests (fun _ ->
            let lo, hi = packet_range in
            Rng.int_in rng lo hi);
      retry_limit = (if fragile then 0 else 3);
    }
  in
  let workload id name ~conns ~requests ~packet_range ~fragile_every ~handler_ms =
    {
      id;
      name;
      connections =
        Array.init conns (fun c ->
            connection c ~requests ~packet_range ~fragile:(c mod fragile_every = 0));
      handler_ms;
    }
  in
  {
    name = "httpd-net";
    workloads =
      [|
        workload 0 "static-files" ~conns:12 ~requests:8 ~packet_range:(1, 3)
          ~fragile_every:6 ~handler_ms:0.4;
        workload 1 "dynamic-pages" ~conns:8 ~requests:5 ~packet_range:(2, 6)
          ~fragile_every:4 ~handler_ms:2.5;
        workload 2 "keepalive-burst" ~conns:4 ~requests:24 ~packet_range:(1, 2)
          ~fragile_every:2 ~handler_ms:0.2;
        workload 3 "mixed" ~conns:10 ~requests:10 ~packet_range:(1, 5)
          ~fragile_every:5 ~handler_ms:1.0;
      |];
    per_packet_ms = 0.15;
    retransmit_ms = 9.0;
  }

let max_connections server =
  Array.fold_left
    (fun acc w -> max acc (Array.length w.connections))
    0 server.workloads

let max_packets server =
  Array.fold_left
    (fun acc w ->
      Array.fold_left (fun acc c -> max acc (total_packets c)) acc w.connections)
    0 server.workloads
