(** Model of Apache httpd 2.3.8 (§7.1, Tables 2, 4, 5).

    58 tests x 19 functions x call numbers 1-10: |Φ_Apache| = 11 020. The
    planted bug is the Fig. 7 [strdup] out-of-memory crash: module
    registration duplicates a symbol name without checking for NULL and
    dereferences the result ([config.c:579]). The paper found 27
    manifestations with fitness-guided search and none with random; the
    site is reachable from a single functional group of tests, so it is
    rare under uniform sampling but sits inside a discoverable cluster. *)

val target : unit -> Target.t
val space : unit -> Afex_faultspace.Subspace.t

val strdup_oom_site : unit -> int
(** Callsite id of the planted Fig. 7 bug. *)

val latent_log_site : unit -> int
(** Callsite id of the planted {e multi-fault} bug: the log-rotation
    writer handles a failed [write] gracefully unless the server is
    already recovering from an earlier fault, in which case it crashes
    inside its recovery path. No single-fault probe can expose it. *)

val multi_space : unit -> Afex_faultspace.Subspace.t
(** Compound 2-arm search space (testId x (function x callNumber)^2,
    call numbers 1-6) for multi-fault exploration. *)

val latent_bug_stack : unit -> string list
(** Crash stack of the latent bug, for recognising rediscovery. *)

val known_bug_stacks : unit -> (string * string list) list
