(** Construction of the canonical 3-axis experiment fault spaces.

    Every experiment in the paper's §7 explores a space spanned by [Xtest]
    (index into the target's test suite), [Xfunc] (libc function, in
    category-grouped order) and [Xcall] (which call to fail). *)

val standard :
  ?min_call:int ->
  ?max_call:int ->
  funcs:string list ->
  Target.t ->
  Afex_faultspace.Subspace.t
(** [standard ~funcs target] builds the subspace
    [testId : \[0, n_tests-1\] x function : funcs x callNumber : \[min_call,
    max_call\]]. [min_call] defaults to 1; a [min_call] of 0 means "no
    injection" (used by the coreutils space so that exhaustive search has a
    baseline row, exactly as in §7's methodology). [max_call] defaults to
    the largest observed per-test call count over [funcs]. *)

val axis_test : int
val axis_func : int
val axis_call : int
(** Positions of the three axes in {!standard} subspaces. *)

val multi :
  ?arms:int ->
  ?min_call:int ->
  ?max_call:int ->
  funcs:string list ->
  Target.t ->
  Afex_faultspace.Subspace.t
(** Compound multi-fault space: [testId] followed by [arms] (default 2)
    groups of [function]/[callNumber] axes, the second and later groups
    suffixed with their index ([function2], [callNumber2], ...). Its
    points decode through {!Afex_injector.Plugin.multifault_of_point}
    into simultaneous injections within one run. *)
