let ls_fig1_functions = Libc.fig1_functions

let ls_config =
  {
    Gen.default_config with
    Gen.name = "ls";
    version = "8.1";
    seed = 1101;
    n_modules = 7;
    n_buggy_modules = 1;
    n_flaky_modules = 3;
    functions = ls_fig1_functions;
    funcs_per_module = (3, 6);
    sites_per_module = (3, 6);
    n_tests = 11;
    test_group_size = 4;
    modules_per_group = 3;
    segments_per_template = (8, 14);
    repeat_per_segment = (1, 2);
    mutation_rate = 0.18;
    baseline_coverage = 0.36;
    mean_test_duration_ms = 12.0;
  }

let utility_config ~name ~seed ~n_tests =
  {
    ls_config with
    Gen.name;
    seed;
    n_tests;
    functions = Libc.standard19;
    n_modules = 6;
    n_buggy_modules = 1;
    n_flaky_modules = 2;
    test_group_size = 3;
  }

(* ln and mv allocate through an xmalloc-style wrapper that aborts cleanly
   when malloc fails; we plant one such site per utility and make sure
   every test calls it at least twice, so that malloc faults at call
   numbers 1 and 2 are meaningful across the whole sub-suite. *)
let with_xmalloc target ~utility =
  let target, xmalloc_site =
    Gen.add_callsite target
      ~module_name:(utility ^ "_xalloc")
      ~func:"malloc"
      ~location:(utility ^ "/xmalloc.c:41")
      ~stack:
        [
          Printf.sprintf "xmalloc (%s/xmalloc.c:41)" utility;
          Printf.sprintf "main (%s/%s.c:102)" utility utility;
        ]
      ~behavior:(Behavior.always Behavior.Test_fails)
      ~recovery_blocks:1
  in
  Array.fold_left
    (fun acc (test : Sim_test.t) ->
      let acc = Gen.splice acc ~test_id:test.Sim_test.id ~pos:1 ~site:xmalloc_site ~repeat:1 in
      Gen.splice acc ~test_id:test.Sim_test.id ~pos:6 ~site:xmalloc_site ~repeat:1)
    target (Target.tests target)

let build_ls () = Gen.generate ls_config

let build_ln () =
  with_xmalloc (Gen.generate (utility_config ~name:"ln" ~seed:1102 ~n_tests:9)) ~utility:"ln"

let build_mv () =
  with_xmalloc (Gen.generate (utility_config ~name:"mv" ~seed:1103 ~n_tests:9)) ~utility:"mv"

let build () =
  Gen.merge ~name:"coreutils" ~version:"8.1" [ build_ls (); build_ln (); build_mv () ]

let target_memo = lazy (build ())
let ls_memo = lazy (build_ls ())

let target () = Lazy.force target_memo
let ls_target () = Lazy.force ls_memo

let space () =
  Spaces.standard ~min_call:0 ~max_call:2 ~funcs:Libc.standard19 (target ())

let ln_mv_test_ids = List.init 18 (fun i -> 11 + i)

let trimmed_functions =
  [ "malloc"; "calloc"; "fopen"; "fclose"; "close"; "read"; "stat"; "chdir"; "getcwd" ]

let env_model =
  let file_ops = [ "fopen"; "fclose"; "close"; "read"; "write"; "fgets"; "fflush"; "stat"; "fcntl" ] in
  let dir_ops = [ "opendir"; "closedir"; "chdir"; "getcwd" ] in
  let per_file = 0.50 /. float_of_int (List.length file_ops) in
  let per_dir = 0.10 /. float_of_int (List.length dir_ops) in
  (("malloc", 0.40) :: List.map (fun f -> (f, per_file)) file_ops)
  @ List.map (fun f -> (f, per_dir)) dir_ops
