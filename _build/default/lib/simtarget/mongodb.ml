let config_v08 =
  {
    Gen.default_config with
    Gen.name = "mongodb";
    version = "0.8";
    seed = 808;
    n_modules = 9;
    n_buggy_modules = 1;
    n_flaky_modules = 2;
    (* Pre-production code mostly dies cleanly (assertions, aborts handled
       by the test harness); the paper found no way to crash v0.8, so its
       fragility is failure-shaped, not crash-shaped. *)
    buggy =
      {
        Gen.handled = 0.12;
        test_fails = 0.80;
        crash = 0.0;
        crash_in_recovery = 0.0;
        hang = 0.08;
      };
    functions = Libc.standard19;
    funcs_per_module = (3, 5);
    sites_per_module = (5, 10);
    errno_override_rate = 0.0;
    n_tests = 64;
    test_group_size = 8;
    modules_per_group = 2;
    segments_per_template = (10, 18);
    repeat_per_segment = (1, 5);
    mutation_rate = 0.15;
    baseline_coverage = 0.42;
    mean_test_duration_ms = 300.0;
  }

(* v2.0: twice the modules, much longer traces and broader environment
   interaction, but fragility diluted: many flaky modules with a milder mix
   and no concentrated buggy cluster apart from one rare crash site. *)
let config_v20 =
  {
    config_v08 with
    Gen.version = "2.0";
    seed = 2000;
    n_modules = 22;
    n_buggy_modules = 0;
    n_flaky_modules = 18;
    flaky =
      {
        Gen.handled = 0.39;
        test_fails = 0.60;
        crash = 0.0;
        crash_in_recovery = 0.0;
        hang = 0.01;
      };
    errno_override_rate = 0.25;
    sites_per_module = (8, 16);
    segments_per_template = (20, 36);
    repeat_per_segment = (1, 6);
    modules_per_group = 6;
    mutation_rate = 0.35;
    baseline_coverage = 0.50;
    mean_test_duration_ms = 450.0;
  }

let plant_v20_crash target =
  (* The single injection scenario that crashes v2.0 but has no analogue in
     v0.8 (§7.6: "AFEX found an injection scenario that crashes v2.0"). *)
  let target, site =
    Gen.add_callsite target ~module_name:"journal" ~func:"write"
      ~location:"dur_journal.cpp:412"
      ~stack:
        [
          "journal_write (dur_journal.cpp:412)";
          "commit_now (dur.cpp:188)";
          "main (db.cpp:33)";
        ]
      ~behavior:
        (Behavior.with_errno Behavior.Test_fails
           [ ("ENOSPC", Behavior.Crash { in_recovery = true }) ])
      ~recovery_blocks:2
  in
  List.fold_left
    (fun acc test_id -> Gen.splice acc ~test_id ~pos:4 ~site ~repeat:2)
    target (List.init 24 (fun i -> 8 + i))

let memo_v08 = lazy (Gen.generate config_v08)
let memo_v20 = lazy (plant_v20_crash (Gen.generate config_v20))

let target_v08 () = Lazy.force memo_v08
let target_v20 () = Lazy.force memo_v20

let space_v08 () =
  Spaces.standard ~min_call:1 ~max_call:20 ~funcs:Libc.standard19 (target_v08 ())

let space_v20 () =
  Spaces.standard ~min_call:1 ~max_call:20 ~funcs:Libc.standard19 (target_v20 ())
