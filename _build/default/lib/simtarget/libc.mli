(** Model of the C standard library interface.

    The paper injects error returns into calls made by the target to
    [libc.so] (§7, "Fault Space Definition Methodology"): LFI's callsite
    analyzer yields, for each function, its possible error return values and
    associated errno codes. This module is that profile, plus the canonical
    axis ordering: functions are grouped by functionality (file, memory,
    network, ...) as §2 suggests, which is what gives the [Xfunc] axis its
    exploitable structure. *)

type category = Memory | File_io | Directory | Process | Network | Locale | Time | String_conv

type error_case = { retval : int; errno : string }

type t = {
  name : string;
  category : category;
  errors : error_case list;  (** valid failure simulations, first = primary *)
}

val category_to_string : category -> string

val find : string -> t option
(** Look up a function by name in the catalog. *)

val find_exn : string -> t
(** @raise Not_found *)

val primary_error : t -> error_case
(** The most representative failure (e.g. malloc -> NULL/ENOMEM). *)

val catalog : t list
(** All modelled functions, in canonical axis order (grouped by
    category). *)

val fig1_functions : string list
(** The 29 functions on the horizontal axis of the paper's Fig. 1 (the
    [ls] fault space plot), in the paper's order. *)

val standard19 : string list
(** The 19-function [Xfunc] axis shared by the MySQL, Apache and coreutils
    fault spaces of §7 (the paper fixes |Xfunc| = 19 for all three). *)

val ordered_names : string list
(** Names of {!catalog} in canonical order. *)

val errnos_of : string -> string list
(** All errno codes the named function can fail with ([[]] if unknown). *)
