(** Model of the coreutils 8.1 evaluation targets (§7.2, §7.5, Fig. 1).

    The suite has 29 tests spread over three utilities — [ls] (11 tests,
    the subject of Fig. 1), [ln] (9) and [mv] (9) — and explores the
    1653-point space [Xtest(29) x Xfunc(19) x Xcall({0,1,2})], where call
    number 0 means "no injection". Every [ln]/[mv] test allocates through
    an [xmalloc]-style wrapper that aborts cleanly on [ENOMEM], which is
    what makes the Table 6 "find every malloc fault that fails ln/mv"
    search target meaningful. *)

val target : unit -> Target.t
(** The merged 29-test suite. Test ids 0-10 are [ls], 11-19 [ln],
    20-28 [mv]. *)

val space : unit -> Afex_faultspace.Subspace.t
(** The 29 x 19 x 3 space of §7.2 (callNumber 0..2, 0 = no injection). *)

val ls_target : unit -> Target.t
(** The standalone [ls] model with the full 29-function Fig. 1 axis. *)

val ls_fig1_functions : string list
(** Horizontal axis of Fig. 1. *)

val ln_mv_test_ids : int list
(** Test ids of the [ln] and [mv] tests within {!target}. *)

val trimmed_functions : string list
(** The 9 libc functions [ln] and [mv] actually call — the §7.5
    "trimmed fault space" domain knowledge. *)

val env_model : (string * float) list
(** §7.5 statistical environment model: [malloc] 40 %, file operations a
    combined 50 %, directory operations a combined 10 %. Keys are function
    names; values are relative fault probabilities. *)
