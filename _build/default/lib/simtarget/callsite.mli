(** A static call site of the target: one location in the source that calls
    a library function, together with the stack context under which it is
    reached, its coverage contribution, and its error-handling behaviour. *)

type t = {
  id : int;
  module_name : string;  (** the source module (subsystem) it belongs to *)
  func : string;  (** the libc function called *)
  location : string;  (** [file.c:line] *)
  stack : string list;
      (** innermost-first frames, excluding the libc frame itself; stable
          across executions reaching this site the same way *)
  blocks : int array;  (** basic blocks covered when the call succeeds *)
  recovery_blocks : int array;
      (** blocks only covered when the call fails and recovery runs *)
  behavior : Behavior.t;
}

val make :
  id:int ->
  module_name:string ->
  func:string ->
  location:string ->
  stack:string list ->
  blocks:int array ->
  recovery_blocks:int array ->
  behavior:Behavior.t ->
  t

val injection_stack : t -> string list
(** The stack trace captured at the injection point: the libc frame pushed
    on the site's own stack. This is what redundancy clustering compares. *)

val crash_stack : t -> errno:string -> string list option
(** The stack of the resulting core dump if injecting [errno] here crashes
    the target, [None] otherwise. Crashes inside recovery code get an extra
    recovery frame, so two distinct bugs never share a stack by accident. *)

val pp : Format.formatter -> t -> unit
