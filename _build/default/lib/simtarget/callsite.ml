type t = {
  id : int;
  module_name : string;
  func : string;
  location : string;
  stack : string list;
  blocks : int array;
  recovery_blocks : int array;
  behavior : Behavior.t;
}

let make ~id ~module_name ~func ~location ~stack ~blocks ~recovery_blocks ~behavior =
  { id; module_name; func; location; stack; blocks; recovery_blocks; behavior }

let injection_stack t = ("libc.so:" ^ t.func) :: t.stack

let crash_stack t ~errno =
  match Behavior.reaction_for t.behavior ~errno with
  | Behavior.Crash { in_recovery } ->
      let base = injection_stack t in
      if in_recovery then Some (("recovery@" ^ t.location) :: base) else Some base
  | Behavior.Crash_if_recovering ->
      (* Crashes only under a compound fault load; the latent crash site is
         the recovery path at this location. *)
      Some (("recovery@" ^ t.location) :: injection_stack t)
  | Behavior.Handled | Behavior.Test_fails | Behavior.Hang -> None

let pp ppf t =
  Format.fprintf ppf "site#%d %s %s@%s [%s]" t.id t.module_name t.func t.location
    (Behavior.reaction_to_string t.behavior.Behavior.default)
