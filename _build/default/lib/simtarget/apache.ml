let config =
  {
    Gen.default_config with
    Gen.name = "httpd";
    version = "2.3.8";
    seed = 238;
    n_modules = 14;
    n_buggy_modules = 2;
    n_flaky_modules = 7;
    functions = Libc.standard19;
    funcs_per_module = (3, 6);
    sites_per_module = (10, 22);
    n_tests = 58;
    test_group_size = 12;
    modules_per_group = 3;
    segments_per_template = (26, 40);
    repeat_per_segment = (2, 6);
    mutation_rate = 0.15;
    errno_override_rate = 0.25;
    blocks_per_site = (3, 6);
    recovery_blocks_per_site = (0, 2);
    baseline_coverage = 0.45;
    mean_test_duration_ms = 250.0;
  }

type planted = { target : Target.t; strdup_oom : int; latent_log : int }

let plant_strdup_oom target =
  let target, site =
    Gen.add_callsite target ~module_name:"config" ~func:"strdup"
      ~location:"config.c:578"
      ~stack:
        [
          "ap_add_module (config.c:578)";
          "ap_setup_prelinked_modules (config.c:712)";
          "main (main.c:448)";
        ]
      ~behavior:(Behavior.always (Behavior.Crash { in_recovery = false }))
      ~recovery_blocks:0
  in
  (* Module registration with the affected path runs only in the dynamic
     module-loading test groups; each such test registers several modules,
     so the first few strdup calls all pass through the buggy site. *)
  let reached = [ 30; 31; 32; 33; 34; 35; 36; 37; 38; 39; 40; 41 ] in
  let target =
    List.fold_left
      (fun acc test_id ->
        let acc = Gen.splice acc ~test_id ~pos:2 ~site ~repeat:2 in
        Gen.splice acc ~test_id ~pos:14 ~site ~repeat:1)
      target reached
  in
  (target, site)

(* A latent multi-fault bug: the error-log writer handles a failed write
   correctly in normal operation, but if the failure strikes while the
   server is already recovering from an earlier fault, the rotation path
   re-enters a half-initialized buffer and crashes. Unreachable by any
   single-fault probe. *)
let plant_latent_log target =
  let target, site =
    Gen.add_callsite target ~module_name:"log" ~func:"write"
      ~location:"log.c:233"
      ~stack:
        [
          "ap_log_rotate (log.c:233)";
          "ap_log_error (log.c:187)";
          "main (main.c:448)";
        ]
      ~behavior:(Behavior.always Behavior.Crash_if_recovering)
      ~recovery_blocks:2
  in
  (* The bug needs an earlier fault to be HANDLED first, so plant it in the
     tests whose early execution passes through the most graceful-recovery
     sites (log rotation runs in the robust request-serving paths, not in
     the crash-prone corners). *)
  let handled_early (test : Sim_test.t) =
    let count = ref 0 in
    Array.iteri
      (fun i site_id ->
        if i < 20 then begin
          let st = Target.callsite target site_id in
          if st.Callsite.behavior.Behavior.default = Behavior.Handled then incr count
        end)
      test.Sim_test.trace;
    !count
  in
  let scores = Array.map handled_early (Target.tests target) in
  (* A contiguous window of tests (the request-serving functional groups),
     chosen for maximal graceful-recovery density, so the bug's cluster has
     the same test-axis locality as everything else in the space. *)
  let n = Array.length scores in
  let width = 12 in
  let window_sum start =
    let sum = ref 0 in
    for i = start to start + width - 1 do
      sum := !sum + scores.(i)
    done;
    !sum
  in
  let best = ref 0 in
  for start = 0 to n - width do
    if window_sum start > window_sum !best then best := start
  done;
  let reached = List.init width (fun i -> !best + i) in
  let target =
    List.fold_left
      (fun acc test_id -> Gen.splice acc ~test_id ~pos:20 ~site ~repeat:3)
      target reached
  in
  (target, site)

let build () =
  let target = Gen.generate config in
  let target, strdup_oom = plant_strdup_oom target in
  let target, latent_log = plant_latent_log target in
  { target; strdup_oom; latent_log }

let memo = lazy (build ())

let target () = (Lazy.force memo).target
let strdup_oom_site () = (Lazy.force memo).strdup_oom
let latent_log_site () = (Lazy.force memo).latent_log

let multi_space () =
  Spaces.multi ~arms:2 ~min_call:1 ~max_call:6 ~funcs:Libc.standard19 (target ())

let latent_bug_stack () =
  let site = Target.callsite (target ()) (latent_log_site ()) in
  ("recovery@" ^ site.Callsite.location) :: Callsite.injection_stack site

let space () =
  Spaces.standard ~min_call:1 ~max_call:10 ~funcs:Libc.standard19 (target ())

let known_bug_stacks () =
  let t = target () in
  match Callsite.crash_stack (Target.callsite t (strdup_oom_site ())) ~errno:"ENOMEM" with
  | Some s -> [ ("strdup OOM NULL deref (Fig. 7)", s) ]
  | None -> []
