(** What a target does when a library call fails at a given callsite.

    This is the ground truth that fault injection probes. The cases mirror
    the outcomes the paper observes: graceful handling, test failure
    (operation aborted), crash — possibly {e inside} recovery code, the
    MySQL double-unlock pattern of Fig. 6 — and hangs. *)

type reaction =
  | Handled
      (** error detected, recovery succeeds, test still passes *)
  | Test_fails
      (** error detected, operation aborted cleanly, the running test
          reports failure *)
  | Crash of { in_recovery : bool }
      (** segmentation fault / abort; [in_recovery = true] means the bug is
          in the error-recovery code itself *)
  | Hang  (** the target stops making progress *)
  | Crash_if_recovering
      (** handled correctly in normal operation, but crashes when the
          failure strikes while the system is already recovering from an
          earlier fault — the classic multi-fault recovery bug, only
          reachable by injecting {e two} faults in one run (§6's
          "inject an EINTR in the third read AND an ENOMEM in the seventh
          malloc" scenario class) *)

type t = {
  default : reaction;
  by_errno : (string * reaction) list;
      (** overrides for specific errno codes (e.g. only [ENOMEM] crashes) *)
}

val always : reaction -> t
val with_errno : reaction -> (string * reaction) list -> t

val reaction_for : t -> errno:string -> reaction

val is_benign : reaction -> bool
(** [Handled] only: [Crash_if_recovering] counts as non-benign because the
    bug is latent even when a single-fault probe passes. *)

val reaction_to_string : reaction -> string
val pp_reaction : Format.formatter -> reaction -> unit
