(** A complete simulated system under test. *)

type t

val make :
  name:string ->
  version:string ->
  callsites:Callsite.t array ->
  tests:Sim_test.t array ->
  total_blocks:int ->
  t
(** [callsites.(i).id] must equal [i]; every trace entry must be a valid
    callsite id; every block id must be in [0, total_blocks).
    @raise Invalid_argument otherwise. *)

val name : t -> string
val version : t -> string
val callsites : t -> Callsite.t array
val tests : t -> Sim_test.t array
val total_blocks : t -> int

val callsite : t -> int -> Callsite.t
val test : t -> int -> Sim_test.t
val n_tests : t -> int

val site_func : t -> int -> string
(** libc function called at the given callsite. *)

val functions_used : t -> string list
(** Distinct libc functions appearing in any trace, in {!Libc.catalog}
    canonical order (unknown functions last, alphabetically). *)

val max_calls : t -> string -> int
(** Largest per-test call count for the named function across the suite. *)

val baseline_coverage : t -> int
(** Number of distinct blocks covered by running the whole suite without
    injection (recovery blocks excluded by construction). *)

val recovery_blocks_total : t -> int
(** Number of distinct blocks only reachable through error recovery. *)

val modules : t -> string list
(** Distinct module names. *)

val pp_summary : Format.formatter -> t -> unit
