let config =
  {
    Gen.default_config with
    Gen.name = "mysql";
    version = "5.1.44";
    seed = 5144;
    n_modules = 26;
    n_buggy_modules = 3;
    n_flaky_modules = 9;
    robust =
      {
        Gen.handled = 0.82;
        test_fails = 0.18;
        crash = 0.0;
        crash_in_recovery = 0.0;
        hang = 0.0;
      };
    functions = Libc.standard19;
    funcs_per_module = (3, 6);
    sites_per_module = (8, 16);
    n_tests = 1147;
    test_group_size = 6;
    modules_per_group = 6;
    segments_per_template = (24, 40);
    repeat_per_segment = (3, 15);
    mutation_rate = 0.30;
    errno_override_rate = 0.25;
    blocks_per_site = (3, 7);
    recovery_blocks_per_site = (0, 2);
    baseline_coverage = 0.54;
    mean_test_duration_ms = 900.0;
  }

type planted = { target : Target.t; double_unlock : int; errmsg : int }

let plant_double_unlock target =
  let target, site =
    Gen.add_callsite target ~module_name:"myisam" ~func:"close"
      ~location:"mi_create.c:831"
      ~stack:
        [
          "mi_create (mi_create.c:831)";
          "create_table_impl (sql_table.cc:4092)";
          "mysql_create_table (sql_table.cc:4258)";
          "main (mysqld.cc:12)";
        ]
      ~behavior:(Behavior.always (Behavior.Crash { in_recovery = true }))
      ~recovery_blocks:2
  in
  (* Reached by the MyISAM table-creation tests only: one functional group
     of six tests plus two stragglers. *)
  (* MyISAM table creation happens in DDL-heavy test blocks throughout the
     suite. *)
  let in_ranges id =
    List.exists
      (fun lo -> id >= lo && id < lo + 12)
      [ 410; 500; 620; 750; 880; 1010 ]
  in
  let reached = List.filter in_ranges (List.init 1147 (fun i -> i)) in
  let target =
    List.fold_left
      (fun acc test_id -> Gen.splice acc ~test_id ~pos:0 ~site ~repeat:2)
      target reached
  in
  (target, site)

let plant_errmsg target =
  let target, site =
    Gen.add_callsite target ~module_name:"errmsg" ~func:"read"
      ~location:"derror.cc:104"
      ~stack:
        [
          "read_texts (derror.cc:104)";
          "init_errmessage (derror.cc:89)";
          "init_common_variables (mysqld.cc:3341)";
          "main (mysqld.cc:12)";
        ]
      ~behavior:(Behavior.always (Behavior.Crash { in_recovery = false }))
      ~recovery_blocks:1
  in
  (* Server-level tests boot mysqld, which reads errmsg.sys during startup,
     making the faulty read the very first read call of those tests; the
     remaining tests reuse a running server. *)
  let in_ranges id = id mod 60 < 30 in
  let reached = List.filter in_ranges (List.init 1147 (fun i -> i)) in
  let target =
    List.fold_left
      (fun acc test_id -> Gen.splice acc ~test_id ~pos:0 ~site ~repeat:1)
      target reached
  in
  (target, site)

let build () =
  let target = Gen.generate config in
  let target, double_unlock = plant_double_unlock target in
  let target, errmsg = plant_errmsg target in
  { target; double_unlock; errmsg }

let memo = lazy (build ())

let target () = (Lazy.force memo).target
let double_unlock_site () = (Lazy.force memo).double_unlock
let errmsg_site () = (Lazy.force memo).errmsg

let space () =
  Spaces.standard ~min_call:1 ~max_call:100 ~funcs:Libc.standard19 (target ())

let known_bug_stacks () =
  let t = target () in
  let stack_of site errno =
    match Callsite.crash_stack (Target.callsite t site) ~errno with
    | Some s -> s
    | None -> []
  in
  [
    ("double-unlock (bug #53268)", stack_of (double_unlock_site ()) "EIO");
    ("errmsg.sys read (bug #25097)", stack_of (errmsg_site ()) "EINTR");
  ]
