(** Static-analysis stand-in (§4): LFI's callsite analyzer flags call
    sites whose error-return handling looks suspicious; AFEX can use those
    findings to seed the initial test generation, learning the space
    structure faster.

    Real analyzers are imperfect, so this one is deliberately lossy: it
    reports each genuinely-fragile callsite only with probability
    [recall], and pollutes the output with benign sites so that the
    configured [precision] holds in expectation. The search must therefore
    still verify — and can still outgrow — the analysis. *)

type finding = {
  site : int;  (** callsite id *)
  func : string;
  location : string;
  reason : string;  (** human-readable justification *)
}

val analyze :
  ?recall:float -> ?precision:float -> ?seed:int -> Target.t -> finding list
(** Defaults: recall 0.7, precision 0.6, seed 0. Fragile = any callsite
    whose default reaction is not benign. Findings are returned in
    callsite order. *)

val reaching_injections :
  Target.t -> finding -> (int * int) list
(** [(test id, call number)] pairs under which the finding's callsite is
    the one that fails — i.e. concrete injection coordinates that exercise
    the flagged site. *)
