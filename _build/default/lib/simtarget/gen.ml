module Rng = Afex_stats.Rng
module Dist = Afex_stats.Dist

type reaction_mix = {
  handled : float;
  test_fails : float;
  crash : float;
  crash_in_recovery : float;
  hang : float;
}

let robust_mix =
  { handled = 0.90; test_fails = 0.10; crash = 0.0; crash_in_recovery = 0.0; hang = 0.0 }

let flaky_mix =
  { handled = 0.38; test_fails = 0.60; crash = 0.0; crash_in_recovery = 0.0; hang = 0.02 }

let buggy_mix =
  { handled = 0.10; test_fails = 0.25; crash = 0.50; crash_in_recovery = 0.12; hang = 0.03 }

type config = {
  name : string;
  version : string;
  seed : int;
  n_modules : int;
  n_buggy_modules : int;
  n_flaky_modules : int;
  robust : reaction_mix;
  flaky : reaction_mix;
  buggy : reaction_mix;
  functions : string list;
  funcs_per_module : int * int;
  sites_per_module : int * int;
  n_tests : int;
  test_group_size : int;
  modules_per_group : int;
  segments_per_template : int * int;
  repeat_per_segment : int * int;
  mutation_rate : float;
  errno_override_rate : float;
  blocks_per_site : int * int;
  recovery_blocks_per_site : int * int;
  baseline_coverage : float;
  mean_test_duration_ms : float;
}

let default_config =
  {
    name = "toy";
    version = "1.0";
    seed = 42;
    n_modules = 6;
    n_buggy_modules = 1;
    n_flaky_modules = 2;
    robust = robust_mix;
    flaky = flaky_mix;
    buggy = buggy_mix;
    functions = Libc.standard19;
    funcs_per_module = (2, 4);
    sites_per_module = (4, 8);
    n_tests = 20;
    test_group_size = 5;
    modules_per_group = 3;
    segments_per_template = (6, 12);
    repeat_per_segment = (1, 4);
    mutation_rate = 0.15;
    errno_override_rate = 0.25;
    blocks_per_site = (2, 5);
    recovery_blocks_per_site = (0, 2);
    baseline_coverage = 0.40;
    mean_test_duration_ms = 50.0;
  }

type module_class = Robust | Flaky | Buggy

type module_info = {
  m_name : string;
  m_class : module_class;
  m_funcs : string array;
  mutable m_sites : int list;  (** callsite ids, filled during generation *)
}

let sample_range rng (lo, hi) = Rng.int_in rng lo hi

let sample_reaction rng mix =
  let weights =
    [| mix.handled; mix.test_fails; mix.crash; mix.crash_in_recovery; mix.hang |]
  in
  match Dist.sample_weighted rng weights with
  | 0 -> Behavior.Handled
  | 1 -> Behavior.Test_fails
  | 2 -> Behavior.Crash { in_recovery = false }
  | 3 -> Behavior.Crash { in_recovery = true }
  | _ -> Behavior.Hang

let mix_of_class cfg = function
  | Robust -> cfg.robust
  | Flaky -> cfg.flaky
  | Buggy -> cfg.buggy

(* A different reaction for an errno-specific override: make handled sites
   occasionally fragile for one errno and fragile sites occasionally clean,
   modelling partially-correct recovery code. *)
let override_reaction rng = function
  | Behavior.Handled -> Behavior.Test_fails
  | Behavior.Test_fails -> if Rng.bool rng then Behavior.Handled else Behavior.Crash { in_recovery = false }
  | Behavior.Crash _ -> Behavior.Test_fails
  | Behavior.Hang -> Behavior.Test_fails
  | Behavior.Crash_if_recovering -> Behavior.Handled

let make_modules cfg rng =
  let classes =
    Array.init cfg.n_modules (fun i ->
        if i < cfg.n_buggy_modules then Buggy
        else if i < cfg.n_buggy_modules + cfg.n_flaky_modules then Flaky
        else Robust)
  in
  Rng.shuffle rng classes;
  let functions = Array.of_list cfg.functions in
  let n_funcs = Array.length functions in
  (* Buggy modules claim their function slices first; other modules avoid
     those functions when they can (one re-draw). Real immature subsystems
     tend to own their odd corner of the library interface, which is what
     gives the Xfunc axis its crash structure (Fig. 1's vertical bands). *)
  let buggy_owned = Hashtbl.create 8 in
  let draw_slice ~wanted ~avoid_buggy =
    let slice = min n_funcs wanted in
    let slice_at start = Array.init slice (fun j -> functions.((start + j) mod n_funcs)) in
    let first = slice_at (Rng.int rng n_funcs) in
    if avoid_buggy && Array.exists (Hashtbl.mem buggy_owned) first then
      slice_at (Rng.int rng n_funcs)
    else first
  in
  let order =
    (* Assign buggy modules first so their slices are registered. *)
    List.stable_sort
      (fun a b ->
        let rank i = if classes.(i) = Buggy then 0 else 1 in
        compare (rank a) (rank b))
      (List.init cfg.n_modules (fun i -> i))
  in
  let modules = Array.make cfg.n_modules None in
  List.iter
    (fun i ->
      let wanted = sample_range rng cfg.funcs_per_module in
      (* Buggy modules tend to be small, immature subsystems touching few
         library functions: narrower slices concentrate their impact into
         long runs along the function and call axes. *)
      let buggy = classes.(i) = Buggy in
      let wanted = if buggy then max 2 (wanted / 2) else wanted in
      let funcs = draw_slice ~wanted ~avoid_buggy:(not buggy) in
      if buggy then Array.iter (fun f -> Hashtbl.replace buggy_owned f ()) funcs;
      modules.(i) <-
        Some
          {
            m_name = Printf.sprintf "%s_mod%02d" cfg.name i;
            m_class = classes.(i);
            m_funcs = funcs;
            m_sites = [];
          })
    order;
  Array.map Option.get modules

let make_callsites cfg rng modules =
  let sites = ref [] and next_id = ref 0 and next_block = ref 0 in
  let fresh_blocks n =
    let a = Array.init n (fun i -> !next_block + i) in
    next_block := !next_block + n;
    a
  in
  Array.iteri
    (fun mi m ->
      let n_sites = sample_range rng cfg.sites_per_module in
      for si = 0 to n_sites - 1 do
        let func = Rng.pick rng m.m_funcs in
        let line = 100 + (si * 37) + Rng.int rng 30 in
        let location = Printf.sprintf "%s.c:%d" m.m_name line in
        let stack =
          [
            Printf.sprintf "%s_op%d (%s)" m.m_name si location;
            Printf.sprintf "%s_dispatch (%s.c:%d)" m.m_name m.m_name (40 + (mi * 3));
            Printf.sprintf "main (%s.c:12)" cfg.name;
          ]
        in
        let default = sample_reaction rng (mix_of_class cfg m.m_class) in
        let by_errno =
          if Rng.bernoulli rng cfg.errno_override_rate then begin
            match Libc.errnos_of func with
            | [] -> []
            | errnos -> [ (Rng.pick_list rng errnos, override_reaction rng default) ]
          end
          else []
        in
        let behavior = Behavior.with_errno default by_errno in
        let has_recovery =
          match default with
          | Behavior.Handled | Behavior.Test_fails | Behavior.Crash_if_recovering ->
              true
          | Behavior.Crash { in_recovery } -> in_recovery
          | Behavior.Hang -> false
        in
        let recovery_count =
          if has_recovery then sample_range rng cfg.recovery_blocks_per_site else 0
        in
        let site =
          Callsite.make ~id:!next_id ~module_name:m.m_name ~func ~location ~stack
            ~blocks:(fresh_blocks (sample_range rng cfg.blocks_per_site))
            ~recovery_blocks:(fresh_blocks recovery_count)
            ~behavior
        in
        m.m_sites <- !next_id :: m.m_sites;
        sites := site :: !sites;
        incr next_id
      done)
    modules;
  (Array.of_list (List.rev !sites), !next_block)

(* A template is a list of (callsite, repeat) segments shared by the tests
   of one group. *)
let make_template cfg rng modules group_index =
  let n_modules = Array.length modules in
  let chosen =
    (* Deterministic-ish rotation plus randomness, so that every module is
       exercised by some group even when groups are few. *)
    List.init cfg.modules_per_group (fun j ->
        if j = 0 then modules.((group_index + j) mod n_modules)
        else modules.(Rng.int rng n_modules))
  in
  let site_pool =
    List.concat_map (fun m -> m.m_sites) chosen |> Array.of_list
  in
  let n_segments = sample_range rng cfg.segments_per_template in
  List.init n_segments (fun _ ->
      (Rng.pick rng site_pool, sample_range rng cfg.repeat_per_segment))

let mutate_template cfg rng modules template =
  let all_sites = Array.concat (List.map (fun m -> Array.of_list m.m_sites) (Array.to_list modules)) in
  let mutated =
    List.filter_map
      (fun (site, repeat) ->
        if not (Rng.bernoulli rng cfg.mutation_rate) then Some (site, repeat)
        else begin
          match Rng.int rng 3 with
          | 0 -> None (* drop segment *)
          | 1 ->
              (* adjust loop length *)
              let lo, hi = cfg.repeat_per_segment in
              Some (site, max lo (min hi (repeat + (if Rng.bool rng then 1 else -1))))
          | _ -> Some (Rng.pick rng all_sites, repeat) (* retarget *)
        end)
      template
  in
  (* Occasionally append a test-specific segment. *)
  if Rng.bernoulli rng 0.5 then
    mutated @ [ (Rng.pick rng all_sites, sample_range rng cfg.repeat_per_segment) ]
  else mutated

let trace_of_template template =
  Array.of_list
    (List.concat_map (fun (site, repeat) -> List.init repeat (fun _ -> site)) template)

let make_tests cfg rng modules =
  Array.init cfg.n_tests (fun id ->
      let group_index = id / cfg.test_group_size in
      let group = Printf.sprintf "%s_grp%02d" cfg.name group_index in
      (* Template derived from a per-group stream so all members share it. *)
      let group_rng = Rng.create ((cfg.seed * 7919) + (group_index * 31) + 1) in
      let template = make_template cfg group_rng modules group_index in
      let personal = mutate_template cfg rng modules template in
      let trace = trace_of_template personal in
      let duration =
        cfg.mean_test_duration_ms *. (0.7 +. Rng.float rng 0.6)
      in
      Sim_test.make ~id
        ~name:(Printf.sprintf "%s_test%03d" cfg.name id)
        ~group ~trace ~duration_ms:duration)

let generate cfg =
  let rng = Rng.create cfg.seed in
  let modules = make_modules cfg rng in
  let callsites, used_blocks = make_callsites cfg rng modules in
  let tests = make_tests cfg rng modules in
  let coverage = Float.max 0.05 (Float.min 1.0 cfg.baseline_coverage) in
  let total_blocks =
    max used_blocks (int_of_float (float_of_int used_blocks /. coverage))
  in
  Target.make ~name:cfg.name ~version:cfg.version ~callsites ~tests ~total_blocks

let add_callsite target ~module_name ~func ~location ~stack ~behavior ~recovery_blocks =
  let callsites = Target.callsites target in
  let id = Array.length callsites in
  let old_total = Target.total_blocks target in
  let normal = Array.init 3 (fun i -> old_total + i) in
  let recovery = Array.init recovery_blocks (fun i -> old_total + 3 + i) in
  let site =
    Callsite.make ~id ~module_name ~func ~location ~stack ~blocks:normal
      ~recovery_blocks:recovery ~behavior
  in
  let target =
    Target.make ~name:(Target.name target) ~version:(Target.version target)
      ~callsites:(Array.append callsites [| site |])
      ~tests:(Target.tests target)
      ~total_blocks:(old_total + 3 + recovery_blocks)
  in
  (target, id)

let splice target ~test_id ~pos ~site ~repeat =
  let tests = Array.copy (Target.tests target) in
  let t = tests.(test_id) in
  let trace = t.Sim_test.trace in
  let pos = max 0 (min (Array.length trace) pos) in
  let insertion = Array.make repeat site in
  let trace' =
    Array.concat
      [ Array.sub trace 0 pos; insertion; Array.sub trace pos (Array.length trace - pos) ]
  in
  tests.(test_id) <-
    Sim_test.make ~id:t.Sim_test.id ~name:t.Sim_test.name ~group:t.Sim_test.group
      ~trace:trace' ~duration_ms:t.Sim_test.duration_ms;
  Target.make ~name:(Target.name target) ~version:(Target.version target)
    ~callsites:(Target.callsites target) ~tests ~total_blocks:(Target.total_blocks target)

let shift_callsite offset_sites offset_blocks (site : Callsite.t) =
  Callsite.make
    ~id:(site.Callsite.id + offset_sites)
    ~module_name:site.Callsite.module_name ~func:site.Callsite.func
    ~location:site.Callsite.location ~stack:site.Callsite.stack
    ~blocks:(Array.map (fun b -> b + offset_blocks) site.Callsite.blocks)
    ~recovery_blocks:(Array.map (fun b -> b + offset_blocks) site.Callsite.recovery_blocks)
    ~behavior:site.Callsite.behavior

let merge ~name ~version targets =
  if targets = [] then invalid_arg "Gen.merge: no targets";
  let callsites = ref [] and tests = ref [] in
  let site_offset = ref 0 and block_offset = ref 0 and test_offset = ref 0 in
  List.iter
    (fun target ->
      Array.iter
        (fun site -> callsites := shift_callsite !site_offset !block_offset site :: !callsites)
        (Target.callsites target);
      Array.iter
        (fun (t : Sim_test.t) ->
          let trace = Array.map (fun s -> s + !site_offset) t.Sim_test.trace in
          tests :=
            Sim_test.make ~id:(t.Sim_test.id + !test_offset) ~name:t.Sim_test.name
              ~group:t.Sim_test.group ~trace ~duration_ms:t.Sim_test.duration_ms
            :: !tests)
        (Target.tests target);
      site_offset := !site_offset + Array.length (Target.callsites target);
      block_offset := !block_offset + Target.total_blocks target;
      test_offset := !test_offset + Array.length (Target.tests target))
    targets;
  Target.make ~name ~version
    ~callsites:(Array.of_list (List.rev !callsites))
    ~tests:(Array.of_list (List.rev !tests))
    ~total_blocks:!block_offset

let remap_behavior target f =
  let callsites =
    Array.map
      (fun (site : Callsite.t) ->
        match f site with
        | None -> site
        | Some behavior ->
            Callsite.make ~id:site.Callsite.id ~module_name:site.Callsite.module_name
              ~func:site.Callsite.func ~location:site.Callsite.location
              ~stack:site.Callsite.stack ~blocks:site.Callsite.blocks
              ~recovery_blocks:site.Callsite.recovery_blocks ~behavior)
      (Target.callsites target)
  in
  Target.make ~name:(Target.name target) ~version:(Target.version target) ~callsites
    ~tests:(Target.tests target) ~total_blocks:(Target.total_blocks target)
