lib/simtarget/mongodb.mli: Afex_faultspace Target
