lib/simtarget/target.ml: Array Callsite Format Hashtbl Int Libc List Printf Set Sim_test String
