lib/simtarget/libc.mli:
