lib/simtarget/sim_test.ml: Array Format String
