lib/simtarget/spaces.mli: Afex_faultspace Target
