lib/simtarget/callsite.ml: Behavior Format
