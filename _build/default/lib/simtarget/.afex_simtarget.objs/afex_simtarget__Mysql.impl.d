lib/simtarget/mysql.ml: Behavior Callsite Gen Lazy Libc List Spaces Target
