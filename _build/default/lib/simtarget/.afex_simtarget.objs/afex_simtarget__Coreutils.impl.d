lib/simtarget/coreutils.ml: Array Behavior Gen Lazy Libc List Printf Sim_test Spaces Target
