lib/simtarget/coreutils.mli: Afex_faultspace Target
