lib/simtarget/target.mli: Callsite Format Sim_test
