lib/simtarget/mysql.mli: Afex_faultspace Target
