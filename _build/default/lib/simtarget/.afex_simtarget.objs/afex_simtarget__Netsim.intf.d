lib/simtarget/netsim.mli:
