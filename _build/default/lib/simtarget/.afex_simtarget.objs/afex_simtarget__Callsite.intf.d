lib/simtarget/callsite.mli: Behavior Format
