lib/simtarget/tracer.mli: Afex_faultspace Target
