lib/simtarget/gen.mli: Behavior Callsite Target
