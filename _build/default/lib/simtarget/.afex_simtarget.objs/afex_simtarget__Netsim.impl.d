lib/simtarget/netsim.ml: Afex_stats Array Float Printf
