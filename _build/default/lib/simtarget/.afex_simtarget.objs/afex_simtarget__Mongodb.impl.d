lib/simtarget/mongodb.ml: Behavior Gen Lazy Libc List Spaces
