lib/simtarget/spaces.ml: Afex_faultspace List Target
