lib/simtarget/behavior.mli: Format
