lib/simtarget/gen.ml: Afex_stats Array Behavior Callsite Float Hashtbl Libc List Option Printf Sim_test Target
