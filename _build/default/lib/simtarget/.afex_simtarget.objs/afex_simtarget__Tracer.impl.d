lib/simtarget/tracer.ml: Afex_faultspace Libc List Target
