lib/simtarget/sim_test.mli: Format
