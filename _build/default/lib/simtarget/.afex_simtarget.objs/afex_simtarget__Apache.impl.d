lib/simtarget/apache.ml: Array Behavior Callsite Gen Lazy Libc List Sim_test Spaces Target
