lib/simtarget/libc.ml: Hashtbl List
