lib/simtarget/apache.mli: Afex_faultspace Target
