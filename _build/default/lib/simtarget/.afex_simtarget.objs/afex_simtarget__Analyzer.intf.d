lib/simtarget/analyzer.mli: Target
