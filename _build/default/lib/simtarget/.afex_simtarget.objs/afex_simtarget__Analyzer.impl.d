lib/simtarget/analyzer.ml: Afex_stats Array Behavior Callsite Float List Sim_test String Target
