lib/simtarget/behavior.ml: Format List
