(** Synthetic target generator.

    The generator manufactures program models whose fault-impact surface has
    the same *kind* of structure the paper observes in real systems (§2,
    Fig. 1): impact clusters induced by code modularity. Three mechanisms
    plant structure along the three axes used throughout the evaluation:

    - {b Xtest}: tests come in functional groups sharing a trace template,
      so neighbouring tests reach the same callsites;
    - {b Xfunc}: each module draws its library calls from a contiguous slice
      of the category-ordered function list, so neighbouring functions are
      handled by the same (possibly buggy) module code;
    - {b Xcall}: traces contain loop segments (a callsite repeated), so
      neighbouring call numbers land on the same callsite.

    Error-handling quality is assigned per module: most modules are robust,
    a few are flaky (clean test failures) and a few are buggy (crashes,
    sometimes inside their own recovery code). *)

type reaction_mix = {
  handled : float;
  test_fails : float;
  crash : float;
  crash_in_recovery : float;
  hang : float;
}
(** Sampling weights for a callsite's default reaction. *)

val robust_mix : reaction_mix
val flaky_mix : reaction_mix
val buggy_mix : reaction_mix

type config = {
  name : string;
  version : string;
  seed : int;
  n_modules : int;
  n_buggy_modules : int;
  n_flaky_modules : int;
  robust : reaction_mix;
  flaky : reaction_mix;
  buggy : reaction_mix;
  functions : string list;  (** pool, in canonical (category-grouped) order *)
  funcs_per_module : int * int;  (** contiguous slice size, min/max *)
  sites_per_module : int * int;
  n_tests : int;
  test_group_size : int;
  modules_per_group : int;
  segments_per_template : int * int;
  repeat_per_segment : int * int;  (** loop lengths *)
  mutation_rate : float;  (** per-segment template perturbation per test *)
  errno_override_rate : float;
      (** chance a callsite reacts differently to one specific errno *)
  blocks_per_site : int * int;
  recovery_blocks_per_site : int * int;
  baseline_coverage : float;
      (** target fraction of total blocks covered by the clean suite *)
  mean_test_duration_ms : float;
}

val default_config : config
(** A small, fully-robust starting point; override fields as needed. *)

val generate : config -> Target.t

(** Post-generation surgery, used to plant the paper's named bugs
    (MySQL double-unlock, MySQL errmsg read, Apache strdup OOM). *)

val add_callsite :
  Target.t ->
  module_name:string ->
  func:string ->
  location:string ->
  stack:string list ->
  behavior:Behavior.t ->
  recovery_blocks:int ->
  Target.t * int
(** Appends a callsite (fresh blocks are appended to the block range) and
    returns the new target and the site's id. *)

val splice :
  Target.t -> test_id:int -> pos:int -> site:int -> repeat:int -> Target.t
(** Inserts [repeat] visits to [site] into a test's trace at position
    [pos] (clamped to the trace length). *)

val merge : name:string -> version:string -> Target.t list -> Target.t
(** Concatenates several targets into one suite: callsite ids, block ids and
    test ids are re-based; test order follows the argument order. Used to
    assemble the 29-test coreutils suite from the per-utility models. *)

val remap_behavior :
  Target.t -> (Callsite.t -> Behavior.t option) -> Target.t
(** Rewrites the behaviour of every callsite for which the function returns
    [Some]; used to plant targeted reactions (e.g. make [malloc] failures in
    [ln]/[mv] abort cleanly, as glibc-style [xmalloc] wrappers do). *)
