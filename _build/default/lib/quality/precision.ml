module Summary = Afex_stats.Summary

type t = { trials : int; mean_impact : float; variance : float; precision : float }

let measure ~trials run =
  if trials < 1 then invalid_arg "Precision.measure: trials < 1";
  let samples = List.init trials (fun _ -> run ()) in
  let summary = Summary.of_list samples in
  let variance = Summary.variance summary in
  {
    trials;
    mean_impact = Summary.mean summary;
    variance;
    precision = (if variance = 0.0 then infinity else 1.0 /. variance);
  }

let deterministic t = t.variance = 0.0

let pp ppf t =
  Format.fprintf ppf "impact %.2f over %d trials, precision %s" t.mean_impact t.trials
    (if t.precision = infinity then "inf" else Printf.sprintf "%.3f" t.precision)
