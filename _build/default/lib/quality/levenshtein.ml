let generic_distance ~len_a ~len_b ~equal =
  if len_a = 0 then len_b
  else if len_b = 0 then len_a
  else begin
    (* Two-row dynamic programming. *)
    let prev = Array.init (len_b + 1) (fun j -> j) in
    let cur = Array.make (len_b + 1) 0 in
    for i = 1 to len_a do
      cur.(0) <- i;
      for j = 1 to len_b do
        let cost = if equal (i - 1) (j - 1) then 0 else 1 in
        cur.(j) <- min (min (cur.(j - 1) + 1) (prev.(j) + 1)) (prev.(j - 1) + cost)
      done;
      Array.blit cur 0 prev 0 (len_b + 1)
    done;
    prev.(len_b)
  end

let distance a b =
  generic_distance ~len_a:(Array.length a) ~len_b:(Array.length b)
    ~equal:(fun i j -> String.equal a.(i) b.(j))

let distance_strings a b =
  generic_distance ~len_a:(String.length a) ~len_b:(String.length b)
    ~equal:(fun i j -> Char.equal a.[i] b.[j])

let similarity a b =
  let longest = max (Array.length a) (Array.length b) in
  if longest = 0 then 1.0
  else 1.0 -. (float_of_int (distance a b) /. float_of_int longest)

let distance_traces a b = distance (Array.of_list a) (Array.of_list b)
let similarity_traces a b = similarity (Array.of_list a) (Array.of_list b)
