(** Redundancy clusters (§5): equivalence classes of faults whose injection
    stack traces are close in edit distance. Two faults below the distance
    threshold land in the same cluster (single linkage, i.e. transitive
    closure over the "close" relation, matching the paper's "any two faults
    for which the distance is below a threshold end up in the same
    cluster"). *)

type 'a cluster = {
  representative : 'a;  (** first member encountered *)
  members : 'a list;  (** insertion order, representative included *)
}

val cluster :
  ?threshold:float ->
  trace:('a -> string list) ->
  'a list ->
  'a cluster list
(** [threshold] is a {e normalized} distance in [0,1] (fraction of the
    longer trace that may differ); default 0.34. Items with equal traces
    always share a cluster. Clusters are returned largest first. *)

val cluster_count : ?threshold:float -> trace:('a -> string list) -> 'a list -> int

val distinct_traces : string list list -> int
(** Number of exactly-distinct traces (the "unique failures" metric of
    Table 5). *)
