(** Statistical fault-relevance models (§5, "Practical Relevance").

    From published failure studies or knowledge of the deployment
    environment, the developer assigns each fault class a probability of
    occurring in practice; AFEX weighs measured impact by that probability
    so the search prefers faults that both hurt and actually happen. *)

type t

val uniform : t
(** Every fault class weighs 1. *)

val of_weights : ?default:float -> (string * float) list -> t
(** [of_weights classes] assigns relative weights keyed by fault class
    (here: libc function name). [default] (0 if omitted) applies to
    unlisted classes — a 0 default says "faults outside the model never
    happen here".
    @raise Invalid_argument on negative weights. *)

val weight : t -> string -> float

val normalized : t -> (string * float) list
(** Listed classes with weights rescaled to sum to 1 (empty stays empty). *)

val scale_impact : t -> func:string -> float -> float
(** [scale_impact t ~func impact] weighs a measured impact (§7.5 uses this
    to steer the coreutils search toward malloc faults). *)
