(** Levenshtein edit distance (§5 cites Levenshtein 1966), used to compare
    the stack traces captured at injection points. *)

val distance : string array -> string array -> int
(** Token-level distance: insertions, deletions and substitutions of whole
    stack frames. *)

val distance_strings : string -> string -> int
(** Character-level distance. *)

val similarity : string array -> string array -> float
(** [1 - distance / max length], in [0, 1]; 1 for two empty traces. *)

val distance_traces : string list -> string list -> int
val similarity_traces : string list -> string list -> float
