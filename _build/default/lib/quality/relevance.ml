type t = { weights : (string, float) Hashtbl.t; default : float }

let uniform = { weights = Hashtbl.create 1; default = 1.0 }

let of_weights ?(default = 0.0) classes =
  let weights = Hashtbl.create (List.length classes) in
  List.iter
    (fun (name, w) ->
      if w < 0.0 then invalid_arg "Relevance.of_weights: negative weight";
      Hashtbl.replace weights name w)
    classes;
  if default < 0.0 then invalid_arg "Relevance.of_weights: negative default";
  { weights; default }

let weight t name =
  match Hashtbl.find_opt t.weights name with Some w -> w | None -> t.default

let normalized t =
  let entries = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.weights [] in
  let total = List.fold_left (fun acc (_, v) -> acc +. v) 0.0 entries in
  if total <= 0.0 then []
  else
    List.sort compare (List.map (fun (k, v) -> (k, v /. total)) entries)

let scale_impact t ~func impact = impact *. weight t func
