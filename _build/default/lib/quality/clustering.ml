type 'a cluster = { representative : 'a; members : 'a list }

(* Union-find with path compression. *)
let find parent i =
  let rec root i = if parent.(i) = i then i else root parent.(i) in
  let r = root i in
  let rec compress i =
    if parent.(i) <> r then begin
      let next = parent.(i) in
      parent.(i) <- r;
      compress next
    end
  in
  compress i;
  r

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(max ra rb) <- min ra rb

let cluster ?(threshold = 0.34) ~trace items =
  let items = Array.of_list items in
  let n = Array.length items in
  let traces = Array.map (fun it -> Array.of_list (trace it)) items in
  let parent = Array.init n (fun i -> i) in
  (* Deduplicate exact traces first so the quadratic pass runs over
     distinct traces only. *)
  let seen = Hashtbl.create 64 in
  let distinct = ref [] in
  Array.iteri
    (fun i tr ->
      let k = String.concat "\x00" (Array.to_list tr) in
      match Hashtbl.find_opt seen k with
      | Some j -> union parent i j
      | None ->
          Hashtbl.add seen k i;
          distinct := i :: !distinct)
    traces;
  let distinct = Array.of_list (List.rev !distinct) in
  let m = Array.length distinct in
  for a = 0 to m - 1 do
    for b = a + 1 to m - 1 do
      let i = distinct.(a) and j = distinct.(b) in
      let ti = traces.(i) and tj = traces.(j) in
      let longest = max (Array.length ti) (Array.length tj) in
      let close =
        if longest = 0 then true
        else begin
          let d = Levenshtein.distance ti tj in
          float_of_int d /. float_of_int longest <= threshold
        end
      in
      if close then union parent i j
    done
  done;
  let groups = Hashtbl.create 16 in
  for i = n - 1 downto 0 do
    let r = find parent i in
    let existing = Option.value (Hashtbl.find_opt groups r) ~default:[] in
    Hashtbl.replace groups r (items.(i) :: existing)
  done;
  let clusters =
    Hashtbl.fold
      (fun _ members acc ->
        match members with
        | [] -> acc
        | representative :: _ -> { representative; members } :: acc)
      groups []
  in
  List.sort
    (fun a b -> compare (List.length b.members) (List.length a.members))
    clusters

let cluster_count ?threshold ~trace items =
  List.length (cluster ?threshold ~trace items)

let distinct_traces traces =
  let seen = Hashtbl.create 64 in
  List.iter (fun tr -> Hashtbl.replace seen (String.concat "\x00" tr) ()) traces;
  Hashtbl.length seen
