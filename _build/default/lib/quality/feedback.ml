type t = {
  exact : (string, unit) Hashtbl.t;
  mutable traces : string array list;  (** distinct traces, tokenized *)
}

let create () = { exact = Hashtbl.create 64; traces = [] }

let key trace = String.concat "\x00" trace

let seen t = Hashtbl.length t.exact

let weight t trace =
  if Hashtbl.mem t.exact (key trace) then 0.0
  else begin
    let candidate = Array.of_list trace in
    let best =
      List.fold_left
        (fun acc known -> Float.max acc (Levenshtein.similarity candidate known))
        0.0 t.traces
    in
    1.0 -. best
  end

let register t trace =
  let k = key trace in
  if not (Hashtbl.mem t.exact k) then begin
    Hashtbl.add t.exact k ();
    t.traces <- Array.of_list trace :: t.traces
  end

let weigh_fitness t ~trace fitness =
  match trace with
  | None -> fitness
  | Some trace ->
      let w = weight t trace in
      register t trace;
      fitness *. w
