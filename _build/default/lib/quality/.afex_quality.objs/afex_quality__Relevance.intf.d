lib/quality/relevance.mli:
