lib/quality/feedback.ml: Array Float Hashtbl Levenshtein List String
