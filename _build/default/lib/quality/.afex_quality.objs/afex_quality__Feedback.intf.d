lib/quality/feedback.mli:
