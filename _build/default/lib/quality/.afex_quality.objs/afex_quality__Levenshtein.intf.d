lib/quality/levenshtein.mli:
