lib/quality/precision.mli: Format
