lib/quality/levenshtein.ml: Array Char String
