lib/quality/clustering.ml: Array Hashtbl Levenshtein List Option String
