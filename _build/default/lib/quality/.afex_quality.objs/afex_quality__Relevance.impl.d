lib/quality/relevance.ml: Hashtbl List
