lib/quality/precision.ml: Afex_stats Format List Printf
