lib/quality/clustering.mli:
