(** Impact precision (§5): how consistently a fault reproduces its impact.

    AFEX re-runs a test n times and reports 1/Var of the measured impact.
    High precision means the failure scenario is deterministic and thus
    easy to debug; AFEX attaches it to every fault in the result set. *)

type t = {
  trials : int;
  mean_impact : float;
  variance : float;
  precision : float;  (** 1/variance; [infinity] for perfectly stable *)
}

val measure : trials:int -> (unit -> float) -> t
(** Runs the impact measurement [trials] times.
    @raise Invalid_argument if [trials < 1]. *)

val deterministic : t -> bool
(** True when the variance is zero. *)

val pp : Format.formatter -> t -> unit
