bench/main.ml: Array Experiments List Micro Printf Sys
