bench/main.mli:
