bench/experiments.ml: Afex Afex_cluster Afex_faultspace Afex_injector Afex_quality Afex_report Afex_simtarget Afex_stats Array List Printf String
