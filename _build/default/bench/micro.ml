(* Microbenchmarks (Bechamel): the §7.7 explorer-throughput claim and the
   latency of the hot paths (injection engine, Levenshtein, DSL parsing). *)

open Bechamel
open Toolkit

module Apache = Afex_simtarget.Apache
module Engine = Afex_injector.Engine
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Bitset = Afex_stats.Bitset
module Rng = Afex_stats.Rng

let explorer_generation_test () =
  (* Candidate generation + bookkeeping with a zero-cost executor: measures
     how many tests/second the explorer itself can produce (paper: ~8,500/s
     on a 2 GHz Xeon). *)
  let sub = Apache.space () in
  let empty = Bitset.create 1 in
  let executor =
    Afex.Executor.of_fn ~total_blocks:1 ~description:"null" (fun fault ->
        {
          Outcome.fault;
          status = Outcome.Passed;
          triggered = false;
          coverage = empty;
          injection_stack = None;
          crash_stack = None;
          duration_ms = 0.0;
        })
  in
  let explorer = Afex.Explorer.create (Afex.Config.fitness_guided ~seed:1 ()) sub executor in
  Test.make ~name:"explorer generate+report"
    (Staged.stage (fun () ->
         match Afex.Explorer.next explorer with
         | None -> ()
         | Some proposal -> ignore (Afex.Explorer.execute explorer proposal)))

let engine_run_test () =
  let target = Apache.target () in
  let rng = Rng.create 7 in
  Test.make ~name:"injection engine run"
    (Staged.stage (fun () ->
         let fault =
           Fault.make
             ~test_id:(Rng.int rng (Afex_simtarget.Target.n_tests target))
             ~func:"read" ~call_number:(1 + Rng.int rng 10) ()
         in
         ignore (Engine.run target fault)))

let levenshtein_test () =
  let a = [ "libc.so:read"; "read_texts (derror.cc:104)"; "init (x.c:3)"; "main" ] in
  let b = [ "libc.so:close"; "mi_create (mi_create.c:831)"; "init (x.c:3)"; "main" ] in
  Test.make ~name:"levenshtein stack distance"
    (Staged.stage (fun () -> ignore (Afex_quality.Levenshtein.distance_traces a b)))

let parse_test () =
  let description =
    "function : { malloc, calloc, realloc } errno : { ENOMEM } retval : { 0 } \
     callNumber : [ 1, 100 ] ; function : { read } errno : { EINTR } retVal : { -1 } \
     callNumber : [ 1, 50 ] ;"
  in
  Test.make ~name:"fsdl parse"
    (Staged.stage (fun () ->
         ignore (Afex_faultspace.Fsdl_parser.parse_exn description)))

let tests () =
  Test.make_grouped ~name:"afex" ~fmt:"%s %s"
    [ explorer_generation_test (); engine_run_test (); levenshtein_test (); parse_test () ]

let benchmark () =
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw_results = Benchmark.all cfg instances (tests ()) in
  let results =
    List.map (fun instance -> Analyze.all ols instance raw_results) instances
  in
  Analyze.merge ols instances results

let img (window, results) =
  Bechamel_notty.Multiple.image_of_ols_results ~rect:window
    ~predictor:Measure.run results

let run () =
  Printf.printf
    "\n================================================================\n\
     Microbenchmarks (\u{00A7}7.7: explorer throughput, hot paths)\n\
     ================================================================\n\n%!";
  List.iter
    (fun v -> Bechamel_notty.Unit.add v (Measure.unit v))
    Instance.[ minor_allocated; major_allocated; monotonic_clock ];
  let window =
    match Notty_unix.winsize Unix.stdout with
    | Some (w, h) -> { Bechamel_notty.w; h }
    | None -> { Bechamel_notty.w = 80; h = 1 }
  in
  let results = benchmark () in
  Notty_unix.output_image (Notty_unix.eol (img (window, results)));
  Printf.printf
    "\n(\"explorer generate+report\" inverted gives candidates/second;\n\
     the paper reports ~8,500/s for its Java prototype.)\n"
