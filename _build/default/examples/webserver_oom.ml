(* Hunting out-of-memory handling bugs in a web server — the paper's §7.1
   Apache scenario. The Fig. 7 bug: module registration strdup()s a symbol
   name without checking for NULL, so an OOM during startup crashes the
   server before any error is logged.

   This example also demonstrates two result-quality features of §5:
   the online redundancy-feedback loop (more *unique* failures for the
   same budget) and impact precision (is a crash deterministic enough to
   debug?).

   Run with: dune exec examples/webserver_oom.exe *)

module Apache = Afex_simtarget.Apache
module Engine = Afex_injector.Engine
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Sensor = Afex_injector.Sensor
module Precision = Afex_quality.Precision
module Session = Afex.Session
module Test_case = Afex.Test_case

let () =
  let target = Apache.target () in
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target target in

  (* Focus the impact metric on memory faults: this is domain knowledge —
     an overloaded server is most likely to hit ENOMEM. *)
  let oom_relevance =
    Afex_quality.Relevance.of_weights ~default:0.1
      [ ("malloc", 1.0); ("calloc", 1.0); ("realloc", 1.0); ("strdup", 1.0) ]
  in
  let config =
    {
      (Afex.Config.fitness_guided ~seed:77 ()) with
      Afex.Config.feedback = true;
      relevance = Some oom_relevance;
    }
  in
  let result = Session.run ~iterations:1500 config sub executor in
  Format.printf
    "explored %d scenarios with redundancy feedback: %d failed, %d crashes,@.%d \
     unique failure stacks, %d unique crash stacks@.@."
    result.Session.iterations result.Session.failed result.Session.crashed
    result.Session.distinct_failure_traces result.Session.distinct_crash_traces;

  (* Did we hit the Fig. 7 strdup bug? *)
  let bug_hits =
    match Apache.known_bug_stacks () with
    | [ (_, stack) ] ->
        List.filter
          (fun (c : Test_case.t) -> c.Test_case.crash_stack = Some stack)
          result.Session.executed
    | _ -> []
  in
  (match bug_hits with
  | [] -> Format.printf "Fig. 7 strdup/OOM bug: not reached in this budget@."
  | (hit : Test_case.t) :: _ ->
      Format.printf "Fig. 7 strdup/OOM bug: FOUND — %s@."
        (Fault.to_string hit.Test_case.fault);
      (* Impact precision (§5): re-run the scenario several times under a
         deliberately flaky environment and report 1/variance. High
         precision means the crash reproduces deterministically. *)
      let sensor = Sensor.standard () in
      let nondet = { Engine.rng = Afex_stats.Rng.create 5; dodge_probability = 0.2 } in
      let measure_once () =
        let outcome = Engine.run ~nondet target hit.Test_case.fault in
        sensor.Sensor.score { Sensor.outcome; new_blocks = 0 }
      in
      let noisy = Precision.measure ~trials:10 measure_once in
      let deterministic () =
        let outcome = Engine.run target hit.Test_case.fault in
        sensor.Sensor.score { Sensor.outcome; new_blocks = 0 }
      in
      let stable = Precision.measure ~trials:10 deterministic in
      Format.printf "  impact precision, flaky environment : %a@." Precision.pp noisy;
      Format.printf "  impact precision, pinned environment: %a@." Precision.pp stable;
      Format.printf "  -> debug the pinned scenario first (infinite precision = fully reproducible)@.");

  Format.printf "@.crash clusters (one representative each):@.";
  List.iteri
    (fun i (c : Test_case.t) ->
      Format.printf "  %d. %s@." (i + 1) (Fault.to_string c.Test_case.fault))
    (Session.crash_cluster_representatives result)
