(* Testing database recovery code, the paper's §7.1 MySQL scenario: the
   explorer hunts for injection scenarios that crash the DBMS, clusters
   the crashes by stack trace, and surfaces the two real MySQL bugs
   planted in the model — a double unlock inside MyISAM recovery code
   (bug #53268, Fig. 6) and a crash after a failed errmsg.sys read
   (bug #25097).

   Run with: dune exec examples/database_recovery.exe *)

module Mysql = Afex_simtarget.Mysql
module Fault = Afex_injector.Fault
module Session = Afex.Session
module Test_case = Afex.Test_case

let () =
  let target = Mysql.target () in
  let sub = Mysql.space () in
  Format.printf "target: %a@." Afex_simtarget.Target.pp_summary target;
  Format.printf "fault space: %d faults — exhaustive search would need years@.@."
    (Afex_faultspace.Subspace.cardinality sub);

  let executor = Afex.Executor.of_target target in
  let result =
    Session.run ~iterations:6000 (Afex.Config.fitness_guided ~seed:2024 ()) sub executor
  in
  Format.printf "explored %d scenarios: %d failed tests, %d crashes@.@."
    result.Session.iterations result.Session.failed result.Session.crashed;

  (* Crash-cluster the result set: one representative per distinct stack
     neighbourhood, so a developer reviews a handful of bugs instead of
     hundreds of manifestations. *)
  let representatives = Session.crash_cluster_representatives result in
  Format.printf "%d crash clusters found:@." (List.length representatives);
  List.iteri
    (fun i (case : Test_case.t) ->
      Format.printf "  cluster %d: %s@." (i + 1) (Fault.to_string case.Test_case.fault);
      match case.Test_case.crash_stack with
      | Some (top :: _) -> Format.printf "    top frame: %s@." top
      | Some [] | None -> ())
    representatives;

  (* Check the known bugs against the crash stacks the search produced. *)
  Format.printf "@.known-bug audit:@.";
  List.iter
    (fun (name, stack) ->
      let manifestations =
        List.length
          (List.filter
             (fun (c : Test_case.t) -> c.Test_case.crash_stack = Some stack)
             result.Session.executed)
      in
      Format.printf "  %-32s %s (%d manifestations)@." name
        (if manifestations > 0 then "REDISCOVERED" else "missed")
        manifestations)
    (Mysql.known_bug_stacks ());

  (* Turn the cluster representatives into a regression suite. *)
  Format.printf "@.--- generated regression suite (cluster representatives) ---@.";
  print_string (Afex_report.Replay.suite ~target:"mysql" representatives)
