(* Multi-fault exploration: finding a bug that no single-fault campaign
   can expose. The planted Apache bug crashes the log-rotation writer only
   when a write fails *while the server is already recovering* from an
   earlier fault — the classic fault-during-recovery pattern that
   motivates the paper's multi-fault scenarios (§6).

   Run with: dune exec examples/multifault_hunt.exe *)

module Apache = Afex_simtarget.Apache
module Target = Afex_simtarget.Target
module Fault = Afex_injector.Fault
module Engine = Afex_injector.Engine
module Multifault = Afex_injector.Multifault
module Session = Afex.Session
module Test_case = Afex.Test_case

let () =
  let target = Apache.target () in
  let latent = Apache.latent_bug_stack () in

  (* Phase 1: a single-fault campaign cannot see the bug, even
     exhaustively failing every write call of every test. *)
  let single_hits = ref 0 and probes = ref 0 in
  for test_id = 0 to Target.n_tests target - 1 do
    for call_number = 1 to 10 do
      incr probes;
      let o = Engine.run target (Fault.make ~test_id ~func:"write" ~call_number ()) in
      if o.Afex_injector.Outcome.crash_stack = Some latent then incr single_hits
    done
  done;
  Format.printf "single-fault sweep: %d write-failure probes, %d latent-bug crashes@."
    !probes !single_hits;

  (* Phase 2: explore 2-fault scenarios. Redundancy feedback matters here:
     without it the search farms the dense single-fault crash clusters and
     never pays for the rare compound bug. *)
  let sub = Apache.multi_space () in
  Format.printf "compound space: %d scenarios@.@."
    (Afex_faultspace.Subspace.cardinality sub);
  let executor = Afex.Executor.of_target_multi target in
  let config =
    { (Afex.Config.fitness_guided ~seed:99 ()) with Afex.Config.feedback = true }
  in
  let r = Session.run ~iterations:2500 config sub executor in
  Format.printf "%d scenarios executed: %d failed, %d crashes@." r.Session.iterations
    r.Session.failed r.Session.crashed;
  let latent_hits =
    List.filter
      (fun (c : Test_case.t) -> c.Test_case.crash_stack = Some latent)
      r.Session.executed
  in
  (match latent_hits with
  | [] -> Format.printf "latent bug not reached in this budget — raise iterations@."
  | (hit : Test_case.t) :: _ ->
      Format.printf "@.latent recovery bug FOUND (%d manifestations), e.g.:@."
        (List.length latent_hits);
      Format.printf "  terminal fault : %s@." (Fault.to_string hit.Test_case.fault);
      (match hit.Test_case.crash_stack with
      | Some stack -> List.iter (Format.printf "    %s@.") stack
      | None -> ());
      (* Reconstruct the full compound scenario from its point. *)
      (match
         Afex_injector.Plugin.multifault_of_point sub hit.Test_case.point
       with
      | Ok mf -> Format.printf "  full scenario  : %a@." Multifault.pp mf
      | Error _ -> ()));
  Format.printf
    "@.Conclusion: two cheap faults in the right order beat %d single-fault probes.@."
    !probes
