(* Leveraging system-specific knowledge (§7.5): how much faster does the
   search reach a concrete target — "find every malloc fault that makes
   ln or mv fail" — when the tester trims the fault space to the
   functions the utilities actually call, and adds a statistical model of
   the deployment environment (malloc failures 40%, file ops 50%,
   directory ops 10%)?

   Run with: dune exec examples/domain_knowledge.exe *)

module Coreutils = Afex_simtarget.Coreutils
module Spaces = Afex_simtarget.Spaces
module Fault = Afex_injector.Fault
module Engine = Afex_injector.Engine
module Outcome = Afex_injector.Outcome
module Session = Afex.Session
module Test_case = Afex.Test_case

let () =
  let target = Coreutils.target () in
  let executor = Afex.Executor.of_target target in
  let ln_mv = Coreutils.ln_mv_test_ids in

  (* Ground truth, via exhaustive enumeration of the malloc faults. *)
  let goal = ref 0 in
  List.iter
    (fun test_id ->
      List.iter
        (fun call_number ->
          let fault = Fault.make ~test_id ~func:"malloc" ~call_number () in
          if Outcome.failed (Engine.run target fault) then incr goal)
        [ 1; 2 ])
    ln_mv;
  Format.printf "search target: all %d malloc faults that fail ln/mv@.@." !goal;

  let matches (c : Test_case.t) =
    Test_case.failed c
    && String.equal c.Test_case.fault.Fault.func "malloc"
    && List.mem c.Test_case.fault.Fault.test_id ln_mv
  in
  let stop = { Session.matches; count = !goal } in

  let samples_needed name config sub =
    let r = Session.run ~stop ~iterations:30_000 config sub executor in
    (match r.Session.stop_iteration with
    | Some i -> Format.printf "  %-28s %5d samples@." name i
    | None -> Format.printf "  %-28s >%d samples (target not reached)@." name r.Session.iterations);
    ()
  in

  (* Level 0: pure black box over the full 29x19x3 space. *)
  let full = Coreutils.space () in
  Format.printf "black-box (|Phi| = %d):@." (Afex_faultspace.Subspace.cardinality full);
  samples_needed "fitness-guided" (Afex.Config.fitness_guided ~seed:11 ()) full;
  samples_needed "random" (Afex.Config.random_search ~seed:11 ()) full;

  (* Level 1: trim Xfunc to the 9 functions ln/mv actually call. *)
  let trimmed =
    Spaces.standard ~min_call:0 ~max_call:2 ~funcs:Coreutils.trimmed_functions target
  in
  Format.printf "@.trimmed fault space (|Phi| = %d):@."
    (Afex_faultspace.Subspace.cardinality trimmed);
  samples_needed "fitness-guided" (Afex.Config.fitness_guided ~seed:11 ()) trimmed;
  samples_needed "random" (Afex.Config.random_search ~seed:11 ()) trimmed;

  (* Level 2: also weigh fitness by the environment model. *)
  let env = Afex_quality.Relevance.of_weights ~default:0.02 Coreutils.env_model in
  Format.printf "@.trimmed + environment model:@.";
  samples_needed "fitness-guided"
    { (Afex.Config.fitness_guided ~seed:11 ()) with Afex.Config.relevance = Some env }
    trimmed;
  Format.printf
    "@.(the paper reports 417 -> 213 -> 103 samples for fitness-guided search;@.\n\
    \ shape to expect: each knowledge level roughly halves the cost)@."
