(* Quickstart: describe a fault space in the AFEX description language,
   point the explorer at a target, and read the session report.

   Run with: dune exec examples/quickstart.exe *)

module Gen = Afex_simtarget.Gen
module Tracer = Afex_simtarget.Tracer
module Libc = Afex_simtarget.Libc

let () =
  (* 1. The system under test. A real deployment would provide startup /
     test / cleanup scripts around an actual binary; here we use a small
     simulated target so the example is self-contained. *)
  let target = Gen.generate { Gen.default_config with Gen.name = "demo"; n_tests = 24 } in
  Format.printf "target: %a@.@." Afex_simtarget.Target.pp_summary target;

  (* 2. The fault space. The ltrace-style profiler derives one from the
     suite's observed libc usage, in the Fig. 3 description language. *)
  let description =
    Tracer.standard_description target ~funcs:Libc.standard19 ~max_call:8
  in
  Format.printf "fault space description:@.%s@." description;
  let space =
    match Afex_faultspace.Fsdl.space_of_string description with
    | Ok space -> space
    | Error e -> failwith e
  in
  let subspace = Afex_faultspace.Space.single space in
  Format.printf "|Phi| = %d faults@.@." (Afex_faultspace.Subspace.cardinality subspace);

  (* 3. Explore: 400 fitness-guided injections, standard impact metric
     (new coverage + failure/crash/hang scores). *)
  let executor = Afex.Executor.of_target target in
  let result =
    Afex.Session.run ~iterations:400 (Afex.Config.fitness_guided ~seed:42 ()) subspace
      executor
  in

  (* 4. The session report: counts, top faults, redundancy clusters. *)
  print_string (Afex_report.Session_report.render ~target:"demo" result);

  (* 5. Every result is replayable: AFEX generates a regression script for
     the highest-impact fault. *)
  match Afex.Session.top_faults result ~n:1 with
  | [ top ] ->
      print_endline "--- generated replay script for the top fault ---";
      print_string (Afex_report.Replay.script ~target:"demo" top)
  | _ -> ()
