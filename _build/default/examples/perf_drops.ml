(* Performance-impact fault injection: which dropped TCP packet costs the
   most requests per second? Same explorer, different injector and impact
   metric — the §2 motivating example ("the change in number of requests
   per second served by Apache when random TCP packets are dropped") and
   the §6 "top-50 worst faults performance-wise" search target.

   Run with: dune exec examples/perf_drops.exe *)

module Netsim = Afex_simtarget.Netsim
module Netfault = Afex_injector.Netfault
module Session = Afex.Session
module Test_case = Afex.Test_case

let () =
  let server = Netsim.httpd_like () in
  Array.iter
    (fun (w : Netsim.workload) ->
      let base = Netsim.baseline server ~workload:w.Netsim.id in
      Format.printf "workload %d (%-15s): %3d requests, baseline %.0f req/s@."
        w.Netsim.id w.Netsim.name base.Netsim.requests_attempted
        base.Netsim.throughput_rps)
    server.Netsim.workloads;

  let sub = Netfault.space server in
  Format.printf "@.drop fault space: %d (workload x connection x packet)@.@."
    (Afex_faultspace.Subspace.cardinality sub);

  let executor =
    Afex.Executor.of_scenario_fn
      ~total_blocks:(Netfault.total_request_blocks server)
      ~description:"packet drops" (Netfault.run_scenario server)
  in
  let config =
    {
      (Afex.Config.fitness_guided ~seed:5 ()) with
      Afex.Config.sensor = Netfault.throughput_loss_sensor server;
    }
  in
  let r = Session.run ~iterations:500 config sub executor in

  let loss (c : Test_case.t) = Netfault.throughput_loss server c.Test_case.fault in
  let worst = List.sort (fun a b -> compare (loss b) (loss a)) r.Session.executed in
  Format.printf "ten worst drops performance-wise:@.";
  List.iteri
    (fun i (c : Test_case.t) ->
      if i < 10 then begin
        let d = Netfault.drop_of_fault c.Test_case.fault in
        Format.printf "  %2d. workload %d, connection %2d, packet %3d: -%.1f%% throughput@."
          (i + 1) d.Netsim.workload d.Netsim.connection d.Netsim.packet (loss c)
      end)
    worst;
  Format.printf
    "@.(fragile keep-alive clients dominate: one lost packet aborts a long@.connection and takes its whole request backlog with it)@."
