(* Parallel AFEX (§6.1, §7.7): one explorer feeding a cluster of node
   managers. Fault-injection tests are independent, so the system is
   embarrassingly parallel — throughput should scale linearly with node
   count until the explorer's candidate-generation rate becomes the
   bottleneck (measured at hundreds of thousands of candidates per second
   by `bench/main.exe micro`, so in practice: never).

   Run with: dune exec examples/cluster_scale.exe *)

module Simulation = Afex_cluster.Simulation
module Apache = Afex_simtarget.Apache
module Table = Afex_report.Table

let () =
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target (Apache.target ()) in
  let results =
    Simulation.scaling ~node_counts:[ 1; 2; 4; 8 ] ~iterations:2000
      (Afex.Config.fitness_guided ~seed:3 ())
      sub executor
  in
  let baseline = List.hd results in
  print_string
    (Table.render
       ~headers:[ "nodes"; "tests"; "wall clock (s)"; "tests/s"; "speedup"; "utilization" ]
       ~rows:
         (List.map
            (fun (r : Simulation.result) ->
              [
                string_of_int r.Simulation.nodes;
                string_of_int r.Simulation.tests_executed;
                Printf.sprintf "%.1f" (r.Simulation.wall_ms /. 1000.0);
                Printf.sprintf "%.1f" r.Simulation.throughput_per_s;
                Printf.sprintf "%.2fx" (Simulation.speedup ~baseline r);
                Printf.sprintf "%.0f%%" (100.0 *. r.Simulation.utilization);
              ])
            results)
       ());
  print_endline "";
  print_endline
    "Each simulated test costs its nominal duration plus startup/cleanup\n\
     scripts and a 2 ms dispatch; near-100% utilization and ~N x speedup\n\
     demonstrate the embarrassing parallelism the paper relies on."
