examples/cluster_scale.ml: Afex Afex_cluster Afex_report Afex_simtarget List Printf
