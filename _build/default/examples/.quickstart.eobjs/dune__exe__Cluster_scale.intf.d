examples/cluster_scale.mli:
