examples/perf_drops.ml: Afex Afex_faultspace Afex_injector Afex_simtarget Array Format List
