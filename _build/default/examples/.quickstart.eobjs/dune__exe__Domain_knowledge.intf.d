examples/domain_knowledge.mli:
