examples/multifault_hunt.ml: Afex Afex_faultspace Afex_injector Afex_simtarget Format List
