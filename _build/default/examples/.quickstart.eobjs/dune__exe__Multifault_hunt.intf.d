examples/multifault_hunt.mli:
