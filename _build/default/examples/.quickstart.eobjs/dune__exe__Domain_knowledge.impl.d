examples/domain_knowledge.ml: Afex Afex_faultspace Afex_injector Afex_quality Afex_simtarget Format List String
