examples/webserver_oom.ml: Afex Afex_injector Afex_quality Afex_simtarget Afex_stats Format List
