examples/perf_drops.mli:
