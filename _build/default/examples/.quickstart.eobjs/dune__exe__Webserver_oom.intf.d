examples/webserver_oom.mli:
