examples/database_recovery.mli:
