examples/quickstart.ml: Afex Afex_faultspace Afex_report Afex_simtarget Format
