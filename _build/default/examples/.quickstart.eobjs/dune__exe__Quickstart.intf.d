examples/quickstart.mli:
