examples/database_recovery.ml: Afex Afex_faultspace Afex_injector Afex_report Afex_simtarget Format List
