(* Tests for afex_faultspace: axes, points, subspaces, density, shuffles,
   scenarios. *)

module Axis = Afex_faultspace.Axis
module Point = Afex_faultspace.Point
module Subspace = Afex_faultspace.Subspace
module Space = Afex_faultspace.Space
module Value = Afex_faultspace.Value
module Density = Afex_faultspace.Density
module Shuffle = Afex_faultspace.Shuffle
module Scenario = Afex_faultspace.Scenario
module Rng = Afex_stats.Rng

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- Axis --- *)

let test_axis_symbols () =
  let a = Axis.symbols "fn" [ "open"; "close"; "read" ] in
  checki "cardinality" 3 (Axis.cardinality a);
  Alcotest.(check string) "value 1" "close" (Value.as_sym (Axis.value a 1));
  checki "index of read" 2 (Option.get (Axis.index_of_value a (Value.Sym "read")));
  checkb "unknown symbol" true (Axis.index_of_value a (Value.Sym "writev") = None)

let test_axis_range () =
  let a = Axis.range "call" ~lo:5 ~hi:9 in
  checki "cardinality" 5 (Axis.cardinality a);
  checki "value 0" 5 (Value.as_int (Axis.value a 0));
  checki "value 4" 9 (Value.as_int (Axis.value a 4));
  checki "index of 7" 2 (Option.get (Axis.index_of_value a (Value.Int 7)));
  checkb "out of range value" true (Axis.index_of_value a (Value.Int 10) = None)

let test_axis_bad_inputs () =
  Alcotest.check_raises "empty symbols" (Invalid_argument "Axis.make: empty symbol set")
    (fun () -> ignore (Axis.symbols "x" []));
  Alcotest.check_raises "inverted range" (Invalid_argument "Axis.make: inverted range")
    (fun () -> ignore (Axis.range "x" ~lo:3 ~hi:2))

let test_axis_value_out_of_bounds () =
  let a = Axis.range "x" ~lo:0 ~hi:2 in
  checkb "negative raises" true
    (try ignore (Axis.value a (-1)); false with Invalid_argument _ -> true);
  checkb "past end raises" true
    (try ignore (Axis.value a 3); false with Invalid_argument _ -> true)

let test_axis_subinterval_cardinality () =
  (* <1,4>: intervals over a 4-element range = 4*5/2 = 10 *)
  let a = Axis.subinterval "w" ~lo:1 ~hi:4 in
  checki "m(m+1)/2" 10 (Axis.cardinality a)

let test_axis_subinterval_roundtrip () =
  let a = Axis.subinterval "w" ~lo:2 ~hi:6 in
  for i = 0 to Axis.cardinality a - 1 do
    match Axis.value a i with
    | Value.Pair (lo, hi) ->
        checkb "valid pair" true (lo >= 2 && hi <= 6 && lo <= hi);
        checki "index round-trip" i
          (Option.get (Axis.index_of_value a (Value.Pair (lo, hi))))
    | Value.Sym _ | Value.Int _ -> Alcotest.fail "expected pair"
  done

let test_axis_subinterval_order_lexicographic () =
  let a = Axis.subinterval "w" ~lo:0 ~hi:2 in
  let values = List.init (Axis.cardinality a) (Axis.value a) in
  Alcotest.(check (list string)) "lexicographic order"
    [ "<0,0>"; "<0,1>"; "<0,2>"; "<1,1>"; "<1,2>"; "<2,2>" ]
    (List.map Value.to_string values)

(* --- Point --- *)

let test_point_accessors () =
  let p = Point.of_list [ 1; 2; 3 ] in
  checki "dim" 3 (Point.dim p);
  checki "get" 2 (Point.get p 1);
  let q = Point.with_component p 1 9 in
  checki "modified copy" 9 (Point.get q 1);
  checki "original untouched" 2 (Point.get p 1)

let test_point_negative_rejected () =
  checkb "negative component raises" true
    (try ignore (Point.of_list [ 1; -1 ]); false with Invalid_argument _ -> true)

let test_point_manhattan () =
  let a = Point.of_list [ 0; 0; 0 ] and b = Point.of_list [ 1; 2; 3 ] in
  checki "distance" 6 (Point.manhattan a b);
  checki "self distance" 0 (Point.manhattan a a);
  checki "chebyshev" 3 (Point.chebyshev a b)

let test_point_key_injective () =
  let a = Point.of_list [ 1; 23 ] and b = Point.of_list [ 12; 3 ] in
  checkb "keys differ" true (Point.key a <> Point.key b)

(* --- Subspace --- *)

let small () =
  Subspace.make
    [ Axis.range "x" ~lo:0 ~hi:3; Axis.symbols "f" [ "a"; "b"; "c" ] ]

let test_subspace_cardinality () = checki "4*3" 12 (Subspace.cardinality (small ()))

let test_subspace_enumerate_complete () =
  let sub = small () in
  let points = List.of_seq (Subspace.enumerate sub) in
  checki "enumerates all" 12 (List.length points);
  let keys = List.sort_uniq compare (List.map Point.key points) in
  checki "all distinct" 12 (List.length keys);
  checkb "all members" true (List.for_all (Subspace.mem sub) points)

let test_subspace_holes_excluded () =
  let hole p = Point.get p 0 = 1 in
  let sub =
    Subspace.make ~hole [ Axis.range "x" ~lo:0 ~hi:3; Axis.symbols "f" [ "a"; "b"; "c" ] ]
  in
  let points = List.of_seq (Subspace.enumerate sub) in
  checki "holes skipped" 9 (List.length points);
  checkb "hole not member" false (Subspace.mem sub (Point.of_list [ 1; 0 ]));
  let rng = Rng.create 17 in
  for _ = 1 to 200 do
    checkb "random avoids holes" false (Point.get (Subspace.random_point rng sub) 0 = 1)
  done

let test_subspace_values_roundtrip () =
  let sub = small () in
  let p = Point.of_list [ 2; 1 ] in
  let bindings = Subspace.values sub p in
  Alcotest.(check (list (pair string string)))
    "bindings"
    [ ("x", "2"); ("f", "b") ]
    (List.map (fun (n, v) -> (n, Value.to_string v)) bindings);
  checkb "inverse" true (Point.equal p (Option.get (Subspace.point_of_values sub bindings)))

let test_subspace_point_of_values_unknown () =
  let sub = small () in
  checkb "unknown axis" true
    (Subspace.point_of_values sub [ ("zz", Value.Int 0) ] = None);
  checkb "missing axis" true (Subspace.point_of_values sub [ ("x", Value.Int 0) ] = None);
  checkb "bad value" true
    (Subspace.point_of_values sub [ ("x", Value.Int 99); ("f", Value.Sym "a") ] = None)

let test_subspace_vicinity_matches_bruteforce () =
  let sub = small () in
  let center = Point.of_list [ 1; 1 ] in
  let d = 2 in
  let expected =
    List.filter (fun p -> Point.manhattan center p <= d)
      (List.of_seq (Subspace.enumerate sub))
  in
  let got = List.of_seq (Subspace.vicinity sub center ~d) in
  checki "same size" (List.length expected) (List.length got);
  let key_set l = List.sort_uniq compare (List.map Point.key l) in
  Alcotest.(check (list string)) "same points" (key_set expected) (key_set got)

let test_subspace_axis_index () =
  let sub = small () in
  checki "x at 0" 0 (Option.get (Subspace.axis_index sub "x"));
  checki "f at 1" 1 (Option.get (Subspace.axis_index sub "f"));
  checkb "unknown" true (Subspace.axis_index sub "nope" = None)

(* --- Space (unions) --- *)

let union () =
  Space.of_subspaces
    [
      small ();
      Subspace.make ~label:"io" [ Axis.range "call" ~lo:1 ~hi:5 ];
    ]

let test_space_cardinality () = checki "12+5" 17 (Space.cardinality (union ()))

let test_space_enumerate () =
  let sp = union () in
  let all = List.of_seq (Space.enumerate sp) in
  checki "all points" 17 (List.length all);
  checkb "all members" true (List.for_all (Space.mem sp) all)

let test_space_random_member () =
  let sp = union () in
  let rng = Rng.create 19 in
  for _ = 1 to 100 do
    checkb "random located valid" true (Space.mem sp (Space.random rng sp))
  done

let test_space_single_rejects_union () =
  checkb "single on union raises" true
    (try ignore (Space.single (union ())); false with Invalid_argument _ -> true)

(* --- Density (the paper's Fig. 1 / §2 example) --- *)

(* A 5x9 grid shaped like the paper's example: a vertical stripe of impact
   at column 3. Walking vertically from a point in the stripe encounters
   only impact, so the vertical relative density must exceed 1. *)
let stripe_sub = Subspace.make [ Axis.range "col" ~lo:0 ~hi:8; Axis.range "row" ~lo:0 ~hi:4 ]
let stripe_impact p = if Point.get p 0 = 3 then 1.0 else 0.0

let test_density_vertical_stripe () =
  let phi = Point.of_list [ 3; 2 ] in
  (* Along the row axis (axis 1) every fault shares col=3 -> impact 1. *)
  let rho_vertical = Density.relative_linear_density stripe_sub stripe_impact phi ~axis:1 in
  let rho_horizontal = Density.relative_linear_density stripe_sub stripe_impact phi ~axis:0 in
  checkf "vertical density = 1/avg = 9" 9.0 rho_vertical;
  checkf "horizontal density = (1/9)/(1/9) = 1" 1.0 rho_horizontal;
  checkb "vertical beats horizontal" true (rho_vertical > rho_horizontal)

let test_density_in_vicinity () =
  let phi = Point.of_list [ 3; 2 ] in
  let rho =
    Density.relative_linear_density_in_vicinity stripe_sub stripe_impact phi ~axis:1 ~d:2
  in
  checkb "vicinity density > 1" true (rho > 1.0)

let test_density_zero_space () =
  let phi = Point.of_list [ 0; 0 ] in
  checkf "zero impact -> 0 density" 0.0
    (Density.relative_linear_density stripe_sub (fun _ -> 0.0) phi ~axis:0)

let test_density_structured_axes () =
  let samples = [ Point.of_list [ 3; 0 ]; Point.of_list [ 3; 4 ] ] in
  match Density.structured_axes stripe_sub stripe_impact ~samples with
  | (best_axis, best) :: (_, second) :: _ ->
      checki "row axis most structured" 1 best_axis;
      checkb "sorted descending" true (best >= second)
  | _ -> Alcotest.fail "expected two axes"

(* --- Shuffle --- *)

let test_shuffle_roundtrip () =
  let sub = small () in
  let sh = Shuffle.shuffle_axes (Rng.create 5) sub ~axes:[ 0; 1 ] in
  Seq.iter
    (fun p ->
      let q = Shuffle.to_target sh p in
      checkb "target in space" true (Subspace.mem sub q);
      checkb "round-trip" true (Point.equal p (Shuffle.of_target sh q)))
    (Subspace.enumerate sub)

let test_shuffle_is_bijection () =
  let sub = small () in
  let sh = Shuffle.shuffle_axis (Rng.create 6) sub ~axis:0 in
  let images =
    List.sort_uniq compare
      (List.map (fun p -> Point.key (Shuffle.to_target sh p))
         (List.of_seq (Subspace.enumerate sub)))
  in
  checki "bijective over the space" (Subspace.cardinality sub) (List.length images)

let test_shuffle_identity () =
  let sub = small () in
  let sh = Shuffle.identity sub in
  let p = Point.of_list [ 2; 2 ] in
  checkb "identity maps to self" true (Point.equal p (Shuffle.to_target sh p));
  Alcotest.(check (list int)) "no shuffled axes" [] (Shuffle.shuffled_axes sh)

let test_shuffle_axes_listed () =
  let sub = small () in
  let sh = Shuffle.shuffle_axis (Rng.create 7) sub ~axis:1 in
  Alcotest.(check (list int)) "axis recorded" [ 1 ] (Shuffle.shuffled_axes sh)

(* --- Scenario --- *)

let test_scenario_roundtrip_string () =
  let s = [ ("function", Value.Sym "malloc"); ("callNumber", Value.Int 23) ] in
  let str = Scenario.to_string s in
  Alcotest.(check string) "fig5 format" "function malloc callNumber 23" str;
  match Scenario.of_string str with
  | Ok s' ->
      Alcotest.(check (list (pair string string)))
        "parsed back"
        (List.map (fun (n, v) -> (n, Value.to_string v)) s)
        (List.map (fun (n, v) -> (n, Value.to_string v)) s')
  | Error e -> Alcotest.fail e

let test_scenario_parse_pair () =
  match Scenario.of_string "window <3,7>" with
  | Ok [ ("window", Value.Pair (3, 7)) ] -> ()
  | Ok _ -> Alcotest.fail "wrong parse"
  | Error e -> Alcotest.fail e

let test_scenario_odd_tokens_error () =
  checkb "dangling name" true (Result.is_error (Scenario.of_string "function"))

let test_scenario_of_point () =
  let sub = small () in
  let p = Point.of_list [ 3; 0 ] in
  let s = Scenario.of_point sub p in
  checkb "to_point inverse" true (Point.equal p (Option.get (Scenario.to_point sub s)))

(* --- qcheck properties --- *)

let qcheck_tests =
  let open QCheck2 in
  let point_pair_gen =
    Gen.(
      list_repeat 4 (int_bound 9) >>= fun a ->
      list_repeat 4 (int_bound 9) >>= fun b ->
      return (Point.of_list a, Point.of_list b))
  in
  let triple_gen =
    Gen.(
      list_repeat 3 (int_bound 9) >>= fun a ->
      list_repeat 3 (int_bound 9) >>= fun b ->
      list_repeat 3 (int_bound 9) >>= fun c ->
      return (Point.of_list a, Point.of_list b, Point.of_list c))
  in
  [
    Test.make ~name:"manhattan symmetry" point_pair_gen (fun (a, b) ->
        Point.manhattan a b = Point.manhattan b a);
    Test.make ~name:"manhattan triangle inequality" triple_gen (fun (a, b, c) ->
        Point.manhattan a c <= Point.manhattan a b + Point.manhattan b c);
    Test.make ~name:"manhattan zero iff equal" point_pair_gen (fun (a, b) ->
        Point.manhattan a b = 0 = Point.equal a b);
    Test.make ~name:"chebyshev <= manhattan" point_pair_gen (fun (a, b) ->
        Point.chebyshev a b <= Point.manhattan a b);
    Test.make ~name:"subinterval index bijection"
      Gen.(pair (int_range 0 5) (int_range 6 12))
      (fun (lo, hi) ->
        let a = Axis.subinterval "w" ~lo ~hi in
        let ok = ref true in
        for i = 0 to Axis.cardinality a - 1 do
          if Axis.index_of_value a (Axis.value a i) <> Some i then ok := false
        done;
        !ok);
  ]

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("axis symbols", test_axis_symbols);
      ("axis range", test_axis_range);
      ("axis bad inputs", test_axis_bad_inputs);
      ("axis value bounds", test_axis_value_out_of_bounds);
      ("axis subinterval cardinality", test_axis_subinterval_cardinality);
      ("axis subinterval roundtrip", test_axis_subinterval_roundtrip);
      ("axis subinterval order", test_axis_subinterval_order_lexicographic);
      ("point accessors", test_point_accessors);
      ("point negative rejected", test_point_negative_rejected);
      ("point manhattan", test_point_manhattan);
      ("point key injective", test_point_key_injective);
      ("subspace cardinality", test_subspace_cardinality);
      ("subspace enumerate complete", test_subspace_enumerate_complete);
      ("subspace holes excluded", test_subspace_holes_excluded);
      ("subspace values roundtrip", test_subspace_values_roundtrip);
      ("subspace point_of_values unknown", test_subspace_point_of_values_unknown);
      ("subspace vicinity = bruteforce", test_subspace_vicinity_matches_bruteforce);
      ("subspace axis_index", test_subspace_axis_index);
      ("space cardinality", test_space_cardinality);
      ("space enumerate", test_space_enumerate);
      ("space random member", test_space_random_member);
      ("space single rejects union", test_space_single_rejects_union);
      ("density vertical stripe (paper example)", test_density_vertical_stripe);
      ("density in vicinity", test_density_in_vicinity);
      ("density zero space", test_density_zero_space);
      ("density structured axes", test_density_structured_axes);
      ("shuffle roundtrip", test_shuffle_roundtrip);
      ("shuffle bijection", test_shuffle_is_bijection);
      ("shuffle identity", test_shuffle_identity);
      ("shuffle axes listed", test_shuffle_axes_listed);
      ("scenario roundtrip", test_scenario_roundtrip_string);
      ("scenario pair parse", test_scenario_parse_pair);
      ("scenario odd tokens", test_scenario_odd_tokens_error);
      ("scenario of_point", test_scenario_of_point);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
