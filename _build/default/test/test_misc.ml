(* Odds and ends: small API surfaces not covered by the focused suites
   (pretty-printers, convenience wrappers, alignment options). *)

module Rng = Afex_stats.Rng
module Dist = Afex_stats.Dist
module Summary = Afex_stats.Summary
module Table = Afex_report.Table
module Figure = Afex_report.Figure
module Session = Afex.Session
module Test_case = Afex.Test_case
module Config = Afex.Config
module Apache = Afex_simtarget.Apache
module Behavior = Afex_simtarget.Behavior
module Fault = Afex_injector.Fault

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

let contains haystack needle =
  let nl = String.length needle and hl = String.length haystack in
  let rec scan i = i + nl <= hl && (String.sub haystack i nl = needle || scan (i + 1)) in
  nl = 0 || scan 0

let fmt_to_string pp v = Format.asprintf "%a" pp v

let test_rng_shuffled_list () =
  let rng = Rng.create 1 in
  let l = List.init 30 (fun i -> i) in
  let s = Rng.shuffled_list rng l in
  checki "same length" 30 (List.length s);
  Alcotest.(check (list int)) "same multiset" l (List.sort compare s);
  checkb "actually shuffled" true (s <> l)

let test_dist_sample_weighted_shortcut () =
  let rng = Rng.create 2 in
  for _ = 1 to 50 do
    checki "all mass on index 1" 1 (Dist.sample_weighted rng [| 0.0; 5.0; 0.0 |])
  done

let test_summary_pp () =
  let s = fmt_to_string Summary.pp (Summary.of_list [ 1.0; 3.0 ]) in
  checkb "mentions n" true (contains s "n=2");
  checkb "mentions mean" true (contains s "mean=2.0")

let test_behavior_pp () =
  checks "crash-in-recovery" "crash-in-recovery"
    (fmt_to_string Behavior.pp_reaction (Behavior.Crash { in_recovery = true }));
  checks "crash-if-recovering" "crash-if-recovering"
    (fmt_to_string Behavior.pp_reaction Behavior.Crash_if_recovering)

let test_fault_pp () =
  let f = Fault.make ~test_id:3 ~func:"read" ~call_number:2 () in
  checkb "readable" true (contains (fmt_to_string Fault.pp f) "read call #2")

let test_table_custom_aligns () =
  let s =
    Table.render
      ~aligns:[ Table.Right; Table.Left ]
      ~headers:[ "n"; "name" ]
      ~rows:[ [ "1"; "x" ]; [ "22"; "yy" ] ]
      ()
  in
  let lines = String.split_on_char '\n' s in
  checks "right-aligned first column" " 1  x" (List.nth lines 2)

let test_figure_single_point_series () =
  let s = Figure.line_chart ~series:[ ("one", [| 5.0 |]) ] () in
  checkb "renders" true (contains s "*")

let test_session_found_matching () =
  let executor = Afex.Executor.of_target (Apache.target ()) in
  let r =
    Session.run ~iterations:100 (Config.fitness_guided ~seed:21 ()) (Apache.space ())
      executor
  in
  checki "found_matching counts failures" r.Session.failed
    (Session.found_matching r Test_case.failed);
  checki "nothing matches the impossible" 0
    (Session.found_matching r (fun _ -> false))

let test_session_pp_space_summary () =
  let description = "alpha testId : [ 0, 10 ] function : { read } callNumber : [ 1, 2 ] ;" in
  let space = Result.get_ok (Afex_faultspace.Fsdl.space_of_string description) in
  let executor = Afex.Executor.of_target (Apache.target ()) in
  let sr = Session.run_space ~iterations:20 (Config.random_search ~seed:1 ()) space executor in
  let rendered = fmt_to_string Session.pp_space_summary sr in
  checkb "mentions union" true (contains rendered "union of 1 subspaces");
  checkb "mentions label" true (contains rendered "alpha")

let test_multifault_pp () =
  let mf = Afex_injector.Multifault.make ~test_id:4 ~arms:[ ("read", 1); ("malloc", 7) ] in
  let s = fmt_to_string Afex_injector.Multifault.pp mf in
  checkb "lists arms" true (contains s "[read #1" && contains s "[malloc #7")

let test_outcome_pp () =
  let o = Afex_injector.Engine.baseline (Apache.target ()) 0 in
  let s = fmt_to_string Afex_injector.Outcome.pp o in
  checkb "shows status" true (contains s "passed");
  checkb "notes non-trigger" true (contains s "not triggered")

let test_pqueue_capacity_accessor () =
  let q = Afex.Pqueue.create ~capacity:7 in
  checki "capacity" 7 (Afex.Pqueue.capacity q)

let test_explorer_accessors () =
  let sub = Apache.space () in
  let executor = Afex.Executor.of_target (Apache.target ()) in
  let e = Afex.Explorer.create (Config.fitness_guided ~seed:31 ()) sub executor in
  (match Afex.Explorer.next e with
  | Some p -> ignore (Afex.Explorer.execute e p)
  | None -> Alcotest.fail "no candidate");
  checkb "subspace exposed" true (Afex.Explorer.subspace e == sub);
  checki "one iteration" 1 (Afex.Explorer.iterations e);
  checki "queue grew" 1 (List.length (Afex.Explorer.queue_snapshot e));
  checks "strategy recorded" "fitness-guided"
    (Config.strategy_name (Afex.Explorer.config e).Config.strategy)

let test_tracer_fig4_shape () =
  (* The per-function profile of a tiny target follows the Fig. 4 shape:
     one subspace per (function, errno) case, each with 4 parameters. *)
  let target = Afex_simtarget.Coreutils.ls_target () in
  let ast = Afex_simtarget.Tracer.describe target in
  checkb "non-empty" true (ast <> []);
  List.iter
    (fun decl -> checki "4 parameters per declaration" 4 (List.length decl))
    ast

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("rng shuffled_list", test_rng_shuffled_list);
      ("dist sample_weighted shortcut", test_dist_sample_weighted_shortcut);
      ("summary pp", test_summary_pp);
      ("behavior pp", test_behavior_pp);
      ("fault pp", test_fault_pp);
      ("table custom aligns", test_table_custom_aligns);
      ("figure single-point series", test_figure_single_point_series);
      ("session found_matching", test_session_found_matching);
      ("session pp_space_summary", test_session_pp_space_summary);
      ("multifault pp", test_multifault_pp);
      ("outcome pp", test_outcome_pp);
      ("pqueue capacity accessor", test_pqueue_capacity_accessor);
      ("explorer accessors", test_explorer_accessors);
      ("tracer fig4 shape", test_tracer_fig4_shape);
    ]
