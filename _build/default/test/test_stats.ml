(* Tests for afex_stats: PRNG, distributions, summaries, bitsets. *)

module Rng = Afex_stats.Rng
module Dist = Afex_stats.Dist
module Summary = Afex_stats.Summary
module Bitset = Afex_stats.Bitset

let check = Alcotest.check
let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

(* --- Rng --- *)

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  checkb "different seeds diverge" true (!same < 4)

let test_rng_copy_independent () =
  let a = Rng.create 7 in
  let _ = Rng.bits64 a in
  let b = Rng.copy a in
  check Alcotest.int64 "copy continues identically" (Rng.bits64 a) (Rng.bits64 b);
  (* Advancing one does not affect the other. *)
  let _ = Rng.bits64 a in
  let a' = Rng.bits64 a and b' = Rng.bits64 b in
  checkb "streams now independent" true (a' <> b')

let test_rng_split () =
  let a = Rng.create 9 in
  let b = Rng.split a in
  let xa = Rng.bits64 a and xb = Rng.bits64 b in
  checkb "split streams differ" true (xa <> xb)

let test_rng_int_bounds () =
  let rng = Rng.create 3 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 7 in
    checkb "in [0,7)" true (v >= 0 && v < 7)
  done;
  Alcotest.check_raises "zero bound rejected"
    (Invalid_argument "Rng.int: bound must be positive") (fun () ->
      ignore (Rng.int rng 0))

let test_rng_int_in () =
  let rng = Rng.create 4 in
  let seen = Hashtbl.create 16 in
  for _ = 1 to 2000 do
    let v = Rng.int_in rng (-3) 3 in
    checkb "in [-3,3]" true (v >= -3 && v <= 3);
    Hashtbl.replace seen v ()
  done;
  checki "all 7 values reachable" 7 (Hashtbl.length seen)

let test_rng_float_bounds () =
  let rng = Rng.create 5 in
  for _ = 1 to 1000 do
    let v = Rng.float rng 2.5 in
    checkb "in [0,2.5)" true (v >= 0.0 && v < 2.5)
  done

let test_rng_bernoulli_extremes () =
  let rng = Rng.create 6 in
  for _ = 1 to 100 do
    checkb "p=0 never true" false (Rng.bernoulli rng 0.0)
  done;
  for _ = 1 to 100 do
    checkb "p=1 always true" true (Rng.bernoulli rng 1.0)
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 8 in
  let n = 20_000 in
  let samples = List.init n (fun _ -> Rng.gaussian rng ~mu:5.0 ~sigma:2.0) in
  let s = Summary.of_list samples in
  checkb "mean near 5" true (Float.abs (Summary.mean s -. 5.0) < 0.1);
  checkb "stddev near 2" true (Float.abs (Summary.stddev s -. 2.0) < 0.1)

let test_rng_permutation () =
  let rng = Rng.create 10 in
  let p = Rng.permutation rng 50 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 (fun i -> i)) sorted

let test_rng_pick_singleton () =
  let rng = Rng.create 11 in
  checki "singleton pick" 99 (Rng.pick rng [| 99 |]);
  Alcotest.check_raises "empty pick rejected"
    (Invalid_argument "Rng.pick: empty array") (fun () ->
      ignore (Rng.pick rng ([||] : int array)))

(* --- Dist --- *)

let test_dist_uniform_support () =
  let d = Dist.uniform 4 in
  checki "support" 4 (Dist.support d);
  Array.iter (fun p -> checkf "uniform prob" 0.25 p) (Dist.weights d)

let test_dist_weighted_normalization () =
  let d = Dist.of_weights [| 1.0; 3.0 |] in
  let w = Dist.weights d in
  checkf "first" 0.25 w.(0);
  checkf "second" 0.75 w.(1)

let test_dist_zero_weights_uniform () =
  let d = Dist.of_weights [| 0.0; 0.0; 0.0 |] in
  Array.iter (fun p -> checkf "fallback uniform" (1.0 /. 3.0) p) (Dist.weights d)

let test_dist_negative_rejected () =
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Dist.of_weights: negative or NaN weight") (fun () ->
      ignore (Dist.of_weights [| 1.0; -1.0 |]))

let test_dist_sampling_frequencies () =
  let rng = Rng.create 21 in
  let d = Dist.of_weights [| 1.0; 0.0; 3.0 |] in
  let counts = Array.make 3 0 in
  let n = 20_000 in
  for _ = 1 to n do
    let i = Dist.sample rng d in
    counts.(i) <- counts.(i) + 1
  done;
  checki "zero-weight index never drawn" 0 counts.(1);
  let f0 = float_of_int counts.(0) /. float_of_int n in
  checkb "frequency near 0.25" true (Float.abs (f0 -. 0.25) < 0.02)

let test_gaussian_center_heaviest () =
  let d = Dist.discrete_gaussian ~center:5 ~sigma:2.0 ~n:11 in
  let w = Dist.weights d in
  Array.iteri (fun i p -> if i <> 5 then checkb "center is mode" true (w.(5) >= p)) w

let test_gaussian_symmetric () =
  let d = Dist.discrete_gaussian ~center:5 ~sigma:1.5 ~n:11 in
  let w = Dist.weights d in
  for k = 1 to 5 do
    checkb "symmetric around center" true (Float.abs (w.(5 - k) -. w.(5 + k)) < 1e-9)
  done

let test_gaussian_excluding_center () =
  let rng = Rng.create 22 in
  for _ = 1 to 500 do
    let v = Dist.sample_gaussian_index_excluding rng ~center:3 ~sigma:1.0 ~n:8 in
    checkb "never center" true (v <> 3);
    checkb "in range" true (v >= 0 && v < 8)
  done

let test_gaussian_excluding_tiny_sigma () =
  (* Pathologically narrow sigma: the fallback must still move. *)
  let rng = Rng.create 23 in
  for _ = 1 to 100 do
    let v = Dist.sample_gaussian_index_excluding rng ~center:0 ~sigma:1e-12 ~n:5 in
    checkb "moved off center" true (v <> 0)
  done

let test_dist_inverse () =
  let inv = Dist.inverse [| 2.0; 4.0; 0.0 |] in
  checkf "1/2" 0.5 inv.(0);
  checkf "1/4" 0.25 inv.(1);
  checkb "zero gets largest inverse" true (inv.(2) > inv.(0))

(* --- Summary --- *)

let test_summary_basic () =
  let s = Summary.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  checkf "mean" 2.5 (Summary.mean s);
  checkf "variance" (5.0 /. 3.0) (Summary.variance s);
  checkf "min" 1.0 (Summary.min_value s);
  checkf "max" 4.0 (Summary.max_value s);
  checkf "median" 2.5 (Summary.median s);
  checkf "total" 10.0 (Summary.total s)

let test_summary_empty () =
  let s = Summary.of_list [] in
  checki "count" 0 (Summary.count s);
  checkf "mean" 0.0 (Summary.mean s);
  checkf "variance" 0.0 (Summary.variance s)

let test_summary_singleton () =
  let s = Summary.of_list [ 7.0 ] in
  checkf "mean" 7.0 (Summary.mean s);
  checkf "variance" 0.0 (Summary.variance s);
  checkf "median" 7.0 (Summary.median s)

let test_summary_quantiles () =
  let s = Summary.of_list [ 0.0; 10.0 ] in
  checkf "q0" 0.0 (Summary.quantile s 0.0);
  checkf "q1" 10.0 (Summary.quantile s 1.0);
  checkf "q0.5 interpolates" 5.0 (Summary.quantile s 0.5);
  checkf "clamped" 10.0 (Summary.quantile s 2.0)

let test_summary_online_matches_offline () =
  let rng = Rng.create 31 in
  let values = List.init 500 (fun _ -> Rng.float rng 100.0) in
  let acc = Summary.Online.create () in
  List.iter (Summary.Online.add acc) values;
  let offline = Summary.of_list values in
  checkb "mean matches" true
    (Float.abs (Summary.Online.mean acc -. Summary.mean offline) < 1e-6);
  checkb "variance matches" true
    (Float.abs (Summary.Online.variance acc -. Summary.variance offline) < 1e-6);
  let s = Summary.Online.to_summary acc in
  checkf "round-trip median" (Summary.median offline) (Summary.median s)

(* --- Bitset --- *)

let test_bitset_basic () =
  let b = Bitset.create 100 in
  checki "empty" 0 (Bitset.count b);
  Bitset.set b 0;
  Bitset.set b 63;
  Bitset.set b 99;
  Bitset.set b 99;
  checki "count after sets" 3 (Bitset.count b);
  checkb "mem 63" true (Bitset.mem b 63);
  checkb "not mem 50" false (Bitset.mem b 50);
  Alcotest.check_raises "out of range"
    (Invalid_argument "Bitset: index 100 out of range [0,100)") (fun () ->
      Bitset.set b 100)

let test_bitset_union_diff () =
  let a = Bitset.create 64 and b = Bitset.create 64 in
  Bitset.set a 1;
  Bitset.set a 2;
  Bitset.set b 2;
  Bitset.set b 3;
  checki "diff a-b" 1 (Bitset.diff_count a b);
  checki "diff b-a" 1 (Bitset.diff_count b a);
  Bitset.union_into ~dst:a b;
  checki "union count" 3 (Bitset.count a);
  checkb "b unchanged" true (Bitset.count b = 2)

let test_bitset_copy_independent () =
  let a = Bitset.create 16 in
  Bitset.set a 3;
  let b = Bitset.copy a in
  Bitset.set b 4;
  checkb "copy diverges" false (Bitset.mem a 4);
  checkb "copy kept bit" true (Bitset.mem b 3)

let test_bitset_to_list_iter () =
  let a = Bitset.create 20 in
  List.iter (Bitset.set a) [ 19; 0; 7 ];
  Alcotest.(check (list int)) "sorted list" [ 0; 7; 19 ] (Bitset.to_list a);
  let acc = ref 0 in
  Bitset.iter (fun i -> acc := !acc + i) a;
  checki "iter sum" 26 !acc

(* --- qcheck properties --- *)

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"bitset count equals distinct sets"
      Gen.(list_size (int_bound 50) (int_bound 199))
      (fun indices ->
        let b = Bitset.create 200 in
        List.iter (Bitset.set b) indices;
        Bitset.count b = List.length (List.sort_uniq compare indices));
    Test.make ~name:"summary mean within min/max"
      Gen.(list_size (int_range 1 50) (float_bound_inclusive 1000.0))
      (fun values ->
        let s = Summary.of_list values in
        Summary.mean s >= Summary.min_value s -. 1e-9
        && Summary.mean s <= Summary.max_value s +. 1e-9);
    Test.make ~name:"rng int stays in bounds"
      Gen.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let rng = Rng.create seed in
        let v = Rng.int rng bound in
        v >= 0 && v < bound);
    Test.make ~name:"dist sample index within support"
      Gen.(pair small_int (list_size (int_range 1 20) (float_bound_inclusive 10.0)))
      (fun (seed, weights) ->
        let rng = Rng.create seed in
        let d = Dist.of_weights (Array.of_list weights) in
        let i = Dist.sample rng d in
        i >= 0 && i < List.length weights);
  ]

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("rng determinism", test_rng_determinism);
      ("rng seeds differ", test_rng_seeds_differ);
      ("rng copy independent", test_rng_copy_independent);
      ("rng split", test_rng_split);
      ("rng int bounds", test_rng_int_bounds);
      ("rng int_in range", test_rng_int_in);
      ("rng float bounds", test_rng_float_bounds);
      ("rng bernoulli extremes", test_rng_bernoulli_extremes);
      ("rng gaussian moments", test_rng_gaussian_moments);
      ("rng permutation", test_rng_permutation);
      ("rng pick", test_rng_pick_singleton);
      ("dist uniform", test_dist_uniform_support);
      ("dist normalization", test_dist_weighted_normalization);
      ("dist zero weights", test_dist_zero_weights_uniform);
      ("dist negative rejected", test_dist_negative_rejected);
      ("dist sampling frequencies", test_dist_sampling_frequencies);
      ("gaussian center heaviest", test_gaussian_center_heaviest);
      ("gaussian symmetric", test_gaussian_symmetric);
      ("gaussian excluding center", test_gaussian_excluding_center);
      ("gaussian excluding tiny sigma", test_gaussian_excluding_tiny_sigma);
      ("dist inverse", test_dist_inverse);
      ("summary basic", test_summary_basic);
      ("summary empty", test_summary_empty);
      ("summary singleton", test_summary_singleton);
      ("summary quantiles", test_summary_quantiles);
      ("summary online matches offline", test_summary_online_matches_offline);
      ("bitset basic", test_bitset_basic);
      ("bitset union/diff", test_bitset_union_diff);
      ("bitset copy independent", test_bitset_copy_independent);
      ("bitset to_list/iter", test_bitset_to_list_iter);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
