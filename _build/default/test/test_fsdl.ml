(* Tests for the fault space description language (Fig. 3 grammar). *)

module Lexer = Afex_faultspace.Fsdl_lexer
module Parser = Afex_faultspace.Fsdl_parser
module Printer = Afex_faultspace.Fsdl_printer
module Ast = Afex_faultspace.Fsdl_ast
module Fsdl = Afex_faultspace.Fsdl
module Space = Afex_faultspace.Space
module Subspace = Afex_faultspace.Subspace
module Axis = Afex_faultspace.Axis

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* The paper's Fig. 4 example verbatim (modulo whitespace). *)
let fig4 =
  "function : { malloc, calloc, realloc }\n\
   errno : { ENOMEM }\n\
   retval : { 0 }\n\
   callNumber : [ 1 , 100 ] ;\n\n\
   function : { read }\n\
   errno : { EINTR }\n\
   retVal : { -1 }\n\
   callNumber : [ 1 , 50 ] ;"

(* --- Lexer --- *)

let test_lexer_basic () =
  match Lexer.tokenize "foo : { a, b } [ 1, 20 ] < -3, 4 > ;" with
  | Error _ -> Alcotest.fail "lex error"
  | Ok tokens ->
      checki "token count" 18 (List.length tokens);
      checks "roundtrip tokens" "foo : { a , b } [ 1 , 20 ] < -3 , 4 > ;"
        (String.concat " " (List.map Lexer.token_to_string tokens))

let test_lexer_negative_numbers () =
  match Lexer.tokenize "-12" with
  | Ok [ Lexer.Number v ] -> checki "negative" (-12) v
  | Ok _ | Error _ -> Alcotest.fail "expected one number"

let test_lexer_dangling_minus () =
  checkb "dangling minus rejected" true (Result.is_error (Lexer.tokenize "a - b"))

let test_lexer_bad_char () =
  match Lexer.tokenize "foo $ bar" with
  | Error { Lexer.position; _ } -> checki "error position" 4 position
  | Ok _ -> Alcotest.fail "expected error"

let test_lexer_comments_and_whitespace () =
  match Lexer.tokenize "a # comment with : { } tokens\n b" with
  | Ok [ Lexer.Ident "a"; Lexer.Ident "b" ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "comment not stripped"

let test_lexer_identifier_chars () =
  match Lexer.tokenize "__IO_putc x_1" with
  | Ok [ Lexer.Ident "__IO_putc"; Lexer.Ident "x_1" ] -> ()
  | Ok _ | Error _ -> Alcotest.fail "identifier lexing"

(* --- Parser --- *)

let test_parse_fig4 () =
  match Parser.parse fig4 with
  | Error e -> Alcotest.fail e
  | Ok ast -> (
      checki "two subspaces" 2 (List.length ast);
      match ast with
      | [ first; second ] ->
          checki "first has 4 params" 4 (List.length first);
          (match List.hd first with
          | Ast.Parameter ("function", Ast.Set [ "malloc"; "calloc"; "realloc" ]) -> ()
          | _ -> Alcotest.fail "first parameter mismatch");
          (match List.nth second 3 with
          | Ast.Parameter ("callNumber", Ast.Interval (1, 50)) -> ()
          | _ -> Alcotest.fail "callNumber mismatch")
      | _ -> Alcotest.fail "shape")

let test_parse_subtype () =
  match Parser.parse "disk_faults latency : [ 1, 9 ] ;" with
  | Ok [ [ Ast.Subtype "disk_faults"; Ast.Parameter ("latency", Ast.Interval (1, 9)) ] ] -> ()
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_parse_subinterval () =
  match Parser.parse "w : < 5, 10 > ;" with
  | Ok [ [ Ast.Parameter ("w", Ast.Subinterval_domain (5, 10)) ] ] -> ()
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_parse_numeric_set_elements () =
  match Parser.parse "retval : { -1, 0 } ;" with
  | Ok [ [ Ast.Parameter ("retval", Ast.Set [ "-1"; "0" ]) ] ] -> ()
  | Ok _ -> Alcotest.fail "wrong shape"
  | Error e -> Alcotest.fail e

let test_parse_errors () =
  List.iter
    (fun input -> checkb input true (Result.is_error (Parser.parse input)))
    [
      "";                          (* empty description *)
      "x : { } ;";                 (* empty set *)
      "x : [ 5, 2 ] ;";            (* inverted interval *)
      "x : [ 1, 2 ]";              (* missing ';' *)
      "x : { a, } ;";              (* trailing comma *)
      "x : [ 1 2 ] ;";             (* missing comma *)
      "justalabel ;";              (* subspace without parameters *)
      "x : { a } x : { b } ;";     (* duplicate parameter *)
    ]

let test_parse_exn () =
  checkb "parse_exn raises" true
    (try ignore (Parser.parse_exn "x : { } ;"); false with Failure _ -> true)

(* --- Printer round-trip --- *)

let test_print_parse_roundtrip () =
  match Parser.parse fig4 with
  | Error e -> Alcotest.fail e
  | Ok ast -> (
      let printed = Printer.to_string ast in
      match Parser.parse printed with
      | Ok ast' -> checkb "round-trip" true (Ast.equal ast ast')
      | Error e -> Alcotest.fail ("reparse failed: " ^ e))

(* --- Fsdl bridge --- *)

let test_space_of_fig4 () =
  match Fsdl.space_of_string fig4 with
  | Error e -> Alcotest.fail e
  | Ok space ->
      (* 3*1*1*100 + 1*1*1*50 *)
      checki "cardinality" 350 (Space.cardinality space);
      let subs = Space.subspaces space in
      checki "two subspaces" 2 (List.length subs);
      let first = List.hd subs in
      checki "4 axes" 4 (Subspace.dim first);
      checks "axis name" "callNumber" (Axis.name (Subspace.axis first 3))

let test_space_roundtrip_through_language () =
  match Fsdl.space_of_string fig4 with
  | Error e -> Alcotest.fail e
  | Ok space -> (
      let rendered = Fsdl.space_to_string space in
      match Fsdl.space_of_string rendered with
      | Ok space' -> checki "same cardinality" (Space.cardinality space) (Space.cardinality space')
      | Error e -> Alcotest.fail ("re-parse failed: " ^ e))

let test_space_label_preserved () =
  match Fsdl.space_of_string "io network port : [ 1, 3 ] ;" with
  | Error e -> Alcotest.fail e
  | Ok space ->
      checks "joined label" "io.network"
        (Option.get (Subspace.label (Space.single space)))

(* --- qcheck: generated ASTs round-trip through print+parse --- *)

let ident_gen =
  let open QCheck2.Gen in
  let letter = map Char.chr (int_range (Char.code 'a') (Char.code 'z')) in
  map (fun l -> String.init (1 + (List.length l mod 8)) (fun i ->
      List.nth l (i mod List.length l)))
    (list_size (int_range 1 8) letter)

let domain_gen =
  let open QCheck2.Gen in
  oneof
    [
      map (fun ids -> Ast.Set ids) (list_size (int_range 1 4) ident_gen);
      map2 (fun lo len -> Ast.Interval (lo, lo + len)) (int_bound 50) (int_bound 50);
      map2 (fun lo len -> Ast.Subinterval_domain (lo, lo + len)) (int_bound 20) (int_bound 20);
    ]

let ast_gen =
  let open QCheck2.Gen in
  let param i dom = Ast.Parameter (Printf.sprintf "p%d" i, dom) in
  let decl_gen =
    list_size (int_range 1 4) domain_gen
    >>= fun doms -> return (List.mapi param doms)
  in
  list_size (int_range 1 3) decl_gen

let qcheck_tests =
  let open QCheck2 in
  [
    Test.make ~name:"print/parse round-trip" ~count:200 ast_gen (fun ast ->
        match Parser.parse (Printer.to_string ast) with
        | Ok ast' -> Ast.equal ast ast'
        | Error _ -> false);
    Test.make ~name:"generated ASTs validate" ~count:200 ast_gen (fun ast ->
        Ast.validate ast = Ok ());
  ]

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("lexer basic", test_lexer_basic);
      ("lexer negative numbers", test_lexer_negative_numbers);
      ("lexer dangling minus", test_lexer_dangling_minus);
      ("lexer bad char position", test_lexer_bad_char);
      ("lexer comments", test_lexer_comments_and_whitespace);
      ("lexer identifier chars", test_lexer_identifier_chars);
      ("parse Fig. 4 example", test_parse_fig4);
      ("parse subtype label", test_parse_subtype);
      ("parse sub-interval", test_parse_subinterval);
      ("parse numeric set elements", test_parse_numeric_set_elements);
      ("parse errors", test_parse_errors);
      ("parse_exn", test_parse_exn);
      ("print/parse fig4 round-trip", test_print_parse_roundtrip);
      ("space of fig4", test_space_of_fig4);
      ("space round-trip via language", test_space_roundtrip_through_language);
      ("space label preserved", test_space_label_preserved);
    ]
  @ List.map QCheck_alcotest.to_alcotest qcheck_tests
