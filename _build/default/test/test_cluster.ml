(* Tests for afex_cluster: protocol, node manager, and the discrete-event
   cluster simulation. *)

module Message = Afex_cluster.Message
module Node_manager = Afex_cluster.Node_manager
module Simulation = Afex_cluster.Simulation
module Scenario = Afex_faultspace.Scenario
module Value = Afex_faultspace.Value
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Apache = Afex_simtarget.Apache
module Config = Afex.Config

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)

(* --- Message protocol --- *)

let test_message_roundtrip () =
  let scenario =
    [ ("testId", Value.Int 4); ("function", Value.Sym "read"); ("callNumber", Value.Int 2) ]
  in
  let msg = Message.Run_scenario { seq = 17; scenario } in
  match Message.decode_to_manager (Message.encode_to_manager msg) with
  | Ok (Message.Run_scenario { seq; scenario = s }) ->
      checki "seq" 17 seq;
      Alcotest.(check string) "scenario" (Scenario.to_string scenario) (Scenario.to_string s)
  | Ok Message.Shutdown -> Alcotest.fail "wrong message"
  | Error e -> Alcotest.fail e

let test_message_shutdown () =
  match Message.decode_to_manager (Message.encode_to_manager Message.Shutdown) with
  | Ok Message.Shutdown -> ()
  | Ok _ | Error _ -> Alcotest.fail "shutdown round-trip"

let test_message_malformed () =
  checkb "garbage rejected" true (Result.is_error (Message.decode_to_manager "BLAH 1 2"));
  checkb "bad seq rejected" true (Result.is_error (Message.decode_to_manager "RUN xyz f 1"))

(* --- Node manager --- *)

let executor () = Afex.Executor.of_target (Apache.target ())

let test_manager_runs_scenario () =
  let m = Node_manager.create ~id:0 ~executor:(executor ()) () in
  let fault = Fault.make ~test_id:0 ~func:"read" ~call_number:1 () in
  let msg = Message.Run_scenario { seq = 1; scenario = Fault.to_scenario fault } in
  (match Node_manager.handle m msg with
  | Some (Message.Scenario_result r, elapsed) ->
      checki "seq echoed" 1 r.Message.seq;
      checkb "charged time includes scripts" true (elapsed >= r.Message.duration_ms)
  | Some (Message.Manager_error _, _) -> Alcotest.fail "unexpected error"
  | None -> Alcotest.fail "unexpected shutdown");
  checki "counted" 1 (Node_manager.tests_run m);
  checkb "busy time positive" true (Node_manager.busy_ms m > 0.0)

let test_manager_reports_bad_scenario () =
  let m = Node_manager.create ~id:0 ~executor:(executor ()) () in
  let msg = Message.Run_scenario { seq = 2; scenario = [ ("bogus", Value.Int 1) ] } in
  match Node_manager.handle m msg with
  | Some (Message.Manager_error { seq; _ }, _) -> checki "seq echoed" 2 seq
  | Some (Message.Scenario_result _, _) -> Alcotest.fail "should have failed"
  | None -> Alcotest.fail "unexpected shutdown"

let test_manager_shutdown () =
  let m = Node_manager.create ~id:0 ~executor:(executor ()) () in
  checkb "shutdown" true (Node_manager.handle m Message.Shutdown = None)

let test_manager_run_scenario () =
  let m = Node_manager.create ~id:3 ~executor:(executor ()) ~startup_ms:10.0 ~cleanup_ms:5.0 () in
  let fault = Fault.make ~test_id:1 ~func:"read" ~call_number:0 () in
  let outcome, elapsed = Node_manager.run_scenario m (Fault.to_scenario fault) in
  checkb "scripts charged" true
    (Float.abs (elapsed -. (outcome.Outcome.duration_ms +. 15.0)) < 1e-6)

(* --- Simulation --- *)

let sim nodes iterations =
  Simulation.run
    { Simulation.default_config with Simulation.nodes; iterations }
    (Config.fitness_guided ~seed:42 ())
    (Apache.space ()) (executor ())

let test_simulation_executes_exact_count () =
  let r = sim 3 200 in
  checki "exact test count" 200 r.Simulation.tests_executed;
  checki "nodes recorded" 3 r.Simulation.nodes;
  checki "per-node busy entries" 3 (Array.length r.Simulation.busy_ms)

let test_simulation_single_node () =
  let r = sim 1 50 in
  checki "all on one node" 50 r.Simulation.tests_executed;
  checkb "utilization high" true (r.Simulation.utilization > 0.9)

let test_simulation_throughput_scales () =
  let r1 = sim 1 400 and r4 = sim 4 400 in
  let speedup = Simulation.speedup ~baseline:r1 r4 in
  checkb
    (Printf.sprintf "4 nodes give ~4x (got %.2fx)" speedup)
    true
    (speedup > 3.0 && speedup < 5.5)

let test_simulation_wall_bounded_by_busy () =
  let r = sim 2 100 in
  (* Makespan is at least the busiest node's work. *)
  let max_busy = Array.fold_left Float.max 0.0 r.Simulation.busy_ms in
  checkb "wall >= max busy" true (r.Simulation.wall_ms >= max_busy -. 1e-6)

let test_simulation_deterministic () =
  let a = sim 4 150 and b = sim 4 150 in
  checkb "same failures" true (a.Simulation.failed = b.Simulation.failed);
  checkb "same wall clock" true (Float.abs (a.Simulation.wall_ms -. b.Simulation.wall_ms) < 1e-6)

let test_simulation_rejects_zero_nodes () =
  checkb "needs nodes" true
    (try ignore (sim 0 10); false with Invalid_argument _ -> true)

let test_scaling_list () =
  let results =
    Simulation.scaling ~node_counts:[ 1; 2 ] ~iterations:100
      (Config.fitness_guided ~seed:1 ())
      (Apache.space ()) (executor ())
  in
  checki "one result per node count" 2 (List.length results);
  match results with
  | [ a; b ] ->
      checki "node counts respected" 1 a.Simulation.nodes;
      checki "node counts respected" 2 b.Simulation.nodes
  | _ -> Alcotest.fail "shape"

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("message roundtrip", test_message_roundtrip);
      ("message shutdown", test_message_shutdown);
      ("message malformed", test_message_malformed);
      ("manager runs scenario", test_manager_runs_scenario);
      ("manager reports bad scenario", test_manager_reports_bad_scenario);
      ("manager shutdown", test_manager_shutdown);
      ("manager run_scenario charges scripts", test_manager_run_scenario);
      ("simulation exact count", test_simulation_executes_exact_count);
      ("simulation single node", test_simulation_single_node);
      ("simulation throughput scales", test_simulation_throughput_scales);
      ("simulation wall >= busy", test_simulation_wall_bounded_by_busy);
      ("simulation deterministic", test_simulation_deterministic);
      ("simulation rejects zero nodes", test_simulation_rejects_zero_nodes);
      ("scaling list", test_scaling_list);
    ]
