(* Tests for the core AFEX search: priority queue, sensitivity, mutation,
   explorer, and full sessions on planted fault spaces. *)

module Rng = Afex_stats.Rng
module Bitset = Afex_stats.Bitset
module Point = Afex_faultspace.Point
module Axis = Afex_faultspace.Axis
module Subspace = Afex_faultspace.Subspace
module Fault = Afex_injector.Fault
module Outcome = Afex_injector.Outcome
module Test_case = Afex.Test_case
module Pqueue = Afex.Pqueue
module History = Afex.History
module Sensitivity = Afex.Sensitivity
module Mutator = Afex.Mutator
module Config = Afex.Config
module Explorer = Afex.Explorer
module Session = Afex.Session
module Executor = Afex.Executor

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let case ?(fitness = 1.0) ?(point = Point.of_list [ 0; 0; 0 ]) () =
  {
    Test_case.point;
    fault = Fault.make ~test_id:0 ~func:"read" ~call_number:1 ();
    status = Outcome.Passed;
    triggered = true;
    impact = fitness;
    fitness;
    birth = 0;
    mutated_axis = None;
    injection_stack = None;
    crash_stack = None;
    new_blocks = 0;
    duration_ms = 1.0;
  }

(* --- Pqueue --- *)

let test_pqueue_capacity () =
  let q = Pqueue.create ~capacity:3 in
  let rng = Rng.create 1 in
  checkb "empty" true (Pqueue.is_empty q);
  for i = 1 to 3 do
    checkb "no eviction below capacity" true
      (Pqueue.insert rng q (case ~fitness:(float_of_int i) ()) = None)
  done;
  checki "at capacity" 3 (Pqueue.size q);
  let victim = Pqueue.insert rng q (case ~fitness:10.0 ()) in
  checkb "eviction at capacity" true (victim <> None);
  checki "size stays bounded" 3 (Pqueue.size q)

let test_pqueue_drop_min () =
  let q = Pqueue.create ~capacity:2 in
  let rng = Rng.create 2 in
  ignore (Pqueue.insert rng q (case ~fitness:5.0 ()));
  ignore (Pqueue.insert rng q (case ~fitness:50.0 ()));
  match Pqueue.insert ~policy:Pqueue.Drop_min rng q (case ~fitness:20.0 ()) with
  | Some victim -> checkf "lowest evicted" 5.0 victim.Test_case.fitness
  | None -> Alcotest.fail "expected eviction"

let test_pqueue_inverse_eviction_bias () =
  (* Over many trials, the low-fitness entry should be evicted far more
     often than the high-fitness one. *)
  let low_evicted = ref 0 in
  for seed = 0 to 199 do
    let q = Pqueue.create ~capacity:2 in
    let rng = Rng.create seed in
    ignore (Pqueue.insert rng q (case ~fitness:1.0 ()));
    ignore (Pqueue.insert rng q (case ~fitness:100.0 ()));
    match Pqueue.insert rng q (case ~fitness:50.0 ()) with
    | Some v when v.Test_case.fitness = 1.0 -> incr low_evicted
    | Some _ | None -> ()
  done;
  checkb "low fitness usually evicted" true (!low_evicted > 150)

let test_pqueue_sample_bias () =
  let q = Pqueue.create ~capacity:2 in
  let rng = Rng.create 3 in
  ignore (Pqueue.insert rng q (case ~fitness:1.0 ()));
  ignore (Pqueue.insert rng q (case ~fitness:99.0 ()));
  let high = ref 0 in
  for _ = 1 to 1000 do
    match Pqueue.sample rng q with
    | Some c when c.Test_case.fitness = 99.0 -> incr high
    | Some _ -> ()
    | None -> Alcotest.fail "queue not empty"
  done;
  checkb "fitness-proportional sampling" true (!high > 900)

let test_pqueue_sample_empty () =
  let q = Pqueue.create ~capacity:2 in
  checkb "sample empty" true (Pqueue.sample (Rng.create 4) q = None)

let test_pqueue_age_and_retire () =
  let q = Pqueue.create ~capacity:4 in
  let rng = Rng.create 5 in
  ignore (Pqueue.insert rng q (case ~fitness:10.0 ()));
  ignore (Pqueue.insert rng q (case ~fitness:0.6 ()));
  let retired = Pqueue.age q ~decay:0.5 ~retire_below:0.5 in
  checki "one retired" 1 (List.length retired);
  checkf "survivor decayed" 5.0 (List.hd (Pqueue.elements q)).Test_case.fitness;
  checkf "mean fitness" 5.0 (Pqueue.mean_fitness q)

let test_pqueue_bad_capacity () =
  checkb "capacity >= 1" true
    (try ignore (Pqueue.create ~capacity:0); false with Invalid_argument _ -> true)

(* --- History --- *)

let test_history () =
  let h = History.create () in
  let p = Point.of_list [ 1; 2 ] in
  checkb "initially absent" false (History.mem h p);
  History.add h p;
  checkb "present" true (History.mem h p);
  History.add h p;
  checki "idempotent" 1 (History.size h);
  checkb "other point absent" false (History.mem h (Point.of_list [ 2; 1 ]))

(* --- Sensitivity --- *)

let test_sensitivity_prior () =
  let s = Sensitivity.create ~dims:3 () in
  checkf "prior" 1.0 (Sensitivity.value s 0);
  let p = Sensitivity.probabilities s in
  Array.iter (fun x -> checkf "uniform start" (1.0 /. 3.0) x) p

let test_sensitivity_window_sum () =
  let s = Sensitivity.create ~window:3 ~dims:2 () in
  List.iter (fun f -> Sensitivity.record s ~axis:0 ~fitness:f) [ 1.0; 2.0; 3.0; 4.0 ];
  (* window of 3 keeps the newest three: 2+3+4 *)
  checkf "sliding sum" 9.0 (Sensitivity.value s 0);
  checkf "other axis prior" 1.0 (Sensitivity.value s 1)

let test_sensitivity_probabilities_floor () =
  let s = Sensitivity.create ~dims:2 () in
  List.iter (fun f -> Sensitivity.record s ~axis:0 ~fitness:f) [ 100.0; 100.0 ];
  Sensitivity.record s ~axis:1 ~fitness:0.0;
  let p = Sensitivity.probabilities s in
  checkf "sums to 1" 1.0 (p.(0) +. p.(1));
  checkb "dead axis keeps floor share" true (p.(1) >= 0.04);
  checkb "hot axis dominates" true (p.(0) > 0.9)

(* --- Mutator --- *)

let search_sub =
  Subspace.make
    [
      Axis.range "testId" ~lo:0 ~hi:49;
      Axis.symbols "function" [ "read"; "close"; "malloc" ];
      Axis.range "callNumber" ~lo:1 ~hi:20;
    ]

let test_mutator_single_axis_change () =
  let rng = Rng.create 11 in
  let sens = Sensitivity.create ~dims:3 () in
  for _ = 1 to 200 do
    let parent = case ~point:(Point.of_list [ 25; 1; 10 ]) () in
    let child, axis = Mutator.mutate Mutator.default_params rng search_sub sens ~parent in
    checkb "child in space" true (Subspace.mem search_sub child);
    let diffs = ref 0 in
    for i = 0 to 2 do
      if Point.get child i <> Point.get parent.Test_case.point i then incr diffs
    done;
    checki "exactly one component changed" 1 !diffs;
    checkb "changed axis reported" true
      (Point.get child axis <> Point.get parent.Test_case.point axis)
  done

let test_mutator_sigma () =
  let axis = Axis.range "x" ~lo:0 ~hi:99 in
  checkf "sigma = |Ai|/5" 20.0 (Mutator.sigma_for Mutator.default_params axis)

let test_mutator_next_novel () =
  let rng = Rng.create 12 in
  let sens = Sensitivity.create ~dims:3 () in
  let queue = Pqueue.create ~capacity:4 in
  ignore (Pqueue.insert rng queue (case ~fitness:5.0 ~point:(Point.of_list [ 25; 1; 10 ]) ()));
  let history = History.create () in
  History.add history (Point.of_list [ 25; 1; 10 ]);
  for _ = 1 to 100 do
    let proposal =
      Mutator.next Mutator.default_params rng search_sub sens ~queue ~history
        ~is_pending:(fun _ -> false)
    in
    checkb "novel" false (History.mem history proposal.Mutator.point)
  done

let test_mutator_empty_queue_random () =
  let rng = Rng.create 13 in
  let sens = Sensitivity.create ~dims:3 () in
  let queue = Pqueue.create ~capacity:4 in
  let history = History.create () in
  let proposal =
    Mutator.next Mutator.default_params rng search_sub sens ~queue ~history
      ~is_pending:(fun _ -> false)
  in
  checkb "random proposal when queue empty" true (proposal.Mutator.mutated_axis = None);
  checkb "in space" true (Subspace.mem search_sub proposal.Mutator.point)

(* --- A planted executor: failures concentrated in a cluster --- *)

(* Faults with testId in [20,29] and callNumber <= 10 fail; everything
   else passes. 100 failing points per function of 3000 total. *)
let planted_executor () =
  let total_blocks = 64 in
  Executor.of_fn ~total_blocks ~description:"planted" (fun fault ->
      let failing =
        fault.Fault.test_id >= 20 && fault.Fault.test_id <= 29
        && fault.Fault.call_number >= 1 && fault.Fault.call_number <= 10
      in
      let coverage = Bitset.create total_blocks in
      Bitset.set coverage (fault.Fault.test_id mod 64);
      {
        Outcome.fault;
        status = (if failing then Outcome.Test_failed else Outcome.Passed);
        triggered = true;
        coverage;
        injection_stack =
          Some [ "libc.so:" ^ fault.Fault.func; Printf.sprintf "site%d" fault.Fault.test_id ];
        crash_stack = None;
        duration_ms = 1.0;
      })

(* --- Explorer --- *)

let tiny_sub =
  Subspace.make
    [
      Axis.range "testId" ~lo:0 ~hi:3;
      Axis.symbols "function" [ "read" ];
      Axis.range "callNumber" ~lo:1 ~hi:3;
    ]

let test_explorer_exhaustive_complete () =
  let explorer = Explorer.create (Config.exhaustive ~seed:1 ()) tiny_sub (planted_executor ()) in
  let seen = Hashtbl.create 16 in
  let rec drain n =
    match Explorer.next explorer with
    | None -> n
    | Some proposal ->
        Hashtbl.replace seen (Point.key proposal.Mutator.point) ();
        ignore (Explorer.execute explorer proposal);
        drain (n + 1)
  in
  let n = drain 0 in
  checki "visits every point once" 12 n;
  checki "all distinct" 12 (Hashtbl.length seen);
  checkb "then exhausted" true (Explorer.next explorer = None)

let test_explorer_fitness_no_reexecution () =
  let explorer =
    Explorer.create (Config.fitness_guided ~seed:2 ()) search_sub (planted_executor ())
  in
  let seen = Hashtbl.create 256 in
  for _ = 1 to 400 do
    match Explorer.next explorer with
    | None -> Alcotest.fail "should not exhaust"
    | Some proposal ->
        let key = Point.key proposal.Mutator.point in
        checkb "never re-executes" false (Hashtbl.mem seen key);
        Hashtbl.replace seen key ();
        ignore (Explorer.execute explorer proposal)
  done

let test_explorer_counters_consistent () =
  let explorer =
    Explorer.create (Config.fitness_guided ~seed:3 ()) search_sub (planted_executor ())
  in
  for _ = 1 to 300 do
    match Explorer.next explorer with
    | None -> ()
    | Some p -> ignore (Explorer.execute explorer p)
  done;
  let records = Explorer.records explorer in
  checki "iterations = records" (Explorer.iterations explorer) (List.length records);
  checki "failed counter matches records"
    (List.length (List.filter Test_case.failed records))
    (Explorer.failed_count explorer);
  checki "history covers executions" (Explorer.iterations explorer)
    (Explorer.history_size explorer);
  (* coverage is the union of per-run coverage: at most 50 distinct blocks
     (testId mod 64), and positive *)
  checkb "coverage positive" true (Explorer.covered_blocks explorer > 0);
  checkb "coverage bounded" true (Explorer.covered_blocks explorer <= 50)

let test_explorer_random_allows_repeats () =
  (* 12-point space, 200 random draws: must repeat. *)
  let explorer = Explorer.create (Config.random_search ~seed:4 ()) tiny_sub (planted_executor ()) in
  let seen = Hashtbl.create 16 in
  let repeats = ref 0 in
  for _ = 1 to 200 do
    match Explorer.next explorer with
    | None -> Alcotest.fail "random never exhausts"
    | Some proposal ->
        let key = Point.key proposal.Mutator.point in
        if Hashtbl.mem seen key then incr repeats;
        Hashtbl.replace seen key ();
        ignore (Explorer.execute explorer proposal)
  done;
  checkb "samples with replacement" true (!repeats > 0)

let test_explorer_simulated_time () =
  let explorer = Explorer.create (Config.random_search ~seed:5 ()) tiny_sub (planted_executor ()) in
  (match Explorer.next explorer with
  | Some p -> ignore (Explorer.execute explorer p)
  | None -> Alcotest.fail "no candidate");
  (* 1 ms run + 5 ms default setup *)
  checkf "wall clock charged" 6.0 (Explorer.simulated_ms explorer)

(* --- Session --- *)

let test_session_fitness_beats_random_on_planted_cluster () =
  let executor = planted_executor () in
  let fg = Session.run ~iterations:500 (Config.fitness_guided ~seed:7 ()) search_sub executor in
  let rnd = Session.run ~iterations:500 (Config.random_search ~seed:7 ()) search_sub executor in
  (* Cluster density is 1000/3000 = 10% for random; the guided search must
     do at least 2x better on this strongly structured space. *)
  checkb
    (Printf.sprintf "fitness (%d) >= 2x random (%d)" fg.Session.failed rnd.Session.failed)
    true
    (fg.Session.failed >= 2 * rnd.Session.failed);
  checkb "random roughly at base rate" true
    (rnd.Session.failed > 20 && rnd.Session.failed < 120)

let test_session_failure_curve () =
  let executor = planted_executor () in
  let r = Session.run ~iterations:200 (Config.fitness_guided ~seed:8 ()) search_sub executor in
  checki "curve length" 200 (Array.length r.Session.failure_curve);
  let monotone = ref true in
  for i = 1 to 199 do
    if r.Session.failure_curve.(i) < r.Session.failure_curve.(i - 1) then monotone := false
  done;
  checkb "monotone" true !monotone;
  checki "final value = failed" r.Session.failed r.Session.failure_curve.(199)

let test_session_stop_distinct_counting () =
  let executor = planted_executor () in
  let stop = { Session.matches = Test_case.failed; count = 5 } in
  let r = Session.run ~stop ~iterations:10_000 (Config.random_search ~seed:9 ()) search_sub executor in
  checkb "stopped early" true r.Session.stopped_early;
  (match r.Session.stop_iteration with
  | Some i ->
      checkb "stop iteration recorded" true (i <= r.Session.iterations);
      (* At least 5 distinct failing points were seen. *)
      let distinct_failing =
        List.sort_uniq compare
          (List.filter_map
             (fun c -> if Test_case.failed c then Some (Point.key c.Test_case.point) else None)
             r.Session.executed)
      in
      checkb "counted distinct matches" true (List.length distinct_failing >= 5)
  | None -> Alcotest.fail "expected stop iteration")

let test_session_stop_unreachable () =
  let executor = planted_executor () in
  let stop = { Session.matches = Test_case.crashed; count = 1 } in
  let r = Session.run ~stop ~iterations:100 (Config.random_search ~seed:10 ()) search_sub executor in
  checkb "not stopped" false r.Session.stopped_early;
  checki "ran all iterations" 100 r.Session.iterations

let test_session_transform_applied () =
  (* With a transform that maps everything onto the failing cluster, even
     random search fails every time. *)
  let executor = planted_executor () in
  let transform p = Point.of_list [ 25; Point.get p 1; 5 ] in
  let r =
    Session.run ~transform ~iterations:50 (Config.random_search ~seed:11 ()) search_sub executor
  in
  checki "all injected faults fail" 50 r.Session.failed

let test_session_exhaustive_small_space () =
  let executor = planted_executor () in
  let r = Session.run ~iterations:10_000 (Config.exhaustive ~seed:12 ()) tiny_sub executor in
  checki "stops at space size" 12 r.Session.iterations

let test_session_aging_survives_queue_drain () =
  (* Brutal aging: every test retires immediately; the search must fall
     back to random exploration rather than deadlock. *)
  let executor = planted_executor () in
  let config =
    { (Config.fitness_guided ~seed:13 ()) with
      Config.aging_decay = 0.0; retire_threshold = 1.0 }
  in
  let r = Session.run ~iterations:100 config search_sub executor in
  checki "completes budget" 100 r.Session.iterations

let test_session_top_faults () =
  let executor = planted_executor () in
  let r = Session.run ~iterations:100 (Config.fitness_guided ~seed:14 ()) search_sub executor in
  let top = Session.top_faults r ~n:5 in
  checki "five top faults" 5 (List.length top);
  let rec sorted = function
    | a :: (b :: _ as rest) -> a.Test_case.impact >= b.Test_case.impact && sorted rest
    | _ -> true
  in
  checkb "sorted by impact" true (sorted top)

let test_config_names () =
  Alcotest.(check string) "fitness" "fitness-guided"
    (Config.strategy_name (Config.fitness_guided ()).Config.strategy);
  Alcotest.(check string) "random" "random"
    (Config.strategy_name (Config.random_search ()).Config.strategy);
  Alcotest.(check string) "exhaustive" "exhaustive"
    (Config.strategy_name (Config.exhaustive ()).Config.strategy)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("pqueue capacity", test_pqueue_capacity);
      ("pqueue drop-min", test_pqueue_drop_min);
      ("pqueue inverse eviction bias", test_pqueue_inverse_eviction_bias);
      ("pqueue sample bias", test_pqueue_sample_bias);
      ("pqueue sample empty", test_pqueue_sample_empty);
      ("pqueue age and retire", test_pqueue_age_and_retire);
      ("pqueue bad capacity", test_pqueue_bad_capacity);
      ("history", test_history);
      ("sensitivity prior", test_sensitivity_prior);
      ("sensitivity window sum", test_sensitivity_window_sum);
      ("sensitivity probability floor", test_sensitivity_probabilities_floor);
      ("mutator single axis change", test_mutator_single_axis_change);
      ("mutator sigma", test_mutator_sigma);
      ("mutator next is novel", test_mutator_next_novel);
      ("mutator empty queue random", test_mutator_empty_queue_random);
      ("explorer exhaustive complete", test_explorer_exhaustive_complete);
      ("explorer fitness no re-execution", test_explorer_fitness_no_reexecution);
      ("explorer counters consistent", test_explorer_counters_consistent);
      ("explorer random repeats", test_explorer_random_allows_repeats);
      ("explorer simulated time", test_explorer_simulated_time);
      ("session fitness beats random (planted)", test_session_fitness_beats_random_on_planted_cluster);
      ("session failure curve", test_session_failure_curve);
      ("session stop distinct counting", test_session_stop_distinct_counting);
      ("session stop unreachable", test_session_stop_unreachable);
      ("session transform applied", test_session_transform_applied);
      ("session exhaustive small space", test_session_exhaustive_small_space);
      ("session aging survives queue drain", test_session_aging_survives_queue_drain);
      ("session top faults", test_session_top_faults);
      ("config names", test_config_names);
    ]
