(* Tests for afex_simtarget: libc model, behaviours, program model,
   generator, and the concrete evaluation targets. *)

module Libc = Afex_simtarget.Libc
module Behavior = Afex_simtarget.Behavior
module Callsite = Afex_simtarget.Callsite
module Sim_test = Afex_simtarget.Sim_test
module Target = Afex_simtarget.Target
module Gen = Afex_simtarget.Gen
module Coreutils = Afex_simtarget.Coreutils
module Mysql = Afex_simtarget.Mysql
module Apache = Afex_simtarget.Apache
module Mongodb = Afex_simtarget.Mongodb
module Tracer = Afex_simtarget.Tracer
module Spaces = Afex_simtarget.Spaces
module Subspace = Afex_faultspace.Subspace

let checkb = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checks = Alcotest.(check string)

(* --- Libc --- *)

let test_libc_fig1_functions_modelled () =
  List.iter
    (fun f -> checkb (f ^ " in catalog") true (Libc.find f <> None))
    Libc.fig1_functions

let test_libc_standard19 () =
  checki "19 functions" 19 (List.length Libc.standard19);
  List.iter
    (fun f -> checkb (f ^ " in catalog") true (Libc.find f <> None))
    Libc.standard19

let test_libc_primary_error () =
  let malloc = Libc.find_exn "malloc" in
  let e = Libc.primary_error malloc in
  checks "malloc errno" "ENOMEM" e.Libc.errno;
  checki "malloc returns NULL" 0 e.Libc.retval

let test_libc_category_grouping () =
  (* Canonical order must group functions by category (§2): the category
     sequence never revisits an earlier category. *)
  let cats =
    List.map (fun f -> (Libc.find_exn f).Libc.category) Libc.ordered_names
  in
  (* Compress consecutive duplicates; if every category forms one contiguous
     run, the compressed list has no repeats. *)
  let compressed =
    List.fold_left
      (fun acc c -> match acc with x :: _ when x = c -> acc | _ -> c :: acc)
      [] cats
  in
  checki "each category is one contiguous run"
    (List.length (List.sort_uniq compare compressed))
    (List.length compressed)

let test_libc_errnos () =
  checkb "read has EINTR" true (List.mem "EINTR" (Libc.errnos_of "read"));
  Alcotest.(check (list string)) "unknown empty" [] (Libc.errnos_of "frobnicate")

(* --- Behavior --- *)

let test_behavior_errno_override () =
  let b =
    Behavior.with_errno Behavior.Handled
      [ ("ENOMEM", Behavior.Crash { in_recovery = false }) ]
  in
  checkb "default handled" true (Behavior.reaction_for b ~errno:"EIO" = Behavior.Handled);
  checkb "override crashes" true
    (Behavior.reaction_for b ~errno:"ENOMEM" = Behavior.Crash { in_recovery = false })

let test_behavior_benign () =
  checkb "handled benign" true (Behavior.is_benign Behavior.Handled);
  checkb "crash not benign" false
    (Behavior.is_benign (Behavior.Crash { in_recovery = true }));
  checkb "hang not benign" false (Behavior.is_benign Behavior.Hang)

(* --- Callsite --- *)

let site_fixture behavior =
  Callsite.make ~id:0 ~module_name:"m" ~func:"read" ~location:"m.c:10"
    ~stack:[ "f (m.c:10)"; "main" ] ~blocks:[| 0; 1 |] ~recovery_blocks:[| 2 |]
    ~behavior

let test_callsite_injection_stack () =
  let site = site_fixture (Behavior.always Behavior.Handled) in
  Alcotest.(check (list string)) "libc frame pushed"
    [ "libc.so:read"; "f (m.c:10)"; "main" ]
    (Callsite.injection_stack site)

let test_callsite_crash_stack () =
  let benign = site_fixture (Behavior.always Behavior.Handled) in
  checkb "no crash stack when handled" true (Callsite.crash_stack benign ~errno:"EIO" = None);
  let crashing = site_fixture (Behavior.always (Behavior.Crash { in_recovery = true })) in
  match Callsite.crash_stack crashing ~errno:"EIO" with
  | Some (top :: _) -> checks "recovery frame on top" "recovery@m.c:10" top
  | Some [] | None -> Alcotest.fail "expected recovery crash stack"

(* --- Sim_test --- *)

let trace_fixture = Sim_test.make ~id:0 ~name:"t" ~group:"g"
    ~trace:[| 0; 1; 0; 2; 0 |] ~duration_ms:10.0

let funcs = [| "read"; "close"; "read" |]
let site_func i = funcs.(i)

let test_sim_test_calls_to () =
  checki "read called 4 times" 4 (Sim_test.calls_to trace_fixture ~site_func "read");
  checki "close once" 1 (Sim_test.calls_to trace_fixture ~site_func "close");
  checki "never" 0 (Sim_test.calls_to trace_fixture ~site_func "stat")

let test_sim_test_nth_call () =
  (match Sim_test.nth_call trace_fixture ~site_func "read" ~n:3 with
  | Some (pos, site) ->
      checki "position" 3 pos;
      checki "site" 2 site
  | None -> Alcotest.fail "expected third read");
  checkb "n too large" true (Sim_test.nth_call trace_fixture ~site_func "read" ~n:5 = None);
  checkb "n=0 invalid" true (Sim_test.nth_call trace_fixture ~site_func "read" ~n:0 = None)

(* --- Target validation --- *)

let test_target_validation () =
  let site = site_fixture (Behavior.always Behavior.Handled) in
  let bad_test = Sim_test.make ~id:0 ~name:"t" ~group:"g" ~trace:[| 5 |] ~duration_ms:1.0 in
  checkb "bad trace rejected" true
    (try
       ignore
         (Target.make ~name:"x" ~version:"1" ~callsites:[| site |] ~tests:[| bad_test |]
            ~total_blocks:10);
       false
     with Invalid_argument _ -> true);
  checkb "block out of range rejected" true
    (try
       ignore
         (Target.make ~name:"x" ~version:"1" ~callsites:[| site |] ~tests:[||]
            ~total_blocks:2);
       false
     with Invalid_argument _ -> true)

(* --- Generator --- *)

let test_gen_deterministic () =
  let a = Gen.generate Gen.default_config in
  let b = Gen.generate Gen.default_config in
  checki "same sites" (Array.length (Target.callsites a)) (Array.length (Target.callsites b));
  checki "same blocks" (Target.total_blocks a) (Target.total_blocks b);
  Array.iteri
    (fun i (t : Sim_test.t) ->
      Alcotest.(check (array int))
        (Printf.sprintf "trace %d identical" i)
        t.Sim_test.trace
        (Target.test b i).Sim_test.trace)
    (Target.tests a)

let test_gen_seed_changes_output () =
  let a = Gen.generate Gen.default_config in
  let b = Gen.generate { Gen.default_config with Gen.seed = 43 } in
  let sig_of t =
    Array.to_list (Array.map (fun (x : Sim_test.t) -> Array.to_list x.Sim_test.trace) (Target.tests t))
  in
  checkb "different seeds differ" true (sig_of a <> sig_of b)

let test_gen_shape_respects_config () =
  let cfg = { Gen.default_config with Gen.n_tests = 13; n_modules = 4 } in
  let t = Gen.generate cfg in
  checki "test count" 13 (Target.n_tests t);
  checki "module count" 4 (List.length (Target.modules t))

let test_gen_add_callsite_and_splice () =
  let t = Gen.generate Gen.default_config in
  let blocks_before = Target.total_blocks t in
  let t, site =
    Gen.add_callsite t ~module_name:"extra" ~func:"write" ~location:"e.c:1"
      ~stack:[ "e" ] ~behavior:(Behavior.always Behavior.Hang) ~recovery_blocks:2
  in
  checki "site appended" (Array.length (Target.callsites t) - 1) site;
  checki "blocks grew" (blocks_before + 5) (Target.total_blocks t);
  let trace_before = Array.length (Target.test t 0).Sim_test.trace in
  let t = Gen.splice t ~test_id:0 ~pos:2 ~site ~repeat:3 in
  let test0 = Target.test t 0 in
  checki "trace grew" (trace_before + 3) (Array.length test0.Sim_test.trace);
  checki "spliced at pos" site test0.Sim_test.trace.(2);
  (* splice positions are clamped *)
  let t = Gen.splice t ~test_id:0 ~pos:100_000 ~site ~repeat:1 in
  let test0 = Target.test t 0 in
  checki "clamped splice at end" site
    test0.Sim_test.trace.(Array.length test0.Sim_test.trace - 1)

let test_gen_merge () =
  let a = Gen.generate { Gen.default_config with Gen.name = "a"; n_tests = 3 } in
  let b = Gen.generate { Gen.default_config with Gen.name = "b"; n_tests = 4; seed = 9 } in
  let m = Gen.merge ~name:"ab" ~version:"1" [ a; b ] in
  checki "tests concatenated" 7 (Target.n_tests m);
  checki "sites concatenated"
    (Array.length (Target.callsites a) + Array.length (Target.callsites b))
    (Array.length (Target.callsites m));
  checki "blocks summed" (Target.total_blocks a + Target.total_blocks b)
    (Target.total_blocks m);
  (* Target.make validates ids/traces/blocks, so constructing m already
     proves consistency; spot-check the rebasing anyway. *)
  let last = Target.test m 6 in
  checki "rebased id" 6 last.Sim_test.id;
  Array.iter
    (fun s -> checkb "trace points at merged sites" true (s >= Array.length (Target.callsites a)))
    last.Sim_test.trace

let test_gen_remap_behavior () =
  let t = Gen.generate Gen.default_config in
  let t' =
    Gen.remap_behavior t (fun site ->
        if String.equal site.Callsite.func "malloc" then
          Some (Behavior.always Behavior.Test_fails)
        else None)
  in
  Array.iter
    (fun (site : Callsite.t) ->
      if String.equal site.Callsite.func "malloc" then
        checkb "malloc remapped" true
          (Behavior.reaction_for site.Callsite.behavior ~errno:"ENOMEM"
          = Behavior.Test_fails))
    (Target.callsites t')

(* --- Concrete targets: paper dimensions --- *)

let test_coreutils_dimensions () =
  let t = Coreutils.target () in
  checki "29 tests" 29 (Target.n_tests t);
  let sub = Coreutils.space () in
  checki "|Phi_coreutils| = 1653" 1653 (Subspace.cardinality sub)

let test_mysql_dimensions () =
  let sub = Mysql.space () in
  checki "|Phi_MySQL| = 2,179,300" 2_179_300 (Subspace.cardinality sub);
  checki "1147 tests" 1147 (Target.n_tests (Mysql.target ()))

let test_apache_dimensions () =
  let sub = Apache.space () in
  checki "|Phi_Apache| = 11,020" 11_020 (Subspace.cardinality sub);
  checki "58 tests" 58 (Target.n_tests (Apache.target ()))

let test_ls_dimensions () =
  let t = Coreutils.ls_target () in
  checki "11 ls tests (Fig. 1)" 11 (Target.n_tests t);
  checki "29 Fig. 1 functions" 29 (List.length Coreutils.ls_fig1_functions)

let test_ln_mv_have_malloc_calls () =
  let t = Coreutils.target () in
  List.iter
    (fun test_id ->
      let test = Target.test t test_id in
      checkb
        (Printf.sprintf "test %d calls malloc at least twice" test_id)
        true
        (Sim_test.calls_to test ~site_func:(Target.site_func t) "malloc" >= 2))
    Coreutils.ln_mv_test_ids

let test_trimmed_functions_subset () =
  checki "9 trimmed functions" 9 (List.length Coreutils.trimmed_functions);
  List.iter
    (fun f -> checkb (f ^ " within standard19") true (List.mem f Libc.standard19))
    Coreutils.trimmed_functions

let test_env_model_masses () =
  let mass p = List.fold_left (fun acc (f, w) -> if p f then acc +. w else acc) 0.0 Coreutils.env_model in
  let total = mass (fun _ -> true) in
  checkb "masses sum to 1" true (Float.abs (total -. 1.0) < 1e-9);
  checkb "malloc is 40%" true
    (Float.abs (List.assoc "malloc" Coreutils.env_model -. 0.40) < 1e-9)

let test_mongodb_versions () =
  let v08 = Mongodb.target_v08 () and v20 = Mongodb.target_v20 () in
  checks "v0.8" "0.8" (Target.version v08);
  checks "v2.0" "2.0" (Target.version v20);
  checkb "v2.0 is larger" true
    (Array.length (Target.callsites v20) > Array.length (Target.callsites v08))

let test_targets_memoized () =
  (* Repeated accessors return the identical structure (physical equality):
     the lazily-built targets are shared, not regenerated. *)
  checkb "mysql memoized" true (Mysql.target () == Mysql.target ());
  checkb "coreutils memoized" true (Coreutils.target () == Coreutils.target ())

let test_recovery_blocks_fraction_small () =
  (* Recovery code is a small fraction of each codebase (the paper estimates
     0.64% for coreutils); our models keep it under 10%. *)
  List.iter
    (fun t ->
      let frac =
        float_of_int (Target.recovery_blocks_total t)
        /. float_of_int (Target.total_blocks t)
      in
      checkb (Target.name t ^ " recovery fraction sane") true (frac < 0.10))
    [ Coreutils.target (); Apache.target (); Mysql.target () ]

(* --- Tracer --- *)

let test_tracer_counts_positive () =
  let t = Coreutils.target () in
  let counts = Tracer.call_counts t in
  checkb "some functions traced" true (List.length counts > 5);
  List.iter (fun (_, n) -> checkb "positive count" true (n > 0)) counts

let test_tracer_description_parses () =
  let t = Apache.target () in
  let described = Tracer.describe_string t in
  match Afex_faultspace.Fsdl_parser.parse described with
  | Ok ast -> checkb "non-empty" true (List.length ast > 0)
  | Error e -> Alcotest.fail ("tracer output does not parse: " ^ e)

let test_tracer_standard_description_parses () =
  let t = Apache.target () in
  let s = Tracer.standard_description t ~funcs:Libc.standard19 ~max_call:10 in
  match Afex_faultspace.Fsdl.space_of_string s with
  | Ok space ->
      checki "cardinality matches space" 11_020
        (Afex_faultspace.Space.cardinality space)
  | Error e -> Alcotest.fail e

(* --- Spaces --- *)

let test_spaces_standard_axes () =
  let t = Apache.target () in
  let sub = Spaces.standard ~min_call:1 ~max_call:10 ~funcs:Libc.standard19 t in
  checks "axis 0" "testId" (Afex_faultspace.Axis.name (Subspace.axis sub Spaces.axis_test));
  checks "axis 1" "function" (Afex_faultspace.Axis.name (Subspace.axis sub Spaces.axis_func));
  checks "axis 2" "callNumber" (Afex_faultspace.Axis.name (Subspace.axis sub Spaces.axis_call))

let test_spaces_default_max_call () =
  let t = Coreutils.target () in
  let sub = Spaces.standard ~funcs:[ "malloc" ] t in
  let expected = Target.max_calls t "malloc" in
  checki "max call derived from traces" (29 * 1 * expected) (Subspace.cardinality sub)

let suite =
  List.map (fun (n, f) -> Alcotest.test_case n `Quick f)
    [
      ("libc fig1 functions modelled", test_libc_fig1_functions_modelled);
      ("libc standard19", test_libc_standard19);
      ("libc primary error", test_libc_primary_error);
      ("libc category grouping", test_libc_category_grouping);
      ("libc errnos", test_libc_errnos);
      ("behavior errno override", test_behavior_errno_override);
      ("behavior benign", test_behavior_benign);
      ("callsite injection stack", test_callsite_injection_stack);
      ("callsite crash stack", test_callsite_crash_stack);
      ("sim_test calls_to", test_sim_test_calls_to);
      ("sim_test nth_call", test_sim_test_nth_call);
      ("target validation", test_target_validation);
      ("gen deterministic", test_gen_deterministic);
      ("gen seed changes output", test_gen_seed_changes_output);
      ("gen shape respects config", test_gen_shape_respects_config);
      ("gen add_callsite and splice", test_gen_add_callsite_and_splice);
      ("gen merge", test_gen_merge);
      ("gen remap_behavior", test_gen_remap_behavior);
      ("coreutils dimensions", test_coreutils_dimensions);
      ("mysql dimensions", test_mysql_dimensions);
      ("apache dimensions", test_apache_dimensions);
      ("ls dimensions (fig1)", test_ls_dimensions);
      ("ln/mv call malloc", test_ln_mv_have_malloc_calls);
      ("trimmed functions subset", test_trimmed_functions_subset);
      ("env model masses", test_env_model_masses);
      ("mongodb versions", test_mongodb_versions);
      ("targets memoized", test_targets_memoized);
      ("recovery fraction small", test_recovery_blocks_fraction_small);
      ("tracer counts positive", test_tracer_counts_positive);
      ("tracer description parses", test_tracer_description_parses);
      ("tracer standard description parses", test_tracer_standard_description_parses);
      ("spaces standard axes", test_spaces_standard_axes);
      ("spaces default max call", test_spaces_default_max_call);
    ]
