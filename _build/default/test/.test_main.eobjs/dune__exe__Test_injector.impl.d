test/test_injector.ml: Afex_faultspace Afex_injector Afex_simtarget Afex_stats Alcotest List Printf Result Seq String
