test/test_cluster.ml: Afex Afex_cluster Afex_faultspace Afex_injector Afex_simtarget Alcotest Array Float List Printf Result
