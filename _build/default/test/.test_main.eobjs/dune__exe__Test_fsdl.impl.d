test/test_fsdl.ml: Afex_faultspace Alcotest Char List Option Printf QCheck2 QCheck_alcotest Result String Test
