test/test_simtarget.ml: Afex_faultspace Afex_simtarget Alcotest Array Float List Printf String
