test/test_quality.ml: Afex_quality Alcotest Array Float Gen List QCheck2 QCheck_alcotest Test
