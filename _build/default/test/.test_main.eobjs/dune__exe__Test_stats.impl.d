test/test_stats.ml: Afex_stats Alcotest Array Float Gen Hashtbl List QCheck2 QCheck_alcotest Test
