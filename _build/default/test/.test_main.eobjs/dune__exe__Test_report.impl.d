test/test_report.ml: Afex Afex_injector Afex_report Afex_simtarget Alcotest Lazy List String
