test/test_extensions.ml: Afex Afex_faultspace Afex_injector Afex_quality Afex_report Afex_simtarget Afex_stats Alcotest Array Hashtbl Lazy List Option Printf Result String
