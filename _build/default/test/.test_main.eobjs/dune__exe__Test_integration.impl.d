test/test_integration.ml: Afex Afex_cluster Afex_faultspace Afex_injector Afex_simtarget Afex_stats Alcotest Array Lazy List Printf String
