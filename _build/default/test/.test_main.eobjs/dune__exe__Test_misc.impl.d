test/test_misc.ml: Afex Afex_faultspace Afex_injector Afex_report Afex_simtarget Afex_stats Alcotest Format List Result String
