test/test_core.ml: Afex Afex_faultspace Afex_injector Afex_stats Alcotest Array Hashtbl List Printf
