test/test_faultspace.ml: Afex_faultspace Afex_stats Alcotest Gen List Option QCheck2 QCheck_alcotest Result Seq Test
